// Package repro computes the steady-state throughput of replicated
// streaming workflows (linear pipelines) mapped onto fully heterogeneous
// platforms, reproducing
//
//	A. Benoit, M. Gallet, B. Gaujal, Y. Robert,
//	"Computing the throughput of replicated workflows on heterogeneous
//	platforms", ICPP 2009.
//
// A workflow is a chain of stages S0..S(n-1); stage k costs w_k FLOP and
// ships a δ_k-byte file to its successor. A mapping assigns each stage one
// or more processors (replication); replicas serve data sets in round-robin
// order. Given the mapping, this package computes the exact period P (the
// steady-state interval between consecutive data-set completions, the
// inverse of the throughput) under two communication models:
//
//   - Overlap (OVERLAP ONE-PORT): receiving, computing and sending overlap
//     on a processor; computed with the paper's polynomial algorithm
//     (Theorem 1).
//   - Strict (STRICT ONE-PORT): the three activities are serialized;
//     computed by building the unfolded timed Petri net and extracting its
//     critical cycle.
//
// All arithmetic is exact (int64 rationals), so the headline comparison of
// the paper — whether P strictly exceeds the largest resource cycle-time
// Mct, i.e. whether the schedule has no critical resource — is decided
// exactly rather than within floating-point noise. Three cycle-ratio
// backends share that exact contract (BackendAuto, BackendKarp,
// BackendHoward); a fourth, BackendFloatScreen, lets the batch searches
// pre-rank candidate mappings with a rigorously error-bounded float64
// sweep and fall back to exact arithmetic inside the error band, so
// results — including proven-optimality certificates — stay bit-identical
// while warm exact searches evaluate leaves several times faster.
//
// # Quick start
//
//	pipe, _ := repro.NewPipeline([]int64{200, 1500, 800}, []int64{1000, 4000})
//	plat := repro.UniformPlatform(6, 100, 1000)
//	mapp, _ := repro.NewMapping([][]int{{0}, {1, 2, 3}, {4}}, 6)
//	inst, _ := repro.NewInstance(pipe, plat, mapp)
//	res, _ := repro.Throughput(inst, repro.Overlap)
//	fmt.Println("period:", res.Period, "Mct:", res.Mct)
//
// For large campaigns — Table 2's thousands of random instances, mapping
// search, Monte-Carlo sweeps — use the concurrent batch-evaluation engine,
// which runs a fixed work-stealing worker pool with a memoization cache and
// returns results bit-identical to the serial path at any worker count:
//
//	eng := repro.NewEngine(repro.EngineOptions{})
//	outs, _ := eng.EvaluateBatch(ctx, []repro.EvalTask{{Inst: inst, Model: repro.Overlap}})
//	best, _ := eng.SearchMappings(ctx, pipe, plat, repro.Overlap, rng)
//
// SearchMappings is heuristic; SearchMappingsExact runs the parallel
// branch-and-bound search instead and, when its result carries Proven,
// certifies that no replicated mapping has a smaller period:
//
//	exact, _ := eng.SearchMappingsExact(ctx, pipe, plat, repro.Overlap)
//
// The same solves are reachable over HTTP: Serve (or cmd/serve) exposes
// evaluate/batch/search/sweep endpoints plus the async job surface
// /v1/jobs, where long-running searches run as first-class jobs with
// deterministic IDs, pollable progress and cooperative cancellation (see
// the Job, JobProgress, JobSubmitRequest and JobListResponse aliases, and
// ErrorInfo/ErrorBody for the unified error envelope every non-2xx answer
// uses).
//
// See the examples/ directory for runnable programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record.
package repro
