// Package workload generates the random experiment instances of Section 5
// (Table 2): applications with 2-20 stages mapped onto 7-30 processors, with
// computation and communication times drawn uniformly from the ranges the
// paper lists, and the number of processors computing each stage chosen at
// random.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/rat"
)

// Spec describes one random instance family.
type Spec struct {
	// Stages and Procs fix the instance size; every processor is used.
	Stages, Procs int
	// CompLo..CompHi and CommLo..CommHi are the inclusive uniform ranges for
	// computation and communication times (the paper draws times directly,
	// e.g. "computation times between 5 and 15").
	CompLo, CompHi int64
	CommLo, CommHi int64
	// MaxPathCount, when positive, rejects replication patterns whose
	// m = lcm(m_i) exceeds it (resampled; needed to keep the unfolded
	// strict-model TPN tractable — the paper reports runs of up to 150,000
	// seconds for exactly this reason). Zero means no bound.
	MaxPathCount int64
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.Stages < 1 {
		return fmt.Errorf("workload: need at least one stage")
	}
	if s.Procs < s.Stages {
		return fmt.Errorf("workload: %d processors cannot host %d stages", s.Procs, s.Stages)
	}
	if s.CompLo < 1 || s.CompHi < s.CompLo || s.CommLo < 1 || s.CommHi < s.CommLo {
		return fmt.Errorf("workload: bad time ranges comp [%d,%d] comm [%d,%d]",
			s.CompLo, s.CompHi, s.CommLo, s.CommHi)
	}
	return nil
}

// Replication draws a random composition of Procs into Stages positive
// parts: every stage gets one processor, and the remaining Procs-Stages are
// scattered uniformly. When MaxPathCount is set, compositions with too large
// an lcm are resampled (up to a generous retry bound).
func (s Spec) Replication(rng *rand.Rand) ([]int, error) {
	const maxTries = 10000
	for try := 0; try < maxTries; try++ {
		reps := make([]int, s.Stages)
		for i := range reps {
			reps[i] = 1
		}
		for k := s.Stages; k < s.Procs; k++ {
			reps[rng.Intn(s.Stages)]++
		}
		if s.MaxPathCount > 0 {
			counts := make([]int64, len(reps))
			overflow := false
			for i, r := range reps {
				counts[i] = int64(r)
				_ = i
			}
			m := func() (v int64) {
				defer func() {
					if recover() != nil {
						overflow = true
						v = 0
					}
				}()
				return rat.LCMAll(counts)
			}()
			if overflow || m > s.MaxPathCount {
				continue
			}
		}
		return reps, nil
	}
	return nil, fmt.Errorf("workload: could not draw replication with lcm <= %d for %d stages on %d procs",
		s.MaxPathCount, s.Stages, s.Procs)
}

// Instance draws one random instance.
func (s Spec) Instance(rng *rand.Rand) (*model.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reps, err := s.Replication(rng)
	if err != nil {
		return nil, err
	}
	drawComp := func() rat.Rat { return rat.FromInt(s.CompLo + rng.Int63n(s.CompHi-s.CompLo+1)) }
	drawComm := func() rat.Rat { return rat.FromInt(s.CommLo + rng.Int63n(s.CommHi-s.CommLo+1)) }
	comp := make([][]rat.Rat, s.Stages)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = drawComp()
		}
	}
	comm := make([][][]rat.Rat, s.Stages-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = drawComm()
			}
		}
	}
	return model.FromTimes(comp, comm)
}
