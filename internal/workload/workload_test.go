package workload

import (
	"math/rand"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Stages: 0, Procs: 5, CompLo: 1, CompHi: 1, CommLo: 1, CommHi: 1},
		{Stages: 5, Procs: 3, CompLo: 1, CompHi: 1, CommLo: 1, CommHi: 1},
		{Stages: 2, Procs: 5, CompLo: 0, CompHi: 1, CommLo: 1, CommHi: 1},
		{Stages: 2, Procs: 5, CompLo: 2, CompHi: 1, CommLo: 1, CommHi: 1},
		{Stages: 2, Procs: 5, CompLo: 1, CompHi: 1, CommLo: 5, CommHi: 4},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	good := Spec{Stages: 2, Procs: 7, CompLo: 1, CompHi: 1, CommLo: 5, CommHi: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestReplicationUsesAllProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Spec{Stages: 10, Procs: 20, CompLo: 5, CompHi: 15, CommLo: 5, CommHi: 15}
	for trial := 0; trial < 100; trial++ {
		reps, err := s.Replication(rng)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range reps {
			if r < 1 {
				t.Fatalf("stage with %d replicas", r)
			}
			total += r
		}
		if total != 20 {
			t.Fatalf("replication %v uses %d processors, want 20", reps, total)
		}
	}
}

func TestReplicationRespectsPathCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Spec{Stages: 10, Procs: 30, CompLo: 5, CompHi: 15, CommLo: 5, CommHi: 15, MaxPathCount: 60}
	for trial := 0; trial < 100; trial++ {
		inst, err := s.Instance(rng)
		if err != nil {
			t.Fatal(err)
		}
		if inst.PathCount() > 60 {
			t.Fatalf("path count %d exceeds bound", inst.PathCount())
		}
	}
}

func TestInstanceTimesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Spec{Stages: 3, Procs: 7, CompLo: 1, CompHi: 1, CommLo: 5, CommHi: 10}
	for trial := 0; trial < 50; trial++ {
		inst, err := s.Instance(rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < inst.NumStages(); i++ {
			for a := 0; a < inst.Replication(i); a++ {
				if c := inst.CompTime(i, a); c.Den() != 1 || c.Num() != 1 {
					t.Fatalf("comp time %v, want 1", c)
				}
			}
		}
		for i := 0; i < inst.NumStages()-1; i++ {
			for a := 0; a < inst.Replication(i); a++ {
				for b := 0; b < inst.Replication(i+1); b++ {
					c := inst.CommTime(i, a, b)
					if c.Den() != 1 || c.Num() < 5 || c.Num() > 10 {
						t.Fatalf("comm time %v out of [5,10]", c)
					}
				}
			}
		}
	}
}

func TestInstanceDeterministicPerSeed(t *testing.T) {
	s := Spec{Stages: 3, Procs: 9, CompLo: 5, CompHi: 15, CommLo: 5, CommHi: 15}
	a, err := s.Instance(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Instance(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.PathCount() != b.PathCount() {
		t.Fatal("same seed gave different replication")
	}
	for i := 0; i < a.NumStages(); i++ {
		for r := 0; r < a.Replication(i); r++ {
			if !a.CompTime(i, r).Equal(b.CompTime(i, r)) {
				t.Fatal("same seed gave different times")
			}
		}
	}
}

func TestImpossiblePathBoundFails(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// 2 stages on 7 procs: compositions are (1,6)..(6,1); lcm >= 5 in most,
	// minimum lcm is lcm(3,4)=12? No: (1,6)->6, (6,1)->6, (2,5)->10,
	// (5,2)->10, (3,4)->12, (4,3)->12. Bound 5 is unsatisfiable.
	s := Spec{Stages: 2, Procs: 7, CompLo: 1, CompHi: 1, CommLo: 1, CommHi: 1, MaxPathCount: 5}
	if _, err := s.Replication(rng); err == nil {
		t.Fatal("unsatisfiable bound accepted")
	}
}
