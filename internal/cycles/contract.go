package cycles

import (
	"fmt"

	"repro/internal/rat"
)

// MaxRatio computes the maximum cycle ratio λ* = max_C cost(C)/tokens(C)
// exactly, by contracting token-carrying edges and running Karp's maximum
// mean cycle algorithm on the contracted graph.
//
// Requirements: the zero-token subgraph must be acyclic (Validate enforces
// this; it holds for every TPN the paper constructs, because all token-free
// places advance lexicographically in (row, column)). Returns ErrNoCycle if
// the graph is acyclic.
//
// The witness cycle in the result is expressed as edge indices of the
// original system.
//
// MaxRatio allocates a fresh Workspace per call; hot loops should hold a
// Workspace (or a core.Solver, which owns one) and call Workspace.MaxRatio
// to amortize the scratch across evaluations.
func (s *System) MaxRatio() (Result, error) {
	var ws Workspace
	return ws.MaxRatio(s)
}

// MaxRatio computes the maximum cycle ratio of s on the workspace's reused
// scratch. It is the same algorithm as System.MaxRatio with the same
// iteration orders, so results — ratio and witness cycle — are
// bit-identical; only the allocation behaviour differs. s is not mutated.
func (ws *Workspace) MaxRatio(s *System) (Result, error) {
	for i, c := range s.Cost {
		if c.Sign() < 0 {
			return Result{}, fmt.Errorf("cycles: edge %d has negative cost %v", i, c)
		}
	}
	if !ws.acyclic(s, true) {
		return Result{}, ErrDeadlock
	}
	if ws.acyclic(s, false) {
		return Result{}, ErrNoCycle
	}
	comp, ncomp := ws.scc(s)
	best := Result{}
	found := false
	for c := 0; c < ncomp; c++ {
		r, ok, err := ws.maxRatioSCC(s, comp, c)
		if err != nil {
			return Result{}, err
		}
		if ok && (!found || best.Ratio.Less(r.Ratio)) {
			best = r
			found = true
		}
	}
	if !found {
		return Result{}, ErrNoCycle
	}
	if best.Cycle == nil {
		// Tie-breaking in Karp's witness walk can fail to isolate a critical
		// cycle; recover one from the tight subgraph at the (correct) ratio.
		best.Cycle = s.tightCycleWitness(best.Ratio)
	}
	return best, nil
}

// contractedEdge is an edge of the token-contracted graph: it starts with a
// token edge of the original system and follows a longest zero-token path.
type contractedEdge struct {
	from, to int     // indices into the token-edge list
	cost     rat.Rat // token edge cost + longest zero-token path cost
	tokens   int64
	// path reconstruction: the token edge index, then the zero-token edge
	// indices of the longest path from its head to the target's tail, stored
	// in the workspace arena.
	tokenEdge        int
	pathOff, pathLen int
}

// maxRatioSCC contracts one strongly connected component and runs Karp on it.
func (ws *Workspace) maxRatioSCC(s *System, comp []int, c int) (Result, bool, error) {
	n, ok, err := ws.contractScaffold(s, comp, c)
	if !ok || err != nil {
		return Result{}, false, err
	}

	// For each token edge, longest zero-token path from its head to every
	// reachable vertex (DAG DP), generating contracted edges to every token
	// edge tail reached.
	nt := len(ws.tokenEdges)
	ws.dist = growRats(ws.dist, n)
	ws.has = growBools(ws.has, n)
	ws.pred = growInts(ws.pred, n)
	ws.cedges = ws.cedges[:0]
	ws.arena = ws.arena[:0]
	for pos, ei := range ws.tokenEdges {
		head := ws.localID[s.G.Edges[ei].To]
		for i := 0; i < n; i++ {
			ws.has[i] = false
			ws.pred[i] = -1
		}
		ws.has[head] = true
		ws.dist[head] = rat.Zero()
		for _, u := range ws.order {
			if !ws.has[u] {
				continue
			}
			for t := ws.zeroStart[u]; t < ws.zeroStart[u+1]; t++ {
				zei := ws.zeroEdges[ws.zeroItems[t]]
				to := ws.localID[s.G.Edges[zei].To]
				cand := ws.dist[u].Add(s.Cost[zei])
				if !ws.has[to] || ws.dist[to].Less(cand) {
					ws.dist[to] = cand
					ws.has[to] = true
					ws.pred[to] = zei
				}
			}
		}
		for v := 0; v < n; v++ {
			if !ws.has[v] {
				continue
			}
			for t := ws.tailStart[v]; t < ws.tailStart[v+1]; t++ {
				toPos := ws.tailItems[t]
				// Reconstruct the zero-token path head -> v into the arena.
				ws.pathTmp = ws.pathTmp[:0]
				for x := v; ws.pred[x] != -1; {
					pe := ws.pred[x]
					ws.pathTmp = append(ws.pathTmp, pe)
					x = ws.localID[s.G.Edges[pe].From]
				}
				off := len(ws.arena)
				for i := len(ws.pathTmp) - 1; i >= 0; i-- {
					ws.arena = append(ws.arena, ws.pathTmp[i])
				}
				ws.cedges = append(ws.cedges, contractedEdge{
					from:      pos,
					to:        toPos,
					cost:      s.Cost[ei].Add(ws.dist[v]),
					tokens:    int64(s.Tokens[ei]),
					tokenEdge: ei,
					pathOff:   off,
					pathLen:   len(ws.pathTmp),
				})
			}
		}
	}
	if len(ws.cedges) == 0 {
		return Result{}, false, nil
	}

	// Expand multi-token contracted edges so Karp's uniform-token assumption
	// holds. (The paper's TPNs only use single-token places; this keeps the
	// engine general.)
	nverts := ws.expandTokens(nt)
	lambda, cyc, ok := ws.karpMaxMean(nverts)
	if !ok {
		return Result{}, false, nil
	}
	// Translate the contracted witness cycle back to original edges.
	var witness []int
	for _, ce := range cyc {
		if ce.tokenEdge >= 0 {
			witness = append(witness, ce.tokenEdge)
			witness = append(witness, ws.arena[ce.pathOff:ce.pathOff+ce.pathLen]...)
		}
	}
	return Result{Ratio: lambda, Cycle: witness}, true, nil
}

// contractScaffold builds the structural state both the exact and the float
// contraction sweeps run on: the component's token/zero edge lists, the local
// vertex numbering, the zero-token DAG adjacency with its topological order
// (ws.order), and the token-edge tail CSR. Keeping it in one place guarantees
// the two sweeps walk identical structures in identical orders — the float
// path's error bounds are only claims about the exact path if the candidate
// sets match edge for edge. It returns the local vertex count; ok is false
// when the component carries no token edge (no cycle to contribute).
func (ws *Workspace) contractScaffold(s *System, comp []int, c int) (n int, ok bool, err error) {
	// Intra-component edges, split into token edges and zero-token edges.
	ws.tokenEdges = ws.tokenEdges[:0]
	ws.zeroEdges = ws.zeroEdges[:0]
	for i, e := range s.G.Edges {
		if comp[e.From] != c || comp[e.To] != c {
			continue
		}
		if s.Tokens[e.ID] > 0 {
			ws.tokenEdges = append(ws.tokenEdges, i)
		} else {
			ws.zeroEdges = append(ws.zeroEdges, i)
		}
	}
	if len(ws.tokenEdges) == 0 {
		// Component with no token edge: acyclic by liveness (validated), so
		// it contributes no cycle.
		return 0, false, nil
	}

	// Map component vertices to local ids (first-seen order: token edge
	// endpoints, then zero edge endpoints — matching the historical order).
	ws.epoch++
	ws.localID = growInts(ws.localID, s.G.N)
	ws.localStamp = growInts(ws.localStamp, s.G.N)
	ws.verts = ws.verts[:0]
	local := func(v int) int {
		if ws.localStamp[v] == ws.epoch {
			return ws.localID[v]
		}
		id := len(ws.verts)
		ws.localStamp[v] = ws.epoch
		ws.localID[v] = id
		ws.verts = append(ws.verts, v)
		return id
	}
	for _, ei := range ws.tokenEdges {
		local(s.G.Edges[ei].From)
		local(s.G.Edges[ei].To)
	}
	for _, ei := range ws.zeroEdges {
		local(s.G.Edges[ei].From)
		local(s.G.Edges[ei].To)
	}
	n = len(ws.verts)

	// Zero-token DAG adjacency over local vertices and its topological order.
	nz := len(ws.zeroEdges)
	ws.zeroStart = growInts(ws.zeroStart, n+1)
	ws.zeroItems = growInts(ws.zeroItems, nz)
	ws.keyTmp = growInts(ws.keyTmp, nz)
	ws.valTmp = growInts(ws.valTmp, nz)
	for j, ei := range ws.zeroEdges {
		ws.keyTmp[j] = ws.localID[s.G.Edges[ei].From]
		ws.valTmp[j] = j
	}
	ws.fillCSR(ws.zeroStart, ws.zeroItems, n, ws.keyTmp[:nz], ws.valTmp[:nz])
	// Successor view of the same CSR (parallel to zeroItems), so the one
	// Kahn implementation serves both the acyclicity checks and this
	// topological order — the ordering discipline witness tie-breaking
	// depends on lives in exactly one place.
	ws.zeroSucc = growInts(ws.zeroSucc, nz)
	for t := 0; t < nz; t++ {
		ws.zeroSucc[t] = ws.localID[s.G.Edges[ws.zeroEdges[ws.zeroItems[t]]].To]
	}
	if ws.kahn(n, ws.zeroStart, ws.zeroSucc) != n {
		return 0, false, ErrDeadlock
	}

	// Tails of token edges, for quick "is this vertex a contraction target".
	nt := len(ws.tokenEdges)
	ws.tailStart = growInts(ws.tailStart, n+1)
	ws.tailItems = growInts(ws.tailItems, nt)
	ws.keyTmp = growInts(ws.keyTmp, nt)
	ws.valTmp = growInts(ws.valTmp, nt)
	for j, ei := range ws.tokenEdges {
		ws.keyTmp[j] = ws.localID[s.G.Edges[ei].From]
		ws.valTmp[j] = j
	}
	ws.fillCSR(ws.tailStart, ws.tailItems, n, ws.keyTmp[:nt], ws.valTmp[:nt])
	return n, true, nil
}

// meanEdge is an edge for Karp's algorithm: weight per single token.
type meanEdge struct {
	from, to  int
	cost      rat.Rat
	tokenEdge int // original token edge (or -1 for expansion filler)
	// zero-token path following the token edge, in the workspace arena
	pathOff, pathLen int
}

// expandTokens converts contracted edges with k>1 tokens into k unit edges
// through fresh intermediate vertices (cost on the first hop). It fills
// ws.medges and returns the vertex count of the expanded graph.
func (ws *Workspace) expandTokens(n int) int {
	ws.medges = ws.medges[:0]
	for _, ce := range ws.cedges {
		if ce.tokens == 1 {
			ws.medges = append(ws.medges, meanEdge{ce.from, ce.to, ce.cost, ce.tokenEdge, ce.pathOff, ce.pathLen})
			continue
		}
		prev := ce.from
		for k := int64(0); k < ce.tokens; k++ {
			to := ce.to
			if k < ce.tokens-1 {
				to = n
				n++
			}
			cost := rat.Zero()
			te := -1
			off, ln := 0, 0
			if k == 0 {
				cost = ce.cost
				te = ce.tokenEdge
				off, ln = ce.pathOff, ce.pathLen
			}
			ws.medges = append(ws.medges, meanEdge{prev, to, cost, te, off, ln})
			prev = to
		}
	}
	return n
}

// karpMaxMean computes the maximum mean-weight cycle over ws.medges, exactly,
// together with a witness cycle. It handles graphs that are not strongly
// connected by working per SCC.
func (ws *Workspace) karpMaxMean(n int) (rat.Rat, []meanEdge, bool) {
	m := len(ws.medges)
	ws.karpStart = growInts(ws.karpStart, n+1)
	ws.karpSucc = growInts(ws.karpSucc, m)
	ws.keyTmp = growInts(ws.keyTmp, m)
	ws.valTmp = growInts(ws.valTmp, m)
	for j := range ws.medges {
		ws.keyTmp[j] = ws.medges[j].from
		ws.valTmp[j] = ws.medges[j].to
	}
	ws.fillCSR(ws.karpStart, ws.karpSucc, n, ws.keyTmp[:m], ws.valTmp[:m])
	comp, ncomp := ws.sccKarp.run(n, ws.karpStart, ws.karpSucc)
	best := rat.Zero()
	var bestCycle []meanEdge
	found := false
	for c := 0; c < ncomp; c++ {
		lambda, cyc, ok := ws.karpSCC(comp, c, n)
		if ok && (!found || best.Less(lambda)) {
			best, bestCycle, found = lambda, cyc, true
		}
	}
	return best, bestCycle, found
}

// karpSCC runs Karp's algorithm on one strongly connected component of the
// expanded contracted graph.
func (ws *Workspace) karpSCC(comp []int, c, nverts int) (rat.Rat, []meanEdge, bool) {
	ws.karpVerts = ws.karpVerts[:0]
	ws.karpID = growInts(ws.karpID, nverts)
	for v := 0; v < nverts; v++ {
		ws.karpID[v] = -1
		if comp[v] == c {
			ws.karpID[v] = len(ws.karpVerts)
			ws.karpVerts = append(ws.karpVerts, v)
		}
	}
	ws.karpWithin = ws.karpWithin[:0]
	for i, e := range ws.medges {
		if comp[e.from] == c && comp[e.to] == c {
			ws.karpWithin = append(ws.karpWithin, i)
		}
	}
	if len(ws.karpWithin) == 0 {
		return rat.Zero(), nil, false // trivial SCC without self loop
	}
	n := len(ws.karpVerts)

	// D[k][v] = max weight of a k-edge progression from source to v,
	// flattened row-major into reused tables.
	size := (n + 1) * n
	ws.kD = growRats(ws.kD, size)
	ws.kHas = growBools(ws.kHas, size)
	ws.kParent = growInts(ws.kParent, size)
	for i := 0; i < size; i++ {
		ws.kHas[i] = false
		ws.kParent[i] = -1
	}
	ws.kHas[0] = true
	ws.kD[0] = rat.Zero()
	for k := 1; k <= n; k++ {
		row, prev := k*n, (k-1)*n
		for _, mi := range ws.karpWithin {
			me := &ws.medges[mi]
			u, v := ws.karpID[me.from], ws.karpID[me.to]
			if !ws.kHas[prev+u] {
				continue
			}
			cand := ws.kD[prev+u].Add(me.cost)
			if !ws.kHas[row+v] || ws.kD[row+v].Less(cand) {
				ws.kD[row+v] = cand
				ws.kHas[row+v] = true
				ws.kParent[row+v] = mi
			}
		}
	}

	// λ* = max_v min_k (D[n][v]-D[k][v])/(n-k).
	found := false
	best := rat.Zero()
	bestV := -1
	last := n * n
	for v := 0; v < n; v++ {
		if !ws.kHas[last+v] {
			continue
		}
		inner := rat.Zero()
		innerSet := false
		for k := 0; k < n; k++ {
			if !ws.kHas[k*n+v] {
				continue
			}
			cand := ws.kD[last+v].Sub(ws.kD[k*n+v]).DivInt(int64(n - k))
			if !innerSet || cand.Less(inner) {
				inner = cand
				innerSet = true
			}
		}
		if !innerSet {
			continue
		}
		if !found || best.Less(inner) {
			best = inner
			bestV = v
			found = true
		}
	}
	if !found {
		return rat.Zero(), nil, false
	}

	// Witness: walk the n-edge progression ending at bestV back; some vertex
	// repeats, and the enclosed sub-walk is a maximum mean cycle.
	ws.pathV = growInts(ws.pathV, n+1) // local vertices along the progression
	ws.pathE = growInts(ws.pathE, n+1) // edge arriving at pathV[k] (medge index)
	ws.pathV[n] = bestV
	for k := n; k >= 1; k-- {
		mi := ws.kParent[k*n+ws.pathV[k]]
		ws.pathE[k] = mi
		ws.pathV[k-1] = ws.karpID[ws.medges[mi].from]
	}
	ws.seenPos = growInts(ws.seenPos, n)
	for i := 0; i < n; i++ {
		ws.seenPos[i] = -1
	}
	var cyc []meanEdge
	for k := 0; k <= n; k++ {
		if j := ws.seenPos[ws.pathV[k]]; j >= 0 {
			for t := j + 1; t <= k; t++ {
				cyc = append(cyc, ws.medges[ws.pathE[t]])
			}
			break
		}
		ws.seenPos[ws.pathV[k]] = k
	}
	if len(cyc) == 0 {
		panic(fmt.Sprintf("cycles: karp witness reconstruction failed (n=%d)", n))
	}
	// The enclosed cycle is not guaranteed to be *the* critical one in rare
	// tie situations; recompute its mean and, if it is below λ*, fall back to
	// a tight-cycle search by the caller. We signal that by returning the
	// ratio only; callers that need certified witnesses use VerifyRatio.
	mean := rat.Zero()
	for _, e := range cyc {
		mean = mean.Add(e.cost)
	}
	mean = mean.DivInt(int64(len(cyc)))
	if !mean.Equal(best) {
		// Keep λ* (which is correct) but drop the unreliable witness.
		return best, nil, true
	}
	return best, cyc, true
}
