package cycles

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rat"
)

// MaxRatio computes the maximum cycle ratio λ* = max_C cost(C)/tokens(C)
// exactly, by contracting token-carrying edges and running Karp's maximum
// mean cycle algorithm on the contracted graph.
//
// Requirements: the zero-token subgraph must be acyclic (Validate enforces
// this; it holds for every TPN the paper constructs, because all token-free
// places advance lexicographically in (row, column)). Returns ErrNoCycle if
// the graph is acyclic.
//
// The witness cycle in the result is expressed as edge indices of the
// original system.
func (s *System) MaxRatio() (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if !s.hasCycle() {
		return Result{}, ErrNoCycle
	}
	comp, ncomp := s.G.SCC()
	best := Result{}
	found := false
	for c := 0; c < ncomp; c++ {
		r, ok, err := s.maxRatioSCC(comp, c)
		if err != nil {
			return Result{}, err
		}
		if ok && (!found || best.Ratio.Less(r.Ratio)) {
			best = r
			found = true
		}
	}
	if !found {
		return Result{}, ErrNoCycle
	}
	if best.Cycle == nil {
		// Tie-breaking in Karp's witness walk can fail to isolate a critical
		// cycle; recover one from the tight subgraph at the (correct) ratio.
		best.Cycle = s.tightCycleWitness(best.Ratio)
	}
	return best, nil
}

// contractedEdge is an edge of the token-contracted graph: it starts with a
// token edge of the original system and follows a longest zero-token path.
type contractedEdge struct {
	from, to int     // indices into the token-edge list
	cost     rat.Rat // token edge cost + longest zero-token path cost
	tokens   int64
	// path reconstruction: the token edge index, then the zero-token edge
	// indices of the longest path from its head to the target's tail.
	tokenEdge int
	pathEdges []int
}

// maxRatioSCC contracts one strongly connected component and runs Karp on it.
func (s *System) maxRatioSCC(comp []int, c int) (Result, bool, error) {
	// Intra-component edges, split into token edges and zero-token edges.
	var tokenEdges, zeroEdges []int
	for i, e := range s.G.Edges {
		if comp[e.From] != c || comp[e.To] != c {
			continue
		}
		if s.Tokens[e.ID] > 0 {
			tokenEdges = append(tokenEdges, i)
		} else {
			zeroEdges = append(zeroEdges, i)
		}
	}
	if len(tokenEdges) == 0 {
		// Component with no token edge: acyclic by liveness (validated), so
		// it contributes no cycle.
		return Result{}, false, nil
	}

	// Map component vertices to local ids and build the zero-token DAG.
	local := make(map[int]int)
	var verts []int
	addVert := func(v int) int {
		if id, ok := local[v]; ok {
			return id
		}
		id := len(verts)
		local[v] = id
		verts = append(verts, v)
		return id
	}
	for _, ei := range tokenEdges {
		addVert(s.G.Edges[ei].From)
		addVert(s.G.Edges[ei].To)
	}
	for _, ei := range zeroEdges {
		addVert(s.G.Edges[ei].From)
		addVert(s.G.Edges[ei].To)
	}
	n := len(verts)
	dag := graph.New(n)
	for _, ei := range zeroEdges {
		e := s.G.Edges[ei]
		dag.AddEdge(local[e.From], local[e.To], ei)
	}
	order, err := dag.TopoOrder()
	if err != nil {
		return Result{}, false, ErrDeadlock
	}

	// Tails of token edges, for quick "is this vertex a contraction target".
	tailsOf := make(map[int][]int) // local vertex -> token edge list positions
	for pos, ei := range tokenEdges {
		tailsOf[local[s.G.Edges[ei].From]] = append(tailsOf[local[s.G.Edges[ei].From]], pos)
	}

	// For each token edge, longest zero-token path from its head to every
	// reachable vertex (DAG DP), generating contracted edges to every token
	// edge tail reached.
	var cedges []contractedEdge
	adj := dag.Adj()
	for pos, ei := range tokenEdges {
		head := local[s.G.Edges[ei].To]
		dist := make([]rat.Rat, n)
		has := make([]bool, n)
		pred := make([]int, n) // incoming zero edge on longest path
		for i := range pred {
			pred[i] = -1
		}
		has[head] = true
		for _, u := range order {
			if !has[u] {
				continue
			}
			for _, zi := range adj[u] {
				ze := dag.Edges[zi]
				cand := dist[u].Add(s.Cost[ze.ID])
				if !has[ze.To] || dist[ze.To].Less(cand) {
					dist[ze.To] = cand
					has[ze.To] = true
					pred[ze.To] = ze.ID
				}
			}
		}
		for v := 0; v < n; v++ {
			if !has[v] {
				continue
			}
			for _, toPos := range tailsOf[v] {
				// Reconstruct the zero-token path head -> v.
				var path []int
				for x := v; pred[x] != -1; {
					path = append([]int{pred[x]}, path...)
					x = local[s.G.Edges[pred[x]].From]
				}
				cedges = append(cedges, contractedEdge{
					from:      pos,
					to:        toPos,
					cost:      s.Cost[ei].Add(dist[v]),
					tokens:    int64(s.Tokens[ei]),
					tokenEdge: ei,
					pathEdges: path,
				})
			}
		}
	}
	if len(cedges) == 0 {
		return Result{}, false, nil
	}

	// Expand multi-token contracted edges so Karp's uniform-token assumption
	// holds. (The paper's TPNs only use single-token places; this keeps the
	// engine general.)
	expanded, nverts := expandTokens(cedges, len(tokenEdges))
	lambda, cyc, ok := karpMaxMean(expanded, nverts)
	if !ok {
		return Result{}, false, nil
	}
	// Translate the contracted witness cycle back to original edges.
	var witness []int
	for _, ce := range cyc {
		if ce.tokenEdge >= 0 {
			witness = append(witness, ce.tokenEdge)
			witness = append(witness, ce.pathEdges...)
		}
	}
	return Result{Ratio: lambda, Cycle: witness}, true, nil
}

// meanEdge is an edge for Karp's algorithm: weight per single token.
type meanEdge struct {
	from, to  int
	cost      rat.Rat
	tokenEdge int   // original token edge (or -1 for expansion filler)
	pathEdges []int // zero-token path following the token edge
}

// expandTokens converts contracted edges with k>1 tokens into k unit edges
// through fresh intermediate vertices (cost on the first hop).
func expandTokens(cedges []contractedEdge, n int) ([]meanEdge, int) {
	var out []meanEdge
	for _, ce := range cedges {
		if ce.tokens == 1 {
			out = append(out, meanEdge{ce.from, ce.to, ce.cost, ce.tokenEdge, ce.pathEdges})
			continue
		}
		prev := ce.from
		for k := int64(0); k < ce.tokens; k++ {
			to := ce.to
			if k < ce.tokens-1 {
				to = n
				n++
			}
			cost := rat.Zero()
			te := -1
			var pe []int
			if k == 0 {
				cost = ce.cost
				te = ce.tokenEdge
				pe = ce.pathEdges
			}
			out = append(out, meanEdge{prev, to, cost, te, pe})
			prev = to
		}
	}
	return out, n
}

// karpMaxMean computes the maximum mean-weight cycle over a graph given by
// unit-token edges, exactly, together with a witness cycle. It handles
// graphs that are not strongly connected by working per SCC.
func karpMaxMean(edges []meanEdge, n int) (rat.Rat, []meanEdge, bool) {
	g := graph.New(n)
	for i, e := range edges {
		g.AddEdge(e.from, e.to, i)
	}
	comp, ncomp := g.SCC()
	best := rat.Zero()
	var bestCycle []meanEdge
	found := false
	for c := 0; c < ncomp; c++ {
		lambda, cyc, ok := karpSCC(g, edges, comp, c)
		if ok && (!found || best.Less(lambda)) {
			best, bestCycle, found = lambda, cyc, true
		}
	}
	return best, bestCycle, found
}

// karpSCC runs Karp's algorithm on one strongly connected component.
func karpSCC(g *graph.Digraph, edges []meanEdge, comp []int, c int) (rat.Rat, []meanEdge, bool) {
	var verts []int
	for v := 0; v < g.N; v++ {
		if comp[v] == c {
			verts = append(verts, v)
		}
	}
	var within []int
	for i, e := range g.Edges {
		if comp[e.From] == c && comp[e.To] == c {
			within = append(within, i)
		}
	}
	if len(within) == 0 {
		return rat.Zero(), nil, false // trivial SCC without self loop
	}
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	n := len(verts)

	// D[k][v] = max weight of a k-edge progression from source to v.
	D := make([][]rat.Rat, n+1)
	has := make([][]bool, n+1)
	parent := make([][]int, n+1) // edge (index into `edges`) achieving D[k][v]
	for k := 0; k <= n; k++ {
		D[k] = make([]rat.Rat, n)
		has[k] = make([]bool, n)
		parent[k] = make([]int, n)
		for i := range parent[k] {
			parent[k][i] = -1
		}
	}
	has[0][0] = true
	for k := 1; k <= n; k++ {
		for _, gi := range within {
			e := g.Edges[gi]
			me := edges[e.ID]
			u, v := idx[e.From], idx[e.To]
			if !has[k-1][u] {
				continue
			}
			cand := D[k-1][u].Add(me.cost)
			if !has[k][v] || D[k][v].Less(cand) {
				D[k][v] = cand
				has[k][v] = true
				parent[k][v] = e.ID
			}
		}
	}

	// λ* = max_v min_k (D[n][v]-D[k][v])/(n-k).
	found := false
	best := rat.Zero()
	bestV := -1
	for v := 0; v < n; v++ {
		if !has[n][v] {
			continue
		}
		inner := rat.Zero()
		innerSet := false
		for k := 0; k < n; k++ {
			if !has[k][v] {
				continue
			}
			cand := D[n][v].Sub(D[k][v]).DivInt(int64(n - k))
			if !innerSet || cand.Less(inner) {
				inner = cand
				innerSet = true
			}
		}
		if !innerSet {
			continue
		}
		if !found || best.Less(inner) {
			best = inner
			bestV = v
			found = true
		}
	}
	if !found {
		return rat.Zero(), nil, false
	}

	// Witness: walk the n-edge progression ending at bestV back; some vertex
	// repeats, and the enclosed sub-walk is a maximum mean cycle.
	pathV := make([]int, n+1) // local vertices along the progression
	pathE := make([]int, n+1) // edge arriving at pathV[k] (edges index)
	pathV[n] = bestV
	for k := n; k >= 1; k-- {
		ei := parent[k][pathV[k]]
		pathE[k] = ei
		pathV[k-1] = idx[edges[ei].from]
	}
	seen := make(map[int]int) // local vertex -> first position
	var cyc []meanEdge
	for k := 0; k <= n; k++ {
		if j, ok := seen[pathV[k]]; ok {
			for t := j + 1; t <= k; t++ {
				cyc = append(cyc, edges[pathE[t]])
			}
			break
		}
		seen[pathV[k]] = k
	}
	if len(cyc) == 0 {
		panic(fmt.Sprintf("cycles: karp witness reconstruction failed (n=%d)", n))
	}
	// The enclosed cycle is not guaranteed to be *the* critical one in rare
	// tie situations; recompute its mean and, if it is below λ*, fall back to
	// a tight-cycle search by the caller. We signal that by returning the
	// ratio only; callers that need certified witnesses use VerifyRatio.
	mean := rat.Zero()
	for _, e := range cyc {
		mean = mean.Add(e.cost)
	}
	mean = mean.DivInt(int64(len(cyc)))
	if !mean.Equal(best) {
		// Keep λ* (which is correct) but drop the unreliable witness.
		return best, nil, true
	}
	return best, cyc, true
}
