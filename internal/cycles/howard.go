package cycles

import (
	"fmt"

	"repro/internal/rat"
)

// MaxRatioHoward computes the maximum cycle ratio with Howard's policy
// iteration, exactly in rational arithmetic. It is the engine the
// (max,+)-algebra literature uses for timed event graphs and serves as an
// independent implementation cross-checked against MaxRatio.
func (s *System) MaxRatioHoward() (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if !s.hasCycle() {
		return Result{}, ErrNoCycle
	}
	comp, ncomp := s.G.SCC()
	best := rat.Zero()
	var bestCycle []int
	found := false
	for c := 0; c < ncomp; c++ {
		lambda, cyc, ok, err := s.howardSCC(comp, c)
		if err != nil {
			return Result{}, err
		}
		if ok && (!found || best.Less(lambda)) {
			best, bestCycle, found = lambda, cyc, true
		}
	}
	if !found {
		return Result{}, ErrNoCycle
	}
	return Result{Ratio: best, Cycle: bestCycle}, nil
}

// howardSCC runs policy iteration on one strongly connected component,
// maximizing the cycle ratio.
func (s *System) howardSCC(comp []int, c int) (rat.Rat, []int, bool, error) {
	var verts []int
	for v := 0; v < s.G.N; v++ {
		if comp[v] == c {
			verts = append(verts, v)
		}
	}
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	n := len(verts)
	out := make([][]int, n) // local vertex -> edge indices (into s.G.Edges)
	nedges := 0
	for i, e := range s.G.Edges {
		if comp[e.From] == c && comp[e.To] == c {
			out[idx[e.From]] = append(out[idx[e.From]], i)
			nedges++
		}
	}
	if nedges == 0 {
		return rat.Zero(), nil, false, nil
	}
	// In a non-trivial SCC every vertex has an outgoing intra-SCC edge.
	policy := make([]int, n)
	for v := 0; v < n; v++ {
		if len(out[v]) == 0 {
			return rat.Zero(), nil, false, fmt.Errorf("cycles: vertex %d has no outgoing edge inside its SCC", verts[v])
		}
		policy[v] = out[v][0]
	}

	lambda := make([]rat.Rat, n) // per-vertex cycle ratio under current policy
	value := make([]rat.Rat, n)  // bias values
	succ := func(ei int) int { return idx[s.G.Edges[ei].To] }

	maxIter := 2*nedges*n + 16 // safety cap; Howard terminates far earlier
	for iter := 0; iter < maxIter; iter++ {
		// --- Value determination on the policy (functional) graph. ---
		// Find the cycle each vertex reaches and its ratio.
		state := make([]int, n) // 0 unvisited, 1 in progress, 2 done
		cycleOf := make([]int, n)
		var cycles [][]int // each: edge list of a policy cycle
		var cycleRatio []rat.Rat
		var cycleAnchor []int // a vertex on the cycle
		for v0 := 0; v0 < n; v0++ {
			if state[v0] != 0 {
				continue
			}
			// Walk the functional graph recording the path.
			var path []int
			v := v0
			for state[v] == 0 {
				state[v] = 1
				path = append(path, v)
				v = succ(policy[v])
			}
			var cid int
			if state[v] == 1 {
				// Found a new cycle starting at v.
				cid = len(cycles)
				var ce []int
				cost := rat.Zero()
				tokens := int64(0)
				x := v
				for {
					ce = append(ce, policy[x])
					cost = cost.Add(s.Cost[policy[x]])
					tokens += int64(s.Tokens[policy[x]])
					x = succ(policy[x])
					if x == v {
						break
					}
				}
				if tokens == 0 {
					return rat.Zero(), nil, false, ErrDeadlock
				}
				cycles = append(cycles, ce)
				cycleRatio = append(cycleRatio, cost.DivInt(tokens))
				cycleAnchor = append(cycleAnchor, v)
			} else {
				cid = cycleOf[v]
			}
			for _, u := range path {
				state[u] = 2
				cycleOf[u] = cid
			}
		}
		// Values: anchor vertices get 0; propagate backwards along policy
		// edges: value[u] = cost(u) - λ·tokens(u) + value[succ(u)].
		computed := make([]bool, n)
		for ci := range cycles {
			a := cycleAnchor[ci]
			value[a] = rat.Zero()
			lambda[a] = cycleRatio[ci]
			computed[a] = true
			// Assign values along the cycle in reverse traversal order.
			var order []int
			x := a
			for {
				order = append(order, x)
				x = succ(policy[x])
				if x == a {
					break
				}
			}
			for i := len(order) - 1; i >= 1; i-- {
				u := order[i]
				nu := succ(policy[u])
				lambda[u] = cycleRatio[ci]
				value[u] = s.Cost[policy[u]].Sub(lambda[u].MulInt(int64(s.Tokens[policy[u]]))).Add(value[nu])
				computed[u] = true
			}
		}
		// Trees hanging off the cycles: iterate until all computed.
		for remaining := true; remaining; {
			remaining = false
			progress := false
			for u := 0; u < n; u++ {
				if computed[u] {
					continue
				}
				nu := succ(policy[u])
				if !computed[nu] {
					remaining = true
					continue
				}
				lambda[u] = lambda[nu]
				value[u] = s.Cost[policy[u]].Sub(lambda[u].MulInt(int64(s.Tokens[policy[u]]))).Add(value[nu])
				computed[u] = true
				progress = true
			}
			if remaining && !progress {
				return rat.Zero(), nil, false, fmt.Errorf("cycles: howard value determination stuck")
			}
		}

		// --- Policy improvement (two-level lexicographic test). ---
		improved := false
		for u := 0; u < n; u++ {
			for _, ei := range out[u] {
				v := succ(ei)
				if lambda[u].Less(lambda[v]) {
					policy[u] = ei
					improved = true
					continue
				}
				if lambda[v].Less(lambda[u]) {
					continue
				}
				cand := s.Cost[ei].Sub(lambda[u].MulInt(int64(s.Tokens[ei]))).Add(value[v])
				if value[u].Less(cand) {
					policy[u] = ei
					value[u] = cand
					improved = true
				}
			}
		}
		if !improved {
			// Converged: the best ratio is the max λ over vertices; its
			// policy cycle is a witness.
			best := lambda[0]
			bestV := 0
			for v := 1; v < n; v++ {
				if best.Less(lambda[v]) {
					best = lambda[v]
					bestV = v
				}
			}
			// Recover the cycle bestV reaches under the final policy.
			seen := make(map[int]int)
			var walkEdges []int
			x := bestV
			for {
				if pos, ok := seen[x]; ok {
					return best, append([]int(nil), walkEdges[pos:]...), true, nil
				}
				seen[x] = len(walkEdges)
				walkEdges = append(walkEdges, policy[x])
				x = succ(policy[x])
			}
		}
	}
	return rat.Zero(), nil, false, fmt.Errorf("cycles: howard did not converge within iteration cap")
}
