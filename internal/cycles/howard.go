package cycles

import (
	"fmt"

	"repro/internal/rat"
)

// MaxRatioHoward computes the maximum cycle ratio with Howard's policy
// iteration, exactly in rational arithmetic. It is the engine the
// (max,+)-algebra literature uses for timed event graphs: it maintains a
// policy (one outgoing edge per vertex), computes the cycle ratio and bias
// values of the induced functional graph, and switches edges until no
// improvement exists. On large event graphs it converges in a handful of
// iterations where Karp's dynamic program pays Θ(nm) unconditionally.
//
// MaxRatioHoward allocates a fresh Workspace per call; hot loops should hold
// a Workspace (or a core.Solver, which owns one) and call
// Workspace.MaxRatioHoward — or Workspace.MaxRatioBackend for the
// size-dependent automatic choice.
func (s *System) MaxRatioHoward() (Result, error) {
	var ws Workspace
	return ws.MaxRatioHoward(s)
}

// howardScratch owns every table Howard's policy iteration touches: the
// per-SCC edge list and its CSR, the policy vector, the per-vertex cycle
// ratios (λ) and bias values, the functional-graph walk state and the
// witness bookkeeping. Keeping the policy tables in one place — and resetting
// every entry a run reads at the start of that run — is what guarantees a
// Howard call followed by a Karp call (or vice versa) on the same Workspace
// can never observe the other engine's leftovers: the two engines share only
// the epoch-stamped localID table and the staging buffers that are rebuilt
// from scratch inside every call.
type howardScratch struct {
	edges  []int // intra-SCC edge indices, ascending
	start  []int // CSR: local vertex -> positions into items
	items  []int // edge indices grouped by local tail vertex
	policy []int // local vertex -> chosen outgoing edge (global index)
	lambda []rat.Rat
	value  []rat.Rat
	state  []int // functional-graph walk: 0 unvisited, 1 in progress, 2 done
	cycOf  []int
	done   []bool
	path   []int // current functional-graph walk
	order  []int // traversal order of one policy cycle
	seen   []int // witness walk: local vertex -> position, -1 = unseen

	cycleRatio  []rat.Rat
	cycleAnchor []int
}

// MaxRatioHoward computes the maximum cycle ratio of s by Howard policy
// iteration on the workspace's reused scratch. The ratio is exact and always
// equals what MaxRatio returns (both engines are exact); the witness cycle
// achieves the ratio but may traverse a different critical cycle when
// several exist. s is not mutated.
func (ws *Workspace) MaxRatioHoward(s *System) (Result, error) {
	for i, c := range s.Cost {
		if c.Sign() < 0 {
			return Result{}, fmt.Errorf("cycles: edge %d has negative cost %v", i, c)
		}
	}
	if !ws.acyclic(s, true) {
		return Result{}, ErrDeadlock
	}
	if ws.acyclic(s, false) {
		return Result{}, ErrNoCycle
	}
	comp, ncomp := ws.scc(s)
	best := Result{}
	found := false
	for c := 0; c < ncomp; c++ {
		r, ok, err := ws.howardSCC(s, comp, c)
		if err != nil {
			return Result{}, err
		}
		if ok && (!found || best.Ratio.Less(r.Ratio)) {
			best = r
			found = true
		}
	}
	if !found {
		return Result{}, ErrNoCycle
	}
	return best, nil
}

// howardSCC runs policy iteration on one strongly connected component,
// maximizing the cycle ratio, entirely on reused scratch.
func (ws *Workspace) howardSCC(s *System, comp []int, c int) (Result, bool, error) {
	h := &ws.howard
	// Intra-component edges, ascending (the deterministic iteration order
	// every tie-break below inherits).
	h.edges = h.edges[:0]
	for i, e := range s.G.Edges {
		if comp[e.From] == c && comp[e.To] == c {
			h.edges = append(h.edges, i)
		}
	}
	if len(h.edges) == 0 {
		// Trivial SCC without a self loop: contributes no cycle.
		return Result{}, false, nil
	}

	// Local ids in first-seen edge-endpoint order. In an SCC with at least
	// one edge this enumerates exactly the component's vertices.
	ws.epoch++
	ws.localID = growInts(ws.localID, s.G.N)
	ws.localStamp = growInts(ws.localStamp, s.G.N)
	ws.verts = ws.verts[:0]
	local := func(v int) int {
		if ws.localStamp[v] == ws.epoch {
			return ws.localID[v]
		}
		id := len(ws.verts)
		ws.localStamp[v] = ws.epoch
		ws.localID[v] = id
		ws.verts = append(ws.verts, v)
		return id
	}
	for _, ei := range h.edges {
		local(s.G.Edges[ei].From)
		local(s.G.Edges[ei].To)
	}
	n := len(ws.verts)
	ne := len(h.edges)

	// Outgoing-edge CSR over local vertices.
	h.start = growInts(h.start, n+1)
	h.items = growInts(h.items, ne)
	ws.keyTmp = growInts(ws.keyTmp, ne)
	ws.valTmp = growInts(ws.valTmp, ne)
	for j, ei := range h.edges {
		ws.keyTmp[j] = ws.localID[s.G.Edges[ei].From]
		ws.valTmp[j] = ei
	}
	ws.fillCSR(h.start, h.items, n, ws.keyTmp[:ne], ws.valTmp[:ne])

	// Initial policy: first outgoing edge of every vertex. A non-trivial SCC
	// gives every vertex an outgoing intra-SCC edge.
	h.policy = growInts(h.policy, n)
	for v := 0; v < n; v++ {
		if h.start[v] == h.start[v+1] {
			return Result{}, false, fmt.Errorf("cycles: vertex %d has no outgoing edge inside its SCC", ws.verts[v])
		}
		h.policy[v] = h.items[h.start[v]]
	}
	h.lambda = growRats(h.lambda, n)
	h.value = growRats(h.value, n)
	h.state = growInts(h.state, n)
	h.cycOf = growInts(h.cycOf, n)
	h.done = growBools(h.done, n)
	succ := func(ei int) int { return ws.localID[s.G.Edges[ei].To] }

	maxIter := 2*ne*n + 16 // safety cap; Howard terminates far earlier
	for iter := 0; iter < maxIter; iter++ {
		// --- Value determination on the policy (functional) graph. ---
		// Find the cycle each vertex reaches and its ratio.
		for v := 0; v < n; v++ {
			h.state[v] = 0
		}
		h.cycleRatio = h.cycleRatio[:0]
		h.cycleAnchor = h.cycleAnchor[:0]
		for v0 := 0; v0 < n; v0++ {
			if h.state[v0] != 0 {
				continue
			}
			// Walk the functional graph recording the path.
			h.path = h.path[:0]
			v := v0
			for h.state[v] == 0 {
				h.state[v] = 1
				h.path = append(h.path, v)
				v = succ(h.policy[v])
			}
			var cid int
			if h.state[v] == 1 {
				// Found a new policy cycle anchored at v.
				cid = len(h.cycleAnchor)
				cost := rat.Zero()
				tokens := int64(0)
				x := v
				for {
					cost = cost.Add(s.Cost[h.policy[x]])
					tokens += int64(s.Tokens[h.policy[x]])
					x = succ(h.policy[x])
					if x == v {
						break
					}
				}
				if tokens == 0 {
					return Result{}, false, ErrDeadlock
				}
				h.cycleRatio = append(h.cycleRatio, cost.DivInt(tokens))
				h.cycleAnchor = append(h.cycleAnchor, v)
			} else {
				cid = h.cycOf[v]
			}
			for _, u := range h.path {
				h.state[u] = 2
				h.cycOf[u] = cid
			}
		}
		// Values: anchor vertices get 0; propagate backwards along policy
		// edges: value[u] = cost(u) - λ·tokens(u) + value[succ(u)].
		for v := 0; v < n; v++ {
			h.done[v] = false
		}
		for ci := range h.cycleAnchor {
			a := h.cycleAnchor[ci]
			h.value[a] = rat.Zero()
			h.lambda[a] = h.cycleRatio[ci]
			h.done[a] = true
			// Assign values along the cycle in reverse traversal order.
			h.order = h.order[:0]
			x := a
			for {
				h.order = append(h.order, x)
				x = succ(h.policy[x])
				if x == a {
					break
				}
			}
			for i := len(h.order) - 1; i >= 1; i-- {
				u := h.order[i]
				nu := succ(h.policy[u])
				h.lambda[u] = h.cycleRatio[ci]
				h.value[u] = s.Cost[h.policy[u]].Sub(h.lambda[u].MulInt(int64(s.Tokens[h.policy[u]]))).Add(h.value[nu])
				h.done[u] = true
			}
		}
		// Trees hanging off the cycles: iterate until all computed.
		for remaining := true; remaining; {
			remaining = false
			progress := false
			for u := 0; u < n; u++ {
				if h.done[u] {
					continue
				}
				nu := succ(h.policy[u])
				if !h.done[nu] {
					remaining = true
					continue
				}
				h.lambda[u] = h.lambda[nu]
				h.value[u] = s.Cost[h.policy[u]].Sub(h.lambda[u].MulInt(int64(s.Tokens[h.policy[u]]))).Add(h.value[nu])
				h.done[u] = true
				progress = true
			}
			if remaining && !progress {
				return Result{}, false, fmt.Errorf("cycles: howard value determination stuck")
			}
		}

		// --- Policy improvement (two-level lexicographic test). ---
		improved := false
		for u := 0; u < n; u++ {
			for t := h.start[u]; t < h.start[u+1]; t++ {
				ei := h.items[t]
				v := succ(ei)
				if h.lambda[u].Less(h.lambda[v]) {
					h.policy[u] = ei
					improved = true
					continue
				}
				if h.lambda[v].Less(h.lambda[u]) {
					continue
				}
				cand := s.Cost[ei].Sub(h.lambda[u].MulInt(int64(s.Tokens[ei]))).Add(h.value[v])
				if h.value[u].Less(cand) {
					h.policy[u] = ei
					h.value[u] = cand
					improved = true
				}
			}
		}
		if !improved {
			// Converged: the best ratio is the max λ over vertices; its
			// policy cycle is a witness.
			best := h.lambda[0]
			bestV := 0
			for v := 1; v < n; v++ {
				if best.Less(h.lambda[v]) {
					best = h.lambda[v]
					bestV = v
				}
			}
			// Recover the cycle bestV reaches under the final policy. The
			// witness is the only allocation of the call: it escapes into the
			// Result, exactly like MaxRatio's witness.
			h.seen = growInts(h.seen, n)
			for v := 0; v < n; v++ {
				h.seen[v] = -1
			}
			h.path = h.path[:0] // reused as the edge walk
			x := bestV
			for {
				if pos := h.seen[x]; pos >= 0 {
					return Result{Ratio: best, Cycle: append([]int(nil), h.path[pos:]...)}, true, nil
				}
				h.seen[x] = len(h.path)
				h.path = append(h.path, h.policy[x])
				x = succ(h.policy[x])
			}
		}
	}
	return Result{}, false, fmt.Errorf("cycles: howard did not converge within iteration cap")
}
