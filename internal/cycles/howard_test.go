package cycles

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rat"
)

// TestHowardWorkspaceMatchesKarp runs both exact engines on one shared
// workspace over 200 random live systems: the ratios must agree exactly and
// each engine's witness must attain the reported ratio.
func TestHowardWorkspaceMatchesKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	var ws Workspace
	for trial := 0; trial < 200; trial++ {
		s := randomLiveSystem(rng, 2+rng.Intn(20))
		karp, err := ws.MaxRatio(s)
		if err != nil {
			t.Fatalf("trial %d karp: %v", trial, err)
		}
		how, err := ws.MaxRatioHoward(s)
		if err != nil {
			t.Fatalf("trial %d howard: %v", trial, err)
		}
		if !karp.Ratio.Equal(how.Ratio) {
			t.Fatalf("trial %d: karp %v != howard %v", trial, karp.Ratio, how.Ratio)
		}
		for name, res := range map[string]Result{"karp": karp, "howard": how} {
			wr, err := s.CycleRatio(res.Cycle)
			if err != nil {
				t.Fatalf("trial %d %s witness: %v", trial, name, err)
			}
			if !wr.Equal(res.Ratio) {
				t.Fatalf("trial %d: %s witness ratio %v != reported %v", trial, name, wr, res.Ratio)
			}
		}
		if err := s.VerifyRatio(how.Ratio); err != nil {
			t.Fatalf("trial %d: certificate: %v", trial, err)
		}
	}
}

// TestHowardWorkspaceMatchesFresh requires a reused workspace to return
// results bit-identical — ratio and witness — to a fresh workspace per call:
// Howard is deterministic, so any divergence means scratch leaked between
// calls.
func TestHowardWorkspaceMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var shared Workspace
	for trial := 0; trial < 80; trial++ {
		s := randomLiveSystem(rng, 2+rng.Intn(16))
		got, gotErr := shared.MaxRatioHoward(s)
		var fresh Workspace
		want, wantErr := fresh.MaxRatioHoward(s)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !got.Ratio.Equal(want.Ratio) {
			t.Fatalf("trial %d: shared ratio %v != fresh %v", trial, got.Ratio, want.Ratio)
		}
		if len(got.Cycle) != len(want.Cycle) {
			t.Fatalf("trial %d: witness lengths differ: %v vs %v", trial, got.Cycle, want.Cycle)
		}
		for i := range got.Cycle {
			if got.Cycle[i] != want.Cycle[i] {
				t.Fatalf("trial %d: witness differs at %d: %v vs %v", trial, i, got.Cycle, want.Cycle)
			}
		}
	}
}

// TestWorkspaceInterleaveNoStaleTables is the regression test for the
// stale-policy-table hazard: a Howard run followed by a Karp run (and vice
// versa) on the same workspace must be bit-identical — ratio AND witness —
// to the same run on a workspace the other engine never touched. Howard's
// policy tables live in their own scratch struct and every entry a run reads
// is re-initialized, so neither engine can observe the other's leftovers.
func TestWorkspaceInterleaveNoStaleTables(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var shared Workspace
	identical := func(t *testing.T, trial int, label string, got, want Result) {
		t.Helper()
		if !got.Ratio.Equal(want.Ratio) {
			t.Fatalf("trial %d %s: interleaved ratio %v != isolated %v", trial, label, got.Ratio, want.Ratio)
		}
		if len(got.Cycle) != len(want.Cycle) {
			t.Fatalf("trial %d %s: witness %v != isolated %v", trial, label, got.Cycle, want.Cycle)
		}
		for i := range got.Cycle {
			if got.Cycle[i] != want.Cycle[i] {
				t.Fatalf("trial %d %s: witness %v != isolated %v", trial, label, got.Cycle, want.Cycle)
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		// Two systems of different sizes so grown tables carry plausible
		// stale content from one into the other.
		a := randomLiveSystem(rng, 3+rng.Intn(18))
		b := randomLiveSystem(rng, 3+rng.Intn(18))

		// Howard on a, then Karp on b — Karp must not see Howard's tables.
		if _, err := shared.MaxRatioHoward(a); err != nil {
			t.Fatalf("trial %d howard(a): %v", trial, err)
		}
		gotKarp, err := shared.MaxRatio(b)
		if err != nil {
			t.Fatalf("trial %d karp(b): %v", trial, err)
		}
		var freshK Workspace
		wantKarp, err := freshK.MaxRatio(b)
		if err != nil {
			t.Fatal(err)
		}
		identical(t, trial, "howard->karp", gotKarp, wantKarp)

		// Karp on a, then Howard on b — and the other direction.
		if _, err := shared.MaxRatio(a); err != nil {
			t.Fatalf("trial %d karp(a): %v", trial, err)
		}
		gotHow, err := shared.MaxRatioHoward(b)
		if err != nil {
			t.Fatalf("trial %d howard(b): %v", trial, err)
		}
		var freshH Workspace
		wantHow, err := freshH.MaxRatioHoward(b)
		if err != nil {
			t.Fatal(err)
		}
		identical(t, trial, "karp->howard", gotHow, wantHow)
	}
}

// TestHowardErrors checks the error semantics match the Karp engine's.
func TestHowardErrors(t *testing.T) {
	var ws Workspace

	neg := NewSystem(2)
	neg.AddEdge(0, 1, rat.FromInt(-1), 1)
	neg.AddEdge(1, 0, rat.FromInt(1), 1)
	if _, err := ws.MaxRatioHoward(neg); err == nil {
		t.Error("negative cost accepted")
	}

	dead := NewSystem(2)
	dead.AddEdge(0, 1, rat.FromInt(1), 0)
	dead.AddEdge(1, 0, rat.FromInt(1), 0)
	if _, err := ws.MaxRatioHoward(dead); !errors.Is(err, ErrDeadlock) {
		t.Errorf("zero-token cycle: got %v, want ErrDeadlock", err)
	}

	acyc := NewSystem(3)
	acyc.AddEdge(0, 1, rat.FromInt(1), 1)
	acyc.AddEdge(1, 2, rat.FromInt(1), 0)
	if _, err := ws.MaxRatioHoward(acyc); !errors.Is(err, ErrNoCycle) {
		t.Errorf("acyclic: got %v, want ErrNoCycle", err)
	}
}

// TestHowardMultiTokenEdges: Howard handles token counts > 1 directly (no
// edge expansion): a loop of cost 9 with 3 tokens has ratio 3.
func TestHowardMultiTokenEdges(t *testing.T) {
	var ws Workspace
	s := NewSystem(1)
	s.AddEdge(0, 0, rat.FromInt(9), 3)
	res, err := ws.MaxRatioHoward(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.FromInt(3)) {
		t.Errorf("ratio %v, want 3", res.Ratio)
	}
	if wr, err := s.CycleRatio(res.Cycle); err != nil || !wr.Equal(res.Ratio) {
		t.Errorf("witness ratio %v err %v", wr, err)
	}
}

// TestBackendParseString round-trips the flag values.
func TestBackendParseString(t *testing.T) {
	// Every backend value — current and future — must round-trip through
	// String/ParseBackend, so a new tier cannot ship half-wired.
	for i := 0; i < NumBackends; i++ {
		b := Backend(i)
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if b, err := ParseBackend(""); err != nil || b != BackendAuto {
		t.Errorf("empty backend = %v, %v; want auto", b, err)
	}
	if _, err := ParseBackend("bogus"); err == nil {
		t.Error("bogus backend accepted")
	}
	// The error message is user-facing flag help: it must enumerate every
	// parseable tier (the fix this PR's satellite demands).
	_, err := ParseBackend("bogus")
	for i := 0; i < NumBackends; i++ {
		if name := Backend(i).String(); !strings.Contains(err.Error(), name) {
			t.Errorf("ParseBackend error %q does not mention %q", err, name)
		}
	}
}

// TestMaxRatioBackendRouting: every backend value returns the same exact
// ratio, on systems on both sides of the auto heuristic — a sparse-token
// ring with chords (auto routes to Karp: contraction keeps the graph tiny)
// and a dense all-token system (auto routes to Howard: contraction would
// degenerate to the identity and Karp would pay its full quadratic table).
func TestMaxRatioBackendRouting(t *testing.T) {
	var ws Workspace
	rng := rand.New(rand.NewSource(8))

	sparse := ring(40, rat.New(7, 3))
	for k := 0; k < 12; k++ {
		u := rng.Intn(39)
		v := u + 1 + rng.Intn(39-u)
		sparse.AddEdge(u, v, rat.FromInt(int64(1+rng.Intn(9))), 0)
		sparse.AddEdge(v, u, rat.FromInt(int64(1+rng.Intn(9))), 1)
	}
	dense := NewSystem(20)
	for u := 0; u < 20; u++ {
		for k := 0; k < 4; k++ {
			dense.AddEdge(u, rng.Intn(20), rat.FromInt(int64(1+rng.Intn(30))), 1)
		}
	}
	for name, s := range map[string]*System{"sparse-tokens": sparse, "all-tokens": dense} {
		want, err := ws.MaxRatio(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []Backend{BackendAuto, BackendKarp, BackendHoward, BackendFloatScreen} {
			got, err := ws.MaxRatioBackend(s, b)
			if err != nil {
				t.Fatalf("%s backend=%v: %v", name, b, err)
			}
			if !got.Ratio.Equal(want.Ratio) {
				t.Fatalf("%s backend=%v: ratio %v != %v", name, b, got.Ratio, want.Ratio)
			}
			if wr, err := s.CycleRatio(got.Cycle); err != nil || !wr.Equal(got.Ratio) {
				t.Fatalf("%s backend=%v: witness ratio %v err %v", name, b, wr, err)
			}
		}
		// The float sweep's enclosure must contain the exact ratio on both
		// sides of the auto-routing split.
		if fr, err := ws.ApproxMaxRatio(s); err != nil || !fr.Contains(want.Ratio) {
			t.Fatalf("%s: float enclosure [%g ± %g] (err %v) misses %v", name, fr.Ratio, fr.Err, err, want.Ratio)
		}
	}
	if b := autoBackend(sparse); b != BackendKarp {
		t.Errorf("auto on sparse-token system routed to %v, want karp", b)
	}
	if b := autoBackend(dense); b != BackendHoward {
		t.Errorf("auto on all-token system routed to %v, want howard", b)
	}
}

// TestHowardReuseCutsAllocations: after warm-up, a Howard evaluation on a
// reused workspace allocates only the escaping witness slice — the
// zero-allocation reuse story of the contraction engine carries over.
func TestHowardReuseCutsAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randomLiveSystem(rng, 40)
	var ws Workspace
	if _, err := ws.MaxRatioHoward(s); err != nil { // warm-up sizes the tables
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.MaxRatioHoward(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("reused Howard workspace: %.1f allocs/op, want <= 4 (witness only)", allocs)
	}
}
