package cycles

import (
	"repro/internal/rat"
)

// MaxRatioBrute enumerates every elementary cycle (Johnson-style DFS with a
// blocked set) and returns the maximum cost/token ratio. Exponential; only
// for small graphs, used as ground truth in tests and for the tiny
// hand-worked examples of the paper.
func (s *System) MaxRatioBrute() (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	var (
		found bool
		best  rat.Rat
		bestC []int
	)
	consider := func(cycle []int) error {
		r, err := s.ratioOfCycle(cycle)
		if err != nil {
			return err
		}
		if !found || best.Less(r) {
			best = r
			bestC = append([]int(nil), cycle...)
			found = true
		}
		return nil
	}
	if err := s.EnumerateElementaryCycles(consider); err != nil {
		return Result{}, err
	}
	if !found {
		return Result{}, ErrNoCycle
	}
	return Result{Ratio: best, Cycle: bestC}, nil
}

// EnumerateElementaryCycles calls fn for every elementary (simple) cycle of
// the graph, passing the cycle as a slice of edge indices. Enumeration stops
// early if fn returns an error.
//
// The implementation is a straightforward rooted DFS: for each root r (in
// increasing order) it enumerates cycles whose minimum vertex is r, which
// visits each elementary cycle exactly once.
func (s *System) EnumerateElementaryCycles(fn func(cycle []int) error) error {
	adj := s.G.Adj()
	n := s.G.N
	onPath := make([]bool, n)
	var stack []int // edge indices of the current path

	var dfs func(root, v int) error
	dfs = func(root, v int) error {
		onPath[v] = true
		for _, ei := range adj[v] {
			w := s.G.Edges[ei].To
			if w < root {
				continue // cycles through smaller vertices are found from their own root
			}
			if w == root {
				stack = append(stack, ei)
				if err := fn(stack); err != nil {
					return err
				}
				stack = stack[:len(stack)-1]
				continue
			}
			if onPath[w] {
				continue
			}
			stack = append(stack, ei)
			if err := dfs(root, w); err != nil {
				return err
			}
			stack = stack[:len(stack)-1]
		}
		onPath[v] = false
		return nil
	}

	for root := 0; root < n; root++ {
		if err := dfs(root, root); err != nil {
			return err
		}
	}
	return nil
}
