package cycles

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

func TestVertexRatesChain(t *testing.T) {
	// ring(0,1) ratio 4 -> vertex 2 downstream -> ring(3,4) ratio 10.
	s := NewSystem(5)
	s.AddEdge(0, 1, rat.FromInt(2), 0)
	s.AddEdge(1, 0, rat.FromInt(2), 1) // ratio 4
	s.AddEdge(1, 2, rat.FromInt(1), 0)
	s.AddEdge(2, 3, rat.FromInt(1), 0)
	s.AddEdge(3, 4, rat.FromInt(5), 0)
	s.AddEdge(4, 3, rat.FromInt(5), 1) // ratio 10
	rates, err := s.VertexRates()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 4, 4, 10, 10}
	for v, w := range want {
		if !rates[v].Equal(rat.FromInt(w)) {
			t.Errorf("rate[%d] = %v, want %d", v, rates[v], w)
		}
	}
}

func TestVertexRatesDecoupled(t *testing.T) {
	// Two disjoint rings: each keeps its own rate; a source vertex feeding
	// both has no cycle upstream => rate 0.
	s := NewSystem(5)
	s.AddEdge(0, 1, rat.FromInt(0), 0) // source 0 -> ring A
	s.AddEdge(1, 1, rat.FromInt(3), 1) // ring A: ratio 3
	s.AddEdge(0, 2, rat.FromInt(0), 0) // source 0 -> ring B
	s.AddEdge(2, 2, rat.FromInt(7), 1) // ring B: ratio 7
	s.AddEdge(3, 4, rat.FromInt(9), 1) // isolated pair without cycle
	rates, err := s.VertexRates()
	if err != nil {
		t.Fatal(err)
	}
	if !rates[0].IsZero() {
		t.Errorf("source rate = %v, want 0", rates[0])
	}
	if !rates[1].Equal(rat.FromInt(3)) || !rates[2].Equal(rat.FromInt(7)) {
		t.Errorf("ring rates = %v / %v", rates[1], rates[2])
	}
	if !rates[3].IsZero() || !rates[4].IsZero() {
		t.Errorf("acyclic rates = %v / %v", rates[3], rates[4])
	}
}

func TestVertexRatesMaxIsGlobalRatio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomLiveSystem(rng, 3+rng.Intn(6))
		rates, err := s.VertexRates()
		if err != nil {
			return false
		}
		global, err := s.MaxRatio()
		if err != nil {
			return false
		}
		mx := rat.Zero()
		for _, r := range rates {
			mx = rat.Max(mx, r)
		}
		return mx.Equal(global.Ratio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestVertexRatesMonotoneAlongEdges(t *testing.T) {
	// rate(To) >= rate(From) for every edge (downstream vertices are
	// throttled by everything upstream).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomLiveSystem(rng, 3+rng.Intn(6))
		rates, err := s.VertexRates()
		if err != nil {
			return false
		}
		for _, e := range s.G.Edges {
			if rates[e.To].Less(rates[e.From]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCondensation(t *testing.T) {
	s := NewSystem(4)
	s.AddEdge(0, 1, rat.One(), 0)
	s.AddEdge(1, 0, rat.One(), 1)
	s.AddEdge(1, 2, rat.One(), 0)
	s.AddEdge(2, 3, rat.One(), 0)
	s.AddEdge(3, 2, rat.One(), 1)
	dag, comp := s.Condensation()
	if dag.N != 2 {
		t.Fatalf("condensation has %d nodes, want 2", dag.N)
	}
	if len(dag.Edges) != 1 {
		t.Fatalf("condensation has %d edges, want 1 (deduplicated)", len(dag.Edges))
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("comp = %v", comp)
	}
	if !dag.IsAcyclic() {
		t.Fatal("condensation not acyclic")
	}
}
