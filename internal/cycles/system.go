// Package cycles computes maximum cycle ratios of directed graphs whose
// edges carry an exact cost and a token count:
//
//	λ* = max over directed cycles C of  cost(C) / tokens(C).
//
// This is exactly the critical-cycle computation of Section 4 of the paper:
// the period of a timed event graph equals the maximum, over its cycles, of
// the total firing time divided by the number of tokens (Baccelli et al.,
// "Synchronization and Linearity").
//
// Four engines are provided and cross-checked against each other:
//
//   - MaxRatio (token contraction + Karp): exact, the small-graph default.
//     All TPNs built in this repository have an acyclic zero-token subgraph,
//     so token edges can be contracted via longest-path DAG sweeps, after
//     which every edge carries exactly one token and Karp's maximum mean
//     cycle applies.
//   - MaxRatioHoward (policy iteration): exact, handles arbitrary token
//     counts, and converges in a handful of sweeps on large event graphs —
//     the large-graph default.
//   - Lawler binary search: float64, for scale comparisons.
//   - BruteForce: exhaustive elementary-cycle enumeration, for tests.
//
// A fifth evaluator, ApproxMaxRatio (see float.go), is not an exact engine
// but the float-screening tier: a float64 re-run of the contraction+Karp
// sweep returning an enclosure [Ratio−Err, Ratio+Err] guaranteed to contain
// the exact ratio, so search layers can rank candidates in floating point
// and reserve exact arithmetic for the ambiguous band.
//
// Workspace.MaxRatioBackend selects between the two exact engines (Backend
// enum: auto, karp, howard, float-screen); the auto heuristic routes by
// token-edge share, and float-screen resolves identically to auto — the
// screening protocol lives in the callers, never in the exact results.
package cycles

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/rat"
)

// System is a directed multigraph with per-edge costs and token counts.
// Cost and Tokens are parallel to G.Edges.
type System struct {
	G      *graph.Digraph
	Cost   []rat.Rat
	Tokens []int
}

// NewSystem returns an empty system over n vertices.
func NewSystem(n int) *System {
	return &System{G: graph.New(n)}
}

// Reset empties the system and sets the vertex count to n, keeping the edge,
// cost and token backing arrays so a solver loop can rebuild systems of
// similar size without reallocating.
func (s *System) Reset(n int) {
	if s.G == nil {
		s.G = graph.New(n)
	} else {
		s.G.Reset(n)
	}
	s.Cost = s.Cost[:0]
	s.Tokens = s.Tokens[:0]
}

// AddEdge appends an edge u->v with the given cost and token count and
// returns its index.
func (s *System) AddEdge(u, v int, cost rat.Rat, tokens int) int {
	if tokens < 0 {
		panic(fmt.Sprintf("cycles: negative token count %d", tokens))
	}
	idx := s.G.AddEdge(u, v, len(s.Cost))
	s.Cost = append(s.Cost, cost)
	s.Tokens = append(s.Tokens, tokens)
	return idx
}

// ErrNoCycle is returned when the graph has no directed cycle: the maximum
// cycle ratio is undefined (an acyclic event graph has no steady-state
// constraint).
var ErrNoCycle = errors.New("cycles: graph has no directed cycle")

// ErrDeadlock is returned when a cycle without tokens exists: the
// corresponding timed event graph can never fire the transitions on that
// cycle.
var ErrDeadlock = errors.New("cycles: zero-token cycle (event graph deadlock)")

// Validate checks structural sanity: costs must be non-negative and no
// zero-token cycle may exist.
func (s *System) Validate() error {
	for i, c := range s.Cost {
		if c.Sign() < 0 {
			return fmt.Errorf("cycles: edge %d has negative cost %v", i, c)
		}
	}
	zero := s.G.Subgraph(func(e graph.Edge) bool { return s.Tokens[e.ID] == 0 })
	if !zero.IsAcyclic() {
		return ErrDeadlock
	}
	return nil
}

// hasCycle reports whether the graph contains any directed cycle.
func (s *System) hasCycle() bool {
	return !s.G.IsAcyclic()
}

// Result is the outcome of a maximum-cycle-ratio computation.
type Result struct {
	Ratio rat.Rat
	// Cycle is a witness achieving the ratio, as a sequence of edge indices
	// into the system (first edge leaves the cycle's first vertex). It may be
	// nil when the engine does not reconstruct witnesses.
	Cycle []int
}

// CycleVertices returns the vertex sequence of the witness cycle.
func (s *System) CycleVertices(cycle []int) []int {
	vs := make([]int, 0, len(cycle))
	for _, ei := range cycle {
		vs = append(vs, s.G.Edges[ei].From)
	}
	return vs
}

// CycleRatio computes cost(C)/tokens(C) for a cycle given by edge indices —
// the ratio a witness returned in a Result achieves. The differential and
// fuzz harnesses use it to certify that every backend's witness attains the
// reported maximum.
func (s *System) CycleRatio(cycle []int) (rat.Rat, error) {
	return s.ratioOfCycle(cycle)
}

// ratioOfCycle computes cost(C)/tokens(C) for a cycle given by edge indices.
func (s *System) ratioOfCycle(cycle []int) (rat.Rat, error) {
	cost := rat.Zero()
	tokens := int64(0)
	for _, ei := range cycle {
		cost = cost.Add(s.Cost[ei])
		tokens += int64(s.Tokens[ei])
	}
	if tokens == 0 {
		return rat.Zero(), ErrDeadlock
	}
	return cost.DivInt(tokens), nil
}

// VerifyRatio checks that λ is indeed the maximum cycle ratio: with edge
// weights cost − λ·tokens there must be no positive-weight cycle, and at
// least one zero-weight cycle must exist. It is used to double-check engines
// against one another in tests and by callers that want a certificate.
func (s *System) VerifyRatio(lambda rat.Rat) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !s.hasCycle() {
		return ErrNoCycle
	}
	pos, tight, err := s.reducedCycleSignature(lambda)
	if err != nil {
		return err
	}
	if pos {
		return fmt.Errorf("cycles: ratio %v too small: positive reduced cycle exists", lambda)
	}
	if !tight {
		return fmt.Errorf("cycles: ratio %v too large: no tight cycle exists", lambda)
	}
	return nil
}

// reducedCycleSignature runs exact Bellman–Ford-style longest-path analysis
// with edge weights cost − λ·tokens, per SCC. It reports whether a strictly
// positive cycle exists and whether some cycle has weight exactly zero.
func (s *System) reducedCycleSignature(lambda rat.Rat) (positive, tight bool, err error) {
	comp, ncomp := s.G.SCC()
	for c := 0; c < ncomp; c++ {
		p, t, e := s.sccReducedSignature(comp, c, lambda)
		if e != nil {
			return false, false, e
		}
		positive = positive || p
		tight = tight || t
		if positive {
			return positive, tight, nil
		}
	}
	return positive, tight, nil
}

func (s *System) sccReducedSignature(comp []int, c int, lambda rat.Rat) (positive, tight bool, err error) {
	// Collect vertices and intra-SCC edges.
	var verts []int
	for v := 0; v < s.G.N; v++ {
		if comp[v] == c {
			verts = append(verts, v)
		}
	}
	var edges []int
	for i, e := range s.G.Edges {
		if comp[e.From] == c && comp[e.To] == c {
			edges = append(edges, i)
		}
	}
	if len(edges) == 0 {
		return false, false, nil
	}
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	n := len(verts)
	dist := make([]rat.Rat, n)
	has := make([]bool, n)
	dist[0] = rat.Zero()
	has[0] = true
	reduced := func(ei int) rat.Rat {
		return s.Cost[ei].Sub(lambda.MulInt(int64(s.Tokens[ei])))
	}
	// Longest path relaxation; in an SCC everything is reachable from verts[0].
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, ei := range edges {
			e := s.G.Edges[ei]
			u, v := idx[e.From], idx[e.To]
			if !has[u] {
				continue
			}
			cand := dist[u].Add(reduced(ei))
			if !has[v] || dist[v].Less(cand) {
				dist[v] = cand
				has[v] = true
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n-1 && changed {
			// One more relaxation round would still improve: positive cycle.
			return true, false, nil
		}
	}
	// Tight cycle detection: edges with dist[u] + w == dist[v] form the tight
	// subgraph; a zero-weight cycle exists iff that subgraph has a cycle.
	tg := graph.New(n)
	for _, ei := range edges {
		e := s.G.Edges[ei]
		u, v := idx[e.From], idx[e.To]
		if has[u] && has[v] && dist[u].Add(reduced(ei)).Equal(dist[v]) {
			tg.AddEdge(u, v, ei)
		}
	}
	return false, !tg.IsAcyclic(), nil
}

// tightCycleWitness returns a cycle (edge indices in the full system) whose
// reduced weight under λ is zero, assuming VerifyRatio(λ) holds.
func (s *System) tightCycleWitness(lambda rat.Rat) []int {
	comp, ncomp := s.G.SCC()
	for c := 0; c < ncomp; c++ {
		if w := s.sccTightWitness(comp, c, lambda); w != nil {
			return w
		}
	}
	return nil
}

func (s *System) sccTightWitness(comp []int, c int, lambda rat.Rat) []int {
	var verts []int
	for v := 0; v < s.G.N; v++ {
		if comp[v] == c {
			verts = append(verts, v)
		}
	}
	var edges []int
	for i, e := range s.G.Edges {
		if comp[e.From] == c && comp[e.To] == c {
			edges = append(edges, i)
		}
	}
	if len(edges) == 0 {
		return nil
	}
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	n := len(verts)
	dist := make([]rat.Rat, n)
	has := make([]bool, n)
	dist[0] = rat.Zero()
	has[0] = true
	reduced := func(ei int) rat.Rat {
		return s.Cost[ei].Sub(lambda.MulInt(int64(s.Tokens[ei])))
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, ei := range edges {
			e := s.G.Edges[ei]
			u, v := idx[e.From], idx[e.To]
			if !has[u] {
				continue
			}
			cand := dist[u].Add(reduced(ei))
			if !has[v] || dist[v].Less(cand) {
				dist[v] = cand
				has[v] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Build tight subgraph, then walk it to find a cycle.
	tightOut := make([][]int, n) // local vertex -> tight edge indices (global)
	for _, ei := range edges {
		e := s.G.Edges[ei]
		u, v := idx[e.From], idx[e.To]
		if has[u] && has[v] && dist[u].Add(reduced(ei)).Equal(dist[v]) {
			tightOut[u] = append(tightOut[u], ei)
		}
	}
	// DFS for a cycle in the tight subgraph.
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	parentEdge := make([]int, n)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	var walk func(u int) []int
	walk = func(u int) []int {
		state[u] = 1
		for _, ei := range tightOut[u] {
			v := idx[s.G.Edges[ei].To]
			switch state[v] {
			case 0:
				parentEdge[v] = ei
				if cyc := walk(v); cyc != nil {
					return cyc
				}
			case 1:
				// Found a cycle closing at v: unwind from u back to v.
				cyc := []int{ei}
				for x := u; x != v; {
					pe := parentEdge[x]
					cyc = append([]int{pe}, cyc...)
					x = idx[s.G.Edges[pe].From]
				}
				return cyc
			}
		}
		state[u] = 2
		return nil
	}
	for u := 0; u < n; u++ {
		if state[u] == 0 {
			if cyc := walk(u); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}
