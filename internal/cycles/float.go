package cycles

import (
	"fmt"
	"math"

	"repro/internal/rat"
)

// This file is the float-screening tier (Backend float-screen): a float64
// re-run of the contraction + Karp sweep that returns an approximate maximum
// cycle ratio TOGETHER with a rigorous forward-error bound. The point is not
// the approximation — it is the certificate attached to it: the exact ratio
// provably lies in [Ratio-Err, Err+Ratio], so a caller ranking candidates can
// discard in float everything whose enclosure cannot beat an exact incumbent
// and pay exact arithmetic only for the ambiguous band. Every discard is
// justified by an exact-rational comparison of enclosure endpoints (floats
// convert to rationals losslessly), so screened searches return bit-identical
// results to exact-only runs.
//
// Error accounting: each value carries a running absolute bound e with
// |float - exact| <= e.
//
//   - Conversion rat -> float64 is correctly rounded (big.Rat) or three
//     correctly-rounded ops (int64 fast path), so e0 = 4u|f| + eta over-covers
//     it, with u = 2^-53 the unit roundoff and eta = 2^-1074 the smallest
//     positive denormal (the additive term covers the denormal range, where
//     relative bounds fail).
//   - A correctly-rounded op c = fl(a op b) adds at most u|c| + eta of its
//     own, so e_c = e_a + e_b + u|c| + eta.
//   - Selections compose for free: |max_i f_i - max_i x_i| <= max_i e_i (and
//     the same for min) — errors do not compound through the max/min choices
//     the DP makes, which is why a full Karp table stays at a few ulps.
//   - The bound arithmetic itself rounds, so every accumulation is inflated
//     by (1+2^-50) + 2*eta (see propagate); the inflation strictly dominates
//     the handful of roundings each accumulation performs.
//
// Any non-finite intermediate (overflow to +Inf, NaN from Inf-Inf in the
// Karp difference) poisons the result to Err=+Inf: an always-ambiguous
// enclosure that no screen can act on, so callers fall back to exact
// arithmetic — degraded speed, never a degraded answer.

const (
	uRound = 0x1p-53   // float64 unit roundoff
	etaSub = 0x1p-1074 // smallest positive denormal
	// errInflate compensates the rounding of the error-bound arithmetic
	// itself: each accumulation performs at most a handful of correctly
	// rounded ops on non-negative values, under-approximating by < 8u
	// relative, so multiplying by (1+2^-50) = (1+8u) restores a true upper
	// bound.
	errInflate = 1 + 0x1p-50
)

// propagate returns an error bound for a correctly-rounded binary operation
// with result c whose operands carried bounds ea and eb: a float upper bound
// on ea + eb + u|c| + eta that survives being computed in floating point.
func propagate(ea, eb, c float64) float64 {
	return (ea+eb+uRound*math.Abs(c))*errInflate + 2*etaSub
}

// FloatResult is an approximate maximum cycle ratio (or period) with a
// rigorous forward-error bound: the exact value λ* satisfies
// |Ratio − λ*| ≤ Err. A non-finite Ratio or Err means the float sweep
// overflowed or degenerated; the enclosure is then vacuous (Contains is
// always true, AtLeast always false) and callers must fall back to the exact
// engines.
type FloatResult struct {
	Ratio float64
	Err   float64
}

// Finite reports whether the enclosure is usable (both fields finite).
func (r FloatResult) Finite() bool {
	return !math.IsInf(r.Ratio, 0) && !math.IsNaN(r.Ratio) &&
		!math.IsInf(r.Err, 0) && !math.IsNaN(r.Err)
}

// Enclosure returns the exact rational interval [lo, hi] = [Ratio−Err,
// Ratio+Err] guaranteed to contain the exact value. Both endpoints are
// computed in exact arithmetic (floats are dyadic rationals), so no further
// rounding widens or — worse — narrows the interval. ok is false for a
// non-finite result, which encloses nothing usefully.
func (r FloatResult) Enclosure() (lo, hi rat.Rat, ok bool) {
	v, ok1 := rat.FromFloat(r.Ratio)
	e, ok2 := rat.FromFloat(r.Err)
	if !ok1 || !ok2 {
		return rat.Rat{}, rat.Rat{}, false
	}
	return v.Sub(e), v.Add(e), true
}

// Contains reports whether the enclosure contains the exact value x. A
// non-finite result contains everything (vacuously): it constrains nothing.
func (r FloatResult) Contains(x rat.Rat) bool {
	lo, hi, ok := r.Enclosure()
	if !ok {
		return true
	}
	return !x.Less(lo) && !hi.Less(x)
}

// AtLeast reports that the exact value is certainly ≥ x: the enclosure's
// lower endpoint is at or above x, compared in exact arithmetic. This is the
// screening predicate — a candidate whose period is AtLeast the incumbent
// cannot strictly improve it, so skipping its exact evaluation provably
// leaves the search result unchanged. A non-finite result returns false: a
// poisoned screen can never discard a candidate.
func (r FloatResult) AtLeast(x rat.Rat) bool {
	lo, _, ok := r.Enclosure()
	return ok && !lo.Less(x)
}

// DivInt returns the enclosure scaled by 1/m (m > 0), the float analogue of
// Rat.DivInt used when a cycle ratio becomes a period (division by the path
// count or a pattern LCM). An m too large to round-trip through float64
// poisons the result rather than silently losing precision.
func (r FloatResult) DivInt(m int64) FloatResult {
	f := float64(m)
	if m <= 0 || int64(f) != m {
		return FloatResult{Ratio: math.Inf(1), Err: math.Inf(1)}
	}
	q := r.Ratio / f
	return FloatResult{Ratio: q, Err: propagate(r.Err/f, 0, q)}
}

// FloatOf returns a float enclosure of the exact value x: its nearest
// float64 with the conversion-error bound. Values beyond float64 range
// poison to Err=+Inf.
func FloatOf(x rat.Rat) FloatResult {
	f := x.Float64()
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return FloatResult{Ratio: f, Err: math.Inf(1)}
	}
	return FloatResult{Ratio: f, Err: convErr(f)}
}

// convErr bounds the rat->float64 conversion error of a value whose nearest
// float is f: 4u|f| + eta, inflated against the bound's own rounding.
func convErr(f float64) float64 {
	return (4*uRound*math.Abs(f))*errInflate + 2*etaSub
}

// MaxFloat merges two enclosures into one containing max(x_a, x_b) of the
// exact values: float max of the estimates, max of the bounds (selection
// lemma — the max over approximations deviates from the max over exact
// values by at most the worst per-candidate error). A poisoned operand
// (Err=+Inf) poisons the merge, as it must: the unknown value could dominate.
func MaxFloat(a, b FloatResult) FloatResult {
	r := a
	if b.Ratio > r.Ratio || math.IsNaN(b.Ratio) {
		r.Ratio = b.Ratio
	}
	if b.Err > r.Err || math.IsNaN(b.Err) {
		r.Err = b.Err
	}
	return r
}

// poisoned is the vacuous enclosure returned when the float sweep cannot
// bound its own error.
func poisoned() FloatResult { return FloatResult{Ratio: math.Inf(1), Err: math.Inf(1)} }

// ApproxMaxRatio computes a float64 approximation of the maximum cycle ratio
// with a rigorous error bound, allocating a fresh Workspace; hot loops use
// Workspace.ApproxMaxRatio.
func (s *System) ApproxMaxRatio() (FloatResult, error) {
	var ws Workspace
	return ws.ApproxMaxRatio(s)
}

// ApproxMaxRatio runs the float-screening sweep on the workspace's reused
// scratch: the same contraction + Karp pipeline as MaxRatio (same SCCs, same
// local numbering, same DAG orders — shared scaffolding code), with flat
// float64 tables in place of the exact rational ones and a parallel running
// error bound per table entry. The returned enclosure always contains the
// exact MaxRatio/MaxRatioHoward ratio; structural failures (ErrNoCycle,
// ErrDeadlock, negative costs) are reported exactly as the exact engines
// report them, so a screened caller sees errors if and only if an exact
// caller would.
func (ws *Workspace) ApproxMaxRatio(s *System) (FloatResult, error) {
	for i, c := range s.Cost {
		if c.Sign() < 0 {
			return FloatResult{}, fmt.Errorf("cycles: edge %d has negative cost %v", i, c)
		}
	}
	if !ws.acyclic(s, true) {
		return FloatResult{}, ErrDeadlock
	}
	if ws.acyclic(s, false) {
		return FloatResult{}, ErrNoCycle
	}
	comp, ncomp := ws.scc(s)
	var best FloatResult
	found := false
	for c := 0; c < ncomp; c++ {
		r, ok, err := ws.approxRatioSCC(s, comp, c)
		if err != nil {
			return FloatResult{}, err
		}
		if !ok {
			continue
		}
		if !found {
			best, found = r, true
		} else {
			best = MaxFloat(best, r)
		}
	}
	if !found {
		return FloatResult{}, ErrNoCycle
	}
	if !best.Finite() {
		return poisoned(), nil
	}
	return best, nil
}

// floatCEdge is a contracted edge of the float sweep: a token edge plus a
// longest zero-token path, with the running error bound of its cost.
type floatCEdge struct {
	from, to  int
	cost, err float64
	tokens    int64
}

// floatMeanEdge is a unit-token edge for the float Karp stage.
type floatMeanEdge struct {
	from, to  int
	cost, err float64
}

// approxRatioSCC is maxRatioSCC in float64: identical structure (shared
// scaffold), float tables, running error bounds, no witness reconstruction.
func (ws *Workspace) approxRatioSCC(s *System, comp []int, c int) (FloatResult, bool, error) {
	n, ok, err := ws.contractScaffold(s, comp, c)
	if !ok || err != nil {
		return FloatResult{}, false, err
	}
	nt := len(ws.tokenEdges)

	// Convert the component's edge costs once; the DAG DP reads each zero
	// edge up to nt times. Edges belong to exactly one component, so the
	// per-edge tables never need clearing between components.
	ws.fcost = growFloats(ws.fcost, len(s.Cost))
	ws.fcerr = growFloats(ws.fcerr, len(s.Cost))
	for _, ei := range ws.tokenEdges {
		f := s.Cost[ei].Float64()
		ws.fcost[ei], ws.fcerr[ei] = f, convErr(f)
	}
	for _, ei := range ws.zeroEdges {
		f := s.Cost[ei].Float64()
		ws.fcost[ei], ws.fcerr[ei] = f, convErr(f)
	}

	// Longest zero-token path DP per token edge, mirroring the exact sweep.
	// All values are non-negative, so overflow surfaces as +Inf and sticks
	// through max (never NaN here); the Karp stage below detects it.
	ws.fdist = growFloats(ws.fdist, n)
	ws.fderr = growFloats(ws.fderr, n)
	ws.has = growBools(ws.has, n)
	ws.fcedges = ws.fcedges[:0]
	for pos, ei := range ws.tokenEdges {
		head := ws.localID[s.G.Edges[ei].To]
		for i := 0; i < n; i++ {
			ws.has[i] = false
		}
		ws.has[head] = true
		ws.fdist[head], ws.fderr[head] = 0, 0
		for _, u := range ws.order {
			if !ws.has[u] {
				continue
			}
			for t := ws.zeroStart[u]; t < ws.zeroStart[u+1]; t++ {
				zei := ws.zeroEdges[ws.zeroItems[t]]
				to := ws.localID[s.G.Edges[zei].To]
				cand := ws.fdist[u] + ws.fcost[zei]
				cerr := propagate(ws.fderr[u], ws.fcerr[zei], cand)
				if !ws.has[to] {
					ws.fdist[to], ws.fderr[to] = cand, cerr
					ws.has[to] = true
					continue
				}
				// Selection lemma: the running max keeps the max estimate and
				// the max bound over ALL candidates — also the losing ones,
				// whose exact counterpart could still be the exact max.
				if cand > ws.fdist[to] {
					ws.fdist[to] = cand
				}
				if cerr > ws.fderr[to] {
					ws.fderr[to] = cerr
				}
			}
		}
		for v := 0; v < n; v++ {
			if !ws.has[v] {
				continue
			}
			for t := ws.tailStart[v]; t < ws.tailStart[v+1]; t++ {
				cost := ws.fcost[ei] + ws.fdist[v]
				ws.fcedges = append(ws.fcedges, floatCEdge{
					from:   pos,
					to:     ws.tailItems[t],
					cost:   cost,
					err:    propagate(ws.fcerr[ei], ws.fderr[v], cost),
					tokens: int64(s.Tokens[ei]),
				})
			}
		}
	}
	if len(ws.fcedges) == 0 {
		return FloatResult{}, false, nil
	}
	r, ok := ws.floatKarpMaxMean(ws.expandFloatTokens(nt))
	return r, ok, nil
}

// expandFloatTokens is expandTokens for the float sweep: contracted edges
// with k>1 tokens become k unit edges through fresh vertices, cost (and its
// bound) on the first hop, exact zeros on the rest.
func (ws *Workspace) expandFloatTokens(n int) int {
	ws.fmedges = ws.fmedges[:0]
	for _, ce := range ws.fcedges {
		if ce.tokens == 1 {
			ws.fmedges = append(ws.fmedges, floatMeanEdge{ce.from, ce.to, ce.cost, ce.err})
			continue
		}
		prev := ce.from
		for k := int64(0); k < ce.tokens; k++ {
			to := ce.to
			if k < ce.tokens-1 {
				to = n
				n++
			}
			cost, errB := 0.0, 0.0
			if k == 0 {
				cost, errB = ce.cost, ce.err
			}
			ws.fmedges = append(ws.fmedges, floatMeanEdge{prev, to, cost, errB})
			prev = to
		}
	}
	return n
}

// floatKarpMaxMean is karpMaxMean in float64: per-SCC Karp with error
// tracking, merged with MaxFloat.
func (ws *Workspace) floatKarpMaxMean(n int) (FloatResult, bool) {
	m := len(ws.fmedges)
	ws.karpStart = growInts(ws.karpStart, n+1)
	ws.karpSucc = growInts(ws.karpSucc, m)
	ws.keyTmp = growInts(ws.keyTmp, m)
	ws.valTmp = growInts(ws.valTmp, m)
	for j := range ws.fmedges {
		ws.keyTmp[j] = ws.fmedges[j].from
		ws.valTmp[j] = ws.fmedges[j].to
	}
	ws.fillCSR(ws.karpStart, ws.karpSucc, n, ws.keyTmp[:m], ws.valTmp[:m])
	comp, ncomp := ws.sccKarp.run(n, ws.karpStart, ws.karpSucc)
	var best FloatResult
	found := false
	for c := 0; c < ncomp; c++ {
		r, ok := ws.floatKarpSCC(comp, c, n)
		if !ok {
			continue
		}
		if !found {
			best, found = r, true
		} else {
			best = MaxFloat(best, r)
		}
	}
	return best, found
}

// floatKarpSCC runs Karp's recurrence on one SCC of the expanded contracted
// graph in float64. The reachability structure (kHas) is value-independent,
// so the candidate set of the λ formula matches the exact sweep's exactly;
// only the arithmetic differs. Non-finite candidates — the one place Inf-Inf
// can manufacture a NaN — poison the component.
func (ws *Workspace) floatKarpSCC(comp []int, c, nverts int) (FloatResult, bool) {
	ws.karpVerts = ws.karpVerts[:0]
	ws.karpID = growInts(ws.karpID, nverts)
	for v := 0; v < nverts; v++ {
		ws.karpID[v] = -1
		if comp[v] == c {
			ws.karpID[v] = len(ws.karpVerts)
			ws.karpVerts = append(ws.karpVerts, v)
		}
	}
	ws.karpWithin = ws.karpWithin[:0]
	for i, e := range ws.fmedges {
		if comp[e.from] == c && comp[e.to] == c {
			ws.karpWithin = append(ws.karpWithin, i)
		}
	}
	if len(ws.karpWithin) == 0 {
		return FloatResult{}, false // trivial SCC without self loop
	}
	n := len(ws.karpVerts)

	size := (n + 1) * n
	ws.fkD = growFloats(ws.fkD, size)
	ws.fkErr = growFloats(ws.fkErr, size)
	ws.kHas = growBools(ws.kHas, size)
	for i := 0; i < size; i++ {
		ws.kHas[i] = false
	}
	ws.kHas[0] = true
	ws.fkD[0], ws.fkErr[0] = 0, 0
	for k := 1; k <= n; k++ {
		row, prev := k*n, (k-1)*n
		for _, mi := range ws.karpWithin {
			me := &ws.fmedges[mi]
			u, v := ws.karpID[me.from], ws.karpID[me.to]
			if !ws.kHas[prev+u] {
				continue
			}
			cand := ws.fkD[prev+u] + me.cost
			cerr := propagate(ws.fkErr[prev+u], me.err, cand)
			if !ws.kHas[row+v] {
				ws.fkD[row+v], ws.fkErr[row+v] = cand, cerr
				ws.kHas[row+v] = true
				continue
			}
			if cand > ws.fkD[row+v] {
				ws.fkD[row+v] = cand
			}
			if cerr > ws.fkErr[row+v] {
				ws.fkErr[row+v] = cerr
			}
		}
	}

	// λ* = max_v min_k (D[n][v]-D[k][v])/(n-k), errors max-merged through
	// both selections.
	found := false
	var best FloatResult
	last := n * n
	for v := 0; v < n; v++ {
		if !ws.kHas[last+v] {
			continue
		}
		var inner FloatResult
		innerSet := false
		for k := 0; k < n; k++ {
			if !ws.kHas[k*n+v] {
				continue
			}
			diff := ws.fkD[last+v] - ws.fkD[k*n+v]
			derr := propagate(ws.fkErr[last+v], ws.fkErr[k*n+v], diff)
			div := float64(n - k)
			q := diff / div
			qerr := propagate(derr/div, 0, q)
			if math.IsNaN(q) || math.IsInf(q, 0) || math.IsNaN(qerr) || math.IsInf(qerr, 0) {
				return poisoned(), true
			}
			if !innerSet {
				inner, innerSet = FloatResult{q, qerr}, true
				continue
			}
			if q < inner.Ratio {
				inner.Ratio = q
			}
			if qerr > inner.Err {
				inner.Err = qerr
			}
		}
		if !innerSet {
			continue
		}
		if !found {
			best, found = inner, true
		} else {
			best = MaxFloat(best, inner)
		}
	}
	if !found {
		return FloatResult{}, false
	}
	return best, true
}
