package cycles

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

// ring builds a simple token ring: k vertices in a cycle, each edge cost c,
// one edge carrying the single token.
func ring(k int, c rat.Rat) *System {
	s := NewSystem(k)
	for i := 0; i < k; i++ {
		tokens := 0
		if i == k-1 {
			tokens = 1
		}
		s.AddEdge(i, (i+1)%k, c, tokens)
	}
	return s
}

func TestSelfLoopRatio(t *testing.T) {
	s := NewSystem(1)
	s.AddEdge(0, 0, rat.FromInt(7), 1)
	for name, f := range engines() {
		r, err := f(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Equal(rat.FromInt(7)) {
			t.Errorf("%s: self loop ratio = %v, want 7", name, r)
		}
	}
}

// engines returns the exact engines keyed by name.
func engines() map[string]func(*System) (rat.Rat, error) {
	return map[string]func(*System) (rat.Rat, error){
		"contract": func(s *System) (rat.Rat, error) {
			r, err := s.MaxRatio()
			return r.Ratio, err
		},
		"howard": func(s *System) (rat.Rat, error) {
			r, err := s.MaxRatioHoward()
			return r.Ratio, err
		},
		"brute": func(s *System) (rat.Rat, error) {
			r, err := s.MaxRatioBrute()
			return r.Ratio, err
		},
	}
}

func TestRingRatio(t *testing.T) {
	s := ring(4, rat.FromInt(3))
	for name, f := range engines() {
		r, err := f(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Equal(rat.FromInt(12)) {
			t.Errorf("%s: ring ratio = %v, want 12", name, r)
		}
	}
}

func TestTwoRingsTakesMax(t *testing.T) {
	// Two disjoint rings with ratios 12 and 10.
	s := NewSystem(6)
	for i := 0; i < 3; i++ {
		tok := 0
		if i == 2 {
			tok = 1
		}
		s.AddEdge(i, (i+1)%3, rat.FromInt(4), tok)          // ratio 12
		s.AddEdge(3+i, 3+(i+1)%3, rat.New(10, 3), tokOf(i)) // ratio 10
	}
	for name, f := range engines() {
		r, err := f(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Equal(rat.FromInt(12)) {
			t.Errorf("%s: ratio = %v, want 12", name, r)
		}
	}
}

func tokOf(i int) int {
	if i == 2 {
		return 1
	}
	return 0
}

func TestSharedVertexCycles(t *testing.T) {
	// Figure-8: two cycles through vertex 0 with different ratios.
	s := NewSystem(3)
	s.AddEdge(0, 1, rat.FromInt(5), 0)
	s.AddEdge(1, 0, rat.FromInt(5), 1) // cycle ratio 10
	s.AddEdge(0, 2, rat.FromInt(2), 0)
	s.AddEdge(2, 0, rat.FromInt(3), 1) // cycle ratio 5
	for name, f := range engines() {
		r, err := f(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Equal(rat.FromInt(10)) {
			t.Errorf("%s: ratio = %v, want 10", name, r)
		}
	}
}

func TestMultiTokenEdge(t *testing.T) {
	// Single loop of cost 9 carrying 3 tokens: ratio 3.
	s := NewSystem(2)
	s.AddEdge(0, 1, rat.FromInt(4), 1)
	s.AddEdge(1, 0, rat.FromInt(5), 2)
	for name, f := range engines() {
		r, err := f(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Equal(rat.FromInt(3)) {
			t.Errorf("%s: ratio = %v, want 3", name, r)
		}
	}
}

func TestNoCycle(t *testing.T) {
	s := NewSystem(3)
	s.AddEdge(0, 1, rat.FromInt(1), 1)
	s.AddEdge(1, 2, rat.FromInt(1), 0)
	if _, err := s.MaxRatio(); !errors.Is(err, ErrNoCycle) {
		t.Errorf("MaxRatio on DAG: err = %v, want ErrNoCycle", err)
	}
	if _, err := s.MaxRatioHoward(); !errors.Is(err, ErrNoCycle) {
		t.Errorf("Howard on DAG: err = %v, want ErrNoCycle", err)
	}
	if _, err := s.MaxRatioBrute(); !errors.Is(err, ErrNoCycle) {
		t.Errorf("Brute on DAG: err = %v, want ErrNoCycle", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := NewSystem(2)
	s.AddEdge(0, 1, rat.FromInt(1), 0)
	s.AddEdge(1, 0, rat.FromInt(1), 0)
	if _, err := s.MaxRatio(); !errors.Is(err, ErrDeadlock) {
		t.Errorf("MaxRatio: err = %v, want ErrDeadlock", err)
	}
	if _, err := s.MaxRatioHoward(); !errors.Is(err, ErrDeadlock) {
		t.Errorf("Howard: err = %v, want ErrDeadlock", err)
	}
}

func TestWitnessAchievesRatio(t *testing.T) {
	s := randomLiveSystem(rand.New(rand.NewSource(42)), 8)
	res, err := s.MaxRatio()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle == nil {
		t.Fatal("no witness returned")
	}
	got, err := s.ratioOfCycle(res.Cycle)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(res.Ratio) {
		t.Errorf("witness ratio %v != reported %v", got, res.Ratio)
	}
	if err := s.VerifyRatio(res.Ratio); err != nil {
		t.Errorf("VerifyRatio: %v", err)
	}
}

func TestVerifyRatioRejectsWrongValues(t *testing.T) {
	s := ring(3, rat.FromInt(2)) // ratio 6
	if err := s.VerifyRatio(rat.FromInt(6)); err != nil {
		t.Errorf("correct ratio rejected: %v", err)
	}
	if err := s.VerifyRatio(rat.FromInt(5)); err == nil {
		t.Error("too-small ratio accepted")
	}
	if err := s.VerifyRatio(rat.FromInt(7)); err == nil {
		t.Error("too-large ratio accepted")
	}
}

// randomLiveSystem builds a random system guaranteed deadlock-free: it
// layers vertices and only lets zero-token edges go "forward", while token
// edges can go anywhere.
func randomLiveSystem(rng *rand.Rand, n int) *System {
	s := NewSystem(n)
	// Backbone ring so a cycle always exists.
	for i := 0; i < n; i++ {
		tok := 0
		if i == n-1 {
			tok = 1
		}
		s.AddEdge(i, (i+1)%n, rat.New(int64(1+rng.Intn(20)), int64(1+rng.Intn(4))), tok)
	}
	extra := rng.Intn(2 * n)
	for k := 0; k < extra; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		cost := rat.New(int64(rng.Intn(30)), int64(1+rng.Intn(5)))
		if u < v && rng.Intn(2) == 0 {
			s.AddEdge(u, v, cost, 0) // forward zero-token edge: safe
		} else {
			s.AddEdge(u, v, cost, 1+rng.Intn(2))
		}
	}
	return s
}

func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomLiveSystem(rng, 3+rng.Intn(6))
		want, err := s.MaxRatioBrute()
		if err != nil {
			return false
		}
		got, err := s.MaxRatio()
		if err != nil || !got.Ratio.Equal(want.Ratio) {
			t.Logf("seed %d: contract %v vs brute %v (err %v)", seed, got.Ratio, want.Ratio, err)
			return false
		}
		how, err := s.MaxRatioHoward()
		if err != nil || !how.Ratio.Equal(want.Ratio) {
			t.Logf("seed %d: howard %v vs brute %v (err %v)", seed, how.Ratio, want.Ratio, err)
			return false
		}
		return s.VerifyRatio(want.Ratio) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickLawlerApproximates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomLiveSystem(rng, 3+rng.Intn(5))
		exact, err := s.MaxRatio()
		if err != nil {
			return false
		}
		approx, err := s.MaxRatioLawler(1e-9)
		if err != nil {
			return false
		}
		return math.Abs(approx-exact.Ratio.Float64()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateElementaryCyclesCount(t *testing.T) {
	// Complete digraph on 3 vertices (no self loops):
	// 3 two-cycles + 2 three-cycles = 5 elementary cycles.
	s := NewSystem(3)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v {
				s.AddEdge(u, v, rat.One(), 1)
			}
		}
	}
	count := 0
	if err := s.EnumerateElementaryCycles(func(c []int) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("elementary cycle count = %d, want 5", count)
	}
}

func TestNegativeCostRejected(t *testing.T) {
	s := NewSystem(1)
	s.AddEdge(0, 0, rat.FromInt(-1), 1)
	if err := s.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}
