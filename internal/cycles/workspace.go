package cycles

import (
	"repro/internal/rat"
)

// Workspace owns every piece of scratch memory the contraction+Karp engine
// needs: strongly-connected-component state, the zero-token DAG and its
// topological order, the per-token-edge longest-path tables, the contracted
// edge list with its path arena, and Karp's dynamic-programming tables.
//
// A Workspace amortizes those buffers across calls: the first MaxRatio on a
// given net size pays the allocations, subsequent calls of similar size run
// allocation-free. The zero value is ready to use. A Workspace is NOT safe
// for concurrent use — give each solver thread its own (core.Solver and the
// engine's worker pool do exactly that).
//
// Results are bit-identical to System.MaxRatio: the workspace path runs the
// same algorithm with the same iteration orders, it only changes where the
// scratch lives.
type Workspace struct {
	// epoch stamps the localID table so it never needs clearing: an entry is
	// valid only when its stamp equals the current epoch. Monotonic across
	// calls and across systems.
	epoch int

	// Tarjan SCC scratch: one instance for the system graph (its comp array
	// must survive the whole per-SCC loop) and one for the small contracted
	// graphs Karp runs on.
	sccSys  tarjanScratch
	sccKarp tarjanScratch

	// CSR cursor and key/value staging shared by all adjacency builds
	// (never live across one).
	csrCur []int
	keyTmp []int
	valTmp []int

	// Successor CSR over the full system graph (SCC) and over the token-free
	// subgraph (liveness validation).
	sysStart, sysSucc []int
	zvStart, zvSucc   []int

	// Kahn scratch (acyclicity checks and the zero-token DAG order).
	indeg []int
	queue []int
	order []int

	// Per-SCC contraction state.
	tokenEdges []int // edge indices with tokens > 0, ascending
	zeroEdges  []int // token-free edge indices, ascending
	localID    []int // global vertex -> local id, valid when stamp == epoch
	localStamp []int
	verts      []int // local id -> global vertex

	// Zero-token DAG adjacency over local vertices (items are positions into
	// zeroEdges, zeroSucc the parallel successor view for Kahn) and
	// token-edge tails per local vertex (positions into tokenEdges).
	zeroStart, zeroItems, zeroSucc []int
	tailStart, tailItems           []int

	// Longest-path DP over the zero-token DAG, reset per token edge.
	dist []rat.Rat
	has  []bool
	pred []int

	// Contracted edges; witness paths live in one shared arena addressed by
	// (pathOff, pathLen) so contraction never allocates per-edge slices.
	cedges  []contractedEdge
	medges  []meanEdge
	arena   []int
	pathTmp []int

	// Karp scratch: contracted-graph CSR, per-SCC vertex/edge lists, the
	// flattened D/has/parent tables and the witness walk.
	karpStart, karpSucc []int
	karpID              []int // contracted vertex -> per-SCC local id (-1 = absent)
	karpVerts           []int
	karpWithin          []int
	kD                  []rat.Rat
	kHas                []bool
	kParent             []int
	pathV, pathE        []int
	seenPos             []int

	// Howard policy-iteration scratch. The policy tables live in their own
	// struct and every entry a run reads is re-initialized at the start of
	// that run, so interleaving MaxRatio and MaxRatioHoward calls on one
	// workspace can never leak one engine's state into the other (see
	// howardScratch).
	howard howardScratch

	// Float-screening scratch (see float.go): per-edge float costs with
	// conversion-error bounds, the float DAG/Karp value+error tables, and
	// the float contracted/mean edge lists. The structural scratch (SCC,
	// CSR, orders, has/kHas) is shared with the exact sweep — the two never
	// run interleaved within one call, and sharing it keeps their iteration
	// structures identical by construction.
	fcost, fcerr []float64
	fdist, fderr []float64
	fkD, fkErr   []float64
	fcedges      []floatCEdge
	fmedges      []floatMeanEdge
}

// growInts returns s with length n, reusing capacity when possible. New
// backing arrays come back zeroed; resliced ones keep old values, so callers
// must either clear, stamp, or only read entries they wrote.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growRats(s []rat.Rat, n int) []rat.Rat {
	if cap(s) < n {
		return make([]rat.Rat, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// fillCSR groups m entries by key, preserving entry order within each
// group: after the call, items[start[k]:start[k+1]] lists vals[j] for every
// j with keys[j] == k, in increasing j. start must have length n+1, items
// length m; keys and vals are read-only and may alias. The key/value slices
// (rather than closures) keep the hot path free of per-call closure
// allocations.
func (ws *Workspace) fillCSR(start, items []int, n int, keys, vals []int) {
	m := len(keys)
	for i := 0; i <= n; i++ {
		start[i] = 0
	}
	for j := 0; j < m; j++ {
		start[keys[j]+1]++
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	ws.csrCur = growInts(ws.csrCur, n)
	copy(ws.csrCur, start[:n])
	for j := 0; j < m; j++ {
		k := keys[j]
		items[ws.csrCur[k]] = vals[j]
		ws.csrCur[k]++
	}
}

// acyclic reports whether the system's graph — restricted to token-free
// edges when zeroOnly is set — has no directed cycle, via Kahn's algorithm
// on reused scratch.
func (ws *Workspace) acyclic(s *System, zeroOnly bool) bool {
	n := s.G.N
	ws.zeroEdges = ws.zeroEdges[:0]
	for i := range s.G.Edges {
		if zeroOnly && s.Tokens[s.G.Edges[i].ID] > 0 {
			continue
		}
		ws.zeroEdges = append(ws.zeroEdges, i)
	}
	m := len(ws.zeroEdges)
	ws.zvStart = growInts(ws.zvStart, n+1)
	ws.zvSucc = growInts(ws.zvSucc, m)
	ws.keyTmp = growInts(ws.keyTmp, m)
	ws.valTmp = growInts(ws.valTmp, m)
	for j, ei := range ws.zeroEdges {
		ws.keyTmp[j] = s.G.Edges[ei].From
		ws.valTmp[j] = s.G.Edges[ei].To
	}
	ws.fillCSR(ws.zvStart, ws.zvSucc, n, ws.keyTmp[:m], ws.valTmp[:m])
	ordered := ws.kahn(n, ws.zvStart, ws.zvSucc)
	return ordered == n
}

// kahn runs Kahn's algorithm (LIFO queue, matching graph.TopoOrder) over the
// successor CSR and fills ws.order with the topological prefix. It returns
// how many vertices were ordered; a full order (== n) means acyclic.
func (ws *Workspace) kahn(n int, start, succ []int) int {
	ws.indeg = growInts(ws.indeg, n)
	for i := 0; i < n; i++ {
		ws.indeg[i] = 0
	}
	for _, w := range succ[:start[n]] {
		ws.indeg[w]++
	}
	ws.queue = ws.queue[:0]
	for v := 0; v < n; v++ {
		if ws.indeg[v] == 0 {
			ws.queue = append(ws.queue, v)
		}
	}
	ws.order = ws.order[:0]
	for len(ws.queue) > 0 {
		v := ws.queue[len(ws.queue)-1]
		ws.queue = ws.queue[:len(ws.queue)-1]
		ws.order = append(ws.order, v)
		for t := start[v]; t < start[v+1]; t++ {
			w := succ[t]
			ws.indeg[w]--
			if ws.indeg[w] == 0 {
				ws.queue = append(ws.queue, w)
			}
		}
	}
	return len(ws.order)
}

// scc computes the strongly connected components of the system graph on
// reused scratch. Component ids match graph.Digraph.SCC exactly (same
// Tarjan, same visit order).
func (ws *Workspace) scc(s *System) ([]int, int) {
	n := s.G.N
	m := len(s.G.Edges)
	ws.sysStart = growInts(ws.sysStart, n+1)
	ws.sysSucc = growInts(ws.sysSucc, m)
	ws.keyTmp = growInts(ws.keyTmp, m)
	ws.valTmp = growInts(ws.valTmp, m)
	for j := range s.G.Edges {
		ws.keyTmp[j] = s.G.Edges[j].From
		ws.valTmp[j] = s.G.Edges[j].To
	}
	ws.fillCSR(ws.sysStart, ws.sysSucc, n, ws.keyTmp[:m], ws.valTmp[:m])
	return ws.sccSys.run(n, ws.sysStart, ws.sysSucc)
}

// tarjanScratch is the reusable state of one iterative Tarjan SCC run.
type tarjanScratch struct {
	index, low []int
	onStack    []bool
	comp       []int
	stack      []int
	dfsV, dfsE []int // explicit DFS stack: vertex and next adjacency offset
}

// run is the iterative Tarjan of graph.Digraph.SCC ported onto a successor
// CSR: identical visit order, identical component numbering (sinks first).
func (t *tarjanScratch) run(n int, start, succ []int) ([]int, int) {
	const unvisited = -1
	t.index = growInts(t.index, n)
	t.low = growInts(t.low, n)
	t.onStack = growBools(t.onStack, n)
	t.comp = growInts(t.comp, n)
	for i := 0; i < n; i++ {
		t.index[i] = unvisited
		t.comp[i] = unvisited
		t.onStack[i] = false
	}
	t.stack = t.stack[:0]
	next := 0
	ncomp := 0
	for root := 0; root < n; root++ {
		if t.index[root] != unvisited {
			continue
		}
		t.dfsV = append(t.dfsV[:0], root)
		t.dfsE = append(t.dfsE[:0], start[root])
		t.index[root] = next
		t.low[root] = next
		next++
		t.stack = append(t.stack, root)
		t.onStack[root] = true
		for len(t.dfsV) > 0 {
			top := len(t.dfsV) - 1
			v := t.dfsV[top]
			if t.dfsE[top] < start[v+1] {
				w := succ[t.dfsE[top]]
				t.dfsE[top]++
				if t.index[w] == unvisited {
					t.index[w] = next
					t.low[w] = next
					next++
					t.stack = append(t.stack, w)
					t.onStack[w] = true
					t.dfsV = append(t.dfsV, w)
					t.dfsE = append(t.dfsE, start[w])
				} else if t.onStack[w] && t.index[w] < t.low[v] {
					t.low[v] = t.index[w]
				}
				continue
			}
			t.dfsV = t.dfsV[:top]
			t.dfsE = t.dfsE[:top]
			if top > 0 {
				parent := t.dfsV[top-1]
				if t.low[v] < t.low[parent] {
					t.low[parent] = t.low[v]
				}
			}
			if t.low[v] == t.index[v] {
				for {
					w := t.stack[len(t.stack)-1]
					t.stack = t.stack[:len(t.stack)-1]
					t.onStack[w] = false
					t.comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return t.comp, ncomp
}
