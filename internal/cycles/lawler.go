package cycles

// MaxRatioLawler approximates the maximum cycle ratio in float64 by Lawler's
// binary search: λ is feasible (too small) iff the graph with edge weights
// cost − λ·tokens contains a positive cycle. It exists for scale experiments
// on instances where exact arithmetic is unnecessary; the exact engines are
// authoritative.
func (s *System) MaxRatioLawler(tol float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if !s.hasCycle() {
		return 0, ErrNoCycle
	}
	costs := make([]float64, len(s.Cost))
	hi := 1.0
	for i, c := range s.Cost {
		costs[i] = c.Float64()
		// Any cycle ratio is at most the sum of all costs (tokens >= 1).
		hi += costs[i]
	}
	lo := 0.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if s.hasPositiveCycleFloat(costs, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// hasPositiveCycleFloat runs Bellman–Ford longest-path rounds with weights
// cost − λ·tokens and reports whether a positive cycle exists.
func (s *System) hasPositiveCycleFloat(costs []float64, lambda float64) bool {
	n := s.G.N
	dist := make([]float64, n) // start everything at 0: detects any positive cycle
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i, e := range s.G.Edges {
			w := costs[e.ID] - lambda*float64(s.Tokens[e.ID])
			_ = i
			if cand := dist[e.From] + w; cand > dist[e.To]+1e-15 {
				dist[e.To] = cand
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}
