package cycles

import (
	"math/rand"
	"testing"
)

// TestWorkspaceMatchesFreshMaxRatio reuses one Workspace across many
// systems of varying size and requires results — ratio and witness cycle —
// bit-identical to a fresh Workspace per call (what System.MaxRatio does):
// reuse must never leak state between systems. Independent-implementation
// equivalence is covered by TestWorkspaceMatchesHoward below and the
// brute-force cross-checks in cycles_test.go.
func TestWorkspaceMatchesFreshMaxRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ws Workspace
	for trial := 0; trial < 60; trial++ {
		s := randomLiveSystem(rng, 2+rng.Intn(14))
		got, gotErr := ws.MaxRatio(s)
		want, wantErr := s.MaxRatio()
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !got.Ratio.Equal(want.Ratio) {
			t.Fatalf("trial %d: workspace ratio %v != fresh %v", trial, got.Ratio, want.Ratio)
		}
		if len(got.Cycle) != len(want.Cycle) {
			t.Fatalf("trial %d: witness lengths differ: %v vs %v", trial, got.Cycle, want.Cycle)
		}
		for i := range got.Cycle {
			if got.Cycle[i] != want.Cycle[i] {
				t.Fatalf("trial %d: witness differs at %d: %v vs %v", trial, i, got.Cycle, want.Cycle)
			}
		}
		if err := s.VerifyRatio(got.Ratio); err != nil {
			t.Fatalf("trial %d: certificate: %v", trial, err)
		}
	}
}

// TestWorkspaceMatchesHoward cross-checks the workspace engine against
// Howard policy iteration on the same random family.
func TestWorkspaceMatchesHoward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws Workspace
	for trial := 0; trial < 30; trial++ {
		s := randomLiveSystem(rng, 2+rng.Intn(10))
		got, err := ws.MaxRatio(s)
		if err != nil {
			t.Fatal(err)
		}
		how, err := s.MaxRatioHoward()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Ratio.Equal(how.Ratio) {
			t.Fatalf("trial %d: workspace %v != howard %v", trial, got.Ratio, how.Ratio)
		}
	}
}

// TestSystemResetReuse rebuilds different systems into one reused System
// and checks results stay independent of what was built before.
func TestSystemResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shared := NewSystem(0)
	var ws Workspace
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		fresh := randomLiveSystem(rand.New(rand.NewSource(int64(trial))), n)
		shared.Reset(n)
		for i, e := range fresh.G.Edges {
			shared.AddEdge(e.From, e.To, fresh.Cost[i], fresh.Tokens[i])
		}
		got, err := ws.MaxRatio(shared)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.MaxRatio()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Ratio.Equal(want.Ratio) {
			t.Fatalf("trial %d: reused-system ratio %v != fresh %v", trial, got.Ratio, want.Ratio)
		}
	}
}
