package cycles

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

// TestFloatEnclosureContainsExact is the kernel-level soundness property of
// the screening tier: on random live systems the float sweep's enclosure
// always contains the exact ratio, and its point estimate is the kind of
// tight (a few ulps) that makes screening worth having.
func TestFloatEnclosureContainsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomLiveSystem(rng, 3+rng.Intn(6))
		exact, err := s.MaxRatio()
		if err != nil {
			return true // structural failure: parity is asserted separately
		}
		var ws Workspace
		fr, ferr := ws.ApproxMaxRatio(s)
		if ferr != nil {
			t.Logf("seed %d: approx errored (%v) where exact succeeded", seed, ferr)
			return false
		}
		if !fr.Contains(exact.Ratio) {
			t.Logf("seed %d: enclosure [%g ± %g] misses exact %v (%g)",
				seed, fr.Ratio, fr.Err, exact.Ratio, exact.Ratio.Float64())
			return false
		}
		if !fr.Finite() {
			t.Logf("seed %d: poisoned result on a benign system", seed)
			return false
		}
		// Tightness sanity: on these well-scaled inputs the bound must stay
		// tiny relative to the value — a bound that balloons would make every
		// candidate ambiguous and the screen useless.
		if fr.Err > 1e-9*(1+math.Abs(fr.Ratio)) {
			t.Logf("seed %d: bound %g implausibly loose for ratio %g", seed, fr.Err, fr.Ratio)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFloatErrorParity: the float sweep must report structural failures
// exactly when the exact engines do, so a screened caller never diverges on
// the error path.
func TestFloatErrorParity(t *testing.T) {
	var ws Workspace

	acyclic := NewSystem(3)
	acyclic.AddEdge(0, 1, rat.One(), 0)
	acyclic.AddEdge(1, 2, rat.One(), 1)
	if _, err := ws.ApproxMaxRatio(acyclic); !errors.Is(err, ErrNoCycle) {
		t.Errorf("acyclic: got %v, want ErrNoCycle", err)
	}

	dead := NewSystem(2)
	dead.AddEdge(0, 1, rat.One(), 0)
	dead.AddEdge(1, 0, rat.One(), 0)
	if _, err := ws.ApproxMaxRatio(dead); !errors.Is(err, ErrDeadlock) {
		t.Errorf("deadlock: got %v, want ErrDeadlock", err)
	}

	neg := NewSystem(1)
	neg.AddEdge(0, 0, rat.FromInt(-1), 1)
	if _, err := ws.ApproxMaxRatio(neg); err == nil {
		t.Error("negative cost: approx accepted what exact rejects")
	}

	// Exhaustive parity on random systems, including ones the generators
	// above cannot produce.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomLiveSystem(rng, 3+rng.Intn(6))
		_, exactErr := s.MaxRatio()
		_, approxErr := ws.ApproxMaxRatio(s)
		return (exactErr == nil) == (approxErr == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// powRat returns base^exp as an exact rational (exp >= 0).
func powRat(base rat.Rat, exp int) rat.Rat {
	x := rat.One()
	for i := 0; i < exp; i++ {
		x = x.Mul(base)
	}
	return x
}

// TestFloatPoisonOnOverflowScale: costs beyond float64 range must poison the
// enclosure (Err=+Inf) — never return a finite bound that silently excludes
// the exact value — and the poisoned result must refuse to screen anything.
func TestFloatPoisonOnOverflowScale(t *testing.T) {
	huge := powRat(rat.FromInt(10), 400) // 10^400 > max float64
	s := NewSystem(2)
	s.AddEdge(0, 1, huge, 1)
	s.AddEdge(1, 0, rat.One(), 0)

	exact, err := s.MaxRatio()
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	var ws Workspace
	fr, err := ws.ApproxMaxRatio(s)
	if err != nil {
		t.Fatalf("approx: %v", err)
	}
	if fr.Finite() {
		t.Fatalf("overflow-scale system returned finite enclosure [%g ± %g]", fr.Ratio, fr.Err)
	}
	if !fr.Contains(exact.Ratio) {
		t.Error("poisoned enclosure must vacuously contain the exact ratio")
	}
	if fr.AtLeast(rat.Zero()) {
		t.Error("poisoned enclosure must never certify a screening decision")
	}
	if _, _, ok := fr.Enclosure(); ok {
		t.Error("poisoned enclosure must not produce rational endpoints")
	}
}

// TestFloatDenormalScale: costs down in the denormal range (where relative
// error bounds break down and only the additive eta term saves the
// analysis) must still produce a containing enclosure.
func TestFloatDenormalScale(t *testing.T) {
	tiny := powRat(rat.New(1, 10), 322) // 10^-322: a float64 denormal
	tinier := powRat(rat.New(1, 10), 323)
	s := NewSystem(3)
	s.AddEdge(0, 1, tiny, 0)
	s.AddEdge(1, 2, tinier, 0)
	s.AddEdge(2, 0, tiny, 1)
	s.AddEdge(1, 0, tinier, 1) // second cycle, near-tied at denormal scale

	exact, err := s.MaxRatio()
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	var ws Workspace
	fr, err := ws.ApproxMaxRatio(s)
	if err != nil {
		t.Fatalf("approx: %v", err)
	}
	if !fr.Contains(exact.Ratio) {
		t.Errorf("denormal enclosure [%g ± %g] misses exact %v", fr.Ratio, fr.Err, exact.Ratio)
	}
}

// TestFloatResultPredicates pins the semantics the screening layers build on.
func TestFloatResultPredicates(t *testing.T) {
	r := FloatOf(rat.New(1, 3))
	if !r.Contains(rat.New(1, 3)) {
		t.Error("FloatOf(1/3) must contain 1/3")
	}
	if r.Contains(rat.New(1, 2)) {
		t.Error("FloatOf(1/3) must not contain 1/2")
	}
	if !r.AtLeast(rat.New(1, 4)) {
		t.Error("1/3 is certainly >= 1/4")
	}
	if r.AtLeast(rat.New(1, 3)) {
		t.Error("AtLeast(1/3) must fail: the value itself is inside the enclosure")
	}
	lo, hi, ok := r.Enclosure()
	if !ok || !lo.Less(rat.New(1, 3)) || !rat.New(1, 3).Less(hi) {
		t.Errorf("enclosure [%v, %v] does not strictly bracket 1/3", lo, hi)
	}

	half := r.DivInt(3) // (1/3)/3 = 1/9
	if !half.Contains(rat.New(1, 9)) {
		t.Error("DivInt(3) enclosure must contain 1/9")
	}
	if bad := r.DivInt(0); bad.Finite() {
		t.Error("DivInt(0) must poison")
	}

	m := MaxFloat(FloatOf(rat.FromInt(2)), FloatOf(rat.FromInt(5)))
	if !m.Contains(rat.FromInt(5)) || m.Contains(rat.FromInt(2)) {
		t.Error("MaxFloat must enclose the max, not the min")
	}
	p := MaxFloat(FloatOf(rat.FromInt(2)), poisoned())
	if p.Finite() || p.AtLeast(rat.Zero()) {
		t.Error("MaxFloat with a poisoned operand must stay poisoned")
	}
	p2 := MaxFloat(poisoned(), FloatOf(rat.FromInt(2)))
	if p2.Finite() || p2.AtLeast(rat.Zero()) {
		t.Error("MaxFloat poisoned-first must stay poisoned")
	}
}

// TestFromFloatExact: the rational conversion underlying every screening
// comparison is exact.
func TestFromFloatExact(t *testing.T) {
	x, ok := rat.FromFloat(0.1)
	if !ok {
		t.Fatal("FromFloat(0.1) failed")
	}
	// 0.1 rounds to 3602879701896397 / 2^55 — the exact value of the float,
	// not the decimal it came from.
	want := rat.New(3602879701896397, 1).Div(powRat(rat.FromInt(2), 55))
	if !x.Equal(want) {
		t.Errorf("FromFloat(0.1) = %v, want %v", x, want)
	}
	if x.Equal(rat.New(1, 10)) {
		t.Error("FromFloat(0.1) must not equal 1/10: the conversion is of the float, not the decimal")
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := rat.FromFloat(f); ok {
			t.Errorf("FromFloat(%v) must report !ok", f)
		}
	}
	if y, ok := rat.FromFloat(-2.5); !ok || !y.Equal(rat.New(-5, 2)) {
		t.Errorf("FromFloat(-2.5) = %v, %v", y, ok)
	}
}

// TestFloatScreenBackendResolvesExact: the float-screen backend's exact
// computations route exactly like auto, so anything evaluated through
// MaxRatioBackend is bit-identical across auto and float-screen.
func TestFloatScreenBackendResolvesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var wsA, wsF Workspace
	for trial := 0; trial < 50; trial++ {
		s := randomLiveSystem(rng, 3+rng.Intn(6))
		a, errA := wsA.MaxRatioBackend(s, BackendAuto)
		f, errF := wsF.MaxRatioBackend(s, BackendFloatScreen)
		if (errA == nil) != (errF == nil) {
			t.Fatalf("trial %d: error divergence auto=%v float-screen=%v", trial, errA, errF)
		}
		if errA != nil {
			continue
		}
		if !a.Ratio.Equal(f.Ratio) {
			t.Fatalf("trial %d: auto %v != float-screen %v", trial, a.Ratio, f.Ratio)
		}
	}
}
