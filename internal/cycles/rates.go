package cycles

import (
	"repro/internal/graph"
	"repro/internal/rat"
)

// VertexRates computes, for every vertex, its asymptotic firing interval in
// the timed event graph semantics: the maximum cycle ratio over all cycles
// from which the vertex is reachable. Vertices not reachable from any cycle
// have rate 0 (they fire once per... they are only throttled by their
// inputs' transient, i.e. asymptotically unconstrained; callers treat 0 as
// "no steady-state constraint").
//
// This quantifies the phenomenon exhibited by replicated mappings: the
// output streams of sibling replicas are structurally decoupled, so a fast
// replica's transitions settle at a smaller firing interval than the
// system's period — the system period is the maximum over vertices.
func (s *System) VertexRates() ([]rat.Rat, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	comp, ncomp := s.G.SCC()
	// Per-SCC max cycle ratio (zero when the SCC has no cycle).
	var ws Workspace
	sccRatio := make([]rat.Rat, ncomp)
	for c := 0; c < ncomp; c++ {
		r, ok, err := ws.maxRatioSCC(s, comp, c)
		if err != nil {
			return nil, err
		}
		if ok {
			sccRatio[c] = r.Ratio
		}
	}
	// Propagate along the condensation: rate(C) = max(ratio(C),
	// rate(predecessors)). Tarjan ids are reverse topological (sinks first),
	// so iterating ids from high to low visits sources before sinks.
	rate := make([]rat.Rat, ncomp)
	copy(rate, sccRatio)
	// Collect condensation edges pred -> succ.
	type ce struct{ from, to int }
	var edges []ce
	for _, e := range s.G.Edges {
		cf, ct := comp[e.From], comp[e.To]
		if cf != ct {
			edges = append(edges, ce{cf, ct})
		}
	}
	// Iterate until fixpoint; the condensation is a DAG so ncomp rounds
	// suffice (and in practice one pass in id order nearly does).
	for round := 0; round < ncomp; round++ {
		changed := false
		for _, e := range edges {
			if rate[e.to].Less(rate[e.from]) {
				rate[e.to] = rate[e.from]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]rat.Rat, s.G.N)
	for v := 0; v < s.G.N; v++ {
		out[v] = rate[comp[v]]
	}
	return out, nil
}

// Condensation returns the SCC condensation of the system's graph as a
// DAG over component ids, together with the vertex->component map.
func (s *System) Condensation() (*graph.Digraph, []int) {
	comp, ncomp := s.G.SCC()
	dag := graph.New(ncomp)
	seen := map[[2]int]bool{}
	for _, e := range s.G.Edges {
		cf, ct := comp[e.From], comp[e.To]
		if cf == ct {
			continue
		}
		k := [2]int{cf, ct}
		if !seen[k] {
			seen[k] = true
			dag.AddEdge(cf, ct, 0)
		}
	}
	return dag, comp
}
