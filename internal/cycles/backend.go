package cycles

import "fmt"

// Backend selects the exact maximum-cycle-ratio engine.
//
// Both exact engines return the same ratio on every input (each is exact
// rational arithmetic and each is cross-checked against the other in the
// differential and fuzz harnesses); they differ in cost profile. Token
// contraction + Karp is excellent when token edges are sparse — the
// contracted graph then has one vertex per token edge and stays tiny no
// matter how large the net is (a strict-model TPN carries one token per
// processor, so a 624-transition net contracts to ~25 vertices). When token
// edges are plentiful — the max-plus recurrence matrices of the mpa layer
// put a token on EVERY edge — contraction degenerates to the identity and
// Karp pays its full Θ(V·E) dynamic program with a Θ(V²) exact table, while
// Howard's policy iteration still converges in a handful of sweeps: 7x
// faster on the smallest scaling family's recurrence matrix, >100x on the
// largest (see the Karp-vs-Howard table in EXPERIMENTS.md).
type Backend uint8

const (
	// BackendAuto picks per system by token-edge share (see
	// AutoHowardTokenShareNum/Den). The choice depends only on the system's
	// edge structure, so it is deterministic and batch results stay
	// bit-identical at any parallelism.
	BackendAuto Backend = iota
	// BackendKarp forces token contraction + Karp's maximum mean cycle.
	BackendKarp
	// BackendHoward forces Howard policy iteration.
	BackendHoward
	// BackendFloatScreen is the float-screening tier: exact computations
	// resolve exactly like BackendAuto (MaxRatioBackend routes it by
	// token-edge share, so results stay bit-identical to the exact
	// backends), but callers that understand screening — the engine's
	// ApproxBatch, the bnb leaf loop, the greedy/exhaustive heuristics —
	// additionally run the float64 sweep with its rigorous error bound
	// (Workspace.ApproxMaxRatio) to rank candidates in floating point and
	// pay exact arithmetic only for the ambiguous band.
	BackendFloatScreen

	// NumBackends is the number of Backend values; callers sizing per-backend
	// tables (the service keeps one engine per backend) use it so a new
	// backend cannot silently overflow them.
	NumBackends = iota
)

// AutoHowardTokenShareNum/Den is the auto-heuristic crossover as an exact
// fraction: BackendAuto routes to Howard when at least Num/Den of the
// system's edges carry tokens, to Karp below it. Benchmark-tuned on the
// scaling families of bench_test.go (BenchmarkPeriodBackends /
// BenchmarkSpectralBackends, table in EXPERIMENTS.md): unfolded TPNs sit
// near a token share of 0.03 and Karp's contraction wins, recurrence
// matrices sit at 1.0 and Howard wins by one to two orders of magnitude;
// any cutoff between those regimes behaves identically on this
// repository's workloads, so the midpoint 1/2 is taken.
const (
	AutoHowardTokenShareNum = 1
	AutoHowardTokenShareDen = 2
)

// String implements fmt.Stringer (and flag.Value-style rendering).
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendKarp:
		return "karp"
	case BackendHoward:
		return "howard"
	case BackendFloatScreen:
		return "float-screen"
	default:
		return fmt.Sprintf("Backend(%d)", uint8(b))
	}
}

// ParseBackend parses "auto", "karp", "howard" or "float-screen" (the
// -backend flag values of the commands).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "karp":
		return BackendKarp, nil
	case "howard":
		return BackendHoward, nil
	case "float-screen":
		return BackendFloatScreen, nil
	default:
		return BackendAuto, fmt.Errorf("cycles: unknown backend %q (want auto, karp, howard or float-screen)", s)
	}
}

// autoBackend resolves BackendAuto for a concrete system: Howard when token
// edges make up at least AutoHowardTokenShareNum/Den of all edges (integer
// cross-multiplication, no float drift), Karp otherwise. An empty system
// goes to Karp for the historical error paths.
func autoBackend(s *System) Backend {
	tokenEdges := 0
	for _, tk := range s.Tokens {
		if tk > 0 {
			tokenEdges++
		}
	}
	if len(s.Tokens) > 0 && AutoHowardTokenShareDen*tokenEdges >= AutoHowardTokenShareNum*len(s.Tokens) {
		return BackendHoward
	}
	return BackendKarp
}

// MaxRatioBackend computes the maximum cycle ratio of s with the selected
// backend on the workspace's reused scratch. BackendAuto routes by
// token-edge share (see AutoHowardTokenShareNum/Den); BackendFloatScreen
// resolves the same way — its exact computations ARE the auto engines, which
// is what keeps screened results bit-identical. Screening itself is a caller
// protocol built on ApproxMaxRatio, not a different exact engine.
func (ws *Workspace) MaxRatioBackend(s *System, b Backend) (Result, error) {
	if b == BackendAuto || b == BackendFloatScreen {
		b = autoBackend(s)
	}
	if b == BackendHoward {
		return ws.MaxRatioHoward(s)
	}
	return ws.MaxRatio(s)
}
