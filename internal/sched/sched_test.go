package sched

import (
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func smallProblem() (*pipeline.Pipeline, *platform.Platform) {
	pipe := pipeline.MustNew([]int64{60, 240, 60}, []int64{100, 100})
	plat := platform.Uniform(6, 10, 50)
	// Heterogeneous speeds: one fast processor.
	plat.Speeds = []int64{10, 40, 10, 10, 10, 10}
	return pipe, plat
}

func TestEvaluateMatchesCore(t *testing.T) {
	pipe, plat := smallProblem()
	mapp := mapping.MustNew([][]int{{0}, {1}, {2}}, 6)
	p, err := Evaluate(pipe, plat, mapp, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	// P1 computes 240 at speed 40 = 6; P0 computes 6; comms 2 each;
	// Mct = 6 and no replication => period 6.
	if p.Float64() != 6 {
		t.Fatalf("period = %v, want 6", p)
	}
}

func TestExhaustivePicksFastProcForHeavyStage(t *testing.T) {
	pipe, plat := smallProblem()
	res, err := ExhaustiveOneToOne(pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Replicas[1][0] != 1 {
		t.Errorf("heavy stage not on fast processor: %v", res.Mapping)
	}
	if res.Period.Float64() != 6 {
		t.Errorf("period = %v, want 6", res.Period)
	}
	if res.Throughput().Float64() != 1.0/6 {
		t.Errorf("throughput = %v", res.Throughput())
	}
}

func TestExhaustiveLimits(t *testing.T) {
	pipe := pipeline.MustNew([]int64{1, 1}, []int64{1})
	if _, err := ExhaustiveOneToOne(pipe, platform.Uniform(11, 1, 1), model.Overlap); err == nil {
		t.Error("oversized exhaustive accepted")
	}
	pipe3 := pipeline.MustNew([]int64{1, 1, 1}, []int64{1, 1})
	if _, err := ExhaustiveOneToOne(pipe3, platform.Uniform(2, 1, 1), model.Overlap); err == nil {
		t.Error("more stages than processors accepted")
	}
}

func TestGreedyUsesReplication(t *testing.T) {
	// One dominant stage on a homogeneous platform: greedy must replicate it
	// and strictly beat the best one-to-one mapping.
	pipe := pipeline.MustNew([]int64{10, 400, 10}, []int64{10, 10})
	plat := platform.Uniform(6, 10, 100)
	one, err := ExhaustiveOneToOne(pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Period.Less(one.Period) {
		t.Fatalf("greedy %v not better than one-to-one %v", gr.Period, one.Period)
	}
	if len(gr.Mapping.Replicas[1]) < 2 {
		t.Errorf("greedy did not replicate the heavy stage: %v", gr.Mapping)
	}
	if err := gr.Mapping.Validate(plat.NumProcs()); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSearchFindsFeasibleGoodMapping(t *testing.T) {
	pipe := pipeline.MustNew([]int64{10, 400, 10}, []int64{10, 10})
	plat := platform.Uniform(6, 10, 100)
	rng := rand.New(rand.NewSource(5))
	rs, err := RandomSearch(pipe, plat, model.Overlap, rng, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Mapping.Validate(plat.NumProcs()); err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	// Random search with restarts should at least approach greedy: allow a
	// 2x slack to keep the test robust, but require feasibility and sanity.
	if gr.Period.MulInt(2).Less(rs.Period) {
		t.Errorf("random search period %v way worse than greedy %v", rs.Period, gr.Period)
	}
}

func TestRandomSearchStrictModel(t *testing.T) {
	pipe := pipeline.MustNew([]int64{10, 60, 10}, []int64{10, 10})
	plat := platform.Uniform(5, 10, 100)
	rng := rand.New(rand.NewSource(9))
	rs, err := RandomSearch(pipe, plat, model.Strict, rng, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Period.Sign() <= 0 {
		t.Fatal("non-positive period")
	}
}

func TestGreedyStageCountGuard(t *testing.T) {
	pipe := pipeline.MustNew([]int64{1, 1, 1}, []int64{1, 1})
	if _, err := Greedy(pipe, platform.Uniform(2, 1, 1), model.Overlap); err == nil {
		t.Error("infeasible greedy accepted")
	}
}
