package sched

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// The engine-routed heuristics must return the same mapping and period as
// the historical serial path: greedy's per-round batch keeps the serial
// tie-break (smallest period, first stage), the exhaustive batches keep
// "first best in enumeration order", and the sequential walks consume the
// identical rng stream.

func testProblem(seed int64) (*pipeline.Pipeline, *platform.Platform) {
	rng := rand.New(rand.NewSource(seed))
	pipe := pipeline.Random(rng, 3, 50, 500)
	plat := platform.Random(rng, 7, 5, 25, 20, 200)
	return pipe, plat
}

func TestGreedyEngineMatchesAtAnyWorkerCount(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pipe, plat := testProblem(seed)
		ref, err := GreedyEngine(context.Background(), engine.New(engine.Options{Workers: 1}), pipe, plat, model.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			got, err := GreedyEngine(context.Background(), engine.New(engine.Options{Workers: workers}), pipe, plat, model.Overlap)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Period.Equal(ref.Period) {
				t.Fatalf("seed %d workers %d: period %v, want %v", seed, workers, got.Period, ref.Period)
			}
			if got.Mapping.String() != ref.Mapping.String() {
				t.Fatalf("seed %d workers %d: mapping %v, want %v", seed, workers, got.Mapping, ref.Mapping)
			}
		}
	}
}

func TestExhaustiveEngineMatchesAtAnyWorkerCount(t *testing.T) {
	pipe, plat := testProblem(5)
	ref, err := ExhaustiveOneToOneEngine(context.Background(), engine.New(engine.Options{Workers: 1}), pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExhaustiveOneToOneEngine(context.Background(), engine.New(engine.Options{Workers: 4}), pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Period.Equal(ref.Period) || got.Mapping.String() != ref.Mapping.String() {
		t.Fatalf("parallel exhaustive diverged: %v/%v vs %v/%v", got.Period, got.Mapping, ref.Period, ref.Mapping)
	}
}

func TestRandomSearchEngineIsRNGFaithful(t *testing.T) {
	pipe, plat := testProblem(8)
	a, err := RandomSearchEngine(context.Background(), engine.New(engine.Options{Workers: 1}), pipe, plat, model.Overlap,
		rand.New(rand.NewSource(42)), 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSearchEngine(context.Background(), engine.New(engine.Options{Workers: 4}), pipe, plat, model.Overlap,
		rand.New(rand.NewSource(42)), 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Period.Equal(b.Period) || a.Mapping.String() != b.Mapping.String() {
		t.Fatalf("identical rng streams diverged: %v/%v vs %v/%v", a.Period, a.Mapping, b.Period, b.Mapping)
	}
}

func TestBestOfEngineSharesCache(t *testing.T) {
	pipe, plat := testProblem(9)
	eng := engine.New(engine.Options{})
	if _, err := BestOfEngine(context.Background(), eng, pipe, plat, model.Overlap, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	hits, misses := eng.CacheStats()
	if misses == 0 {
		t.Fatal("no evaluations recorded")
	}
	if hits == 0 {
		t.Fatal("heuristics never reused a candidate: the shared memo cache is not wired in")
	}
}

func TestEngineSearchCancellation(t *testing.T) {
	pipe, plat := testProblem(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{Workers: 2})
	if _, err := GreedyEngine(ctx, eng, pipe, plat, model.Overlap); err == nil {
		t.Fatal("canceled greedy search returned no error")
	}
	if _, err := RandomSearchEngine(ctx, eng, pipe, plat, model.Overlap, rand.New(rand.NewSource(1)), 3, 10); err == nil {
		t.Fatal("canceled random search returned no error")
	}
	if _, err := ExhaustiveOneToOneEngine(ctx, eng, pipe, plat, model.Overlap); err == nil {
		t.Fatal("canceled exhaustive search returned no error")
	}
}
