// Package sched implements mapping heuristics on top of the period
// evaluator: given a pipeline and a platform, find a replicated mapping with
// high throughput. Determining the optimal mapping is NP-hard even without
// replication (Benoit & Robert [3], cited in Section 1), so besides an
// exhaustive baseline for tiny instances this package provides greedy
// construction and randomized hill climbing — the heuristics a user of the
// throughput evaluator would actually deploy.
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// Evaluate computes the period of a candidate mapping (smaller is better).
func Evaluate(pipe *pipeline.Pipeline, plat *platform.Platform, mapp *mapping.Mapping, cm model.CommModel) (rat.Rat, error) {
	inst, err := model.FromMapped(pipe, plat, mapp)
	if err != nil {
		return rat.Rat{}, err
	}
	res, err := core.Period(inst, cm)
	if err != nil {
		return rat.Rat{}, err
	}
	return res.Period, nil
}

// EvaluateEngine is Evaluate routed through a shared engine: the
// candidate's period is memoized, so a partition revisited by any
// heuristic (greedy enlargement, hill-climbing moves, annealing) sharing
// the engine is computed once.
func EvaluateEngine(eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, mapp *mapping.Mapping, cm model.CommModel) (rat.Rat, error) {
	inst, err := model.FromMapped(pipe, plat, mapp)
	if err != nil {
		return rat.Rat{}, err
	}
	res, err := eng.Evaluate(engine.Task{Inst: inst, Model: cm})
	if err != nil {
		return rat.Rat{}, err
	}
	return res.Period, nil
}

// defaultEngine builds the single-call engine backing the engine-less entry
// points: a GOMAXPROCS pool with the default memo cache.
func defaultEngine() *engine.Engine { return engine.New(engine.Options{}) }

// Result is a mapping with its achieved period.
type Result struct {
	Mapping *mapping.Mapping
	Period  rat.Rat
}

// Throughput returns 1/Period.
func (r Result) Throughput() rat.Rat { return rat.One().Div(r.Period) }

// ExhaustiveOneToOne finds the best non-replicated mapping by enumerating
// all injective stage->processor assignments. Exponential: it refuses
// instances with more than maxProcsExhaustive processors.
const maxProcsExhaustive = 10

func ExhaustiveOneToOne(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (Result, error) {
	return ExhaustiveOneToOneEngine(context.Background(), defaultEngine(), pipe, plat, cm)
}

// exhaustiveChunk bounds how many enumerated assignments are materialized
// before being flushed to the engine as one batch.
const exhaustiveChunk = 1024

// screenTasks is the float-screening pass shared by the batch heuristics:
// when the engine runs cycles.BackendFloatScreen, it drops every task whose
// enclosure proves its exact period is at least ref — such a task can never
// strictly improve a running best that is already <= ref — and returns the
// survivors (tasks and their parallel bookkeeping slice pos, compacted in
// place). Candidates with poisoned or errored enclosures always survive to
// the exact evaluation, so the caller's winner, tie-breaks and error
// handling are bit-identical to an unscreened run.
func screenTasks(ctx context.Context, eng *engine.Engine, tasks []engine.Task, pos []int, ref rat.Rat) ([]engine.Task, []int, error) {
	if eng.Backend() != cycles.BackendFloatScreen || len(tasks) == 0 {
		return tasks, pos, nil
	}
	aouts, err := eng.ApproxBatch(ctx, tasks)
	if err != nil {
		return nil, nil, err
	}
	kept := 0
	for j := range tasks {
		if aouts[j].Err == nil && aouts[j].Period.AtLeast(ref) {
			continue
		}
		tasks[kept] = tasks[j]
		pos[kept] = pos[j]
		kept++
	}
	return tasks[:kept], pos[:kept], nil
}

// ExhaustiveOneToOneEngine enumerates injective assignments in
// lexicographic order, evaluates them in engine batches, and keeps the
// first assignment attaining the minimum period — the same winner the
// serial enumeration picks.
func ExhaustiveOneToOneEngine(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (Result, error) {
	n := pipe.NumStages()
	p := plat.NumProcs()
	if p > maxProcsExhaustive {
		return Result{}, fmt.Errorf("sched: exhaustive search limited to %d processors (got %d)", maxProcsExhaustive, p)
	}
	if n > p {
		return Result{}, fmt.Errorf("sched: %d stages need at least as many processors (got %d)", n, p)
	}
	var best Result
	chunk := make([]*mapping.Mapping, 0, exhaustiveChunk)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		// Missing links make some assignments infeasible; evaluate the
		// feasible ones, remembering their enumeration positions.
		idx := make([]int, 0, len(chunk))
		compact := make([]engine.Task, 0, len(chunk))
		for k, mapp := range chunk {
			inst, err := model.FromMapped(pipe, plat, mapp)
			if err != nil {
				continue
			}
			idx = append(idx, k)
			compact = append(compact, engine.Task{Inst: inst, Model: cm})
		}
		// With float screening on, assignments that provably cannot beat the
		// running best skip their exact evaluation; the first-minimum winner
		// is unchanged because a screened assignment's exact period is >= the
		// best so far and the update below requires a strict improvement.
		if best.Mapping != nil {
			var err error
			compact, idx, err = screenTasks(ctx, eng, compact, idx, best.Period)
			if err != nil {
				return err
			}
		}
		outs, err := eng.EvaluateBatch(ctx, compact)
		if err != nil {
			return err
		}
		for j, o := range outs {
			if o.Err != nil {
				continue
			}
			if best.Mapping == nil || o.Result.Period.Less(best.Period) {
				best = Result{Mapping: chunk[idx[j]], Period: o.Result.Period}
			}
		}
		chunk = chunk[:0]
		return nil
	}
	assigned := make([]int, n)
	used := make([]bool, p)
	var rec func(stage int) error
	rec = func(stage int) error {
		if stage == n {
			replicas := make([][]int, n)
			for i, u := range assigned {
				replicas[i] = []int{u}
			}
			mapp, err := mapping.New(replicas, p)
			if err != nil {
				return err
			}
			chunk = append(chunk, mapp)
			if len(chunk) == exhaustiveChunk {
				return flush()
			}
			return nil
		}
		for u := 0; u < p; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			assigned[stage] = u
			if err := rec(stage + 1); err != nil {
				return err
			}
			used[u] = false
		}
		return nil
	}
	err := rec(0)
	if err == nil {
		err = flush()
	}
	if err != nil {
		// A deadline mid-enumeration keeps the best assignment the flushed
		// chunks already found (anytime, like the other heuristics).
		if ctx.Err() != nil && best.Mapping != nil {
			return best, nil
		}
		return Result{}, err
	}
	if best.Mapping == nil {
		return Result{}, fmt.Errorf("sched: no feasible one-to-one mapping")
	}
	return best, nil
}

// Greedy builds a replicated mapping: stages first get the fastest free
// processor each; remaining processors are then handed out one by one to
// whichever stage's enlargement reduces the period the most (ties: first
// stage). Processors within a stage are kept sorted by id for determinism.
func Greedy(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (Result, error) {
	return GreedyEngine(context.Background(), defaultEngine(), pipe, plat, cm)
}

// GreedyEngine is Greedy with every enlargement round evaluated as one
// engine batch: the n candidate mappings "give processor u to stage i" are
// independent, so each round parallelizes across the pool while the winner
// is still chosen by the serial rule (smallest period, first stage on ties).
func GreedyEngine(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err // canceled before any work: nothing to salvage
	}
	n := pipe.NumStages()
	p := plat.NumProcs()
	if n > p {
		return Result{}, fmt.Errorf("sched: %d stages on %d processors", n, p)
	}
	// Processors sorted by decreasing speed.
	bySpeed := make([]int, p)
	for u := range bySpeed {
		bySpeed[u] = u
	}
	sort.Slice(bySpeed, func(i, j int) bool {
		si, sj := plat.Speeds[bySpeed[i]], plat.Speeds[bySpeed[j]]
		if si != sj {
			return si > sj
		}
		return bySpeed[i] < bySpeed[j]
	})
	replicas := make([][]int, n)
	for i := 0; i < n; i++ {
		replicas[i] = []int{bySpeed[i]}
	}
	free := bySpeed[n:]
	current, err := evalReplicasEngine(eng, pipe, plat, replicas, cm)
	if err != nil {
		return Result{}, err
	}
	for len(free) > 0 {
		u := free[0]
		// One candidate per stage: enlarge stage i with processor u.
		stages := make([]int, 0, n)
		tasks := make([]engine.Task, 0, n)
		for i := 0; i < n; i++ {
			cand := cloneReplicas(replicas)
			cand[i] = append(cand[i], u)
			sort.Ints(cand[i])
			mapp, err := mapping.New(cand, p)
			if err != nil {
				continue
			}
			inst, err := model.FromMapped(pipe, plat, mapp)
			if err != nil {
				continue
			}
			stages = append(stages, i)
			tasks = append(tasks, engine.Task{Inst: inst, Model: cm})
		}
		// With float screening on, enlargements that provably cannot improve
		// the current period skip their exact evaluation. The round winner is
		// unchanged: bestPeriod starts at current and only decreases, so a
		// screened candidate (exact >= current) could never have won — and
		// the first-stage tie-break sees the survivors in their original
		// stage order.
		tasks, stages, err = screenTasks(ctx, eng, tasks, stages, current)
		if err != nil {
			if ctx.Err() != nil {
				if mapp, merr := mapping.New(cloneReplicas(replicas), p); merr == nil {
					return Result{Mapping: mapp, Period: current}, nil
				}
			}
			return Result{}, err
		}
		outs, err := eng.EvaluateBatch(ctx, tasks)
		if err != nil {
			// The partial greedy assignment is itself a feasible mapping
			// (every stage got a processor in the seeding round); a
			// deadline mid-enlargement returns it instead of failing.
			if ctx.Err() != nil {
				if mapp, merr := mapping.New(cloneReplicas(replicas), p); merr == nil {
					return Result{Mapping: mapp, Period: current}, nil
				}
			}
			return Result{}, err
		}
		bestStage := -1
		bestPeriod := current
		for j, o := range outs {
			if o.Err != nil {
				continue
			}
			if o.Result.Period.Less(bestPeriod) {
				bestPeriod = o.Result.Period
				bestStage = stages[j]
			}
		}
		if bestStage < 0 {
			break // adding this processor anywhere does not help; stop
		}
		replicas[bestStage] = append(replicas[bestStage], u)
		sort.Ints(replicas[bestStage])
		current = bestPeriod
		free = free[1:]
	}
	mapp, err := mapping.New(replicas, p)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: mapp, Period: current}, nil
}

// RandomSearch runs restarts of randomized hill climbing: random feasible
// replica partitions, improved by single-processor moves (shift a processor
// to another stage, add an unused one, or drop one) until a local optimum,
// keeping the best mapping seen overall.
func RandomSearch(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, rng *rand.Rand, restarts, movesPerRestart int) (Result, error) {
	return RandomSearchEngine(context.Background(), defaultEngine(), pipe, plat, cm, rng, restarts, movesPerRestart)
}

// RandomSearchEngine is RandomSearch with evaluations memoized by the
// engine. Hill climbing is inherently sequential (each move depends on the
// last accepted state), so the walk itself is untouched — the rng stream
// and therefore the visited partitions match the serial path exactly — but
// partitions revisited across moves and restarts are computed once. Float
// screening never applies here (or in the annealer): the walk's trajectory
// is coupled to exact accept/reject decisions, so skipping an exact
// evaluation would change which partitions are visited next — screening is
// reserved for the batch heuristics, whose winners are order-free.
func RandomSearchEngine(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, rng *rand.Rand, restarts, movesPerRestart int) (Result, error) {
	n := pipe.NumStages()
	p := plat.NumProcs()
	if n > p {
		return Result{}, fmt.Errorf("sched: %d stages on %d processors", n, p)
	}
	var best Result
	for r := 0; r < restarts; r++ {
		if err := ctx.Err(); err != nil {
			if best.Mapping != nil {
				return best, nil // anytime: keep what earlier restarts found
			}
			return Result{}, err
		}
		replicas := randomPartition(rng, n, p)
		period, err := evalReplicasEngine(eng, pipe, plat, replicas, cm)
		if err != nil {
			continue
		}
		for mv := 0; mv < movesPerRestart; mv++ {
			if err := ctx.Err(); err != nil {
				// A deadline mid-walk (the service's wall-clock budget)
				// must not discard work: fold the walk's current state —
				// already evaluated and feasible — into best before
				// deciding what to hand back.
				if mapp, merr := mapping.New(cloneReplicas(replicas), p); merr == nil {
					if best.Mapping == nil || period.Less(best.Period) {
						best = Result{Mapping: mapp, Period: period}
					}
				}
				if best.Mapping != nil {
					return best, nil
				}
				return Result{}, err
			}
			cand := neighbor(rng, replicas, n, p)
			if cand == nil {
				continue
			}
			cperiod, err := evalReplicasEngine(eng, pipe, plat, cand, cm)
			if err != nil {
				continue
			}
			if cperiod.Less(period) {
				replicas, period = cand, cperiod
			}
		}
		if best.Mapping == nil || period.Less(best.Period) {
			mapp, err := mapping.New(cloneReplicas(replicas), p)
			if err != nil {
				return Result{}, err
			}
			best = Result{Mapping: mapp, Period: period}
		}
	}
	if best.Mapping == nil {
		return Result{}, fmt.Errorf("sched: random search found no feasible mapping")
	}
	return best, nil
}

// randomPartition assigns each stage one random distinct processor, then
// scatters a random subset of the remaining ones.
func randomPartition(rng *rand.Rand, n, p int) [][]int {
	perm := rng.Perm(p)
	replicas := make([][]int, n)
	for i := 0; i < n; i++ {
		replicas[i] = []int{perm[i]}
	}
	rest := perm[n:]
	for _, u := range rest {
		if rng.Intn(2) == 0 {
			continue // leave the processor unused
		}
		i := rng.Intn(n)
		replicas[i] = append(replicas[i], u)
	}
	for i := range replicas {
		sort.Ints(replicas[i])
	}
	return replicas
}

// neighbor applies one random move and returns the new partition (or nil if
// the move was infeasible).
func neighbor(rng *rand.Rand, replicas [][]int, n, p int) [][]int {
	cand := cloneReplicas(replicas)
	used := map[int]bool{}
	for _, procs := range cand {
		for _, u := range procs {
			used[u] = true
		}
	}
	switch rng.Intn(3) {
	case 0: // move a processor from one stage to another
		from := rng.Intn(n)
		if len(cand[from]) <= 1 {
			return nil
		}
		to := rng.Intn(n)
		if to == from {
			return nil
		}
		k := rng.Intn(len(cand[from]))
		u := cand[from][k]
		cand[from] = append(cand[from][:k], cand[from][k+1:]...)
		cand[to] = append(cand[to], u)
		sort.Ints(cand[to])
	case 1: // add an unused processor to a random stage
		var freeList []int
		for u := 0; u < p; u++ {
			if !used[u] {
				freeList = append(freeList, u)
			}
		}
		if len(freeList) == 0 {
			return nil
		}
		u := freeList[rng.Intn(len(freeList))]
		i := rng.Intn(n)
		cand[i] = append(cand[i], u)
		sort.Ints(cand[i])
	default: // drop a processor from a replicated stage
		i := rng.Intn(n)
		if len(cand[i]) <= 1 {
			return nil
		}
		k := rng.Intn(len(cand[i]))
		cand[i] = append(cand[i][:k], cand[i][k+1:]...)
	}
	return cand
}

func cloneReplicas(replicas [][]int) [][]int {
	out := make([][]int, len(replicas))
	for i, r := range replicas {
		out[i] = append([]int(nil), r...)
	}
	return out
}

func evalReplicasEngine(eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, replicas [][]int, cm model.CommModel) (rat.Rat, error) {
	mapp, err := mapping.New(cloneReplicas(replicas), plat.NumProcs())
	if err != nil {
		return rat.Rat{}, err
	}
	return EvaluateEngine(eng, pipe, plat, mapp, cm)
}
