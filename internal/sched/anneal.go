package sched

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// AnnealOptions configures simulated annealing over replica partitions.
type AnnealOptions struct {
	// Steps is the number of proposed moves (default 2000).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule, expressed
	// as fractions of the initial period (defaults 0.3 and 0.001).
	StartTemp, EndTemp float64
}

func (o *AnnealOptions) defaults() {
	if o.Steps <= 0 {
		o.Steps = 2000
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 0.3
	}
	if o.EndTemp <= 0 || o.EndTemp >= o.StartTemp {
		o.EndTemp = o.StartTemp / 300
	}
}

// Anneal runs simulated annealing from the greedy solution: at each step a
// random neighbor move (shift/add/drop a processor) is accepted if it
// improves the period, or with probability exp(-Δ/T) otherwise. Annealing
// escapes the local optima that trap pure hill climbing on platforms where
// replication of one stage only pays off after rebalancing another.
func Anneal(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, rng *rand.Rand, opts AnnealOptions) (Result, error) {
	return AnnealEngine(context.Background(), defaultEngine(), pipe, plat, cm, rng, opts)
}

// AnnealEngine is Anneal with evaluations memoized by the engine. The
// cooling walk is sequential by construction; the memo cache pays off when
// the walk re-proposes a partition (frequent near convergence) and when the
// engine is shared with the other heuristics. Float screening deliberately
// does NOT apply: the acceptance rule consumes rng.Float64() only when the
// exact delta demands it, so skipping an exact evaluation would shift the
// rng stream and change the trajectory — the annealer stays exact even on a
// float-screen engine.
func AnnealEngine(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, rng *rand.Rand, opts AnnealOptions) (Result, error) {
	opts.defaults()
	start, err := GreedyEngine(ctx, eng, pipe, plat, cm)
	if err != nil {
		return Result{}, err
	}
	n := pipe.NumStages()
	p := plat.NumProcs()
	current := cloneReplicas(start.Mapping.Replicas)
	curPeriod := start.Period
	best := start

	scale := curPeriod.Float64()
	t0 := opts.StartTemp * scale
	t1 := opts.EndTemp * scale
	cool := math.Pow(t1/t0, 1/math.Max(1, float64(opts.Steps-1)))
	temp := t0

	for step := 0; step < opts.Steps; step++ {
		if err := ctx.Err(); err != nil {
			// Deadline mid-anneal: the walk so far already produced a valid
			// mapping (greedy at worst); hand it back instead of failing.
			if best.Mapping != nil {
				return best, nil
			}
			return Result{}, err
		}
		cand := neighbor(rng, current, n, p)
		temp *= cool
		if cand == nil {
			continue
		}
		period, err := evalReplicasEngine(eng, pipe, plat, cand, cm)
		if err != nil {
			continue
		}
		delta := period.Sub(curPeriod).Float64()
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			current, curPeriod = cand, period
			if curPeriod.Less(best.Period) {
				mapp, err := mapping.New(cloneReplicas(current), p)
				if err != nil {
					return Result{}, err
				}
				best = Result{Mapping: mapp, Period: curPeriod}
			}
		}
	}
	if best.Mapping == nil {
		return Result{}, fmt.Errorf("sched: annealing found no feasible mapping")
	}
	return best, nil
}

// BestOf runs every heuristic (greedy, random restarts, annealing) and
// returns the best mapping found.
func BestOf(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, rng *rand.Rand) (Result, error) {
	return BestOfEngine(context.Background(), defaultEngine(), pipe, plat, cm, rng)
}

// BestOfEngine runs every heuristic through one shared engine, so a
// partition proposed by hill climbing after greedy already visited it costs
// a cache lookup instead of a period computation. When the context expires
// mid-search (a wall-clock budget), the best mapping found before the
// deadline is returned rather than an error — an anytime search.
func BestOfEngine(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, rng *rand.Rand) (Result, error) {
	var best Result
	consider := func(r Result, err error) error {
		if err != nil {
			if ctx.Err() != nil {
				if best.Mapping != nil {
					return nil
				}
				return ctx.Err()
			}
			return nil
		}
		if best.Mapping == nil || r.Period.Less(best.Period) {
			best = r
		}
		return nil
	}
	g, err := GreedyEngine(ctx, eng, pipe, plat, cm)
	if err := consider(g, err); err != nil {
		return Result{}, err
	}
	rs, err := RandomSearchEngine(ctx, eng, pipe, plat, cm, rng, 10, 50)
	if err := consider(rs, err); err != nil {
		return Result{}, err
	}
	an, err := AnnealEngine(ctx, eng, pipe, plat, cm, rng, AnnealOptions{Steps: 1500})
	if err := consider(an, err); err != nil {
		return Result{}, err
	}
	if best.Mapping == nil {
		return Result{}, fmt.Errorf("sched: no heuristic found a feasible mapping")
	}
	return best, nil
}

// lowerBound computes a simple period lower bound for any mapping on the
// platform: the fastest processor must still execute the heaviest stage at
// full replication... more usefully, the total work of each stage spread
// over all processors bounds the period from below:
//
//	P >= w_k / Σ_u Π_u   for every stage k (perfect replication), and
//	P >= w_k / (m_max · Π_max) for any bounded replication.
//
// Exposed for tests and for reporting optimality gaps of the heuristics.
func lowerBound(pipe *pipeline.Pipeline, plat *platform.Platform) rat.Rat {
	sumSpeed := int64(0)
	for _, s := range plat.Speeds {
		sumSpeed += s
	}
	lb := rat.Zero()
	for _, st := range pipe.Stages {
		if st.Work > 0 {
			lb = rat.Max(lb, rat.New(st.Work, sumSpeed))
		}
	}
	return lb
}

// LowerBound is the exported form of the work-based period lower bound.
func LowerBound(pipe *pipeline.Pipeline, plat *platform.Platform) rat.Rat {
	return lowerBound(pipe, plat)
}
