package sched

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
)

// TestBranchAndBoundProvesOptimumBelowHeuristics: the exact search must
// never be beaten by any heuristic, must prove its answer, and must be
// reproducible across engine pool sizes.
func TestBranchAndBoundProvesOptimumBelowHeuristics(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pipe, plat := testProblem(seed)
		eng := engine.New(engine.Options{Workers: 4})
		exact, err := BranchAndBoundEngine(context.Background(), eng, pipe, plat, model.Overlap)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !exact.Proven {
			t.Fatalf("seed %d: exact search not proven", seed)
		}
		greedy, err := GreedyEngine(context.Background(), eng, pipe, plat, model.Overlap)
		if err != nil {
			t.Fatalf("seed %d greedy: %v", seed, err)
		}
		if greedy.Period.Less(exact.Period) {
			t.Fatalf("seed %d: greedy %v beat the proven optimum %v", seed, greedy.Period, exact.Period)
		}
		oneToOne, err := ExhaustiveOneToOneEngine(context.Background(), eng, pipe, plat, model.Overlap)
		if err != nil {
			t.Fatalf("seed %d exhaustive: %v", seed, err)
		}
		if oneToOne.Period.Less(exact.Period) {
			t.Fatalf("seed %d: one-to-one %v beat the proven optimum %v", seed, oneToOne.Period, exact.Period)
		}
		rs, err := RandomSearchEngine(context.Background(), eng, pipe, plat, model.Overlap,
			rand.New(rand.NewSource(seed)), 10, 40)
		if err != nil {
			t.Fatalf("seed %d random: %v", seed, err)
		}
		if rs.Period.Less(exact.Period) {
			t.Fatalf("seed %d: random search %v beat the proven optimum %v", seed, rs.Period, exact.Period)
		}
		// Same problem on a different pool size: identical certificate.
		again, err := BranchAndBoundEngine(context.Background(), engine.New(engine.Options{Workers: 1}), pipe, plat, model.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Period.Equal(exact.Period) || again.Mapping.String() != exact.Mapping.String() || again.Stats != exact.Stats {
			t.Fatalf("seed %d: engine pool size changed the exact result: %+v vs %+v", seed, again, exact)
		}
	}
}
