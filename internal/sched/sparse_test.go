package sched

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// anyFeasibleMapping brute-forces whether the sparse platform can carry the
// pipeline at all: some assignment of disjoint non-empty processor sets to
// stages whose required links all exist.
func anyFeasibleMapping(pipe *pipeline.Pipeline, plat *platform.Platform) bool {
	n := pipe.NumStages()
	p := plat.NumProcs()
	assign := make([]uint, n)
	var rec func(stage int, free uint) bool
	rec = func(stage int, free uint) bool {
		if stage == n {
			reps := make([][]int, n)
			for i, mask := range assign {
				for u := 0; u < p; u++ {
					if mask&(1<<u) != 0 {
						reps[i] = append(reps[i], u)
					}
				}
			}
			mapp, err := mapping.New(reps, p)
			if err != nil {
				return false
			}
			_, err = model.FromMapped(pipe, plat, mapp)
			return err == nil
		}
		for s := free; s != 0; s = (s - 1) & free {
			assign[stage] = s
			if rec(stage+1, free&^s) {
				return true
			}
		}
		return false
	}
	return rec(0, (1<<p)-1)
}

// structuredSearchError asserts a search failure is one of the package's
// typed messages — never a recovered panic, never something opaque.
func structuredSearchError(t *testing.T, name string, err error) {
	t.Helper()
	msg := err.Error()
	for _, prefix := range []string{"sched:", "model:", "bnb:"} {
		if strings.Contains(msg, prefix) {
			return
		}
	}
	t.Fatalf("%s returned an unstructured error: %v", name, err)
}

// TestHeuristicsNeverPanicOnSparsePlatforms is the sparse-platform property
// test: on platforms where missing links (Bandwidths[u][v] == 0) make many
// candidate mappings infeasible, every search — greedy, random, annealing,
// exhaustive one-to-one, best-of, branch and bound — must either return a
// verifiably feasible mapping or a structured error. A panic fails the test
// by itself. And because the branch and bound enumerates the whole space,
// it must succeed whenever any feasible replicated mapping exists.
func TestHeuristicsNeverPanicOnSparsePlatforms(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		p := n + 1 + rng.Intn(3)
		pipe := pipeline.Random(rng, n, 50, 500)
		plat := platform.Random(rng, p, 5, 25, 20, 200)
		for u := range plat.Bandwidths {
			for v := range plat.Bandwidths[u] {
				if u != v && rng.Intn(2) == 0 {
					plat.Bandwidths[u][v] = 0 // drop the link
				}
			}
		}
		feasible := anyFeasibleMapping(pipe, plat)
		eng := engine.New(engine.Options{Workers: 2})
		ctx := context.Background()
		hrng := rand.New(rand.NewSource(seed))

		type attempt struct {
			name string
			res  Result
			err  error
		}
		var runs []attempt
		record := func(name string, res Result, err error) {
			runs = append(runs, attempt{name, res, err})
		}
		g, err := GreedyEngine(ctx, eng, pipe, plat, model.Overlap)
		record("greedy", g, err)
		r, err := RandomSearchEngine(ctx, eng, pipe, plat, model.Overlap, hrng, 10, 30)
		record("random", r, err)
		a, err := AnnealEngine(ctx, eng, pipe, plat, model.Overlap, hrng, AnnealOptions{Steps: 200})
		record("anneal", a, err)
		e, err := ExhaustiveOneToOneEngine(ctx, eng, pipe, plat, model.Overlap)
		record("exhaustive", e, err)
		b, err := BestOfEngine(ctx, eng, pipe, plat, model.Overlap, hrng)
		record("best", b, err)
		x, err := BranchAndBoundEngine(ctx, eng, pipe, plat, model.Overlap)
		record("bnb", x.Result, err)

		for _, run := range runs {
			if run.err != nil {
				structuredSearchError(t, run.name, run.err)
				continue
			}
			// A returned mapping must be real: buildable on this platform
			// and achieving exactly the reported period.
			inst, err := model.FromMapped(pipe, plat, run.res.Mapping)
			if err != nil {
				t.Fatalf("seed %d %s: reported mapping needs a missing link: %v", seed, run.name, err)
			}
			res, err := core.Period(inst, model.Overlap)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, run.name, err)
			}
			if !res.Period.Equal(run.res.Period) {
				t.Fatalf("seed %d %s: reported period %v, recomputed %v", seed, run.name, run.res.Period, res.Period)
			}
		}
		// The exhaustive searches must agree with ground-truth feasibility.
		bnbErr := runs[len(runs)-1].err
		if feasible && bnbErr != nil {
			t.Fatalf("seed %d: a feasible mapping exists but bnb failed: %v", seed, bnbErr)
		}
		if !feasible {
			for _, run := range runs {
				if run.err == nil {
					t.Fatalf("seed %d: no feasible mapping exists but %s returned %v", seed, run.name, run.res.Mapping)
				}
			}
		}
	}
}

// TestSearchSkipsInfeasibleCandidates pins the skip-don't-abort behavior on
// a crafted platform: the fastest processor has no links at all, so every
// candidate touching it is infeasible. Greedy's fastest-first seed dies with
// a structured error, but the enumerating searches must step over the
// poisoned candidates and return the optimum of the connected remainder.
func TestSearchSkipsInfeasibleCandidates(t *testing.T) {
	speeds := []int64{100, 10, 10, 10} // processor 0: fast and useless
	bw := [][]int64{
		{0, 0, 0, 0},
		{0, 0, 50, 50},
		{0, 50, 0, 50},
		{0, 50, 50, 0},
	}
	plat, err := platform.New(speeds, bw)
	if err != nil {
		t.Fatal(err)
	}
	pipe := pipeline.MustNew([]int64{100, 200}, []int64{50})
	eng := engine.New(engine.Options{Workers: 2})
	ctx := context.Background()

	if _, err := GreedyEngine(ctx, eng, pipe, plat, model.Overlap); err == nil {
		t.Fatal("greedy seeded on the linkless processor should fail")
	} else {
		structuredSearchError(t, "greedy", err)
	}
	if _, err := AnnealEngine(ctx, eng, pipe, plat, model.Overlap, rand.New(rand.NewSource(1)), AnnealOptions{Steps: 50}); err == nil {
		t.Fatal("anneal (greedy-seeded) should fail")
	} else {
		structuredSearchError(t, "anneal", err)
	}

	oneToOne, err := ExhaustiveOneToOneEngine(ctx, eng, pipe, plat, model.Overlap)
	if err != nil {
		t.Fatalf("exhaustive did not skip the infeasible candidates: %v", err)
	}
	for _, procs := range oneToOne.Mapping.Replicas {
		for _, u := range procs {
			if u == 0 {
				t.Fatalf("exhaustive used the linkless processor: %v", oneToOne.Mapping)
			}
		}
	}
	exact, err := BranchAndBoundEngine(ctx, eng, pipe, plat, model.Overlap)
	if err != nil {
		t.Fatalf("bnb (with greedy warm start unavailable) did not recover: %v", err)
	}
	if !exact.Proven {
		t.Fatal("bnb on a 4-processor platform should prove its answer")
	}
	if oneToOne.Period.Less(exact.Period) {
		t.Fatalf("exact period %v worse than one-to-one %v", exact.Period, oneToOne.Period)
	}
	rs, err := RandomSearchEngine(ctx, eng, pipe, plat, model.Overlap, rand.New(rand.NewSource(1)), 30, 30)
	if err != nil {
		t.Fatalf("random search never found the feasible region: %v", err)
	}
	if rs.Period.Less(exact.Period) {
		t.Fatalf("random search %v beat the proven optimum %v", rs.Period, exact.Period)
	}
}
