package sched

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func TestAnnealAtLeastAsGoodAsGreedyStart(t *testing.T) {
	pipe := pipeline.MustNew([]int64{10, 400, 10}, []int64{10, 10})
	plat := platform.Uniform(6, 10, 100)
	rng := rand.New(rand.NewSource(3))
	gr, err := Greedy(pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Anneal(pipe, plat, model.Overlap, rng, AnnealOptions{Steps: 800})
	if err != nil {
		t.Fatal(err)
	}
	if gr.Period.Less(an.Period) {
		t.Fatalf("annealing (%v) worse than its greedy start (%v)", an.Period, gr.Period)
	}
	if err := an.Mapping.Validate(plat.NumProcs()); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealRespectsLowerBound(t *testing.T) {
	pipe := pipeline.MustNew([]int64{50, 300, 80}, []int64{20, 20})
	plat := platform.Uniform(8, 10, 200)
	rng := rand.New(rand.NewSource(7))
	an, err := Anneal(pipe, plat, model.Overlap, rng, AnnealOptions{Steps: 600})
	if err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(pipe, plat)
	if an.Period.Less(lb) {
		t.Fatalf("period %v below the work lower bound %v", an.Period, lb)
	}
}

func TestBestOf(t *testing.T) {
	pipe := pipeline.MustNew([]int64{10, 400, 10}, []int64{10, 10})
	plat := platform.Uniform(6, 10, 100)
	rng := rand.New(rand.NewSource(11))
	best, err := BestOf(pipe, plat, model.Overlap, rng)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(pipe, plat, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Period.Less(best.Period) {
		t.Fatalf("BestOf (%v) worse than greedy alone (%v)", best.Period, gr.Period)
	}
}

func TestAnnealOptionsDefaults(t *testing.T) {
	var o AnnealOptions
	o.defaults()
	if o.Steps <= 0 || o.StartTemp <= 0 || o.EndTemp <= 0 || o.EndTemp >= o.StartTemp {
		t.Fatalf("bad defaults: %+v", o)
	}
}

func TestAnnealInfeasible(t *testing.T) {
	pipe := pipeline.MustNew([]int64{1, 1, 1}, []int64{1, 1})
	rng := rand.New(rand.NewSource(1))
	if _, err := Anneal(pipe, platform.Uniform(2, 1, 1), model.Overlap, rng, AnnealOptions{}); err == nil {
		t.Error("infeasible annealing accepted")
	}
}
