package sched

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/model"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// The batch heuristics on a float-screen engine must return bit-identical
// results to the exact backends: screening only skips exact evaluations
// whose enclosure proves they cannot win, so the winner — including the
// first-stage and first-in-enumeration tie-breaks — never moves.

func TestGreedyEngineFloatScreenBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		pipe, plat := testProblem(seed)
		for _, cm := range model.Models() {
			ref, refErr := GreedyEngine(context.Background(),
				engine.New(engine.Options{Workers: 2}), pipe, plat, cm)
			got, gotErr := GreedyEngine(context.Background(),
				engine.New(engine.Options{Workers: 2, Backend: cycles.BackendFloatScreen}), pipe, plat, cm)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d %v: err %v vs screened %v", seed, cm, refErr, gotErr)
			}
			if refErr != nil {
				continue
			}
			if !got.Period.Equal(ref.Period) || got.Mapping.String() != ref.Mapping.String() {
				t.Fatalf("seed %d %v: screened greedy %v/%v, exact %v/%v",
					seed, cm, got.Period, got.Mapping, ref.Period, ref.Mapping)
			}
		}
	}
}

func TestExhaustiveEngineFloatScreenBitIdentical(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		pipe, plat := testProblem(seed)
		for _, cm := range model.Models() {
			ref, refErr := ExhaustiveOneToOneEngine(context.Background(),
				engine.New(engine.Options{Workers: 2}), pipe, plat, cm)
			got, gotErr := ExhaustiveOneToOneEngine(context.Background(),
				engine.New(engine.Options{Workers: 2, Backend: cycles.BackendFloatScreen}), pipe, plat, cm)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d %v: err %v vs screened %v", seed, cm, refErr, gotErr)
			}
			if refErr != nil {
				continue
			}
			if !got.Period.Equal(ref.Period) || got.Mapping.String() != ref.Mapping.String() {
				t.Fatalf("seed %d %v: screened exhaustive %v/%v, exact %v/%v",
					seed, cm, got.Period, got.Mapping, ref.Period, ref.Mapping)
			}
		}
	}
}

// TestSequentialWalksIgnoreFloatScreen: the rng-coupled walks (random
// search, annealing) must visit the identical trajectory on a float-screen
// engine — screening never applies to them, because skipping an exact
// evaluation would shift the rng stream and change the result.
func TestSequentialWalksIgnoreFloatScreen(t *testing.T) {
	pipe, plat := testProblem(7)
	exact := engine.New(engine.Options{Workers: 2})
	screened := engine.New(engine.Options{Workers: 2, Backend: cycles.BackendFloatScreen})

	refR, err := RandomSearchEngine(context.Background(), exact, pipe, plat, model.Overlap, newRng(3), 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := RandomSearchEngine(context.Background(), screened, pipe, plat, model.Overlap, newRng(3), 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !gotR.Period.Equal(refR.Period) || gotR.Mapping.String() != refR.Mapping.String() {
		t.Fatalf("random search diverged on a float-screen engine: %v/%v vs %v/%v",
			gotR.Period, gotR.Mapping, refR.Period, refR.Mapping)
	}

	refA, err := AnnealEngine(context.Background(), exact, pipe, plat, model.Overlap, newRng(4), AnnealOptions{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := AnnealEngine(context.Background(), screened, pipe, plat, model.Overlap, newRng(4), AnnealOptions{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !gotA.Period.Equal(refA.Period) || gotA.Mapping.String() != refA.Mapping.String() {
		t.Fatalf("annealing diverged on a float-screen engine: %v/%v vs %v/%v",
			gotA.Period, gotA.Mapping, refA.Period, refA.Mapping)
	}
}
