package sched

import (
	"context"

	"repro/internal/bnb"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// ExactResult is a heuristic-compatible Result carrying the certificate of
// the exact branch-and-bound search (package bnb).
type ExactResult struct {
	Result
	// Proven reports that the search exhausted the replicated-mapping space:
	// Period is THE optimum, not just the best seen. False only under a
	// context deadline, in which case Result is the best incumbent found
	// before it expired (at worst the greedy warm start).
	Proven bool
	// Stats counts the tree the search actually walked (nodes, leaves,
	// pruned branches, infeasible mappings, frontier size).
	Stats bnb.Stats
}

// BranchAndBound runs the exact branch-and-bound mapping search with a
// greedy warm start on a private engine.
func BranchAndBound(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (ExactResult, error) {
	return BranchAndBoundEngine(context.Background(), defaultEngine(), pipe, plat, cm)
}

// BranchAndBoundEngine is the exact search on a shared engine: Greedy
// supplies the incumbent the bound prunes against (its candidate
// evaluations stay memoized for the tree walk), then bnb.Search enumerates
// the replicated-mapping space with deterministic work partitioning —
// results are bit-identical at any worker count. A greedy failure (e.g. a
// sparse platform where the fastest-first seed needs a missing link) is not
// fatal: the search simply starts without a warm start.
func BranchAndBoundEngine(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (ExactResult, error) {
	return BranchAndBoundEngineProgress(ctx, eng, pipe, plat, cm, nil)
}

// BranchAndBoundEngineProgress is BranchAndBoundEngine with a live progress
// feed: onProgress (when non-nil) receives incremental bnb.Stats deltas
// from the search's walker goroutines — see bnb.Options.OnProgress for the
// delivery contract. The serving layer points the deltas at a job's atomic
// counters so pollers watch the tree walk advance; the returned result is
// unchanged by observation.
func BranchAndBoundEngineProgress(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, onProgress func(bnb.Stats)) (ExactResult, error) {
	return BranchAndBoundEngineOpts(ctx, eng, pipe, plat, cm, bnb.Options{OnProgress: onProgress})
}

// BranchAndBoundEngineOpts exposes the full bnb.Options surface — the
// executor seam, checkpoint replay, per-root completion hooks and racing
// mode — while keeping the greedy warm start this package contributes:
// unless the caller supplied an incumbent of its own, Greedy seeds the
// bound exactly as in the plain entry points, so a resumed or distributed
// search prunes from the same reference as a solo one (which is what makes
// its frontier, and therefore its checkpoint indices, line up).
func BranchAndBoundEngineOpts(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, opts bnb.Options) (ExactResult, error) {
	if opts.Incumbent == nil {
		if warm, err := GreedyEngine(ctx, eng, pipe, plat, cm); err == nil {
			opts.Incumbent, opts.IncumbentPeriod = warm.Mapping, warm.Period
		}
	}
	res, err := bnb.Search(ctx, eng, pipe, plat, cm, opts)
	if err != nil {
		return ExactResult{}, err
	}
	return ExactResult{
		Result: Result{Mapping: res.Mapping, Period: res.Period},
		Proven: res.Proven,
		Stats:  res.Stats,
	}, nil
}
