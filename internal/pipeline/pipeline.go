// Package pipeline models the application side of the paper's framework:
// a streaming workflow whose dependence graph is a linear chain of stages
// S0..S(n-1). Stage Sk performs w_k FLOP per data set and forwards a file
// F_k of δ_k bytes to S(k+1) (Figure 1 of the paper).
package pipeline

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
)

// Stage is one stage of the linear workflow chain.
type Stage struct {
	// Name is a human-readable label (defaults to "Sk").
	Name string `json:"name,omitempty"`
	// Work is the computation size w_k in FLOP.
	Work int64 `json:"work"`
}

// Pipeline is a linear chain of stages with the files exchanged between
// consecutive stages. len(FileSizes) == len(Stages) - 1: FileSizes[k] is the
// size δ_k of file F_k produced by stage k and consumed by stage k+1.
type Pipeline struct {
	Stages    []Stage `json:"stages"`
	FileSizes []int64 `json:"fileSizes"`
}

// New builds a pipeline from stage work sizes and file sizes.
func New(work []int64, fileSizes []int64) (*Pipeline, error) {
	p := &Pipeline{
		Stages:    make([]Stage, len(work)),
		FileSizes: append([]int64(nil), fileSizes...),
	}
	for i, w := range work {
		p.Stages[i] = Stage{Name: fmt.Sprintf("S%d", i), Work: w}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New but panics on invalid input; for tests and fixed examples.
func MustNew(work []int64, fileSizes []int64) *Pipeline {
	p, err := New(work, fileSizes)
	if err != nil {
		panic(err)
	}
	return p
}

// NumStages returns the number of stages n.
func (p *Pipeline) NumStages() int { return len(p.Stages) }

// Validate checks structural invariants: at least one stage, non-negative
// sizes, and exactly n-1 files.
func (p *Pipeline) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("pipeline: no stages")
	}
	if len(p.FileSizes) != len(p.Stages)-1 {
		return fmt.Errorf("pipeline: %d stages need %d file sizes, got %d",
			len(p.Stages), len(p.Stages)-1, len(p.FileSizes))
	}
	for i, s := range p.Stages {
		if s.Work < 0 {
			return fmt.Errorf("pipeline: stage %d has negative work %d", i, s.Work)
		}
	}
	for i, d := range p.FileSizes {
		if d <= 0 {
			return fmt.Errorf("pipeline: file F%d has non-positive size %d", i, d)
		}
	}
	return nil
}

// StageName returns the display name of stage k.
func (p *Pipeline) StageName(k int) string {
	if p.Stages[k].Name != "" {
		return p.Stages[k].Name
	}
	return fmt.Sprintf("S%d", k)
}

// String renders the chain as "S0 -[δ0]-> S1 -[δ1]-> S2".
func (p *Pipeline) String() string {
	var b strings.Builder
	for i, s := range p.Stages {
		if i > 0 {
			fmt.Fprintf(&b, " -[%dB]-> ", p.FileSizes[i-1])
		}
		fmt.Fprintf(&b, "%s(%dF)", p.StageName(i), s.Work)
	}
	return b.String()
}

// MarshalJSON/UnmarshalJSON use the natural struct encoding but validate on
// decode.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	type alias Pipeline
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*p = Pipeline(a)
	return p.Validate()
}

// Random generates a pipeline with n stages whose work sizes and file sizes
// are drawn uniformly from [lo, hi] (inclusive).
func Random(rng *rand.Rand, n int, lo, hi int64) *Pipeline {
	if n < 1 {
		panic("pipeline: Random needs n >= 1")
	}
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("pipeline: bad range [%d,%d]", lo, hi))
	}
	work := make([]int64, n)
	files := make([]int64, n-1)
	span := hi - lo + 1
	for i := range work {
		work[i] = lo + rng.Int63n(span)
	}
	for i := range files {
		files[i] = lo + rng.Int63n(span)
	}
	return MustNew(work, files)
}
