package pipeline

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestNewValid(t *testing.T) {
	p, err := New([]int64{10, 20, 30, 40}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 4 {
		t.Errorf("NumStages = %d", p.NumStages())
	}
	if p.StageName(2) != "S2" {
		t.Errorf("StageName(2) = %q", p.StageName(2))
	}
}

func TestNewInvalid(t *testing.T) {
	cases := []struct {
		name  string
		work  []int64
		files []int64
	}{
		{"no stages", nil, nil},
		{"file count mismatch", []int64{1, 2}, []int64{}},
		{"too many files", []int64{1}, []int64{5}},
		{"negative work", []int64{-1, 2}, []int64{3}},
		{"zero file size", []int64{1, 2}, []int64{0}},
	}
	for _, c := range cases {
		if _, err := New(c.work, c.files); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestZeroWorkAllowed(t *testing.T) {
	// Source/sink stages may be pure forwarding (w = 0).
	if _, err := New([]int64{0, 5, 0}, []int64{1, 1}); err != nil {
		t.Fatalf("zero work rejected: %v", err)
	}
}

func TestSingleStage(t *testing.T) {
	p, err := New([]int64{42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "S0(42F)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestString(t *testing.T) {
	p := MustNew([]int64{1, 2}, []int64{9})
	if got, want := p.String(), "S0(1F) -[9B]-> S1(2F)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := MustNew([]int64{10, 20}, []int64{5})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Pipeline
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.NumStages() != 2 || q.FileSizes[0] != 5 || q.Stages[1].Work != 20 {
		t.Errorf("round trip mismatch: %+v", q)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var p Pipeline
	if err := json.Unmarshal([]byte(`{"stages":[{"work":1}],"fileSizes":[3]}`), &p); err == nil {
		t.Error("invalid pipeline decoded without error")
	}
}

func TestRandomInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := Random(rng, 5, 5, 15)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, s := range p.Stages {
			if s.Work < 5 || s.Work > 15 {
				t.Fatalf("work %d out of range", s.Work)
			}
		}
		for _, d := range p.FileSizes {
			if d < 5 || d > 15 {
				t.Fatalf("file size %d out of range", d)
			}
		}
	}
}
