package sim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// LatencyStats summarizes end-to-end data-set latency: the time between a
// data set's arrival and the completion of its last stage. The replication
// literature the paper builds on (Subhlok & Vondran; Vydyanathan et al.)
// studies exactly this latency/throughput trade-off: replication improves
// the period but round-robin waiting stretches individual data sets.
//
// Arrivals are throttled to the steady-state period ("a new data set enters
// the system every P time-units", Section 1): data set j arrives at j·P.
// Without throttling the eager schedule lets upstream stages race ahead of
// the bottleneck and queueing delay grows without bound — the overlap model
// has no back-pressure.
type LatencyStats struct {
	Model model.CommModel
	// Period is the arrival period used (the instance's steady-state period).
	Period rat.Rat
	// First and Last delimit the measured steady-state window of data sets.
	First, Last int
	// Min, Max, Mean latency over the window.
	Min, Max, Mean rat.Rat
	// PerDataSet holds the latency of each measured data set (index
	// relative to First).
	PerDataSet []rat.Rat
}

// Latency simulates `periods` macro-periods operationally with arrivals
// throttled to the exact steady-state period and measures per-data-set
// latency over the second half of the horizon.
func Latency(inst *model.Instance, cm model.CommModel, periods int) (*LatencyStats, error) {
	if periods < 2 {
		return nil, fmt.Errorf("sim: need at least 2 macro-periods for latency")
	}
	net, err := tpn.Build(inst, cm)
	if err != nil {
		return nil, err
	}
	crit, err := net.MaxCycleRatio()
	if err != nil {
		return nil, err
	}
	m := int(inst.PathCount())
	period := crit.Ratio.DivInt(int64(m))

	nData := periods * m
	op, err := RunOperationalArrivals(inst, cm, nData, period)
	if err != nil {
		return nil, err
	}
	n := inst.NumStages()
	first := nData / 2
	st := &LatencyStats{Model: cm, Period: period, First: first, Last: nData - 1}
	sum := rat.Zero()
	for j := first; j < nData; j++ {
		arrival := period.MulInt(int64(j))
		lat := op.CompEnd[n-1][j].Sub(arrival)
		if lat.Sign() < 0 {
			return nil, fmt.Errorf("sim: negative latency for data set %d", j)
		}
		st.PerDataSet = append(st.PerDataSet, lat)
		if len(st.PerDataSet) == 1 {
			st.Min, st.Max = lat, lat
		} else {
			st.Min = rat.Min(st.Min, lat)
			st.Max = rat.Max(st.Max, lat)
		}
		sum = sum.Add(lat)
	}
	st.Mean = sum.DivInt(int64(len(st.PerDataSet)))
	return st, nil
}

// RunOperationalArrivals is RunOperational with throttled arrivals: the
// stage-0 computation of data set j additionally waits for its arrival at
// j·arrival. Passing a zero arrival period reproduces RunOperational.
func RunOperationalArrivals(inst *model.Instance, cm model.CommModel, nData int, arrival rat.Rat) (*OpSchedule, error) {
	if nData < 1 {
		return nil, fmt.Errorf("sim: need at least one data set")
	}
	if arrival.Sign() < 0 {
		return nil, fmt.Errorf("sim: negative arrival period")
	}
	s, err := newOpSchedule(inst, cm, nData)
	if err != nil {
		return nil, err
	}
	s.arrival = arrival
	s.run(inst)
	return s, nil
}

// SumOfOperations returns the raw processing time of one data set on path j
// (computations plus transfers along its round-robin path) — a lower bound
// for its latency in any schedule.
func SumOfOperations(inst *model.Instance, j int64) rat.Rat {
	total := rat.Zero()
	n := inst.NumStages()
	for i := 0; i < n; i++ {
		a := int(j % int64(inst.Replication(i)))
		total = total.Add(inst.CompTime(i, a))
		if i < n-1 {
			b := int(j % int64(inst.Replication(i+1)))
			total = total.Add(inst.CommTime(i, a, b))
		}
	}
	return total
}
