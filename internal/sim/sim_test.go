package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
)

func randomInstance(rng *rand.Rand, n, maxRep int, lo, hi int64) *model.Instance {
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + rng.Intn(maxRep)
	}
	draw := func() rat.Rat { return rat.FromInt(lo + rng.Int63n(hi-lo+1)) }
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}

func TestRunProducesConsistentTrace(t *testing.T) {
	inst := examplesdata.ExampleA()
	tr, err := Run(inst, model.Overlap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}
	// Busy intervals on the same resource must not overlap (one-port model).
	byRes := map[string][]Event{}
	for _, e := range tr.Events {
		if e.End.Less(e.Start) {
			t.Fatalf("event %v ends before it starts", e)
		}
		byRes[e.Resource] = append(byRes[e.Resource], e)
	}
	for res, evs := range byRes {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start.Less(evs[i-1].End) {
				t.Fatalf("resource %s: overlapping events %v and %v", res, evs[i-1], evs[i])
			}
		}
	}
}

func TestStrictProcessorSerialized(t *testing.T) {
	// Under STRICT, events of P_u, P_u-in and P_u-out must be mutually
	// disjoint (single serial resource).
	inst := examplesdata.ExampleA()
	tr, err := Run(inst, model.Strict, 3)
	if err != nil {
		t.Fatal(err)
	}
	byProc := map[string][]Event{}
	for _, e := range tr.Events {
		proc := e.Resource
		if i := strings.IndexByte(proc, '-'); i >= 0 {
			proc = proc[:i]
		}
		byProc[proc] = append(byProc[proc], e)
	}
	for proc, evs := range byProc {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start.Less(evs[i-1].End) {
				t.Fatalf("STRICT %s: overlapping ops %+v and %+v", proc, evs[i-1], evs[i])
			}
		}
	}
}

func TestResourcesOrdered(t *testing.T) {
	inst := examplesdata.ExampleB()
	tr, err := Run(inst, model.Overlap, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := tr.Resources()
	// P0..P2 have no input port (first stage), P3..P6 no output port.
	want := []string{"P0", "P0-out", "P1", "P1-out", "P2", "P2-out",
		"P3-in", "P3", "P4-in", "P4", "P5-in", "P5", "P6-in", "P6"}
	if len(res) != len(want) {
		t.Fatalf("resources = %v", res)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("resources[%d] = %s, want %s (all: %v)", i, res[i], want[i], res)
		}
	}
}

func TestUtilizationBelowOneWithoutCriticalResource(t *testing.T) {
	// Example B has no critical resource: in a long window every resource's
	// utilization stays strictly below 1.
	inst := examplesdata.ExampleB()
	tr, err := Run(inst, model.Overlap, 30)
	if err != nil {
		t.Fatal(err)
	}
	for res, u := range tr.Utilization() {
		if !u.Less(rat.One()) {
			t.Errorf("resource %s has utilization %v >= 1", res, u)
		}
	}
}

func TestMeasuredPeriodMatchesAnalyticExamples(t *testing.T) {
	cases := []struct {
		name string
		inst *model.Instance
		cm   model.CommModel
		want rat.Rat
	}{
		{"A overlap", examplesdata.ExampleA(), model.Overlap, rat.FromInt(189)},
		{"A strict", examplesdata.ExampleA(), model.Strict, rat.New(1384, 6)},
		{"B overlap", examplesdata.ExampleB(), model.Overlap, rat.New(3500, 12)},
	}
	for _, c := range cases {
		got, err := MeasuredPeriod(c.inst, c.cm, 60, 12)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: measured %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOperationalMatchesTPNUnroll(t *testing.T) {
	// The from-first-principles simulator and the TPN unrolling must produce
	// identical completion times for every data set, both models.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 25)
		m := int(inst.PathCount())
		periods := 8
		nData := periods * m
		for _, cm := range model.Models() {
			tr, err := Run(inst, cm, periods)
			if err != nil {
				t.Fatal(err)
			}
			op, err := RunOperational(inst, cm, nData)
			if err != nil {
				t.Fatal(err)
			}
			// Index TPN completion times of the last stage by data set.
			lastStage := inst.NumStages() - 1
			tpnEnd := make(map[int64]rat.Rat)
			for _, e := range tr.Events {
				if e.Kind != petri.KindCompute {
					continue
				}
				var st int
				var ds int64
				if _, err := fmt.Sscanf(e.Label, "S%d(%d)", &st, &ds); err == nil && st == lastStage {
					tpnEnd[ds] = e.End
				}
			}
			for j := 0; j < nData; j++ {
				want, ok := tpnEnd[int64(j)]
				if !ok {
					t.Fatalf("missing TPN completion for data set %d", j)
				}
				if !op.CompEnd[lastStage][j].Equal(want) {
					t.Fatalf("trial %d %v: data set %d completes at %v (operational) vs %v (TPN), reps=%v",
						trial, cm, j, op.CompEnd[lastStage][j], want, inst.ReplicationCounts())
				}
			}
		}
	}
}

func TestOperationalMeasuredPeriodMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 20)
		m := int(inst.PathCount())
		op, err := RunOperational(inst, model.Overlap, 40*m)
		if err != nil {
			t.Fatal(err)
		}
		measured, err := op.MeasuredPeriod(inst, 6)
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := core.PeriodOverlapPoly(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !measured.Equal(analytic.Period) {
			t.Fatalf("trial %d: operational period %v != analytic %v", trial, measured, analytic.Period)
		}
	}
}

func TestRunOperationalErrors(t *testing.T) {
	inst := examplesdata.ExampleA()
	if _, err := RunOperational(inst, model.Overlap, 0); err == nil {
		t.Error("nData=0 accepted")
	}
	op, err := RunOperational(inst, model.Overlap, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.MeasuredPeriod(inst, 5); err == nil {
		t.Error("short horizon accepted")
	}
}
