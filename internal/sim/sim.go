// Package sim produces executable schedules of replicated-workflow mappings.
//
// Two independent simulators are provided:
//
//   - Run: exact unrolling of the timed Petri net (package tpn), converting
//     transition firings into resource-labeled busy intervals. This is the
//     reference semantics and feeds the Gantt renderer (Figures 7 and 12).
//
//   - RunOperational: a from-first-principles discrete-event simulation of
//     the round-robin execution rules of Section 2, written without any
//     reference to Petri nets. Agreement between the two (and with the
//     analytic period of package core) is enforced by tests and validates
//     the TPN constructions of Section 3.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// Event is one busy interval on one hardware resource.
type Event struct {
	// Resource is "P3" (compute unit), "P3-in" or "P3-out" (ports).
	Resource string
	// Label is e.g. "S2(14)" (stage 2, data set 14) or "F1(12)".
	Label string
	// DataSet is the data-set index the operation belongs to.
	DataSet int64
	// Kind distinguishes computations from transfers.
	Kind       petri.TransKind
	Start, End rat.Rat
}

// Trace is a schedule prefix.
type Trace struct {
	Model  model.CommModel
	Events []Event
	// PathCount is m; data set j runs on row j mod m of the TPN.
	PathCount int64
}

// Run builds the TPN for the instance and unrolls `periods` macro-periods
// (i.e. periods*m data sets), returning the resulting schedule.
func Run(inst *model.Instance, cm model.CommModel, periods int) (*Trace, error) {
	if periods < 1 {
		return nil, fmt.Errorf("sim: periods must be >= 1")
	}
	net, err := tpn.Build(inst, cm)
	if err != nil {
		return nil, err
	}
	start, err := net.Unroll(periods)
	if err != nil {
		return nil, err
	}
	m := inst.PathCount()
	tr := &Trace{Model: cm, PathCount: m}
	for ti, t := range net.Transitions {
		for k := 0; k < periods; k++ {
			s := start[ti][k]
			e := s.Add(t.Time)
			ds := int64(k)*m + int64(t.Row)
			switch t.Kind {
			case petri.KindCompute:
				tr.Events = append(tr.Events, Event{
					Resource: fmt.Sprintf("P%d", t.Proc),
					Label:    fmt.Sprintf("S%d(%d)", t.Stage, ds),
					DataSet:  ds,
					Kind:     t.Kind,
					Start:    s,
					End:      e,
				})
			case petri.KindTransfer:
				label := fmt.Sprintf("F%d(%d)", t.Stage, ds)
				tr.Events = append(tr.Events,
					Event{
						Resource: fmt.Sprintf("P%d-out", t.Proc),
						Label:    label,
						DataSet:  ds,
						Kind:     t.Kind,
						Start:    s,
						End:      e,
					},
					Event{
						Resource: fmt.Sprintf("P%d-in", t.Dst),
						Label:    label,
						DataSet:  ds,
						Kind:     t.Kind,
						Start:    s,
						End:      e,
					})
			}
		}
	}
	tr.sort()
	return tr, nil
}

func (tr *Trace) sort() {
	sort.Slice(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if c := a.Start.Cmp(b.Start); c != 0 {
			return c < 0
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.DataSet < b.DataSet
	})
}

// Resources lists the distinct resource names of the trace, ordered
// processor-first (P0, P0-out, P1-in, P1, P1-out, …) like the paper's Gantt
// charts.
func (tr *Trace) Resources() []string {
	seen := map[string]bool{}
	for _, e := range tr.Events {
		seen[e.Resource] = true
	}
	var names []string
	for n := range seen {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, ki := splitResource(names[i])
		pj, kj := splitResource(names[j])
		if pi != pj {
			return pi < pj
		}
		return ki < kj
	})
	return names
}

// splitResource parses "P3-out" into (3, rank) with in < comp < out.
func splitResource(name string) (proc int, rank int) {
	var suffix string
	_, err := fmt.Sscanf(name, "P%d-%s", &proc, &suffix)
	if err != nil {
		fmt.Sscanf(name, "P%d", &proc)
		return proc, 1
	}
	if suffix == "in" {
		return proc, 0
	}
	return proc, 2
}

// Horizon returns the latest event end time.
func (tr *Trace) Horizon() rat.Rat {
	h := rat.Zero()
	for _, e := range tr.Events {
		h = rat.Max(h, e.End)
	}
	return h
}

// Utilization returns, per resource, the fraction of [0, Horizon] it is
// busy. In a schedule without critical resource every value is < 1 even
// asymptotically — the paper's headline phenomenon.
func (tr *Trace) Utilization() map[string]rat.Rat {
	h := tr.Horizon()
	busy := map[string]rat.Rat{}
	for _, e := range tr.Events {
		busy[e.Resource] = busy[e.Resource].Add(e.End.Sub(e.Start))
	}
	if h.IsZero() {
		return busy
	}
	for k, v := range busy {
		busy[k] = v.Div(h)
	}
	return busy
}

// MeasuredPeriod estimates the per-data-set period from the instance's TPN
// by unrolling `occurrences` firings and taking the trailing-window firing
// rate (see petri.MeasuredPeriod), divided by m.
func MeasuredPeriod(inst *model.Instance, cm model.CommModel, occurrences, window int) (rat.Rat, error) {
	net, err := tpn.Build(inst, cm)
	if err != nil {
		return rat.Rat{}, err
	}
	p, err := net.MeasuredPeriod(occurrences, window)
	if err != nil {
		return rat.Rat{}, err
	}
	return p.DivInt(inst.PathCount()), nil
}
