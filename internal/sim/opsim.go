package sim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rat"
)

// OpSchedule holds the operation end times of an operational (first
// principles) simulation of the first N data sets.
type OpSchedule struct {
	Model model.CommModel
	N     int
	// CompEnd[i][j] is the completion time of stage i for data set j.
	CompEnd [][]rat.Rat
	// XferEnd[i][j] is the completion time of the transfer of F_i for data
	// set j (len n-1 rows).
	XferEnd [][]rat.Rat

	cm      model.CommModel
	arrival rat.Rat // arrival throttle: data set j enters at j*arrival (zero = eager)
}

// RunOperational simulates the execution of the first n data sets directly
// from the rules of Section 2, with no Petri net involved:
//
//   - replicas of a stage serve data sets round-robin (data set j on replica
//     j mod m_i);
//   - OVERLAP ONE-PORT: a processor's input port, compute unit and output
//     port are three independent serial resources, each serving its
//     operations in round-robin (data-set) order;
//   - STRICT ONE-PORT: a processor is a single serial resource cycling
//     through receive(j) → compute(j) → send(j) → receive(j+m_i) → …;
//   - a transfer occupies sender and receiver sides simultaneously and
//     starts when the file is ready and both sides reach the corresponding
//     point of their service order (earliest/eager schedule).
func RunOperational(inst *model.Instance, cm model.CommModel, nData int) (*OpSchedule, error) {
	if nData < 1 {
		return nil, fmt.Errorf("sim: need at least one data set")
	}
	s, err := newOpSchedule(inst, cm, nData)
	if err != nil {
		return nil, err
	}
	s.run(inst)
	return s, nil
}

func newOpSchedule(inst *model.Instance, cm model.CommModel, nData int) (*OpSchedule, error) {
	n := inst.NumStages()
	s := &OpSchedule{Model: cm, N: nData, cm: cm}
	s.CompEnd = make([][]rat.Rat, n)
	for i := range s.CompEnd {
		s.CompEnd[i] = make([]rat.Rat, nData)
	}
	s.XferEnd = make([][]rat.Rat, n-1)
	for i := range s.XferEnd {
		s.XferEnd[i] = make([]rat.Rat, nData)
	}
	return s, nil
}

// run fills the schedule tables in dependency order (data sets ascending,
// stages ascending within a data set).
func (s *OpSchedule) run(inst *model.Instance) {
	n := inst.NumStages()
	// at returns v[j] or zero when j < 0 (no constraint before the first
	// round of the round-robin).
	at := func(v []rat.Rat, j int) rat.Rat {
		if j < 0 {
			return rat.Zero()
		}
		return v[j]
	}
	for j := 0; j < s.N; j++ {
		for i := 0; i < n; i++ {
			mi := inst.Replication(i)
			a := j % mi
			// --- computation of S_i(j) ---
			var start rat.Rat
			if s.cm == model.Overlap {
				// File availability and the compute unit's round-robin.
				if i > 0 {
					start = at(s.XferEnd[i-1], j)
				}
				start = rat.Max(start, at(s.CompEnd[i], j-mi))
			} else {
				// STRICT: the computation follows the processor's receive of
				// F_(i-1)(j) immediately (the receive itself waited for the
				// processor to be free); stage 0 instead waits for the
				// processor's previous operation, its send of F_0(j-m_0).
				if i > 0 {
					start = at(s.XferEnd[i-1], j)
				} else {
					start = s.prevOpEnd(inst, 0, j-mi)
				}
			}
			if i == 0 && s.arrival.Sign() > 0 {
				start = rat.Max(start, s.arrival.MulInt(int64(j)))
			}
			s.CompEnd[i][j] = start.Add(inst.CompTime(i, a))

			// --- transfer of F_i(j) ---
			if i == n-1 {
				continue
			}
			b := j % inst.Replication(i+1)
			xstart := s.CompEnd[i][j] // file ready; sender-side order also satisfied
			if s.cm == model.Overlap {
				// Sender's output port and receiver's input port round-robins.
				xstart = rat.Max(xstart, at(s.XferEnd[i], j-mi))
				xstart = rat.Max(xstart, at(s.XferEnd[i], j-inst.Replication(i+1)))
			} else {
				// STRICT: the receiver must have finished its previous
				// data set's full receive-compute-send sequence.
				xstart = rat.Max(xstart, s.prevOpEnd(inst, i+1, j-inst.Replication(i+1)))
			}
			s.XferEnd[i][j] = xstart.Add(inst.CommTime(i, a, b))
		}
	}
}

// prevOpEnd returns, for the STRICT model, the end of the last operation of
// stage i's processor for data set j (its send of F_i(j), or its computation
// when stage i is the last one). Zero when j < 0.
func (s *OpSchedule) prevOpEnd(inst *model.Instance, i, j int) rat.Rat {
	if j < 0 {
		return rat.Zero()
	}
	if i < inst.NumStages()-1 {
		return s.XferEnd[i][j]
	}
	return s.CompEnd[i][j]
}

// MeasuredPeriod estimates the per-data-set steady-state period: the maximum
// over completion streams (data sets with the same residue mod m) of the
// trailing rate over `windows` macro-periods. The maximum matters because
// streams served by fast replicas complete ahead of slower ones; the system
// period is set by the slowest stream.
func (s *OpSchedule) MeasuredPeriod(inst *model.Instance, windows int) (rat.Rat, error) {
	m := int(inst.PathCount())
	span := windows * m
	if windows < 1 || s.N < span+m {
		return rat.Rat{}, fmt.Errorf("sim: horizon %d too short for %d windows of %d", s.N, windows, m)
	}
	last := s.CompEnd[inst.NumStages()-1]
	best := rat.Zero()
	for r := 0; r < m; r++ {
		j := s.N - 1 - ((s.N - 1 - r) % m) // largest index ≡ r (mod m)
		rate := last[j].Sub(last[j-span]).DivInt(int64(span))
		best = rat.Max(best, rate)
	}
	return best, nil
}
