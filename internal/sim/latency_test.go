package sim

import (
	"math/rand"
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/rat"
)

func TestLatencyBounds(t *testing.T) {
	// With arrivals throttled to the period, a data set still cannot finish
	// faster than the raw operation sum of its path.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 20)
		for _, cm := range model.Models() {
			st, err := Latency(inst, cm, 6)
			if err != nil {
				t.Fatal(err)
			}
			for k, lat := range st.PerDataSet {
				j := int64(st.First + k)
				lower := SumOfOperations(inst, j)
				if lat.Less(lower) {
					t.Fatalf("trial %d %v: data set %d latency %v below path sum %v",
						trial, cm, j, lat, lower)
				}
			}
			if st.Max.Less(st.Mean) || st.Mean.Less(st.Min) {
				t.Fatalf("inconsistent stats %+v", st)
			}
		}
	}
}

func TestLatencyPeriodicInSteadyState(t *testing.T) {
	// With throttled arrivals the latency sequence becomes m-periodic after
	// the transient: lat(j) == lat(j+m) within the measured window.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(2), 3, 1, 15)
		m := int(inst.PathCount())
		for _, cm := range model.Models() {
			st, err := Latency(inst, cm, 12)
			if err != nil {
				t.Fatal(err)
			}
			// Compare the last two macro-periods of the window.
			k := len(st.PerDataSet)
			if k < 2*m {
				t.Fatalf("window too small: %d", k)
			}
			for x := k - m; x < k; x++ {
				if !st.PerDataSet[x].Equal(st.PerDataSet[x-m]) {
					t.Fatalf("trial %d %v: latency not m-periodic: lat[%d]=%v lat[%d]=%v",
						trial, cm, x, st.PerDataSet[x], x-m, st.PerDataSet[x-m])
				}
			}
		}
	}
}

func TestLatencyNoReplicationSteadyState(t *testing.T) {
	// Single-path chain: with arrivals at the period, steady-state latency
	// is constant and at least the raw path time.
	ri := rat.FromInt
	inst, err := model.FromTimes(
		[][]rat.Rat{{ri(3)}, {ri(7)}, {ri(2)}},
		[][][]rat.Rat{{{ri(4)}}, {{ri(5)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Latency(inst, model.Overlap, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Period.Equal(ri(7)) {
		t.Fatalf("period = %v, want 7 (bottleneck S1)", st.Period)
	}
	if !st.Min.Equal(st.Max) {
		t.Fatalf("steady-state latency not constant: [%v, %v]", st.Min, st.Max)
	}
	if st.Min.Less(ri(21)) {
		t.Fatalf("latency %v below raw path time 21", st.Min)
	}
}

func TestLatencyExampleB(t *testing.T) {
	inst := examplesdata.ExampleB()
	st, err := Latency(inst, model.Overlap, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Period.Equal(rat.New(3500, 12)) {
		t.Fatalf("period = %v", st.Period)
	}
	// Raw path times range from 300 to 1200.
	if st.Min.Less(rat.FromInt(300)) {
		t.Fatalf("min latency %v below raw minimum", st.Min)
	}
	if st.Max.Less(st.Min) {
		t.Fatal("max < min")
	}
}

func TestRunOperationalArrivalsThrottles(t *testing.T) {
	// A fast chain with slow arrivals: completions track arrivals, one per
	// arrival period.
	ri := rat.FromInt
	inst, err := model.FromTimes(
		[][]rat.Rat{{ri(1)}, {ri(1)}},
		[][][]rat.Rat{{{ri(1)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	op, err := RunOperationalArrivals(inst, model.Overlap, 10, ri(100))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		want := ri(100).MulInt(int64(j)).Add(ri(3))
		if !op.CompEnd[1][j].Equal(want) {
			t.Fatalf("data set %d completes at %v, want %v", j, op.CompEnd[1][j], want)
		}
	}
	if _, err := RunOperationalArrivals(inst, model.Overlap, 10, ri(-1)); err == nil {
		t.Error("negative arrival period accepted")
	}
	if _, err := RunOperationalArrivals(inst, model.Overlap, 0, ri(1)); err == nil {
		t.Error("zero data sets accepted")
	}
}

func TestLatencyErrors(t *testing.T) {
	inst := examplesdata.ExampleB()
	if _, err := Latency(inst, model.Overlap, 1); err == nil {
		t.Error("periods=1 accepted")
	}
}
