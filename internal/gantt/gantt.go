// Package gantt renders schedule traces as ASCII Gantt charts, the textual
// analogue of the paper's Figures 7 and 12 (steady-state schedules in which
// every resource shows idle time when no critical resource exists).
package gantt

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/rat"
	"repro/internal/sim"
)

// Options controls rendering.
type Options struct {
	// From and To bound the rendered time window; To must exceed From.
	From, To rat.Rat
	// Width is the number of character cells for the time axis (default 100).
	Width int
	// PeriodMarks, when positive, draws a '|' ruler line with marks every
	// PeriodMarks time units starting at From (e.g. the TPN period, to match
	// the paper's "Period 0 / Period 1 / Period 2" framing).
	PeriodMarks rat.Rat
}

// Render writes an ASCII Gantt chart of the trace to w.
//
// Each resource occupies one row; busy intervals are drawn with the last
// digit of the data-set index, so the round-robin interleaving is visible:
//
//	P0      0000111122223333
//	P0-out  00001111  22223333
func Render(w io.Writer, tr *sim.Trace, opts Options) error {
	if opts.Width <= 0 {
		opts.Width = 100
	}
	span := opts.To.Sub(opts.From)
	if span.Sign() <= 0 {
		return fmt.Errorf("gantt: empty time window [%v, %v]", opts.From, opts.To)
	}
	resources := tr.Resources()
	if len(resources) == 0 {
		return fmt.Errorf("gantt: trace has no events")
	}
	nameWidth := 0
	for _, r := range resources {
		if len(r) > nameWidth {
			nameWidth = len(r)
		}
	}
	// cell(t) maps a time to a column in [0, Width]. Floor saturates at the
	// int64 bounds, so times far outside the window (including values on the
	// big-rational representation, which Num/Den would refuse) land on the
	// clamped edges below instead of panicking.
	cell := func(t rat.Rat) int {
		f := t.Sub(opts.From).MulInt(int64(opts.Width)).Div(span).Floor()
		if f > int64(opts.Width) {
			return opts.Width
		}
		if f < 0 {
			return -1 // any negative value clamps to column 0 at the call sites
		}
		return int(f)
	}
	rows := make(map[string][]byte, len(resources))
	for _, r := range resources {
		rows[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for _, e := range tr.Events {
		if e.End.LessEq(opts.From) || opts.To.LessEq(e.Start) {
			continue
		}
		c0, c1 := cell(e.Start), cell(e.End)
		if c0 < 0 {
			c0 = 0
		}
		if c1 > opts.Width {
			c1 = opts.Width
		}
		if c1 == c0 {
			c1 = c0 + 1 // always at least one cell
		}
		ch := byte('0' + e.DataSet%10)
		row := rows[e.Resource]
		for c := c0; c < c1 && c < opts.Width; c++ {
			row[c] = ch
		}
	}
	// Ruler.
	if opts.PeriodMarks.Sign() > 0 {
		ruler := []byte(strings.Repeat("-", opts.Width))
		for t := opts.From; t.LessEq(opts.To); t = t.Add(opts.PeriodMarks) {
			c := cell(t)
			if c >= 0 && c < opts.Width {
				ruler[c] = '|'
			}
		}
		if _, err := fmt.Fprintf(w, "%*s  %s\n", nameWidth, "", ruler); err != nil {
			return err
		}
	}
	for _, r := range resources {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", nameWidth, r, rows[r]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%*s  [%v .. %v]\n", nameWidth, "", opts.From, opts.To)
	return err
}

// RenderSteadyState renders `periods` TPN periods of the steady-state
// regime, skipping the transient: the window starts at `skip` TPN periods
// and spans `periods` more, with period marks.
func RenderSteadyState(w io.Writer, tr *sim.Trace, tpnPeriod rat.Rat, skip, periods, width int) error {
	from := tpnPeriod.MulInt(int64(skip))
	to := tpnPeriod.MulInt(int64(skip + periods))
	return Render(w, tr, Options{From: from, To: to, Width: width, PeriodMarks: tpnPeriod})
}
