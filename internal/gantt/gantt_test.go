package gantt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/sim"
)

func TestRenderExampleAStrict(t *testing.T) {
	// Figure 7: the strict-model schedule of Example A.
	inst := examplesdata.ExampleA()
	tr, err := sim.Run(inst, model.Strict, 12)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	// TPN period = 6 * 1384/6 = 1384.
	if err := RenderSteadyState(&b, tr, rat.FromInt(1384), 4, 2, 120); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, res := range []string{"P0 ", "P2-out", "P6-in"} {
		if !strings.Contains(out, res) {
			t.Errorf("output missing resource row %q", res)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Ruler + 19 resource rows (P0 has no in-port, P6 no out-port) + footer.
	if len(lines) != 1+19+1 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Every resource row must contain at least one busy cell and at least
	// one idle cell (Example A strict has no critical resource).
	for _, line := range lines[1 : len(lines)-1] {
		body := line[strings.Index(line, "  ")+2:]
		if !strings.ContainsAny(body, "0123456789") {
			t.Errorf("row with no busy cells: %q", line)
		}
		if !strings.Contains(body, " ") {
			t.Errorf("row with no idle cells (critical resource?): %q", line)
		}
	}
}

func TestRenderExampleBOverlap(t *testing.T) {
	// Figure 12: the first periods of Example B.
	inst := examplesdata.ExampleB()
	tr, err := sim.Run(inst, model.Overlap, 9)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	// TPN period = 12 * 3500/12 = 3500.
	if err := RenderSteadyState(&b, tr, rat.FromInt(3500), 3, 3, 105); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "P2-out") {
		t.Fatalf("missing P2-out row:\n%s", out)
	}
	// P2's output port is the Mct resource but still idles (no critical
	// resource): its row must contain blanks.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "P2-out") {
			body := strings.TrimPrefix(line, "P2-out")
			if !strings.Contains(body, " ") {
				t.Errorf("P2-out shows no idle time: %q", line)
			}
		}
	}
}

func TestRenderErrors(t *testing.T) {
	inst := examplesdata.ExampleB()
	tr, err := sim.Run(inst, model.Overlap, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Render(&b, tr, Options{From: rat.FromInt(5), To: rat.FromInt(5)}); err == nil {
		t.Error("empty window accepted")
	}
	empty := &sim.Trace{Model: model.Overlap}
	if err := Render(&b, empty, Options{From: rat.Zero(), To: rat.FromInt(10)}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRenderWindowClipping(t *testing.T) {
	inst := examplesdata.ExampleB()
	tr, err := sim.Run(inst, model.Overlap, 4)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	// A window strictly inside the trace: events crossing the border must be
	// clipped, not dropped, and nothing may panic.
	if err := Render(&b, tr, Options{From: rat.FromInt(150), To: rat.FromInt(450), Width: 60}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if len(line) > 0 && len(line) > 6+2+60+2 {
			t.Errorf("line too long (%d): %q", len(line), line)
		}
	}
}

// TestRenderBigTimes draws a chart for an instance whose operation times
// overflow int64 (the exact values ride the big-rational representation):
// the renderer used Rat.Num/Den, which panic on such values.
func TestRenderBigTimes(t *testing.T) {
	huge := rat.New(math.MaxInt64, 3).Mul(rat.New(math.MaxInt64, 5))
	if !huge.IsBig() {
		t.Fatal("test time did not promote to the big representation")
	}
	// The small 1/7 and 1/11 offsets keep the cell ratios (Δt·Width/span)
	// from cancelling: their reduced fractions carry big numerators AND
	// denominators even though their values are small.
	comp := [][]rat.Rat{{huge.Add(rat.New(1, 7))}, {huge.MulInt(2)}}
	comm := [][][]rat.Rat{{{huge.Add(rat.New(1, 11))}}}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(inst, model.Strict, 3)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Render(&b, tr, Options{
		From:        rat.Zero(),
		To:          huge.MulInt(12),
		Width:       80,
		PeriodMarks: huge.MulInt(4),
	}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Fatalf("missing resource rows:\n%s", out)
	}
	if !strings.ContainsAny(out, "0123456789") {
		t.Fatalf("no busy cells rendered:\n%s", out)
	}
	// The steady-state wrapper multiplies the (big) period further; it must
	// clip rather than panic too.
	b.Reset()
	if err := RenderSteadyState(&b, tr, huge.MulInt(4), 1, 2, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.ContainsAny(b.String(), "0123456789") {
		t.Fatalf("steady-state window rendered no busy cells:\n%s", b.String())
	}
}
