package petri

import (
	"fmt"
	"sort"

	"repro/internal/rat"
)

// Firing records one occurrence of a transition under the earliest (as soon
// as possible) firing rule.
type Firing struct {
	Transition int
	Occurrence int
	Start, End rat.Rat
}

// Unroll computes the first `count` occurrence start times of every
// transition under the earliest firing rule:
//
//	start(T, k) = max over input places p = (U -> T, τ tokens) of
//	              end(U, k - τ)   (constraint absent when k - τ < 0)
//
// This is the exact operational semantics of the timed event graph and
// serves as the reference simulator: the measured steady-state period must
// match the max-cycle-ratio period.
//
// The returned slice is indexed [transition][occurrence].
func (n *Net) Unroll(count int) ([][]rat.Rat, error) {
	if count <= 0 {
		return nil, fmt.Errorf("petri: Unroll count must be positive")
	}
	nt := len(n.Transitions)
	inputs := make([][]Place, nt)
	for _, p := range n.Places {
		inputs[p.To] = append(inputs[p.To], p)
	}
	start := make([][]rat.Rat, nt)
	done := make([][]bool, nt)
	for i := range start {
		start[i] = make([]rat.Rat, count)
		done[i] = make([]bool, count)
	}

	// Dependency-driven evaluation with an explicit stack (memoized DFS).
	// A (transition, occurrence) pair depends on (U, k-τ) pairs; liveness of
	// the net (no token-free cycle) guarantees the recursion is well-founded.
	type key struct{ t, k int }
	var eval func(t, k int) rat.Rat
	visiting := make(map[key]bool)
	eval = func(t, k int) rat.Rat {
		if done[t][k] {
			return start[t][k]
		}
		kk := key{t, k}
		if visiting[kk] {
			panic("petri: dependency cycle in unroll (net not live)")
		}
		visiting[kk] = true
		best := rat.Zero()
		for _, p := range inputs[t] {
			dep := k - p.Tokens
			if dep < 0 {
				continue
			}
			end := eval(p.From, dep).Add(n.Transitions[p.From].Time)
			best = rat.Max(best, end)
		}
		delete(visiting, kk)
		start[t][k] = best
		done[t][k] = true
		return best
	}

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		for k := 0; k < count; k++ {
			for t := 0; t < nt; t++ {
				eval(t, k)
			}
		}
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return start, nil
}

// Firings flattens Unroll output into per-occurrence records, ordered by
// start time (stable on ties by transition index then occurrence).
func (n *Net) Firings(count int) ([]Firing, error) {
	start, err := n.Unroll(count)
	if err != nil {
		return nil, err
	}
	var out []Firing
	for t := range start {
		for k, s := range start[t] {
			out = append(out, Firing{
				Transition: t,
				Occurrence: k,
				Start:      s,
				End:        s.Add(n.Transitions[t].Time),
			})
		}
	}
	sortFirings(out)
	return out, nil
}

func sortFirings(fs []Firing) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if c := a.Start.Cmp(b.Start); c != 0 {
			return c < 0
		}
		if a.Transition != b.Transition {
			return a.Transition < b.Transition
		}
		return a.Occurrence < b.Occurrence
	})
}

// MeasuredPeriod unrolls the net to `occurrences` firings per transition and
// returns the empirical TPN period: the maximum over all transitions of
//
//	(start(T, K) - start(T, K-window)) / window,  K = occurrences-1.
//
// The maximum matters: a transition's asymptotic firing interval equals the
// max cycle ratio over the cycles that can reach it, so transitions outside
// the influence cone of the critical circuit legitimately fire faster (e.g.
// the output stream of a fast replica is not slowed by a slow sibling
// replica — the data sets simply complete out of order). The system period
// is governed by the slowest stream, i.e. the max over transitions, which
// converges to the max cycle ratio once the window passes the transient and
// covers the cyclicity of the periodic regime.
func (n *Net) MeasuredPeriod(occurrences, window int) (rat.Rat, error) {
	if window < 1 || occurrences < window+1 {
		return rat.Rat{}, fmt.Errorf("petri: need occurrences > window >= 1")
	}
	start, err := n.Unroll(occurrences)
	if err != nil {
		return rat.Rat{}, err
	}
	k := occurrences - 1
	best := rat.Zero()
	for tr := range n.Transitions {
		rate := start[tr][k].Sub(start[tr][k-window]).DivInt(int64(window))
		best = rat.Max(best, rate)
	}
	return best, nil
}
