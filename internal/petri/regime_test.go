package petri

import (
	"testing"

	"repro/internal/rat"
)

func TestDetectRegimeTwoLoop(t *testing.T) {
	n := twoLoop()
	reg, err := n.DetectRegime(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Period.Equal(rat.FromInt(7)) {
		t.Errorf("period = %v, want 7", reg.Period)
	}
	if reg.Cyclicity != 1 {
		t.Errorf("cyclicity = %d, want 1", reg.Cyclicity)
	}
	if reg.Transient != 0 {
		t.Errorf("transient = %d, want 0 (this net is periodic from the start)", reg.Transient)
	}
	for i, r := range reg.Rates {
		if !r.Equal(rat.FromInt(7)) {
			t.Errorf("rate[%d] = %v", i, r)
		}
	}
}

func TestDetectRegimeDecoupledRates(t *testing.T) {
	// Two independent loops with different rates plus a joint consumer:
	// the joint consumer is throttled by the slower loop.
	n := &Net{}
	a := n.AddTransition(Transition{Name: "a", Time: rat.FromInt(3), Dst: -1})
	b := n.AddTransition(Transition{Name: "b", Time: rat.FromInt(5), Dst: -1})
	c := n.AddTransition(Transition{Name: "c", Time: rat.FromInt(1), Dst: -1})
	n.AddPlace(a, a, 1, "loopA")
	n.AddPlace(b, b, 1, "loopB")
	n.AddPlace(a, c, 0, "a->c")
	n.AddPlace(b, c, 0, "b->c")
	n.AddPlace(c, c, 1, "loopC")
	reg, err := n.DetectRegime(30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Rates[a].Equal(rat.FromInt(3)) || !reg.Rates[b].Equal(rat.FromInt(5)) {
		t.Errorf("loop rates = %v, %v", reg.Rates[a], reg.Rates[b])
	}
	if !reg.Rates[c].Equal(rat.FromInt(5)) {
		t.Errorf("consumer rate = %v, want 5", reg.Rates[c])
	}
	if !reg.Period.Equal(rat.FromInt(5)) {
		t.Errorf("period = %v, want 5", reg.Period)
	}
}

func TestDetectRegimeErrors(t *testing.T) {
	n := twoLoop()
	if _, err := n.DetectRegime(2, 0); err == nil {
		t.Error("tiny horizon accepted")
	}
}
