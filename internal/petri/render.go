package petri

// Render metadata, split from the solve structure: everything here exists
// only for human-facing output (DOT graphs, figure labels, size summaries)
// and is computed lazily from the grid metadata, so the construction and
// critical-cycle hot path never pays for label strings.

import (
	"fmt"
	"io"
)

// DisplayName renders the transition's descriptive name. An explicit Name
// wins; otherwise the name is derived from the grid metadata exactly as the
// builders historically spelled it: "S<stage>/P<proc>#<row>" for
// computations and "F<file>:P<src>->P<dst>#<row>" for transfers.
func (t *Transition) DisplayName() string {
	if t.Name != "" {
		return t.Name
	}
	if t.Kind == KindTransfer {
		return fmt.Sprintf("F%d:P%d->P%d#%d", t.Stage, t.Proc, t.Dst, t.Row)
	}
	return fmt.Sprintf("S%d/P%d#%d", t.Stage, t.Proc, t.Row)
}

// TransitionName returns the display name of transition i.
func (n *Net) TransitionName(i int) string {
	return n.Transitions[i].DisplayName()
}

// PlaceLabel renders the display label of place i, appending the processor
// identity for resource places ("rr-comp P3") exactly as the builders
// historically spelled it.
func (n *Net) PlaceLabel(i int) string {
	p := &n.Places[i]
	if p.Proc >= 0 {
		return fmt.Sprintf("%s P%d", p.Label, p.Proc)
	}
	return p.Label
}

// WriteDOT renders the net in Graphviz DOT format, grouping transitions by
// row, for visual comparison with Figures 4, 5, 8, 9, 10 of the paper.
func (n *Net) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", title); err != nil {
		return err
	}
	for i := range n.Transitions {
		label := fmt.Sprintf("%s\\n%v", n.TransitionName(i), n.Transitions[i].Time)
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%s\"];\n", i, label); err != nil {
			return err
		}
	}
	for _, p := range n.Places {
		attrs := ""
		if p.Tokens > 0 {
			attrs = fmt.Sprintf(" [label=\"●x%d\", style=bold]", p.Tokens)
			if p.Tokens == 1 {
				attrs = " [label=\"●\", style=bold]"
			}
		}
		if _, err := fmt.Fprintf(w, "  t%d -> t%d%s;\n", p.From, p.To, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Stats summarizes the net size.
type Stats struct {
	Transitions int
	Places      int
	Tokens      int
	Rows, Cols  int
}

// Stats returns size statistics.
func (n *Net) Stats() Stats {
	return Stats{
		Transitions: len(n.Transitions),
		Places:      len(n.Places),
		Tokens:      n.TokenCount(),
		Rows:        n.Rows,
		Cols:        n.Cols,
	}
}
