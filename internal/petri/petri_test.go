package petri

import (
	"strings"
	"testing"

	"repro/internal/rat"
)

// twoLoop builds T0 -> T1 -> T0 with one token on the back place; firing
// times 3 and 4; period 7.
func twoLoop() *Net {
	n := &Net{}
	n.AddTransition(Transition{Name: "T0", Time: rat.FromInt(3), Dst: -1})
	n.AddTransition(Transition{Name: "T1", Time: rat.FromInt(4), Dst: -1})
	n.AddPlace(0, 1, 0, "fwd")
	n.AddPlace(1, 0, 1, "back")
	return n
}

func TestValidateOK(t *testing.T) {
	if err := twoLoop().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	n := twoLoop()
	n.AddPlace(0, 5, 0, "bad")
	if err := n.Validate(); err == nil {
		t.Error("dangling place accepted")
	}
	n = twoLoop()
	n.Places[1].Tokens = 0
	if err := n.Validate(); err == nil {
		t.Error("deadlocked net accepted")
	}
	n = twoLoop()
	n.Transitions[0].Time = rat.FromInt(-1)
	if err := n.Validate(); err == nil {
		t.Error("negative firing time accepted")
	}
	n = twoLoop()
	n.Places[0].Tokens = -1
	if err := n.Validate(); err == nil {
		t.Error("negative marking accepted")
	}
}

func TestMaxCycleRatio(t *testing.T) {
	res, err := twoLoop().MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.FromInt(7)) {
		t.Fatalf("ratio = %v, want 7", res.Ratio)
	}
}

func TestTokenCountAndStats(t *testing.T) {
	n := twoLoop()
	if n.TokenCount() != 1 {
		t.Errorf("TokenCount = %d", n.TokenCount())
	}
	s := n.Stats()
	if s.Transitions != 2 || s.Places != 2 || s.Tokens != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestUnrollTwoLoop(t *testing.T) {
	n := twoLoop()
	start, err := n.Unroll(4)
	if err != nil {
		t.Fatal(err)
	}
	// T0 fires at 0, 7, 14, 21; T1 at 3, 10, 17, 24.
	wantT0 := []int64{0, 7, 14, 21}
	wantT1 := []int64{3, 10, 17, 24}
	for k := 0; k < 4; k++ {
		if !start[0][k].Equal(rat.FromInt(wantT0[k])) {
			t.Errorf("T0 occurrence %d at %v, want %d", k, start[0][k], wantT0[k])
		}
		if !start[1][k].Equal(rat.FromInt(wantT1[k])) {
			t.Errorf("T1 occurrence %d at %v, want %d", k, start[1][k], wantT1[k])
		}
	}
}

func TestUnrollErrors(t *testing.T) {
	if _, err := twoLoop().Unroll(0); err == nil {
		t.Error("count 0 accepted")
	}
	dead := &Net{}
	dead.AddTransition(Transition{Name: "A", Time: rat.One(), Dst: -1})
	dead.AddTransition(Transition{Name: "B", Time: rat.One(), Dst: -1})
	dead.AddPlace(0, 1, 0, "")
	dead.AddPlace(1, 0, 0, "")
	if _, err := dead.Unroll(2); err == nil {
		t.Error("deadlocked net unrolled")
	}
}

func TestMeasuredPeriodMatchesRatio(t *testing.T) {
	n := twoLoop()
	p, err := n.MeasuredPeriod(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(rat.FromInt(7)) {
		t.Fatalf("measured period = %v, want 7", p)
	}
	if _, err := n.MeasuredPeriod(3, 5); err == nil {
		t.Error("window larger than horizon accepted")
	}
}

func TestFiringsSorted(t *testing.T) {
	fs, err := twoLoop().Firings(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 6 {
		t.Fatalf("len = %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Start.Less(fs[i-1].Start) {
			t.Fatal("firings not sorted")
		}
	}
	if !fs[0].End.Equal(rat.FromInt(3)) {
		t.Errorf("first firing end = %v", fs[0].End)
	}
}

func TestWriteDOT(t *testing.T) {
	var b strings.Builder
	if err := twoLoop().WriteDOT(&b, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "t0 -> t1", "t1 -> t0", "●"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestSubNetByCols(t *testing.T) {
	// Grid 2x3 with flow places and a column circuit on col 1.
	n := &Net{Rows: 2, Cols: 3}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			n.AddTransition(Transition{Name: "x", Time: rat.One(), Row: r, Col: c, Dst: -1})
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			n.AddPlace(n.TransitionAt(r, c), n.TransitionAt(r, c+1), 0, "flow")
		}
	}
	n.AddPlace(n.TransitionAt(0, 1), n.TransitionAt(1, 1), 0, "circ")
	n.AddPlace(n.TransitionAt(1, 1), n.TransitionAt(0, 1), 1, "circ")
	sub := n.SubNetByCols(1)
	if len(sub.Transitions) != 2 {
		t.Fatalf("sub transitions = %d", len(sub.Transitions))
	}
	if len(sub.Places) != 2 {
		t.Fatalf("sub places = %d (flow places must be dropped)", len(sub.Places))
	}
	res, err := sub.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.FromInt(2)) {
		t.Errorf("sub ratio = %v", res.Ratio)
	}
}
