// Package petri implements the timed Petri nets (TPNs) of Section 3 of the
// paper, restricted — as in the paper — to event graphs: every place has
// exactly one input and one output transition. Transitions carry firing
// times; the initial marking puts tokens on places.
//
// For such nets the steady-state behaviour is governed by (max,+) spectral
// theory (Baccelli et al.): after a transient, every transition fires once
// per period P_tpn = max over cycles C of L(C)/t(C), where L(C) is the total
// firing time along C and t(C) the number of tokens on C's places.
//
// The Net itself is a pure solve structure: transitions store only the
// firing time and the grid metadata the algorithms need (row, column, kind,
// stage, processors). Display strings — transition names for DOT output,
// figure labels — are rendered lazily from that metadata (see render.go),
// so building and solving a net allocates no label storage at all.
package petri

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/rat"
)

// TransKind classifies transitions of the workflow TPNs.
type TransKind int

const (
	// KindCompute is the execution of a stage on a processor.
	KindCompute TransKind = iota
	// KindTransfer is the transmission of a file between two processors.
	KindTransfer
)

// String implements fmt.Stringer.
func (k TransKind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindTransfer:
		return "transfer"
	default:
		return fmt.Sprintf("TransKind(%d)", int(k))
	}
}

// Transition is a timed transition of the event graph.
type Transition struct {
	// Name is an optional explicit display name. The workflow builders leave
	// it empty — names are derivable from the grid metadata below and are
	// rendered lazily by DisplayName, so the hot construction path never
	// allocates label strings. Hand-built nets may still set it.
	Name string
	Time rat.Rat
	// Grid coordinates in the paper's rectangular construction: Row is the
	// path index (0..m-1), Col ranges over 0..2n-2 with even columns
	// representing computations of stage Col/2 and odd columns the
	// transmission of file (Col-1)/2.
	Row, Col int
	Kind     TransKind
	// Stage is the stage index for computations, the file index for
	// transfers.
	Stage int
	// Proc is the computing processor (computations) or the sender
	// (transfers). Dst is the receiver for transfers, -1 otherwise.
	Proc, Dst int
}

// Place is a place with exactly one input and one output transition.
type Place struct {
	From, To int // transition indices
	Tokens   int // initial marking
	Label    string
	// Proc tags resource (round-robin circuit) places with the processor
	// they serialize, -1 for precedence places; PlaceLabel renders the
	// combination lazily so construction never concatenates label strings.
	Proc int
}

// Net is a timed event graph.
type Net struct {
	Transitions []Transition
	Places      []Place
	// Rows = m (number of paths), Cols = 2n-1 for the workflow nets.
	Rows, Cols int
}

// Reset empties the net and sets the grid dimensions, keeping the transition
// and place backing arrays. Builders that construct nets in a loop (one per
// evaluation) reuse the same Net through Reset instead of reallocating.
func (n *Net) Reset(rows, cols int) {
	n.Transitions = n.Transitions[:0]
	n.Places = n.Places[:0]
	n.Rows, n.Cols = rows, cols
}

// AddTransition appends a transition and returns its index.
func (n *Net) AddTransition(t Transition) int {
	n.Transitions = append(n.Transitions, t)
	return len(n.Transitions) - 1
}

// AddPlace appends a precedence place (no resource tag).
func (n *Net) AddPlace(from, to, tokens int, label string) {
	n.Places = append(n.Places, Place{From: from, To: to, Tokens: tokens, Label: label, Proc: -1})
}

// AddResourcePlace appends a place belonging to the round-robin circuit of
// the given processor; PlaceLabel renders "<label> P<proc>" on demand.
func (n *Net) AddResourcePlace(from, to, tokens int, label string, proc int) {
	n.Places = append(n.Places, Place{From: from, To: to, Tokens: tokens, Label: label, Proc: proc})
}

// Validate checks structural sanity and liveness (no token-free cycle).
func (n *Net) Validate() error {
	for i, p := range n.Places {
		if p.From < 0 || p.From >= len(n.Transitions) || p.To < 0 || p.To >= len(n.Transitions) {
			return fmt.Errorf("petri: place %d references missing transition", i)
		}
		if p.Tokens < 0 {
			return fmt.Errorf("petri: place %d has negative marking", i)
		}
	}
	for i := range n.Transitions {
		if n.Transitions[i].Time.Sign() < 0 {
			return fmt.Errorf("petri: transition %d (%s) has negative firing time", i, n.TransitionName(i))
		}
	}
	if err := n.System().Validate(); err != nil {
		return fmt.Errorf("petri: %w", err)
	}
	return nil
}

// SystemInto fills sys with the net's cycle-ratio system, reusing the
// system's backing storage: each place becomes an edge whose cost is the
// firing time of its *input* transition, so that the cost of a cycle equals
// the sum of firing times of the transitions on it. It returns sys.
func (n *Net) SystemInto(sys *cycles.System) *cycles.System {
	sys.Reset(len(n.Transitions))
	for _, p := range n.Places {
		sys.AddEdge(p.From, p.To, n.Transitions[p.From].Time, p.Tokens)
	}
	return sys
}

// System converts the net to a freshly allocated cycle-ratio system.
func (n *Net) System() *cycles.System {
	return n.SystemInto(cycles.NewSystem(len(n.Transitions)))
}

// TokenCount returns the total initial marking.
func (n *Net) TokenCount() int {
	total := 0
	for _, p := range n.Places {
		total += p.Tokens
	}
	return total
}

// TransitionAt returns the index of the transition at (row, col), assuming
// the rectangular layout produced by the builders (row-major).
func (n *Net) TransitionAt(row, col int) int {
	if n.Cols == 0 {
		panic("petri: net has no grid layout")
	}
	return row*n.Cols + col
}

// SubNetByCols returns the restriction of the net to the given columns: the
// transitions in those columns plus every place whose both endpoints
// survive. This extracts the per-column sub-TPNs of Section 4.1
// (Figures 9 and 10).
func (n *Net) SubNetByCols(cols ...int) *Net {
	keep := make(map[int]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	remap := make(map[int]int)
	sub := &Net{Rows: n.Rows, Cols: 0}
	for i, t := range n.Transitions {
		if keep[t.Col] {
			remap[i] = sub.AddTransition(t)
		}
	}
	for _, p := range n.Places {
		f, okF := remap[p.From]
		t, okT := remap[p.To]
		if okF && okT {
			p.From, p.To = f, t
			sub.Places = append(sub.Places, p)
		}
	}
	return sub
}

// MaxCycleRatio computes P_tpn = max_C L(C)/t(C) exactly, with a witness.
func (n *Net) MaxCycleRatio() (cycles.Result, error) {
	return n.System().MaxRatio()
}
