// Package petri implements the timed Petri nets (TPNs) of Section 3 of the
// paper, restricted — as in the paper — to event graphs: every place has
// exactly one input and one output transition. Transitions carry firing
// times; the initial marking puts tokens on places.
//
// For such nets the steady-state behaviour is governed by (max,+) spectral
// theory (Baccelli et al.): after a transient, every transition fires once
// per period P_tpn = max over cycles C of L(C)/t(C), where L(C) is the total
// firing time along C and t(C) the number of tokens on C's places.
package petri

import (
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/rat"
)

// TransKind classifies transitions of the workflow TPNs.
type TransKind int

const (
	// KindCompute is the execution of a stage on a processor.
	KindCompute TransKind = iota
	// KindTransfer is the transmission of a file between two processors.
	KindTransfer
)

// String implements fmt.Stringer.
func (k TransKind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindTransfer:
		return "transfer"
	default:
		return fmt.Sprintf("TransKind(%d)", int(k))
	}
}

// Transition is a timed transition of the event graph.
type Transition struct {
	Name string
	Time rat.Rat
	// Grid coordinates in the paper's rectangular construction: Row is the
	// path index (0..m-1), Col ranges over 0..2n-2 with even columns
	// representing computations of stage Col/2 and odd columns the
	// transmission of file (Col-1)/2.
	Row, Col int
	Kind     TransKind
	// Stage is the stage index for computations, the file index for
	// transfers.
	Stage int
	// Proc is the computing processor (computations) or the sender
	// (transfers). Dst is the receiver for transfers, -1 otherwise.
	Proc, Dst int
}

// Place is a place with exactly one input and one output transition.
type Place struct {
	From, To int // transition indices
	Tokens   int // initial marking
	Label    string
}

// Net is a timed event graph.
type Net struct {
	Transitions []Transition
	Places      []Place
	// Rows = m (number of paths), Cols = 2n-1 for the workflow nets.
	Rows, Cols int
}

// AddTransition appends a transition and returns its index.
func (n *Net) AddTransition(t Transition) int {
	n.Transitions = append(n.Transitions, t)
	return len(n.Transitions) - 1
}

// AddPlace appends a place.
func (n *Net) AddPlace(from, to, tokens int, label string) {
	n.Places = append(n.Places, Place{From: from, To: to, Tokens: tokens, Label: label})
}

// Validate checks structural sanity and liveness (no token-free cycle).
func (n *Net) Validate() error {
	for i, p := range n.Places {
		if p.From < 0 || p.From >= len(n.Transitions) || p.To < 0 || p.To >= len(n.Transitions) {
			return fmt.Errorf("petri: place %d references missing transition", i)
		}
		if p.Tokens < 0 {
			return fmt.Errorf("petri: place %d has negative marking", i)
		}
	}
	for i, t := range n.Transitions {
		if t.Time.Sign() < 0 {
			return fmt.Errorf("petri: transition %d (%s) has negative firing time", i, t.Name)
		}
	}
	if err := n.System().Validate(); err != nil {
		return fmt.Errorf("petri: %w", err)
	}
	return nil
}

// System converts the net to a cycle-ratio system: each place becomes an
// edge whose cost is the firing time of its *input* transition, so that the
// cost of a cycle equals the sum of firing times of the transitions on it.
func (n *Net) System() *cycles.System {
	s := cycles.NewSystem(len(n.Transitions))
	for _, p := range n.Places {
		s.AddEdge(p.From, p.To, n.Transitions[p.From].Time, p.Tokens)
	}
	return s
}

// TokenCount returns the total initial marking.
func (n *Net) TokenCount() int {
	total := 0
	for _, p := range n.Places {
		total += p.Tokens
	}
	return total
}

// TransitionAt returns the index of the transition at (row, col), assuming
// the rectangular layout produced by the builders (row-major).
func (n *Net) TransitionAt(row, col int) int {
	if n.Cols == 0 {
		panic("petri: net has no grid layout")
	}
	return row*n.Cols + col
}

// SubNetByCols returns the restriction of the net to the given columns: the
// transitions in those columns plus every place whose both endpoints
// survive. This extracts the per-column sub-TPNs of Section 4.1
// (Figures 9 and 10).
func (n *Net) SubNetByCols(cols ...int) *Net {
	keep := make(map[int]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	remap := make(map[int]int)
	sub := &Net{Rows: n.Rows, Cols: 0}
	for i, t := range n.Transitions {
		if keep[t.Col] {
			remap[i] = sub.AddTransition(t)
		}
	}
	for _, p := range n.Places {
		f, okF := remap[p.From]
		t, okT := remap[p.To]
		if okF && okT {
			sub.AddPlace(f, t, p.Tokens, p.Label)
		}
	}
	return sub
}

// MaxCycleRatio computes P_tpn = max_C L(C)/t(C) exactly, with a witness.
func (n *Net) MaxCycleRatio() (cycles.Result, error) {
	return n.System().MaxRatio()
}

// WriteDOT renders the net in Graphviz DOT format, grouping transitions by
// row, for visual comparison with Figures 4, 5, 8, 9, 10 of the paper.
func (n *Net) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", title); err != nil {
		return err
	}
	for i, t := range n.Transitions {
		label := fmt.Sprintf("%s\\n%v", t.Name, t.Time)
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%s\"];\n", i, label); err != nil {
			return err
		}
	}
	for _, p := range n.Places {
		attrs := ""
		if p.Tokens > 0 {
			attrs = fmt.Sprintf(" [label=\"●x%d\", style=bold]", p.Tokens)
			if p.Tokens == 1 {
				attrs = " [label=\"●\", style=bold]"
			}
		}
		if _, err := fmt.Fprintf(w, "  t%d -> t%d%s;\n", p.From, p.To, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Stats summarizes the net size.
type Stats struct {
	Transitions int
	Places      int
	Tokens      int
	Rows, Cols  int
}

// Stats returns size statistics.
func (n *Net) Stats() Stats {
	return Stats{
		Transitions: len(n.Transitions),
		Places:      len(n.Places),
		Tokens:      n.TokenCount(),
		Rows:        n.Rows,
		Cols:        n.Cols,
	}
}
