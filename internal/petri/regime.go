package petri

import (
	"fmt"

	"repro/internal/rat"
)

// Regime describes the asymptotic behaviour of a live timed event graph:
// after a transient of Transient occurrences, the firing epochs satisfy
//
//	start(T, k + Cyclicity) = start(T, k) + Cyclicity × Period(T)
//
// for every transition T, where Period(T) is the transition's asymptotic
// firing interval (transitions decoupled from the critical circuit may run
// faster than the net's period; the net period is the maximum).
type Regime struct {
	// Period is the net's TPN period (max over transitions).
	Period rat.Rat
	// Cyclicity is the smallest c detected within the horizon.
	Cyclicity int
	// Transient is the first occurrence index from which the periodic law
	// holds for every transition (within the horizon).
	Transient int
	// Rates holds each transition's asymptotic firing interval.
	Rates []rat.Rat
}

// DetectRegime unrolls the net for `horizon` occurrences and searches for
// the smallest cyclicity c and transient k0 such that the periodic law
// start(T, k+c) = start(T, k) + c·rate(T) holds for all T and all
// k in [k0, horizon-c). The per-transition rates are computed exactly from
// the cycle structure (cycles.VertexRates), so the law is checked exactly.
//
// An error is returned when no regime is found within the horizon (raise
// the horizon: the transient of a timed event graph is finite but can be
// long).
func (n *Net) DetectRegime(horizon, maxCyclicity int) (*Regime, error) {
	if horizon < 4 {
		return nil, fmt.Errorf("petri: horizon too small")
	}
	if maxCyclicity < 1 {
		maxCyclicity = horizon / 2
	}
	start, err := n.Unroll(horizon)
	if err != nil {
		return nil, err
	}
	rates, err := n.System().VertexRates()
	if err != nil {
		return nil, err
	}
	period := rat.Zero()
	for _, r := range rates {
		period = rat.Max(period, r)
	}
	for c := 1; c <= maxCyclicity && c < horizon; c++ {
		// Find the smallest k0 for this c.
		k0 := -1
		for k := horizon - c - 1; k >= 0; k-- {
			ok := true
			for t := range n.Transitions {
				want := start[t][k].Add(rates[t].MulInt(int64(c)))
				if !start[t][k+c].Equal(want) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			k0 = k
		}
		// Require at least one full extra cycle of confirmation before the
		// end of the horizon so we do not mistake a coincidence.
		if k0 >= 0 && k0+2*c < horizon {
			return &Regime{Period: period, Cyclicity: c, Transient: k0, Rates: rates}, nil
		}
	}
	return nil, fmt.Errorf("petri: no periodic regime within horizon %d (cyclicity cap %d)", horizon, maxCyclicity)
}
