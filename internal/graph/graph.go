// Package graph provides the small directed-graph substrate shared by the
// cycle-ratio algorithms and the timed-Petri-net analysis: adjacency storage,
// Tarjan strongly-connected components, acyclicity checks and longest paths
// in DAGs.
//
// Vertices are dense integers [0, n). Edges carry an opaque integer payload
// (an index into caller-side cost/token tables) so the same topology code
// serves both exact-rational and float pipelines.
package graph

import "fmt"

// Edge is a directed edge with an opaque payload identifier.
type Edge struct {
	From, To int
	ID       int // caller-defined payload index
}

// Digraph is a directed multigraph over vertices [0, N).
type Digraph struct {
	N     int
	Edges []Edge
	adj   [][]int // vertex -> indices into Edges, built lazily
}

// New returns an empty digraph with n vertices.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{N: n}
}

// AddEdge appends a directed edge from u to v with payload id and returns its
// index within Edges.
func (g *Digraph) AddEdge(u, v, id int) int {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N))
	}
	g.Edges = append(g.Edges, Edge{From: u, To: v, ID: id})
	g.adj = nil // invalidate
	return len(g.Edges) - 1
}

// Adj returns, for each vertex, the indices of its outgoing edges.
// The slice is cached; callers must not mutate it. All per-vertex lists
// share one backing array, so building the adjacency costs three
// allocations regardless of vertex count.
func (g *Digraph) Adj() [][]int {
	if g.adj == nil {
		counts := make([]int, g.N)
		for _, e := range g.Edges {
			counts[e.From]++
		}
		g.adj = make([][]int, g.N)
		flat := make([]int, len(g.Edges))
		off := 0
		for v := range g.adj {
			g.adj[v] = flat[off : off : off+counts[v]]
			off += counts[v]
		}
		for i, e := range g.Edges {
			g.adj[e.From] = append(g.adj[e.From], i)
		}
	}
	return g.adj
}

// Reset empties the graph and sets the vertex count to n, keeping the edge
// backing array for reuse.
func (g *Digraph) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g.N = n
	g.Edges = g.Edges[:0]
	g.adj = nil
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm. It returns comp (vertex -> component id) and the number of
// components. Component ids are in reverse topological order of the
// condensation (i.e. a component only points to components with smaller id...
// specifically Tarjan emits sinks first).
func (g *Digraph) SCC() (comp []int, ncomp int) {
	const unvisited = -1
	n := g.N
	adj := g.Adj()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp = make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	// Explicit DFS stack: frame = (vertex, next adjacency position).
	type frame struct{ v, ei int }
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := g.Edges[adj[v][f.ei]].To
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// TopoOrder returns a topological order of the vertices, or an error if the
// graph has a cycle.
func (g *Digraph) TopoOrder() ([]int, error) {
	n := g.N
	adj := g.Adj()
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, ei := range adj[v] {
			w := g.Edges[ei].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d vertices ordered)", len(order), n)
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Subgraph returns the digraph induced by keeping only edges for which keep
// returns true. Vertex set is unchanged.
func (g *Digraph) Subgraph(keep func(Edge) bool) *Digraph {
	s := New(g.N)
	for _, e := range g.Edges {
		if keep(e) {
			s.Edges = append(s.Edges, e)
		}
	}
	return s
}

// HasEdges reports whether any edge exists.
func (g *Digraph) HasEdges() bool { return len(g.Edges) > 0 }
