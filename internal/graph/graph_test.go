package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	comp, n := g.SCC()
	if n != 0 || len(comp) != 0 {
		t.Fatalf("empty graph SCC = (%v, %d)", comp, n)
	}
	if !g.IsAcyclic() {
		t.Fatal("empty graph must be acyclic")
	}
}

func TestAddEdgeBounds(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	g.AddEdge(0, 5, 0)
}

func TestSCCSimpleCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 2)
	comp, n := g.SCC()
	if n != 1 {
		t.Fatalf("3-cycle: got %d components, want 1", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("3-cycle vertices not in the same component: %v", comp)
	}
}

func TestSCCChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 2)
	_, n := g.SCC()
	if n != 4 {
		t.Fatalf("chain: got %d components, want 4", n)
	}
}

func TestSCCTwoCyclesBridge(t *testing.T) {
	// 0<->1 -> 2<->3
	g := New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 0, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 2, 4)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("got %d components, want 2", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("unexpected components %v", comp)
	}
	// Tarjan emits sink components first: {2,3} is the sink.
	if comp[2] != 0 {
		t.Errorf("sink component should have id 0, got %v", comp)
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0, 0)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("self loop: %d components, want 2", n)
	}
	_ = comp
	if g.IsAcyclic() {
		t.Fatal("self loop graph reported acyclic")
	}
}

func TestTopoOrder(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 4)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topological order violated for edge %v (order %v)", e, order)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 0, 1)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestSubgraph(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 7)
	g.AddEdge(1, 2, 8)
	s := g.Subgraph(func(e Edge) bool { return e.ID == 7 })
	if len(s.Edges) != 1 || s.Edges[0].ID != 7 {
		t.Fatalf("subgraph edges: %v", s.Edges)
	}
	if len(g.Edges) != 2 {
		t.Fatal("subgraph mutated original")
	}
}

func TestAdjCachedAndCorrect(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 2)
	adj := g.Adj()
	if len(adj[0]) != 2 || len(adj[1]) != 0 || len(adj[2]) != 1 {
		t.Fatalf("adjacency wrong: %v", adj)
	}
	g.AddEdge(1, 0, 3)
	adj = g.Adj()
	if len(adj[1]) != 1 {
		t.Fatalf("adjacency not invalidated after AddEdge: %v", adj)
	}
}

// Reference SCC: brute-force reachability (Floyd–Warshall style), for
// cross-checking Tarjan on random graphs.
func bruteSCC(g *Digraph) []int {
	n := g.N
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		reach[i][i] = true
	}
	for _, e := range g.Edges {
		reach[e.From][e.To] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if comp[i] != -1 {
			continue
		}
		comp[i] = next
		for j := i + 1; j < n; j++ {
			if reach[i][j] && reach[j][i] {
				comp[j] = next
			}
		}
		next++
	}
	return comp
}

func TestQuickSCCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g := New(n)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), i)
		}
		comp, _ := g.SCC()
		want := bruteSCC(g)
		// Same partition: comp[i]==comp[j] iff want[i]==want[j].
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (comp[i] == comp[j]) != (want[i] == want[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTopoOrderIffDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g := New(n)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), i)
		}
		// A graph is acyclic iff every SCC is a singleton with no self loop.
		comp, ncomp := g.SCC()
		acyclic := ncomp == g.N
		if acyclic {
			for _, e := range g.Edges {
				if e.From == e.To {
					acyclic = false
					break
				}
			}
		}
		_ = comp
		return g.IsAcyclic() == acyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
