// Package store is the content-addressed instance store behind the serving
// layer: clients register an instance once (POST /v1/instances) and refer to
// it by a stable content ID afterwards, cutting the per-request bytes from a
// multi-KB JSON instance to a 64-byte ID — the prerequisite for sharding the
// service, since the ID is exactly what a consistent-hash router routes on.
//
// Design:
//
//   - Content addressing. The ID is the SHA-256 of engine.InstanceKey — the
//     canonical serialization of the replication structure and exact
//     operation times. Registering the same timed structure twice (from any
//     client, in any representation that canonicalizes equally) yields the
//     same ID and one resident entry; IDs are valid across restarts and
//     across nodes because they depend on nothing but the content.
//
//   - Precomputed task keys. An entry carries the engine's canonical
//     (hash, key) pair for every communication model, computed once at
//     registration. A by-ID request therefore performs zero canonical
//     serialization: the multi-KB key the memo cache and the request
//     coalescer need is a field load.
//
//   - Bounded residency, CLOCK discipline. Like the engine's memo cache the
//     store holds at most its configured capacity; past it, a CLOCK hand
//     recycles the coldest unpinned entry (reference bits set on every
//     resolve). Entries resolved by an in-flight request are pinned and
//     never evicted until released, so eviction pressure cannot invalidate
//     an instance mid-solve.
//
//   - Consistent metrics. Mutating counters live under the store mutex and
//     Metrics snapshots them in one acquisition, so derived totals
//     (Entries+Evictions = cumulative inserts) are monotone across scrapes.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// numModels sizes the per-entry task-key tables; the communication models
// are a closed two-element enum (model.Models).
const numModels = 2

// DefaultCapacity bounds the store when Options leave it zero: at a few KB
// per entry (the instance plus three canonical strings) the default stays
// within tens of MiB while holding far more distinct instances than a
// loadgen-scale client population rotates through.
const DefaultCapacity = 4096

// ErrFull reports that every resident entry is pinned by an in-flight
// request and the capacity is reached — the only condition under which a
// registration is refused.
var ErrFull = errors.New("store: capacity reached and every entry is pinned")

// Kind distinguishes the document types the store holds. Instances were
// first; pipelines and platforms joined when /v1/search learned by-ID
// references — all three share the registry, the CLOCK discipline and the
// pin protocol, because an ID's home node in the cluster ring must not
// depend on what kind of document it names.
type Kind string

const (
	// KindInstance is a timed instance (replication structure + times).
	KindInstance Kind = "instance"
	// KindPipeline is an application description (stage works + file sizes).
	KindPipeline Kind = "pipeline"
	// KindPlatform is a platform description (speeds + bandwidths).
	KindPlatform Kind = "platform"
)

// Entry is one registered document. Entries are immutable after
// registration; the pin count is the only mutable state. Exactly one of
// Instance, Pipeline and Platform is non-nil, according to Kind.
type Entry struct {
	id   string
	kind Kind
	inst *model.Instance
	pipe *pipeline.Pipeline
	plat *platform.Platform

	// taskHash/taskKey are engine.CanonicalKey(Task{inst, m}) per model,
	// precomputed so the by-ID hot path never serializes the instance.
	// Instance entries only.
	taskHash [numModels]uint64
	taskKey  [numModels]string

	pins atomic.Int32 // in-flight requests holding this entry
	ref  atomic.Bool  // CLOCK reference bit
}

// ID returns the stable content ID (hex SHA-256 of the canonical content).
func (e *Entry) ID() string { return e.id }

// Kind returns the document kind.
func (e *Entry) Kind() Kind { return e.kind }

// Instance returns the registered instance (immutable, safe to share);
// nil unless Kind is KindInstance.
func (e *Entry) Instance() *model.Instance { return e.inst }

// Pipeline returns the registered pipeline; nil unless Kind is
// KindPipeline.
func (e *Entry) Pipeline() *pipeline.Pipeline { return e.pipe }

// Platform returns the registered platform; nil unless Kind is
// KindPlatform.
func (e *Entry) Platform() *platform.Platform { return e.plat }

// TaskKey returns the engine's canonical (hash, key) pair for this instance
// under cm, precomputed at registration.
func (e *Entry) TaskKey(cm model.CommModel) (uint64, string) {
	return e.taskHash[cm], e.taskKey[cm]
}

// Release drops one pin. Every successful Resolve must be paired with
// exactly one Release once the request referencing the entry finishes.
func (e *Entry) Release() { e.pins.Add(-1) }

// Metrics is a consistent point-in-time snapshot of the store.
type Metrics struct {
	// Puts counts registrations that created a new entry; Dedups counts
	// registrations answered by an existing entry (same content ID).
	Puts, Dedups int64
	// Resolves and Misses count by-ID lookups (found / unknown ID).
	Resolves, Misses int64
	// Evictions counts entries recycled by the CLOCK hand; Entries+Evictions
	// is the cumulative insert count and never decreases between snapshots.
	Evictions int64
	// Entries is the current resident count; never exceeds Capacity.
	Entries int64
	// Pinned is the number of entries currently held by in-flight requests.
	Pinned int64
	// Capacity is the configured bound.
	Capacity int
}

// Store is the bounded content-addressed instance store. Safe for concurrent
// use; reads (Resolve) take a shared lock, registrations an exclusive one.
type Store struct {
	capacity int

	mu        sync.RWMutex
	byID      map[string]int32 // content ID -> slot
	entries   []*Entry         // fixed slots; the CLOCK ring
	hand      int32
	puts      int64 // guarded by mu
	dedups    int64 // guarded by mu
	evictions int64 // guarded by mu

	resolves atomic.Int64 // monotone, updated under RLock
	misses   atomic.Int64
}

// New builds a store holding at most capacity entries (<= 0 means
// DefaultCapacity).
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		byID:     make(map[string]int32, capacity),
		entries:  make([]*Entry, 0, capacity),
	}
}

// Capacity returns the configured bound.
func (s *Store) Capacity() int { return s.capacity }

// ContentID computes the stable content ID an instance registers under,
// without touching the store: the hex SHA-256 of the canonical
// model-independent serialization.
func ContentID(inst *model.Instance) string {
	_, content := engine.InstanceKey(inst)
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// PipelineID computes the stable content ID a pipeline registers under:
// the hex SHA-256 of its kind-tagged canonical JSON. The tag keeps the
// three ID spaces disjoint — a pipeline can never alias an instance or a
// platform — while the JSON form (fixed field order, canonical numbers) is
// deterministic for equal documents.
func PipelineID(p *pipeline.Pipeline) string {
	return docID(KindPipeline, p)
}

// PlatformID computes the stable content ID a platform registers under;
// see PipelineID.
func PlatformID(p *platform.Platform) string {
	return docID(KindPlatform, p)
}

func docID(kind Kind, doc any) string {
	b, err := json.Marshal(doc)
	if err != nil {
		// Pipelines and platforms are plain data; Marshal cannot fail.
		panic("store: canonical marshal: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Put registers an instance and returns its entry. created reports whether a
// new entry was inserted (false: the content was already registered and the
// existing entry is returned). Put fails only with ErrFull — capacity
// reached while every resident entry is pinned.
func (s *Store) Put(inst *model.Instance) (e *Entry, created bool, err error) {
	// Hash and serialize outside the lock: registration cost is dominated by
	// the canonical serializations, and they need no store state.
	ent := &Entry{id: ContentID(inst), kind: KindInstance, inst: inst}
	for _, cm := range model.Models() {
		h, k := engine.CanonicalKey(engine.Task{Inst: inst, Model: cm})
		ent.taskHash[cm], ent.taskKey[cm] = h, k
	}
	return s.insert(ent)
}

// PutPipeline registers a pipeline document under PipelineID(p).
func (s *Store) PutPipeline(p *pipeline.Pipeline) (e *Entry, created bool, err error) {
	return s.insert(&Entry{id: PipelineID(p), kind: KindPipeline, pipe: p})
}

// PutPlatform registers a platform document under PlatformID(p).
func (s *Store) PutPlatform(p *platform.Platform) (e *Entry, created bool, err error) {
	return s.insert(&Entry{id: PlatformID(p), kind: KindPlatform, plat: p})
}

// insert adds a prepared entry under the CLOCK discipline, deduplicating by
// content ID.
func (s *Store) insert(ent *Entry) (e *Entry, created bool, err error) {
	id := ent.id
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.byID[id]; ok {
		existing := s.entries[slot]
		existing.ref.Store(true)
		s.dedups++
		return existing, false, nil
	}
	ent.ref.Store(true)
	if len(s.entries) < s.capacity {
		s.entries = append(s.entries, ent)
		s.byID[id] = int32(len(s.entries) - 1)
		s.puts++
		return ent, true, nil
	}
	// CLOCK sweep: clear reference bits until an unpinned, unreferenced slot
	// turns up. Pinned entries are skipped without clearing their bit — a
	// pin is stronger than a reference. Two full revolutions guarantee a
	// victim unless every slot is pinned; a third finds nothing new, so bail
	// out then rather than spinning.
	for sweeps := 0; sweeps < 3*len(s.entries); sweeps++ {
		victim := s.hand
		cand := s.entries[victim]
		s.hand = (s.hand + 1) % int32(len(s.entries))
		if cand.pins.Load() > 0 {
			continue
		}
		if cand.ref.CompareAndSwap(true, false) {
			continue
		}
		delete(s.byID, cand.id)
		s.entries[victim] = ent
		s.byID[id] = victim
		s.evictions++
		s.puts++
		return ent, true, nil
	}
	return nil, false, ErrFull
}

// Resolve looks an ID up and pins the entry: until the caller invokes
// Release, the entry cannot be evicted. The boolean reports whether the ID
// is registered.
func (s *Store) Resolve(id string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot, ok := s.byID[id]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	ent := s.entries[slot]
	ent.pins.Add(1)
	ent.ref.Store(true)
	s.resolves.Add(1)
	return ent, true
}

// Metrics snapshots the store counters. Entries, Evictions, Puts and Dedups
// are read under the store lock in one acquisition, so Entries+Evictions
// (cumulative inserts) is exact and monotone across snapshots.
func (s *Store) Metrics() Metrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := Metrics{
		Puts:      s.puts,
		Dedups:    s.dedups,
		Evictions: s.evictions,
		Entries:   int64(len(s.entries)),
		Capacity:  s.capacity,
		Resolves:  s.resolves.Load(),
		Misses:    s.misses.Load(),
	}
	for _, e := range s.entries {
		if e.pins.Load() > 0 {
			m.Pinned++
		}
	}
	return m
}
