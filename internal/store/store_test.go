package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/exper"
	"repro/internal/model"
	"repro/internal/rat"
)

func randomInstance(t testing.TB, rng *rand.Rand, reps []int) *model.Instance {
	t.Helper()
	inst, err := exper.RandomTimedInstance(rng, reps, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPutResolveRoundTrip(t *testing.T) {
	s := New(8)
	rng := rand.New(rand.NewSource(1))
	inst := randomInstance(t, rng, []int{2, 3})
	e, created, err := s.Put(inst)
	if err != nil || !created {
		t.Fatalf("Put: created=%v err=%v", created, err)
	}
	if e.ID() != ContentID(inst) || len(e.ID()) != 64 {
		t.Fatalf("ID %q is not the 64-hex content address %q", e.ID(), ContentID(inst))
	}
	got, ok := s.Resolve(e.ID())
	if !ok || got.Instance() != inst {
		t.Fatalf("Resolve: ok=%v inst=%p want %p", ok, got.Instance(), inst)
	}
	got.Release()
	if _, ok := s.Resolve("deadbeef"); ok {
		t.Fatal("unknown ID resolved")
	}
	m := s.Metrics()
	if m.Puts != 1 || m.Resolves != 1 || m.Misses != 1 || m.Entries != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestPutDeduplicatesByContent(t *testing.T) {
	s := New(8)
	rng := rand.New(rand.NewSource(2))
	inst := randomInstance(t, rng, []int{2, 2})
	first, created, err := s.Put(inst)
	if err != nil || !created {
		t.Fatalf("first Put: created=%v err=%v", created, err)
	}
	// A structurally identical instance built from the same times must land
	// on the same entry: the address is the content, not the pointer.
	clone, err := model.FromTimes(instTimes(inst))
	if err != nil {
		t.Fatal(err)
	}
	second, created, err := s.Put(clone)
	if err != nil || created {
		t.Fatalf("duplicate Put: created=%v err=%v", created, err)
	}
	if second != first {
		t.Fatal("duplicate registration produced a distinct entry")
	}
	if m := s.Metrics(); m.Puts != 1 || m.Dedups != 1 || m.Entries != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// instTimes copies an instance's timing tables (test helper for rebuilding a
// structurally identical instance).
func instTimes(inst *model.Instance) (comp [][]rat.Rat, comm [][][]rat.Rat) {
	n := inst.NumStages()
	comp = make([][]rat.Rat, n)
	for i := 0; i < n; i++ {
		comp[i] = make([]rat.Rat, inst.Replication(i))
		for a := range comp[i] {
			comp[i][a] = inst.CompTime(i, a)
		}
	}
	comm = make([][][]rat.Rat, n-1)
	for i := 0; i < n-1; i++ {
		comm[i] = make([][]rat.Rat, inst.Replication(i))
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, inst.Replication(i+1))
			for b := range comm[i][a] {
				comm[i][a][b] = inst.CommTime(i, a, b)
			}
		}
	}
	return comp, comm
}

func TestTaskKeysMatchEngine(t *testing.T) {
	s := New(4)
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(t, rng, []int{3, 2})
	e, _, err := s.Put(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range model.Models() {
		wantH, wantK := engine.CanonicalKey(engine.Task{Inst: inst, Model: cm})
		gotH, gotK := e.TaskKey(cm)
		if gotH != wantH || gotK != wantK {
			t.Fatalf("model %s: precomputed task key drifted from engine.CanonicalKey", cm)
		}
	}
}

func TestBoundHoldsAndClockEvicts(t *testing.T) {
	const capEntries = 4
	s := New(capEntries)
	rng := rand.New(rand.NewSource(4))
	ids := make([]string, 0, 3*capEntries)
	for i := 0; i < 3*capEntries; i++ {
		e, created, err := s.Put(randomInstance(t, rng, []int{2, 3}))
		if err != nil || !created {
			t.Fatalf("Put %d: created=%v err=%v", i, created, err)
		}
		ids = append(ids, e.ID())
		if m := s.Metrics(); m.Entries > capEntries {
			t.Fatalf("after %d puts: %d entries over capacity %d", i+1, m.Entries, capEntries)
		}
	}
	m := s.Metrics()
	if m.Entries != capEntries || m.Evictions != 2*capEntries || m.Puts != 3*capEntries {
		t.Fatalf("metrics %+v", m)
	}
	// The most recent registration is resident; the oldest was evicted.
	if _, ok := s.Resolve(ids[len(ids)-1]); !ok {
		t.Fatal("latest registration evicted")
	}
	if _, ok := s.Resolve(ids[0]); ok {
		t.Fatal("oldest registration survived 2x capacity of churn")
	}
}

// TestPinnedEntriesSurviveEviction is the pinning contract: an entry held by
// an in-flight request is never recycled, no matter how much registration
// pressure arrives, while unpinned neighbors churn freely.
func TestPinnedEntriesSurviveEviction(t *testing.T) {
	const capEntries = 4
	s := New(capEntries)
	rng := rand.New(rand.NewSource(5))
	pinnedInst := randomInstance(t, rng, []int{2, 3})
	e, _, err := s.Put(pinnedInst)
	if err != nil {
		t.Fatal(err)
	}
	held, ok := s.Resolve(e.ID())
	if !ok {
		t.Fatal(err)
	}
	for i := 0; i < 5*capEntries; i++ {
		if _, _, err := s.Put(randomInstance(t, rng, []int{2, 3})); err != nil {
			t.Fatalf("Put %d under pin: %v", i, err)
		}
	}
	got, ok := s.Resolve(e.ID())
	if !ok || got.Instance() != pinnedInst {
		t.Fatal("pinned entry was evicted under registration pressure")
	}
	got.Release()
	held.Release()
	if m := s.Metrics(); m.Evictions == 0 || m.Pinned != 0 {
		t.Fatalf("metrics %+v: want churn around the pin and no leaked pins", m)
	}
	// Unpinned now: enough pressure must eventually recycle it.
	for i := 0; i < 5*capEntries; i++ {
		if _, _, err := s.Put(randomInstance(t, rng, []int{2, 3})); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Resolve(e.ID()); ok {
		t.Fatal("released entry survived 5x capacity of churn")
	}
}

func TestPutFailsOnlyWhenEveryEntryPinned(t *testing.T) {
	const capEntries = 3
	s := New(capEntries)
	rng := rand.New(rand.NewSource(6))
	var held []*Entry
	for i := 0; i < capEntries; i++ {
		e, _, err := s.Put(randomInstance(t, rng, []int{2, 2}))
		if err != nil {
			t.Fatal(err)
		}
		pinned, ok := s.Resolve(e.ID())
		if !ok {
			t.Fatal("registered entry did not resolve")
		}
		held = append(held, pinned)
	}
	if _, _, err := s.Put(randomInstance(t, rng, []int{2, 2})); err != ErrFull {
		t.Fatalf("Put with every entry pinned: err=%v, want ErrFull", err)
	}
	held[1].Release()
	if _, created, err := s.Put(randomInstance(t, rng, []int{2, 2})); err != nil || !created {
		t.Fatalf("Put after one release: created=%v err=%v", created, err)
	}
	held[0].Release()
	held[2].Release()
}

// TestMetricsConsistentUnderConcurrentChurn runs a registration/resolve
// storm against a tiny store while a scraper asserts the monotone-totals
// contract (cumulative inserts = Entries+Evictions never decreases) under
// -race.
func TestMetricsConsistentUnderConcurrentChurn(t *testing.T) {
	s := New(8)
	rng := rand.New(rand.NewSource(7))
	insts := make([]*model.Instance, 64)
	for i := range insts {
		insts[i] = randomInstance(t, rng, []int{2, 3})
	}
	quit := make(chan struct{})
	scraped := make(chan struct{})
	var scrapeErr atomic.Value
	go func() {
		defer close(scraped)
		var lastInserts, lastLookups int64
		for i := 0; ; i++ {
			select {
			case <-quit:
				return
			default:
			}
			m := s.Metrics()
			inserts := m.Entries + m.Evictions
			lookups := m.Resolves + m.Misses
			if inserts < lastInserts {
				scrapeErr.Store(fmt.Sprintf("scrape %d: inserts went backwards (%d -> %d)", i, lastInserts, inserts))
				return
			}
			if lookups < lastLookups {
				scrapeErr.Store(fmt.Sprintf("scrape %d: lookups went backwards (%d -> %d)", i, lastLookups, lookups))
				return
			}
			if m.Entries > int64(m.Capacity) {
				scrapeErr.Store(fmt.Sprintf("scrape %d: %d entries over capacity", i, m.Entries))
				return
			}
			lastInserts, lastLookups = inserts, lookups
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inst := insts[(self*200+i)%len(insts)]
				e, _, err := s.Put(inst)
				if err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Resolve(e.ID()); ok {
					got.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	close(quit)
	<-scraped
	if msg := scrapeErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if m := s.Metrics(); m.Pinned != 0 {
		t.Fatalf("leaked pins: %+v", m)
	}
}
