package engine_test

// The acceptance gate of the Howard backend: on the full Table 2 grid —
// every instance family of the paper's campaign, both communication models —
// an engine forcing Howard must return Results bit-identical to an engine
// forcing Karp and to one choosing automatically. The backends are
// independent exact algorithms, so this is a differential test of the whole
// production stack, not a tautology.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/model"
)

func TestBackendsBitIdenticalOnTable2Grid(t *testing.T) {
	perRow := 3
	if testing.Short() {
		perRow = 1
	}
	var tasks []engine.Task
	for _, cm := range model.Models() {
		tasks = append(tasks, table2Tasks(t, cm, perRow)...)
	}

	results := make(map[cycles.Backend][]engine.Outcome)
	for _, b := range []cycles.Backend{cycles.BackendKarp, cycles.BackendHoward, cycles.BackendAuto} {
		eng := engine.New(engine.Options{Workers: 4, Backend: b, CacheEntries: -1})
		outs, err := eng.EvaluateBatch(context.Background(), tasks)
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		for i, o := range outs {
			if o.Err != nil {
				t.Fatalf("backend %v task %d: %v", b, i, o.Err)
			}
		}
		results[b] = outs
	}

	karp := results[cycles.BackendKarp]
	for _, b := range []cycles.Backend{cycles.BackendHoward, cycles.BackendAuto} {
		for i, o := range results[b] {
			if !reflect.DeepEqual(o.Result, karp[i].Result) {
				t.Fatalf("task %d: backend %v result %+v differs from karp %+v",
					i, b, o.Result, karp[i].Result)
			}
			if !o.Result.Period.Equal(karp[i].Result.Period) || !o.Result.Mct.Equal(karp[i].Result.Mct) {
				t.Fatalf("task %d: backend %v exact values drifted", i, b)
			}
		}
	}
}
