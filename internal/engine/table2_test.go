package engine_test

// The acceptance bar of the engine: on the full Table 2 row grid — every
// instance family of the paper's experimental campaign, both communication
// models — a parallel EvaluateBatch must return Results bit-identical to
// the serial core.Period loop, at several worker counts.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exper"
	"repro/internal/model"
)

// table2Tasks draws instancesPerRow instances from every row of the
// Table 2 grid for the given model, exactly as exper.RunEngine derives
// them (rng seeded per instance index).
func table2Tasks(t *testing.T, cm model.CommModel, instancesPerRow int) []engine.Task {
	t.Helper()
	var tasks []engine.Task
	for rowIdx, row := range exper.Table2Rows(cm, 1, exper.DefaultMaxPathCount) {
		for k := 0; k < instancesPerRow; k++ {
			seed := int64(rowIdx*10_000 + k + 1)
			rng := rand.New(rand.NewSource(seed))
			sp := row.Specs[k%len(row.Specs)]
			inst, err := sp.Instance(rng)
			if err != nil {
				t.Fatalf("row %q instance %d: %v", row.Label, k, err)
			}
			tasks = append(tasks, engine.Task{Inst: inst, Model: cm})
		}
	}
	return tasks
}

func TestEvaluateBatchBitIdenticalOnTable2Grid(t *testing.T) {
	perRow := 3
	if testing.Short() {
		perRow = 1
	}
	var tasks []engine.Task
	for _, cm := range model.Models() {
		tasks = append(tasks, table2Tasks(t, cm, perRow)...)
	}
	if want := 2 * 6 * perRow; len(tasks) != want {
		t.Fatalf("grid produced %d tasks, want %d (all rows, both models)", len(tasks), want)
	}

	// Serial reference path.
	want := make([]core.Result, len(tasks))
	for i, tk := range tasks {
		res, err := core.Period(tk.Inst, tk.Model)
		if err != nil {
			t.Fatalf("serial task %d: %v", i, err)
		}
		want[i] = res
	}

	for _, workers := range []int{1, 4} {
		eng := engine.New(engine.Options{Workers: workers})
		outs, err := eng.EvaluateBatch(context.Background(), tasks)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, o := range outs {
			if o.Err != nil {
				t.Fatalf("workers=%d task %d: %v", workers, i, o.Err)
			}
			if !reflect.DeepEqual(o.Result, want[i]) {
				t.Fatalf("workers=%d task %d: engine %+v differs from serial %+v",
					workers, i, o.Result, want[i])
			}
			if !o.Result.Period.Equal(want[i].Period) || !o.Result.Mct.Equal(want[i].Mct) {
				t.Fatalf("workers=%d task %d: exact values drifted", workers, i)
			}
		}
	}
}
