package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// randomInstance draws an instance with the given replication counts and
// uniform integer operation times in [lo, hi].
func randomInstance(t testing.TB, rng *rand.Rand, reps []int, lo, hi int64) *model.Instance {
	t.Helper()
	draw := func() rat.Rat { return rat.FromInt(lo + rng.Int63n(hi-lo+1)) }
	comp := make([][]rat.Rat, len(reps))
	for i, r := range reps {
		comp[i] = make([]rat.Rat, r)
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, len(reps)-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func randomTasks(t testing.TB, seed int64, count int) []Task {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shapes := [][]int{{1, 2, 3}, {2, 3}, {3, 4}, {2, 2, 2}, {1, 4, 2}}
	tasks := make([]Task, count)
	for k := range tasks {
		cm := model.Overlap
		if k%2 == 1 {
			cm = model.Strict
		}
		tasks[k] = Task{
			Inst:  randomInstance(t, rng, shapes[k%len(shapes)], 5, 15),
			Model: cm,
		}
	}
	return tasks
}

// serialOutcomes is the reference path the engine must match bit for bit.
func serialOutcomes(tasks []Task) []Outcome {
	out := make([]Outcome, len(tasks))
	for i, tk := range tasks {
		res, err := core.Period(tk.Inst, tk.Model)
		out[i] = Outcome{Result: res, Err: err}
	}
	return out
}

func TestEvaluateBatchMatchesSerial(t *testing.T) {
	tasks := randomTasks(t, 42, 60)
	want := serialOutcomes(tasks)
	for _, workers := range []int{1, 2, 4, 7} {
		eng := New(Options{Workers: workers})
		got, err := eng.EvaluateBatch(context.Background(), tasks)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d task %d: err %v vs serial %v", workers, i, got[i].Err, want[i].Err)
			}
			if !reflect.DeepEqual(got[i].Result, want[i].Result) {
				t.Fatalf("workers=%d task %d: result %+v differs from serial %+v",
					workers, i, got[i].Result, want[i].Result)
			}
		}
	}
}

func TestEvaluateBatchDeterministicAcrossRuns(t *testing.T) {
	tasks := randomTasks(t, 7, 40)
	eng := New(Options{Workers: 4})
	first, err := eng.EvaluateBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		again, err := eng.EvaluateBatch(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("round %d differs from first run", round)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 5, 97, 256} {
			eng := New(Options{Workers: workers})
			counts := make([]int32, n)
			if err := eng.ForEach(context.Background(), n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachStealsUnevenWork(t *testing.T) {
	// Pile all the heavy work into the first worker's span: without
	// stealing the batch would serialize behind worker 0.
	eng := New(Options{Workers: 4})
	var ran int32
	err := eng.ForEach(context.Background(), 64, func(i int) {
		if i < 16 {
			// Heavy indices: spin a little to let the other workers
			// drain their spans and start stealing.
			for j := 0; j < 1000; j++ {
				_ = j
			}
		}
		atomic.AddInt32(&ran, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 64 {
		t.Fatalf("ran %d of 64", ran)
	}
}

func TestSpanPopBothEnds(t *testing.T) {
	s := &span{}
	s.bounds.Store(pack(0, 4))
	if idx, ok := s.popFront(); !ok || idx != 0 {
		t.Fatalf("popFront = %d, %v", idx, ok)
	}
	if idx, ok := s.popBack(); !ok || idx != 3 {
		t.Fatalf("popBack = %d, %v", idx, ok)
	}
	if idx, ok := s.popFront(); !ok || idx != 1 {
		t.Fatalf("popFront = %d, %v", idx, ok)
	}
	if idx, ok := s.popBack(); !ok || idx != 2 {
		t.Fatalf("popBack = %d, %v", idx, ok)
	}
	if _, ok := s.popFront(); ok {
		t.Fatal("popFront on empty span succeeded")
	}
	if _, ok := s.popBack(); ok {
		t.Fatal("popBack on empty span succeeded")
	}
}

func TestEvaluateBatchCancellation(t *testing.T) {
	tasks := randomTasks(t, 3, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: no task should matter
	eng := New(Options{Workers: 4})
	out, err := eng.EvaluateBatch(ctx, tasks)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("canceled batch must not return partial outcomes")
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(Options{Workers: 2})
	var ran int32
	err := eng.ForEach(ctx, 1000, func(i int) {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("cancellation did not stop the batch (ran %d)", n)
	}
}

func TestMemoCacheHitsAndIdenticalResults(t *testing.T) {
	tasks := randomTasks(t, 11, 10)
	eng := New(Options{Workers: 2})
	first, err := eng.EvaluateBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := eng.CacheStats()
	if misses0 == 0 {
		t.Fatal("first batch should miss")
	}
	second, err := eng.EvaluateBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := eng.CacheStats()
	if hits1-hits0 != int64(len(tasks)) {
		t.Fatalf("second batch hits = %d, want %d", hits1-hits0, len(tasks))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached results differ from computed results")
	}
}

func TestCacheDisabled(t *testing.T) {
	tasks := randomTasks(t, 13, 4)
	eng := New(Options{Workers: 1, CacheEntries: -1})
	if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	hits, misses := eng.CacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d", hits, misses)
	}
}

func TestCacheEntriesBoundHolds(t *testing.T) {
	tasks := randomTasks(t, 17, 12)
	eng := New(Options{Workers: 1, CacheEntries: 3})
	if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if got := eng.cache.size(); got > 3 {
		t.Fatalf("cache holds %d entries, cap 3", got)
	}
	// Results must still be correct beyond the cap.
	out, err := eng.EvaluateBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := serialOutcomes(tasks)
	for i := range want {
		if !reflect.DeepEqual(out[i].Result, want[i].Result) {
			t.Fatalf("task %d wrong beyond cache cap", i)
		}
	}
	m := eng.CacheMetrics()
	if m.Capacity != 3 || m.Entries > 3 {
		t.Fatalf("metrics report entries=%d capacity=%d, want <=3/3", m.Entries, m.Capacity)
	}
}

func TestMemoCacheClockEviction(t *testing.T) {
	// A single-quota workload: capacity 1 puts every entry through the one
	// shard with a non-zero quota only when the hashes land there, so drive
	// the shard directly — fill a shard's quota, then insert more and watch
	// the CLOCK hand recycle slots while the bound holds exactly.
	c := newMemoCache(memoShardCount * 2) // quota 2 per shard
	shard := uint64(5)
	key := func(i int) (uint64, string) {
		// Same shard (h % 64 == 5), distinct hashes.
		return shard + uint64(i)*memoShardCount, "k" + strconv.Itoa(i)
	}
	for i := 0; i < 10; i++ {
		h, k := key(i)
		c.put(h, k, core.Result{PathCount: int64(i)})
	}
	sh := &c.shards[shard]
	if got := len(sh.entries); got != 2 {
		t.Fatalf("shard holds %d entries, quota 2", got)
	}
	if _, ev := c.metrics(); ev != 8 {
		t.Fatalf("evictions = %d, want 8", ev)
	}
	// The last insert is resident and correct.
	h, k := key(9)
	if res, ok := c.get(h, k); !ok || res.PathCount != 9 {
		t.Fatalf("latest entry: got %+v ok=%v", res, ok)
	}
	// The index never points at stale slots: every indexed slot's hash
	// round-trips.
	for hh, chain := range sh.index {
		for _, slot := range chain {
			if sh.entries[slot].hash != hh {
				t.Fatalf("index hash %d points at slot %d holding hash %d", hh, slot, sh.entries[slot].hash)
			}
		}
	}
}

func TestMemoCacheClockSecondChance(t *testing.T) {
	// Second chance, step by step on one quota-2 shard. Inserting A then B
	// leaves both referenced. The first over-capacity put (C) sweeps the
	// hand across both — clearing their bits — and evicts A on the second
	// revolution, leaving the hand just past A's slot. The next put (D)
	// sweeps from B: whatever reference bits the interleaved gets re-armed,
	// the hand reaches B's slot again before C's, so B is the victim and C
	// survives — the entry most recently granted its second chance wins.
	c := newMemoCache(memoShardCount * 2)
	h := func(i int) uint64 { return uint64(i) * memoShardCount } // all shard 0
	c.put(h(0), "A", core.Result{PathCount: 100})
	c.put(h(1), "B", core.Result{PathCount: 101})
	c.put(h(2), "C", core.Result{PathCount: 102})
	if _, ok := c.get(h(0), "A"); ok {
		t.Fatal("A should be the first CLOCK victim")
	}
	if _, ok := c.get(h(1), "B"); !ok {
		t.Fatal("B must survive the first eviction")
	}
	c.put(h(3), "D", core.Result{PathCount: 103})
	if res, ok := c.get(h(2), "C"); !ok || res.PathCount != 102 {
		t.Fatalf("referenced entry C evicted before unreferenced B: got %+v ok=%v", res, ok)
	}
	if _, ok := c.get(h(3), "D"); !ok {
		t.Fatal("D must be resident after its insert")
	}
}

func TestCanonicalKeyIgnoresProcessorIDs(t *testing.T) {
	// The same timed structure must share a cache entry no matter which
	// processors realize it; distinct times must not.
	rng := rand.New(rand.NewSource(5))
	a := randomInstance(t, rng, []int{2, 3}, 5, 15)
	b := randomInstance(t, rng, []int{2, 3}, 5, 15)
	ha, ka := canonicalKey(Task{Inst: a, Model: model.Overlap})
	haAgain, kaAgain := canonicalKey(Task{Inst: a, Model: model.Overlap})
	if ka != kaAgain || ha != haAgain {
		t.Fatal("canonical key not stable")
	}
	if hs, ks := canonicalKey(Task{Inst: a, Model: model.Strict}); ka == ks || ha == hs {
		t.Fatal("key ignores the communication model")
	}
	if hb, kb := canonicalKey(Task{Inst: b, Model: model.Overlap}); ka == kb || ha == hb {
		t.Fatal("distinct instances collided (times differ with probability ~1)")
	}
}

func TestEngineMaxRowsOption(t *testing.T) {
	// The row cap travels from Options into every pooled solver: a strict
	// evaluation whose unfolded net exceeds it must fail per-task with
	// tpn.ErrTooLarge, and a roomier engine must succeed on the same task.
	rng := rand.New(rand.NewSource(3))
	task := Task{Inst: randomInstance(t, rng, []int{2, 3}, 5, 15), Model: model.Strict} // m = 6
	capped := New(Options{Workers: 1, MaxRows: 5})
	_, err := capped.Evaluate(task)
	var tooLarge tpn.ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("got err %v, want ErrTooLarge", err)
	}
	if tooLarge.Rows != 6 || tooLarge.Cap != 5 {
		t.Fatalf("ErrTooLarge = %+v, want Rows 6 Cap 5", tooLarge)
	}
	roomy := New(Options{Workers: 1, MaxRows: 6})
	got, err := roomy.Evaluate(task)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Period(task.Inst, task.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Period.Equal(want.Period) {
		t.Fatalf("capped-engine period %v != default %v", got.Period, want.Period)
	}
}

func TestInstanceKeyIsModelFreeSuffixOfCanonicalKey(t *testing.T) {
	// The store content-addresses instances by InstanceKey; the task key of
	// every model must be the model prefix plus exactly that content string,
	// so the two serializations cannot drift apart.
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(t, rng, []int{2, 3, 2}, 5, 15)
	_, content := InstanceKey(inst)
	if content == "" {
		t.Fatal("empty instance key")
	}
	for _, cm := range model.Models() {
		_, task := canonicalKey(Task{Inst: inst, Model: cm})
		if want := strconv.Itoa(int(cm)) + content; task != want {
			t.Fatalf("model %s: task key is not model prefix + instance content", cm)
		}
	}
	h1, k1 := InstanceKey(inst)
	h2, k2 := InstanceKey(inst)
	if h1 != h2 || k1 != k2 {
		t.Fatal("InstanceKey not stable")
	}
	other := randomInstance(t, rng, []int{2, 3, 2}, 5, 15)
	if _, k3 := InstanceKey(other); k3 == k1 {
		t.Fatal("distinct instances collided (times differ with probability ~1)")
	}
}

// TestCacheMetricsConsistentUnderConcurrentScrapes is the /metrics
// consistency regression test (run under -race in CI): while batches churn a
// deliberately tiny cache through constant eviction, every scrape must see
// monotone lookup (hits+misses) and insert (entries+evictions) totals, and
// an entry count within the bound. Before evictions moved under the shard
// locks, a scrape could observe an eviction without its insert and the
// derived totals went backwards between scrapes.
func TestCacheMetricsConsistentUnderConcurrentScrapes(t *testing.T) {
	eng := New(Options{Workers: 2, CacheEntries: 8})
	tasks := randomTasks(t, 23, 96)
	quit := make(chan struct{})
	done := make(chan struct{})
	var scrapeErr atomic.Value
	go func() {
		defer close(done)
		var lastLookups, lastInserts int64
		for i := 0; ; i++ {
			select {
			case <-quit:
				return
			default:
			}
			m := eng.CacheMetrics()
			lookups := m.Hits + m.Misses
			inserts := m.Entries + m.Evictions
			if lookups < lastLookups {
				scrapeErr.Store(fmt.Sprintf("scrape %d: hits+misses went backwards (%d -> %d)", i, lastLookups, lookups))
				return
			}
			if inserts < lastInserts {
				scrapeErr.Store(fmt.Sprintf("scrape %d: entries+evictions went backwards (%d -> %d)", i, lastInserts, inserts))
				return
			}
			if m.Entries > int64(m.Capacity) {
				scrapeErr.Store(fmt.Sprintf("scrape %d: %d entries over capacity %d", i, m.Entries, m.Capacity))
				return
			}
			lastLookups, lastInserts = lookups, inserts
		}
	}()
	for round := 0; round < 6; round++ {
		if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
			t.Fatal(err)
		}
	}
	close(quit)
	<-done
	if msg := scrapeErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if m := eng.CacheMetrics(); m.Evictions == 0 {
		t.Fatalf("workload of %d tasks over an 8-entry cache produced no evictions", len(tasks))
	}
}

func TestMemoCacheCollisionSafety(t *testing.T) {
	// Two distinct canonical strings forced onto the same hash must coexist:
	// the stored-key comparison, not the hash, decides a hit.
	c := newMemoCache(DefaultCacheEntries)
	const h = uint64(42)
	resA := core.Result{PathCount: 1}
	resB := core.Result{PathCount: 2}
	c.put(h, "instance-A", resA)
	c.put(h, "instance-B", resB)
	if got, ok := c.get(h, "instance-A"); !ok || got.PathCount != 1 {
		t.Fatalf("entry A: got %+v ok=%v", got, ok)
	}
	if got, ok := c.get(h, "instance-B"); !ok || got.PathCount != 2 {
		t.Fatalf("entry B: got %+v ok=%v", got, ok)
	}
	if _, ok := c.get(h, "instance-C"); ok {
		t.Fatal("phantom hit on colliding hash with unknown key")
	}
}
