// Package engine is the concurrent batch-evaluation subsystem: a fixed
// worker pool with work-stealing over index ranges, context cancellation,
// and a memoization cache keyed by the canonical form of an instance.
//
// Every experiment of the paper — Table 2 (thousands of random instances),
// the mapping-search comparison (thousands of candidate mappings), the
// runtime sweep, the Monte-Carlo perturbation study — is a large batch of
// independent (instance, model) period evaluations. The engine turns those
// batches into deterministic parallel work:
//
//   - Determinism. Results are written to the output slice at the input
//     index, so the caller sees the exact serial order no matter how the
//     workers interleave; all arithmetic stays exact (rat.Rat), so a
//     parallel batch is bit-identical to the serial loop.
//
//   - Work stealing. The index range [0, n) is split into one contiguous
//     span per worker; a worker pops from the front of its own span and,
//     when empty, steals from the back of a victim's span. Both ends are a
//     single packed atomic, so the hot path is one CAS and uneven batches
//     (strict-model TPN evaluations vary by orders of magnitude) balance
//     without a central queue.
//
//   - Memoization. Mapping search revisits the same replica partition many
//     times (greedy enlargement, hill-climbing moves, annealing), and a
//     partition's period does not depend on which heuristic proposed it.
//     Evaluate canonicalizes the instance (model, replication vector, exact
//     operation times) into a key and computes each distinct instance once.
//     The cache is sharded 64 ways and indexed by a 64-bit hash computed
//     while the key is built — a lookup never re-hashes the multi-KB
//     canonical string — but every hit still compares the stored canonical
//     string, so a hash collision cannot silently return the wrong period.
//
//   - Solver reuse. Every evaluation borrows a core.Solver from a pool
//     owned by the engine: the unfolded net, the cycle-ratio system and the
//     contraction/Karp workspace are reused across tasks instead of being
//     rebuilt per call, which removes the allocation churn that dominated
//     strict-model batches.
package engine

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/model"
)

// Options configures an Engine.
type Options struct {
	// Workers is the fixed worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the number of memoized results; 0 means
	// DefaultCacheEntries, negative disables memoization entirely. The
	// bound is exact — once reached, per-shard CLOCK eviction recycles the
	// coldest entries — so a resident process (cmd/serve) holds at most
	// CacheEntries results no matter how many distinct instances it sees.
	CacheEntries int
	// MaxRows caps the unfolded-TPN size of the engine's solvers; 0 means
	// the package default (tpn.MaxRows = 20000). Campaigns that can afford
	// the memory may raise it — solver storage is reused across tasks, so a
	// large net is paid for once per worker, not once per evaluation.
	MaxRows int
	// Backend selects the exact maximum-cycle-ratio engine of every solver
	// in the pool (cycles.BackendAuto, the zero value, routes by token-edge
	// share: Karp where contraction shrinks the graph, Howard where it
	// would degenerate). All backends are exact, so batch results are
	// bit-identical across backends — the choice only moves wall time.
	Backend cycles.Backend
}

// DefaultCacheEntries is the memo-cache bound used when Options leaves
// CacheEntries zero. At roughly a hundred bytes per entry the default
// stays within a few MiB while covering every candidate a mapping search
// typically revisits.
const DefaultCacheEntries = 1 << 15

// Engine evaluates batches of (instance, model) tasks on a fixed worker
// pool. It is safe for concurrent use; the memo cache and the solver pool
// are shared by all batches evaluated through the same Engine.
type Engine struct {
	workers int
	backend cycles.Backend
	cache   *memoCache // nil when memoization is disabled
	solvers sync.Pool  // *core.Solver, one borrowed per in-flight evaluation
	hits    atomic.Int64
	misses  atomic.Int64
}

// New builds an Engine. The zero Options give a GOMAXPROCS-sized pool with
// the default memo cache.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	maxRows := opts.MaxRows
	backend := opts.Backend
	e := &Engine{workers: w, backend: backend}
	e.solvers.New = func() any {
		s := core.NewSolver()
		s.MaxRows = maxRows
		s.Backend = backend
		return s
	}
	switch {
	case opts.CacheEntries < 0:
		// memoization disabled
	case opts.CacheEntries == 0:
		e.cache = newMemoCache(DefaultCacheEntries)
	default:
		e.cache = newMemoCache(opts.CacheEntries)
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Backend returns the backend the engine's solvers were configured with.
// Search layers consult it to decide whether float screening is on: only
// cycles.BackendFloatScreen opts a batch into the ApproxBatch-then-exact
// protocol.
func (e *Engine) Backend() cycles.Backend { return e.backend }

// CacheStats returns the cumulative memo-cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// CacheMetrics is a point-in-time snapshot of the memo cache, the numbers
// the service layer exports on /metrics.
type CacheMetrics struct {
	// Hits and Misses count lookups since the engine was built.
	Hits, Misses int64
	// Evictions counts entries recycled by the CLOCK hand after the bound
	// filled; zero until the working set outgrows CacheEntries.
	Evictions int64
	// Entries is the current number of cached results; never exceeds
	// Capacity.
	Entries int64
	// Capacity is the configured bound (0 when memoization is disabled).
	Capacity int
}

// CacheMetrics snapshots the cache counters. Entries and Evictions are read
// per shard under that shard's lock, and within a shard both only change
// under the same lock, so the derived insert total (Entries + Evictions) is
// monotone across snapshots — a scrape can never observe an eviction whose
// insert it has not also observed. Hits and Misses are monotone atomics, so
// their sum is monotone too; no scraped total ever goes backwards.
func (e *Engine) CacheMetrics() CacheMetrics {
	m := CacheMetrics{Hits: e.hits.Load(), Misses: e.misses.Load()}
	if e.cache != nil {
		m.Entries, m.Evictions = e.cache.metrics()
		m.Capacity = e.cache.cap
	}
	return m
}

// CanonicalKey exposes the memo key of a task — the canonical serialization
// of everything its period depends on, plus the 64-bit hash computed along
// the way. The service layer coalesces concurrent identical requests on this
// key.
func CanonicalKey(t Task) (hash uint64, key string) { return canonicalKey(t) }

// InstanceKey is the model-independent half of the canonical key: the exact
// serialization of an instance's replication structure and operation times,
// plus its 64-bit FNV-1a hash. Two instances with equal InstanceKey strings
// are interchangeable in every evaluation under every model — it is the
// content address the instance store registers instances under.
func InstanceKey(inst *model.Instance) (hash uint64, key string) {
	k := keyHasher{h: fnvOffset64}
	k.b.Grow(16 * inst.NumStages() * inst.MaxReplication())
	writeInstanceKey(&k, inst)
	return k.h, k.b.String()
}

// Task is one period evaluation: an instance under a communication model.
type Task struct {
	Inst  *model.Instance
	Model model.CommModel
}

// Outcome is the result of one Task. Err carries per-task failures (for
// example tpn.ErrTooLarge on an instance the unfolded method cannot hold);
// batch-level failures such as cancellation are reported by EvaluateBatch
// itself.
type Outcome struct {
	Result core.Result
	Err    error
}

// Evaluate computes the period of a single task on a pooled solver,
// consulting and filling the memo cache. The returned Result is identical
// to core.Period on the same arguments.
func (e *Engine) Evaluate(t Task) (core.Result, error) {
	if e.cache == nil {
		return e.evaluateSolver(t)
	}
	h, k := canonicalKey(t)
	return e.EvaluateKeyed(h, k, t)
}

// EvaluateKeyed is Evaluate for callers that already hold the task's
// canonical key (see CanonicalKey) — the service computes it for request
// coalescing and must not pay the multi-KB serialization twice per request.
func (e *Engine) EvaluateKeyed(h uint64, k string, t Task) (core.Result, error) {
	if e.cache == nil {
		return e.evaluateSolver(t)
	}
	if res, ok := e.cache.get(h, k); ok {
		e.hits.Add(1)
		return res, nil
	}
	e.misses.Add(1)
	res, err := e.evaluateSolver(t)
	if err != nil {
		return res, err // errors are deterministic but cheap to rediscover
	}
	e.cache.put(h, k, res)
	return res, nil
}

// evaluateSolver runs the actual period computation on a pooled solver;
// cache hits never get here, so they skip the pool round-trip entirely.
func (e *Engine) evaluateSolver(t Task) (core.Result, error) {
	s := e.solvers.Get().(*core.Solver)
	defer e.solvers.Put(s)
	return s.Period(t.Inst, t.Model)
}

// ApproxOutcome is the result of one float-screening evaluation: an
// enclosure of the task's exact period, or the error the exact path would
// also report (the float sweep fails exactly when the exact engines do).
type ApproxOutcome struct {
	Period cycles.FloatResult
	Err    error
}

// EvaluateApprox computes a float64 enclosure of a task's period on a pooled
// solver. Enclosures are never memoized: the cache stores exact Results
// only, so a cached exact period can never be displaced by (or confused
// with) a screening estimate.
func (e *Engine) EvaluateApprox(t Task) (cycles.FloatResult, error) {
	s := e.solvers.Get().(*core.Solver)
	defer e.solvers.Put(s)
	return s.PeriodApprox(t.Inst, t.Model)
}

// ApproxBatch evaluates float enclosures for tasks on the worker pool;
// out[i] corresponds to tasks[i] exactly as in EvaluateBatch. The float
// sweep is deterministic (IEEE 754 operations in a fixed order), so out is
// bit-identical at any worker count.
func (e *Engine) ApproxBatch(ctx context.Context, tasks []Task) ([]ApproxOutcome, error) {
	out := make([]ApproxOutcome, len(tasks))
	err := e.ForEach(ctx, len(tasks), func(i int) {
		fr, err := e.EvaluateApprox(tasks[i])
		out[i] = ApproxOutcome{Period: fr, Err: err}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvaluateBatch evaluates tasks on the worker pool. out[i] always
// corresponds to tasks[i]; ordering and values are bit-identical to calling
// core.Period serially in index order. The only batch-level error is
// cancellation: when ctx is done the partial outcomes are discarded and
// ctx.Err() is returned.
func (e *Engine) EvaluateBatch(ctx context.Context, tasks []Task) ([]Outcome, error) {
	out := make([]Outcome, len(tasks))
	err := e.ForEach(ctx, len(tasks), func(i int) {
		res, err := e.Evaluate(tasks[i])
		out[i] = Outcome{Result: res, Err: err}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on the worker pool with work
// stealing. fn must be safe for concurrent invocation on distinct indices;
// every index is executed at most once, and exactly once when ForEach
// returns nil. On cancellation in-flight calls finish, remaining indices
// are skipped, and ctx.Err() is returned.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	if n > math.MaxInt32 {
		// The packed-span representation holds 32-bit bounds; batches this
		// large are already balanced by a shared counter alone.
		return e.forEachCounter(ctx, n, fn, workers)
	}
	spans := newSpans(n, workers)
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				idx, ok := spans[self].popFront()
				if !ok {
					idx, ok = steal(spans, self)
				}
				if !ok {
					return
				}
				fn(idx)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// forEachCounter dispatches indices from one shared atomic counter — the
// fallback for batches too large for packed 32-bit spans.
func (e *Engine) forEachCounter(ctx context.Context, n int, fn func(i int), workers int) error {
	var next atomic.Int64
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// span is a contiguous index range [lo, hi) with both bounds packed into a
// single atomic word: the owner pops lo forward, thieves pop hi backward,
// and one CAS decides every pop race.
type span struct {
	bounds atomic.Int64
	// pad the spans apart so owner and thief CAS loops on neighboring
	// workers do not false-share a cache line.
	_ [7]int64
}

func pack(lo, hi int32) int64       { return int64(hi)<<32 | int64(uint32(lo)) }
func unpack(v int64) (lo, hi int32) { return int32(uint32(v)), int32(v >> 32) }

// newSpans splits [0, n) into one near-even contiguous span per worker.
func newSpans(n, workers int) []*span {
	spans := make([]*span, workers)
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		s := &span{}
		s.bounds.Store(pack(int32(lo), int32(hi)))
		spans[w] = s
		lo = hi
	}
	return spans
}

// popFront claims the owner-side index of the span.
func (s *span) popFront() (int, bool) {
	for {
		v := s.bounds.Load()
		lo, hi := unpack(v)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(v, pack(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// popBack claims the thief-side index of the span.
func (s *span) popBack() (int, bool) {
	for {
		v := s.bounds.Load()
		lo, hi := unpack(v)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(v, pack(lo, hi-1)) {
			return int(hi - 1), true
		}
	}
}

// steal scans the other workers' spans (starting after self, wrapping) and
// claims an index from the back of the first non-empty victim.
func steal(spans []*span, self int) (int, bool) {
	for off := 1; off < len(spans); off++ {
		victim := spans[(self+off)%len(spans)]
		if idx, ok := victim.popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// keyHasher accumulates the canonical key string and its 64-bit FNV-1a hash
// in one pass, so the cache never has to re-hash a multi-KB key at lookup
// time.
type keyHasher struct {
	b strings.Builder
	h uint64
}

func (k *keyHasher) writeString(s string) {
	k.b.WriteString(s)
	for i := 0; i < len(s); i++ {
		k.h = (k.h ^ uint64(s[i])) * fnvPrime64
	}
}

func (k *keyHasher) writeByte(c byte) {
	k.b.WriteByte(c)
	k.h = (k.h ^ uint64(c)) * fnvPrime64
}

// canonicalKey serializes everything the period depends on — the model, the
// replication vector and the exact operation times — into a canonical
// string plus its hash. Processor ids and display names are deliberately
// excluded: two mappings that induce the same timed structure share one
// cache entry. The full string is stored alongside the hash and compared on
// every hit, so a hash collision costs a string compare, never a wrong
// period.
func canonicalKey(t Task) (uint64, string) {
	inst := t.Inst
	k := keyHasher{h: fnvOffset64}
	k.b.Grow(16*inst.NumStages()*inst.MaxReplication() + 2)
	k.writeString(strconv.Itoa(int(t.Model)))
	writeInstanceKey(&k, inst)
	return k.h, k.b.String()
}

// writeInstanceKey appends the instance-content part of the canonical key:
// the replication vector (implied by the separators) and the exact operation
// times, in a fixed order.
func writeInstanceKey(k *keyHasher, inst *model.Instance) {
	n := inst.NumStages()
	for i := 0; i < n; i++ {
		k.writeByte('|')
		for a := 0; a < inst.Replication(i); a++ {
			k.writeString(inst.CompTime(i, a).String())
			k.writeByte(',')
		}
	}
	for i := 0; i < n-1; i++ {
		k.writeByte('/')
		for a := 0; a < inst.Replication(i); a++ {
			for bb := 0; bb < inst.Replication(i+1); bb++ {
				k.writeString(inst.CommTime(i, a, bb).String())
				k.writeByte(',')
			}
		}
	}
}

// memoShardCount is the number of independent cache shards. 64 shards keep
// mutex pressure negligible for pools of up to dozens of workers while the
// per-shard stores stay small.
const memoShardCount = 64

// memoCache is a bounded concurrent map, sharded by key hash to keep mutex
// pressure off the worker pool. The global bound is split exactly across
// the shards (shard i gets cap/64, the first cap%64 shards one more), so
// the total entry count can never exceed cap; once a shard's quota fills, a
// CLOCK hand recycles its coldest slot. Which entries survive depends on
// worker interleaving, but that only moves the hit rate: a hit returns the
// same Result a fresh computation would, so cache state never affects what
// a batch returns.
type memoCache struct {
	cap    int
	shards [memoShardCount]memoShard
}

// memoShard is one CLOCK ring: entries live in fixed slots of a quota-bound
// slice, index maps each 64-bit key hash to the slots holding it (a tiny
// chain, so a full-hash collision still resolves by string compare), and
// hand is the CLOCK pointer that sweeps slots looking for an unreferenced
// victim. evictions lives on the shard — not in a cache-global atomic — so a
// metrics snapshot can read it and len(entries) under one lock acquisition
// and never observe the counters mid-replacement.
type memoShard struct {
	mu        sync.RWMutex
	index     map[uint64][]int32
	entries   []memoEntry
	quota     int32 // max len(entries) for this shard
	hand      int32
	evictions int64 // CLOCK replacements, guarded by mu
	// pad the shards apart so neighboring shard locks do not false-share a
	// cache line.
	_ [4]uint64
}

// memoEntry stores the full canonical key next to the result: the index is
// keyed by hash, and the key comparison on hit is what makes collisions
// harmless. ref is the CLOCK reference bit — set on every hit (atomically,
// so reads stay under the shard's read lock), cleared as the hand sweeps
// past; a slot whose bit is already clear is the next victim.
type memoEntry struct {
	hash uint64
	key  string
	res  core.Result
	ref  atomic.Bool
}

func newMemoCache(capacity int) *memoCache {
	c := &memoCache{cap: capacity}
	base, extra := capacity/memoShardCount, capacity%memoShardCount
	for i := range c.shards {
		sh := &c.shards[i]
		sh.index = make(map[uint64][]int32)
		sh.quota = int32(base)
		if i < extra {
			sh.quota++
		}
	}
	return c
}

func (c *memoCache) get(h uint64, k string) (core.Result, bool) {
	sh := &c.shards[h%memoShardCount]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, slot := range sh.index[h] {
		if e := &sh.entries[slot]; e.key == k {
			e.ref.Store(true)
			return e.res, true
		}
	}
	return core.Result{}, false
}

func (c *memoCache) put(h uint64, k string, res core.Result) {
	sh := &c.shards[h%memoShardCount]
	if sh.quota == 0 {
		return // capacities below the shard count leave some shards empty
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, slot := range sh.index[h] {
		if sh.entries[slot].key == k {
			return // raced with another worker computing the same task
		}
	}
	if int32(len(sh.entries)) < sh.quota {
		sh.entries = append(sh.entries, memoEntry{})
		slot := int32(len(sh.entries) - 1)
		e := &sh.entries[slot]
		e.hash, e.key, e.res = h, k, res
		e.ref.Store(true)
		sh.index[h] = append(sh.index[h], slot)
		return
	}
	// Quota full: advance the CLOCK hand, clearing reference bits, until a
	// cold slot turns up. After one full sweep every bit is clear, so the
	// loop finds a victim within two revolutions.
	for {
		e := &sh.entries[sh.hand]
		victim := sh.hand
		sh.hand = (sh.hand + 1) % int32(len(sh.entries))
		if e.ref.CompareAndSwap(true, false) {
			continue
		}
		sh.dropFromIndex(e.hash, victim)
		e.hash, e.key, e.res = h, k, res
		e.ref.Store(true)
		sh.index[h] = append(sh.index[h], victim)
		sh.evictions++
		return
	}
}

// metrics sums entries and evictions across the shards, reading each shard
// under its lock. Entry slots are only appended (CLOCK replaces in place),
// and evictions only increment under the same lock, so each shard's
// contribution to entries+evictions — its cumulative insert count — is
// internally consistent and monotone; the cross-shard sum of monotone terms
// is monotone.
func (c *memoCache) metrics() (entries, evictions int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		entries += int64(len(sh.entries))
		evictions += sh.evictions
		sh.mu.RUnlock()
	}
	return entries, evictions
}

// dropFromIndex removes one slot from the hash's chain (swap-remove; the
// chains are almost always length 1).
func (sh *memoShard) dropFromIndex(h uint64, slot int32) {
	chain := sh.index[h]
	for i, s := range chain {
		if s == slot {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(sh.index, h)
	} else {
		sh.index[h] = chain
	}
}

// size returns the total number of cached entries (tests only).
func (c *memoCache) size() int {
	entries, _ := c.metrics()
	return int(entries)
}
