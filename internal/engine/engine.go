// Package engine is the concurrent batch-evaluation subsystem: a fixed
// worker pool with work-stealing over index ranges, context cancellation,
// and a memoization cache keyed by the canonical form of an instance.
//
// Every experiment of the paper — Table 2 (thousands of random instances),
// the mapping-search comparison (thousands of candidate mappings), the
// runtime sweep, the Monte-Carlo perturbation study — is a large batch of
// independent (instance, model) period evaluations. The engine turns those
// batches into deterministic parallel work:
//
//   - Determinism. Results are written to the output slice at the input
//     index, so the caller sees the exact serial order no matter how the
//     workers interleave; all arithmetic stays exact (rat.Rat), so a
//     parallel batch is bit-identical to the serial loop.
//
//   - Work stealing. The index range [0, n) is split into one contiguous
//     span per worker; a worker pops from the front of its own span and,
//     when empty, steals from the back of a victim's span. Both ends are a
//     single packed atomic, so the hot path is one CAS and uneven batches
//     (strict-model TPN evaluations vary by orders of magnitude) balance
//     without a central queue.
//
//   - Memoization. Mapping search revisits the same replica partition many
//     times (greedy enlargement, hill-climbing moves, annealing), and a
//     partition's period does not depend on which heuristic proposed it.
//     Evaluate canonicalizes the instance (model, replication vector, exact
//     operation times) into a key and computes each distinct instance once.
//     Keys are the full canonical string, not a hash, so a collision cannot
//     silently return the wrong period.
package engine

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
)

// Options configures an Engine.
type Options struct {
	// Workers is the fixed worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheCapacity bounds the number of memoized results; 0 means
	// DefaultCacheCapacity, negative disables memoization entirely.
	CacheCapacity int
}

// DefaultCacheCapacity is the memo-cache bound used when Options leaves
// CacheCapacity zero. At roughly a hundred bytes per entry the default
// stays within a few MiB while covering every candidate a mapping search
// typically revisits.
const DefaultCacheCapacity = 1 << 15

// Engine evaluates batches of (instance, model) tasks on a fixed worker
// pool. It is safe for concurrent use; the memo cache is shared by all
// batches evaluated through the same Engine.
type Engine struct {
	workers int
	cache   *memoCache // nil when memoization is disabled
	hits    atomic.Int64
	misses  atomic.Int64
}

// New builds an Engine. The zero Options give a GOMAXPROCS-sized pool with
// the default memo cache.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: w}
	switch {
	case opts.CacheCapacity < 0:
		// memoization disabled
	case opts.CacheCapacity == 0:
		e.cache = newMemoCache(DefaultCacheCapacity)
	default:
		e.cache = newMemoCache(opts.CacheCapacity)
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// CacheStats returns the cumulative memo-cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// Task is one period evaluation: an instance under a communication model.
type Task struct {
	Inst  *model.Instance
	Model model.CommModel
}

// Outcome is the result of one Task. Err carries per-task failures (for
// example tpn.ErrTooLarge on an instance the unfolded method cannot hold);
// batch-level failures such as cancellation are reported by EvaluateBatch
// itself.
type Outcome struct {
	Result core.Result
	Err    error
}

// Evaluate computes the period of a single task, consulting and filling the
// memo cache. The returned Result is identical to core.Period on the same
// arguments.
func (e *Engine) Evaluate(t Task) (core.Result, error) {
	if e.cache == nil {
		return core.Period(t.Inst, t.Model)
	}
	k := canonicalKey(t)
	if res, ok := e.cache.get(k); ok {
		e.hits.Add(1)
		return res, nil
	}
	e.misses.Add(1)
	res, err := core.Period(t.Inst, t.Model)
	if err != nil {
		return res, err // errors are deterministic but cheap to rediscover
	}
	e.cache.put(k, res)
	return res, nil
}

// EvaluateBatch evaluates tasks on the worker pool. out[i] always
// corresponds to tasks[i]; ordering and values are bit-identical to calling
// core.Period serially in index order. The only batch-level error is
// cancellation: when ctx is done the partial outcomes are discarded and
// ctx.Err() is returned.
func (e *Engine) EvaluateBatch(ctx context.Context, tasks []Task) ([]Outcome, error) {
	out := make([]Outcome, len(tasks))
	err := e.ForEach(ctx, len(tasks), func(i int) {
		res, err := e.Evaluate(tasks[i])
		out[i] = Outcome{Result: res, Err: err}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on the worker pool with work
// stealing. fn must be safe for concurrent invocation on distinct indices;
// every index is executed at most once, and exactly once when ForEach
// returns nil. On cancellation in-flight calls finish, remaining indices
// are skipped, and ctx.Err() is returned.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	if n > math.MaxInt32 {
		// The packed-span representation holds 32-bit bounds; batches this
		// large are already balanced by a shared counter alone.
		return e.forEachCounter(ctx, n, fn, workers)
	}
	spans := newSpans(n, workers)
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				idx, ok := spans[self].popFront()
				if !ok {
					idx, ok = steal(spans, self)
				}
				if !ok {
					return
				}
				fn(idx)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// forEachCounter dispatches indices from one shared atomic counter — the
// fallback for batches too large for packed 32-bit spans.
func (e *Engine) forEachCounter(ctx context.Context, n int, fn func(i int), workers int) error {
	var next atomic.Int64
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// span is a contiguous index range [lo, hi) with both bounds packed into a
// single atomic word: the owner pops lo forward, thieves pop hi backward,
// and one CAS decides every pop race.
type span struct {
	bounds atomic.Int64
	// pad the spans apart so owner and thief CAS loops on neighboring
	// workers do not false-share a cache line.
	_ [7]int64
}

func pack(lo, hi int32) int64       { return int64(hi)<<32 | int64(uint32(lo)) }
func unpack(v int64) (lo, hi int32) { return int32(uint32(v)), int32(v >> 32) }

// newSpans splits [0, n) into one near-even contiguous span per worker.
func newSpans(n, workers int) []*span {
	spans := make([]*span, workers)
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		s := &span{}
		s.bounds.Store(pack(int32(lo), int32(hi)))
		spans[w] = s
		lo = hi
	}
	return spans
}

// popFront claims the owner-side index of the span.
func (s *span) popFront() (int, bool) {
	for {
		v := s.bounds.Load()
		lo, hi := unpack(v)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(v, pack(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// popBack claims the thief-side index of the span.
func (s *span) popBack() (int, bool) {
	for {
		v := s.bounds.Load()
		lo, hi := unpack(v)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(v, pack(lo, hi-1)) {
			return int(hi - 1), true
		}
	}
}

// steal scans the other workers' spans (starting after self, wrapping) and
// claims an index from the back of the first non-empty victim.
func steal(spans []*span, self int) (int, bool) {
	for off := 1; off < len(spans); off++ {
		victim := spans[(self+off)%len(spans)]
		if idx, ok := victim.popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}

// canonicalKey serializes everything the period depends on — the model, the
// replication vector and the exact operation times — into a canonical
// string. Processor ids and display names are deliberately excluded: two
// mappings that induce the same timed structure share one cache entry.
func canonicalKey(t Task) string {
	inst := t.Inst
	n := inst.NumStages()
	var b strings.Builder
	b.Grow(16 * n * inst.MaxReplication())
	b.WriteString(strconv.Itoa(int(t.Model)))
	for i := 0; i < n; i++ {
		b.WriteByte('|')
		for a := 0; a < inst.Replication(i); a++ {
			b.WriteString(inst.CompTime(i, a).String())
			b.WriteByte(',')
		}
	}
	for i := 0; i < n-1; i++ {
		b.WriteByte('/')
		for a := 0; a < inst.Replication(i); a++ {
			for bb := 0; bb < inst.Replication(i+1); bb++ {
				b.WriteString(inst.CommTime(i, a, bb).String())
				b.WriteByte(',')
			}
		}
	}
	return b.String()
}

// memoCache is a bounded concurrent map. When full it stops inserting
// rather than evicting. Which entries land before the bound fills depends
// on worker interleaving, but that only moves the hit rate: a hit returns
// the same Result a fresh computation would, so cache state never affects
// what a batch returns.
type memoCache struct {
	mu  sync.RWMutex
	cap int
	m   map[string]core.Result
}

func newMemoCache(capacity int) *memoCache {
	return &memoCache{cap: capacity, m: make(map[string]core.Result)}
}

func (c *memoCache) get(k string) (core.Result, bool) {
	c.mu.RLock()
	res, ok := c.m[k]
	c.mu.RUnlock()
	return res, ok
}

func (c *memoCache) put(k string, res core.Result) {
	c.mu.Lock()
	if len(c.m) < c.cap {
		c.m[k] = res
	}
	c.mu.Unlock()
}
