// Package examplesdata provides the reference instances of the paper:
// Example A (Figure 2), Example B (Figure 6), Example C (Figure 11) and the
// 4-stage pipeline of Figure 1.
//
// The numeric constants of Examples A and B were recovered by exhaustive
// constraint solving against every number the paper reports (see package
// repro/internal/reconstruct and cmd/reconstruct):
//
//   - Example B is determined up to a cyclic relabeling of processors:
//     exactly 4 solutions exist, all isomorphic; the first is used here. All
//     computation times are 100 and seven of the twelve link times are 1000,
//     matching the label multiset of Figure 6 exactly.
//
//   - Example A is genuinely underdetermined by the reported numbers (the
//     paper's published values pin P0's link times, P2's computation and
//     link times, and the two F1 row sets, but many assignments of the
//     remaining labels reproduce every figure). The lexicographically
//     smallest solution is used, fixed once and for all here.
//
// Both instances reproduce, exactly:
//
//	Example A: overlap period 189 (critical: P0's output port);
//	           strict Mct = 1295/6 ≈ 215.8 at P2 < period 1384/6 ≈ 230.7.
//	Example B: overlap Mct = 3100/12 ≈ 258.3 (P2's output port)
//	           < period 3500/12 ≈ 291.7 — no critical resource.
package examplesdata

import (
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/rat"
)

// ri abbreviates rat.FromInt for the tables below.
func ri(x int64) rat.Rat { return rat.FromInt(x) }

// ExampleA returns the canonical reconstruction of the paper's Example A:
// a 4-stage pipeline mapped onto 7 processors as
// S0 -> {P0}, S1 -> {P1, P2}, S2 -> {P3, P4, P5}, S3 -> {P6}.
func ExampleA() *model.Instance {
	comp := [][]rat.Rat{
		{ri(22)},                    // S0: P0
		{ri(104), ri(128)},          // S1: P1, P2
		{ri(126), ri(146), ri(147)}, // S2: P3, P4, P5
		{ri(23)},                    // S3: P6
	}
	comm := [][][]rat.Rat{
		// F0: P0 -> {P1, P2}
		{{ri(186), ri(192)}},
		// F1: {P1, P2} -> {P3, P4, P5}
		{
			{ri(57), ri(68), ri(77)},   // P1 -> P3, P4, P5
			{ri(13), ri(157), ri(165)}, // P2 -> P3, P4, P5
		},
		// F2: {P3, P4, P5} -> P6
		{{ri(67)}, {ri(73)}, {ri(73)}},
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic("examplesdata: ExampleA: " + err.Error())
	}
	return inst
}

// ExampleAMapping returns the replication structure of Example A, for code
// paths that want the mapping object itself (e.g. Table 1 reproduction).
func ExampleAMapping() *mapping.Mapping {
	return mapping.MustNew([][]int{{0}, {1, 2}, {3, 4, 5}, {6}}, 7)
}

// ExampleB returns the canonical reconstruction of the paper's Example B:
// two stages, S0 replicated on P0..P2 and S1 on P3..P6. Its overlap-model
// period strictly exceeds every resource cycle-time.
func ExampleB() *model.Instance {
	comp := [][]rat.Rat{
		{ri(100), ri(100), ri(100)},          // S0: P0, P1, P2
		{ri(100), ri(100), ri(100), ri(100)}, // S1: P3..P6
	}
	comm := [][][]rat.Rat{
		{
			{ri(1000), ri(100), ri(100), ri(1000)},  // P0 -> P3..P6
			{ri(100), ri(100), ri(1000), ri(1000)},  // P1 -> P3..P6
			{ri(1000), ri(1000), ri(1000), ri(100)}, // P2 -> P3..P6
		},
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic("examplesdata: ExampleB: " + err.Error())
	}
	return inst
}

// ExampleBMapping returns the replication structure of Example B.
func ExampleBMapping() *mapping.Mapping {
	return mapping.MustNew([][]int{{0, 1, 2}, {3, 4, 5, 6}}, 7)
}

// ExampleC returns an instance with the paper's Example C replication
// structure (Figure 11): four stages replicated on 5, 21, 27 and 11
// processors. The paper uses Example C only for its combinatorial structure
// (m = 10395 paths, and for the F1 column p = 3 components of c = 55
// patterns of size u×v = 7×9), so operation times are drawn from a fixed
// seeded distribution.
func ExampleC() *model.Instance {
	rng := rand.New(rand.NewSource(2009)) // ICPP 2009
	reps := []int{5, 21, 27, 11}
	n := len(reps)
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = ri(10 + rng.Int63n(991))
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = ri(10 + rng.Int63n(991))
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic("examplesdata: ExampleC: " + err.Error())
	}
	return inst
}

// Figure1Pipeline returns the 4-stage pipeline sketch of Figure 1 with
// illustrative sizes (the figure is symbolic; sizes here are only used by
// the quickstart example).
func Figure1Pipeline() *pipeline.Pipeline {
	return pipeline.MustNew(
		[]int64{200, 1500, 800, 300}, // w0..w3 (FLOP)
		[]int64{1000, 4000, 500},     // δ0..δ2 (bytes)
	)
}
