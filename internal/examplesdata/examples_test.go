package examplesdata

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rat"
)

// TestExampleAOverlapPeriod reproduces §4.1: period 189, critical resource =
// output port of P0.
func TestExampleAOverlapPeriod(t *testing.T) {
	inst := ExampleA()
	res, err := core.Period(inst, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Period.Equal(rat.FromInt(189)) {
		t.Fatalf("overlap period = %v, want 189", res.Period)
	}
	if !res.HasCriticalResource() {
		t.Fatal("Example A overlap must have a critical resource")
	}
	crit := inst.CriticalResources(model.Overlap)
	if len(crit) != 1 || crit[0].Stage != 0 || crit[0].Proc != 0 {
		t.Fatalf("critical resources = %+v, want P0 only", crit)
	}
	if !crit[0].Cout.Equal(rat.FromInt(189)) {
		t.Fatalf("P0's critical component must be its output port (Cout=%v)", crit[0].Cout)
	}
}

// TestExampleAStrictPeriod reproduces §4.2: Mct = 215.83 = 1295/6 at P2,
// strictly below the period 230.67 = 1384/6 — no critical resource.
func TestExampleAStrictPeriod(t *testing.T) {
	inst := ExampleA()
	res, err := core.Period(inst, model.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mct.Equal(rat.New(1295, 6)) {
		t.Fatalf("strict Mct = %v, want 1295/6", res.Mct)
	}
	if !res.Period.Equal(rat.New(1384, 6)) {
		t.Fatalf("strict period = %v, want 1384/6", res.Period)
	}
	if res.HasCriticalResource() {
		t.Fatal("Example A strict must have no critical resource")
	}
	crit := inst.CriticalResources(model.Strict)
	if len(crit) != 1 || crit[0].Name != "P2" {
		t.Fatalf("strict Mct attained at %+v, want P2", crit)
	}
}

// TestExampleBNoCriticalResource reproduces §4.1 for Example B: under the
// overlap model, Mct = 258.33 = 3100/12 (P2's output port) while the period
// is 291.67 = 3500/12.
func TestExampleBNoCriticalResource(t *testing.T) {
	inst := ExampleB()
	res, err := core.Period(inst, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mct.Equal(rat.New(3100, 12)) {
		t.Fatalf("Mct = %v, want 3100/12", res.Mct)
	}
	if !res.Period.Equal(rat.New(3500, 12)) {
		t.Fatalf("period = %v, want 3500/12", res.Period)
	}
	if res.HasCriticalResource() {
		t.Fatal("Example B must have no critical resource under overlap")
	}
	crit := inst.CriticalResources(model.Overlap)
	if len(crit) != 1 || crit[0].Name != "P2" || !crit[0].Cout.Equal(res.Mct) {
		t.Fatalf("Mct must be attained by P2's output port, got %+v", crit)
	}
}

// TestExampleBMatchesFullTPN cross-checks the polynomial result against the
// general unfolded-TPN computation.
func TestExampleBMatchesFullTPN(t *testing.T) {
	inst := ExampleB()
	full, err := core.PeriodTPN(inst, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Period.Equal(rat.New(3500, 12)) {
		t.Fatalf("TPN period = %v, want 3500/12", full.Period)
	}
}

// TestExampleAPaths reproduces Table 1 (via the mapping object).
func TestExampleAPaths(t *testing.T) {
	m := ExampleAMapping()
	if m.PathCount() != 6 {
		t.Fatalf("PathCount = %d, want 6", m.PathCount())
	}
	inst := ExampleA()
	if inst.PathCount() != 6 {
		t.Fatalf("instance PathCount = %d, want 6", inst.PathCount())
	}
}

// TestExampleCStructure reproduces the combinatorial numbers of the proof of
// Theorem 1.
func TestExampleCStructure(t *testing.T) {
	inst := ExampleC()
	if inst.PathCount() != 10395 {
		t.Fatalf("PathCount = %d, want 10395", inst.PathCount())
	}
	pats := core.CommPatterns(inst)
	p1 := pats[1]
	if p1.P != 3 || p1.U != 7 || p1.V != 9 || p1.C != 55 {
		t.Fatalf("F1 pattern %+v, want p=3 u=7 v=9 c=55", p1)
	}
	// The polynomial algorithm must succeed despite m = 10395.
	if _, err := core.PeriodOverlapPoly(inst); err != nil {
		t.Fatal(err)
	}
}

// TestFigure1Pipeline sanity-checks the quickstart pipeline.
func TestFigure1Pipeline(t *testing.T) {
	p := Figure1Pipeline()
	if p.NumStages() != 4 {
		t.Fatalf("NumStages = %d", p.NumStages())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExampleALabelMultiset checks that the reconstruction uses exactly the
// 18 labels of Figure 2.
func TestExampleALabelMultiset(t *testing.T) {
	inst := ExampleA()
	counts := map[int64]int{}
	add := func(r rat.Rat) {
		if r.Den() != 1 {
			t.Fatalf("non-integer label %v", r)
		}
		counts[r.Num()]++
	}
	for i := 0; i < inst.NumStages(); i++ {
		for a := 0; a < inst.Replication(i); a++ {
			add(inst.CompTime(i, a))
		}
	}
	for i := 0; i < inst.NumStages()-1; i++ {
		for a := 0; a < inst.Replication(i); a++ {
			for b := 0; b < inst.Replication(i+1); b++ {
				add(inst.CommTime(i, a, b))
			}
		}
	}
	want := map[int64]int{147: 1, 22: 1, 104: 1, 146: 1, 23: 1, 128: 1, 73: 2, 77: 1, 68: 1, 13: 1, 57: 1, 157: 1, 67: 1, 126: 1, 165: 1, 186: 1, 192: 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("label %d appears %d times, want %d", k, counts[k], v)
		}
	}
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != 18 {
		t.Errorf("total labels = %d, want 18", total)
	}
}
