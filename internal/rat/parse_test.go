package rat

import (
	"math"
	"testing"
)

func TestParseRoundTripsString(t *testing.T) {
	cases := []Rat{
		Zero(),
		One(),
		New(-7, 3),
		New(22, 7),
		FromInt(math.MaxInt64),
		New(math.MaxInt64, math.MaxInt64-1),
		// Past int64: force the big representation through arithmetic.
		FromInt(math.MaxInt64).Mul(FromInt(math.MaxInt64)).Add(New(1, 3)),
		FromInt(math.MaxInt64).Mul(FromInt(math.MaxInt64)).Neg().Sub(New(5, 7)),
	}
	for _, r := range cases {
		s := r.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !back.Equal(r) {
			t.Fatalf("Parse(%q) = %v, want %v", s, back, r)
		}
		if back.String() != s {
			t.Fatalf("Parse(%q).String() = %q, round trip not canonical", s, back.String())
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "x", "1/", "/2", "1//2", "one half", "1/0"} {
		if v, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted as %v", s, v)
		}
	}
}
