package rat

import (
	"math"
	"testing"
)

// TestPromotionOnOverflow exercises the transparent big.Rat fallback: sums
// of many rationals with pairwise-coprime denominators exceed int64 but must
// stay exact.
func TestPromotionOnOverflow(t *testing.T) {
	primes := []int64{
		9973, 9967, 9949, 9941, 9931, 9929, 9923, 9907, 9901, 9887,
		9883, 9871, 9859, 9857, 9851, 9839, 9833, 9829, 9817, 9811,
	}
	sum := Zero()
	for _, p := range primes {
		sum = sum.Add(New(1, p))
	}
	if !sum.IsBig() {
		t.Fatal("sum of 20 coprime unit fractions should have promoted to big")
	}
	// Subtracting the terms back must return exactly to zero (and demote).
	back := sum
	for _, p := range primes {
		back = back.Sub(New(1, p))
	}
	if !back.IsZero() {
		t.Fatalf("round trip lost exactness: %v", back)
	}
	if back.IsBig() {
		t.Error("zero after demotion should use the int64 representation")
	}
	// Sanity: float value ~ 20/9900.
	if f := sum.Float64(); math.Abs(f-20.0/9900) > 1e-4 {
		t.Errorf("Float64 = %v", f)
	}
}

func TestBigComparisonsAndOrdering(t *testing.T) {
	big1 := New(1, 9973).Add(New(1, 9967)).Add(New(1, 9949)).Add(New(1, 9941)).
		Add(New(1, 9931)).Add(New(1, 9929)).Add(New(1, 9923)).Add(New(1, 9907)).
		Add(New(1, 9901)).Add(New(1, 9887))
	big2 := big1.Add(New(1, 1_000_000_007))
	if !big1.Less(big2) {
		t.Error("big ordering wrong")
	}
	if !big1.Less(One()) || big1.Less(Zero()) {
		t.Error("mixed big/small ordering wrong")
	}
	if got := Max(big1, big2); !got.Equal(big2) {
		t.Error("Max on big values wrong")
	}
}

func TestBigArithmeticLaws(t *testing.T) {
	a := New(math.MaxInt64/2, 3)
	b := New(math.MaxInt64/3, 5)
	// a*b overflows int64; the product must still satisfy (a*b)/b == a.
	p := a.Mul(b)
	if !p.IsBig() {
		t.Fatal("expected big product")
	}
	if !p.Div(b).Equal(a) {
		t.Error("(a*b)/b != a in big arithmetic")
	}
	if !p.Sub(p).IsZero() {
		t.Error("p - p != 0")
	}
	if p.Sign() != 1 || p.Neg().Sign() != -1 {
		t.Error("big Sign wrong")
	}
	if p.Neg().Neg().Cmp(p) != 0 {
		t.Error("double negation broken")
	}
}

func TestMinInt64Inputs(t *testing.T) {
	r := New(math.MinInt64, 2)
	if r.Float64() != float64(math.MinInt64)/2 {
		t.Errorf("MinInt64/2 = %v", r.Float64())
	}
	n := FromInt(math.MinInt64).Neg()
	if n.Sign() != 1 {
		t.Error("-MinInt64 should be positive")
	}
}

func TestNumDenPanicOnBig(t *testing.T) {
	a := New(math.MaxInt64/2, 3).Mul(New(math.MaxInt64/3, 5))
	defer func() {
		if recover() == nil {
			t.Error("Num on big value did not panic")
		}
	}()
	a.Num()
}

func TestBigString(t *testing.T) {
	p := New(math.MaxInt64/2, 1).Mul(New(4, 1))
	if !p.IsBig() {
		t.Fatal("expected big")
	}
	if s := p.String(); len(s) < 19 {
		t.Errorf("String = %q", s)
	}
}

// TestFloor covers the exact floor across both representations, including
// saturation when the floor does not fit int64.
func TestFloor(t *testing.T) {
	big := New(math.MaxInt64, 3).Mul(New(math.MaxInt64, 5)) // promotes
	if !big.IsBig() {
		t.Fatal("test value did not promote to big")
	}
	cases := []struct {
		r    Rat
		want int64
	}{
		{Zero(), 0},
		{New(7, 2), 3},
		{New(-7, 2), -4},
		{New(6, 3), 2},
		{New(-6, 3), -2},
		{FromInt(math.MaxInt64), math.MaxInt64},
		{big, math.MaxInt64},
		{big.Neg(), math.MinInt64},
		{One().Div(big), 0},        // tiny big-represented positive value
		{One().Div(big).Neg(), -1}, // tiny negative: floor is -1, not 0
		{big.Sub(big).Add(New(-9, 4)), -3},
	}
	for i, c := range cases {
		if got := c.r.Floor(); got != c.want {
			t.Errorf("case %d: Floor(%v) = %d, want %d", i, c.r, got, c.want)
		}
	}
}
