// Package rat implements exact rational arithmetic.
//
// Every period computation in this repository is carried out exactly: the
// paper's central experimental question is whether the steady-state period P
// strictly exceeds the maximum resource cycle-time Mct, and floating point
// noise would corrupt that strict comparison.
//
// Values use an int64 numerator/denominator fast path (input quantities are
// small integers, so this covers almost all arithmetic) and promote
// transparently to math/big.Rat when an operation would overflow — long
// Karp/Bellman accumulations over mapped platforms can produce denominators
// exceeding int64.
package rat

import (
	"fmt"
	"math"
	"math/big"
)

// Rat is an exact rational number. The zero value is 0, ready to use.
// Rats are immutable values; all operations return new Rats.
type Rat struct {
	n, d int64    // numerator/denominator in lowest terms, d > 0; used when b == nil
	b    *big.Rat // arbitrary-precision fallback (never mutated once set)
}

// Zero returns the rational 0.
func Zero() Rat { return Rat{0, 1, nil} }

// One returns the rational 1.
func One() Rat { return Rat{1, 1, nil} }

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1, nil} }

// FromFloat returns the exact rational value of f. Every finite float64 is a
// dyadic rational, so the conversion is lossless — no rounding happens here.
// ok is false for NaN and the infinities, which have no rational value. The
// float-screening layer uses it to compare float enclosure endpoints against
// exact incumbents in exact arithmetic.
func FromFloat(f float64) (Rat, bool) {
	br := new(big.Rat).SetFloat64(f)
	if br == nil {
		return Rat{}, false
	}
	return fromBig(br), true
}

// Parse converts the String form back into a Rat: "n" or "n/d" with an
// optionally signed decimal numerator and positive denominator, at any
// magnitude (values beyond int64 land on the big-rational representation,
// so Parse∘String is the identity). The wire protocol uses it to carry
// exact periods — subtree results and checkpoints round-trip through JSON
// strings without losing exactness.
func Parse(s string) (Rat, error) {
	if s == "" {
		return Rat{}, fmt.Errorf("rat: empty string")
	}
	br, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return fromBig(br), nil
}

// New returns the rational n/d in lowest terms. It panics if d == 0.
func New(n, d int64) Rat {
	if d == 0 {
		panic("rat: zero denominator")
	}
	if n == math.MinInt64 || d == math.MinInt64 {
		return fromBig(new(big.Rat).SetFrac64(n, d))
	}
	if d < 0 {
		n, d = -n, -d
	}
	g := gcd64(abs64(n), d)
	if g > 1 {
		n /= g
		d /= g
	}
	return Rat{n, d, nil}
}

// fromBig wraps a big.Rat, demoting to the int64 representation when it
// fits (keeps the fast path hot and String/Equal canonical).
func fromBig(x *big.Rat) Rat {
	if x.Num().IsInt64() && x.Denom().IsInt64() {
		return Rat{x.Num().Int64(), x.Denom().Int64(), nil}
	}
	return Rat{b: x}
}

// asBig returns the value as a big.Rat (freshly usable, never aliased into r).
func (r Rat) asBig() *big.Rat {
	if r.b != nil {
		return new(big.Rat).Set(r.b)
	}
	return new(big.Rat).SetFrac64(r.n, r.den())
}

func (r Rat) den() int64 {
	if r.d == 0 {
		return 1 // zero value normalization
	}
	return r.d
}

// IsBig reports whether the value is carried by the arbitrary-precision
// representation (exposed for tests and benchmarks).
func (r Rat) IsBig() bool { return r.b != nil }

// Num returns the numerator. It panics if the value does not fit int64
// (callers only use it on small inputs such as figure labels).
func (r Rat) Num() int64 {
	if r.b != nil {
		if !r.b.Num().IsInt64() {
			panic("rat: Num does not fit int64")
		}
		return r.b.Num().Int64()
	}
	return r.n
}

// Den returns the positive denominator, with the same caveat as Num.
func (r Rat) Den() int64 {
	if r.b != nil {
		if !r.b.Denom().IsInt64() {
			panic("rat: Den does not fit int64")
		}
		return r.b.Denom().Int64()
	}
	return r.den()
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	if r.b == nil && s.b == nil {
		rd, sd := r.den(), s.den()
		g := gcd64(rd, sd)
		if m1, ok := mul64(r.n, sd/g); ok {
			if m2, ok := mul64(s.n, rd/g); ok {
				if n, ok := add64(m1, m2); ok {
					if d, ok := mul64(rd/g, sd); ok {
						return New(n, d)
					}
				}
			}
		}
	}
	return fromBig(new(big.Rat).Add(r.asBig(), s.asBig()))
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat {
	if r.b == nil {
		if r.n == math.MinInt64 {
			return fromBig(new(big.Rat).Neg(r.asBig()))
		}
		return Rat{-r.n, r.den(), nil}
	}
	return fromBig(new(big.Rat).Neg(r.asBig()))
}

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	if r.b == nil && s.b == nil {
		// Cross-reduce before multiplying to keep intermediates small.
		rd, sd := r.den(), s.den()
		g1 := gcd64(abs64(r.n), sd)
		g2 := gcd64(abs64(s.n), rd)
		if n, ok := mul64(r.n/g1, s.n/g2); ok {
			if d, ok := mul64(rd/g2, sd/g1); ok {
				return Rat{n, d, nil}
			}
		}
	}
	return fromBig(new(big.Rat).Mul(r.asBig(), s.asBig()))
}

// Div returns r / s. It panics if s is zero.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("rat: division by zero")
	}
	if s.b == nil {
		inv := New(s.den(), s.n)
		return r.Mul(inv)
	}
	return fromBig(new(big.Rat).Quo(r.asBig(), s.asBig()))
}

// MulInt returns r * k.
func (r Rat) MulInt(k int64) Rat { return r.Mul(FromInt(k)) }

// DivInt returns r / k. It panics if k == 0.
func (r Rat) DivInt(k int64) Rat { return r.Div(FromInt(k)) }

// Cmp compares r and s and returns -1, 0, or +1.
func (r Rat) Cmp(s Rat) int {
	if r.b == nil && s.b == nil {
		if lhs, ok := mul64(r.n, s.den()); ok {
			if rhs, ok := mul64(s.n, r.den()); ok {
				switch {
				case lhs < rhs:
					return -1
				case lhs > rhs:
					return 1
				default:
					return 0
				}
			}
		}
	}
	return r.asBig().Cmp(s.asBig())
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	if r.b != nil {
		return r.b.Sign()
	}
	switch {
	case r.n < 0:
		return -1
	case r.n > 0:
		return 1
	default:
		return 0
	}
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Sign() == 0 }

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Min returns the smaller of r and s.
func Min(r, s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Sum returns the sum of all arguments.
func Sum(rs ...Rat) Rat {
	total := Zero()
	for _, r := range rs {
		total = total.Add(r)
	}
	return total
}

// MaxOf returns the maximum of a non-empty slice. It panics on empty input.
func MaxOf(rs []Rat) Rat {
	if len(rs) == 0 {
		panic("rat: MaxOf of empty slice")
	}
	m := rs[0]
	for _, r := range rs[1:] {
		m = Max(m, r)
	}
	return m
}

// Floor returns ⌊r⌋ as an int64, saturating at math.MinInt64/MaxInt64 when
// the floor lies outside the int64 range. Unlike Num/Den it is safe on
// values carried by the big-rational representation — renderers that map
// exact times to screen cells (package gantt) clamp afterwards anyway, so
// saturation is the right behavior for out-of-range values.
func (r Rat) Floor() int64 {
	if r.b == nil {
		d := r.den()
		f := r.n / d
		if r.n < 0 && r.n%d != 0 {
			f--
		}
		return f
	}
	// big.Int.Div is Euclidean division; with the always-positive
	// denominator that is exactly the floor.
	q := new(big.Int).Div(r.b.Num(), r.b.Denom())
	if !q.IsInt64() {
		if q.Sign() < 0 {
			return math.MinInt64
		}
		return math.MaxInt64
	}
	return q.Int64()
}

// Float64 returns the nearest float64 to r.
func (r Rat) Float64() float64 {
	if r.b != nil {
		f, _ := r.b.Float64()
		return f
	}
	return float64(r.n) / float64(r.den())
}

// String renders r as "n/d", or just "n" when the denominator is 1.
func (r Rat) String() string {
	if r.b != nil {
		if r.b.IsInt() {
			return r.b.Num().String()
		}
		return r.b.RatString()
	}
	if r.den() == 1 {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, r.den())
}

// abs64 returns |x| for x > math.MinInt64.
func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// gcd64 returns the greatest common divisor of non-negative a, b
// (gcd(0,0) == 1 so that it is always a safe divisor).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// add64 returns a+b and whether it did not overflow.
func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mul64 returns a*b and whether it did not overflow.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	return p, true
}

// GCDInt returns gcd(a, b) for non-negative integers, used by callers that
// need the same gcd the rational code uses (e.g. pattern decomposition).
func GCDInt(a, b int64) int64 {
	if a < 0 || b < 0 {
		panic("rat: GCDInt of negative value")
	}
	return gcd64(a, b)
}

// LCMInt returns lcm(a, b) for positive integers. It panics on overflow
// (callers guard path-count explosions explicitly).
func LCMInt(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		panic("rat: LCMInt of non-positive value")
	}
	v, ok := mul64(a/gcd64(a, b), b)
	if !ok {
		panic("rat: int64 overflow in lcm")
	}
	return v
}

// LCMAll returns the least common multiple of a non-empty list of positive
// integers.
func LCMAll(xs []int64) int64 {
	if len(xs) == 0 {
		panic("rat: LCMAll of empty slice")
	}
	l := int64(1)
	for _, x := range xs {
		l = LCMInt(l, x)
	}
	return l
}

// LCMAllChecked is LCMAll for untrusted input: instead of panicking it
// reports ok=false when the list is empty, holds a non-positive value, or
// the least common multiple overflows int64.
func LCMAllChecked(xs []int64) (int64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	l := int64(1)
	for _, x := range xs {
		if x <= 0 {
			return 0, false
		}
		v, ok := mul64(l/gcd64(l, x), x)
		if !ok {
			return 0, false
		}
		l = v
	}
	return l, true
}
