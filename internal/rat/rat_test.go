package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		n, d     int64
		wantN    int64
		wantD    int64
		wantText string
	}{
		{1, 2, 1, 2, "1/2"},
		{2, 4, 1, 2, "1/2"},
		{-2, 4, -1, 2, "-1/2"},
		{2, -4, -1, 2, "-1/2"},
		{-2, -4, 1, 2, "1/2"},
		{0, 5, 0, 1, "0"},
		{7, 1, 7, 1, "7"},
		{6, 3, 2, 1, "2"},
	}
	for _, c := range cases {
		r := New(c.n, c.d)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wantN, c.wantD)
		}
		if r.String() != c.wantText {
			t.Errorf("New(%d,%d).String() = %q, want %q", c.n, c.d, r.String(), c.wantText)
		}
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsUsable(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Fatal("zero value is not zero")
	}
	if got := r.Add(FromInt(3)); !got.Equal(FromInt(3)) {
		t.Fatalf("0 + 3 = %v", got)
	}
	if got := r.Mul(New(1, 2)); !got.IsZero() {
		t.Fatalf("0 * 1/2 = %v", got)
	}
	if r.String() != "0" {
		t.Fatalf("zero value String = %q", r.String())
	}
	if r.Den() != 1 {
		t.Fatalf("zero value Den = %d", r.Den())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got, want := half.Add(third), New(5, 6); !got.Equal(want) {
		t.Errorf("1/2 + 1/3 = %v, want %v", got, want)
	}
	if got, want := half.Sub(third), New(1, 6); !got.Equal(want) {
		t.Errorf("1/2 - 1/3 = %v, want %v", got, want)
	}
	if got, want := half.Mul(third), New(1, 6); !got.Equal(want) {
		t.Errorf("1/2 * 1/3 = %v, want %v", got, want)
	}
	if got, want := half.Div(third), New(3, 2); !got.Equal(want) {
		t.Errorf("(1/2) / (1/3) = %v, want %v", got, want)
	}
	if got, want := half.Neg(), New(-1, 2); !got.Equal(want) {
		t.Errorf("-(1/2) = %v, want %v", got, want)
	}
	if got, want := New(-3, 4).Div(New(-1, 2)), New(3, 2); !got.Equal(want) {
		t.Errorf("(-3/4)/(-1/2) = %v, want %v", got, want)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	FromInt(1).Div(Zero())
}

func TestCmpAndOrdering(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 3), 1},
		{New(1, 3), New(1, 2), -1},
		{New(2, 4), New(1, 2), 0},
		{New(-1, 2), New(1, 2), -1},
		{Zero(), New(-1, 5), 1},
		{New(7, 3), New(7, 3), 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !New(1, 3).Less(New(1, 2)) {
		t.Error("1/3 < 1/2 should hold")
	}
	if !New(1, 2).LessEq(New(1, 2)) {
		t.Error("1/2 <= 1/2 should hold")
	}
	if Max(New(1, 3), New(1, 2)) != New(1, 2) {
		t.Error("Max(1/3, 1/2) != 1/2")
	}
	if Min(New(1, 3), New(1, 2)) != New(1, 3) {
		t.Error("Min(1/3, 1/2) != 1/3")
	}
}

func TestSignAndHelpers(t *testing.T) {
	if New(-3, 7).Sign() != -1 || New(3, 7).Sign() != 1 || Zero().Sign() != 0 {
		t.Error("Sign misbehaves")
	}
	if got := Sum(New(1, 2), New(1, 3), New(1, 6)); !got.Equal(One()) {
		t.Errorf("Sum = %v, want 1", got)
	}
	if got := MaxOf([]Rat{New(1, 2), New(2, 3), New(3, 5)}); !got.Equal(New(2, 3)) {
		t.Errorf("MaxOf = %v, want 2/3", got)
	}
	if got := New(3, 4).MulInt(8); !got.Equal(FromInt(6)) {
		t.Errorf("3/4 * 8 = %v", got)
	}
	if got := FromInt(6).DivInt(4); !got.Equal(New(3, 2)) {
		t.Errorf("6/4 = %v", got)
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64(1/2) = %v", got)
	}
	if got := New(1295, 6).Float64(); math.Abs(got-215.8333333) > 1e-6 {
		t.Errorf("Float64(1295/6) = %v", got)
	}
}

func TestMaxOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxOf(nil) did not panic")
		}
	}()
	MaxOf(nil)
}

func TestLCMAndGCD(t *testing.T) {
	if got := GCDInt(21, 27); got != 3 {
		t.Errorf("GCDInt(21,27) = %d", got)
	}
	if got := LCMInt(21, 27); got != 189 {
		t.Errorf("LCMInt(21,27) = %d", got)
	}
	// Example C of the paper: replicas (5, 21, 27, 11) => m = 10395.
	if got := LCMAll([]int64{5, 21, 27, 11}); got != 10395 {
		t.Errorf("LCMAll(5,21,27,11) = %d, want 10395", got)
	}
	if got := LCMAll([]int64{1, 2, 3, 1}); got != 6 {
		t.Errorf("LCMAll(1,2,3,1) = %d, want 6", got)
	}
}

// clampSmall bounds random int64s so products of several of them stay far
// away from overflow; the property tests exercise algebraic laws, not
// overflow behaviour.
func clampSmall(x int64) int64 {
	x %= 1000
	if x == 0 {
		x = 1
	}
	return x
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		r := New(clampSmall(a), clampSmall(b))
		s := New(clampSmall(c), clampSmall(d))
		return r.Add(s).Equal(s.Add(r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		r := New(clampSmall(a), clampSmall(b))
		s := New(clampSmall(c), clampSmall(d))
		u := New(clampSmall(e), clampSmall(g))
		return r.Mul(s.Add(u)).Equal(r.Mul(s).Add(r.Mul(u)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDivInvertsMul(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		r := New(clampSmall(a), clampSmall(b))
		s := New(clampSmall(c), clampSmall(d))
		if s.IsZero() {
			return true
		}
		return r.Mul(s).Div(s).Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpAntisymmetric(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		r := New(clampSmall(a), clampSmall(b))
		s := New(clampSmall(c), clampSmall(d))
		return r.Cmp(s) == -s.Cmp(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAlwaysLowestTerms(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		r := New(clampSmall(a), clampSmall(b)).Add(New(clampSmall(c), clampSmall(d)))
		return GCDInt(absForTest(r.Num()), r.Den()) == 1 && r.Den() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func absForTest(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLCMAllChecked(t *testing.T) {
	if v, ok := LCMAllChecked([]int64{2, 3, 4}); !ok || v != 12 {
		t.Fatalf("LCMAllChecked(2,3,4) = %d, %v", v, ok)
	}
	if _, ok := LCMAllChecked(nil); ok {
		t.Fatal("empty slice reported ok")
	}
	if _, ok := LCMAllChecked([]int64{2, 0}); ok {
		t.Fatal("non-positive value reported ok")
	}
	// 16 distinct primes multiply past int64: must report overflow, and the
	// panicking LCMAll must still agree on anything that fits.
	primes := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}
	if _, ok := LCMAllChecked(primes); ok {
		t.Fatal("overflowing lcm reported ok")
	}
	if v, ok := LCMAllChecked(primes[:8]); !ok || v != LCMAll(primes[:8]) {
		t.Fatalf("checked/panicking lcm disagree: %d, %v", v, ok)
	}
}
