package model

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// twoStage builds a tiny instance: S0 on one proc (comp 4), S1 on two procs
// (comp 6 and 10), transfers t[a][b] given explicitly.
func twoStage(t *testing.T, comm [][]rat.Rat) *Instance {
	t.Helper()
	inst, err := FromTimes(
		[][]rat.Rat{{rat.FromInt(4)}, {rat.FromInt(6), rat.FromInt(10)}},
		[][][]rat.Rat{comm},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFromTimesShapes(t *testing.T) {
	if _, err := FromTimes(nil, nil); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := FromTimes([][]rat.Rat{{rat.One()}}, [][][]rat.Rat{{}}); err == nil {
		t.Error("extra comm matrix accepted")
	}
	if _, err := FromTimes(
		[][]rat.Rat{{rat.One()}, {rat.One()}},
		[][][]rat.Rat{{{rat.One(), rat.One()}}},
	); err == nil {
		t.Error("comm width mismatch accepted")
	}
	if _, err := FromTimes(
		[][]rat.Rat{{rat.One()}, {rat.FromInt(-1)}},
		[][][]rat.Rat{{{rat.One()}}},
	); err == nil {
		t.Error("negative compute time accepted")
	}
}

func TestFromMapped(t *testing.T) {
	pipe := pipeline.MustNew([]int64{10, 20}, []int64{100})
	plat := platform.Uniform(3, 5, 50)
	mapp := mapping.MustNew([][]int{{0}, {1, 2}}, 3)
	inst, err := FromMapped(pipe, plat, mapp)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.CompTime(0, 0); !got.Equal(rat.FromInt(2)) {
		t.Errorf("CompTime(0,0) = %v, want 2", got)
	}
	if got := inst.CompTime(1, 1); !got.Equal(rat.FromInt(4)) {
		t.Errorf("CompTime(1,1) = %v, want 4", got)
	}
	if got := inst.CommTime(0, 0, 1); !got.Equal(rat.FromInt(2)) {
		t.Errorf("CommTime = %v, want 2", got)
	}
	if inst.ProcID(1, 1) != 2 || inst.ProcName(1, 1) != "P2" {
		t.Errorf("proc identity wrong: %d %s", inst.ProcID(1, 1), inst.ProcName(1, 1))
	}
	if inst.PathCount() != 2 {
		t.Errorf("PathCount = %d", inst.PathCount())
	}
}

func TestFromMappedMissingLink(t *testing.T) {
	pipe := pipeline.MustNew([]int64{1, 1}, []int64{1})
	plat := &platform.Platform{
		Speeds:     []int64{1, 1},
		Bandwidths: [][]int64{{0, 0}, {1, 0}}, // no 0 -> 1 link
	}
	mapp := mapping.MustNew([][]int{{0}, {1}}, 2)
	if _, err := FromMapped(pipe, plat, mapp); err == nil {
		t.Error("missing link accepted")
	}
}

func TestFromMappedStageCountMismatch(t *testing.T) {
	pipe := pipeline.MustNew([]int64{1, 1}, []int64{1})
	plat := platform.Uniform(2, 1, 1)
	mapp := mapping.MustNew([][]int{{0}}, 2)
	if _, err := FromMapped(pipe, plat, mapp); err == nil {
		t.Error("stage count mismatch accepted")
	}
}

func TestCycleTimesTwoStage(t *testing.T) {
	// m = lcm(1, 2) = 2. Transfers: to replica 0 takes 8, to replica 1 takes 2.
	inst := twoStage(t, [][]rat.Rat{{rat.FromInt(8), rat.FromInt(2)}})
	res := inst.Resources()
	if len(res) != 3 {
		t.Fatalf("Resources len = %d", len(res))
	}
	p0 := res[0]
	// P0 computes every data set: Ccomp = 4. Sends both files per macro
	// period: Cout = (8+2)/2 = 5. Cin = 0.
	if !p0.Ccomp.Equal(rat.FromInt(4)) || !p0.Cout.Equal(rat.FromInt(5)) || !p0.Cin.IsZero() {
		t.Errorf("P0 cycle times: %+v", p0)
	}
	if !p0.CexecOverlap.Equal(rat.FromInt(5)) {
		t.Errorf("P0 overlap Cexec = %v, want 5", p0.CexecOverlap)
	}
	if !p0.CexecStrict.Equal(rat.FromInt(9)) {
		t.Errorf("P0 strict Cexec = %v, want 9", p0.CexecStrict)
	}
	// Replica 0 of S1: receives file every other data set (time 8):
	// Cin = 8/2 = 4; Ccomp = 6/2 = 3.
	r0 := res[1]
	if !r0.Cin.Equal(rat.FromInt(4)) || !r0.Ccomp.Equal(rat.FromInt(3)) || !r0.Cout.IsZero() {
		t.Errorf("S1 replica 0 cycle times: %+v", r0)
	}
	// Replica 1 of S1: Cin = 2/2 = 1, Ccomp = 10/2 = 5.
	r1 := res[2]
	if !r1.Cin.Equal(rat.FromInt(1)) || !r1.Ccomp.Equal(rat.FromInt(5)) {
		t.Errorf("S1 replica 1 cycle times: %+v", r1)
	}
	// Mct overlap = max(5, 4, 5) = 5; strict = max(9, 7, 6) = 9.
	if got := inst.Mct(Overlap); !got.Equal(rat.FromInt(5)) {
		t.Errorf("Mct overlap = %v, want 5", got)
	}
	if got := inst.Mct(Strict); !got.Equal(rat.FromInt(9)) {
		t.Errorf("Mct strict = %v, want 9", got)
	}
}

func TestCriticalResources(t *testing.T) {
	inst := twoStage(t, [][]rat.Rat{{rat.FromInt(8), rat.FromInt(2)}})
	crit := inst.CriticalResources(Overlap)
	if len(crit) != 2 {
		t.Fatalf("critical overlap resources = %d, want 2 (P0 out and S1r0... )", len(crit))
	}
	crit = inst.CriticalResources(Strict)
	if len(crit) != 1 || crit[0].Proc != 0 {
		t.Fatalf("critical strict resources: %+v", crit)
	}
}

func TestModelsAndStrings(t *testing.T) {
	if Overlap.String() != "overlap" || Strict.String() != "strict" {
		t.Error("CommModel String wrong")
	}
	if len(Models()) != 2 {
		t.Error("Models() wrong")
	}
	if ResInput.String() != "in" || ResCompute.String() != "comp" || ResOutput.String() != "out" {
		t.Error("ResourceKind String wrong")
	}
}

func TestMaxReplication(t *testing.T) {
	inst := twoStage(t, [][]rat.Rat{{rat.FromInt(1), rat.FromInt(1)}})
	if inst.MaxReplication() != 2 {
		t.Errorf("MaxReplication = %d", inst.MaxReplication())
	}
}

func TestNoReplicationCycleTimes(t *testing.T) {
	// Chain of three single-replica stages: Mct must be the critical
	// resource's cycle time under both models.
	inst, err := FromTimes(
		[][]rat.Rat{{rat.FromInt(3)}, {rat.FromInt(7)}, {rat.FromInt(2)}},
		[][][]rat.Rat{
			{{rat.FromInt(4)}},
			{{rat.FromInt(5)}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Mct(Overlap); !got.Equal(rat.FromInt(7)) {
		t.Errorf("overlap Mct = %v, want 7 (P1 compute)", got)
	}
	// Strict: P1 receives 4, computes 7, sends 5 => 16.
	if got := inst.Mct(Strict); !got.Equal(rat.FromInt(16)) {
		t.Errorf("strict Mct = %v, want 16", got)
	}
}
