package model

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rat"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	orig := twoStage(t, [][]rat.Rat{{rat.New(8, 3), rat.FromInt(2)}})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumStages() != orig.NumStages() || back.PathCount() != orig.PathCount() {
		t.Fatalf("shape mismatch: %d stages, %d paths", back.NumStages(), back.PathCount())
	}
	for i := 0; i < orig.NumStages(); i++ {
		for a := 0; a < orig.Replication(i); a++ {
			if !back.CompTime(i, a).Equal(orig.CompTime(i, a)) {
				t.Fatalf("comp[%d][%d] mismatch", i, a)
			}
		}
	}
	if !back.CommTime(0, 0, 0).Equal(rat.New(8, 3)) {
		t.Fatalf("comm not exact: %v", back.CommTime(0, 0, 0))
	}
}

func TestInstanceJSONRejectsBad(t *testing.T) {
	cases := []string{
		`{"comp": [], "comm": []}`,                       // no stages
		`{"comp": [["1"],["2"]], "comm": []}`,            // missing comm
		`{"comp": [["1"],["x"]], "comm": [[["1"]]]}`,     // bad rational
		`{"comp": [["1"],["2"]], "comm": [[["1","2"]]]}`, // width mismatch
		`{"comp": [["1"],["2"]], "comm": [[["1/0"]]]}`,   // zero denominator
		`{"comp": [["-3"],["2"]], "comm": [[["1"]]]}`,    // negative time
	}
	for i, c := range cases {
		var inst Instance
		if err := json.Unmarshal([]byte(c), &inst); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestParseRat(t *testing.T) {
	cases := []struct {
		in   string
		want rat.Rat
	}{
		{"3", rat.FromInt(3)},
		{"3/4", rat.New(3, 4)},
		{" 10/5 ", rat.FromInt(2)},
		{"-7/2", rat.New(-7, 2)},
	}
	for _, c := range cases {
		got, err := ParseRat(c.in)
		if err != nil {
			t.Errorf("ParseRat(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseRat(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "a", "1/b", "1/0", "1/2/3"} {
		if _, err := ParseRat(bad); err == nil {
			t.Errorf("ParseRat(%q) accepted", bad)
		}
	}
}

// TestPathCountOverflowIsError: replica-count vectors whose lcm exceeds
// int64 must fail construction (and therefore JSON decode) with an error —
// instances arrive over the wire, and rat.LCMAll's panic would otherwise
// escape through json.Unmarshal into the serving goroutine.
func TestPathCountOverflowIsError(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}
	comp := make([][]rat.Rat, len(primes))
	for i, p := range primes {
		comp[i] = make([]rat.Rat, p)
		for a := range comp[i] {
			comp[i][a] = rat.One()
		}
	}
	comm := make([][][]rat.Rat, len(primes)-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, primes[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, primes[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = rat.One()
			}
		}
	}
	if _, err := FromTimes(comp, comm); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("FromTimes with lcm > int64 returned err %v, want overflow error", err)
	}
	// The same instance through the wire format: decode must error, not panic.
	blob, err := json.Marshal(map[string]any{"comp": ratStrings(comp), "comm": commStrings(comm)})
	if err != nil {
		t.Fatal(err)
	}
	var inst Instance
	if err := json.Unmarshal(blob, &inst); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("UnmarshalJSON with lcm > int64 returned err %v, want overflow error", err)
	}
}

func ratStrings(comp [][]rat.Rat) [][]string {
	out := make([][]string, len(comp))
	for i, row := range comp {
		out[i] = make([]string, len(row))
		for a, v := range row {
			out[i][a] = v.String()
		}
	}
	return out
}

func commStrings(comm [][][]rat.Rat) [][][]string {
	out := make([][][]string, len(comm))
	for i, mat := range comm {
		out[i] = ratStrings(mat)
	}
	return out
}
