// Package model assembles a pipeline, a platform and a mapping into the
// timed instance every algorithm in this repository consumes: per-operation
// durations (computation times per replica, transfer times per sender/
// receiver pair) plus the replication structure.
//
// Instances can also be built directly from operation times, which is how
// the paper's Table 2 experiments are specified ("computation times between
// 5 and 15", "communication times between 10 and 1000"): the random
// campaign draws durations, not FLOP counts and speeds.
package model

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// CommModel selects the communication model of the paper.
type CommModel int

const (
	// Overlap is the OVERLAP ONE-PORT model: a processor can simultaneously
	// receive one file, compute, and send one file (full duplex, multi-
	// threaded).
	Overlap CommModel = iota
	// Strict is the STRICT ONE-PORT model: receive, compute and send are
	// mutually exclusive on a processor.
	Strict
)

// String implements fmt.Stringer.
func (m CommModel) String() string {
	switch m {
	case Overlap:
		return "overlap"
	case Strict:
		return "strict"
	default:
		return fmt.Sprintf("CommModel(%d)", int(m))
	}
}

// Models lists both communication models, for experiment sweeps.
func Models() []CommModel { return []CommModel{Overlap, Strict} }

// Parse parses "overlap" or "strict" — the values the commands' -model
// flags and the service's JSON "model" fields accept.
func Parse(s string) (CommModel, error) {
	switch s {
	case "overlap":
		return Overlap, nil
	case "strict":
		return Strict, nil
	default:
		return Overlap, fmt.Errorf("model: unknown communication model %q (want overlap or strict)", s)
	}
}

// Instance is a fully-timed replicated-workflow instance.
type Instance struct {
	n    int           // number of stages
	m    []int         // replica counts m_i
	comp [][]rat.Rat   // comp[i][a]: compute time of replica a of stage i
	comm [][][]rat.Rat // comm[i][a][b]: transfer time of F_i from replica a of S_i to replica b of S_(i+1)
	proc [][]int       // global processor id per (stage, replica); synthetic ids if built from raw times
	name [][]string    // display name per (stage, replica)

	// Derived quantities, precomputed at construction: instances are
	// immutable, and the period-computation hot path asks for these on
	// every evaluation.
	pc  int64      // m = lcm(m_i)
	mct [2]rat.Rat // maximum cycle-time, indexed Overlap/Strict
}

// finish precomputes the derived quantities; both constructors call it
// exactly once on the fully-assembled instance. It fails (rather than
// panicking) when the path count lcm(m_i) overflows int64 — instances
// arrive over the wire, and a hostile replication vector must surface as a
// 400, not a stack trace.
func (in *Instance) finish() error {
	pc, ok := rat.LCMAllChecked(in.ReplicationCounts())
	if !ok {
		return fmt.Errorf("model: path count lcm(m_0..m_%d) overflows int64", in.n-1)
	}
	in.pc = pc
	for _, r := range in.Resources() {
		in.mct[0] = rat.Max(in.mct[0], r.CexecOverlap)
		in.mct[1] = rat.Max(in.mct[1], r.CexecStrict)
	}
	return nil
}

// FromMapped derives the instance of a (pipeline, platform, mapping) triple.
// All transfer routes demanded by the mapping must exist on the platform.
func FromMapped(pipe *pipeline.Pipeline, plat *platform.Platform, mapp *mapping.Mapping) (*Instance, error) {
	if err := pipe.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := mapp.Validate(plat.NumProcs()); err != nil {
		return nil, err
	}
	if mapp.NumStages() != pipe.NumStages() {
		return nil, fmt.Errorf("model: mapping has %d stages, pipeline has %d", mapp.NumStages(), pipe.NumStages())
	}
	n := pipe.NumStages()
	inst := &Instance{
		n:    n,
		m:    make([]int, n),
		comp: make([][]rat.Rat, n),
		comm: make([][][]rat.Rat, n-1),
		proc: make([][]int, n),
		name: make([][]string, n),
	}
	for i := 0; i < n; i++ {
		procs := mapp.Replicas[i]
		inst.m[i] = len(procs)
		inst.comp[i] = make([]rat.Rat, len(procs))
		inst.proc[i] = append([]int(nil), procs...)
		inst.name[i] = make([]string, len(procs))
		for a, u := range procs {
			inst.comp[i][a] = plat.ComputeTime(pipe.Stages[i].Work, u)
			inst.name[i][a] = fmt.Sprintf("P%d", u)
		}
	}
	for i := 0; i < n-1; i++ {
		senders := mapp.Replicas[i]
		receivers := mapp.Replicas[i+1]
		inst.comm[i] = make([][]rat.Rat, len(senders))
		for a, u := range senders {
			inst.comm[i][a] = make([]rat.Rat, len(receivers))
			for b, v := range receivers {
				if !plat.HasLink(u, v) {
					return nil, fmt.Errorf("model: mapping requires missing link P%d -> P%d for file F%d", u, v, i)
				}
				inst.comm[i][a][b] = plat.TransferTime(pipe.FileSizes[i], u, v)
			}
		}
	}
	if err := inst.finish(); err != nil {
		return nil, err
	}
	return inst, nil
}

// FromTimes builds an instance directly from operation durations.
// comp[i][a] is the computation time of replica a of stage i;
// comm[i][a][b] the transfer time of F_i from sender replica a to receiver
// replica b. Processor ids are synthesized in stage order.
func FromTimes(comp [][]rat.Rat, comm [][][]rat.Rat) (*Instance, error) {
	n := len(comp)
	if n == 0 {
		return nil, fmt.Errorf("model: no stages")
	}
	if len(comm) != n-1 {
		return nil, fmt.Errorf("model: %d stages need %d comm matrices, got %d", n, n-1, len(comm))
	}
	inst := &Instance{
		n:    n,
		m:    make([]int, n),
		comp: make([][]rat.Rat, n),
		comm: make([][][]rat.Rat, n-1),
		proc: make([][]int, n),
		name: make([][]string, n),
	}
	next := 0
	for i := 0; i < n; i++ {
		if len(comp[i]) == 0 {
			return nil, fmt.Errorf("model: stage %d has no replicas", i)
		}
		inst.m[i] = len(comp[i])
		inst.comp[i] = append([]rat.Rat(nil), comp[i]...)
		inst.proc[i] = make([]int, len(comp[i]))
		inst.name[i] = make([]string, len(comp[i]))
		for a := range comp[i] {
			if comp[i][a].Sign() < 0 {
				return nil, fmt.Errorf("model: negative compute time at stage %d replica %d", i, a)
			}
			inst.proc[i][a] = next
			inst.name[i][a] = fmt.Sprintf("P%d", next)
			next++
		}
	}
	for i := 0; i < n-1; i++ {
		if len(comm[i]) != inst.m[i] {
			return nil, fmt.Errorf("model: comm[%d] has %d sender rows, want %d", i, len(comm[i]), inst.m[i])
		}
		inst.comm[i] = make([][]rat.Rat, inst.m[i])
		for a := range comm[i] {
			if len(comm[i][a]) != inst.m[i+1] {
				return nil, fmt.Errorf("model: comm[%d][%d] has %d entries, want %d", i, a, len(comm[i][a]), inst.m[i+1])
			}
			inst.comm[i][a] = append([]rat.Rat(nil), comm[i][a]...)
			for b := range comm[i][a] {
				if comm[i][a][b].Sign() < 0 {
					return nil, fmt.Errorf("model: negative transfer time comm[%d][%d][%d]", i, a, b)
				}
			}
		}
	}
	if err := inst.finish(); err != nil {
		return nil, err
	}
	return inst, nil
}

// NumStages returns n.
func (in *Instance) NumStages() int { return in.n }

// Replication returns m_i.
func (in *Instance) Replication(i int) int { return in.m[i] }

// ReplicationCounts returns all m_i as int64s.
func (in *Instance) ReplicationCounts() []int64 {
	out := make([]int64, in.n)
	for i, v := range in.m {
		out[i] = int64(v)
	}
	return out
}

// PathCount returns m = lcm(m_0..m_(n-1)), precomputed at construction.
func (in *Instance) PathCount() int64 { return in.pc }

// CompTime returns the computation time of replica a of stage i.
func (in *Instance) CompTime(i, a int) rat.Rat { return in.comp[i][a] }

// CommTime returns the transfer time of file F_i from replica a of stage i
// to replica b of stage i+1.
func (in *Instance) CommTime(i, a, b int) rat.Rat { return in.comm[i][a][b] }

// ProcID returns the global processor id of replica a of stage i.
func (in *Instance) ProcID(i, a int) int { return in.proc[i][a] }

// ProcName returns the display name of replica a of stage i.
func (in *Instance) ProcName(i, a int) string { return in.name[i][a] }

// MaxReplication returns max_i m_i (the duplication factor of §5).
func (in *Instance) MaxReplication() int {
	mx := 0
	for _, v := range in.m {
		if v > mx {
			mx = v
		}
	}
	return mx
}
