package model

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rat"
)

// instanceJSON is the serialized form of an Instance: operation durations as
// exact "n/d" strings, replication implied by the array shapes.
type instanceJSON struct {
	Comp [][]string   `json:"comp"`
	Comm [][][]string `json:"comm"`
}

// MarshalJSON encodes the instance's timing tables exactly.
func (in *Instance) MarshalJSON() ([]byte, error) {
	out := instanceJSON{
		Comp: make([][]string, in.n),
		Comm: make([][][]string, in.n-1),
	}
	for i := 0; i < in.n; i++ {
		out.Comp[i] = make([]string, in.m[i])
		for a := range out.Comp[i] {
			out.Comp[i][a] = in.comp[i][a].String()
		}
	}
	for i := 0; i < in.n-1; i++ {
		out.Comm[i] = make([][]string, in.m[i])
		for a := range out.Comm[i] {
			out.Comm[i][a] = make([]string, in.m[i+1])
			for b := range out.Comm[i][a] {
				out.Comm[i][a][b] = in.comm[i][a][b].String()
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a serialized instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var raw instanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	comp := make([][]rat.Rat, len(raw.Comp))
	for i, row := range raw.Comp {
		comp[i] = make([]rat.Rat, len(row))
		for a, s := range row {
			v, err := ParseRat(s)
			if err != nil {
				return fmt.Errorf("model: comp[%d][%d]: %w", i, a, err)
			}
			comp[i][a] = v
		}
	}
	comm := make([][][]rat.Rat, len(raw.Comm))
	for i, mat := range raw.Comm {
		comm[i] = make([][]rat.Rat, len(mat))
		for a, row := range mat {
			comm[i][a] = make([]rat.Rat, len(row))
			for b, s := range row {
				v, err := ParseRat(s)
				if err != nil {
					return fmt.Errorf("model: comm[%d][%d][%d]: %w", i, a, b, err)
				}
				comm[i][a][b] = v
			}
		}
	}
	inst, err := FromTimes(comp, comm)
	if err != nil {
		return err
	}
	*in = *inst
	return nil
}

// ParseRat parses "n" or "n/d" into an exact rational.
func ParseRat(s string) (rat.Rat, error) {
	s = strings.TrimSpace(s)
	num, den := s, "1"
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den = s[:i], s[i+1:]
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return rat.Rat{}, fmt.Errorf("bad rational %q: %v", s, err)
	}
	d, err := strconv.ParseInt(den, 10, 64)
	if err != nil {
		return rat.Rat{}, fmt.Errorf("bad rational %q: %v", s, err)
	}
	if d == 0 {
		return rat.Rat{}, fmt.Errorf("bad rational %q: zero denominator", s)
	}
	return rat.New(n, d), nil
}
