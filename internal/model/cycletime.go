package model

import (
	"fmt"

	"repro/internal/rat"
)

// ResourceKind distinguishes the three hardware resources of a processor
// under the one-port models: its input port, its computing unit and its
// output port.
type ResourceKind int

const (
	// ResInput is the receiving port of a processor.
	ResInput ResourceKind = iota
	// ResCompute is the computing unit.
	ResCompute
	// ResOutput is the sending port.
	ResOutput
)

// String implements fmt.Stringer.
func (k ResourceKind) String() string {
	switch k {
	case ResInput:
		return "in"
	case ResCompute:
		return "comp"
	case ResOutput:
		return "out"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Resource summarizes the per-data-set occupation of one processor.
type Resource struct {
	Stage   int
	Replica int
	Proc    int
	Name    string
	// Cin, Ccomp, Cout are per-data-set occupation times of the input port,
	// compute unit and output port (Section 2; Cin of stage 0 and Cout of
	// the last stage are zero).
	Cin, Ccomp, Cout rat.Rat
	// CexecOverlap = max(Cin, Ccomp, Cout); CexecStrict = Cin+Ccomp+Cout.
	CexecOverlap, CexecStrict rat.Rat
}

// Cexec returns the cycle-time of the resource under the given model.
func (r Resource) Cexec(m CommModel) rat.Rat {
	if m == Overlap {
		return r.CexecOverlap
	}
	return r.CexecStrict
}

// Resources computes the per-data-set cycle-time decomposition of every
// processor in the mapping.
//
// Over a macro-period of m = lcm(m_i) data sets, replica a of stage i
// handles the data sets j ≡ a (mod m_i); its ports see the corresponding
// round-robin senders/receivers. Dividing the macro-period busy time by m
// yields the per-data-set occupation.
func (in *Instance) Resources() []Resource {
	m := in.PathCount()
	var out []Resource
	for i := 0; i < in.n; i++ {
		mi := int64(in.m[i])
		for a := 0; a < in.m[i]; a++ {
			r := Resource{
				Stage:   i,
				Replica: a,
				Proc:    in.proc[i][a],
				Name:    in.name[i][a],
			}
			// Compute: (m/m_i) executions of comp[i][a] per macro-period.
			r.Ccomp = in.comp[i][a].MulInt(m / mi).DivInt(m)
			// Input port: for each handled data set, the sender is the
			// round-robin replica of stage i-1.
			if i > 0 {
				sum := rat.Zero()
				for j := int64(a); j < m; j += mi {
					s := int(j % int64(in.m[i-1]))
					sum = sum.Add(in.comm[i-1][s][a])
				}
				r.Cin = sum.DivInt(m)
			}
			// Output port: receivers are round-robin replicas of stage i+1.
			if i < in.n-1 {
				sum := rat.Zero()
				for j := int64(a); j < m; j += mi {
					d := int(j % int64(in.m[i+1]))
					sum = sum.Add(in.comm[i][a][d])
				}
				r.Cout = sum.DivInt(m)
			}
			r.CexecOverlap = rat.Max(r.Cin, rat.Max(r.Ccomp, r.Cout))
			r.CexecStrict = r.Cin.Add(r.Ccomp).Add(r.Cout)
			out = append(out, r)
		}
	}
	return out
}

// Mct returns the maximum cycle-time over all resources under the given
// model. It is a lower bound for the period (Section 2) and equals the
// period when no stage is replicated.
func (in *Instance) Mct(m CommModel) rat.Rat {
	if m == Overlap {
		return in.mct[0]
	}
	return in.mct[1]
}

// CriticalResources returns the resources whose cycle-time attains Mct.
func (in *Instance) CriticalResources(m CommModel) []Resource {
	res := in.Resources()
	mct := in.Mct(m)
	var out []Resource
	for _, r := range res {
		if r.Cexec(m).Equal(mct) {
			out = append(out, r)
		}
	}
	return out
}
