// Package tpn constructs the timed Petri nets of Section 3 of the paper
// from a timed instance: the OVERLAP ONE-PORT net (Subsection 3.2,
// Figures 3 and 4) and the STRICT ONE-PORT net (Subsection 3.3, Figure 5).
//
// Both nets are rectangular: m = lcm(m_0..m_(n-1)) rows (one per path of
// Proposition 1) by 2n-1 columns (n computations interleaved with n-1 file
// transfers). Construction is O(mn), as stated at the end of Section 3.
//
// Two entry points are provided. The free functions (Build, BuildOverlap,
// BuildStrict) allocate a fresh validated net — use them when the net is
// kept around (rendering, unrolling, simulation). A Builder constructs nets
// into reused label-free storage with a configurable row cap — the period
// stack (core.Solver, the batch engine) holds one per evaluation thread so
// thousands of evaluations share one allocation footprint.
package tpn

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/petri"
)

// MaxRows is the default cap on the unfolded-net size: m = lcm(m_i) can grow
// combinatorially (Example C has m = 10395), and the paper itself reports
// runs of up to 150,000 seconds caused by large duplication factors.
// Builders return ErrTooLarge above the cap so experiment drivers can
// resample or fall back to the polynomial algorithm. The cap is
// configurable per Builder (and through core.Solver / engine.Options);
// MaxRows is the default for the free functions and for builders that leave
// MaxRows zero.
const MaxRows = 20000

// ErrTooLarge reports that the unfolded TPN would exceed the row cap.
type ErrTooLarge struct {
	Rows int64
	// Cap is the row cap that was exceeded (MaxRows unless the builder was
	// configured otherwise; 0 is normalized to MaxRows for errors produced
	// before the cap was known).
	Cap int
}

func (e ErrTooLarge) Error() string {
	c := e.Cap
	if c == 0 {
		c = MaxRows
	}
	return fmt.Sprintf("tpn: unfolded net needs %d rows (cap %d)", e.Rows, c)
}

// Builder constructs unfolded TPNs into reused storage: the net's transition
// and place arrays, and the row scratch of the round-robin circuits, are
// kept across Build calls. The returned net is label-free (display names
// render lazily from grid metadata) and remains valid only until the next
// Build on the same Builder. A Builder is not safe for concurrent use; the
// zero value is ready.
type Builder struct {
	// MaxRows caps the unfolded-net size; 0 means the package default
	// (MaxRows = 20000).
	MaxRows int

	net  petri.Net
	rows []int // scratch for rowsOfReplica
}

// RowCap returns the effective row cap.
func (b *Builder) RowCap() int {
	if b.MaxRows <= 0 {
		return MaxRows
	}
	return b.MaxRows
}

// Build constructs the TPN for the requested communication model into the
// builder's reused net. Unlike the free functions, Build skips the O(net)
// structural re-validation: builder nets are correct by construction and the
// cycle-ratio engine re-checks liveness on every solve.
func (b *Builder) Build(inst *model.Instance, m model.CommModel) (*petri.Net, error) {
	switch m {
	case model.Overlap:
		return b.BuildOverlap(inst)
	case model.Strict:
		return b.BuildStrict(inst)
	default:
		return nil, fmt.Errorf("tpn: unknown model %v", m)
	}
}

// Build constructs a fresh, validated TPN for the requested model.
func Build(inst *model.Instance, m model.CommModel) (*petri.Net, error) {
	switch m {
	case model.Overlap:
		return BuildOverlap(inst)
	case model.Strict:
		return BuildStrict(inst)
	default:
		return nil, fmt.Errorf("tpn: unknown model %v", m)
	}
}

// grid fills the m x (2n-1) transition grid shared by both models and the
// row-internal precedence places (constraint 1 of Subsection 3.2: F_i cannot
// be sent before S_i completes, S_(i+1) cannot start before F_i arrives).
func (b *Builder) grid(inst *model.Instance) (*petri.Net, error) {
	m64 := inst.PathCount()
	if m64 > int64(b.RowCap()) {
		return nil, ErrTooLarge{Rows: m64, Cap: b.RowCap()}
	}
	m := int(m64)
	n := inst.NumStages()
	cols := 2*n - 1
	net := &b.net
	net.Reset(m, cols)
	for j := 0; j < m; j++ {
		for c := 0; c < cols; c++ {
			var t petri.Transition
			if c%2 == 0 {
				i := c / 2
				a := j % inst.Replication(i)
				t = petri.Transition{
					Time:  inst.CompTime(i, a),
					Row:   j,
					Col:   c,
					Kind:  petri.KindCompute,
					Stage: i,
					Proc:  inst.ProcID(i, a),
					Dst:   -1,
				}
			} else {
				i := (c - 1) / 2
				a := j % inst.Replication(i)
				bb := j % inst.Replication(i+1)
				t = petri.Transition{
					Time:  inst.CommTime(i, a, bb),
					Row:   j,
					Col:   c,
					Kind:  petri.KindTransfer,
					Stage: i,
					Proc:  inst.ProcID(i, a),
					Dst:   inst.ProcID(i+1, bb),
				}
			}
			net.AddTransition(t)
		}
	}
	// Constraint 1: forward places along each row.
	for j := 0; j < m; j++ {
		for c := 0; c+1 < cols; c++ {
			net.AddPlace(net.TransitionAt(j, c), net.TransitionAt(j, c+1), 0, "flow")
		}
	}
	return net, nil
}

// circuit adds the round-robin circuit of processor proc through the given
// (row, col) cells in row order: token-free places between consecutive
// cells and a single-token place closing the loop (the paper's "a token is
// put in every place going from T^{jk} to T^{j1}"). A single cell yields a
// self-loop with one token, which serializes successive uses of the same
// resource.
func circuit(net *petri.Net, rows []int, col int, label string, proc int) {
	k := len(rows)
	for l := 0; l+1 < k; l++ {
		net.AddResourcePlace(net.TransitionAt(rows[l], col), net.TransitionAt(rows[l+1], col), 0, label, proc)
	}
	net.AddResourcePlace(net.TransitionAt(rows[k-1], col), net.TransitionAt(rows[0], col), 1, label, proc)
}

// rowsOfReplica lists, in increasing order, the rows on which replica a of
// stage i appears (j ≡ a mod m_i), into the builder's reused scratch.
func (b *Builder) rowsOfReplica(inst *model.Instance, i, a int) []int {
	m := int(inst.PathCount())
	mi := inst.Replication(i)
	b.rows = b.rows[:0]
	for j := a; j < m; j += mi {
		b.rows = append(b.rows, j)
	}
	return b.rows
}

// BuildOverlap constructs the OVERLAP ONE-PORT net of Subsection 3.2 into
// the builder's reused net. On top of the shared grid it adds, per
// processor, three independent round-robin circuits (constraints 2-4): one
// over its computations, one over its outgoing transfers (unless it runs the
// last stage) and one over its incoming transfers (unless it runs the first
// stage). Independent circuits model full-duplex communication overlapped
// with computation.
func (b *Builder) BuildOverlap(inst *model.Instance) (*petri.Net, error) {
	net, err := b.grid(inst)
	if err != nil {
		return nil, err
	}
	n := inst.NumStages()
	for i := 0; i < n; i++ {
		for a := 0; a < inst.Replication(i); a++ {
			rows := b.rowsOfReplica(inst, i, a)
			proc := inst.ProcID(i, a)
			// Constraint 2: round-robin over computations.
			circuit(net, rows, 2*i, "rr-comp", proc)
			// Constraint 3: round-robin over outgoing communications.
			if i < n-1 {
				circuit(net, rows, 2*i+1, "rr-out", proc)
			}
			// Constraint 4: round-robin over incoming communications.
			if i > 0 {
				circuit(net, rows, 2*i-1, "rr-in", proc)
			}
		}
	}
	return net, nil
}

// BuildStrict constructs the STRICT ONE-PORT net of Subsection 3.3 into the
// builder's reused net. Each processor is a single serial resource cycling
// through receive -> compute -> send: a place links the send transition of
// each of its rows to the receive transition of its next row (with the wrap
// place carrying the token). Processors running the first (resp. last) stage
// have no receive (resp. send); the circuit then starts at the computation
// (resp. ends at it).
func (b *Builder) BuildStrict(inst *model.Instance) (*petri.Net, error) {
	net, err := b.grid(inst)
	if err != nil {
		return nil, err
	}
	n := inst.NumStages()
	for i := 0; i < n; i++ {
		for a := 0; a < inst.Replication(i); a++ {
			rows := b.rowsOfReplica(inst, i, a)
			firstCol := 2 * i // compute column
			if i > 0 {
				firstCol = 2*i - 1 // receive column
			}
			lastCol := 2 * i // compute column
			if i < n-1 {
				lastCol = 2*i + 1 // send column
			}
			k := len(rows)
			for l := 0; l < k; l++ {
				next := (l + 1) % k
				tokens := 0
				if next == 0 {
					tokens = 1
				}
				net.AddResourcePlace(
					net.TransitionAt(rows[l], lastCol),
					net.TransitionAt(rows[next], firstCol),
					tokens,
					"rr-strict",
					inst.ProcID(i, a),
				)
			}
		}
	}
	return net, nil
}

// BuildOverlap constructs a fresh, validated OVERLAP ONE-PORT net.
func BuildOverlap(inst *model.Instance) (*petri.Net, error) {
	var b Builder
	net, err := b.BuildOverlap(inst)
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// BuildStrict constructs a fresh, validated STRICT ONE-PORT net.
func BuildStrict(inst *model.Instance) (*petri.Net, error) {
	var b Builder
	net, err := b.BuildStrict(inst)
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
