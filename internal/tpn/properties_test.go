package tpn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
)

// randomInst draws a random timed instance for property tests.
func randomInst(rng *rand.Rand, maxStages, maxRep int) *model.Instance {
	n := 2 + rng.Intn(maxStages-1)
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + rng.Intn(maxRep)
	}
	draw := func() rat.Rat { return rat.FromInt(1 + rng.Int63n(20)) }
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}

// TestQuickGridShape: both builders produce exactly m*(2n-1) transitions
// laid out row-major, with computation/transfer columns alternating and the
// round-robin replica assignment of Proposition 1.
func TestQuickGridShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInst(rng, 4, 3)
		for _, cm := range model.Models() {
			net, err := Build(inst, cm)
			if err != nil {
				return false
			}
			m := int(inst.PathCount())
			n := inst.NumStages()
			if net.Rows != m || net.Cols != 2*n-1 || len(net.Transitions) != m*(2*n-1) {
				return false
			}
			for j := 0; j < m; j++ {
				for c := 0; c < net.Cols; c++ {
					tr := net.Transitions[net.TransitionAt(j, c)]
					if tr.Row != j || tr.Col != c {
						return false
					}
					if c%2 == 0 {
						i := c / 2
						a := j % inst.Replication(i)
						if tr.Kind != petri.KindCompute || tr.Stage != i ||
							tr.Proc != inst.ProcID(i, a) || !tr.Time.Equal(inst.CompTime(i, a)) {
							return false
						}
					} else {
						i := (c - 1) / 2
						a := j % inst.Replication(i)
						b := j % inst.Replication(i+1)
						if tr.Kind != petri.KindTransfer || tr.Stage != i ||
							tr.Proc != inst.ProcID(i, a) || tr.Dst != inst.ProcID(i+1, b) ||
							!tr.Time.Equal(inst.CommTime(i, a, b)) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTokenBudget: the overlap net carries one token per resource
// circuit (one compute circuit per replica, plus out circuits except on the
// last stage, plus in circuits except on the first); the strict net carries
// exactly one token per processor.
func TestQuickTokenBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInst(rng, 4, 3)
		n := inst.NumStages()
		procs := 0
		for i := 0; i < n; i++ {
			procs += inst.Replication(i)
		}
		wantOverlap := procs + (procs - inst.Replication(n-1)) + (procs - inst.Replication(0))
		ov, err := BuildOverlap(inst)
		if err != nil {
			return false
		}
		if ov.TokenCount() != wantOverlap {
			return false
		}
		st, err := BuildStrict(inst)
		if err != nil {
			return false
		}
		return st.TokenCount() == procs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEveryResourceSerialized: in every unrolled schedule, operations
// of the same port/unit never overlap — the fundamental one-port invariant.
func TestQuickEveryResourceSerialized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInst(rng, 3, 3)
		for _, cm := range model.Models() {
			net, err := Build(inst, cm)
			if err != nil {
				return false
			}
			const K = 5
			start, err := net.Unroll(K)
			if err != nil {
				return false
			}
			// Collect (resource, interval) pairs. Overlap: compute unit, in
			// port, out port separately; strict: whole processor.
			res := map[string][]iv{}
			add := func(key string, s, e rat.Rat) {
				res[key] = append(res[key], iv{s, e})
			}
			for ti, tr := range net.Transitions {
				for k := 0; k < K; k++ {
					s := start[ti][k]
					e := s.Add(tr.Time)
					switch {
					case tr.Kind == petri.KindCompute && cm == model.Overlap:
						add(key("c", tr.Proc), s, e)
					case tr.Kind == petri.KindCompute:
						add(key("p", tr.Proc), s, e)
					case cm == model.Overlap:
						add(key("o", tr.Proc), s, e)
						add(key("i", tr.Dst), s, e)
					default:
						add(key("p", tr.Proc), s, e)
						add(key("p", tr.Dst), s, e)
					}
				}
			}
			for _, ivs := range res {
				sortIvs(ivs)
				for i := 1; i < len(ivs); i++ {
					if ivs[i].s.Less(ivs[i-1].e) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func key(kind string, proc int) string {
	return kind + string(rune('0'+proc%10)) + string(rune('A'+proc/10))
}

// iv is a busy interval on a resource.
type iv struct{ s, e rat.Rat }

func sortIvs(ivs []iv) {
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].s.Less(ivs[j-1].s); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
}

// TestQuickPeriodInvariantUnderTimeScaling: multiplying every operation
// time by a positive constant scales the period by the same constant.
func TestQuickPeriodInvariantUnderTimeScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInst(rng, 3, 3)
		k := rat.New(int64(1+rng.Intn(7)), int64(1+rng.Intn(3)))
		n := inst.NumStages()
		comp := make([][]rat.Rat, n)
		for i := range comp {
			comp[i] = make([]rat.Rat, inst.Replication(i))
			for a := range comp[i] {
				comp[i][a] = inst.CompTime(i, a).Mul(k)
			}
		}
		comm := make([][][]rat.Rat, n-1)
		for i := range comm {
			comm[i] = make([][]rat.Rat, inst.Replication(i))
			for a := range comm[i] {
				comm[i][a] = make([]rat.Rat, inst.Replication(i+1))
				for b := range comm[i][a] {
					comm[i][a][b] = inst.CommTime(i, a, b).Mul(k)
				}
			}
		}
		scaled, err := model.FromTimes(comp, comm)
		if err != nil {
			return false
		}
		for _, cm := range model.Models() {
			n1, err := Build(inst, cm)
			if err != nil {
				return false
			}
			n2, err := Build(scaled, cm)
			if err != nil {
				return false
			}
			r1, err := n1.MaxCycleRatio()
			if err != nil {
				return false
			}
			r2, err := n2.MaxCycleRatio()
			if err != nil {
				return false
			}
			if !r2.Ratio.Equal(r1.Ratio.Mul(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
