package tpn

import (
	"errors"
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
)

// TestBuilderMatchesFreeFunctions interleaves models and instances on one
// reused Builder and requires the produced nets to be structurally
// identical to the freshly allocated ones: same grid, same transitions
// (times and metadata), same places, same critical-cycle ratio.
func TestBuilderMatchesFreeFunctions(t *testing.T) {
	insts := []*model.Instance{
		examplesdata.ExampleA(),
		examplesdata.ExampleB(),
		examplesdata.ExampleA(), // revisit after a different shape
	}
	var b Builder
	for k, inst := range insts {
		for _, cm := range model.Models() {
			got, err := b.Build(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Build(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows != want.Rows || got.Cols != want.Cols {
				t.Fatalf("inst %d %v: grid %dx%d != %dx%d", k, cm, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			if len(got.Transitions) != len(want.Transitions) {
				t.Fatalf("inst %d %v: %d transitions, want %d", k, cm, len(got.Transitions), len(want.Transitions))
			}
			for i := range got.Transitions {
				g, w := got.Transitions[i], want.Transitions[i]
				if !g.Time.Equal(w.Time) || g.Row != w.Row || g.Col != w.Col ||
					g.Kind != w.Kind || g.Stage != w.Stage || g.Proc != w.Proc || g.Dst != w.Dst {
					t.Fatalf("inst %d %v: transition %d: %+v != %+v", k, cm, i, g, w)
				}
				if got.TransitionName(i) != want.TransitionName(i) {
					t.Fatalf("inst %d %v: lazy name %q != %q", k, cm, got.TransitionName(i), want.TransitionName(i))
				}
			}
			if len(got.Places) != len(want.Places) {
				t.Fatalf("inst %d %v: %d places, want %d", k, cm, len(got.Places), len(want.Places))
			}
			for i := range got.Places {
				g, w := got.Places[i], want.Places[i]
				if g.From != w.From || g.To != w.To || g.Tokens != w.Tokens || g.Proc != w.Proc {
					t.Fatalf("inst %d %v: place %d: %+v != %+v", k, cm, i, g, w)
				}
				if got.PlaceLabel(i) != want.PlaceLabel(i) {
					t.Fatalf("inst %d %v: place label %q != %q", k, cm, got.PlaceLabel(i), want.PlaceLabel(i))
				}
			}
			gr, err := got.MaxCycleRatio()
			if err != nil {
				t.Fatal(err)
			}
			wr, err := want.MaxCycleRatio()
			if err != nil {
				t.Fatal(err)
			}
			if !gr.Ratio.Equal(wr.Ratio) {
				t.Fatalf("inst %d %v: builder ratio %v != fresh %v", k, cm, gr.Ratio, wr.Ratio)
			}
		}
	}
}

// TestBuilderRowCap exercises the per-builder cap: an instance whose
// unfolded net exceeds it must be refused with the configured cap in the
// error, and raising the cap on the same builder must let it through.
func TestBuilderRowCap(t *testing.T) {
	inst := examplesdata.ExampleA() // m = 6
	b := Builder{MaxRows: 5}
	_, err := b.BuildStrict(inst)
	var tooLarge ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("got err %v, want ErrTooLarge", err)
	}
	if tooLarge.Rows != 6 || tooLarge.Cap != 5 {
		t.Fatalf("ErrTooLarge = %+v, want Rows 6 Cap 5", tooLarge)
	}
	b.MaxRows = 6
	if _, err := b.BuildStrict(inst); err != nil {
		t.Fatalf("cap 6 on m=6: %v", err)
	}
	b.MaxRows = 0 // back to the package default
	if b.RowCap() != MaxRows {
		t.Fatalf("RowCap() = %d, want default %d", b.RowCap(), MaxRows)
	}
}
