package tpn

import (
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/rat"
)

// TestRegimeExampleA verifies the asymptotic law of (max,+) theory on the
// paper's Example A: after a finite transient the schedule repeats with the
// TPN period.
func TestRegimeExampleA(t *testing.T) {
	inst := examplesdata.ExampleA()
	for _, tc := range []struct {
		cm     model.CommModel
		period rat.Rat
	}{
		{model.Overlap, rat.FromInt(6 * 189)},
		{model.Strict, rat.FromInt(1384)},
	} {
		net, err := Build(inst, tc.cm)
		if err != nil {
			t.Fatal(err)
		}
		reg, err := net.DetectRegime(40, 8)
		if err != nil {
			t.Fatalf("%v: %v", tc.cm, err)
		}
		if !reg.Period.Equal(tc.period) {
			t.Errorf("%v: regime period %v, want %v", tc.cm, reg.Period, tc.period)
		}
		if reg.Cyclicity < 1 || reg.Transient < 0 {
			t.Errorf("%v: degenerate regime %+v", tc.cm, reg)
		}
		t.Logf("%v: cyclicity %d, transient %d occurrences", tc.cm, reg.Cyclicity, reg.Transient)
	}
}

// TestRegimeRatesNeverExceedPeriod checks rate(T) <= period for every
// transition, with equality somewhere (the critical circuit).
func TestRegimeRatesNeverExceedPeriod(t *testing.T) {
	inst := examplesdata.ExampleB()
	net, err := BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := net.DetectRegime(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, r := range reg.Rates {
		if reg.Period.Less(r) {
			t.Fatalf("rate %v exceeds period %v", r, reg.Period)
		}
		if r.Equal(reg.Period) {
			hit = true
		}
	}
	if !hit {
		t.Fatal("no transition attains the period")
	}
}
