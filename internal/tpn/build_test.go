package tpn

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
)

// TestOverlapTPNStructureExampleA checks the net of Figure 4: m = 6 rows,
// 2n-1 = 7 columns, and the place sets mandated by constraints 1-4 of
// Subsection 3.2.
func TestOverlapTPNStructureExampleA(t *testing.T) {
	inst := examplesdata.ExampleA()
	net, err := BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	if net.Rows != 6 || net.Cols != 7 {
		t.Fatalf("grid = %dx%d, want 6x7", net.Rows, net.Cols)
	}
	if got, want := len(net.Transitions), 42; got != want {
		t.Fatalf("transitions = %d, want %d", got, want)
	}
	// Places: flow 6*(7-1) = 36; circuits: per replica of stage i, one place
	// per row it appears on, for each applicable port:
	// comp circuits: all stages: rows 6+6+6+6 = 24 places;
	// out circuits (stages 0..2): 6+6+6 = 18;
	// in circuits (stages 1..3): 6+6+6 = 18. Total 36+24+18+18 = 96.
	if got, want := len(net.Places), 96; got != want {
		t.Fatalf("places = %d, want %d", got, want)
	}
	// One token per circuit: 4 comp-stage replica sets (1+2+3+1 = 7
	// circuits), 1+2+3 out circuits, 2+3+1 in circuits => 7+6+6 = 19 tokens.
	if got, want := net.TokenCount(), 19; got != want {
		t.Fatalf("tokens = %d, want %d", got, want)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStrictTPNStructureExampleA checks the net of Figure 5(b).
func TestStrictTPNStructureExampleA(t *testing.T) {
	inst := examplesdata.ExampleA()
	net, err := BuildStrict(inst)
	if err != nil {
		t.Fatal(err)
	}
	if net.Rows != 6 || net.Cols != 7 {
		t.Fatalf("grid = %dx%d, want 6x7", net.Rows, net.Cols)
	}
	// Places: flow 36 + one strict circuit place per (replica, row):
	// each stage contributes 6 (m) places: 4*6 = 24. Total 60.
	if got, want := len(net.Places), 60; got != want {
		t.Fatalf("places = %d, want %d", got, want)
	}
	// One token per processor circuit: 7 processors.
	if got, want := net.TokenCount(), 7; got != want {
		t.Fatalf("tokens = %d, want %d", got, want)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTransitionLabelsExampleA spot-checks the grid contents against
// Table 1's round-robin paths.
func TestTransitionLabelsExampleA(t *testing.T) {
	inst := examplesdata.ExampleA()
	net, err := BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 (data set 1): S1 on P2 (col 2), transfer F1 P2->P4 (col 3),
	// S2 on P4 (col 4).
	tr := net.Transitions[net.TransitionAt(1, 2)]
	if tr.Kind != petri.KindCompute || tr.Stage != 1 || tr.Proc != 2 {
		t.Errorf("row1 col2 = %+v", tr)
	}
	tr = net.Transitions[net.TransitionAt(1, 3)]
	if tr.Kind != petri.KindTransfer || tr.Stage != 1 || tr.Proc != 2 || tr.Dst != 4 {
		t.Errorf("row1 col3 = %+v", tr)
	}
	if !tr.Time.Equal(rat.FromInt(157)) {
		t.Errorf("P2->P4 transfer time = %v, want 157", tr.Time)
	}
	tr = net.Transitions[net.TransitionAt(1, 4)]
	if tr.Kind != petri.KindCompute || tr.Proc != 4 {
		t.Errorf("row1 col4 = %+v", tr)
	}
}

// TestFig9SubTPN extracts the F1 column of Example A's overlap net
// (Figure 9): 6 transfer transitions carrying the times
// {57, 68, 77} (P1 rows) and {13, 157, 165} (P2 rows).
func TestFig9SubTPN(t *testing.T) {
	inst := examplesdata.ExampleA()
	net, err := BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	sub := net.SubNetByCols(3) // F1 column
	if len(sub.Transitions) != 6 {
		t.Fatalf("sub transitions = %d, want 6", len(sub.Transitions))
	}
	counts := map[int64]int{}
	for _, tr := range sub.Transitions {
		counts[tr.Time.Num()]++
	}
	for _, v := range []int64{57, 68, 77, 13, 157, 165} {
		if counts[v] != 1 {
			t.Errorf("transfer time %d appears %d times", v, counts[v])
		}
	}
	// 12 circuit places (6 out + 6 in), 2 tokens (P1, P2 out) + 3 (P3-P5 in).
	if len(sub.Places) != 12 {
		t.Fatalf("sub places = %d, want 12", len(sub.Places))
	}
	if sub.TokenCount() != 5 {
		t.Fatalf("sub tokens = %d, want 5", sub.TokenCount())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFig10SubTPN extracts the single communication column of Example B's
// overlap net (Figure 10): 12 transfers, 3 sender circuits + 4 receiver
// circuits = 7 tokens, 24 places.
func TestFig10SubTPN(t *testing.T) {
	inst := examplesdata.ExampleB()
	net, err := BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	sub := net.SubNetByCols(1)
	if len(sub.Transitions) != 12 {
		t.Fatalf("sub transitions = %d, want 12", len(sub.Transitions))
	}
	if len(sub.Places) != 24 {
		t.Fatalf("sub places = %d, want 24", len(sub.Places))
	}
	if sub.TokenCount() != 7 {
		t.Fatalf("sub tokens = %d, want 7", sub.TokenCount())
	}
	// The critical cycle of this sub-TPN yields the whole system's period:
	// ratio/m = 3500/12 per data set.
	res, err := sub.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.DivInt(12).Equal(rat.New(3500, 12)) {
		t.Fatalf("sub-TPN critical ratio = %v, want 3500", res.Ratio)
	}
}

// TestOverlapCyclesStayInColumns verifies the key structural property of
// Subsection 4.1: every cycle of the overlap net lives in a single column.
func TestOverlapCyclesStayInColumns(t *testing.T) {
	inst := examplesdata.ExampleA()
	net, err := BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	sys := net.System()
	err = sys.EnumerateElementaryCycles(func(cycle []int) error {
		col := -1
		for _, ei := range cycle {
			c := net.Transitions[sys.G.Edges[ei].From].Col
			if col == -1 {
				col = c
			} else if col != c {
				return errors.New("cycle spans multiple columns")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrictHasCrossColumnCycles verifies the contrasting property of
// Subsection 4.2: the strict net has backward edges creating cycles through
// several columns (Figure 8).
func TestStrictHasCrossColumnCycles(t *testing.T) {
	inst := examplesdata.ExampleA()
	net, err := BuildStrict(inst)
	if err != nil {
		t.Fatal(err)
	}
	sys := net.System()
	found := errors.New("found")
	err = sys.EnumerateElementaryCycles(func(cycle []int) error {
		cols := map[int]bool{}
		for _, ei := range cycle {
			cols[net.Transitions[sys.G.Edges[ei].From].Col] = true
		}
		if len(cols) > 1 {
			return found
		}
		return nil
	})
	if !errors.Is(err, found) {
		t.Fatal("no cross-column cycle found in strict net")
	}
}

// TestBuildTooLarge checks the lcm guard.
func TestBuildTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reps := []int{5, 21, 27, 11} // m = 10395 < cap, fine
	_ = rng
	inst := examplesdata.ExampleC()
	if _, err := BuildOverlap(inst); err != nil {
		t.Fatalf("m=10395 should fit under cap %d: %v", MaxRows, err)
	}
	_ = reps
	// Force an over-cap instance: replicas 32, 27, 25, 7, 11, 13 =>
	// m = 32*27*25*7*11*13 huge.
	comp := make([][]rat.Rat, 6)
	for i, r := range []int{32, 27, 25, 7, 11, 13} {
		comp[i] = make([]rat.Rat, r)
		for a := range comp[i] {
			comp[i][a] = rat.One()
		}
	}
	comm := make([][][]rat.Rat, 5)
	for i := range comm {
		comm[i] = make([][]rat.Rat, len(comp[i]))
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, len(comp[i+1]))
			for b := range comm[i][a] {
				comm[i][a][b] = rat.One()
			}
		}
	}
	inst2, err := model.FromTimes(comp, comm)
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildOverlap(inst2)
	var tooLarge ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

// TestUnrolledPeriodMatchesAnalytic cross-validates semantics: the measured
// steady-state period of the unrolled net equals m times the per-data-set
// period, for both models, on random instances.
func TestUnrolledPeriodMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		reps := []int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		comp := make([][]rat.Rat, 3)
		for i, r := range reps {
			comp[i] = make([]rat.Rat, r)
			for a := range comp[i] {
				comp[i][a] = rat.FromInt(1 + rng.Int63n(20))
			}
		}
		comm := make([][][]rat.Rat, 2)
		for i := range comm {
			comm[i] = make([][]rat.Rat, reps[i])
			for a := range comm[i] {
				comm[i][a] = make([]rat.Rat, reps[i+1])
				for b := range comm[i][a] {
					comm[i][a][b] = rat.FromInt(1 + rng.Int63n(20))
				}
			}
		}
		inst, err := model.FromTimes(comp, comm)
		if err != nil {
			t.Fatal(err)
		}
		for _, cm := range model.Models() {
			net, err := Build(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			crit, err := net.MaxCycleRatio()
			if err != nil {
				t.Fatal(err)
			}
			m := int(inst.PathCount())
			measured, err := net.MeasuredPeriod(40+4*m, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !measured.Equal(crit.Ratio) {
				t.Fatalf("trial %d %v: measured %v != analytic %v (reps %v)",
					trial, cm, measured, crit.Ratio, reps)
			}
		}
	}
}
