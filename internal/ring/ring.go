// Package ring implements the consistent-hash ring the cluster router
// shards on: a sorted circle of virtual-node points, weights expressed as
// extra points per member, and the classic consistent-hashing rebalance
// guarantee — a membership change moves only the keys owned by the changed
// member, never the keys between two surviving members.
//
// The ring is a pure data structure: deterministic (the point positions are
// FNV-1a hashes of "name#index", so the same membership always yields the
// same ownership map on every process), allocation-light on lookup (binary
// search over a flat slice), and deliberately not synchronized — the router
// guards its ring with the same lock that guards node health state, so
// membership changes and lookups cannot interleave inconsistently.
//
// Keys here are the serving layer's content IDs (store.ContentID — the hex
// SHA-256 of an instance's canonical serialization), which is what makes the
// per-node response memos an effectively distributed cache: the same
// instance hashes to the same home node from any client, on any router,
// across restarts.
package ring

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the number of virtual points per weight unit when New is
// given a non-positive count. 128 points per member keeps the measured
// ownership skew under 2x (pinned by TestDistributionSkew) while membership
// changes stay O(vnodes log points).
const DefaultVnodes = 128

// Hash is the key hash the ring positions against: 64-bit FNV-1a finished
// with a splitmix64-style avalanche. Plain FNV clusters on the sequential
// "name#0", "name#1", ... vnode strings (neighboring suffixes land on
// neighboring positions, which is exactly the skew virtual nodes exist to
// kill); the finalizer spreads those runs uniformly around the circle.
// Exposed so callers can pre-hash or route non-string keys consistently.
func Hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node: a position on the circle owned by a member.
type point struct {
	hash uint64
	node string
}

// Ring is the consistent-hash ring. Not safe for concurrent use; callers
// serialize access (the router holds it under its state lock).
type Ring struct {
	vnodes  int            // points per weight unit
	weights map[string]int // member -> weight
	points  []point        // sorted by (hash, node)
}

// New builds an empty ring with the given number of virtual points per
// weight unit (<= 0 means DefaultVnodes).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, weights: make(map[string]int)}
}

// Vnodes returns the configured points per weight unit.
func (r *Ring) Vnodes() int { return r.vnodes }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.weights) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.weights))
	for n := range r.weights {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Weight returns a member's weight and whether it is present.
func (r *Ring) Weight(node string) (int, bool) {
	w, ok := r.weights[node]
	return w, ok
}

// memberPoints derives the virtual points of a member: weight x vnodes
// positions hashed from "name#index". The derivation depends on nothing but
// the member itself, which is the whole rebalance guarantee — adding or
// removing one member cannot move any other member's points.
func (r *Ring) memberPoints(node string, weight int) []point {
	pts := make([]point, 0, weight*r.vnodes)
	for i := 0; i < weight*r.vnodes; i++ {
		pts = append(pts, point{hash: Hash(node + "#" + strconv.Itoa(i)), node: node})
	}
	return pts
}

// Add inserts a member with the given weight (>= 1; a weight-w member owns
// roughly w times the key share of a weight-1 member). Adding a present
// member or an empty name is an error.
func (r *Ring) Add(node string, weight int) error {
	if node == "" {
		return fmt.Errorf("ring: empty node name")
	}
	if weight < 1 {
		return fmt.Errorf("ring: node %q weight %d, want >= 1", node, weight)
	}
	if _, ok := r.weights[node]; ok {
		return fmt.Errorf("ring: node %q already present", node)
	}
	r.weights[node] = weight
	r.points = append(r.points, r.memberPoints(node, weight)...)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties broken by name so the ownership map is deterministic
		// regardless of insertion order.
		return r.points[i].node < r.points[j].node
	})
	return nil
}

// Remove deletes a member and its points; reports whether it was present.
func (r *Ring) Remove(node string) bool {
	if _, ok := r.weights[node]; !ok {
		return false
	}
	delete(r.weights, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Get returns the member owning key — the first point clockwise from the
// key's hash — and false on an empty ring.
func (r *Ring) Get(key string) (string, bool) {
	return r.GetHash(Hash(key))
}

// GetHash is Get for a pre-computed key hash.
func (r *Ring) GetHash(h uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := r.search(h)
	return r.points[i].node, true
}

// search finds the index of the first point at or clockwise of h (wrapping
// past the top of the circle back to index 0).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Successors returns up to n distinct members in ring order starting at the
// key's owner — the failover sequence: while the owner is out, its keys are
// served by the next distinct member clockwise, and so on.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.weights) {
		n = len(r.weights)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	at := r.search(Hash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		node := r.points[(at+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}
