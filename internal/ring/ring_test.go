package ring

import (
	"fmt"
	"testing"
)

// keys draws n distinct synthetic keys shaped like the serving layer's
// content IDs (hex-ish strings).
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("content-%08x-%d", i*2654435761, i)
	}
	return out
}

func mustAdd(t *testing.T, r *Ring, node string, weight int) {
	t.Helper()
	if err := r.Add(node, weight); err != nil {
		t.Fatal(err)
	}
}

func owners(t *testing.T, r *Ring, ks []string) map[string]string {
	t.Helper()
	m := make(map[string]string, len(ks))
	for _, k := range ks {
		n, ok := r.Get(k)
		if !ok {
			t.Fatalf("Get(%q) on a populated ring returned none", k)
		}
		m[k] = n
	}
	return m
}

func TestEmptyAndErrors(t *testing.T) {
	r := New(0)
	if r.Vnodes() != DefaultVnodes {
		t.Fatalf("Vnodes = %d, want default %d", r.Vnodes(), DefaultVnodes)
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("Get on an empty ring claimed an owner")
	}
	if got := r.Successors("k", 2); got != nil {
		t.Fatalf("Successors on empty ring = %v", got)
	}
	if err := r.Add("", 1); err == nil {
		t.Fatal("empty node name accepted")
	}
	if err := r.Add("a", 0); err == nil {
		t.Fatal("weight 0 accepted")
	}
	mustAdd(t, r, "a", 1)
	if err := r.Add("a", 1); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if r.Remove("missing") {
		t.Fatal("Remove of an absent node reported true")
	}
	if !r.Remove("a") || r.Len() != 0 {
		t.Fatalf("Remove(a) failed; len %d", r.Len())
	}
}

// TestDeterministicAcrossInsertionOrder: the ownership map depends only on
// the membership set, not the order members joined — the property that lets
// every router replica agree without coordination.
func TestDeterministicAcrossInsertionOrder(t *testing.T) {
	ks := keys(5000)
	a := New(64)
	for _, n := range []string{"n0", "n1", "n2"} {
		mustAdd(t, a, n, 1)
	}
	b := New(64)
	for _, n := range []string{"n2", "n0", "n1"} {
		mustAdd(t, b, n, 1)
	}
	oa, ob := owners(t, a, ks), owners(t, b, ks)
	for _, k := range ks {
		if oa[k] != ob[k] {
			t.Fatalf("key %q owner differs by insertion order: %s vs %s", k, oa[k], ob[k])
		}
	}
}

// TestRemoveMovesOnlyOwnedKeys is the rebalance property: deleting one
// member reassigns exactly the keys it owned, and every reassigned key goes
// to that key's next surviving successor.
func TestRemoveMovesOnlyOwnedKeys(t *testing.T) {
	r := New(128)
	for _, n := range []string{"n0", "n1", "n2", "n3"} {
		mustAdd(t, r, n, 1)
	}
	ks := keys(20000)
	before := owners(t, r, ks)
	succ := make(map[string][]string, len(ks))
	for _, k := range ks {
		succ[k] = r.Successors(k, 2)
	}
	if !r.Remove("n1") {
		t.Fatal("Remove(n1) reported absent")
	}
	after := owners(t, r, ks)
	moved := 0
	for _, k := range ks {
		if before[k] != "n1" {
			if after[k] != before[k] {
				t.Fatalf("key %q moved from %s to %s though n1 never owned it", k, before[k], after[k])
			}
			continue
		}
		moved++
		if after[k] == "n1" {
			t.Fatalf("key %q still owned by removed node", k)
		}
		// The new owner must be the key's next distinct successor.
		if want := succ[k][1]; after[k] != want {
			t.Fatalf("key %q reassigned to %s, want ring successor %s", k, after[k], want)
		}
	}
	if moved == 0 {
		t.Fatal("n1 owned no keys out of 20000; ring is degenerate")
	}
}

// TestAddRestoresExactOwnership: re-adding a removed member reproduces the
// original ownership map bit for bit (membership is the only state).
func TestAddRestoresExactOwnership(t *testing.T) {
	r := New(128)
	for _, n := range []string{"n0", "n1", "n2"} {
		mustAdd(t, r, n, 1)
	}
	ks := keys(10000)
	before := owners(t, r, ks)
	r.Remove("n2")
	mustAdd(t, r, "n2", 1)
	after := owners(t, r, ks)
	for _, k := range ks {
		if before[k] != after[k] {
			t.Fatalf("key %q: owner %s before eject, %s after rejoin", k, before[k], after[k])
		}
	}
}

// TestDistributionSkew pins the load-balance bar from the issue: at 128
// vnodes the per-node key share must stay within 2x in both directions.
func TestDistributionSkew(t *testing.T) {
	r := New(128)
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	for _, n := range nodes {
		mustAdd(t, r, n, 1)
	}
	counts := make(map[string]int)
	ks := keys(100000)
	for _, k := range ks {
		n, _ := r.Get(k)
		counts[n]++
	}
	mean := float64(len(ks)) / float64(len(nodes))
	for _, n := range nodes {
		c := float64(counts[n])
		if c > 2*mean {
			t.Fatalf("node %s owns %.0f keys, more than 2x the mean %.0f", n, c, mean)
		}
		if c < mean/2 {
			t.Fatalf("node %s owns %.0f keys, less than half the mean %.0f", n, c, mean)
		}
	}
}

// TestWeightsShiftShare: a weight-3 member owns roughly three times the
// share of its weight-1 peers (loose bounds; the point count is what scales).
func TestWeightsShiftShare(t *testing.T) {
	r := New(128)
	mustAdd(t, r, "small", 1)
	mustAdd(t, r, "big", 3)
	if w, ok := r.Weight("big"); !ok || w != 3 {
		t.Fatalf("Weight(big) = %d, %v", w, ok)
	}
	counts := make(map[string]int)
	for _, k := range keys(60000) {
		n, _ := r.Get(k)
		counts[n]++
	}
	ratio := float64(counts["big"]) / float64(counts["small"])
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("weight-3/weight-1 key ratio %.2f, want near 3 (counts %v)", ratio, counts)
	}
}

func TestSuccessorsDistinctAndOrdered(t *testing.T) {
	r := New(64)
	for _, n := range []string{"n0", "n1", "n2"} {
		mustAdd(t, r, n, 1)
	}
	for _, k := range keys(200) {
		owner, _ := r.Get(k)
		succ := r.Successors(k, 5) // capped at membership
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 5) = %v, want all 3 members", k, succ)
		}
		if succ[0] != owner {
			t.Fatalf("Successors(%q)[0] = %s, want owner %s", k, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q) repeats %s: %v", k, n, succ)
			}
			seen[n] = true
		}
	}
}

func TestNodesSorted(t *testing.T) {
	r := New(8)
	for _, n := range []string{"z", "a", "m"} {
		mustAdd(t, r, n, 1)
	}
	got := r.Nodes()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("Nodes() = %v, want sorted [a m z]", got)
	}
}
