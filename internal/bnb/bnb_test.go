package bnb

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// bruteForceBest enumerates EVERY replicated mapping of the search space —
// all ordered assignments of disjoint non-empty processor sets to stages,
// ascending-id round-robin order, no symmetry breaking, no bounding — and
// returns the minimal period. It is the independent ground truth the branch
// and bound is tested against.
func bruteForceBest(t *testing.T, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel) (rat.Rat, *mapping.Mapping) {
	t.Helper()
	n := pipe.NumStages()
	p := plat.NumProcs()
	if p > 16 {
		t.Fatalf("brute force limited to 16 processors (got %d)", p)
	}
	var (
		bestPeriod rat.Rat
		bestMapp   *mapping.Mapping
	)
	assign := make([]uint, n)
	var rec func(stage int, free uint)
	rec = func(stage int, free uint) {
		if stage == n {
			reps := make([][]int, n)
			for i, mask := range assign {
				for u := 0; u < p; u++ {
					if mask&(1<<u) != 0 {
						reps[i] = append(reps[i], u)
					}
				}
			}
			mapp, err := mapping.New(reps, p)
			if err != nil {
				t.Fatalf("enumerator produced invalid mapping: %v", err)
			}
			inst, err := model.FromMapped(pipe, plat, mapp)
			if err != nil {
				return // missing link: infeasible, skip
			}
			res, err := core.Period(inst, cm)
			if err != nil {
				return
			}
			if bestMapp == nil || res.Period.Less(bestPeriod) {
				bestPeriod, bestMapp = res.Period, mapp
			}
			return
		}
		// Every non-empty subset of the free processors.
		for s := free; s != 0; s = (s - 1) & free {
			assign[stage] = s
			rec(stage+1, free&^s)
		}
	}
	rec(0, (1<<p)-1)
	return bestPeriod, bestMapp
}

// family is one generated problem.
type family struct {
	name string
	pipe *pipeline.Pipeline
	plat *platform.Platform
	cm   model.CommModel
}

// generatedFamilies draws small instances across the platform shapes that
// stress different parts of the search: full symmetry (uniform), none
// (heterogeneous), partial (equal-speed runs), and sparsity (missing links).
func generatedFamilies(t *testing.T, seeds []int64) []family {
	t.Helper()
	var out []family
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		add := func(kind string, n int, plat *platform.Platform, cm model.CommModel) {
			out = append(out, family{
				name: fmt.Sprintf("%s/seed=%d/n=%d/p=%d/%s", kind, seed, n, plat.NumProcs(), cm),
				pipe: pipeline.Random(rng, n, 50, 500),
				plat: plat,
				cm:   cm,
			})
		}
		add("uniform", 3, platform.Uniform(6, 10+seed, 100), model.Overlap)
		add("uniform", 2, platform.Uniform(4, 10, 50+10*seed), model.Strict)
		add("het", 3, platform.Random(rng, 5, 5, 25, 20, 200), model.Overlap)
		add("het", 2, platform.Random(rng, 4, 5, 25, 20, 200), model.Strict)
		// Partial symmetry: two equal-speed runs and a singleton on a
		// uniform interconnect.
		mixed, err := platform.New(
			[]int64{20, 20, 10 + seed, 10 + seed, 5},
			platform.Uniform(5, 1, 80).Bandwidths,
		)
		if err != nil {
			t.Fatal(err)
		}
		add("mixed", 3, mixed, model.Overlap)
		// Sparse: drop ~1/3 of the links of a heterogeneous platform.
		sp := platform.Random(rng, 5, 5, 25, 20, 200)
		for u := range sp.Bandwidths {
			for v := range sp.Bandwidths[u] {
				if u != v && rng.Intn(3) == 0 {
					sp.Bandwidths[u][v] = 0
				}
			}
		}
		add("sparse", 3, sp, model.Overlap)
	}
	return out
}

// TestSearchMatchesBruteForceOnGeneratedFamilies is the acceptance bar for
// exactness: on every family small enough to enumerate outright, the branch
// and bound must prove the same optimal period the brute force finds, and
// its reported mapping must actually achieve that period.
func TestSearchMatchesBruteForceOnGeneratedFamilies(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, f := range generatedFamilies(t, seeds) {
		t.Run(f.name, func(t *testing.T) {
			wantPeriod, wantMapp := bruteForceBest(t, f.pipe, f.plat, f.cm)
			eng := engine.New(engine.Options{Workers: 4})
			res, err := Search(context.Background(), eng, f.pipe, f.plat, f.cm,
				Options{Workers: 3, FrontierTarget: 8, ChunkSize: 16})
			if wantMapp == nil {
				if err == nil {
					t.Fatalf("no feasible mapping exists but Search returned %v", res.Mapping)
				}
				return
			}
			if err != nil {
				t.Fatalf("Search: %v", err)
			}
			if !res.Proven {
				t.Fatal("undeadlined Search did not prove its answer")
			}
			if !res.Period.Equal(wantPeriod) {
				t.Fatalf("Search period %v, brute force %v (mapping %v vs %v)",
					res.Period, wantPeriod, res.Mapping, wantMapp)
			}
			// The mapping must be real: recompute its period independently.
			inst, err := model.FromMapped(f.pipe, f.plat, res.Mapping)
			if err != nil {
				t.Fatalf("reported mapping unusable: %v", err)
			}
			check, err := core.Period(inst, f.cm)
			if err != nil {
				t.Fatal(err)
			}
			if !check.Period.Equal(res.Period) {
				t.Fatalf("reported period %v but mapping evaluates to %v", res.Period, check.Period)
			}
			if res.Stats.Nodes == 0 || res.Stats.Leaves+res.Stats.Pruned == 0 {
				t.Fatalf("implausible stats: %+v", res.Stats)
			}
		})
	}
}

// TestSearchBitIdenticalAcrossWorkerCounts pins the Bobpp-style determinism
// claim: with a fixed FrontierTarget/ChunkSize, the mapping, period, proven
// flag AND the node counts are identical at any worker count — for the
// search workers and for the engine pool alike.
func TestSearchBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, f := range generatedFamilies(t, []int64{5, 6}) {
		t.Run(f.name, func(t *testing.T) {
			opts := Options{FrontierTarget: 16, ChunkSize: 8}
			var ref Result
			var refErr error
			first := true
			for _, workers := range []int{1, 2, 7} {
				for _, engWorkers := range []int{1, 4} {
					eng := engine.New(engine.Options{Workers: engWorkers})
					o := opts
					o.Workers = workers
					res, err := Search(context.Background(), eng, f.pipe, f.plat, f.cm, o)
					if first {
						ref, refErr, first = res, err, false
						continue
					}
					if (err == nil) != (refErr == nil) {
						t.Fatalf("workers=%d/%d: err %v, reference err %v", workers, engWorkers, err, refErr)
					}
					if err != nil {
						continue
					}
					if res.Mapping.String() != ref.Mapping.String() ||
						!res.Period.Equal(ref.Period) ||
						res.Proven != ref.Proven ||
						res.Stats != ref.Stats {
						t.Fatalf("workers=%d/%d diverged:\n got %v %v proven=%v %+v\nwant %v %v proven=%v %+v",
							workers, engWorkers,
							res.Mapping, res.Period, res.Proven, res.Stats,
							ref.Mapping, ref.Period, ref.Proven, ref.Stats)
					}
				}
			}
		})
	}
}

// TestSearchWarmStartTiesGoToIncumbent: handing the proven optimum back in
// as the warm start must prune aggressively and return the warm mapping
// itself (ties go to the incumbent), still proven.
func TestSearchWarmStartTiesGoToIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pipe := pipeline.Random(rng, 3, 50, 500)
	plat := platform.Random(rng, 6, 5, 25, 20, 200)
	eng := engine.New(engine.Options{Workers: 4})
	first, err := Search(context.Background(), eng, pipe, plat, model.Overlap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Search(context.Background(), eng, pipe, plat, model.Overlap, Options{
		Incumbent:       first.Mapping,
		IncumbentPeriod: first.Period,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Proven || !warm.Period.Equal(first.Period) {
		t.Fatalf("warm-started search: proven=%v period=%v, want proven with %v", warm.Proven, warm.Period, first.Period)
	}
	if warm.Mapping.String() != first.Mapping.String() {
		t.Fatalf("tie did not go to the incumbent: %v vs %v", warm.Mapping, first.Mapping)
	}
	if warm.Stats.Pruned == 0 {
		t.Fatalf("an optimal incumbent pruned nothing: %+v", warm.Stats)
	}
	if warm.Stats.Leaves >= first.Stats.Leaves && first.Stats.Leaves > 0 {
		t.Fatalf("warm start did not reduce leaf evaluations: %d vs %d", warm.Stats.Leaves, first.Stats.Leaves)
	}
}

// TestSearchAnytimeUnderDeadline: on a space far too large to exhaust, an
// expiring context must hand back the warm incumbent promptly with Proven
// false — and a context canceled with no incumbent at all is an error.
func TestSearchAnytimeUnderDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pipe := pipeline.Random(rng, 4, 50, 500)
	plat := platform.Random(rng, 12, 5, 25, 20, 200)
	reps := make([][]int, 4)
	for i := range reps {
		reps[i] = []int{i}
	}
	warmMapp := mapping.MustNew(reps, plat.NumProcs())
	inst, err := model.FromMapped(pipe, plat, warmMapp)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := core.Period(inst, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Search(ctx, eng, pipe, plat, model.Overlap, Options{
		Workers:         2,
		Incumbent:       warmMapp,
		IncumbentPeriod: warmRes.Period,
	})
	if err != nil {
		t.Fatalf("anytime search errored with a warm incumbent: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline ignored: took %v", elapsed)
	}
	if res.Proven {
		t.Fatal("a 30 ms deadline cannot prove a 12-processor space")
	}
	if res.Mapping == nil || res.Period.Sign() <= 0 {
		t.Fatalf("anytime result unusable: %+v", res)
	}
	if warmRes.Period.Less(res.Period) {
		t.Fatalf("result %v is worse than the warm start %v", res.Period, warmRes.Period)
	}

	// Pre-canceled, no incumbent: a structured error, not a panic.
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Search(canceled, eng, pipe, plat, model.Overlap, Options{}); err == nil {
		t.Fatal("pre-canceled context without incumbent returned no error")
	}
}

// TestSearchErrors covers the argument guards.
func TestSearchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pipe := pipeline.Random(rng, 5, 50, 500)
	plat := platform.Uniform(3, 10, 100)
	eng := engine.New(engine.Options{})
	if _, err := Search(context.Background(), eng, pipe, plat, model.Overlap, Options{}); err == nil {
		t.Fatal("5 stages on 3 processors accepted")
	}
	// A platform with no links at all: every multi-stage mapping is
	// infeasible — structured error, not a panic.
	dark, err := platform.New([]int64{10, 10, 10}, [][]int64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	pipe2 := pipeline.Random(rng, 2, 50, 500)
	if _, err := Search(context.Background(), eng, pipe2, dark, model.Overlap, Options{}); err == nil {
		t.Fatal("linkless platform produced a mapping")
	}
}

// TestClassesOf pins the symmetry detector: maximal consecutive runs of
// interchangeable processors, ordered fastest first.
func TestClassesOf(t *testing.T) {
	// Uniform: one class holding everyone.
	cl := classesOf(platform.Uniform(5, 10, 100))
	if len(cl) != 1 || len(cl[0].members) != 5 {
		t.Fatalf("uniform platform classes = %+v", cl)
	}
	// Equal-speed runs on a uniform interconnect split by id runs, sorted by
	// speed: {3,4} (speed 20) before {0,1} (10) before {2} (5).
	plat, err := platform.New([]int64{10, 10, 5, 20, 20}, platform.Uniform(5, 1, 100).Bandwidths)
	if err != nil {
		t.Fatal(err)
	}
	cl = classesOf(plat)
	want := [][]int{{3, 4}, {0, 1}, {2}}
	if len(cl) != len(want) {
		t.Fatalf("classes = %+v", cl)
	}
	for i := range want {
		if len(cl[i].members) != len(want[i]) || cl[i].members[0] != want[i][0] {
			t.Fatalf("class %d = %+v, want members %v", i, cl[i], want[i])
		}
	}
	// Equal speeds but asymmetric bandwidth: NOT interchangeable.
	asym := platform.Uniform(3, 10, 100)
	asym.Bandwidths[0][2] = 7
	cl = classesOf(asym)
	if len(cl) != 3 {
		t.Fatalf("asymmetric-bandwidth processors merged: %+v", cl)
	}
	// A fully exchangeable pair separated by a different processor: the
	// consecutive-id restriction keeps them apart (exactness over reduction).
	gap, err := platform.New([]int64{10, 5, 10}, platform.Uniform(3, 1, 100).Bandwidths)
	if err != nil {
		t.Fatal(err)
	}
	if cl = classesOf(gap); len(cl) != 3 {
		t.Fatalf("non-consecutive equal processors merged: %+v", cl)
	}
}
