package bnb

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// BenchmarkBnBSearch measures the exact search end to end: tree walk,
// bounding and batched leaf evaluation through a shared (memoizing) engine —
// the resident-service shape, where repeated searches over a stable
// population hit the cache. nodes/op and prunedPct track the tree the bound
// actually leaves; they are deterministic for a fixed case, so regressions
// in the bound or the symmetry breaking show up as count jumps, not noise.
func BenchmarkBnBSearch(b *testing.B) {
	cases := []struct {
		name string
		pipe *pipeline.Pipeline
		plat *platform.Platform
	}{
		{
			name: "uniform-10x4",
			pipe: pipeline.Random(rand.New(rand.NewSource(1)), 4, 50, 500),
			plat: platform.Uniform(10, 12, 100),
		},
		{
			name: "het-7x3",
			pipe: pipeline.Random(rand.New(rand.NewSource(2)), 3, 50, 500),
			plat: platform.Random(rand.New(rand.NewSource(2)), 7, 5, 25, 20, 200),
		},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			eng := engine.New(engine.Options{})
			var last Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Search(context.Background(), eng, c.pipe, c.plat, model.Overlap, Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			if !last.Proven {
				b.Fatal("benchmark search did not prove its answer")
			}
			b.ReportMetric(float64(last.Stats.Nodes), "nodes/op")
			b.ReportMetric(float64(last.Stats.Leaves), "leaves/op")
			if total := last.Stats.Leaves + last.Stats.Pruned; total > 0 {
				b.ReportMetric(100*float64(last.Stats.Pruned)/float64(total), "prunedPct")
			}
		})
	}
}

// BenchmarkBnBLeafRate isolates the leaf-evaluation throughput the
// float-screening tier buys. The workload is re-verification: the search is
// warm-started with the proven optimum, so every leaf must be ruled out —
// by an exact evaluation on the exact backend, by the float screen (with
// exact fallback for the ambiguous band) on float-screen. Memoization is
// disabled: a shared memo cache would turn the exact run's repeat
// iterations into hash-map lookups and fake the comparison. The leaves/s
// metric (leaves ruled out per second of search) is what the CI gate in
// scripts/benchjson.awk checks: screened must be at least LEAF_GATE x the
// exact rate. The strict model on a heterogeneous platform is the family
// where exact arithmetic is at its most expensive — unfolded-TPN Karp
// tables over rationals whose denominators mix speeds and bandwidths.
func BenchmarkBnBLeafRate(b *testing.B) {
	pipe := pipeline.Random(rand.New(rand.NewSource(3)), 3, 50, 500)
	plat := platform.Random(rand.New(rand.NewSource(3)), 8, 5, 25, 20, 200)
	warm, err := Search(context.Background(), engine.New(engine.Options{}), pipe, plat, model.Strict, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if !warm.Proven {
		b.Fatal("warm-up search did not prove its answer")
	}
	for _, bc := range []struct {
		name    string
		backend cycles.Backend
	}{
		{"exact", cycles.BackendAuto},
		{"screened", cycles.BackendFloatScreen},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := engine.New(engine.Options{Backend: bc.backend, CacheEntries: -1})
			opts := Options{Incumbent: warm.Mapping, IncumbentPeriod: warm.Period}
			var last Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Search(context.Background(), eng, pipe, plat, model.Strict, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			if !last.Proven || !last.Period.Equal(warm.Period) {
				b.Fatalf("re-verification changed the answer: proven=%v period=%v", last.Proven, last.Period)
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(last.Stats.Leaves)*float64(b.N)/elapsed, "leaves/s")
			}
			b.ReportMetric(float64(last.Stats.Screened), "screened/op")
			b.ReportMetric(float64(last.Stats.Leaves), "leaves/op")
		})
	}
}
