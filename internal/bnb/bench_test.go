package bnb

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// BenchmarkBnBSearch measures the exact search end to end: tree walk,
// bounding and batched leaf evaluation through a shared (memoizing) engine —
// the resident-service shape, where repeated searches over a stable
// population hit the cache. nodes/op and prunedPct track the tree the bound
// actually leaves; they are deterministic for a fixed case, so regressions
// in the bound or the symmetry breaking show up as count jumps, not noise.
func BenchmarkBnBSearch(b *testing.B) {
	cases := []struct {
		name string
		pipe *pipeline.Pipeline
		plat *platform.Platform
	}{
		{
			name: "uniform-10x4",
			pipe: pipeline.Random(rand.New(rand.NewSource(1)), 4, 50, 500),
			plat: platform.Uniform(10, 12, 100),
		},
		{
			name: "het-7x3",
			pipe: pipeline.Random(rand.New(rand.NewSource(2)), 3, 50, 500),
			plat: platform.Random(rand.New(rand.NewSource(2)), 7, 5, 25, 20, 200),
		},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			eng := engine.New(engine.Options{})
			var last Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Search(context.Background(), eng, c.pipe, c.plat, model.Overlap, Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			if !last.Proven {
				b.Fatal("benchmark search did not prove its answer")
			}
			b.ReportMetric(float64(last.Stats.Nodes), "nodes/op")
			b.ReportMetric(float64(last.Stats.Leaves), "leaves/op")
			if total := last.Stats.Leaves + last.Stats.Pruned; total > 0 {
				b.ReportMetric(100*float64(last.Stats.Pruned)/float64(total), "prunedPct")
			}
		})
	}
}
