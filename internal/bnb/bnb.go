// Package bnb is the exact optimizer for the paper's Section 6 search
// problem: among all replicated interval-free mappings of a pipeline onto a
// heterogeneous platform, find one whose steady-state period is minimal —
// and prove it. The heuristics in package sched (greedy, hill climbing,
// annealing) are fast but certify nothing; this package runs a parallel
// branch-and-bound whose answer is the optimum over the whole space
// whenever it completes, and the best incumbent found so far when a
// deadline cuts it short.
//
// The search space is the one every heuristic in this repository inhabits:
// each stage is assigned a non-empty set of processors, sets are disjoint
// across stages (a processor executes at most one stage), and replicas
// within a stage serve data sets round-robin in ascending processor-id
// order. Stages are assigned in pipeline order; a tree node is a prefix of
// stage assignments.
//
// Three mechanisms keep the exponential tree tractable:
//
//   - Admissible bounding. Round-robin replication means every replica u of
//     stage i handles one data set in m_i, so any completion of a node
//     satisfies P >= w_i/(m_i·Π_u) for each assigned stage, and
//     P >= max_{j remaining} w_j / (m_max·Π_fastest-free) for the stages
//     still open, where m_max is the largest replica set a remaining stage
//     could still receive (free processors minus one per other open stage).
//     A node whose bound already meets the incumbent period is cut.
//
//   - Symmetry breaking. Processors that are provably interchangeable — equal
//     speed, and swapping them leaves the bandwidth matrix invariant — are
//     grouped into classes (restricted to consecutive-id runs, which makes
//     the argument exact under ascending-id replica order: class members of
//     a stage always occupy a contiguous block of round-robin positions, so
//     exchanging members never re-pairs anyone else). Within a class only
//     the canonical choice "first free members, in stage order" is
//     enumerated; on a uniform platform this collapses the per-stage choice
//     from subsets to replica counts.
//
//   - Deterministic work partitioning (the Bobpp recipe). The first tree
//     levels are expanded into a frontier of subtree roots; workers pull
//     root indices from a shared counter and explore each subtree
//     independently, batching complete mappings through the shared
//     engine.EvaluateBatch. Pruning inside a subtree uses only the greedy
//     warm start and that subtree's own discoveries, and subtree results
//     merge in frontier order — so the returned mapping, period, proven
//     flag and node counts are bit-identical at any worker count.
package bnb

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// Options configures a Search. The zero value searches with the engine's
// worker count, the default frontier and chunk sizes, and no warm start.
type Options struct {
	// Workers is the number of concurrent subtree explorers (<= 0 means the
	// engine's pool size). The result never depends on it.
	Workers int
	// FrontierTarget is the minimum number of subtree roots the deterministic
	// partitioning expands before workers start (default 64). It shifts load
	// balance and node counts, never the result; it must not be derived from
	// the worker count or the bit-identity guarantee degrades to
	// value-identity.
	FrontierTarget int
	// ChunkSize is the number of complete mappings batched per
	// engine.EvaluateBatch call during subtree exploration (default 128).
	ChunkSize int
	// Incumbent, when non-nil, warm-starts the search with a known-feasible
	// mapping whose exact period is IncumbentPeriod (sched passes the greedy
	// solution). The bound prunes against it from the first node, and it is
	// returned when nothing better exists.
	Incumbent       *mapping.Mapping
	IncumbentPeriod rat.Rat
	// OnProgress, when non-nil, receives incremental Stats deltas as the
	// search runs: each walker reports the counters it accumulated since its
	// previous report after every engine batch and once when it finishes, so
	// summing the deltas at any moment approximates the work done so far.
	// Deltas never overlap or go missing — the sum over a completed search
	// equals Result.Stats (minus Frontier, which is not a counter). The
	// callback runs on walker goroutines and must be safe for concurrent use
	// and cheap (it sits between engine batches). When a custom Executor or
	// a Replay entry produces a root's result, that root contributes one
	// delta (its whole SubResult.Stats) at completion instead of streaming.
	OnProgress func(Stats)

	// Executor, when non-nil, runs the frontier roots instead of the
	// in-process walker — the seam the cluster coordinator uses to ship
	// roots to worker nodes. eng may then be nil. Merge order and the
	// bit-identity guarantee are unaffected: results are still folded in
	// frontier order, whatever order they arrive in.
	Executor Executor

	// Replay maps frontier indices to results already known from a previous
	// run (a checkpoint). Replayed roots are never dispatched; their stats
	// and incumbents merge exactly as if the executor had just produced
	// them, so a resumed deterministic search is byte-identical to an
	// uninterrupted one. OnRootDone is not called for replayed roots.
	Replay map[int]SubResult

	// OnRootDone, when non-nil, is called once per executed root as it
	// completes, from worker goroutines (must be safe for concurrent use).
	// frontier is the total number of roots in the plan — the checkpoint
	// layer persists incremental progress through this callback and sizes
	// its done-bitmap from it. Replayed roots never trigger the callback.
	OnRootDone func(frontier int, root Root, res SubResult)

	// Racing trades bit-identity for wall-clock speed: each root is
	// dispatched with the best period known at dispatch time instead of the
	// original warm start, so one subtree's discovery prunes the others.
	// The returned period and Proven flag remain exact — pruning against
	// any feasible incumbent is admissible; only which optimal mapping wins
	// a tie (and the node counts) may differ from the deterministic mode.
	Racing bool
}

const (
	defaultFrontierTarget = 64
	defaultChunkSize      = 128
	// defaultRemoteWorkers is the dispatch concurrency when a custom
	// Executor is configured without an engine to borrow a pool size from.
	defaultRemoteWorkers = 8
)

// Stats counts the work the search performed. With a fixed Options
// configuration the counts are deterministic: they do not depend on the
// worker count (asserted by tests).
type Stats struct {
	// Nodes is the number of stage assignments constructed (interior tree
	// nodes, frontier expansion included).
	Nodes int64 `json:"nodes"`
	// Leaves is the number of complete mappings handed to the engine.
	Leaves int64 `json:"leaves"`
	// Pruned is the number of nodes cut by the lower bound.
	Pruned int64 `json:"pruned"`
	// Infeasible is the number of complete mappings rejected because the
	// platform lacks a link the mapping requires.
	Infeasible int64 `json:"infeasible"`
	// Screened is the number of leaves the float-screening tier discarded
	// without an exact evaluation: their enclosure's lower endpoint already
	// met the incumbent, so they provably could not improve it. Zero unless
	// the engine runs cycles.BackendFloatScreen. Screened leaves still count
	// in Leaves — screening changes how a leaf is ruled out, not whether it
	// was visited — so Nodes, Leaves, Pruned and the returned optimum are
	// bit-identical to an exact-backend run of the same Options.
	Screened int64 `json:"screened"`
	// Frontier is the number of subtree roots the partitioning produced.
	Frontier int `json:"frontier"`
}

func (s *Stats) add(o Stats) {
	s.Nodes += o.Nodes
	s.Leaves += o.Leaves
	s.Pruned += o.Pruned
	s.Infeasible += o.Infeasible
	s.Screened += o.Screened
}

// Result is the outcome of a Search.
type Result struct {
	// Mapping achieves Period; when Proven is true no replicated mapping of
	// the search space has a smaller period.
	Mapping *mapping.Mapping
	Period  rat.Rat
	// Proven reports that the tree was exhausted. False means the deadline
	// expired first: Mapping is the best incumbent (at worst the warm
	// start), not a certificate.
	Proven bool
	Stats  Stats
}

// Throughput returns 1/Period.
func (r Result) Throughput() rat.Rat { return rat.One().Div(r.Period) }

// incumbent is a feasible mapping with its exact period.
type incumbent struct {
	mapp   *mapping.Mapping
	period rat.Rat
}

// class is a maximal run of consecutive-id, mutually interchangeable
// processors.
type class struct {
	speed   int64
	members []int // ascending, consecutive ids
}

// problem is the read-only search context shared by all walkers.
type problem struct {
	pipe       *pipeline.Pipeline
	plat       *platform.Platform
	cm         model.CommModel
	n          int
	classes    []class // enumeration order: decreasing speed, then lowest id
	maxWork    []int64 // maxWork[i] = max work of stages i..n-1; maxWork[n] = 0
	chunkSize  int
	warm       *incumbent
	onProgress func(Stats)
}

func (p *problem) work(stage int) int64 { return p.pipe.Stages[stage].Work }

// Search runs the branch and bound. It is exact: when the returned Result
// has Proven set, its period is minimal over every replicated mapping with
// ascending-id round-robin order. Under a context deadline the search is
// anytime — the best incumbent found before the deadline is returned with
// Proven false; the error cases are a context canceled before any feasible
// mapping was known and a space with no feasible mapping at all.
func Search(ctx context.Context, eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, opts Options) (Result, error) {
	if opts.Workers <= 0 {
		if eng != nil {
			opts.Workers = eng.Workers()
		} else {
			opts.Workers = defaultRemoteWorkers
		}
	}
	if opts.FrontierTarget <= 0 {
		opts.FrontierTarget = defaultFrontierTarget
	}
	pr, err := newProblem(pipe, plat, cm, opts)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		if pr.warm != nil {
			return Result{Mapping: pr.warm.mapp, Period: pr.warm.period}, nil
		}
		return Result{}, err
	}

	// Phase 1: expand the first levels into the frontier of subtree roots.
	// The expansion prunes against the warm start only, so the frontier is a
	// pure function of the problem and FrontierTarget.
	frontier, depth, stats, interrupted := expandFrontier(ctx, pr, eng, opts.FrontierTarget)

	// Phase 2: workers pull root indices from a shared counter and hand each
	// root to the executor — the in-process walker by default, or whatever
	// Options.Executor supplies (remote nodes, checkpoint replay). Each
	// subtree runs against its dispatch-time warm period plus its own
	// discoveries, so its result and counts are deterministic (unless Racing
	// widens the warm period on purpose).
	results := make([]SubResult, len(frontier))
	if !interrupted && len(frontier) > 0 {
		exec := opts.Executor
		if exec == nil {
			exec = &LocalExecutor{pr: pr, eng: eng}
		}
		// The internal local executor shares pr and streams progress deltas
		// per engine batch; custom executors and replays contribute one delta
		// per completed root instead.
		streams := opts.Executor == nil
		roots := make([]Root, len(frontier))
		for i, nd := range frontier {
			roots[i] = rootOf(nd, i, depth)
		}
		warm0 := ""
		if pr.warm != nil {
			warm0 = pr.warm.period.String()
		}
		var raceMu sync.Mutex
		raceStr := warm0
		var raceBest rat.Rat
		raceHas := pr.warm != nil
		if raceHas {
			raceBest = pr.warm.period
		}
		improveRace := func(periodStr string) {
			p, perr := rat.Parse(periodStr)
			if perr != nil {
				return
			}
			raceMu.Lock()
			if !raceHas || p.Less(raceBest) {
				raceBest, raceHas, raceStr = p, true, periodStr
			}
			raceMu.Unlock()
		}
		workers := opts.Workers
		if workers > len(frontier) {
			workers = len(frontier)
		}
		var nextIdx atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(nextIdx.Add(1) - 1)
					if i >= len(frontier) {
						return
					}
					if rep, ok := opts.Replay[i]; ok {
						results[i] = rep
						if pr.onProgress != nil && rep.Stats != (Stats{}) {
							pr.onProgress(rep.Stats)
						}
						if opts.Racing && rep.BestPeriod != "" {
							improveRace(rep.BestPeriod)
						}
						continue
					}
					warm := warm0
					if opts.Racing {
						raceMu.Lock()
						warm = raceStr
						raceMu.Unlock()
					}
					res, err := exec.RunRoot(ctx, roots[i], warm)
					if err != nil {
						// The root was not explored (lost worker, malformed
						// descriptor). The search stays anytime: everything
						// else still merges, just without a certificate.
						res = SubResult{}
					}
					results[i] = res
					if !streams && pr.onProgress != nil && res.Stats != (Stats{}) {
						pr.onProgress(res.Stats)
					}
					if opts.Racing && res.BestPeriod != "" {
						improveRace(res.BestPeriod)
					}
					if err == nil && opts.OnRootDone != nil {
						opts.OnRootDone(len(roots), roots[i], res)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Merge in frontier order: the warm start wins ties, then the earliest
	// subtree — the same winner a single worker finds.
	best := pr.warm
	proven := !interrupted
	for i := range results {
		stats.add(results[i].Stats)
		if !results[i].Complete {
			proven = false
		}
		inc, incErr := results[i].incumbentOf(plat.NumProcs())
		if incErr != nil {
			proven = false // a corrupt wire result never certifies anything
			continue
		}
		if inc != nil && (best == nil || inc.period.Less(best.period)) {
			best = inc
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("bnb: no feasible replicated mapping (platform links cannot carry the pipeline)")
	}
	return Result{Mapping: best.mapp, Period: best.period, Proven: proven, Stats: stats}, nil
}

// node is a subtree root: assignments for stages 0..depth-1.
type node struct {
	replicas [][]int // per assigned stage, in class-enumeration order
	used     []int   // per class, members consumed (always a prefix)
	free     int     // processors not yet assigned
	lb       rat.Rat // computation lower bound contributed by assigned stages
}

// walker explores one subtree depth-first. It is single-goroutine state; the
// only shared object it touches is the engine.
type walker struct {
	pr         *problem
	ctx        context.Context
	eng        *engine.Engine
	depthLimit int      // stage at which assignments are snapshotted instead of recursed (n = explore fully)
	out        *[]*node // frontier accumulator for expansion walkers

	replicas [][]int
	used     []int
	free     int

	ref    rat.Rat // current pruning reference: min(warm start, local best)
	hasRef bool
	best   *incumbent // strictly better than the warm start, else nil
	screen bool       // engine backend is float-screen: pre-rank leaves in float

	chunk []*mapping.Mapping
	st    Stats
	pub   Stats // counters already reported through problem.onProgress
}

// publish reports the counters accumulated since the previous publish to
// the progress callback, if any.
func (w *walker) publish() {
	if w.pr.onProgress == nil {
		return
	}
	d := Stats{
		Nodes:      w.st.Nodes - w.pub.Nodes,
		Leaves:     w.st.Leaves - w.pub.Leaves,
		Pruned:     w.st.Pruned - w.pub.Pruned,
		Infeasible: w.st.Infeasible - w.pub.Infeasible,
		Screened:   w.st.Screened - w.pub.Screened,
	}
	w.pub = w.st
	if d != (Stats{}) {
		w.pr.onProgress(d)
	}
}

func newWalker(pr *problem, ctx context.Context, eng *engine.Engine, nd *node, depth, depthLimit int, out *[]*node, ref rat.Rat, hasRef bool) *walker {
	w := &walker{
		pr:         pr,
		ctx:        ctx,
		eng:        eng,
		depthLimit: depthLimit,
		out:        out,
		replicas:   make([][]int, pr.n),
		used:       append([]int(nil), nd.used...),
		free:       nd.free,
		screen:     eng != nil && eng.Backend() == cycles.BackendFloatScreen,
		ref:        ref,
		hasRef:     hasRef,
	}
	copy(w.replicas, nd.replicas)
	return w
}

// dfs handles the subtree below a node whose stages < stage are assigned and
// whose assigned-stage bound is lb.
func (w *walker) dfs(stage int, lb rat.Rat) error {
	if err := w.ctx.Err(); err != nil {
		return err
	}
	if stage == w.pr.n {
		return w.leaf()
	}
	if stage == w.depthLimit {
		nd := &node{
			replicas: cloneReplicas(w.replicas[:stage]),
			used:     append([]int(nil), w.used...),
			free:     w.free,
			lb:       lb,
		}
		*w.out = append(*w.out, nd)
		return nil
	}
	return w.choose(stage, 0, 0, 0, lb)
}

// choose enumerates the replica-set choices of one stage class by class:
// taken members of classes < c are already appended to replicas[stage]. The
// canonical form takes the first free members of each chosen class, so a
// choice is fully described by per-class counts.
func (w *walker) choose(stage, c, taken int, slowest int64, parentLB rat.Rat) error {
	if c == len(w.pr.classes) {
		if taken == 0 {
			return nil
		}
		w.st.Nodes++
		stageLB := rat.New(w.pr.work(stage), int64(taken)).DivInt(slowest)
		lb := rat.Max(parentLB, stageLB)
		bound := lb
		if remaining := w.pr.n - stage - 1; remaining > 0 {
			bound = rat.Max(bound, w.remainingBound(stage+1, remaining))
		}
		if w.hasRef && !bound.Less(w.ref) {
			w.st.Pruned++
			return nil
		}
		return w.dfs(stage+1, lb)
	}
	cl := &w.pr.classes[c]
	freeC := len(cl.members) - w.used[c]
	// Every later stage still needs a processor; w.free already excludes the
	// members taken for this stage so far.
	maxT := w.free - (w.pr.n - stage - 1)
	if maxT > freeC {
		maxT = freeC
	}
	if maxT < 0 {
		maxT = 0
	}
	// Largest counts first: the fastest classes are enumerated first and
	// replication only helps, so good incumbents appear early in DFS order.
	for t := maxT; t >= 0; t-- {
		sl := slowest
		if t > 0 {
			start := w.used[c]
			w.replicas[stage] = append(w.replicas[stage], cl.members[start:start+t]...)
			w.used[c] += t
			w.free -= t
			if sl == 0 || cl.speed < sl {
				sl = cl.speed
			}
		}
		err := w.choose(stage, c+1, taken+t, sl, parentLB)
		if t > 0 {
			w.used[c] -= t
			w.free += t
			w.replicas[stage] = w.replicas[stage][:len(w.replicas[stage])-t]
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// remainingBound is the optimistic completion bound for the open stages
// firstOpen..n-1: the heaviest of them runs on the largest replica set it
// could still receive, every member as fast as the fastest free processor.
func (w *walker) remainingBound(firstOpen, remaining int) rat.Rat {
	var fastest int64
	for c := range w.pr.classes {
		if len(w.pr.classes[c].members)-w.used[c] > 0 {
			fastest = w.pr.classes[c].speed
			break // classes are sorted by decreasing speed
		}
	}
	mMax := w.free - (remaining - 1)
	return rat.New(w.pr.maxWork[firstOpen], int64(mMax)).DivInt(fastest)
}

// leaf queues the complete assignment for evaluation.
func (w *walker) leaf() error {
	reps := make([][]int, w.pr.n)
	for i, r := range w.replicas {
		reps[i] = append([]int(nil), r...)
		sort.Ints(reps[i]) // round-robin order is ascending processor id
	}
	m, err := mapping.New(reps, w.pr.plat.NumProcs())
	if err != nil {
		// Unreachable by construction (sets are non-empty and disjoint);
		// counted rather than trusted.
		w.st.Infeasible++
		return nil
	}
	w.chunk = append(w.chunk, m)
	if len(w.chunk) >= w.pr.chunkSize {
		return w.flush()
	}
	return nil
}

// flush evaluates the queued mappings as one engine batch and folds the
// outcomes into the subtree incumbent.
func (w *walker) flush() error {
	defer w.publish() // one progress delta per engine batch
	if len(w.chunk) == 0 {
		return nil
	}
	idx := make([]int, 0, len(w.chunk))
	tasks := make([]engine.Task, 0, len(w.chunk))
	for k, m := range w.chunk {
		inst, err := model.FromMapped(w.pr.pipe, w.pr.plat, m)
		if err != nil {
			w.st.Infeasible++ // a required link is missing; skip, never abort
			continue
		}
		idx = append(idx, k)
		tasks = append(tasks, engine.Task{Inst: inst, Model: w.pr.cm})
		w.st.Leaves++ // counted here so Leaves and Infeasible never overlap
	}
	// Float screening: rank the chunk in float64 first and discard every
	// leaf whose enclosure proves it cannot beat the incumbent — exact ≥
	// lower endpoint ≥ ref means it can never replace w.best, whose update
	// below requires a strict improvement. The reference is the one at chunk
	// start for the whole chunk; a leaf earlier in the chunk can only LOWER
	// the reference, so screening against the stale (higher) value is sound.
	// Screening errors are impossible by error parity (the float sweep fails
	// exactly when the exact path fails), but an errored enclosure falls
	// through to the exact evaluation anyway so Infeasible stays exact-owned.
	if w.screen && w.hasRef && len(tasks) > 0 {
		aouts, err := w.eng.ApproxBatch(w.ctx, tasks)
		if err != nil {
			w.chunk = w.chunk[:0]
			return err
		}
		kept := 0
		for j := range tasks {
			if aouts[j].Err == nil && aouts[j].Period.AtLeast(w.ref) {
				w.st.Screened++
				continue
			}
			tasks[kept] = tasks[j]
			idx[kept] = idx[j]
			kept++
		}
		tasks = tasks[:kept]
		idx = idx[:kept]
	}
	outs, err := w.eng.EvaluateBatch(w.ctx, tasks)
	if err != nil {
		w.chunk = w.chunk[:0]
		return err
	}
	for j, o := range outs {
		if o.Err != nil {
			w.st.Infeasible++
			continue
		}
		if !w.hasRef || o.Result.Period.Less(w.ref) {
			w.best = &incumbent{mapp: w.chunk[idx[j]], period: o.Result.Period}
			w.ref = o.Result.Period
			w.hasRef = true
		}
	}
	w.chunk = w.chunk[:0]
	return nil
}

// classesOf groups processors into maximal consecutive-id runs of mutually
// interchangeable members, ordered by decreasing speed (ties: lowest id).
// Restricting classes to consecutive ids is what makes prefix selection
// exact under ascending-id round-robin order: no outside processor id can
// fall between two members, so a within-class relabeling never changes any
// replica's round-robin position.
func classesOf(plat *platform.Platform) []class {
	p := plat.NumProcs()
	var runs []class
	for u := 0; u < p; {
		run := class{speed: plat.Speeds[u], members: []int{u}}
		v := u + 1
		for ; v < p; v++ {
			ok := true
			for _, m := range run.members {
				if !interchangeable(plat, m, v) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			run.members = append(run.members, v)
		}
		runs = append(runs, run)
		u = v
	}
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].speed != runs[j].speed {
			return runs[i].speed > runs[j].speed
		}
		return runs[i].members[0] < runs[j].members[0]
	})
	return runs
}

// interchangeable reports whether swapping u and v leaves the platform
// invariant: equal speeds, equal mutual bandwidths, and identical bandwidth
// rows and columns towards every other processor. Mappings that differ only
// by such a swap have entrywise-identical timed instances.
func interchangeable(plat *platform.Platform, u, v int) bool {
	if plat.Speeds[u] != plat.Speeds[v] {
		return false
	}
	if plat.Bandwidths[u][v] != plat.Bandwidths[v][u] {
		return false
	}
	for x := 0; x < plat.NumProcs(); x++ {
		if x == u || x == v {
			continue
		}
		if plat.Bandwidths[u][x] != plat.Bandwidths[v][x] || plat.Bandwidths[x][u] != plat.Bandwidths[x][v] {
			return false
		}
	}
	return true
}

func cloneReplicas(replicas [][]int) [][]int {
	out := make([][]int, len(replicas))
	for i, r := range replicas {
		out[i] = append([]int(nil), r...)
	}
	return out
}
