// The explicit work plan: the deterministic frontier as serializable root
// descriptors, and an Executor seam so subtrees can run anywhere — in
// process (LocalExecutor), on another node (the cluster coordinator's
// remote executor), or not at all (checkpoint replay). The plan layer is
// what makes the search distributable and resumable without touching the
// bit-identity guarantee: a Root round-trips through JSON exactly (the
// bound is carried as an exact rational string), and merge order is the
// frontier index, never arrival order.

package bnb

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
)

// Root is one subtree root of the deterministic frontier: the assignments
// of stages 0..Depth-1 plus the bookkeeping a walker needs to resume the
// enumeration below it. Roots are JSON-codable and exact — LB is the
// assigned-stage lower bound as a rational string — so they can be shipped
// over the wire or persisted to a checkpoint and re-executed later with
// bit-identical outcomes. Index is the root's position in frontier order,
// which is also its merge priority.
type Root struct {
	Index    int     `json:"index"`
	Depth    int     `json:"depth"`
	Replicas [][]int `json:"replicas,omitempty"`
	Used     []int   `json:"used"`
	Free     int     `json:"free"`
	LB       string  `json:"lb"`
}

// node converts the wire form back into the walker's internal root.
func (r Root) node() (*node, error) {
	lb, err := rat.Parse(r.LB)
	if err != nil {
		return nil, fmt.Errorf("bnb: root %d has malformed bound: %w", r.Index, err)
	}
	return &node{
		replicas: cloneReplicas(r.Replicas),
		used:     append([]int(nil), r.Used...),
		free:     r.Free,
		lb:       lb,
	}, nil
}

func rootOf(nd *node, index, depth int) Root {
	return Root{
		Index:    index,
		Depth:    depth,
		Replicas: cloneReplicas(nd.replicas),
		Used:     append([]int(nil), nd.used...),
		Free:     nd.free,
		LB:       nd.lb.String(),
	}
}

// SubResult is the outcome of exploring one subtree root. Best is reported
// only when the subtree found a mapping strictly better than the warm
// period it was dispatched with; BestPeriod is its exact period as a
// rational string. Complete false means the exploration was cut short
// (deadline, cancel, or a lost remote worker) — the overall search result
// then loses its Proven flag, exactly as an in-process interruption would.
type SubResult struct {
	BestReplicas [][]int `json:"bestReplicas,omitempty"`
	BestPeriod   string  `json:"bestPeriod,omitempty"`
	Complete     bool    `json:"complete"`
	Stats        Stats   `json:"stats"`
}

// Executor runs one frontier root to completion. warm is the pruning
// reference the root starts from, as an exact rational string ("" means no
// reference: the subtree keeps everything feasible it finds). RunRoot must
// be safe for concurrent use; Search calls it from Options.Workers
// goroutines. A returned error means the root was not explored at all
// (infrastructure failure) — the search continues, unproven. A cancelled
// context is not an error: the executor reports what it found with
// Complete false, matching the in-process anytime behavior.
type Executor interface {
	RunRoot(ctx context.Context, root Root, warm string) (SubResult, error)
}

// Frontier expands the first tree levels into the deterministic frontier —
// the same expansion Search performs, exposed as a pure function of the
// problem, the warm period, and the target size. It never evaluates a
// leaf, so no engine is needed: a coordinator can plan a search it has no
// solver for. The returned Stats cover the expansion (Nodes/Pruned and the
// Frontier size); the root depth is uniform across the slice.
func Frontier(ctx context.Context, pipe *pipeline.Pipeline, plat *platform.Platform, warmPeriod string, target int) ([]Root, Stats, error) {
	// The communication model never matters here: expansion stops short of
	// the leaves, and only leaf evaluation consults it.
	pr, err := newProblem(pipe, plat, model.Overlap, Options{})
	if err != nil {
		return nil, Stats{}, err
	}
	if warmPeriod != "" {
		p, err := rat.Parse(warmPeriod)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("bnb: malformed warm period: %w", err)
		}
		pr.warm = &incumbent{period: p}
	}
	if target <= 0 {
		target = defaultFrontierTarget
	}
	frontier, depth, stats, interrupted := expandFrontier(ctx, pr, nil, target)
	if interrupted {
		return nil, Stats{}, ctx.Err()
	}
	roots := make([]Root, len(frontier))
	for i, nd := range frontier {
		roots[i] = rootOf(nd, i, depth)
	}
	return roots, stats, nil
}

// LocalExecutor explores subtree roots with the in-process walker — the
// same code path Search uses when no Executor is configured. It exists as
// a public type so a serving node can run roots shipped to it by a
// coordinator (the /v1/internal/subtree endpoint) with the exact pruning
// and counting semantics of a solo search.
type LocalExecutor struct {
	pr  *problem
	eng *engine.Engine
}

// NewLocalExecutor binds a problem to an engine. Options contribute
// ChunkSize and OnProgress (streamed per engine batch, from RunRoot's
// calling goroutine); the remaining fields are ignored here.
func NewLocalExecutor(eng *engine.Engine, pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, opts Options) (*LocalExecutor, error) {
	pr, err := newProblem(pipe, plat, cm, opts)
	if err != nil {
		return nil, err
	}
	return &LocalExecutor{pr: pr, eng: eng}, nil
}

// RunRoot explores one root depth-first against the given warm period.
func (e *LocalExecutor) RunRoot(ctx context.Context, root Root, warm string) (SubResult, error) {
	nd, err := root.node()
	if err != nil {
		return SubResult{}, err
	}
	ref := rat.Rat{}
	hasRef := false
	if warm != "" {
		if ref, err = rat.Parse(warm); err != nil {
			return SubResult{}, fmt.Errorf("bnb: malformed warm period: %w", err)
		}
		hasRef = true
	}
	w := newWalker(e.pr, ctx, e.eng, nd, root.Depth, e.pr.n, nil, ref, hasRef)
	runErr := w.dfs(root.Depth, nd.lb)
	if runErr == nil {
		runErr = w.flush()
	}
	w.publish()
	res := SubResult{Complete: runErr == nil, Stats: w.st}
	if w.best != nil {
		res.BestReplicas = w.best.mapp.Replicas
		res.BestPeriod = w.best.period.String()
	}
	return res, nil
}

// incumbentOf reconstructs the merge-layer incumbent from a wire result.
func (r SubResult) incumbentOf(numProcs int) (*incumbent, error) {
	if r.BestPeriod == "" {
		return nil, nil
	}
	period, err := rat.Parse(r.BestPeriod)
	if err != nil {
		return nil, fmt.Errorf("bnb: subresult has malformed period: %w", err)
	}
	m, err := mapping.New(cloneReplicas(r.BestReplicas), numProcs)
	if err != nil {
		return nil, fmt.Errorf("bnb: subresult has invalid mapping: %w", err)
	}
	return &incumbent{mapp: m, period: period}, nil
}

// newProblem validates the instance and builds the shared read-only search
// context. Defaults for ChunkSize are applied here so every construction
// path (Search, Frontier, NewLocalExecutor) agrees.
func newProblem(pipe *pipeline.Pipeline, plat *platform.Platform, cm model.CommModel, opts Options) (*problem, error) {
	n := pipe.NumStages()
	p := plat.NumProcs()
	if n > p {
		return nil, fmt.Errorf("bnb: %d stages need at least as many processors (got %d)", n, p)
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = defaultChunkSize
	}
	pr := &problem{
		pipe:       pipe,
		plat:       plat,
		cm:         cm,
		n:          n,
		classes:    classesOf(plat),
		maxWork:    make([]int64, n+1),
		chunkSize:  opts.ChunkSize,
		onProgress: opts.OnProgress,
	}
	for i := n - 1; i >= 0; i-- {
		pr.maxWork[i] = pr.maxWork[i+1]
		if w := pr.work(i); w > pr.maxWork[i] {
			pr.maxWork[i] = w
		}
	}
	if opts.Incumbent != nil {
		pr.warm = &incumbent{mapp: opts.Incumbent, period: opts.IncumbentPeriod}
	}
	return pr, nil
}

// expandFrontier runs phase 1: breadth-first expansion of the first levels
// until the frontier reaches target roots (or the tree runs out of depth).
// The expansion prunes against the warm start only, so the result is a
// pure function of the problem, warm period, and target — independent of
// workers, engine, and backend. eng may be nil: expansion never reaches a
// leaf (the depth limit stays below n), so the engine is never touched.
func expandFrontier(ctx context.Context, pr *problem, eng *engine.Engine, target int) (frontier []*node, depth int, stats Stats, interrupted bool) {
	frontier = []*node{{used: make([]int, len(pr.classes)), free: pr.plat.NumProcs()}}
	var ref rat.Rat
	hasRef := false
	if pr.warm != nil {
		ref = pr.warm.period
		hasRef = true
	}
	for depth < pr.n-1 && len(frontier) < target && len(frontier) > 0 {
		var next []*node
		for _, nd := range frontier {
			w := newWalker(pr, ctx, eng, nd, depth, depth+1, &next, ref, hasRef)
			if err := w.dfs(depth, nd.lb); err != nil {
				interrupted = true
			}
			w.publish()
			stats.add(w.st)
			if interrupted {
				break
			}
		}
		if interrupted {
			break
		}
		frontier = next
		depth++
	}
	stats.Frontier = len(frontier)
	return frontier, depth, stats, interrupted
}

var _ Executor = (*LocalExecutor)(nil)
