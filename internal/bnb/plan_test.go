package bnb

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// wireExecutor drives a LocalExecutor through a JSON round trip of both the
// root and the result — exactly what the cluster coordinator's remote
// executor does over HTTP — so any serialization loss would surface as a
// bit-identity failure in the tests below.
type wireExecutor struct {
	local *LocalExecutor
	ran   atomic.Int64
}

func (e *wireExecutor) RunRoot(ctx context.Context, root Root, warm string) (SubResult, error) {
	e.ran.Add(1)
	b, err := json.Marshal(root)
	if err != nil {
		return SubResult{}, err
	}
	var decoded Root
	if err := json.Unmarshal(b, &decoded); err != nil {
		return SubResult{}, err
	}
	res, err := e.local.RunRoot(ctx, decoded, warm)
	if err != nil {
		return SubResult{}, err
	}
	rb, err := json.Marshal(res)
	if err != nil {
		return SubResult{}, err
	}
	var out SubResult
	if err := json.Unmarshal(rb, &out); err != nil {
		return SubResult{}, err
	}
	return out, nil
}

// TestExecutorWireRoundTripBitIdentical pins the refactor's core claim: a
// Search whose roots travel through JSON to a LocalExecutor and whose
// results travel back the same way returns the identical mapping, period,
// proven flag and Stats as the default in-process Search.
func TestExecutorWireRoundTripBitIdentical(t *testing.T) {
	for _, f := range generatedFamilies(t, []int64{11, 12}) {
		t.Run(f.name, func(t *testing.T) {
			eng := engine.New(engine.Options{Workers: 4})
			opts := Options{FrontierTarget: 16, ChunkSize: 8}
			ref, refErr := Search(context.Background(), eng, f.pipe, f.plat, f.cm, opts)

			local, err := NewLocalExecutor(eng, f.pipe, f.plat, f.cm, opts)
			if err != nil {
				t.Fatal(err)
			}
			o := opts
			o.Executor = &wireExecutor{local: local}
			o.Workers = 3
			res, resErr := Search(context.Background(), nil, f.pipe, f.plat, f.cm, o)
			if (refErr == nil) != (resErr == nil) {
				t.Fatalf("err mismatch: local %v, wire %v", refErr, resErr)
			}
			if refErr != nil {
				return
			}
			if res.Mapping.String() != ref.Mapping.String() ||
				!res.Period.Equal(ref.Period) ||
				res.Proven != ref.Proven ||
				res.Stats != ref.Stats {
				t.Fatalf("wire executor diverged:\n got %v %v proven=%v %+v\nwant %v %v proven=%v %+v",
					res.Mapping, res.Period, res.Proven, res.Stats,
					ref.Mapping, ref.Period, ref.Proven, ref.Stats)
			}
		})
	}
}

// TestReplaySkipsRootsAndStaysBitIdentical simulates a checkpoint resume:
// the results of a first run are captured per root through OnRootDone, then
// a second run replays half of them — only the other half may execute, and
// the merged result must be identical.
func TestReplaySkipsRootsAndStaysBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pipe := pipeline.Random(rng, 3, 50, 500)
	plat := platform.Random(rng, 6, 5, 25, 20, 200)
	eng := engine.New(engine.Options{Workers: 4})
	opts := Options{FrontierTarget: 16, ChunkSize: 8}

	var mu sync.Mutex
	captured := map[int]SubResult{}
	o := opts
	var seenFrontier atomic.Int64
	o.OnRootDone = func(frontier int, root Root, res SubResult) {
		seenFrontier.Store(int64(frontier))
		mu.Lock()
		captured[root.Index] = res
		mu.Unlock()
	}
	ref, err := Search(context.Background(), eng, pipe, plat, model.Overlap, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(captured) != ref.Stats.Frontier {
		t.Fatalf("OnRootDone saw %d roots, frontier has %d", len(captured), ref.Stats.Frontier)
	}
	if got := int(seenFrontier.Load()); got != ref.Stats.Frontier {
		t.Fatalf("OnRootDone reported frontier %d, want %d", got, ref.Stats.Frontier)
	}

	replay := map[int]SubResult{}
	for idx, res := range captured {
		if idx%2 == 0 {
			replay[idx] = res
		}
	}
	local, err := NewLocalExecutor(eng, pipe, plat, model.Overlap, opts)
	if err != nil {
		t.Fatal(err)
	}
	exec := &wireExecutor{local: local}
	o2 := opts
	o2.Executor = exec
	o2.Replay = replay
	res, err := Search(context.Background(), nil, pipe, plat, model.Overlap, o2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(exec.ran.Load()), ref.Stats.Frontier-len(replay); got != want {
		t.Fatalf("executor ran %d roots, want only the %d unreplayed ones", got, want)
	}
	if res.Mapping.String() != ref.Mapping.String() ||
		!res.Period.Equal(ref.Period) ||
		res.Proven != ref.Proven ||
		res.Stats != ref.Stats {
		t.Fatalf("replayed search diverged:\n got %v %v proven=%v %+v\nwant %v %v proven=%v %+v",
			res.Mapping, res.Period, res.Proven, res.Stats,
			ref.Mapping, ref.Period, ref.Proven, ref.Stats)
	}
}

// TestRacingReturnsSameProvenOptimum: racing mode reorders incumbent flow
// for speed, which may change node counts and tie winners — but the proven
// optimal period must be exactly the deterministic one.
func TestRacingReturnsSameProvenOptimum(t *testing.T) {
	for _, f := range generatedFamilies(t, []int64{13}) {
		t.Run(f.name, func(t *testing.T) {
			eng := engine.New(engine.Options{Workers: 4})
			opts := Options{FrontierTarget: 16, ChunkSize: 8}
			ref, refErr := Search(context.Background(), eng, f.pipe, f.plat, f.cm, opts)
			o := opts
			o.Racing = true
			o.Workers = 3
			res, resErr := Search(context.Background(), eng, f.pipe, f.plat, f.cm, o)
			if (refErr == nil) != (resErr == nil) {
				t.Fatalf("err mismatch: deterministic %v, racing %v", refErr, resErr)
			}
			if refErr != nil {
				return
			}
			if !res.Proven {
				t.Fatal("racing search did not prove its answer")
			}
			if !res.Period.Equal(ref.Period) {
				t.Fatalf("racing optimum %v, deterministic %v", res.Period, ref.Period)
			}
		})
	}
}

// TestFrontierIsPureAndMatchesSearch: Frontier must be deterministic,
// engine-free, JSON-stable, and produce exactly the FrontierTarget behavior
// Search reports in Stats.Frontier.
func TestFrontierIsPureAndMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pipe := pipeline.Random(rng, 3, 50, 500)
	plat := platform.Random(rng, 6, 5, 25, 20, 200)
	eng := engine.New(engine.Options{Workers: 2})

	res, err := Search(context.Background(), eng, pipe, plat, model.Overlap, Options{FrontierTarget: 16, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	roots, stats, err := Frontier(context.Background(), pipe, plat, "", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != res.Stats.Frontier || stats.Frontier != res.Stats.Frontier {
		t.Fatalf("Frontier produced %d roots (stats %d), Search reported %d",
			len(roots), stats.Frontier, res.Stats.Frontier)
	}
	b1, err := json.Marshal(roots)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := Frontier(context.Background(), pipe, plat, "", 16)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("Frontier is not deterministic across calls")
	}
	for i, r := range roots {
		if r.Index != i {
			t.Fatalf("root %d carries index %d", i, r.Index)
		}
		var rt Root
		if err := json.Unmarshal(mustJSON(t, r), &rt); err != nil {
			t.Fatal(err)
		}
		nd1, err := r.node()
		if err != nil {
			t.Fatal(err)
		}
		nd2, err := rt.node()
		if err != nil {
			t.Fatal(err)
		}
		if !nd1.lb.Equal(nd2.lb) || nd1.free != nd2.free {
			t.Fatalf("root %d does not survive a JSON round trip", i)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
