package bnb

import (
	"context"
	"testing"

	"repro/internal/cycles"
	"repro/internal/engine"
)

// TestScreeningBitIdenticalAcrossWorkerCounts is the acceptance gate of the
// float-screening tier inside the branch and bound: with the engine on
// cycles.BackendFloatScreen, the mapping, period, proven flag, and the
// Nodes/Leaves/Pruned/Infeasible counts must be bit-identical to the exact
// run at every worker count — screening may only change HOW a leaf is ruled
// out (the Screened counter), never which leaves exist or who wins. The
// Screened count itself must also be deterministic across worker counts,
// and strictly positive somewhere, or the tier is dead code.
func TestScreeningBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// Small chunks and a small frontier give each subtree walker several
	// flushes, so the screen has a local incumbent to compare against from
	// the second chunk on even without a warm start.
	opts := Options{FrontierTarget: 4, ChunkSize: 2}
	var totalScreened int64
	for _, f := range generatedFamilies(t, []int64{5, 6}) {
		t.Run(f.name, func(t *testing.T) {
			exactEng := engine.New(engine.Options{Workers: 2})
			ref, refErr := Search(context.Background(), exactEng, f.pipe, f.plat, f.cm, opts)
			if refErr == nil && ref.Stats.Screened != 0 {
				t.Fatalf("exact backend screened %d leaves", ref.Stats.Screened)
			}
			firstScreened := int64(-1)
			for _, workers := range []int{1, 3} {
				for _, engWorkers := range []int{1, 4} {
					eng := engine.New(engine.Options{Workers: engWorkers, Backend: cycles.BackendFloatScreen})
					o := opts
					o.Workers = workers
					res, err := Search(context.Background(), eng, f.pipe, f.plat, f.cm, o)
					if (err == nil) != (refErr == nil) {
						t.Fatalf("workers=%d/%d: err %v, exact err %v", workers, engWorkers, err, refErr)
					}
					if err != nil {
						continue
					}
					if res.Mapping.String() != ref.Mapping.String() ||
						!res.Period.Equal(ref.Period) ||
						res.Proven != ref.Proven {
						t.Fatalf("workers=%d/%d: screened answer diverged:\n got %v %v proven=%v\nwant %v %v proven=%v",
							workers, engWorkers, res.Mapping, res.Period, res.Proven,
							ref.Mapping, ref.Period, ref.Proven)
					}
					if res.Stats.Nodes != ref.Stats.Nodes ||
						res.Stats.Leaves != ref.Stats.Leaves ||
						res.Stats.Pruned != ref.Stats.Pruned ||
						res.Stats.Infeasible != ref.Stats.Infeasible ||
						res.Stats.Frontier != ref.Stats.Frontier {
						t.Fatalf("workers=%d/%d: screened tree shape diverged:\n got %+v\nwant %+v",
							workers, engWorkers, res.Stats, ref.Stats)
					}
					if firstScreened < 0 {
						firstScreened = res.Stats.Screened
					} else if res.Stats.Screened != firstScreened {
						t.Fatalf("workers=%d/%d: Screened %d, want %d (must not depend on parallelism)",
							workers, engWorkers, res.Stats.Screened, firstScreened)
					}
					if res.Stats.Screened > res.Stats.Leaves {
						t.Fatalf("screened %d of only %d leaves", res.Stats.Screened, res.Stats.Leaves)
					}
				}
			}
			if firstScreened > 0 {
				totalScreened += firstScreened
			}
		})
	}
	if totalScreened == 0 {
		t.Fatal("no family screened a single leaf: the float tier never engaged")
	}
}

// TestScreeningWithWarmStartSkipsMostLeaves: warm-started with the proven
// optimum, the screen has its reference from the first chunk on, so on a
// well-conditioned family (periods separated by far more than the float
// error bound) nearly every leaf is screened and the result is still the
// incumbent, proven.
func TestScreeningWithWarmStartSkipsMostLeaves(t *testing.T) {
	fams := generatedFamilies(t, []int64{5})
	f := fams[0] // uniform overlap family: well-separated periods
	exactEng := engine.New(engine.Options{Workers: 2})
	first, err := Search(context.Background(), exactEng, f.pipe, f.plat, f.cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2, Backend: cycles.BackendFloatScreen})
	warm, err := Search(context.Background(), eng, f.pipe, f.plat, f.cm, Options{
		Incumbent:       first.Mapping,
		IncumbentPeriod: first.Period,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Proven || !warm.Period.Equal(first.Period) || warm.Mapping.String() != first.Mapping.String() {
		t.Fatalf("screened warm restart changed the answer: %v %v proven=%v, want %v %v",
			warm.Mapping, warm.Period, warm.Proven, first.Mapping, first.Period)
	}
	if warm.Stats.Leaves > 0 && warm.Stats.Screened == 0 {
		t.Fatalf("optimal warm start screened nothing across %d leaves", warm.Stats.Leaves)
	}
}
