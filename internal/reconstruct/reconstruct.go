// Package reconstruct recovers the concrete constants of the paper's
// Examples A and B by constraint solving.
//
// The paper's figures are images; their numeric labels survive in the text
// dump of the PDF, but the assignment of numbers to processors and links is
// ambiguous. Every quantitative claim the paper makes about the examples is,
// however, machine-checkable:
//
// Example A (Figure 2; 4 stages on P0 | P1,P2 | P3,P4,P5 | P6; 18 labels):
//   - OVERLAP: period P = 189, critical resource = output port of P0 (§4.1);
//   - STRICT: Mct = 215.83… = 1295/6 attained at P2 (§4.2),
//     period P = 230.7 = 1384/6 (§4.2);
//   - Figure 9 shows {157,165,13} and {77,68,57} as the two F1 sender rows.
//
// Example B (Figure 6; 2 stages on P0,P1,P2 | P3,P4,P5,P6; 19 labels, twelve
// "100" and seven "1000"):
//   - OVERLAP: Mct = 258.3 = 3100/12 at the output port of P2,
//     period P = 291.7 = 3500/12, i.e. no critical resource (§4.1).
//
// The searches below enumerate all label assignments consistent with the
// figure structure and keep those matching every reported number exactly.
package reconstruct

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rat"
)

// ExampleASolution is a fully-assigned Example A instance.
type ExampleASolution struct {
	Comp [7]int64 // c0..c6 for P0..P6
	T01  int64    // transfer time P0 -> P1 for F0
	T02  int64    // transfer time P0 -> P2 for F0
	T1   [3]int64 // P1 -> P3, P4, P5 for F1
	T2   [3]int64 // P2 -> P3, P4, P5 for F1
	T6   [3]int64 // P3, P4, P5 -> P6 for F2
}

// Instance materializes the solution as a timed instance.
func (s ExampleASolution) Instance() *model.Instance {
	ri := rat.FromInt
	comp := [][]rat.Rat{
		{ri(s.Comp[0])},
		{ri(s.Comp[1]), ri(s.Comp[2])},
		{ri(s.Comp[3]), ri(s.Comp[4]), ri(s.Comp[5])},
		{ri(s.Comp[6])},
	}
	comm := [][][]rat.Rat{
		{{ri(s.T01), ri(s.T02)}},
		{
			{ri(s.T1[0]), ri(s.T1[1]), ri(s.T1[2])},
			{ri(s.T2[0]), ri(s.T2[1]), ri(s.T2[2])},
		},
		{{ri(s.T6[0])}, {ri(s.T6[1])}, {ri(s.T6[2])}},
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}

// exampleALabels is the multiset of the 18 numeric labels of Figure 2.
var exampleALabels = []int64{147, 22, 104, 146, 23, 73, 128, 73, 77, 68, 13, 57, 157, 67, 126, 165, 186, 192}

// Paper-reported targets for Example A (exact rationals).
var (
	exAOverlapPeriod = rat.FromInt(189)
	exAStrictMct     = rat.New(1295, 6) // 215.83…
	exAStrictPeriod  = rat.New(1384, 6) // 230.67 ≈ "230.7"
)

// SearchExampleA enumerates assignments of the Figure 2 labels and returns
// every solution reproducing all reported numbers. The search is seeded by
// two deductions that drastically prune the space (both re-verified on the
// found solutions):
//
//   - Cout(P0) = (t01+t02)/2 must equal the overlap period 189, and
//     186+192 = 378 is the only label pair summing to 378;
//   - P2's strict cycle-time (t02 + c2 + Σ(P2's three F1 links))/2 /... must
//     equal 1295/6, which forces t02 = 192, c2 = 128 and P2's link set
//     {157, 165, 13} (the only combination of labels satisfying
//     3·(t02+c2) + ΣP2links = 1295 with the Figure 9 row sets).
func SearchExampleA() []ExampleASolution {
	// Fixed by the pruning deductions (re-checked below).
	const t01, t02, c2 = 186, 192, 128
	p2set := []int64{157, 165, 13}
	p1set := []int64{57, 68, 77}

	// Remaining nine labels fill c0, c1, c3, c4, c5, c6, t36, t46, t56.
	remaining := []int64{147, 22, 104, 146, 23, 73, 73, 67, 126}

	var sols []ExampleASolution
	seen := map[ExampleASolution]bool{}

	perms9 := permutations(remaining)
	perm3a := permutations(p1set)
	perm3b := permutations(p2set)
	for _, r := range perms9 {
		c0, c1, c3, c4, c5, c6 := r[0], r[1], r[2], r[3], r[4], r[5]
		t36, t46, t56 := r[6], r[7], r[8]
		// Cheap integer pre-filters (all cycle-times scaled by 6):
		// P0 strict: 6*(c0 + 189) < 1295 (P2 must be the unique maximum).
		if 6*(c0+189) >= 1295 {
			continue
		}
		// P6 strict: 6*Cin + 6*Ccomp = 2*(t36+t46+t56) + 6*c6 < 1295.
		if 2*(t36+t46+t56)+6*c6 >= 1295 {
			continue
		}
		// P1 strict: 3*t01 + 3*c1 + (57+68+77) < 1295.
		if 3*186+3*c1+202 >= 1295 {
			continue
		}
		for _, pa := range perm3a {
			for _, pb := range perm3b {
				s := ExampleASolution{
					Comp: [7]int64{c0, c1, c2, c3, c4, c5, c6},
					T01:  t01, T02: t02,
					T1: [3]int64{pa[0], pa[1], pa[2]},
					T2: [3]int64{pb[0], pb[1], pb[2]},
					T6: [3]int64{t36, t46, t56},
				}
				if seen[s] {
					continue
				}
				if checkExampleA(s) {
					seen[s] = true
					sols = append(sols, s)
				}
			}
		}
	}
	sortASolutions(sols)
	return sols
}

// checkExampleA verifies every paper-reported number on a candidate.
func checkExampleA(s ExampleASolution) bool {
	inst := s.Instance()
	// Strict Mct = 1295/6, attained only at P2 (stage 1, replica 1).
	if !inst.Mct(model.Strict).Equal(exAStrictMct) {
		return false
	}
	crit := inst.CriticalResources(model.Strict)
	if len(crit) != 1 || crit[0].Stage != 1 || crit[0].Replica != 1 {
		return false
	}
	// Overlap: period 189 with P0's output port critical.
	ov, err := core.PeriodOverlapPoly(inst)
	if err != nil || !ov.Period.Equal(exAOverlapPeriod) {
		return false
	}
	ovCrit := inst.CriticalResources(model.Overlap)
	if len(ovCrit) != 1 || ovCrit[0].Stage != 0 {
		return false
	}
	if !ovCrit[0].Cout.Equal(exAOverlapPeriod) {
		return false
	}
	// Strict period 1384/6 via the full TPN.
	st, err := core.PeriodTPN(inst, model.Strict)
	if err != nil || !st.Period.Equal(exAStrictPeriod) {
		return false
	}
	return true
}

// ExampleBSolution is a fully-assigned Example B instance: 3 senders
// (P0..P2), 4 receivers (P3..P6), one file.
type ExampleBSolution struct {
	Comp [7]int64    // c0..c2 senders, c3..c6 receivers
	T    [3][4]int64 // T[s][r]: transfer time P_s -> P_(3+r)
}

// Instance materializes the solution.
func (s ExampleBSolution) Instance() *model.Instance {
	ri := rat.FromInt
	comp := [][]rat.Rat{
		{ri(s.Comp[0]), ri(s.Comp[1]), ri(s.Comp[2])},
		{ri(s.Comp[3]), ri(s.Comp[4]), ri(s.Comp[5]), ri(s.Comp[6])},
	}
	comm := make([][][]rat.Rat, 1)
	comm[0] = make([][]rat.Rat, 3)
	for a := 0; a < 3; a++ {
		comm[0][a] = make([]rat.Rat, 4)
		for b := 0; b < 4; b++ {
			comm[0][a][b] = ri(s.T[a][b])
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}

// Paper-reported targets for Example B.
var (
	exBMct    = rat.New(3100, 12) // 258.33…
	exBPeriod = rat.New(3500, 12) // 291.67…
)

// SearchExampleB enumerates all placements of seven 1000-labels among the 19
// slots of Figure 6 (7 computation times, 12 link times; the other twelve
// labels are 100) and keeps those reproducing Mct = 3100/12 attained only at
// P2's output port, and overlap period 3500/12.
func SearchExampleB() []ExampleBSolution {
	var sols []ExampleBSolution
	// Iterate over 19-bit masks with exactly 7 ones.
	for mask := 0; mask < 1<<19; mask++ {
		if popcount(mask) != 7 {
			continue
		}
		var s ExampleBSolution
		val := func(bit int) int64 {
			if mask&(1<<bit) != 0 {
				return 1000
			}
			return 100
		}
		for i := 0; i < 7; i++ {
			s.Comp[i] = val(i)
		}
		bit := 7
		for a := 0; a < 3; a++ {
			for b := 0; b < 4; b++ {
				s.T[a][b] = val(bit)
				bit++
			}
		}
		if checkExampleB(s) {
			sols = append(sols, s)
		}
	}
	return sols
}

// checkExampleB verifies the reported Example B numbers, using cheap integer
// filters before the exact period computation.
func checkExampleB(s ExampleBSolution) bool {
	// m = lcm(3,4) = 12. Overlap cycle-times ×12 are integers:
	// sender a: Ccomp×12 = 4*c_a, Cout×12 = Σ_b T[a][b];
	// receiver b: Ccomp×12 = 3*c_(3+b), Cin×12 = Σ_a T[a][b].
	const target = 3100 // Mct × 12
	maxCT := int64(0)
	for a := 0; a < 3; a++ {
		comp := 4 * s.Comp[a]
		out := s.T[a][0] + s.T[a][1] + s.T[a][2] + s.T[a][3]
		if comp > maxCT {
			maxCT = comp
		}
		if out > maxCT {
			maxCT = out
		}
	}
	for b := 0; b < 4; b++ {
		comp := 3 * s.Comp[3+b]
		in := s.T[0][b] + s.T[1][b] + s.T[2][b]
		if comp > maxCT {
			maxCT = comp
		}
		if in > maxCT {
			maxCT = in
		}
	}
	if maxCT != target {
		return false
	}
	// The unique critical resource must be P2's output port.
	for a := 0; a < 3; a++ {
		out := s.T[a][0] + s.T[a][1] + s.T[a][2] + s.T[a][3]
		if out == target && a != 2 {
			return false
		}
		if 4*s.Comp[a] == target {
			return false
		}
	}
	if s.T[2][0]+s.T[2][1]+s.T[2][2]+s.T[2][3] != target {
		return false
	}
	for b := 0; b < 4; b++ {
		if 3*s.Comp[3+b] == target || s.T[0][b]+s.T[1][b]+s.T[2][b] == target {
			return false
		}
	}
	inst := s.Instance()
	if !inst.Mct(model.Overlap).Equal(exBMct) {
		return false
	}
	ov, err := core.PeriodOverlapPoly(inst)
	if err != nil || !ov.Period.Equal(exBPeriod) {
		return false
	}
	return true
}

// permutations returns all distinct permutations of xs (duplicates in xs are
// deduplicated).
func permutations(xs []int64) [][]int64 {
	var out [][]int64
	seen := map[string]bool{}
	var rec func(prefix []int64, rest []int64)
	rec = func(prefix, rest []int64) {
		if len(rest) == 0 {
			key := fmt.Sprint(prefix)
			if !seen[key] {
				seen[key] = true
				out = append(out, append([]int64(nil), prefix...))
			}
			return
		}
		used := map[int64]bool{}
		for i, x := range rest {
			if used[x] {
				continue
			}
			used[x] = true
			nrest := make([]int64, 0, len(rest)-1)
			nrest = append(nrest, rest[:i]...)
			nrest = append(nrest, rest[i+1:]...)
			rec(append(prefix, x), nrest)
		}
	}
	rec(nil, xs)
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func sortASolutions(sols []ExampleASolution) {
	sort.Slice(sols, func(i, j int) bool {
		return fmt.Sprint(sols[i]) < fmt.Sprint(sols[j])
	})
}
