package reconstruct

import (
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
)

// canonicalA is the solution baked into examplesdata (lexicographically
// smallest of the 500,256 assignments matching every reported number).
var canonicalA = ExampleASolution{
	Comp: [7]int64{22, 104, 128, 126, 146, 147, 23},
	T01:  186, T02: 192,
	T1: [3]int64{57, 68, 77},
	T2: [3]int64{13, 157, 165},
	T6: [3]int64{67, 73, 73},
}

// canonicalB is the first of the 4 (isomorphic) Example B solutions.
var canonicalB = ExampleBSolution{
	Comp: [7]int64{100, 100, 100, 100, 100, 100, 100},
	T: [3][4]int64{
		{1000, 100, 100, 1000},
		{100, 100, 1000, 1000},
		{1000, 1000, 1000, 100},
	},
}

func TestCanonicalExampleAPassesAllChecks(t *testing.T) {
	if !checkExampleA(canonicalA) {
		t.Fatal("canonical Example A fails the paper's reported numbers")
	}
}

func TestCanonicalExampleBPassesAllChecks(t *testing.T) {
	if !checkExampleB(canonicalB) {
		t.Fatal("canonical Example B fails the paper's reported numbers")
	}
}

func TestCanonicalMatchesExamplesdata(t *testing.T) {
	// The instance baked into examplesdata must be time-for-time identical
	// to the canonical solution here.
	want := canonicalA.Instance()
	got := examplesdata.ExampleA()
	for i := 0; i < want.NumStages(); i++ {
		for a := 0; a < want.Replication(i); a++ {
			if !want.CompTime(i, a).Equal(got.CompTime(i, a)) {
				t.Fatalf("comp time mismatch at stage %d replica %d", i, a)
			}
		}
	}
	for i := 0; i < want.NumStages()-1; i++ {
		for a := 0; a < want.Replication(i); a++ {
			for b := 0; b < want.Replication(i+1); b++ {
				if !want.CommTime(i, a, b).Equal(got.CommTime(i, a, b)) {
					t.Fatalf("comm time mismatch at F%d %d->%d", i, a, b)
				}
			}
		}
	}
	wantB := canonicalB.Instance()
	gotB := examplesdata.ExampleB()
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			if !wantB.CommTime(0, a, b).Equal(gotB.CommTime(0, a, b)) {
				t.Fatalf("Example B comm mismatch %d->%d", a, b)
			}
		}
	}
}

func TestPerturbedCanonicalFailsChecks(t *testing.T) {
	// Sanity of the checker itself: breaking any pinned value must fail.
	broken := canonicalA
	broken.T01, broken.T02 = broken.T02, broken.T01
	if checkExampleA(broken) {
		t.Error("swapped P0 link times still accepted")
	}
	broken = canonicalA
	broken.Comp[2] = 129
	if checkExampleA(broken) {
		t.Error("altered P2 computation time still accepted")
	}
	brokenB := canonicalB
	brokenB.T[2][3] = 1000 // P2's out sum becomes 4000
	if checkExampleB(brokenB) {
		t.Error("altered Example B still accepted")
	}
}

func TestExampleBSearchFindsExactlyFourSolutions(t *testing.T) {
	if testing.Short() {
		t.Skip("full 19-choose-7 enumeration skipped in -short mode")
	}
	sols := SearchExampleB()
	if len(sols) != 4 {
		t.Fatalf("Example B search found %d solutions, want 4", len(sols))
	}
	// All solutions must be proper relabelings: same sorted row-sum multiset.
	for _, s := range sols {
		rowSums := map[int64]int{}
		for a := 0; a < 3; a++ {
			sum := int64(0)
			for b := 0; b < 4; b++ {
				sum += s.T[a][b]
			}
			rowSums[sum]++
		}
		if rowSums[3100] != 1 || rowSums[2200] != 2 {
			t.Fatalf("solution %+v has row sums %v", s, rowSums)
		}
	}
}

func TestLabelMultisetConstant(t *testing.T) {
	// Guard against accidental edits: Figure 2's label multiset.
	counts := map[int64]int{}
	for _, v := range exampleALabels {
		counts[v]++
	}
	if len(exampleALabels) != 18 || counts[73] != 2 || counts[186] != 1 || counts[192] != 1 {
		t.Fatalf("label multiset corrupted: %v", exampleALabels)
	}
}

func TestSolutionInstancesValid(t *testing.T) {
	for _, inst := range []*model.Instance{canonicalA.Instance(), canonicalB.Instance()} {
		if inst.NumStages() < 2 {
			t.Fatal("bad instance")
		}
	}
}
