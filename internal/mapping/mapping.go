// Package mapping models the assignment of workflow stages to processors,
// including replication: stage S_i may be mapped onto m_i distinct
// processors that serve consecutive data sets in round-robin order.
//
// Two rules from the paper are enforced: a processor executes at most one
// stage, and replicas of a stage are used strictly round-robin. Under those
// rules data set j follows the path
//
//	(P_{0, j mod m_0}, P_{1, j mod m_1}, …, P_{n-1, j mod m_(n-1)})
//
// and the number of distinct paths is m = lcm(m_0, …, m_(n-1))
// (Proposition 1, illustrated by Table 1 for Example A).
package mapping

import (
	"encoding/json"
	"fmt"

	"repro/internal/rat"
)

// Mapping assigns each stage an ordered list of processor ids. The order
// matters: it is the round-robin order.
type Mapping struct {
	// Replicas[i] lists the processors executing stage i.
	Replicas [][]int `json:"replicas"`
}

// New builds a mapping and validates it against the given processor count.
func New(replicas [][]int, numProcs int) (*Mapping, error) {
	m := &Mapping{Replicas: replicas}
	if err := m.Validate(numProcs); err != nil {
		return nil, err
	}
	return m, nil
}

// MustNew is New but panics on error; for tests and fixed examples.
func MustNew(replicas [][]int, numProcs int) *Mapping {
	m, err := New(replicas, numProcs)
	if err != nil {
		panic(err)
	}
	return m
}

// NumStages returns the number of mapped stages.
func (m *Mapping) NumStages() int { return len(m.Replicas) }

// ReplicationCount returns m_i, the number of processors running stage i.
func (m *Mapping) ReplicationCount(i int) int { return len(m.Replicas[i]) }

// ReplicationCounts returns (m_0, …, m_(n-1)) as int64s.
func (m *Mapping) ReplicationCounts() []int64 {
	out := make([]int64, len(m.Replicas))
	for i, r := range m.Replicas {
		out[i] = int64(len(r))
	}
	return out
}

// Validate checks the paper's mapping rules: every stage has at least one
// replica, replica lists reference valid processors, and no processor
// executes more than one stage (nor appears twice in a stage).
func (m *Mapping) Validate(numProcs int) error {
	if len(m.Replicas) == 0 {
		return fmt.Errorf("mapping: no stages")
	}
	used := make(map[int]int) // proc -> stage
	for i, procs := range m.Replicas {
		if len(procs) == 0 {
			return fmt.Errorf("mapping: stage %d has no processors", i)
		}
		for _, u := range procs {
			if u < 0 || u >= numProcs {
				return fmt.Errorf("mapping: stage %d uses invalid processor %d (platform has %d)", i, u, numProcs)
			}
			if prev, ok := used[u]; ok {
				if prev == i {
					return fmt.Errorf("mapping: processor %d listed twice for stage %d", u, i)
				}
				return fmt.Errorf("mapping: processor %d assigned to both stage %d and stage %d", u, prev, i)
			}
			used[u] = i
		}
	}
	return nil
}

// PathCount returns m = lcm(m_0, …, m_(n-1)), the number of distinct paths
// followed by the input data (Proposition 1).
func (m *Mapping) PathCount() int64 {
	return rat.LCMAll(m.ReplicationCounts())
}

// ProcForDataSet returns the processor executing stage i for data set j
// (round-robin: replica j mod m_i).
func (m *Mapping) ProcForDataSet(i int, j int64) int {
	r := m.Replicas[i]
	return r[int(j%int64(len(r)))]
}

// Path returns the full processor path of data set j.
func (m *Mapping) Path(j int64) []int {
	out := make([]int, len(m.Replicas))
	for i := range m.Replicas {
		out[i] = m.ProcForDataSet(i, j)
	}
	return out
}

// Paths returns the m distinct paths, in the order they are first used
// (path j serves data sets j, j+m, j+2m, …). This regenerates Table 1.
func (m *Mapping) Paths() [][]int {
	n := m.PathCount()
	out := make([][]int, n)
	for j := int64(0); j < n; j++ {
		out[j] = m.Path(j)
	}
	return out
}

// StageOf returns the stage a processor executes and its replica index, or
// (-1, -1) if the processor is unused.
func (m *Mapping) StageOf(proc int) (stage, replica int) {
	for i, procs := range m.Replicas {
		for a, u := range procs {
			if u == proc {
				return i, a
			}
		}
	}
	return -1, -1
}

// UsedProcs returns all processors referenced by the mapping, in stage order.
func (m *Mapping) UsedProcs() []int {
	var out []int
	for _, procs := range m.Replicas {
		out = append(out, procs...)
	}
	return out
}

// UnmarshalJSON decodes without validation (the processor count is not known
// here); callers validate explicitly against their platform.
func (m *Mapping) UnmarshalJSON(data []byte) error {
	type alias Mapping
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*m = Mapping(a)
	return nil
}

// String renders e.g. "S0->[0] S1->[1 2] S2->[3 4 5] S3->[6]".
func (m *Mapping) String() string {
	s := ""
	for i, procs := range m.Replicas {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("S%d->%v", i, procs)
	}
	return s
}
