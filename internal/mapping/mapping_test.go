package mapping

import (
	"reflect"
	"testing"
)

// exampleA is the replication structure of the paper's Example A (Figure 2):
// S0 on P0; S1 on P1,P2; S2 on P3,P4,P5; S3 on P6.
func exampleA() *Mapping {
	return MustNew([][]int{{0}, {1, 2}, {3, 4, 5}, {6}}, 7)
}

func TestValidateRules(t *testing.T) {
	if _, err := New([][]int{{0}, {0}}, 2); err == nil {
		t.Error("processor shared across stages accepted")
	}
	if _, err := New([][]int{{0, 0}}, 2); err == nil {
		t.Error("duplicate replica accepted")
	}
	if _, err := New([][]int{{}}, 2); err == nil {
		t.Error("empty stage accepted")
	}
	if _, err := New([][]int{{5}}, 2); err == nil {
		t.Error("out-of-range processor accepted")
	}
	if _, err := New(nil, 2); err == nil {
		t.Error("empty mapping accepted")
	}
	if _, err := New([][]int{{0}, {1}}, 2); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
}

func TestPathCountProposition1(t *testing.T) {
	// Proposition 1: m = lcm(m_0, ..., m_(n-1)).
	cases := []struct {
		replicas [][]int
		procs    int
		want     int64
	}{
		{[][]int{{0}, {1, 2}, {3, 4, 5}, {6}}, 7, 6},        // Example A
		{[][]int{{0, 1, 2}, {3, 4, 5, 6}}, 7, 12},           // Example B
		{[][]int{{0}, {1}}, 2, 1},                           // no replication
		{[][]int{{0, 1}, {2, 3}}, 4, 2},                     // equal replication
		{[][]int{{0, 1, 2, 3}, {4, 5, 6, 7, 8, 9}}, 10, 12}, // gcd 2
	}
	for _, c := range cases {
		m := MustNew(c.replicas, c.procs)
		if got := m.PathCount(); got != c.want {
			t.Errorf("PathCount(%v) = %d, want %d", c.replicas, got, c.want)
		}
	}
}

func TestTable1ExampleA(t *testing.T) {
	// Table 1 of the paper: paths followed by the first 8 data sets.
	m := exampleA()
	want := [][]int{
		{0, 1, 3, 6},
		{0, 2, 4, 6},
		{0, 1, 5, 6},
		{0, 2, 3, 6},
		{0, 1, 4, 6},
		{0, 2, 5, 6},
		{0, 1, 3, 6}, // data set 6 repeats path 0
		{0, 2, 4, 6}, // data set 7 repeats path 1
	}
	for j, w := range want {
		if got := m.Path(int64(j)); !reflect.DeepEqual(got, w) {
			t.Errorf("Path(%d) = %v, want %v", j, got, w)
		}
	}
	paths := m.Paths()
	if len(paths) != 6 {
		t.Fatalf("Paths() returned %d paths, want 6", len(paths))
	}
	// All 6 paths distinct.
	seen := map[string]bool{}
	for _, p := range paths {
		k := ""
		for _, x := range p {
			k += string(rune('a' + x))
		}
		if seen[k] {
			t.Errorf("duplicate path %v", p)
		}
		seen[k] = true
	}
}

func TestStageOfAndUsedProcs(t *testing.T) {
	m := exampleA()
	if s, a := m.StageOf(4); s != 2 || a != 1 {
		t.Errorf("StageOf(4) = (%d,%d), want (2,1)", s, a)
	}
	if s, a := m.StageOf(42); s != -1 || a != -1 {
		t.Errorf("StageOf(42) = (%d,%d)", s, a)
	}
	if got := m.UsedProcs(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6}) {
		t.Errorf("UsedProcs = %v", got)
	}
	if got := m.ReplicationCounts(); !reflect.DeepEqual(got, []int64{1, 2, 3, 1}) {
		t.Errorf("ReplicationCounts = %v", got)
	}
}

func TestString(t *testing.T) {
	m := MustNew([][]int{{0}, {1, 2}}, 3)
	if got, want := m.String(), "S0->[0] S1->[1 2]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
