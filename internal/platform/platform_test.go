package platform

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/rat"
)

func TestUniform(t *testing.T) {
	p := Uniform(3, 10, 100)
	if p.NumProcs() != 3 {
		t.Fatalf("NumProcs = %d", p.NumProcs())
	}
	if !p.HasLink(0, 1) || p.HasLink(1, 1) {
		t.Error("link structure wrong")
	}
	if got := p.ComputeTime(25, 0); !got.Equal(rat.New(5, 2)) {
		t.Errorf("ComputeTime = %v", got)
	}
	if got := p.TransferTime(250, 0, 1); !got.Equal(rat.New(5, 2)) {
		t.Errorf("TransferTime = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Platform
	}{
		{"no procs", Platform{}},
		{"zero speed", Platform{Speeds: []int64{0}, Bandwidths: [][]int64{{0}}}},
		{"bad rows", Platform{Speeds: []int64{1, 2}, Bandwidths: [][]int64{{0, 1}}}},
		{"bad cols", Platform{Speeds: []int64{1, 2}, Bandwidths: [][]int64{{0, 1}, {1}}}},
		{"negative bw", Platform{Speeds: []int64{1, 2}, Bandwidths: [][]int64{{0, -1}, {1, 0}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestMissingLinkPanics(t *testing.T) {
	p := Platform{Speeds: []int64{1, 1}, Bandwidths: [][]int64{{0, 0}, {5, 0}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.HasLink(0, 1) {
		t.Fatal("phantom link")
	}
	if !p.HasLink(1, 0) {
		t.Fatal("missing link 1->0")
	}
	defer func() {
		if recover() == nil {
			t.Error("TransferTime on missing link did not panic")
		}
	}()
	p.TransferTime(10, 0, 1)
}

func TestStar(t *testing.T) {
	p, err := Star([]int64{10, 20, 30}, []int64{4, 8, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bandwidths[0][1] != 4 || p.Bandwidths[1][2] != 2 || p.Bandwidths[2][0] != 2 {
		t.Errorf("star bandwidths wrong: %v", p.Bandwidths)
	}
	if _, err := Star([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRandomRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Random(rng, 6, 5, 15, 10, 1000)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for u, s := range p.Speeds {
		if s < 5 || s > 15 {
			t.Fatalf("speed %d out of range", s)
		}
		for v, b := range p.Bandwidths[u] {
			if u == v {
				if b != 0 {
					t.Fatalf("diagonal bandwidth %d", b)
				}
				continue
			}
			if b < 10 || b > 1000 {
				t.Fatalf("bandwidth %d out of range", b)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Uniform(2, 3, 4)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.NumProcs() != 2 || q.Bandwidths[0][1] != 4 {
		t.Errorf("round trip mismatch: %+v", q)
	}
	var bad Platform
	if err := json.Unmarshal([]byte(`{"speeds":[0],"bandwidths":[[0]]}`), &bad); err == nil {
		t.Error("invalid platform decoded")
	}
}
