// Package platform models the fully heterogeneous execution platform of the
// paper: p processors with individual speeds Π_u (FLOP/s) and bidirectional
// logical links link_{u,v} with bandwidths b_{u,v} (bytes/s). Links need not
// be physical; a star-shaped physical network with a central switch is
// represented by its logical complete graph.
package platform

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/rat"
)

// Platform describes processors and link bandwidths.
type Platform struct {
	// Speeds[u] is Π_u, the speed of processor u in FLOP/s. Must be > 0.
	Speeds []int64 `json:"speeds"`
	// Bandwidths[u][v] is b_{u,v} in bytes/s for the directed logical link
	// u -> v. A zero entry means "no link"; the diagonal is ignored.
	Bandwidths [][]int64 `json:"bandwidths"`
}

// New builds a platform after validating shapes.
func New(speeds []int64, bandwidths [][]int64) (*Platform, error) {
	p := &Platform{Speeds: speeds, Bandwidths: bandwidths}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NumProcs returns p, the number of processors.
func (p *Platform) NumProcs() int { return len(p.Speeds) }

// Validate checks matrix shape and positivity of speeds.
func (p *Platform) Validate() error {
	n := len(p.Speeds)
	if n == 0 {
		return fmt.Errorf("platform: no processors")
	}
	for u, s := range p.Speeds {
		if s <= 0 {
			return fmt.Errorf("platform: processor %d has non-positive speed %d", u, s)
		}
	}
	if len(p.Bandwidths) != n {
		return fmt.Errorf("platform: bandwidth matrix has %d rows, want %d", len(p.Bandwidths), n)
	}
	for u, row := range p.Bandwidths {
		if len(row) != n {
			return fmt.Errorf("platform: bandwidth row %d has %d entries, want %d", u, len(row), n)
		}
		for v, b := range row {
			if b < 0 {
				return fmt.Errorf("platform: negative bandwidth b[%d][%d] = %d", u, v, b)
			}
		}
	}
	return nil
}

// HasLink reports whether a link u -> v with positive bandwidth exists.
func (p *Platform) HasLink(u, v int) bool {
	return u != v && p.Bandwidths[u][v] > 0
}

// ComputeTime returns w/Π_u, the time for processor u to execute w FLOP.
func (p *Platform) ComputeTime(w int64, u int) rat.Rat {
	return rat.New(w, p.Speeds[u])
}

// TransferTime returns δ/b_{u,v}, the time to ship δ bytes from u to v.
// It panics if the link does not exist.
func (p *Platform) TransferTime(delta int64, u, v int) rat.Rat {
	if !p.HasLink(u, v) {
		panic(fmt.Sprintf("platform: no link %d -> %d", u, v))
	}
	return rat.New(delta, p.Bandwidths[u][v])
}

// UnmarshalJSON validates after decoding.
func (p *Platform) UnmarshalJSON(data []byte) error {
	type alias Platform
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*p = Platform(a)
	return p.Validate()
}

// Uniform builds a homogeneous platform: n processors of the given speed,
// complete interconnect with the given bandwidth.
func Uniform(n int, speed, bandwidth int64) *Platform {
	speeds := make([]int64, n)
	bw := make([][]int64, n)
	for u := range speeds {
		speeds[u] = speed
		bw[u] = make([]int64, n)
		for v := range bw[u] {
			if u != v {
				bw[u][v] = bandwidth
			}
		}
	}
	p, err := New(speeds, bw)
	if err != nil {
		panic(err)
	}
	return p
}

// Star builds the logical complete platform induced by a physical star: each
// processor u has an up/down link capacity cap[u] to the central switch, and
// the logical bandwidth between u and v is min(cap[u], cap[v]).
func Star(speeds, linkCaps []int64) (*Platform, error) {
	if len(speeds) != len(linkCaps) {
		return nil, fmt.Errorf("platform: %d speeds but %d link capacities", len(speeds), len(linkCaps))
	}
	n := len(speeds)
	bw := make([][]int64, n)
	for u := range bw {
		bw[u] = make([]int64, n)
		for v := range bw[u] {
			if u == v {
				continue
			}
			bw[u][v] = min64(linkCaps[u], linkCaps[v])
		}
	}
	return New(speeds, bw)
}

// Random builds a fully heterogeneous complete platform with speeds in
// [speedLo, speedHi] and bandwidths in [bwLo, bwHi], all inclusive.
func Random(rng *rand.Rand, n int, speedLo, speedHi, bwLo, bwHi int64) *Platform {
	if n < 1 || speedLo < 1 || speedHi < speedLo || bwLo < 1 || bwHi < bwLo {
		panic("platform: bad Random parameters")
	}
	speeds := make([]int64, n)
	bw := make([][]int64, n)
	for u := range speeds {
		speeds[u] = speedLo + rng.Int63n(speedHi-speedLo+1)
		bw[u] = make([]int64, n)
		for v := range bw[u] {
			if u != v {
				bw[u][v] = bwLo + rng.Int63n(bwHi-bwLo+1)
			}
		}
	}
	p, err := New(speeds, bw)
	if err != nil {
		panic(err)
	}
	return p
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
