package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/examplesdata"
	"repro/internal/model"
)

func TestPerturbationValidate(t *testing.T) {
	if err := (Perturbation{JitterPct: -1}).Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
	if err := (Perturbation{JitterPct: 100}).Validate(); err == nil {
		t.Error("100% jitter accepted")
	}
	if err := (Perturbation{JitterPct: 0}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestZeroJitterIsIdentity(t *testing.T) {
	inst := examplesdata.ExampleB()
	rng := rand.New(rand.NewSource(1))
	s, err := Perturbation{JitterPct: 0}.Sample(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.NumStages(); i++ {
		for a := 0; a < inst.Replication(i); a++ {
			if !s.CompTime(i, a).Equal(inst.CompTime(i, a)) {
				t.Fatal("zero jitter changed a computation time")
			}
		}
	}
}

func TestSampleWithinBounds(t *testing.T) {
	inst := examplesdata.ExampleB()
	rng := rand.New(rand.NewSource(2))
	pert := Perturbation{JitterPct: 20}
	for trial := 0; trial < 10; trial++ {
		s, err := pert.Sample(inst, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < inst.NumStages()-1; i++ {
			for a := 0; a < inst.Replication(i); a++ {
				for b := 0; b < inst.Replication(i+1); b++ {
					orig := inst.CommTime(i, a, b).Float64()
					got := s.CommTime(i, a, b).Float64()
					if got < orig*0.8-1e-9 || got > orig*1.2+1e-9 {
						t.Fatalf("perturbed time %v outside ±20%% of %v", got, orig)
					}
				}
			}
		}
	}
}

func TestMonteCarloStats(t *testing.T) {
	inst := examplesdata.ExampleB()
	st, err := MonteCarlo(inst, model.Overlap, Perturbation{JitterPct: 10}, 40, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 40 {
		t.Fatalf("runs = %d", st.Runs)
	}
	base := 3500.0 / 12
	if st.BasePeriod != base {
		t.Errorf("base period = %v", st.BasePeriod)
	}
	if st.MinPeriod > st.MeanPeriod || st.MeanPeriod > st.MaxPeriod {
		t.Errorf("inconsistent stats: %+v", st)
	}
	// ±10% jitter keeps the period within ±10% of the base.
	if st.MinPeriod < base*0.9-1e-9 || st.MaxPeriod > base*1.1+1e-9 {
		t.Errorf("period range [%v, %v] outside ±10%% of %v", st.MinPeriod, st.MaxPeriod, base)
	}
	if st.StdDev < 0 {
		t.Error("negative stddev")
	}
}

func TestMonteCarloDeterministicAcrossParallelism(t *testing.T) {
	inst := examplesdata.ExampleA()
	a, err := MonteCarlo(inst, model.Strict, Perturbation{JitterPct: 15}, 20, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(inst, model.Strict, Perturbation{JitterPct: 15}, 20, 11, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The per-sample outcomes are identical (seeded per job); only float
	// accumulation order may differ, so compare with a tolerance.
	if math.Abs(a.MeanPeriod-b.MeanPeriod) > 1e-9 || a.NoCritical != b.NoCritical ||
		a.MinPeriod != b.MinPeriod || a.MaxPeriod != b.MaxPeriod {
		t.Fatalf("parallelism changed Monte-Carlo outcome: %+v vs %+v", a, b)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	inst := examplesdata.ExampleA()
	if _, err := MonteCarlo(inst, model.Overlap, Perturbation{JitterPct: 10}, 0, 1, 1); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := MonteCarlo(inst, model.Overlap, Perturbation{JitterPct: 150}, 5, 1, 1); err == nil {
		t.Error("invalid perturbation accepted")
	}
}
