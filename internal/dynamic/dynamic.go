// Package dynamic explores the paper's stated future work (Section 6):
// platforms whose processor speeds and link bandwidths are random variables.
//
// Given a base instance, each Monte-Carlo sample multiplies every operation
// time by an independent factor drawn uniformly from
// [1-jitter%, 1+jitter%] (in exact rational arithmetic), recomputes the
// period, and aggregates the distribution of periods and of the
// period-to-Mct gap.
package dynamic

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/rat"
)

// Perturbation scales each operation time by (100 + U{-JitterPct..+JitterPct})/100.
type Perturbation struct {
	JitterPct int
}

// Validate checks bounds.
func (p Perturbation) Validate() error {
	if p.JitterPct < 0 || p.JitterPct >= 100 {
		return fmt.Errorf("dynamic: jitter must be in [0, 100), got %d", p.JitterPct)
	}
	return nil
}

// factor draws the random scaling as an exact rational.
func (p Perturbation) factor(rng *rand.Rand) rat.Rat {
	if p.JitterPct == 0 {
		return rat.One()
	}
	delta := rng.Int63n(2*int64(p.JitterPct)+1) - int64(p.JitterPct)
	return rat.New(100+delta, 100)
}

// Sample draws one perturbed instance.
func (p Perturbation) Sample(inst *model.Instance, rng *rand.Rand) (*model.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := inst.NumStages()
	comp := make([][]rat.Rat, n)
	for i := 0; i < n; i++ {
		comp[i] = make([]rat.Rat, inst.Replication(i))
		for a := range comp[i] {
			comp[i][a] = inst.CompTime(i, a).Mul(p.factor(rng))
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := 0; i < n-1; i++ {
		comm[i] = make([][]rat.Rat, inst.Replication(i))
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, inst.Replication(i+1))
			for b := range comm[i][a] {
				comm[i][a][b] = inst.CommTime(i, a, b).Mul(p.factor(rng))
			}
		}
	}
	return model.FromTimes(comp, comm)
}

// Stats summarizes a Monte-Carlo run.
type Stats struct {
	Runs int
	// MinPeriod, MeanPeriod, MaxPeriod and StdDev describe the period
	// distribution (float64 summaries of exact per-run values).
	MinPeriod, MeanPeriod, MaxPeriod, StdDev float64
	// NoCritical counts samples whose period strictly exceeds Mct.
	NoCritical int
	// MeanGapPct is the mean relative gap (P-Mct)/Mct in percent over all
	// samples (zero-gap samples included).
	MeanGapPct float64
	// BasePeriod is the unperturbed period.
	BasePeriod float64
}

// MonteCarlo evaluates `runs` perturbed instances under the given model,
// using a bounded worker pool (parallelism 0 = GOMAXPROCS).
func MonteCarlo(inst *model.Instance, cm model.CommModel, pert Perturbation, runs int, seed int64, parallelism int) (Stats, error) {
	eng := engine.New(engine.Options{Workers: parallelism, CacheEntries: -1})
	return MonteCarloEngine(context.Background(), eng, inst, cm, pert, runs, seed)
}

// MonteCarloEngine runs the Monte-Carlo campaign on the given engine's
// worker pool. Sample k derives its rng from seed+k and outcomes aggregate
// in index order, so the statistics are bit-identical at any worker count.
// Samples bypass the engine's memo cache: each perturbed instance has
// unique exact times, so caching them would only displace entries a shared
// engine's other workloads (mapping search) actually revisit.
func MonteCarloEngine(ctx context.Context, eng *engine.Engine, inst *model.Instance, cm model.CommModel, pert Perturbation, runs int, seed int64) (Stats, error) {
	if err := pert.Validate(); err != nil {
		return Stats{}, err
	}
	if runs < 1 {
		return Stats{}, fmt.Errorf("dynamic: need at least one run")
	}
	base, err := core.Period(inst, cm)
	if err != nil {
		return Stats{}, err
	}
	type outcome struct {
		period float64
		gapPct float64
		noCrit bool
		err    error
	}
	outs := make([]outcome, runs)
	if err := eng.ForEach(ctx, runs, func(k int) {
		rng := rand.New(rand.NewSource(seed + int64(k)))
		sample, err := pert.Sample(inst, rng)
		if err != nil {
			outs[k] = outcome{err: err}
			return
		}
		res, err := core.Period(sample, cm)
		if err != nil {
			outs[k] = outcome{err: err}
			return
		}
		outs[k] = outcome{
			period: res.Period.Float64(),
			gapPct: res.Gap().Float64() * 100,
			noCrit: !res.HasCriticalResource(),
		}
	}); err != nil {
		return Stats{}, err
	}

	st := Stats{Runs: runs, BasePeriod: base.Period.Float64(), MinPeriod: math.Inf(1), MaxPeriod: math.Inf(-1)}
	var sum, sumSq, gapSum float64
	var firstErr error
	seen := 0
	for _, o := range outs {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		seen++
		sum += o.period
		sumSq += o.period * o.period
		gapSum += o.gapPct
		if o.period < st.MinPeriod {
			st.MinPeriod = o.period
		}
		if o.period > st.MaxPeriod {
			st.MaxPeriod = o.period
		}
		if o.noCrit {
			st.NoCritical++
		}
	}
	if firstErr != nil {
		return st, firstErr
	}
	st.Runs = seen
	if seen > 0 {
		st.MeanPeriod = sum / float64(seen)
		st.MeanGapPct = gapSum / float64(seen)
		variance := sumSq/float64(seen) - st.MeanPeriod*st.MeanPeriod
		if variance > 0 {
			st.StdDev = math.Sqrt(variance)
		}
	}
	return st, nil
}
