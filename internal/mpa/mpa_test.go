package mpa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
	"repro/internal/tpn"
)

func TestScalarSemiring(t *testing.T) {
	a, b := SInt(3), SInt(5)
	if !a.Oplus(b).Equal(b) || !b.Oplus(a).Equal(b) {
		t.Error("oplus is not max")
	}
	if !a.Otimes(b).Equal(SInt(8)) {
		t.Error("otimes is not +")
	}
	if !NegInf().Oplus(a).Equal(a) {
		t.Error("-inf not neutral for oplus")
	}
	if !NegInf().Otimes(a).IsNegInf() {
		t.Error("-inf not absorbing for otimes")
	}
	if NegInf().String() != "-inf" || a.String() != "3" {
		t.Error("String wrong")
	}
	if NegInf().Equal(a) || !NegInf().Equal(NegInf()) {
		t.Error("Equal wrong")
	}
}

func TestRatPanicsOnNegInf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rat() on -inf did not panic")
		}
	}()
	NegInf().Rat()
}

func TestIdentityAndMul(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, SInt(2))
	m.Set(1, 2, SInt(3))
	m.Set(2, 0, SInt(4))
	id := Identity(3)
	if !m.Mul(id).At(0, 1).Equal(SInt(2)) || !id.Mul(m).At(1, 2).Equal(SInt(3)) {
		t.Error("identity law broken")
	}
	// m² should contain the 2-step path 0->1->2 of weight 5.
	m2 := m.Mul(m)
	if !m2.At(0, 2).Equal(SInt(5)) {
		t.Errorf("m2[0][2] = %v", m2.At(0, 2))
	}
	// m³ diagonal = full cycle weight 9.
	m3 := m.Pow(3)
	for i := 0; i < 3; i++ {
		if !m3.At(i, i).Equal(SInt(9)) {
			t.Errorf("m3[%d][%d] = %v", i, i, m3.At(i, i))
		}
	}
	if !m.Pow(0).At(1, 1).Equal(SInt(0)) {
		t.Error("Pow(0) is not identity")
	}
}

func TestApply(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, SInt(1))
	m.Set(0, 1, SInt(10))
	m.Set(1, 0, SInt(2))
	x := []Scalar{SInt(0), SInt(0)}
	y := m.Apply(x)
	if !y[0].Equal(SInt(10)) || !y[1].Equal(SInt(2)) {
		t.Errorf("Apply = %v", y)
	}
	// -inf coordinates propagate.
	x = []Scalar{SInt(0), NegInf()}
	y = m.Apply(x)
	if !y[0].Equal(SInt(1)) {
		t.Errorf("Apply with -inf = %v", y)
	}
}

func TestStar(t *testing.T) {
	// Acyclic weights: star exists.
	m := NewMatrix(3)
	m.Set(1, 0, SInt(2)) // edge 0 -> 1 in x = m x convention (row=target)
	m.Set(2, 1, SInt(3))
	star, err := m.Star()
	if err != nil {
		t.Fatal(err)
	}
	if !star.At(2, 0).Equal(SInt(5)) {
		t.Errorf("star[2][0] = %v", star.At(2, 0))
	}
	if !star.At(0, 0).Equal(SInt(0)) {
		t.Error("star diagonal must include identity")
	}
	// Positive cycle: star undefined.
	bad := NewMatrix(2)
	bad.Set(0, 1, SInt(1))
	bad.Set(1, 0, SInt(1))
	if _, err := bad.Star(); err == nil {
		t.Error("star of positive-cycle matrix accepted")
	}
	// Zero-weight cycle: star exists (idempotent closure).
	zero := NewMatrix(2)
	zero.Set(0, 1, SInt(0))
	zero.Set(1, 0, SInt(0))
	if _, err := zero.Star(); err != nil {
		t.Errorf("star of zero-cycle matrix rejected: %v", err)
	}
}

func TestEigenvalueSimpleCycle(t *testing.T) {
	m := NewMatrix(3)
	m.Set(1, 0, SInt(2))
	m.Set(2, 1, SInt(4))
	m.Set(0, 2, SInt(6))
	lambda, err := m.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	if !lambda.Equal(rat.FromInt(4)) {
		t.Errorf("eigenvalue = %v, want 4", lambda)
	}
}

func TestCycleTimeMatchesNetExamples(t *testing.T) {
	cases := []struct {
		name string
		inst *model.Instance
		cm   model.CommModel
		want rat.Rat
	}{
		{"A overlap", examplesdata.ExampleA(), model.Overlap, rat.FromInt(6 * 189)},
		{"A strict", examplesdata.ExampleA(), model.Strict, rat.FromInt(1384)},
		{"B overlap", examplesdata.ExampleB(), model.Overlap, rat.FromInt(3500)},
	}
	for _, c := range cases {
		net, err := tpn.Build(c.inst, c.cm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CycleTime(net)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: max-plus cycle time %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRecurrenceMatchesUnroll(t *testing.T) {
	// The max-plus orbit x(k) = A ⊗ x(k-1), x(0) = A0* ⊗ 0, must reproduce
	// the exact firing epochs of petri.Unroll.
	inst := examplesdata.ExampleB()
	net, err := tpn.BuildOverlap(inst)
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	start, err := net.Unroll(K)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FromNet(net)
	if err != nil {
		t.Fatal(err)
	}
	// x(0): zero-token closure applied to the all-zero vector.
	a0 := NewMatrix(len(net.Transitions))
	for _, p := range net.Places {
		if p.Tokens == 0 {
			a0.OplusAt(p.To, p.From, S(net.Transitions[p.From].Time))
		}
	}
	star, err := a0.Star()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]Scalar, len(net.Transitions))
	for i := range x {
		x[i] = SInt(0)
	}
	x = star.Apply(x)
	for k := 0; k < K; k++ {
		for i := range x {
			if x[i].IsNegInf() {
				t.Fatalf("x(%d)[%d] = -inf", k, i)
			}
			if !x[i].Rat().Equal(start[i][k]) {
				t.Fatalf("x(%d)[%d] = %v, unroll says %v", k, i, x[i], start[i][k])
			}
		}
		x = a.Apply(x)
	}
}

func TestFromNetRejectsMultiTokens(t *testing.T) {
	n := &petri.Net{}
	n.AddTransition(petri.Transition{Name: "t", Time: rat.One(), Dst: -1})
	n.AddPlace(0, 0, 2, "double")
	if _, err := FromNet(n); err == nil {
		t.Error("multi-token place accepted")
	}
}

func TestQuickEigenvalueMatchesCriticalCycle(t *testing.T) {
	// On random live instances, the max-plus spectral radius of the
	// recurrence matrix equals the net's max cycle ratio.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reps := []int{1 + rng.Intn(3), 1 + rng.Intn(3)}
		comp := make([][]rat.Rat, 2)
		for i, r := range reps {
			comp[i] = make([]rat.Rat, r)
			for a := range comp[i] {
				comp[i][a] = rat.FromInt(1 + rng.Int63n(15))
			}
		}
		comm := [][][]rat.Rat{make([][]rat.Rat, reps[0])}
		for a := range comm[0] {
			comm[0][a] = make([]rat.Rat, reps[1])
			for b := range comm[0][a] {
				comm[0][a][b] = rat.FromInt(1 + rng.Int63n(15))
			}
		}
		inst, err := model.FromTimes(comp, comm)
		if err != nil {
			return false
		}
		cm := model.Models()[rng.Intn(2)]
		net, err := tpn.Build(inst, cm)
		if err != nil {
			return false
		}
		want, err := net.MaxCycleRatio()
		if err != nil {
			return false
		}
		got, err := CycleTime(net)
		if err != nil {
			return false
		}
		return got.Equal(want.Ratio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, SInt(7))
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty render")
	}
}
