// Package mpa implements the (max,+) algebra layer the paper builds on
// (reference [2], Baccelli, Cohen, Olsder, Quadrat: "Synchronization and
// Linearity"): the max-plus semiring, matrices over it, and the translation
// of a timed event graph into a max-plus linear recurrence
//
//	x(k) = A ⊗ x(k-1)
//
// whose spectral radius (maximum cycle mean of the precedence graph) is the
// TPN period. The package provides an independent route to the throughput —
// cross-checked in tests against the cycle-ratio engines and the net
// unrolling — and a reusable substrate for further (max,+) experiments.
package mpa

import (
	"fmt"
	"strings"

	"repro/internal/cycles"
	"repro/internal/petri"
	"repro/internal/rat"
)

// Scalar is an element of the max-plus semiring R ∪ {-∞}: ⊕ is max (neutral
// -∞), ⊗ is + (neutral 0).
type Scalar struct {
	v      rat.Rat
	finite bool
}

// NegInf returns -∞, the ⊕-neutral element.
func NegInf() Scalar { return Scalar{} }

// S wraps a rational as a finite scalar.
func S(v rat.Rat) Scalar { return Scalar{v: v, finite: true} }

// SInt wraps an integer.
func SInt(v int64) Scalar { return S(rat.FromInt(v)) }

// IsNegInf reports whether the scalar is -∞.
func (s Scalar) IsNegInf() bool { return !s.finite }

// Rat returns the finite value; it panics on -∞.
func (s Scalar) Rat() rat.Rat {
	if !s.finite {
		panic("mpa: Rat of -inf")
	}
	return s.v
}

// Oplus returns max(s, t).
func (s Scalar) Oplus(t Scalar) Scalar {
	switch {
	case !s.finite:
		return t
	case !t.finite:
		return s
	case s.v.Less(t.v):
		return t
	default:
		return s
	}
}

// Otimes returns s + t (with -∞ absorbing).
func (s Scalar) Otimes(t Scalar) Scalar {
	if !s.finite || !t.finite {
		return NegInf()
	}
	return S(s.v.Add(t.v))
}

// Equal reports semiring equality.
func (s Scalar) Equal(t Scalar) bool {
	if s.finite != t.finite {
		return false
	}
	return !s.finite || s.v.Equal(t.v)
}

// String implements fmt.Stringer.
func (s Scalar) String() string {
	if !s.finite {
		return "-inf"
	}
	return s.v.String()
}

// Matrix is a square max-plus matrix.
type Matrix struct {
	n int
	a []Scalar // row-major
}

// NewMatrix returns the n×n matrix filled with -∞ (the ⊕-zero matrix).
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("mpa: matrix size must be positive")
	}
	return &Matrix{n: n, a: make([]Scalar, n*n)}
}

// Identity returns the max-plus identity: 0 on the diagonal, -∞ elsewhere.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, SInt(0))
	}
	return m
}

// Dim returns the dimension.
func (m *Matrix) Dim() int { return m.n }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) Scalar { return m.a[i*m.n+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v Scalar) { m.a[i*m.n+j] = v }

// OplusAt maxes v into entry (i, j).
func (m *Matrix) OplusAt(i, j int, v Scalar) { m.Set(i, j, m.At(i, j).Oplus(v)) }

// Mul returns the max-plus product m ⊗ o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.n != o.n {
		panic(fmt.Sprintf("mpa: dimension mismatch %d vs %d", m.n, o.n))
	}
	out := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for k := 0; k < m.n; k++ {
			mik := m.At(i, k)
			if mik.IsNegInf() {
				continue
			}
			for j := 0; j < m.n; j++ {
				okj := o.At(k, j)
				if okj.IsNegInf() {
					continue
				}
				out.OplusAt(i, j, mik.Otimes(okj))
			}
		}
	}
	return out
}

// Apply returns m ⊗ x for a vector x.
func (m *Matrix) Apply(x []Scalar) []Scalar {
	if len(x) != m.n {
		panic("mpa: vector dimension mismatch")
	}
	out := make([]Scalar, m.n)
	for i := 0; i < m.n; i++ {
		acc := NegInf()
		for j := 0; j < m.n; j++ {
			mij := m.At(i, j)
			if mij.IsNegInf() || x[j].IsNegInf() {
				continue
			}
			acc = acc.Oplus(mij.Otimes(x[j]))
		}
		out[i] = acc
	}
	return out
}

// Pow returns m ⊗ m ⊗ … (k times); k = 0 gives the identity.
func (m *Matrix) Pow(k int) *Matrix {
	if k < 0 {
		panic("mpa: negative power")
	}
	out := Identity(m.n)
	base := m
	for k > 0 {
		if k&1 == 1 {
			out = out.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return out
}

// Star returns the Kleene star m* = I ⊕ m ⊕ m² ⊕ …, which exists iff the
// precedence graph of m has no cycle of positive weight. It is computed with
// a Floyd–Warshall sweep and returns an error on a positive cycle.
func (m *Matrix) Star() (*Matrix, error) {
	out := Identity(m.n)
	// Start from I ⊕ m.
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			out.OplusAt(i, j, m.At(i, j))
		}
	}
	for k := 0; k < m.n; k++ {
		for i := 0; i < m.n; i++ {
			oik := out.At(i, k)
			if oik.IsNegInf() {
				continue
			}
			for j := 0; j < m.n; j++ {
				okj := out.At(k, j)
				if okj.IsNegInf() {
					continue
				}
				out.OplusAt(i, j, oik.Otimes(okj))
			}
		}
	}
	for i := 0; i < m.n; i++ {
		d := out.At(i, i)
		if !d.IsNegInf() && d.Rat().Sign() > 0 {
			return nil, fmt.Errorf("mpa: star undefined (positive cycle through %d)", i)
		}
	}
	return out, nil
}

// PrecedenceSystem builds the precedence graph of m as a cycle-ratio
// system: one vertex per matrix index, and for every finite entry m[i][j] an
// edge j -> i of cost m[i][j] carrying one token (x_i(k+1) >= m[i][j] +
// x_j(k)). Its maximum cycle ratio is the max-plus spectral radius.
func (m *Matrix) PrecedenceSystem() *cycles.System {
	sys := cycles.NewSystem(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if v := m.At(i, j); !v.IsNegInf() {
				sys.AddEdge(j, i, v.Rat(), 1)
			}
		}
	}
	return sys
}

// Eigenvalue returns the max-plus spectral radius of m: the maximum cycle
// mean of its precedence graph. Returns cycles.ErrNoCycle when the graph is
// acyclic.
func (m *Matrix) Eigenvalue() (rat.Rat, error) {
	res, err := m.PrecedenceSystem().MaxRatio()
	if err != nil {
		return rat.Rat{}, err
	}
	return res.Ratio, nil
}

// EigenvalueBackend computes the spectral radius with the selected
// cycle-ratio backend, returning the eigenvalue together with a critical
// cycle of the precedence graph as a vertex sequence (matrix indices, first
// vertex not repeated). Every backend returns the same exact eigenvalue;
// the witness always attains it.
func (m *Matrix) EigenvalueBackend(b cycles.Backend) (rat.Rat, []int, error) {
	sys := m.PrecedenceSystem()
	var ws cycles.Workspace
	res, err := ws.MaxRatioBackend(sys, b)
	if err != nil {
		return rat.Rat{}, nil, err
	}
	return res.Ratio, sys.CycleVertices(res.Cycle), nil
}

// Howard computes the max-plus spectral radius of m by Howard's policy
// iteration — exact rational arithmetic throughout — and returns the
// eigenvalue with a critical-cycle witness (vertex sequence of the
// precedence graph). It is the fast path for the large recurrence matrices
// of big scenario grids, where Karp's Θ(nm) dynamic program dominates; the
// two engines are cross-checked in the differential and fuzz harnesses.
func Howard(m *Matrix) (rat.Rat, []int, error) {
	return m.EigenvalueBackend(cycles.BackendHoward)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8s", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FromNet converts a live timed event graph with 0/1-token places into the
// max-plus recurrence x(k) = A ⊗ x(k-1) on transition start times, where
// x_i(k) is the start of the k-th firing of transition i:
//
//	x(k) = A0 ⊗ x(k) ⊕ A1 ⊗ x(k-1)   =>   x(k) = A0* ⊗ A1 ⊗ x(k-1)
//
// with A0 collecting token-free places (weight = firing time of the source
// transition) and A1 the single-token places. A0* exists because the
// token-free subgraph of a live net is acyclic. Places with more than one
// token are rejected (the paper's nets only use 0/1 markings).
func FromNet(net *petri.Net) (*Matrix, error) {
	n := len(net.Transitions)
	if n == 0 {
		return nil, fmt.Errorf("mpa: empty net")
	}
	a0 := NewMatrix(n)
	a1 := NewMatrix(n)
	for _, p := range net.Places {
		w := S(net.Transitions[p.From].Time)
		switch p.Tokens {
		case 0:
			a0.OplusAt(p.To, p.From, w)
		case 1:
			a1.OplusAt(p.To, p.From, w)
		default:
			return nil, fmt.Errorf("mpa: place with %d tokens not supported", p.Tokens)
		}
	}
	star, err := a0.Star()
	if err != nil {
		return nil, fmt.Errorf("mpa: net not live: %w", err)
	}
	return star.Mul(a1), nil
}

// CycleTime returns the TPN period of a net via the max-plus spectral
// radius of its recurrence matrix — an independent implementation of
// petri.Net.MaxCycleRatio.
func CycleTime(net *petri.Net) (rat.Rat, error) {
	a, err := FromNet(net)
	if err != nil {
		return rat.Rat{}, err
	}
	return a.Eigenvalue()
}

// CycleTimeBackend is CycleTime with an explicit cycle-ratio backend.
func CycleTimeBackend(net *petri.Net, b cycles.Backend) (rat.Rat, error) {
	a, err := FromNet(net)
	if err != nil {
		return rat.Rat{}, err
	}
	lambda, _, err := a.EigenvalueBackend(b)
	return lambda, err
}
