package mpa

import (
	"math/rand"
	"testing"

	"repro/internal/cycles"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// randomInstanceForTest draws a random timed instance with n stages and
// replication up to maxRep.
func randomInstanceForTest(rng *rand.Rand, n, maxRep int) *model.Instance {
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + rng.Intn(maxRep)
	}
	draw := func() rat.Rat { return rat.FromInt(1 + rng.Int63n(20)) }
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}

// randomMatrix draws a max-plus matrix whose precedence graph always has a
// cycle (dense enough random fill plus a guaranteed diagonal entry).
func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	m.Set(0, 0, SInt(1+rng.Int63n(9)))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				m.Set(i, j, S(rat.New(1+rng.Int63n(30), 1+rng.Int63n(4))))
			}
		}
	}
	return m
}

// TestHowardMatchesEigenvalue cross-checks mpa.Howard against the Karp
// route on random matrices, including the witness cycle's mean.
func TestHowardMatchesEigenvalue(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		m := randomMatrix(rng, 2+rng.Intn(10))
		want, err := m.Eigenvalue()
		if err != nil {
			t.Fatalf("trial %d eigenvalue: %v", trial, err)
		}
		got, cyc, err := Howard(m)
		if err != nil {
			t.Fatalf("trial %d howard: %v", trial, err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: howard %v != karp %v", trial, got, want)
		}
		if len(cyc) == 0 {
			t.Fatalf("trial %d: no witness cycle", trial)
		}
		// The witness's mean weight must attain the eigenvalue: walk the
		// vertex cycle summing matrix entries (edge v->u has weight m[u][v]).
		sum := rat.Zero()
		for k := range cyc {
			v, u := cyc[k], cyc[(k+1)%len(cyc)]
			w := m.At(u, v)
			if w.IsNegInf() {
				t.Fatalf("trial %d: witness uses absent entry (%d,%d)", trial, u, v)
			}
			sum = sum.Add(w.Rat())
		}
		if mean := sum.DivInt(int64(len(cyc))); !mean.Equal(got) {
			t.Fatalf("trial %d: witness mean %v != eigenvalue %v", trial, mean, got)
		}
	}
}

// TestEigenvalueBackendAgreesOnNets runs every backend over the recurrence
// matrices of the paper-style nets.
func TestEigenvalueBackendAgreesOnNets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstanceForTest(rng, 2+rng.Intn(3), 3)
		net, err := tpn.BuildOverlap(inst)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CycleTime(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []cycles.Backend{cycles.BackendAuto, cycles.BackendKarp, cycles.BackendHoward} {
			got, err := CycleTimeBackend(net, b)
			if err != nil {
				t.Fatalf("trial %d backend %v: %v", trial, b, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d backend %v: %v != %v", trial, b, got, want)
			}
		}
	}
}
