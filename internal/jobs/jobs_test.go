package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStateTerminal(t *testing.T) {
	for _, tc := range []struct {
		s    State
		want bool
	}{
		{StatePending, false},
		{StateRunning, false},
		{StateDone, true},
		{StateFailed, true},
		{StateCanceled, true},
	} {
		if got := tc.s.Terminal(); got != tc.want {
			t.Errorf("%s.Terminal() = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestParseState(t *testing.T) {
	for _, s := range []string{"pending", "running", "done", "failed", "canceled"} {
		got, err := ParseState(s)
		if err != nil || got != State(s) {
			t.Errorf("ParseState(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Fatal("ParseState accepted bogus state")
	}
}

func TestSubmitFinishHappyPath(t *testing.T) {
	m := New(Options{})
	j, err := m.Submit("search", "abc", nil, context.Background(), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "abc-1" {
		t.Fatalf("first ID = %q, want abc-1", j.ID())
	}
	if j.Kind() != "search" || !j.Detached() || j.State() != StatePending {
		t.Fatalf("job = kind %q detached %v state %q", j.Kind(), j.Detached(), j.State())
	}
	m.Start(j)
	if j.State() != StateRunning {
		t.Fatalf("after Start state = %q", j.State())
	}
	select {
	case <-j.Done():
		t.Fatal("Done closed before Finish")
	default:
	}
	m.Finish(j, []byte(`{"ok":true}`), nil)
	<-j.Done()
	if j.State() != StateDone {
		t.Fatalf("after Finish state = %q", j.State())
	}
	body, ok := j.Result()
	if !ok || string(body) != `{"ok":true}` {
		t.Fatalf("Result = %q, %v", body, ok)
	}
	if j.Failure() != nil {
		t.Fatalf("Failure = %+v, want nil", j.Failure())
	}
	// A second fetch returns the identical bytes.
	again, _ := j.Result()
	if &again[0] != &body[0] {
		t.Fatal("double result fetch returned different backing arrays")
	}
	got, ok := m.Get("abc-1")
	if !ok || got != j {
		t.Fatal("Get did not return the job")
	}
	if _, ok := m.Get("abc-2"); ok {
		t.Fatal("Get returned an unregistered ID")
	}
	mm := m.Metrics()
	if mm.Submitted != 1 || mm.Done != 1 || mm.Active != 0 || mm.Terminal != 1 {
		t.Fatalf("metrics = %+v", mm)
	}
}

func TestPerPrefixIDsAreIndependent(t *testing.T) {
	m := New(Options{})
	ids := []string{}
	for _, prefix := range []string{"a", "b", "a", "b", "a"} {
		j, err := m.Submit("search", prefix, nil, nil, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	want := []string{"a-1", "b-1", "a-2", "b-2", "a-3"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestFinishFailed(t *testing.T) {
	m := New(Options{})
	j, _ := m.Submit("sweep", "x", nil, nil, 0, true)
	m.Start(j)
	m.Finish(j, nil, &Failure{Status: 400, Code: "invalid_request", Message: "boom"})
	if j.State() != StateFailed {
		t.Fatalf("state = %q", j.State())
	}
	if f := j.Failure(); f == nil || f.Status != 400 || f.Code != "invalid_request" {
		t.Fatalf("failure = %+v", j.Failure())
	}
	if _, ok := j.Result(); ok {
		t.Fatal("failed job has a result")
	}
	// Deposit on a failed job is ignored.
	m.Deposit(j, []byte("x"))
	if _, ok := j.Result(); ok {
		t.Fatal("Deposit attached a result to a failed job")
	}
	// Finish is idempotent: a late backstop cannot flip the verdict.
	m.Finish(j, []byte("late"), nil)
	if j.State() != StateFailed {
		t.Fatalf("second Finish changed state to %q", j.State())
	}
	if m.Metrics().Failed != 1 {
		t.Fatalf("metrics = %+v", m.Metrics())
	}
}

func TestCancel(t *testing.T) {
	m := New(Options{})
	j, _ := m.Submit("search", "c", nil, nil, 0, true)
	m.Start(j)
	got, ok := m.Cancel(j.ID())
	if !ok || got != j {
		t.Fatal("Cancel did not find the job")
	}
	if !j.CancelRequested() {
		t.Fatal("cancelRequested not set")
	}
	select {
	case <-j.Context().Done():
	default:
		t.Fatal("job context not canceled")
	}
	// The anytime search still produces a result; the state records cancel.
	m.Finish(j, []byte(`{"anytime":true}`), nil)
	if j.State() != StateCanceled {
		t.Fatalf("state = %q, want canceled", j.State())
	}
	if body, ok := j.Result(); !ok || string(body) != `{"anytime":true}` {
		t.Fatalf("canceled job result = %q, %v", body, ok)
	}
	// Cancel of a terminal job is a found no-op.
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("Cancel on terminal job reported unknown")
	}
	if _, ok := m.Cancel("nope-1"); ok {
		t.Fatal("Cancel on unknown ID reported found")
	}
	if m.Metrics().Canceled != 1 {
		t.Fatalf("metrics = %+v", m.Metrics())
	}
}

func TestDepositSyncPath(t *testing.T) {
	m := New(Options{})
	j, _ := m.Submit("search", "search", nil, nil, 0, false)
	m.Start(j)
	m.Finish(j, nil, nil) // sync path: terminal before the body is encoded
	src := []byte(`{"period":7}`)
	m.Deposit(j, src)
	src[0] = 'X' // Deposit must have copied
	body, ok := j.Result()
	if !ok || string(body) != `{"period":7}` {
		t.Fatalf("Result = %q, %v", body, ok)
	}
	// Second deposit is ignored.
	m.Deposit(j, []byte("other"))
	if body, _ := j.Result(); string(body) != `{"period":7}` {
		t.Fatalf("second Deposit overwrote: %q", body)
	}
}

func TestMaxActiveRejectsDetachedOnly(t *testing.T) {
	m := New(Options{MaxActive: 2})
	a, _ := m.Submit("search", "p", nil, nil, 0, true)
	b, _ := m.Submit("search", "p", nil, nil, 0, true)
	if _, err := m.Submit("search", "p", nil, nil, 0, true); err != ErrBusy {
		t.Fatalf("third detached submit err = %v, want ErrBusy", err)
	}
	// Inline submissions are exempt from the cap.
	if _, err := m.Submit("search", "search", nil, nil, 0, false); err != nil {
		t.Fatalf("inline submit rejected: %v", err)
	}
	m.Finish(a, nil, nil)
	if _, err := m.Submit("search", "p", nil, nil, 0, true); err != nil {
		t.Fatalf("submit after Finish rejected: %v", err)
	}
	m.Finish(b, nil, nil)
	mm := m.Metrics()
	if mm.Rejected != 1 || mm.ActiveCapacity != 2 {
		t.Fatalf("metrics = %+v", mm)
	}
}

func TestTerminalRetentionBound(t *testing.T) {
	const cap = 8
	m := New(Options{TerminalEntries: cap})
	// 10x oversubscription: the registry must stay bounded.
	var last *Job
	for i := 0; i < 10*cap; i++ {
		j, err := m.Submit("search", "p", nil, nil, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		m.Start(j)
		m.Finish(j, []byte(fmt.Sprintf(`{"i":%d}`, i)), nil)
		last = j
	}
	mm := m.Metrics()
	if mm.Terminal != cap {
		t.Fatalf("terminal count = %d, want %d", mm.Terminal, cap)
	}
	if mm.Evictions != int64(10*cap-cap) {
		t.Fatalf("evictions = %d, want %d", mm.Evictions, 10*cap-cap)
	}
	// The newest job must still be resident.
	if _, ok := m.Get(last.ID()); !ok {
		t.Fatalf("newest job %s evicted", last.ID())
	}
}

func TestClockPrefersUnreferenced(t *testing.T) {
	m := New(Options{TerminalEntries: 2})
	a, _ := m.Submit("search", "p", nil, nil, 0, true)
	m.Finish(a, nil, nil)
	b, _ := m.Submit("search", "p", nil, nil, 0, true)
	m.Finish(b, nil, nil)
	// Touch a so its reference bit is hot, then age both with one insertion:
	// the hand clears a's bit but recycles b.
	m.Get(a.ID())
	c, _ := m.Submit("search", "p", nil, nil, 0, true)
	m.Finish(c, nil, nil)
	if _, ok := m.Get(a.ID()); !ok {
		t.Fatal("hot entry a was evicted")
	}
	if _, ok := m.Get(b.ID()); ok {
		t.Fatal("cold entry b survived")
	}
}

func TestPrefixAllocatorFreedOnEviction(t *testing.T) {
	m := New(Options{TerminalEntries: 1})
	for i := 0; i < 50; i++ {
		j, _ := m.Submit("search", fmt.Sprintf("p%d", i), nil, nil, 0, true)
		m.Finish(j, nil, nil)
	}
	m.mu.Lock()
	nseq := len(m.seq)
	m.mu.Unlock()
	if nseq > 1 {
		t.Fatalf("seq map holds %d prefixes, want <= 1 (evicted prefixes must be freed)", nseq)
	}
}

func TestIDCollisionAfterAllocatorReset(t *testing.T) {
	m := New(Options{TerminalEntries: 2})
	a, _ := m.Submit("search", "p", nil, nil, 0, true) // p-1
	b, _ := m.Submit("search", "p", nil, nil, 0, true) // p-2
	m.Finish(a, nil, nil)
	// Evict p-1 (only resident terminal when the ring overflows is forced by
	// filling with another prefix).
	x, _ := m.Submit("search", "q", nil, nil, 0, true)
	m.Finish(x, nil, nil) // ring now [p-1, q-1]
	y, _ := m.Submit("search", "q", nil, nil, 0, true)
	m.Finish(y, nil, nil) // evicts one of the ring entries
	// b (p-2) is still resident and non-terminal; whatever the allocator
	// state, new p IDs must not collide with it.
	c, _ := m.Submit("search", "p", nil, nil, 0, true)
	if c.ID() == b.ID() {
		t.Fatalf("ID collision: %s minted twice", c.ID())
	}
	m.Finish(b, nil, nil)
	m.Finish(c, nil, nil)
}

func TestSubmitTimeoutCancelsContext(t *testing.T) {
	m := New(Options{})
	j, _ := m.Submit("search", "t", nil, nil, 5*time.Millisecond, true)
	select {
	case <-j.Context().Done():
	case <-time.After(2 * time.Second):
		t.Fatal("job context did not expire")
	}
	m.Finish(j, nil, &Failure{Status: 503, Code: "unavailable", Message: "timeout"})
	if j.State() != StateFailed {
		t.Fatalf("state = %q", j.State())
	}
}

func TestList(t *testing.T) {
	m := New(Options{})
	a, _ := m.Submit("search", "s", nil, nil, 0, true)
	b, _ := m.Submit("sweep", "w", nil, nil, 0, true)
	c, _ := m.Submit("search", "s", nil, nil, 0, true)
	m.Finish(a, nil, nil)
	m.Start(b)
	all := m.List("", "")
	if len(all) != 3 {
		t.Fatalf("List all = %d jobs", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID() >= all[i].ID() {
			t.Fatalf("List not sorted: %s before %s", all[i-1].ID(), all[i].ID())
		}
	}
	if got := m.List("search", ""); len(got) != 2 {
		t.Fatalf("List(search) = %d jobs", len(got))
	}
	if got := m.List("", StateRunning); len(got) != 1 || got[0] != b {
		t.Fatalf("List(running) = %v", got)
	}
	if got := m.List("sweep", StateDone); len(got) != 0 {
		t.Fatalf("List(sweep,done) = %d jobs", len(got))
	}
	m.Finish(b, nil, nil)
	m.Finish(c, nil, nil)
}

type recordingPersister struct {
	mu        sync.Mutex
	submitted []string
	terminal  []string
	evicted   []string
}

func (p *recordingPersister) Submitted(j *Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.submitted = append(p.submitted, j.ID())
}

func (p *recordingPersister) Terminal(j *Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.terminal = append(p.terminal, j.ID())
}

func (p *recordingPersister) Evicted(j *Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.evicted = append(p.evicted, j.ID())
}

func TestPersisterObservesLifecycle(t *testing.T) {
	p := &recordingPersister{}
	m := New(Options{Persister: p})
	j, _ := m.Submit("search", "p", nil, nil, 0, true)
	m.Finish(j, nil, nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.submitted) != 1 || p.submitted[0] != j.ID() {
		t.Fatalf("submitted = %v", p.submitted)
	}
	if len(p.terminal) != 1 || p.terminal[0] != j.ID() {
		t.Fatalf("terminal = %v", p.terminal)
	}
}

func TestProgressCounters(t *testing.T) {
	m := New(Options{})
	j, _ := m.Submit("search", "p", nil, nil, 0, false)
	j.Progress().Nodes.Add(10)
	j.Progress().Leaves.Add(3)
	j.Progress().PointsTotal.Store(25)
	if j.Progress().Nodes.Load() != 10 || j.Progress().Leaves.Load() != 3 || j.Progress().PointsTotal.Load() != 25 {
		t.Fatal("progress counters did not round-trip")
	}
	m.Finish(j, nil, nil)
}

// TestStorm drives submit/cancel/poll/finish concurrently; run with -race.
func TestStorm(t *testing.T) {
	m := New(Options{TerminalEntries: 16, MaxActive: 32})
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	ids := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j, err := m.Submit("search", fmt.Sprintf("w%d", w), nil, nil, 0, true)
				if err != nil {
					continue // ErrBusy under load is expected
				}
				ids <- j.ID()
				m.Start(j)
				if i%3 == 0 {
					m.Cancel(j.ID())
				}
				m.Finish(j, []byte("{}"), nil)
			}
		}(w)
	}
	var pollers sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				case id := <-ids:
					if j, ok := m.Get(id); ok {
						_ = j.State()
						_, _ = j.Result()
						_ = j.Progress().Nodes.Load()
					}
					m.List("search", "")
					m.Metrics()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	mm := m.Metrics()
	if mm.Active != 0 {
		t.Fatalf("active = %d after storm", mm.Active)
	}
	if mm.Terminal > 16 {
		t.Fatalf("terminal = %d exceeds bound", mm.Terminal)
	}
	if mm.Done+mm.Failed+mm.Canceled+mm.Rejected != int64(workers*perWorker) {
		t.Fatalf("metrics do not add up: %+v", mm)
	}
}

// TestResumeAndRehydrate covers the restart path: a rehydrated terminal job
// answers result polls under its original ID, a resumed job re-registers
// under its original ID, and the prefix allocator never re-mints either.
func TestResumeAndRehydrate(t *testing.T) {
	m := New(Options{})
	if _, err := m.Rehydrate("h-3", "search", StateDone, []byte(`{"ok":true}`), nil); err != nil {
		t.Fatal(err)
	}
	j, ok := m.Get("h-3")
	if !ok || j.State() != StateDone {
		t.Fatalf("rehydrated job missing or not done: %v %v", ok, j.State())
	}
	if body, ok := j.Result(); !ok || string(body) != `{"ok":true}` {
		t.Fatalf("rehydrated result = %q, %v", body, ok)
	}
	if _, err := m.Rehydrate("h-3", "search", StateDone, nil, nil); err == nil {
		t.Fatal("duplicate rehydrate accepted")
	}
	if _, err := m.Rehydrate("noseq", "search", StateDone, nil, nil); err == nil {
		t.Fatal("malformed id accepted")
	}
	if _, err := m.Rehydrate("h-4", "search", StateRunning, nil, nil); err == nil {
		t.Fatal("non-terminal rehydrate accepted")
	}
	if _, err := m.Rehydrate("h-6", "search", StateCanceled, []byte(`{"partial":true}`), nil); err != nil {
		t.Fatal(err)
	}
	if j, _ := m.Get("h-6"); j.State() != StateCanceled {
		t.Fatalf("canceled rehydrate became %v", j.State())
	}
	f := &Failure{Status: 422, Code: "invalid_request", Message: "boom"}
	if _, err := m.Rehydrate("h-7", "sweep", StateFailed, nil, f); err != nil {
		t.Fatal(err)
	}
	if j, _ := m.Get("h-7"); j.State() != StateFailed || j.Failure().Code != "invalid_request" {
		t.Fatalf("rehydrated failure lost: %v %+v", j.State(), j.Failure())
	}

	r, err := m.Resume("h-5", "search", []byte(`body`), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "h-5" || r.State() != StatePending || !r.Detached() || string(r.Body()) != "body" {
		t.Fatalf("resumed job wrong: %v %v %v %q", r.ID(), r.State(), r.Detached(), r.Body())
	}
	if _, err := m.Resume("h-5", "search", nil, nil, 0); err == nil {
		t.Fatal("duplicate resume accepted")
	}
	// The allocator must have advanced past every injected sequence number.
	next, err := m.Submit("search", "h", nil, nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID() != "h-8" {
		t.Fatalf("next minted id = %q, want h-8 (allocator past rehydrated 7)", next.ID())
	}
	m.Finish(r, nil, nil)
	m.Finish(next, nil, nil)
}

// TestEvictedHookFires: recycling a terminal job out of a full CLOCK ring
// must offer the victim to the Persister so its durable record is dropped.
func TestEvictedHookFires(t *testing.T) {
	p := &recordingPersister{}
	m := New(Options{Persister: p, TerminalEntries: 2, MaxActive: 8})
	for i := 0; i < 3; i++ {
		j, err := m.Submit("search", fmt.Sprintf("e%d", i), nil, nil, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		m.Finish(j, nil, nil)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.evicted) != 1 || p.evicted[0] != "e0-1" {
		t.Fatalf("evicted = %v, want [e0-1]", p.evicted)
	}
}
