// Package jobs is the job manager behind the service's asynchronous API:
// every long-running request — a branch-and-bound search, a runtime sweep —
// is registered here as a job with an ID, a state machine, live progress
// counters and (once terminal) a retained result, whether the caller waits
// for the answer inline (the synchronous /v1/search and /v1/sweep paths)
// or polls for it later (POST /v1/jobs).
//
// Design:
//
//   - One execution path. The manager does not run anything itself; the
//     serving layer constructs a runner once and executes it under a job
//     regardless of transport. Submit/Start/Finish bracket that execution,
//     so synchronous and asynchronous requests differ only in who waits.
//
//   - Deterministic IDs. A job ID is "<prefix>-<seq>" where the prefix is
//     supplied by the caller (the service hashes the raw submission body;
//     synchronous requests use their kind) and seq is a per-prefix counter
//     starting at 1. Because the counter is per prefix, the IDs assigned to
//     a given submission history do not depend on how unrelated submissions
//     interleave — which is what lets a consistent-hash router route job
//     traffic by prefix and observe the same IDs a single node would mint.
//
//   - Bounded registry, CLOCK retention. Non-terminal detached jobs are
//     capped (Submit refuses past MaxActive — back-pressure, like a full
//     solve queue); terminal jobs move to a bounded CLOCK ring where a Get
//     sets the reference bit and the hand recycles the coldest entry. A
//     10x oversubmission therefore cannot grow the registry past
//     MaxActive + TerminalEntries jobs.
//
//   - Lock-cheap progress. Progress is a fixed struct of atomic counters
//     the solve loops add to and pollers read without any lock.
//
//   - Persister. Terminal transitions are offered to a Persister — the
//     stub seam where disk checkpointing of job state will land; the
//     default discards everything.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle state.
type State string

const (
	// StatePending is a submitted job not yet started.
	StatePending State = "pending"
	// StateRunning is a job whose runner is executing.
	StateRunning State = "running"
	// StateDone is a job that completed with a result.
	StateDone State = "done"
	// StateFailed is a job whose runner returned an error.
	StateFailed State = "failed"
	// StateCanceled is a job whose cancellation was requested before it
	// finished. A canceled job may still carry a result: the exact search is
	// anytime, so cancel mid-run surfaces the best incumbent found so far.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// ParseState parses a state filter value.
func ParseState(s string) (State, error) {
	switch State(s) {
	case StatePending, StateRunning, StateDone, StateFailed, StateCanceled:
		return State(s), nil
	}
	return "", fmt.Errorf("jobs: unknown state %q (want pending, running, done, failed or canceled)", s)
}

// Progress is the live per-job progress block: lock-cheap atomics the solve
// loops add to (the bnb walkers per flushed chunk, the sweep per finished
// point) and pollers read without synchronization. Which counters move
// depends on the job kind; the rest stay zero.
type Progress struct {
	// Nodes, Leaves, Pruned and Screened mirror bnb.Stats for search jobs.
	Nodes, Leaves, Pruned, Screened atomic.Int64
	// PointsDone/PointsTotal count sweep points answered vs requested.
	PointsDone, PointsTotal atomic.Int64
}

// Failure is the recorded verdict of a job that did not produce a result:
// the HTTP status, machine-readable code and message the result endpoint
// replays to pollers.
type Failure struct {
	Status  int
	Code    string
	Message string
}

// Persister receives job lifecycle events. It is the seam where disk
// checkpointing will attach (resumable subtree roots are already the bnb
// unit of progress); the current implementations only need to observe.
// Calls are made outside the manager lock in no guaranteed order relative
// to concurrent registry reads.
type Persister interface {
	// Submitted is called once per job after registration.
	Submitted(j *Job)
	// Terminal is called once per job after its terminal transition, with
	// result or failure recorded.
	Terminal(j *Job)
	// Evicted is called when a terminal job is recycled out of the registry
	// by the CLOCK hand — the signal to drop its durable record too, so the
	// checkpoint directory stays bounded by the same policy as memory.
	Evicted(j *Job)
}

// nopPersister discards all events (the default).
type nopPersister struct{}

func (nopPersister) Submitted(*Job) {}
func (nopPersister) Terminal(*Job)  {}
func (nopPersister) Evicted(*Job)   {}

// Job is one registered execution. The progress block is updated by the
// runner and read by pollers; everything else mutates only under the
// manager's lock.
type Job struct {
	id       string
	kind     string
	detached bool
	body     []byte // raw submission body (detached jobs; nil otherwise)
	ctx      context.Context
	cancel   context.CancelFunc
	prog     Progress
	done     chan struct{}
	ref      atomic.Bool // CLOCK reference bit while terminal

	m *Manager

	// Guarded by m.mu.
	state           State
	cancelRequested bool
	result          []byte
	failure         *Failure
}

// ID returns the job ID ("<prefix>-<seq>").
func (j *Job) ID() string { return j.id }

// Kind returns the job kind ("search", "sweep").
func (j *Job) Kind() string { return j.kind }

// Detached reports whether the job outlives its submitting request (an
// async POST /v1/jobs submission) rather than being waited on inline.
func (j *Job) Detached() bool { return j.detached }

// Body returns the raw submission body recorded at Submit, nil when none
// was supplied (inline jobs). The checkpoint layer persists it so a resumed
// process can re-plan the job from the identical request bytes. Callers
// must not mutate the slice.
func (j *Job) Body() []byte { return j.body }

// Context is the job's run context: canceled by Cancel, by the submission
// parent, or by the job timeout.
func (j *Job) Context() context.Context { return j.ctx }

// Progress returns the live progress counters.
func (j *Job) Progress() *Progress { return &j.prog }

// Done is closed at the terminal transition — the submit-and-wait hook.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current state.
func (j *Job) State() State {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.state
}

// CancelRequested reports whether Cancel was called before the job
// finished.
func (j *Job) CancelRequested() bool {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.cancelRequested
}

// Result returns the retained result body (nil, false when the job is not
// terminal or finished without one). The slice is owned by the job; callers
// must not mutate it.
func (j *Job) Result() ([]byte, bool) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	if j.result == nil {
		return nil, false
	}
	return j.result, true
}

// Failure returns the recorded failure, nil when none.
func (j *Job) Failure() *Failure {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.failure
}

// Default registry bounds.
const (
	// DefaultTerminalEntries bounds retained terminal jobs: at a few KB per
	// retained result the default stays within single-digit MiB.
	DefaultTerminalEntries = 1024
	// DefaultMaxActive caps concurrently resident detached jobs.
	DefaultMaxActive = 256
)

// ErrBusy reports that the detached-job capacity is reached; the submitter
// should shed load (HTTP 503), exactly like a full solve queue.
var ErrBusy = errors.New("jobs: active job capacity reached")

// Options configures a Manager. The zero value uses the defaults above and
// discards persistence events.
type Options struct {
	// TerminalEntries bounds retained terminal jobs (0 = the default).
	TerminalEntries int
	// MaxActive caps concurrently resident non-terminal detached jobs
	// (0 = the default). Inline jobs are exempt: their admission is already
	// governed by the server's in-flight budget and their lifetime by the
	// request.
	MaxActive int
	// Persister observes lifecycle events (nil = discard).
	Persister Persister
}

// Metrics is a point-in-time snapshot of the manager.
type Metrics struct {
	// Submitted counts registrations; Done/Failed/Canceled count terminal
	// transitions by outcome; Rejected counts submissions refused by the
	// MaxActive cap; Evictions counts terminal jobs recycled by the CLOCK
	// hand.
	Submitted, Done, Failed, Canceled, Rejected, Evictions int64
	// Active is the current non-terminal resident count (inline included);
	// Terminal the retained terminal count.
	Active, Terminal int64
	// ActiveCapacity/TerminalCapacity are the configured bounds.
	ActiveCapacity, TerminalCapacity int
}

// Manager is the bounded job registry. Safe for concurrent use.
type Manager struct {
	opts Options

	mu        sync.Mutex
	byID      map[string]*Job
	seq       map[string]*prefixSeq
	terminal  []*Job // CLOCK ring of terminal jobs
	hand      int
	active    int // resident non-terminal jobs (inline included)
	detached  int // resident non-terminal detached jobs (the MaxActive cap)
	submitted int64
	finished  [3]int64 // done, failed, canceled
	rejected  int64
	evictions int64
}

// prefixSeq is the per-prefix ID allocator plus the resident count that
// bounds the map: when the last job of a prefix leaves the registry the
// entry is deleted, so the allocator cannot grow past the registry bound.
type prefixSeq struct {
	next     uint64
	resident int
}

// New builds a manager.
func New(opts Options) *Manager {
	if opts.TerminalEntries <= 0 {
		opts.TerminalEntries = DefaultTerminalEntries
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = DefaultMaxActive
	}
	if opts.Persister == nil {
		opts.Persister = nopPersister{}
	}
	return &Manager{
		opts: opts,
		byID: make(map[string]*Job),
		seq:  make(map[string]*prefixSeq),
	}
}

// Submit registers a job under the given ID prefix. The job's context
// derives from parent (nil = background) and is canceled by Cancel or, when
// timeout > 0, after timeout. detached marks an async submission: it counts
// against MaxActive and Submit fails with ErrBusy past the cap; inline
// submissions always succeed. body, when non-nil, is the raw submission
// body retained for the Persister (pass nil for inline jobs — their
// lifetime is the request's).
func (m *Manager) Submit(kind, prefix string, body []byte, parent context.Context, timeout time.Duration, detached bool) (*Job, error) {
	if parent == nil {
		parent = context.Background()
	}
	m.mu.Lock()
	if detached && m.detached >= m.opts.MaxActive {
		m.rejected++
		m.mu.Unlock()
		return nil, ErrBusy
	}
	ps := m.seq[prefix]
	if ps == nil {
		ps = &prefixSeq{}
		m.seq[prefix] = ps
	}
	// Allocate the next free sequence number. A resident collision is only
	// possible after the allocator was reset by eviction while an older job
	// of the same prefix survived; bumping past it keeps IDs unique.
	var id string
	for {
		ps.next++
		id = fmt.Sprintf("%s-%d", prefix, ps.next)
		if _, taken := m.byID[id]; !taken {
			break
		}
	}
	j := m.registerLocked(id, kind, body, ps, parent, timeout, detached)
	m.mu.Unlock()
	m.opts.Persister.Submitted(j)
	return j, nil
}

// Resume registers a job under its exact original ID — the restart path: a
// checkpointed job interrupted by a crash re-enters the registry with the
// identity every client already holds. It fails when the ID is taken or
// malformed, and advances the prefix allocator past the resumed sequence
// number so future submissions cannot collide.
func (m *Manager) Resume(id, kind string, body []byte, parent context.Context, timeout time.Duration) (*Job, error) {
	if parent == nil {
		parent = context.Background()
	}
	prefix, seq, err := splitID(id)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if _, taken := m.byID[id]; taken {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: id %q already registered", id)
	}
	ps := m.seq[prefix]
	if ps == nil {
		ps = &prefixSeq{}
		m.seq[prefix] = ps
	}
	if ps.next < seq {
		ps.next = seq
	}
	j := m.registerLocked(id, kind, body, ps, parent, timeout, true)
	m.mu.Unlock()
	m.opts.Persister.Submitted(j)
	return j, nil
}

// Rehydrate injects an already-terminal job — restart replay of a job that
// finished before the crash, so pollers keep getting the answer they were
// promised. state must be terminal and is kept verbatim (a canceled bnb job
// stays canceled, even when its anytime result rode along). The job enters
// the CLOCK ring like any terminal transition; the Persister observes
// nothing (the durable record already exists). It fails when the ID is
// taken or malformed.
func (m *Manager) Rehydrate(id, kind string, state State, result []byte, failure *Failure) (*Job, error) {
	prefix, seq, err := splitID(id)
	if err != nil {
		return nil, err
	}
	if !state.Terminal() {
		return nil, fmt.Errorf("jobs: cannot rehydrate %q in non-terminal state %q", id, state)
	}
	m.mu.Lock()
	if _, taken := m.byID[id]; taken {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: id %q already registered", id)
	}
	ps := m.seq[prefix]
	if ps == nil {
		ps = &prefixSeq{}
		m.seq[prefix] = ps
	}
	if ps.next < seq {
		ps.next = seq
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		id:       id,
		kind:     kind,
		detached: true,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		m:        m,
		state:    state,
		result:   result,
		failure:  failure,
	}
	close(j.done)
	m.byID[id] = j
	ps.resident++
	m.submitted++
	switch state {
	case StateFailed:
		m.finished[1]++
	case StateCanceled:
		m.finished[2]++
	default:
		m.finished[0]++
	}
	victim := m.retain(j)
	m.mu.Unlock()
	if victim != nil {
		m.opts.Persister.Evicted(victim)
	}
	return j, nil
}

// registerLocked creates and indexes a non-terminal job. Caller holds m.mu
// and has reserved the ID.
func (m *Manager) registerLocked(id, kind string, body []byte, ps *prefixSeq, parent context.Context, timeout time.Duration, detached bool) *Job {
	ctx, cancel := context.WithCancel(parent)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	}
	j := &Job{
		id:       id,
		kind:     kind,
		detached: detached,
		body:     body,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		m:        m,
		state:    StatePending,
	}
	m.byID[id] = j
	ps.resident++
	m.active++
	if detached {
		m.detached++
	}
	m.submitted++
	return j
}

// splitID splits "<prefix>-<seq>" and parses the sequence number.
func splitID(id string) (prefix string, seq uint64, err error) {
	i := lastDash(id)
	if i <= 0 || i == len(id)-1 {
		return "", 0, fmt.Errorf("jobs: malformed id %q", id)
	}
	for _, c := range id[i+1:] {
		if c < '0' || c > '9' {
			return "", 0, fmt.Errorf("jobs: malformed id %q", id)
		}
		seq = seq*10 + uint64(c-'0')
	}
	return id[:i], seq, nil
}

// Start transitions a pending job to running.
func (m *Manager) Start(j *Job) {
	m.mu.Lock()
	if j.state == StatePending {
		j.state = StateRunning
	}
	m.mu.Unlock()
}

// Finish records a job's terminal transition: canceled when cancellation
// was requested, failed when a failure is recorded, done otherwise. The
// result (if any) is retained for GET /v1/jobs/{id}/result; Finish copies
// nothing — pass an owned slice. Calling Finish on an already-terminal job
// is a no-op, which makes the backstop finalizers (queue-timeout, panic)
// safe to run unconditionally.
func (m *Manager) Finish(j *Job, result []byte, failure *Failure) {
	m.mu.Lock()
	if j.state.Terminal() {
		m.mu.Unlock()
		return
	}
	switch {
	case j.cancelRequested:
		j.state = StateCanceled
		m.finished[2]++
	case failure != nil:
		j.state = StateFailed
		m.finished[1]++
	default:
		j.state = StateDone
		m.finished[0]++
	}
	j.result = result
	j.failure = failure
	m.active--
	if j.detached {
		m.detached--
	}
	// Inserted cold: only a Get sets the reference bit, so retained jobs
	// that are never polled are the first recycled.
	j.ref.Store(false)
	victim := m.retain(j)
	m.mu.Unlock()
	j.cancel() // release the context's timer/goroutine
	close(j.done)
	if victim != nil {
		m.opts.Persister.Evicted(victim)
	}
	m.opts.Persister.Terminal(j)
}

// Deposit attaches result bytes to an already-terminal job (copying them).
// The synchronous path finishes the job first — the encoded body exists
// only later, when the shared encoder has produced the response — and
// deposits the same bytes it writes to the client, so a subsequent result
// poll answers the identical body. A deposit on a failed job, or a second
// deposit, is ignored.
func (m *Manager) Deposit(j *Job, body []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if (j.state == StateDone || j.state == StateCanceled) && j.result == nil {
		j.result = append([]byte(nil), body...)
	}
}

// retain inserts a terminal job into the CLOCK ring, recycling the coldest
// entry when full. Caller holds m.mu and must offer the returned victim (if
// any) to the Persister's Evicted hook after releasing the lock.
func (m *Manager) retain(j *Job) *Job {
	if len(m.terminal) < m.opts.TerminalEntries {
		m.terminal = append(m.terminal, j)
		return nil
	}
	// Every ring entry is terminal and unpinned, so at most two revolutions
	// find a victim: the first clears reference bits, the second takes the
	// first still-clear slot.
	for {
		victim := m.terminal[m.hand]
		slot := m.hand
		m.hand = (m.hand + 1) % len(m.terminal)
		if victim.ref.CompareAndSwap(true, false) {
			continue
		}
		m.evict(victim)
		m.terminal[slot] = j
		return victim
	}
}

// evict drops a terminal job from the registry, releasing its prefix
// allocator entry when it was the last resident of that prefix. Caller
// holds m.mu.
func (m *Manager) evict(j *Job) {
	delete(m.byID, j.id)
	m.evictions++
	prefix := j.id
	if i := lastDash(prefix); i >= 0 {
		prefix = prefix[:i]
	}
	if ps := m.seq[prefix]; ps != nil {
		ps.resident--
		if ps.resident <= 0 {
			delete(m.seq, prefix)
		}
	}
}

func lastDash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '-' {
			return i
		}
	}
	return -1
}

// Get looks a job up, setting its CLOCK reference bit.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	j.ref.Store(true)
	return j, true
}

// Cancel requests cooperative cancellation: the job's context is canceled
// and, unless it already finished, its terminal state will be
// StateCanceled — possibly still carrying a result, since the exact search
// returns its best incumbent when interrupted. Cancel on a terminal job is
// an idempotent no-op. The boolean reports whether the ID is registered.
func (m *Manager) Cancel(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return nil, false
	}
	if !j.state.Terminal() {
		j.cancelRequested = true
	}
	m.mu.Unlock()
	j.cancel()
	return j, true
}

// List snapshots registered jobs, filtered by kind and state ("" = any),
// sorted by ID — a deterministic order for a deterministic wire format.
func (m *Manager) List(kind string, state State) []*Job {
	m.mu.Lock()
	out := make([]*Job, 0, len(m.byID))
	for _, j := range m.byID {
		if kind != "" && j.kind != kind {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, j)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// Metrics snapshots the manager counters in one lock acquisition.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Submitted:        m.submitted,
		Done:             m.finished[0],
		Failed:           m.finished[1],
		Canceled:         m.finished[2],
		Rejected:         m.rejected,
		Evictions:        m.evictions,
		Active:           int64(m.active),
		Terminal:         int64(len(m.terminal)),
		ActiveCapacity:   m.opts.MaxActive,
		TerminalCapacity: m.opts.TerminalEntries,
	}
}
