package exper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// SweepPoint is one point of the runtime-vs-duplication sweep (the
// quantitative counterpart of §5's "computation times closely depend on the
// duplication factor of each stage … 2 to 150,000 seconds").
type SweepPoint struct {
	// Reps is the replication vector of the instance.
	Reps []int
	// PathCount is m = lcm(reps).
	PathCount int64
	// PolyTime is the wall time of the Theorem 1 polynomial algorithm.
	PolyTime time.Duration
	// TPNTime is the wall time of the general unfolded-net method
	// (overlap model), zero when the net exceeds the row cap.
	TPNTime time.Duration
	// TPNSkipped reports that the unfolded net was over the cap.
	TPNSkipped bool
	// Period is the (overlap) period, identical between both methods.
	Period rat.Rat
}

// RuntimeSweep evaluates randomly-timed two-stage instances with increasing
// replication, timing the polynomial algorithm against the general method.
// The replication vectors use coprime pairs so m = m_0 * m_1 grows
// quadratically while the pattern graphs stay m_0 x m_1. Points run on a
// single worker so the wall-time columns measure an unloaded core; use
// RuntimeSweepEngine to trade timing fidelity for parallel turnaround.
func RuntimeSweep(seed int64, pairs [][]int) ([]SweepPoint, error) {
	return RuntimeSweepEngine(context.Background(), engine.New(engine.Options{Workers: 1}), seed, pairs)
}

// RuntimeSweepEngine runs the sweep on the given engine. The instance of
// every point is drawn up front from one serial rng stream (so the
// population is identical at any worker count); the points then time both
// algorithms independently on the pool. Per-point timings overlap when the
// pool is wider than one worker, which inflates absolute wall times on a
// busy machine but preserves the poly-vs-TPN comparison each point makes.
func RuntimeSweepEngine(ctx context.Context, eng *engine.Engine, seed int64, pairs [][]int) ([]SweepPoint, error) {
	return RuntimeSweepEngineSubset(ctx, eng, seed, pairs, nil)
}

// RuntimeSweepEngineSubset evaluates only the pairs at the given indices
// (nil = all), returning one point per index in the order given. The full
// instance population is still drawn from the one serial rng stream before
// anything is evaluated, so the instance at index k is bit-identical to the
// one a full sweep over the same (seed, pairs) evaluates — the property the
// cluster router's scatter relies on: each node generates the whole
// (cheap) population but solves only the pairs it is home to, and the
// gathered points merge back into exactly the single-node sweep.
func RuntimeSweepEngineSubset(ctx context.Context, eng *engine.Engine, seed int64, pairs [][]int, only []int) ([]SweepPoint, error) {
	return RuntimeSweepEngineSubsetProgress(ctx, eng, seed, pairs, only, nil)
}

// RuntimeSweepEngineSubsetProgress is RuntimeSweepEngineSubset with a
// per-point progress callback — see RuntimeSweepInstances for the contract.
func RuntimeSweepEngineSubsetProgress(ctx context.Context, eng *engine.Engine, seed int64, pairs [][]int, only []int, onPoint func()) ([]SweepPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]*model.Instance, len(pairs))
	for k, reps := range pairs {
		inst, err := randomTimedInstance(rng, reps, 5, 15)
		if err != nil {
			return nil, err
		}
		insts[k] = inst
	}
	return RuntimeSweepInstances(ctx, eng, insts, only, onPoint)
}

// RuntimeSweepInstances runs the sweep over an explicit instance
// population instead of a generated one — the path behind sweep requests
// that name registered instances ("instanceIds") or carry them inline. The
// replication vector of each point is read off the instance. only selects
// the indices to evaluate (nil = all), in the order given; onPoint (when
// non-nil) is called once per completed point from the engine's worker
// goroutines — the jobs layer counts these calls into a poller-visible
// progress gauge — and must be concurrency-safe and cheap.
func RuntimeSweepInstances(ctx context.Context, eng *engine.Engine, insts []*model.Instance, only []int, onPoint func()) ([]SweepPoint, error) {
	if only == nil {
		only = make([]int, len(insts))
		for k := range only {
			only[k] = k
		}
	}
	for _, k := range only {
		if k < 0 || k >= len(insts) {
			return nil, fmt.Errorf("exper: sweep index %d out of range [0, %d)", k, len(insts))
		}
	}
	out := make([]SweepPoint, len(only))
	errs := make([]error, len(only))
	if err := eng.ForEach(ctx, len(only), func(i int) {
		k := only[i]
		rc := insts[k].ReplicationCounts()
		reps := make([]int, len(rc))
		for j, r := range rc {
			reps[j] = int(r)
		}
		out[i], errs[i] = sweepPoint(insts[k], reps)
		if onPoint != nil {
			onPoint()
		}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepPoint times the polynomial algorithm against the unfolded-TPN
// method on one instance and cross-checks that they agree.
func sweepPoint(inst *model.Instance, reps []int) (SweepPoint, error) {
	pt := SweepPoint{Reps: reps, PathCount: inst.PathCount()}

	t0 := time.Now()
	poly, err := core.PeriodOverlapPoly(inst)
	if err != nil {
		return pt, err
	}
	pt.PolyTime = time.Since(t0)
	pt.Period = poly.Period

	t0 = time.Now()
	full, err := core.PeriodTPN(inst, model.Overlap)
	switch {
	case err == nil:
		pt.TPNTime = time.Since(t0)
		if !full.Period.Equal(poly.Period) {
			return pt, fmt.Errorf("exper: sweep disagreement at reps %v: poly %v vs tpn %v",
				reps, poly.Period, full.Period)
		}
	default:
		var tooLarge tpn.ErrTooLarge
		if !errors.As(err, &tooLarge) {
			return pt, err
		}
		pt.TPNSkipped = true
	}
	return pt, nil
}

// DefaultSweepPairs lists replication vectors of growing m: coprime
// two-stage pairs (where the pattern graph is as large as the unfolded net,
// so both methods scale alike) followed by multi-stage vectors whose lcm
// explodes while every pattern graph stays small — the regime where
// Theorem 1's polynomial bound beats the general method by orders of
// magnitude (Example C's vector is included; the last vector exceeds the
// row cap of the unfolded method entirely).
func DefaultSweepPairs() [][]int {
	return [][]int{
		{2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9},
		{9, 10}, {11, 13}, {16, 17}, {25, 27},
		{4, 6, 9}, {8, 12, 18}, {10, 14, 21, 15},
		{5, 21, 27, 11},     // Example C: m = 10395
		{16, 27, 25, 7, 11}, // m = 831600 > cap: unfolded method infeasible
	}
}

// WriteSweep renders sweep results as the runtime "figure" table.
func WriteSweep(w io.Writer, pts []SweepPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "replication\tm=lcm\tpoly (Theorem 1)\tunfolded TPN\tperiod")
	for _, p := range pts {
		tpnCol := p.TPNTime.Round(time.Microsecond).String()
		if p.TPNSkipped {
			tpnCol = fmt.Sprintf("skipped (m > %d)", tpn.MaxRows)
		}
		fmt.Fprintf(tw, "%v\t%d\t%v\t%s\t%.4f\n",
			p.Reps, p.PathCount, p.PolyTime.Round(time.Microsecond), tpnCol, p.Period.Float64())
	}
	return tw.Flush()
}

// randomTimedInstance draws an instance with the given replication counts
// and uniform integer operation times in [lo, hi].
func randomTimedInstance(rng *rand.Rand, reps []int, lo, hi int64) (*model.Instance, error) {
	return RandomTimedInstance(rng, reps, lo, hi)
}

// RandomTimedInstance draws an instance with the given replication counts
// and uniform integer operation times in [lo, hi] — the sweep's instance
// population, exported so other drivers (cmd/loadgen) generate the same
// family instead of re-implementing it.
func RandomTimedInstance(rng *rand.Rand, reps []int, lo, hi int64) (*model.Instance, error) {
	draw := func() rat.Rat { return rat.FromInt(lo + rng.Int63n(hi-lo+1)) }
	n := len(reps)
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	return model.FromTimes(comp, comm)
}
