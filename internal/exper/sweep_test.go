package exper

import (
	"strings"
	"testing"
)

func TestRuntimeSweepSmall(t *testing.T) {
	pts, err := RuntimeSweep(1, [][]int{{2, 3}, {3, 4}, {4, 6, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].PathCount != 6 || pts[1].PathCount != 12 || pts[2].PathCount != 36 {
		t.Fatalf("path counts wrong: %+v", pts)
	}
	for _, p := range pts {
		if p.TPNSkipped {
			t.Fatalf("small instance skipped: %+v", p)
		}
		if p.Period.Sign() <= 0 {
			t.Fatalf("bad period: %+v", p)
		}
		if p.PolyTime <= 0 || p.TPNTime <= 0 {
			t.Fatalf("missing timings: %+v", p)
		}
	}
}

func TestRuntimeSweepSkipsOverCap(t *testing.T) {
	pts, err := RuntimeSweep(1, [][]int{{16, 27, 25, 7, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].TPNSkipped {
		t.Fatalf("m = %d should exceed the row cap", pts[0].PathCount)
	}
	if pts[0].Period.Sign() <= 0 {
		t.Fatal("polynomial algorithm must still produce the period")
	}
}

func TestWriteSweep(t *testing.T) {
	pts, err := RuntimeSweep(2, [][]int{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteSweep(&b, pts); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"replication", "m=lcm", "[2 3]", "poly"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultSweepPairsSane(t *testing.T) {
	pairs := DefaultSweepPairs()
	if len(pairs) < 10 {
		t.Fatalf("only %d sweep vectors", len(pairs))
	}
	for _, v := range pairs {
		if len(v) < 2 {
			t.Fatalf("vector %v too short", v)
		}
		for _, r := range v {
			if r < 2 {
				t.Fatalf("vector %v has trivial replication", v)
			}
		}
	}
}
