package exper

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestTable2RowsGrid(t *testing.T) {
	rows := Table2Rows(model.Overlap, 1, DefaultMaxPathCount)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	totals := 0
	for _, r := range rows {
		totals += r.Runs
	}
	// The paper's grand total is 5152 across both models: 2576 per model.
	if totals != 2576 {
		t.Fatalf("per-model total runs = %d, want 2576", totals)
	}
}

func TestTable2RowsScale(t *testing.T) {
	rows := Table2Rows(model.Strict, 0.01, DefaultMaxPathCount)
	for _, r := range rows {
		if r.Runs < 2 {
			t.Errorf("row %q scaled below 2 runs", r.Label)
		}
		if r.Runs > 20 {
			t.Errorf("row %q not scaled: %d runs", r.Label, r.Runs)
		}
	}
}

func TestRunSmallRowOverlap(t *testing.T) {
	row := Row{
		Label: "test overlap",
		Model: model.Overlap,
		Specs: []workload.Spec{{Stages: 2, Procs: 7, CompLo: 1, CompHi: 1, CommLo: 5, CommHi: 10, MaxPathCount: DefaultMaxPathCount}},
		Runs:  30,
	}
	rr, err := Run(row, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total != 30 {
		t.Fatalf("total = %d", rr.Total)
	}
	// Table 2: the overlap model essentially never loses its critical
	// resource on this family (0/1000 in the paper).
	if rr.NoCritical > 1 {
		t.Errorf("overlap no-critical count suspiciously high: %d/30", rr.NoCritical)
	}
}

func TestRunSmallRowStrict(t *testing.T) {
	row := Row{
		Label: "test strict",
		Model: model.Strict,
		Specs: []workload.Spec{{Stages: 2, Procs: 7, CompLo: 1, CompHi: 1, CommLo: 5, CommHi: 10, MaxPathCount: DefaultMaxPathCount}},
		Runs:  30,
	}
	rr, err := Run(row, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total != 30 {
		t.Fatalf("total = %d", rr.Total)
	}
	if rr.NoCritical > 0 && rr.MaxGapPct <= 0 {
		t.Error("no-critical cases must have positive gap")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	row := Row{
		Label: "det",
		Model: model.Strict,
		Specs: []workload.Spec{{Stages: 2, Procs: 7, CompLo: 1, CompHi: 1, CommLo: 5, CommHi: 10, MaxPathCount: DefaultMaxPathCount}},
		Runs:  20,
	}
	a, err := Run(row, 99, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(row, 99, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.NoCritical != b.NoCritical || a.Total != b.Total {
		t.Fatalf("parallelism changed outcome: %+v vs %+v", a, b)
	}
}

func TestWriteTable(t *testing.T) {
	results := []RowResult{
		{Row: Row{Label: "fam A", Model: model.Overlap}, Total: 100, NoCritical: 0},
		{Row: Row{Label: "fam B", Model: model.Strict}, Total: 100, NoCritical: 3, MaxGapPct: 7.2},
	}
	var b strings.Builder
	if err := WriteTable(&b, results); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fam A", "fam B", "0 / 100", "3 / 100", "diff less than 8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
