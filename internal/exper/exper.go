// Package exper runs the experiment campaign of Section 5 and regenerates
// Table 2: for thousands of random instances, compare the period with the
// maximum resource cycle-time and count the (rare) cases without critical
// resource.
//
// Runs are distributed over the batch-evaluation engine's work-stealing
// worker pool; every instance is evaluated exactly (rational arithmetic),
// so "no critical resource" means a strict inequality P > Mct, not a
// floating-point artifact. Aggregation is index-ordered, so a row's result
// is identical at any parallelism.
package exper

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// Row is one line of Table 2: a family of random instances under one model.
type Row struct {
	Label string
	Model model.CommModel
	// Specs lists the instance families pooled into this row (the paper
	// pools e.g. "(10,20) and (10,30)").
	Specs []workload.Spec
	// Runs is the total number of instances, split evenly across Specs.
	Runs int
}

// RowResult aggregates one row's outcomes.
type RowResult struct {
	Row
	Total      int
	NoCritical int
	// MaxGapPct is the largest relative gap (P-Mct)/Mct observed, in percent.
	MaxGapPct float64
	// MeanGapPct averages the gap over the no-critical-resource cases.
	MeanGapPct float64
}

// Table2Rows returns the paper's experiment grid for the given model. Sizes,
// ranges and run counts follow Table 2; scale (0 < scale <= 1) shrinks run
// counts proportionally for quick runs.
func Table2Rows(cm model.CommModel, scale float64, maxPathCount int64) []Row {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := func(runs int) int {
		v := int(float64(runs) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	spec := func(st, pr int, compLo, compHi, commLo, commHi int64) workload.Spec {
		return workload.Spec{
			Stages: st, Procs: pr,
			CompLo: compLo, CompHi: compHi,
			CommLo: commLo, CommHi: commHi,
			MaxPathCount: maxPathCount,
		}
	}
	return []Row{
		{
			Label: "(10,20)+(10,30) comp 5-15 comm 5-15", Model: cm, Runs: n(220),
			Specs: []workload.Spec{spec(10, 20, 5, 15, 5, 15), spec(10, 30, 5, 15, 5, 15)},
		},
		{
			Label: "(10,20)+(10,30) comp 10-1000 comm 10-1000", Model: cm, Runs: n(220),
			Specs: []workload.Spec{spec(10, 20, 10, 1000, 10, 1000), spec(10, 30, 10, 1000, 10, 1000)},
		},
		{
			Label: "(20,30) comp 5-15 comm 5-15", Model: cm, Runs: n(68),
			Specs: []workload.Spec{spec(20, 30, 5, 15, 5, 15)},
		},
		{
			Label: "(20,30) comp 10-1000 comm 10-1000", Model: cm, Runs: n(68),
			Specs: []workload.Spec{spec(20, 30, 10, 1000, 10, 1000)},
		},
		{
			Label: "(2,7)+(3,7) comp 1 comm 5-10", Model: cm, Runs: n(1000),
			Specs: []workload.Spec{spec(2, 7, 1, 1, 5, 10), spec(3, 7, 1, 1, 5, 10)},
		},
		{
			Label: "(2,7)+(3,7) comp 1 comm 10-50", Model: cm, Runs: n(1000),
			Specs: []workload.Spec{spec(2, 7, 1, 1, 10, 50), spec(3, 7, 1, 1, 10, 50)},
		},
	}
}

// DefaultMaxPathCount bounds m = lcm(m_i) for generated instances so the
// strict model's unfolded TPN stays tractable (see DESIGN.md: substitution
// for the authors' multi-day runs).
const DefaultMaxPathCount = 2520

// Run executes one row: Runs instances split across the row's specs, each
// evaluated under the row's model. Parallelism 0 means GOMAXPROCS.
func Run(row Row, seed int64, parallelism int) (RowResult, error) {
	return RunEngine(context.Background(), engine.New(engine.Options{Workers: parallelism}), row, seed)
}

// RunEngine executes one row on the given engine. Instance k derives its
// rng from seed+k, so the generated population is independent of worker
// count and interleaving; outcomes are aggregated in index order, making
// the whole RowResult (including which error is reported) deterministic.
func RunEngine(ctx context.Context, eng *engine.Engine, row Row, seed int64) (RowResult, error) {
	type outcome struct {
		noCrit bool
		gapPct float64
		err    error
	}
	outs := make([]outcome, row.Runs)
	if err := eng.ForEach(ctx, row.Runs, func(k int) {
		js := seed + int64(k)
		rng := rand.New(rand.NewSource(js))
		sp := row.Specs[int(js)%len(row.Specs)]
		inst, err := sp.Instance(rng)
		if err != nil {
			outs[k] = outcome{err: err}
			return
		}
		res, err := eng.Evaluate(engine.Task{Inst: inst, Model: row.Model})
		if err != nil {
			outs[k] = outcome{err: fmt.Errorf("exper: %v on %v: %w", row.Model, sp, err)}
			return
		}
		o := outcome{}
		if !res.HasCriticalResource() {
			o.noCrit = true
			o.gapPct = res.Gap().Float64() * 100
		}
		outs[k] = o
	}); err != nil {
		return RowResult{Row: row}, err
	}

	rr := RowResult{Row: row}
	var gapSum float64
	var firstErr error
	for _, o := range outs {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		rr.Total++
		if o.noCrit {
			rr.NoCritical++
			gapSum += o.gapPct
			if o.gapPct > rr.MaxGapPct {
				rr.MaxGapPct = o.gapPct
			}
		}
	}
	if firstErr != nil {
		return rr, firstErr
	}
	if rr.NoCritical > 0 {
		rr.MeanGapPct = gapSum / float64(rr.NoCritical)
	}
	return rr, nil
}

// RunAll executes rows for both models and returns all results.
func RunAll(scale float64, seed int64, parallelism int, progress func(RowResult)) ([]RowResult, error) {
	return RunAllEngine(context.Background(), engine.New(engine.Options{Workers: parallelism}), scale, seed, progress)
}

// RunAllEngine executes rows for both models on one shared engine.
func RunAllEngine(ctx context.Context, eng *engine.Engine, scale float64, seed int64, progress func(RowResult)) ([]RowResult, error) {
	var out []RowResult
	for _, cm := range model.Models() {
		for i, row := range Table2Rows(cm, scale, DefaultMaxPathCount) {
			rr, err := RunEngine(ctx, eng, row, seed+int64(i)*1_000_003+int64(cm)*7_000_009)
			if err != nil {
				return out, err
			}
			out = append(out, rr)
			if progress != nil {
				progress(rr)
			}
		}
	}
	return out, nil
}

// WriteTable renders results in the layout of Table 2.
func WriteTable(w io.Writer, results []RowResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tsize / times\t#exp without critical resource / total\tmax gap")
	for _, r := range results {
		gap := ""
		if r.NoCritical > 0 {
			gap = fmt.Sprintf("diff less than %.0f%%", r.MaxGapPct+0.999)
		}
		fmt.Fprintf(tw, "%v\t%s\t%d / %d\t%s\n", r.Model, r.Label, r.NoCritical, r.Total, gap)
	}
	return tw.Flush()
}
