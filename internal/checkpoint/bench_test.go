package checkpoint

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bnb"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// BenchmarkCheckpointOverhead measures what checkpointing costs the walker:
// the same deterministic bnb search with the persister off vs on (a real
// store on disk, per-root RootDone, a 100ms flush interval — the serving
// default shape). The CI gate in scripts/benchjson.awk requires on/off
// <= 1.05 in ns/op: checkpointing must cost at most 5% of walker
// throughput, or the per-root bookkeeping has grown onto the hot path.
func BenchmarkCheckpointOverhead(b *testing.B) {
	pipe := pipeline.Random(rand.New(rand.NewSource(7)), 4, 50, 500)
	plat := platform.Uniform(9, 12, 100)
	run := func(b *testing.B, onRootDone func(int, bnb.Root, bnb.SubResult)) {
		eng := engine.New(engine.Options{CacheEntries: -1})
		var last bnb.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := bnb.Search(context.Background(), eng, pipe, plat, model.Overlap,
				bnb.Options{OnRootDone: onRootDone})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.StopTimer()
		if !last.Proven {
			b.Fatal("benchmark search did not prove its answer")
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("on", func(b *testing.B) {
		m, err := NewManager(b.TempDir(), 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		// One live record to write into, exactly as the serving layer
		// registers per detached job.
		const jobID = "bench0000bench00-1"
		m.Adopt(Record{JobID: jobID, Kind: "search", State: "running"})
		run(b, func(frontier int, root bnb.Root, res bnb.SubResult) {
			m.RootDone(jobID, frontier, root, res)
		})
	})
}
