package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	"repro/internal/bnb"
	"repro/internal/jobs"
	"repro/internal/rat"
)

// Incumbent is the best feasible mapping known at flush time, carried
// exactly (the period is a rational string).
type Incumbent struct {
	Replicas [][]int `json:"replicas"`
	Period   string  `json:"period"`
}

// Failure mirrors jobs.Failure for the durable record.
type Failure struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stats freezes the job's final progress counters at terminal time, so a
// restarted server answers status polls with the numbers the job actually
// ran up, not zeros.
type Stats struct {
	Nodes       int64 `json:"nodes,omitempty"`
	Leaves      int64 `json:"leaves,omitempty"`
	Pruned      int64 `json:"pruned,omitempty"`
	Screened    int64 `json:"screened,omitempty"`
	PointsDone  int64 `json:"pointsDone,omitempty"`
	PointsTotal int64 `json:"pointsTotal,omitempty"`
}

// Record is one job's durable state. While the job runs, Roots accumulates
// the finished frontier roots (the resume path replays them verbatim);
// once terminal, the final response body or failure replaces them.
//
// Body and Result are []byte (base64 in the file), NOT json.RawMessage:
// marshaling a RawMessage compacts it, which would silently rewrite the
// client's submission bytes (breaking the BodyHash integrity check for any
// non-compact body) and strip the encoder's trailing newline from results
// (breaking byte-identical replay after a restart).
type Record struct {
	JobID    string `json:"jobId"`
	Kind     string `json:"kind"`
	Body     []byte `json:"body,omitempty"`
	BodyHash string `json:"bodyHash,omitempty"`
	State    string `json:"state"`
	// Frontier is the planned frontier size; DoneRoots is the index bitmap
	// of finished roots as a hex string (LSB = root 0), redundant with the
	// keys of Roots and cross-checked on load.
	Frontier  int                   `json:"frontier,omitempty"`
	DoneRoots string                `json:"doneRoots,omitempty"`
	Roots     map[int]bnb.SubResult `json:"roots,omitempty"`
	Incumbent *Incumbent            `json:"incumbent,omitempty"`
	Result    []byte                `json:"result,omitempty"`
	Failure   *Failure              `json:"failure,omitempty"`
	Stats     *Stats                `json:"stats,omitempty"`
}

// Bitmap renders the finished-root indices as a little-endian hex bitmap
// (LSB of byte 0 = root 0). Exported so the resume tests — and any tool
// inspecting checkpoint files — can produce the exact on-disk encoding.
func Bitmap(roots map[int]bnb.SubResult, frontier int) string {
	if frontier <= 0 || len(roots) == 0 {
		return ""
	}
	bits := make([]byte, (frontier+7)/8)
	for idx := range roots {
		if idx >= 0 && idx < frontier {
			bits[idx/8] |= 1 << (idx % 8)
		}
	}
	return hex.EncodeToString(bits)
}

// Manager implements jobs.Persister over a Store, with interval-based
// flushing of per-root progress: RootDone marks a root finished in memory
// and writes the record through when Interval has elapsed since the last
// write (Interval <= 0 flushes on every root). Submitted and Terminal
// always write through — the boundaries of a job are never lost, only
// up to Interval's worth of finished roots in between.
type Manager struct {
	store    *Store
	interval time.Duration

	mu   sync.Mutex
	live map[string]*jobRecord
}

type jobRecord struct {
	rec       Record
	lastFlush time.Time
	dirty     int // finished roots not yet on disk
}

// NewManager builds a Persister persisting to dir every interval.
func NewManager(dir string, interval time.Duration) (*Manager, error) {
	store, err := NewStore(dir)
	if err != nil {
		return nil, err
	}
	return &Manager{store: store, interval: interval, live: make(map[string]*jobRecord)}, nil
}

// Store exposes the underlying record layer (the resume path lists it).
func (m *Manager) Store() *Store { return m.store }

// Submitted persists the birth of every detached job that carries a body.
// Inline jobs die with their request and are not worth a file.
func (m *Manager) Submitted(j *jobs.Job) {
	if !j.Detached() || len(j.Body()) == 0 {
		return
	}
	sum := sha256.Sum256(j.Body())
	rec := Record{
		JobID:    j.ID(),
		Kind:     j.Kind(),
		Body:     append([]byte(nil), j.Body()...),
		BodyHash: hex.EncodeToString(sum[:]),
		State:    string(jobs.StateRunning),
	}
	m.mu.Lock()
	m.live[j.ID()] = &jobRecord{rec: rec, lastFlush: time.Now()}
	m.mu.Unlock()
	m.flush(j.ID(), true)
}

// RootDone records one finished frontier root. It is safe for concurrent
// use (bnb calls it from worker goroutines) and cheap between flushes: a
// map insert under the manager lock.
func (m *Manager) RootDone(jobID string, frontier int, root bnb.Root, res bnb.SubResult) {
	m.mu.Lock()
	jr, ok := m.live[jobID]
	if !ok {
		m.mu.Unlock()
		return
	}
	if jr.rec.Roots == nil {
		jr.rec.Roots = make(map[int]bnb.SubResult)
	}
	jr.rec.Frontier = frontier
	jr.rec.Roots[root.Index] = res
	if res.BestPeriod != "" {
		better := jr.rec.Incumbent == nil || lessPeriod(res.BestPeriod, jr.rec.Incumbent.Period)
		if better {
			jr.rec.Incumbent = &Incumbent{Replicas: res.BestReplicas, Period: res.BestPeriod}
		}
	}
	jr.dirty++
	due := m.interval <= 0 || time.Since(jr.lastFlush) >= m.interval
	m.mu.Unlock()
	if due {
		m.flush(jobID, false)
	}
}

// Terminal persists the final verdict: state, response body or failure.
// The per-root working set is dropped — a terminal record answers result
// polls after a restart, it no longer needs to resume anything.
func (m *Manager) Terminal(j *jobs.Job) {
	m.mu.Lock()
	jr, ok := m.live[j.ID()]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(m.live, j.ID())
	jr.rec.State = string(j.State())
	jr.rec.Roots = nil
	jr.rec.DoneRoots = ""
	jr.rec.Frontier = 0
	jr.rec.Incumbent = nil
	if body, ok := j.Result(); ok {
		jr.rec.Result = append([]byte(nil), body...)
	}
	if f := j.Failure(); f != nil {
		jr.rec.Failure = &Failure{Status: f.Status, Code: f.Code, Message: f.Message}
	}
	p := j.Progress()
	jr.rec.Stats = &Stats{
		Nodes: p.Nodes.Load(), Leaves: p.Leaves.Load(),
		Pruned: p.Pruned.Load(), Screened: p.Screened.Load(),
		PointsDone: p.PointsDone.Load(), PointsTotal: p.PointsTotal.Load(),
	}
	rec := jr.rec
	m.mu.Unlock()
	m.store.Save(rec.JobID, rec)
}

// Evicted drops the durable record when the in-memory registry recycles
// the job — disk usage stays bounded by the same CLOCK policy as memory.
func (m *Manager) Evicted(j *jobs.Job) {
	m.mu.Lock()
	delete(m.live, j.ID())
	m.mu.Unlock()
	m.store.Delete(j.ID())
}

// Resumable loads every record still worth acting on after a restart:
// terminal records (rehydrated so pollers keep their answers) and running
// records (re-submitted and resumed from their finished roots). Records
// that fail their integrity check are skipped — a torn write costs that
// job its checkpoint, never the whole registry. The DoneRoots bitmap is
// cross-checked against the Roots keys; on mismatch the roots are dropped
// and the job simply re-runs from scratch.
func (m *Manager) Resumable() []Record {
	names, err := m.store.List()
	if err != nil {
		return nil
	}
	var out []Record
	for _, name := range names {
		var rec Record
		if err := m.store.Load(name, &rec); err != nil {
			continue
		}
		if rec.JobID == "" || rec.JobID != name {
			continue
		}
		if rec.BodyHash != "" {
			sum := sha256.Sum256(rec.Body)
			if hex.EncodeToString(sum[:]) != rec.BodyHash {
				// The stored body does not hash to what the record claims —
				// resuming would re-run someone else's request under this ID.
				continue
			}
		}
		if len(rec.Roots) > 0 && rec.DoneRoots != Bitmap(rec.Roots, rec.Frontier) {
			rec.Roots = nil
			rec.Incumbent = nil
		}
		out = append(out, rec)
	}
	return out
}

// Adopt re-registers a resumed job with the manager so RootDone calls
// against its ID keep checkpointing — the restart counterpart of
// Submitted, seeded with the replayed roots. The roots map is cloned:
// the caller hands the same map to the resumed search as its replay set,
// which worker goroutines read concurrently with RootDone's writes here.
func (m *Manager) Adopt(rec Record) {
	if len(rec.Roots) > 0 {
		roots := make(map[int]bnb.SubResult, len(rec.Roots))
		for k, v := range rec.Roots {
			roots[k] = v
		}
		rec.Roots = roots
	}
	m.mu.Lock()
	m.live[rec.JobID] = &jobRecord{rec: rec, lastFlush: time.Now()}
	m.mu.Unlock()
}

// flush writes a live record through. force ignores the interval.
func (m *Manager) flush(jobID string, force bool) {
	m.mu.Lock()
	jr, ok := m.live[jobID]
	if !ok {
		m.mu.Unlock()
		return
	}
	if !force && jr.dirty == 0 {
		m.mu.Unlock()
		return
	}
	jr.rec.DoneRoots = Bitmap(jr.rec.Roots, jr.rec.Frontier)
	rec := jr.rec
	rec.Roots = make(map[int]bnb.SubResult, len(jr.rec.Roots))
	for k, v := range jr.rec.Roots {
		rec.Roots[k] = v
	}
	jr.dirty = 0
	jr.lastFlush = time.Now()
	m.mu.Unlock()
	m.store.Save(rec.JobID, rec)
}

// lessPeriod compares two exact period strings; unparseable input never
// wins.
func lessPeriod(a, b string) bool {
	ra, err := rat.Parse(a)
	if err != nil {
		return false
	}
	rb, err := rat.Parse(b)
	if err != nil {
		return true
	}
	return ra.Less(rb)
}

var _ jobs.Persister = (*Manager)(nil)
