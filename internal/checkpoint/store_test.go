package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bnb"
)

type payload struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	Blob  string `json:"blob"`
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := payload{Name: "job-1", Count: 42, Blob: strings.Repeat("x", 1000)}
	if err := s.Save("job-1", want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Load("job-1", &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "job-1" {
		t.Fatalf("List = %v", names)
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("job-1", &got); err == nil {
		t.Fatal("Load succeeded after Delete")
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestTruncatedRecordsNeverLoad is the crash-safety property test: for a
// real record, EVERY strict prefix of the on-disk bytes must fail to load —
// a torn final write can never be mistaken for a checkpoint. Flipped bytes
// (bit rot, partially reused sectors) must fail the digest too.
func TestTruncatedRecordsNeverLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		JobID:    "abc12345deadbeef-1",
		Kind:     "search",
		Body:     []byte(`{"algo":"bnb"}`),
		State:    "running",
		Frontier: 3,
		Roots: map[int]bnb.SubResult{
			0: {Complete: true, BestPeriod: "7/3", BestReplicas: [][]int{{0}, {1, 2}}},
			2: {Complete: true},
		},
	}
	rec.DoneRoots = Bitmap(rec.Roots, rec.Frontier)
	if err := s.Save(rec.JobID, rec); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, rec.JobID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var ok Record
	if err := s.Load(rec.JobID, &ok); err != nil {
		t.Fatalf("pristine record failed to load: %v", err)
	}

	target := filepath.Join(dir, rec.JobID+".json")
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(target, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		var out Record
		if err := s.Load(rec.JobID, &out); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", n, len(full))
		}
	}
	// Corruption inside the payload must fail the digest check.
	for _, pos := range []int{len(full) / 4, len(full) / 2, len(full) - 2} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0x20
		if err := os.WriteFile(target, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		var out Record
		if err := s.Load(rec.JobID, &out); err == nil {
			t.Fatalf("byte flip at %d loaded successfully", pos)
		}
	}
	// Restore and confirm the store recovers.
	if err := os.WriteFile(target, full, 0o644); err != nil {
		t.Fatal(err)
	}
	var out Record
	if err := s.Load(rec.JobID, &out); err != nil {
		t.Fatalf("restored record failed to load: %v", err)
	}
	if out.DoneRoots != rec.DoneRoots || len(out.Roots) != 2 || out.Roots[0].BestPeriod != "7/3" {
		t.Fatalf("restored record lost data: %+v", out)
	}
}

// TestTempLeftoversAreIgnored: a crash between temp-file creation and
// rename leaves *.tmp* debris; List must skip it, Resumable must survive
// it, and a later Save of the same name must still land.
func TestTempLeftoversAreIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("good-1", payload{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	// Simulated crash debris: a half-written temp for an existing record and
	// one for a record that never completed at all.
	for _, junk := range []string{"good-1.json.tmp123", "half-1.json.tmp987"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte(`{"v":1,"sum":"`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "good-1" {
		t.Fatalf("List with temp debris = %v, want [good-1]", names)
	}
	if err := s.Save("good-1", payload{Name: "newer"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Load("good-1", &got); err != nil || got.Name != "newer" {
		t.Fatalf("Save over debris: %+v, %v", got, err)
	}
}

// TestResumableSkipsCorruptRecords: one torn record must not poison the
// registry scan.
func TestResumableSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := Record{JobID: "aaaa-1", Kind: "search", State: "done", Result: []byte(`{}`)}
	if err := m.Store().Save(good.JobID, good); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bbbb-1.json"), []byte(`{"v":1,"sum":"00","rec":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A record whose name does not match its JobID is also refused.
	if err := m.Store().Save("cccc-1", Record{JobID: "dddd-9", State: "done"}); err != nil {
		t.Fatal(err)
	}
	recs := m.Resumable()
	if len(recs) != 1 || recs[0].JobID != "aaaa-1" {
		t.Fatalf("Resumable = %+v, want just aaaa-1", recs)
	}
}
