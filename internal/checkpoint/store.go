// Package checkpoint persists job state to disk so long searches survive
// process restarts: it is the jobs.Persister implementation behind
// `serve -checkpoint-dir`. A record holds everything needed to resume a
// branch-and-bound job from its last flush — the raw submission body (the
// job re-plans from the identical bytes), the frontier size, the set of
// finished roots with their exact SubResults, the incumbent, and once
// terminal the final response body — so a resumed deterministic search
// replays finished subtrees from disk, re-executes only the unfinished
// ones, and returns bytes identical to an uninterrupted run.
//
// Durability discipline: every write goes to a fresh temp file in the same
// directory, is synced, and then renamed over the final name — a reader
// never observes a half-written record. Each record additionally carries a
// SHA-256 of its payload inside a versioned envelope, so a torn final
// write (a crash mid-rename on a filesystem without atomic rename
// semantics) is detected and discarded instead of loaded.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the durable record layer: named JSON records in one directory,
// written atomically. Safe for concurrent use on distinct names; callers
// serialize per-name access (the Manager holds a per-job lock).
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory backing the store.
func (s *Store) Dir() string { return s.dir }

// envelope is the on-disk frame: a version, the SHA-256 of the payload
// bytes, and the payload itself. Load refuses anything whose digest does
// not match — a record is either the bytes Save wrote or it is nothing.
type envelope struct {
	V   int             `json:"v"`
	Sum string          `json:"sum"`
	Rec json.RawMessage `json:"rec"`
}

const envelopeVersion = 1

// suffix for in-flight temp files; List and Load ignore them.
const tmpSuffix = ".tmp"

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+".json")
}

// Save atomically writes rec under name: temp file, sync, rename.
func (s *Store) Save(name string, rec any) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", name, err)
	}
	sum := sha256.Sum256(payload)
	body, err := json.Marshal(envelope{
		V:   envelopeVersion,
		Sum: hex.EncodeToString(sum[:]),
		Rec: payload,
	})
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", name, err)
	}
	f, err := os.CreateTemp(s.dir, name+".json"+tmpSuffix+"*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(body); err == nil {
		err = f.Sync()
	} else {
		f.Sync() // best effort; the write error wins below
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(name))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", name, err)
	}
	return nil
}

// Load reads the record under name into out. It fails — never partially
// decodes — on missing files, temp leftovers, truncated or torn writes,
// version mismatches, and digest mismatches.
func (s *Store) Load(name string, out any) error {
	body, err := os.ReadFile(s.path(name))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("checkpoint: %s is not a complete record: %w", name, err)
	}
	if env.V != envelopeVersion {
		return fmt.Errorf("checkpoint: %s has record version %d, want %d", name, env.V, envelopeVersion)
	}
	sum := sha256.Sum256(env.Rec)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return fmt.Errorf("checkpoint: %s failed its integrity check (torn write?)", name)
	}
	if err := json.Unmarshal(env.Rec, out); err != nil {
		return fmt.Errorf("checkpoint: decode %s: %w", name, err)
	}
	return nil
}

// Delete removes the record under name (missing is not an error).
func (s *Store) Delete(name string) error {
	err := os.Remove(s.path(name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// List returns the names of all complete records, sorted (os.ReadDir
// orders by filename). Temp leftovers from interrupted writes are skipped —
// and their presence is harmless: the next Save of the same name writes a
// fresh temp file.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".json") || strings.Contains(n, tmpSuffix) {
			continue
		}
		names = append(names, strings.TrimSuffix(n, ".json"))
	}
	return names, nil
}
