package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bnb"
	"repro/internal/jobs"
)

// TestManagerLifecycle walks a detached job through the persister: birth
// writes a running record, RootDone accumulates finished roots with the
// incumbent, Terminal swaps the working set for the final body, and the
// CLOCK eviction drops the file.
func TestManagerLifecycle(t *testing.T) {
	m, err := NewManager(t.TempDir(), 0) // interval 0: flush every root
	if err != nil {
		t.Fatal(err)
	}
	jm := jobs.New(jobs.Options{Persister: m, TerminalEntries: 1})
	body := []byte(`{"kind":"search","request":{"algo":"bnb"}}`)
	j, err := jm.Submit("search", "cafe0123cafe0123", body, nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()

	var rec Record
	if err := m.Store().Load(id, &rec); err != nil {
		t.Fatalf("no record after submit: %v", err)
	}
	if rec.JobID != id || rec.State != "running" || string(rec.Body) != string(body) || rec.BodyHash == "" {
		t.Fatalf("submit record = %+v", rec)
	}

	m.RootDone(id, 4, bnb.Root{Index: 2}, bnb.SubResult{Complete: true, BestPeriod: "5/2", BestReplicas: [][]int{{0}, {1}}})
	m.RootDone(id, 4, bnb.Root{Index: 0}, bnb.SubResult{Complete: true, BestPeriod: "9/4", BestReplicas: [][]int{{1}, {0}}})
	m.RootDone(id, 4, bnb.Root{Index: 1}, bnb.SubResult{Complete: true})
	if err := m.Store().Load(id, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Roots) != 3 || rec.Frontier != 4 {
		t.Fatalf("root record = %+v", rec)
	}
	if rec.DoneRoots != Bitmap(rec.Roots, 4) || rec.DoneRoots != "07" {
		t.Fatalf("bitmap = %q, want 07", rec.DoneRoots)
	}
	if rec.Incumbent == nil || rec.Incumbent.Period != "9/4" {
		t.Fatalf("incumbent = %+v, want period 9/4", rec.Incumbent)
	}

	recs := m.Resumable()
	if len(recs) != 1 || recs[0].State != "running" || len(recs[0].Roots) != 3 {
		t.Fatalf("Resumable mid-run = %+v", recs)
	}

	jm.Finish(j, []byte(`{"period":"9/4"}`), nil)
	rec = Record{}
	if err := m.Store().Load(id, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "done" || string(rec.Result) != `{"period":"9/4"}` || rec.Roots != nil {
		t.Fatalf("terminal record = %+v", rec)
	}

	// A second terminal job evicts the first from the 1-slot ring — and from
	// disk.
	j2, err := jm.Submit("search", "beef4567beef4567", body, nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	jm.Finish(j2, nil, &jobs.Failure{Status: 422, Code: "invalid_request", Message: "no"})
	rec = Record{}
	if err := m.Store().Load(id, &rec); err == nil {
		t.Fatalf("evicted job still on disk: %+v", rec)
	}
	rec = Record{}
	if err := m.Store().Load(j2.ID(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "failed" || rec.Failure == nil || rec.Failure.Code != "invalid_request" {
		t.Fatalf("failed record = %+v", rec)
	}
}

// TestBitmapMismatchDropsRoots: a record whose bitmap disagrees with its
// root set resumes from scratch rather than trusting either half.
func TestBitmapMismatchDropsRoots(t *testing.T) {
	m, err := NewManager(t.TempDir(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		JobID:     "feed0000feed0000-1",
		Kind:      "search",
		State:     "running",
		Frontier:  8,
		Roots:     map[int]bnb.SubResult{1: {Complete: true}},
		DoneRoots: "ff", // claims all eight
	}
	if err := m.Store().Save(rec.JobID, rec); err != nil {
		t.Fatal(err)
	}
	recs := m.Resumable()
	if len(recs) != 1 {
		t.Fatalf("Resumable = %+v", recs)
	}
	if recs[0].Roots != nil || recs[0].Incumbent != nil {
		t.Fatalf("mismatched bitmap kept roots: %+v", recs[0])
	}
}

// TestBodyHashMismatchSkipsRecord: a record whose stored body no longer
// hashes to its recorded digest must not resume at all — re-running those
// bytes would answer a different request under the original job ID.
func TestBodyHashMismatchSkipsRecord(t *testing.T) {
	m, err := NewManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		JobID:    "0123456789abcdef-1",
		Kind:     "search",
		State:    "running",
		Body:     []byte(`{"kind":"search"}`),
		BodyHash: "deadbeef", // wrong on purpose
	}
	if err := m.Store().Save(rec.JobID, rec); err != nil {
		t.Fatal(err)
	}
	if recs := m.Resumable(); len(recs) != 0 {
		t.Fatalf("hash-mismatched record resumed: %+v", recs)
	}
}

// TestAdoptResumedJobKeepsCheckpointing: Adopt is the restart counterpart
// of Submitted — RootDone against the adopted ID writes through with the
// replayed roots folded in, a worse root never displaces the incumbent,
// and an ID the manager never saw is a no-op rather than a file.
func TestAdoptResumedJobKeepsCheckpointing(t *testing.T) {
	m, err := NewManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const id = "f00d0123f00d0123-1"
	m.Adopt(Record{
		JobID: id, Kind: "search", State: "running",
		Frontier: 4,
		Roots:    map[int]bnb.SubResult{0: {Complete: true}},
	})
	m.RootDone(id, 4, bnb.Root{Index: 3}, bnb.SubResult{Complete: true, BestPeriod: "7/3", BestReplicas: [][]int{{0}, {1}}})
	m.RootDone(id, 4, bnb.Root{Index: 2}, bnb.SubResult{Complete: true, BestPeriod: "8/3", BestReplicas: [][]int{{1}, {0}}})
	var rec Record
	if err := m.Store().Load(id, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Roots) != 3 || rec.DoneRoots != "0d" {
		t.Fatalf("adopted record = %+v", rec)
	}
	if rec.Incumbent == nil || rec.Incumbent.Period != "7/3" {
		t.Fatalf("worse root displaced the incumbent: %+v", rec.Incumbent)
	}

	m.RootDone("aaaa0000aaaa0000-9", 2, bnb.Root{Index: 0}, bnb.SubResult{Complete: true})
	if err := m.Store().Load("aaaa0000aaaa0000-9", &rec); err == nil {
		t.Fatalf("RootDone for an unknown job wrote a record: %+v", rec)
	}

	// Inline (non-detached) jobs die with their request: no birth record,
	// and their terminal hook finds nothing to persist.
	jm := jobs.New(jobs.Options{Persister: m})
	j, err := jm.Submit("search", "beefbeefbeefbeef", []byte(`{}`), nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	jm.Finish(j, []byte(`{}`), nil)
	if err := m.Store().Load(j.ID(), &rec); err == nil {
		t.Fatalf("inline job left a checkpoint: %+v", rec)
	}
}

// TestStoreErrorPaths pins the constructor and mutation error surfaces:
// an empty directory is refused, a directory that is actually a file is
// refused, an unencodable record is refused, and deleting a record that
// never existed is not an error.
func TestStoreErrorPaths(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	plain := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(plain, 0); err == nil {
		t.Fatal("file-as-directory accepted")
	}
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	if err := s.Save("bad", func() {}); err == nil {
		t.Fatal("unencodable record accepted")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("deleting a missing record: %v", err)
	}
}

// TestLessPeriodUnparseable: garbage period strings never win a
// comparison — an unparseable candidate loses, an unparseable incumbent
// is always replaced.
func TestLessPeriodUnparseable(t *testing.T) {
	if lessPeriod("garbage", "1/2") {
		t.Fatal("unparseable candidate won")
	}
	if !lessPeriod("1/2", "garbage") {
		t.Fatal("parseable candidate lost to an unparseable incumbent")
	}
	if lessPeriod("3/2", "1/2") {
		t.Fatal("3/2 < 1/2")
	}
	if !lessPeriod("1/3", "1/2") {
		t.Fatal("1/3 >= 1/2")
	}
}

// TestIntervalBatchesWrites: with a long interval, root completions stay in
// memory between flushes; only the boundaries write through.
func TestIntervalBatchesWrites(t *testing.T) {
	m, err := NewManager(t.TempDir(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	jm := jobs.New(jobs.Options{Persister: m})
	j, err := jm.Submit("search", "dead0123dead0123", []byte(`{}`), nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	m.RootDone(j.ID(), 2, bnb.Root{Index: 0}, bnb.SubResult{Complete: true})
	var rec Record
	if err := m.Store().Load(j.ID(), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Roots) != 0 {
		t.Fatalf("root flushed before interval: %+v", rec)
	}
	jm.Finish(j, []byte(`{}`), nil)
	rec = Record{}
	if err := m.Store().Load(j.ID(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "done" {
		t.Fatalf("terminal write missing: %+v", rec)
	}
}
