package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/exper"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/store"
)

// testNode is one in-process serve node on a real listener, so tests can
// kill it abruptly (connection resets, not graceful drains) and rebind the
// same address to exercise rejoin.
type testNode struct {
	t    *testing.T
	addr string
	opts service.Options
	srv  *http.Server
}

func startNode(t *testing.T, opts service.Options) *testNode {
	t.Helper()
	n := &testNode{t: t, opts: opts}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	n.serveOn(ln)
	t.Cleanup(n.kill)
	return n
}

func (n *testNode) serveOn(ln net.Listener) {
	srv := &http.Server{Handler: service.NewServer(n.opts).Handler()}
	n.srv = srv
	go func() { _ = srv.Serve(ln) }()
}

func (n *testNode) url() string { return "http://" + n.addr }

// kill closes the listener and every open connection immediately.
func (n *testNode) kill() {
	if n.srv != nil {
		_ = n.srv.Close()
		n.srv = nil
	}
}

// restart rebinds the node's original address with a fresh (cold-store)
// server — a crash-and-recover, not a graceful bounce.
func (n *testNode) restart() {
	n.t.Helper()
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		n.t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.serveOn(ln)
}

// startCluster boots n serve nodes and a router over them. Probing is fast
// so eject/rejoin tests converge quickly; tests that never kill a node are
// unaffected.
func startCluster(t *testing.T, nNodes int, nodeOpts service.Options, tune func(*Options)) ([]*testNode, *Router, string) {
	t.Helper()
	nodes := make([]*testNode, nNodes)
	members := make([]Node, nNodes)
	for i := range nodes {
		nodes[i] = startNode(t, nodeOpts)
		members[i] = Node{Name: fmt.Sprintf("n%d", i), URL: nodes[i].url()}
	}
	opts := Options{
		Nodes:         members,
		ProbeInterval: 20 * time.Millisecond,
		EjectAfter:    2,
		RejoinAfter:   2,
	}
	if tune != nil {
		tune(&opts)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rt.Start(ctx)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return nodes, rt, ts.URL
}

func postRaw(t *testing.T, url string, body []byte) ([]byte, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

func getRaw(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// routerMetricsJSON decodes the slice of the router /metrics body the
// tests assert on.
type routerMetricsJSON struct {
	Router struct {
		Retries  int64            `json:"retries"`
		Replays  int64            `json:"replays"`
		Ejects   int64            `json:"ejects"`
		Rejoins  int64            `json:"rejoins"`
		PerNode  map[string]int64 `json:"perNode"`
		RespMemo *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"respMemo"`
	} `json:"router"`
	Nodes map[string]json.RawMessage `json:"nodes"`
}

func scrapeRouter(t *testing.T, routerURL string) routerMetricsJSON {
	t.Helper()
	body, status := getRaw(t, routerURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("router /metrics: status %d, body %s", status, body)
	}
	var m routerMetricsJSON
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("router /metrics: %v\n%s", err, body)
	}
	return m
}

func routerHealth(t *testing.T, routerURL string) HealthzResponse {
	t.Helper()
	body, status := getRaw(t, routerURL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("router /healthz: status %d, body %s", status, body)
	}
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	return h
}

// table2Instances draws one instance per Table 2 grid row per model, the
// same population the service acceptance tests evaluate.
func table2Instances(t *testing.T) []*model.Instance {
	t.Helper()
	var insts []*model.Instance
	for _, cm := range model.Models() {
		for rowIdx, row := range exper.Table2Rows(cm, 1, exper.DefaultMaxPathCount) {
			seed := int64(rowIdx*10_000 + 1)
			rng := rand.New(rand.NewSource(seed))
			inst, err := row.Specs[0].Instance(rng)
			if err != nil {
				t.Fatalf("row %q: %v", row.Label, err)
			}
			insts = append(insts, inst)
		}
	}
	return insts
}

// TestRouterBatchBytesIdenticalToSingleNode is the tentpole acceptance
// bar: a batch over the Table 2 grid — mixed inline and by-ID tasks —
// scattered across 3 nodes must come back byte-for-byte identical to the
// same request answered by one standalone node.
func TestRouterBatchBytesIdenticalToSingleNode(t *testing.T) {
	single := startNode(t, service.Options{})
	_, _, routerURL := startCluster(t, 3, service.Options{}, nil)

	insts := table2Instances(t)
	var tasks []service.BatchTask
	for i, inst := range insts {
		cm := model.Models()[i%len(model.Models())]
		if i%2 == 0 {
			tasks = append(tasks, service.BatchTask{Instance: inst, Model: cm.String()})
			continue
		}
		// By-ID halves: register on both serving paths (the content ID is
		// node-independent, so both registrations answer the same ID).
		regBody := mustJSON(t, service.InstanceRequest{Instance: inst})
		var reg service.InstanceResponse
		for _, base := range []string{single.url(), routerURL} {
			body, status := postRaw(t, base+"/v1/instances", regBody)
			if status != http.StatusOK {
				t.Fatalf("register on %s: status %d, body %s", base, status, body)
			}
			if err := json.Unmarshal(body, &reg); err != nil {
				t.Fatal(err)
			}
		}
		if want := store.ContentID(inst); reg.ID != want {
			t.Fatalf("registered ID %s, want content ID %s", reg.ID, want)
		}
		tasks = append(tasks, service.BatchTask{InstanceID: reg.ID, Model: cm.String()})
	}

	reqBody := mustJSON(t, service.BatchRequest{Tasks: tasks})
	wantBody, wantStatus := postRaw(t, single.url()+"/v1/batch", reqBody)
	gotBody, gotStatus := postRaw(t, routerURL+"/v1/batch", reqBody)
	if wantStatus != http.StatusOK || gotStatus != wantStatus {
		t.Fatalf("status: single %d, router %d (%s)", wantStatus, gotStatus, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("router batch differs from single node:\nrouter: %s\nsingle: %s", gotBody, wantBody)
	}

	// The scatter actually spread: the batch split into sub-requests for
	// more than one node (a small key population can leave one of three
	// nodes idle; all three busy would be a distribution claim the ring
	// tests make with 100k keys).
	m := scrapeRouter(t, routerURL)
	busy := 0
	for _, count := range m.Router.PerNode {
		if count > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("batch did not scatter: per-node proxied counts %v", m.Router.PerNode)
	}
}

// TestRouterSweepMatchesSingleNode scatters one sweep across 3 nodes and
// checks every deterministic field of every point against a single node's
// answer (the wall-clock fields PolyNs/TPNNs are scheduling noise on any
// topology, single node included).
func TestRouterSweepMatchesSingleNode(t *testing.T) {
	single := startNode(t, service.Options{})
	_, _, routerURL := startCluster(t, 3, service.Options{}, nil)

	req := mustJSON(t, service.SweepRequest{Seed: 7, Pairs: [][]int{{2, 3}, {3, 4}, {4, 5}, {2, 5}, {3, 5}, {5, 6}}})
	wantBody, wantStatus := postRaw(t, single.url()+"/v1/sweep", req)
	gotBody, gotStatus := postRaw(t, routerURL+"/v1/sweep", req)
	if wantStatus != http.StatusOK || gotStatus != wantStatus {
		t.Fatalf("status: single %d, router %d (%s)", wantStatus, gotStatus, gotBody)
	}
	var want, got service.SweepResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	for i := range want.Points {
		want.Points[i].PolyNs, want.Points[i].TPNNs = 0, 0
		got.Points[i].PolyNs, got.Points[i].TPNNs = 0, 0
	}
	wantNorm, gotNorm := mustJSON(t, want), mustJSON(t, got)
	if !bytes.Equal(wantNorm, gotNorm) {
		t.Fatalf("router sweep differs from single node on deterministic fields:\nrouter: %s\nsingle: %s", gotNorm, wantNorm)
	}
}

// TestRouterEvaluateMemoAndAffinity: repeat evaluate bodies are served
// from the router's response memo (no extra node round trip), and the
// by-ID form of a registered instance routes and answers identically to
// the inline form.
func TestRouterEvaluateMemoAndAffinity(t *testing.T) {
	_, _, routerURL := startCluster(t, 3, service.Options{}, nil)

	rng := rand.New(rand.NewSource(42))
	inst, err := exper.RandomTimedInstance(rng, []int{3, 4}, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	evalBody := mustJSON(t, service.EvaluateRequest{Instance: inst, Model: "overlap"})

	first, status := postRaw(t, routerURL+"/v1/evaluate", evalBody)
	if status != http.StatusOK {
		t.Fatalf("evaluate: status %d, body %s", status, first)
	}
	before := scrapeRouter(t, routerURL)
	second, status := postRaw(t, routerURL+"/v1/evaluate", evalBody)
	if status != http.StatusOK {
		t.Fatalf("repeat evaluate: status %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat evaluate changed bytes:\nfirst:  %s\nsecond: %s", first, second)
	}
	after := scrapeRouter(t, routerURL)
	if after.Router.RespMemo == nil || before.Router.RespMemo == nil {
		t.Fatal("router response memo missing from /metrics")
	}
	if after.Router.RespMemo.Hits <= before.Router.RespMemo.Hits {
		t.Fatalf("repeat evaluate did not hit the router memo: hits %d -> %d",
			before.Router.RespMemo.Hits, after.Router.RespMemo.Hits)
	}

	// By-ID answer matches the inline answer byte-for-byte (the service
	// guarantee, preserved through the router because both route to the same
	// home node).
	regBody, regStatus := postRaw(t, routerURL+"/v1/instances", mustJSON(t, service.InstanceRequest{Instance: inst}))
	if regStatus != http.StatusOK {
		t.Fatalf("register: status %d, body %s", regStatus, regBody)
	}
	var reg service.InstanceResponse
	if err := json.Unmarshal(regBody, &reg); err != nil {
		t.Fatal(err)
	}
	byID, status := postRaw(t, routerURL+"/v1/evaluate", mustJSON(t, service.EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}))
	if status != http.StatusOK {
		t.Fatalf("by-ID evaluate: status %d, body %s", status, byID)
	}
	if !bytes.Equal(byID, first) {
		t.Fatalf("by-ID evaluate differs from inline:\nby-ID:  %s\ninline: %s", byID, first)
	}
}

// TestRouterBatchErrorIndexRewrite: a failing task inside a scattered
// batch must surface with its global index and the node's own phrasing —
// identical to the single-node verdict.
func TestRouterBatchErrorIndexRewrite(t *testing.T) {
	single := startNode(t, service.Options{})
	_, _, routerURL := startCluster(t, 3, service.Options{}, nil)

	rng := rand.New(rand.NewSource(3))
	var tasks []service.BatchTask
	for i := 0; i < 5; i++ {
		inst, err := exper.RandomTimedInstance(rng, []int{2, 3}, 5, 15)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, service.BatchTask{Instance: inst, Model: "overlap"})
	}
	bogus := "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	tasks[3] = service.BatchTask{InstanceID: bogus, Model: "overlap"}

	reqBody := mustJSON(t, service.BatchRequest{Tasks: tasks})
	wantBody, wantStatus := postRaw(t, single.url()+"/v1/batch", reqBody)
	gotBody, gotStatus := postRaw(t, routerURL+"/v1/batch", reqBody)
	if wantStatus != http.StatusNotFound {
		t.Fatalf("single node: status %d, want 404 (%s)", wantStatus, wantBody)
	}
	if gotStatus != wantStatus || !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("router error verdict differs:\nrouter: %d %s\nsingle: %d %s", gotStatus, gotBody, wantStatus, wantBody)
	}
}

// TestRouterFailoverNodeKillMidRun kills a node partway through a stream
// of evaluations: every request must still answer 200 (successor failover
// while the prober converges on ejection), and the health view must
// degrade to exactly the surviving membership.
func TestRouterFailoverNodeKillMidRun(t *testing.T) {
	nodes, _, routerURL := startCluster(t, 3, service.Options{}, nil)

	rng := rand.New(rand.NewSource(11))
	const total, killAt = 60, 20
	for i := 0; i < total; i++ {
		if i == killAt {
			nodes[1].kill()
		}
		inst, err := exper.RandomTimedInstance(rng, []int{2, 3}, 5, 15)
		if err != nil {
			t.Fatal(err)
		}
		body, status := postRaw(t, routerURL+"/v1/evaluate", mustJSON(t, service.EvaluateRequest{Instance: inst, Model: "overlap"}))
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, status, body)
		}
	}

	waitFor(t, "node n1 ejected", func() bool {
		h := routerHealth(t, routerURL)
		return h.Status == "degraded" && len(h.RingNodes) == 2
	})
	h := routerHealth(t, routerURL)
	for _, rn := range h.RingNodes {
		if rn == "n1" {
			t.Fatalf("killed node still in ring: %v", h.RingNodes)
		}
	}
	m := scrapeRouter(t, routerURL)
	if m.Router.Ejects == 0 {
		t.Error("expected at least one eject after node kill")
	}
	if raw, ok := m.Nodes["n1"]; !ok || string(raw) != "null" {
		t.Errorf("dead node should scrape as null, got %s", raw)
	}
}

// TestRouterReplayAndRejoin is the full recovery story: the home node of a
// registered instance dies; by-ID requests fail over to a successor whose
// store is cold, and the router heals the 404 by replaying the cached
// registration. The node then restarts (cold store, same address), rejoins
// the ring, and by-ID requests to it are healed the same way.
func TestRouterReplayAndRejoin(t *testing.T) {
	nodes, _, routerURL := startCluster(t, 3, service.Options{}, nil)

	rng := rand.New(rand.NewSource(99))
	inst, err := exper.RandomTimedInstance(rng, []int{3, 5}, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	regBody, regStatus := postRaw(t, routerURL+"/v1/instances", mustJSON(t, service.InstanceRequest{Instance: inst}))
	if regStatus != http.StatusOK {
		t.Fatalf("register: status %d, body %s", regStatus, regBody)
	}
	var reg service.InstanceResponse
	if err := json.Unmarshal(regBody, &reg); err != nil {
		t.Fatal(err)
	}

	// Find the home node empirically: exactly one node holds the content.
	home := -1
	for i, n := range nodes {
		if _, status := getRaw(t, n.url()+"/v1/instances/"+reg.ID); status == http.StatusOK {
			if home >= 0 {
				t.Fatalf("instance resident on nodes %d and %d", home, i)
			}
			home = i
		}
	}
	if home < 0 {
		t.Fatal("registered instance resident on no node")
	}

	wantEval, status := postRaw(t, routerURL+"/v1/evaluate", mustJSON(t, service.EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}))
	if status != http.StatusOK {
		t.Fatalf("by-ID evaluate before kill: status %d, body %s", status, wantEval)
	}

	nodes[home].kill()
	waitFor(t, "home node ejected", func() bool {
		return len(routerHealth(t, routerURL).RingNodes) == 2
	})

	// The successor's store has never seen this ID; only replay can answer.
	// (The router memo would short-circuit the identical evaluate body, so
	// exercise the GET path, which is never memoized, plus a distinct
	// evaluate body.)
	before := scrapeRouter(t, routerURL)
	getBody, getStatus := getRaw(t, routerURL+"/v1/instances/"+reg.ID)
	if getStatus != http.StatusOK {
		t.Fatalf("by-ID GET after home kill: status %d, body %s", getStatus, getBody)
	}
	evalBody, evalStatus := postRaw(t, routerURL+"/v1/evaluate",
		mustJSON(t, service.EvaluateRequest{InstanceID: reg.ID, Model: "strict"}))
	if evalStatus != http.StatusOK {
		t.Fatalf("by-ID evaluate after home kill: status %d, body %s", evalStatus, evalBody)
	}
	after := scrapeRouter(t, routerURL)
	if after.Router.Replays <= before.Router.Replays {
		t.Fatalf("expected replay-on-miss after home kill: replays %d -> %d",
			before.Router.Replays, after.Router.Replays)
	}

	// Crash-recover the home node: same address, empty store. It must
	// rejoin the ring and, once it owns its keys again, replay heals its
	// cold store too.
	nodes[home].restart()
	waitFor(t, "home node rejoined", func() bool {
		h := routerHealth(t, routerURL)
		return h.Status == "ok" && len(h.RingNodes) == 3
	})
	m := scrapeRouter(t, routerURL)
	if m.Router.Rejoins == 0 {
		t.Error("expected a rejoin after restart")
	}
	gotEval, status := postRaw(t, routerURL+"/v1/evaluate", mustJSON(t, service.EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}))
	if status != http.StatusOK {
		t.Fatalf("by-ID evaluate after rejoin: status %d, body %s", status, gotEval)
	}
	if !bytes.Equal(gotEval, wantEval) {
		t.Fatalf("post-rejoin evaluate differs:\nafter:  %s\nbefore: %s", gotEval, wantEval)
	}
}

// TestRouterUnknownIDIsTruthful404: an ID the router never saw registered
// cannot be replayed — the node's 404 must pass through untouched.
func TestRouterUnknownIDIsTruthful404(t *testing.T) {
	_, _, routerURL := startCluster(t, 3, service.Options{}, nil)
	bogus := "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	body, status := postRaw(t, routerURL+"/v1/evaluate", mustJSON(t, service.EvaluateRequest{InstanceID: bogus, Model: "overlap"}))
	if status != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%s)", status, body)
	}
	var e struct {
		Error service.ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
		t.Fatalf("want node error body, got %s", body)
	}
	if e.Error.Code != service.CodeUnknownInstance {
		t.Fatalf("pass-through 404 code %q, want %q", e.Error.Code, service.CodeUnknownInstance)
	}
}

// TestRouterMetricsAggregatesNodes: the cluster scrape embeds every live
// node's own metrics document.
func TestRouterMetricsAggregatesNodes(t *testing.T) {
	_, _, routerURL := startCluster(t, 3, service.Options{}, nil)
	m := scrapeRouter(t, routerURL)
	if len(m.Nodes) != 3 {
		t.Fatalf("scrape covers %d nodes, want 3", len(m.Nodes))
	}
	for name, raw := range m.Nodes {
		var nm struct {
			UptimeSeconds *float64 `json:"uptimeSeconds"`
		}
		if err := json.Unmarshal(raw, &nm); err != nil || nm.UptimeSeconds == nil {
			t.Errorf("node %s metrics not embedded: %v (%s)", name, err, raw)
		}
	}
}

// TestRouterOptionsValidation pins the constructor's verdicts.
func TestRouterOptionsValidation(t *testing.T) {
	if _, err := NewRouter(Options{}); err == nil {
		t.Error("no nodes: want error")
	}
	if _, err := NewRouter(Options{Nodes: []Node{{Name: "a"}}}); err == nil {
		t.Error("node without URL: want error")
	}
	if _, err := NewRouter(Options{Nodes: []Node{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("duplicate name: want error")
	}
}
