package cluster

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// routerMetrics is the router's own observability state — what the cluster
// adds on top of the nodes: failover retries, registration replays,
// eject/rejoin transitions and the per-node forwarding distribution the
// loadgen's skew report reads. Like the service's metrics, the expvar
// types are used for atomicity and JSON rendering but never published
// globally (tests host several routers per process).
type routerMetrics struct {
	start    time.Time
	requests *expvar.Map // per-endpoint request counts
	errors   *expvar.Map // per-endpoint error counts
	retries  expvar.Int  // failover hops past a key's home node
	replays  expvar.Int  // 404s healed by re-registering from the replay cache
	ejects   expvar.Int  // nodes removed from the ring by the health prober
	rejoins  expvar.Int  // nodes restored to the ring
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		start:    time.Now(),
		requests: new(expvar.Map).Init(),
		errors:   new(expvar.Map).Init(),
	}
}

// HealthzNode is one member's health as /healthz reports it.
type HealthzNode struct {
	Name   string `json:"name"`
	URL    string `json:"url"`
	Weight int    `json:"weight"`
	// Alive is ring membership: false means the prober has ejected the node
	// and its keys are being served by ring successors.
	Alive bool `json:"alive"`
	// ConsecutiveFailures is the current failure streak (zero when healthy).
	ConsecutiveFailures int `json:"consecutiveFailures,omitempty"`
}

// HealthzResponse is the router's /healthz body: overall status plus the
// ring membership, typed so loadgen and tests decode it without guessing
// at key names (the same courtesy service.HealthzResponse extends).
type HealthzResponse struct {
	// Status is "ok" (all nodes in the ring), "degraded" (some ejected) or
	// "down" (ring empty — every request answers 503).
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptimeSeconds"`
	Vnodes        int           `json:"vnodes"`
	Nodes         []HealthzNode `json:"nodes"`
	// RingNodes is the current ring membership (sorted) — the names requests
	// actually route to right now.
	RingNodes []string `json:"ringNodes"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "healthz requires GET"})
		return
	}
	rt.mu.RLock()
	resp := HealthzResponse{
		UptimeSeconds: time.Since(rt.met.start).Seconds(),
		Vnodes:        rt.ring.Vnodes(),
		RingNodes:     rt.ring.Nodes(),
	}
	alive := 0
	for _, ns := range rt.nodes {
		if ns.alive {
			alive++
		}
		resp.Nodes = append(resp.Nodes, HealthzNode{
			Name:                ns.name,
			URL:                 ns.base,
			Weight:              ns.weight,
			Alive:               ns.alive,
			ConsecutiveFailures: ns.consecFails,
		})
	}
	rt.mu.RUnlock()
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Name < resp.Nodes[j].Name })
	switch {
	case alive == len(resp.Nodes):
		resp.Status = "ok"
	case alive > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "down"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the cluster-wide metrics object: the router's own
// counters under "router" (retries, replays, eject/rejoin transitions,
// per-node forwarding counts, both cache snapshots) and every node's raw
// /metrics body under "nodes" — scraped concurrently, null for a node that
// did not answer — so one scrape sees the whole cluster.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "metrics requires GET"})
		return
	}
	names := make([]string, 0, len(rt.nodes))
	for name := range rt.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	// Scrape every node in parallel on a short leash: an ejected node must
	// not stall the cluster scrape for the full request timeout.
	scrapeTimeout := rt.opts.RequestTimeout
	if scrapeTimeout > 5*time.Second {
		scrapeTimeout = 5 * time.Second
	}
	bodies := make([][]byte, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ns.base+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				drain(resp)
				return
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return
			}
			bodies[i] = body
		}(i, rt.nodes[name])
	}
	wg.Wait()

	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "\"uptimeSeconds\": %.1f,\n", time.Since(rt.met.start).Seconds())
	b.WriteString("\"router\": {\n")
	fmt.Fprintf(&b, "\"requests\": %s,\n", rt.met.requests.String())
	fmt.Fprintf(&b, "\"errors\": %s,\n", rt.met.errors.String())
	fmt.Fprintf(&b, "\"retries\": %s,\n", rt.met.retries.String())
	fmt.Fprintf(&b, "\"replays\": %s,\n", rt.met.replays.String())
	fmt.Fprintf(&b, "\"ejects\": %s,\n", rt.met.ejects.String())
	fmt.Fprintf(&b, "\"rejoins\": %s,\n", rt.met.rejoins.String())
	b.WriteString("\"perNode\": {")
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", name, rt.nodes[name].proxied.Load())
	}
	b.WriteString("},\n")
	rm := rt.replay.metrics()
	fmt.Fprintf(&b, "\"replayCache\": {\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"capacity\":%d},\n",
		rm.Hits, rm.Misses, rm.Evictions, rm.Entries, rm.Capacity)
	b.WriteString("\"respMemo\": ")
	if rt.resp != nil {
		mm := rt.resp.metrics()
		fmt.Fprintf(&b, "{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"capacity\":%d}",
			mm.Hits, mm.Misses, mm.Evictions, mm.Entries, mm.Capacity)
	} else {
		b.WriteString("null")
	}
	b.WriteString("\n},\n")
	b.WriteString("\"nodes\": {")
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n%q: ", name)
		if bodies[i] == nil {
			b.WriteString("null")
		} else {
			b.Write(bodies[i])
		}
	}
	b.WriteString("}\n}\n")
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(b.String()))
}
