package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/service"
)

// jobPoll polls a job's status URL until it reports a terminal state.
func jobPoll(t *testing.T, base, id string) service.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		body, status := getRaw(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d body %s", id, status, body)
		}
		var j service.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("poll %s: %v (body %s)", id, err, body)
		}
		switch j.State {
		case "done", "failed", "canceled":
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll %s: stuck in %q", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterJobsByteIdenticalToSingleNode is the job-routing acceptance
// check: a submission through the router mints the same deterministic job
// ID a standalone node mints for the same body, and submit, poll and result
// answers are byte-identical between the two fronts (status polls compared
// at the terminal state, which is the deterministic one).
func TestRouterJobsByteIdenticalToSingleNode(t *testing.T) {
	_, _, base := startCluster(t, 3, service.Options{}, nil)
	solo := startNode(t, service.Options{})

	pipe, err := pipeline.New([]int64{100, 200, 100}, []int64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	body := mustJSON(t, service.JobSubmitRequest{Kind: "search", Search: &service.SearchRequest{
		Pipeline: pipe, Platform: platform.Uniform(5, 100, 100),
		Model: "overlap", Algo: "bnb", Seed: 7,
	}})

	viaRouter, status := postRaw(t, base+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("router submit: status %d body %s", status, viaRouter)
	}
	direct, status := postRaw(t, solo.url()+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("direct submit: status %d body %s", status, direct)
	}
	if !bytes.Equal(viaRouter, direct) {
		t.Fatalf("submit answers differ:\nrouter: %s\ndirect: %s", viaRouter, direct)
	}
	var j service.Job
	if err := json.Unmarshal(viaRouter, &j); err != nil {
		t.Fatal(err)
	}
	if want := service.JobKeyPrefix(body) + "-1"; j.ID != want {
		t.Fatalf("router-fronted job ID %q, want %q", j.ID, want)
	}

	routed := jobPoll(t, base, j.ID)
	soloFin := jobPoll(t, solo.url(), j.ID)
	if !bytes.Equal(mustJSON(t, routed), mustJSON(t, soloFin)) {
		t.Fatalf("terminal status answers differ:\nrouter: %+v\ndirect: %+v", routed, soloFin)
	}

	resRouted, status := getRaw(t, base+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("router result: status %d body %s", status, resRouted)
	}
	resDirect, status := getRaw(t, solo.url()+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("direct result: status %d body %s", status, resDirect)
	}
	if !bytes.Equal(resRouted, resDirect) {
		t.Fatalf("results differ:\nrouter: %s\ndirect: %s", resRouted, resDirect)
	}

	// The router-fronted listing finds the job (fan-out merge).
	listBody, status := getRaw(t, base+"/v1/jobs?kind=search")
	if status != http.StatusOK {
		t.Fatalf("router list: status %d body %s", status, listBody)
	}
	var list service.JobListResponse
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lj := range list.Jobs {
		if lj.ID == j.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("router listing misses %s: %s", j.ID, listBody)
	}
}

// TestRouterJobSubmitReplaysDocRefs: a job submission referencing
// registered documents must succeed even when the body-prefix home node is
// not the document's home — the router replays the registrations on miss.
func TestRouterJobSubmitReplaysDocRefs(t *testing.T) {
	_, _, base := startCluster(t, 3, service.Options{}, nil)

	pipe, err := pipeline.New([]int64{100, 200, 100}, []int64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.Uniform(4, 100, 100)
	var pipeReg, platReg service.InstanceResponse
	regBody, status := postRaw(t, base+"/v1/instances", mustJSON(t, service.InstanceRequest{Pipeline: pipe}))
	if status != http.StatusOK {
		t.Fatalf("pipeline registration: status %d body %s", status, regBody)
	}
	if err := json.Unmarshal(regBody, &pipeReg); err != nil {
		t.Fatal(err)
	}
	regBody, status = postRaw(t, base+"/v1/instances", mustJSON(t, service.InstanceRequest{Platform: plat}))
	if status != http.StatusOK {
		t.Fatalf("platform registration: status %d body %s", status, regBody)
	}
	if err := json.Unmarshal(regBody, &platReg); err != nil {
		t.Fatal(err)
	}

	// Vary the seed to spread submissions across home nodes: at 3 nodes,
	// several of these bodies hash to nodes that never saw the registration
	// and must be healed by replay.
	for seed := int64(1); seed <= 6; seed++ {
		body := mustJSON(t, service.JobSubmitRequest{Kind: "search", Search: &service.SearchRequest{
			PipelineID: pipeReg.ID, PlatformID: platReg.ID,
			Model: "overlap", Algo: "greedy", Seed: seed,
		}})
		resp, status := postRaw(t, base+"/v1/jobs", body)
		if status != http.StatusAccepted {
			t.Fatalf("seed %d: status %d body %s", seed, status, resp)
		}
		var j service.Job
		if err := json.Unmarshal(resp, &j); err != nil {
			t.Fatal(err)
		}
		if fin := jobPoll(t, base, j.ID); fin.State != "done" {
			t.Fatalf("seed %d: job %s finished %q (error %+v)", seed, j.ID, fin.State, fin.Error)
		}
	}

	// The registered pipeline itself resolves through the router by ID.
	lookup, status := getRaw(t, base+"/v1/instances/"+pipeReg.ID)
	if status != http.StatusOK || !strings.Contains(string(lookup), `"kind":"pipeline"`) {
		t.Fatalf("pipeline lookup: status %d body %s", status, lookup)
	}
}

// TestRouterSyncJobIDRoutesByFanout: a synchronous request mints a
// kind-prefixed job ID ("search-1") on whichever node served it — a prefix
// that names no home node. The router must still answer item routes for it
// (status poll and result fetch), byte-identically to asking the owning
// node directly, and keep honest 404s for IDs no node minted.
func TestRouterSyncJobIDRoutesByFanout(t *testing.T) {
	nodes, _, base := startCluster(t, 3, service.Options{}, nil)

	pipe, err := pipeline.New([]int64{100, 200, 100}, []int64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	body := mustJSON(t, service.SearchRequest{
		Pipeline: pipe, Platform: platform.Uniform(5, 100, 100),
		Model: "overlap", Algo: "greedy",
	})
	if resp, status := postRaw(t, base+"/v1/search", body); status != http.StatusOK {
		t.Fatalf("sync search: status %d body %s", status, resp)
	}

	// The router listing (a fan-out merge) surfaces the sync-born ID.
	listBody, status := getRaw(t, base+"/v1/jobs?kind=search")
	if status != http.StatusOK {
		t.Fatalf("list: status %d body %s", status, listBody)
	}
	var list service.JobListResponse
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	id := ""
	for _, lj := range list.Jobs {
		if strings.HasPrefix(lj.ID, "search-") {
			id = lj.ID
		}
	}
	if id == "" {
		t.Fatalf("no sync-born job in router listing: %s", listBody)
	}

	// Exactly one node minted the ID; its direct answers are the reference.
	var wantStatusBody, wantResultBody []byte
	owners := 0
	for _, n := range nodes {
		if b, s := getRaw(t, n.url()+"/v1/jobs/"+id); s == http.StatusOK {
			owners++
			wantStatusBody = b
			if rb, rs := getRaw(t, n.url()+"/v1/jobs/"+id+"/result"); rs == http.StatusOK {
				wantResultBody = rb
			} else {
				t.Fatalf("owner result fetch: status %d body %s", rs, rb)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("sync job %s resident on %d nodes, want exactly 1", id, owners)
	}

	gotStatusBody, status := getRaw(t, base+"/v1/jobs/"+id)
	if status != http.StatusOK {
		t.Fatalf("router poll of %s: status %d body %s", id, status, gotStatusBody)
	}
	if !bytes.Equal(gotStatusBody, wantStatusBody) {
		t.Fatalf("router poll differs from owner:\nrouter: %s\nowner:  %s", gotStatusBody, wantStatusBody)
	}
	gotResultBody, status := getRaw(t, base+"/v1/jobs/"+id+"/result")
	if status != http.StatusOK {
		t.Fatalf("router result of %s: status %d body %s", id, status, gotResultBody)
	}
	if !bytes.Equal(gotResultBody, wantResultBody) {
		t.Fatalf("router result differs from owner:\nrouter: %s\nowner:  %s", gotResultBody, wantResultBody)
	}

	// An ID no node minted stays a truthful 404 through the fan-out.
	if b, s := getRaw(t, base+"/v1/jobs/search-999"); s != http.StatusNotFound {
		t.Fatalf("unknown sync ID: status %d body %s", s, b)
	}
}

// TestRouterJobCancelRoutesByPrefix: DELETE through the router reaches the
// node that owns the job and answers its canceled status.
func TestRouterJobCancelRoutesByPrefix(t *testing.T) {
	// One solver worker per node and patient probes: the point here is
	// routing the cancel, and the deliberately huge search must not peg
	// every core and trick the 20 ms test probes into ejecting the cluster.
	_, _, base := startCluster(t, 3, service.Options{Workers: 1}, func(o *Options) {
		o.ProbeInterval = 200 * time.Millisecond
		o.ProbeTimeout = 5 * time.Second
		o.EjectAfter = 100
	})
	// A search too large to finish promptly (14 stages on 56 processors),
	// so the cancel verdict — not a done race — is what comes back.
	work := make([]int64, 14)
	files := make([]int64, 13)
	for i := range work {
		work[i] = int64(100 + 37*i)
	}
	for i := range files {
		files[i] = int64(40 + 11*i)
	}
	pipe, err := pipeline.New(work, files)
	if err != nil {
		t.Fatal(err)
	}
	body := mustJSON(t, service.JobSubmitRequest{Kind: "search", Search: &service.SearchRequest{
		Pipeline: pipe, Platform: platform.Uniform(56, 100, 100),
		Model: "overlap", Algo: "bnb",
	}})
	resp, status := postRaw(t, base+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, resp)
	}
	var j service.Job
	if err := json.Unmarshal(resp, &j); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+j.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel via router: status %d body %s", dresp.StatusCode, dbody)
	}
	if fin := jobPoll(t, base, j.ID); fin.State != "canceled" {
		t.Fatalf("state after routed cancel %q, want canceled", fin.State)
	}
}
