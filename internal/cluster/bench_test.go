package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/exper"
	"repro/internal/service"
)

// BenchmarkRouterHitPath measures what the cluster layer costs on the
// workload that dominates steady state: a repeat by-ID /v1/evaluate that
// is a pure cache hit. Both arms go over real HTTP with a keep-alive
// client so the comparison is transport-for-transport:
//
//   - direct: one serve node, the request hits its response-bytes memo.
//   - router: a 3-node cluster behind the router; the repeat body hits the
//     router's own response memo — no node round trip at all.
//
// The router/direct ns-per-op ratio is gated at <= 2x in
// scripts/benchjson.awk (BENCH_8): the cluster layer may cost at most one
// extra hop's worth on the hit path, and the memo keeps it under that.
func BenchmarkRouterHitPath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst, err := exper.RandomTimedInstance(rng, []int{8, 8}, 5, 15)
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{}

	post := func(url string, payload []byte) ([]byte, int) {
		resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			b.Fatal(err)
		}
		return body, resp.StatusCode
	}

	marshal := func(v any) []byte {
		p, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	regPayload := marshal(service.InstanceRequest{Instance: inst})

	// Direct arm: one node.
	node := httptest.NewServer(service.NewServer(service.Options{}).Handler())
	defer node.Close()

	// Router arm: three nodes behind a router (no probers — the ring is
	// static for the benchmark's lifetime).
	var members []Node
	var backends []*httptest.Server
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(service.NewServer(service.Options{}).Handler())
		backends = append(backends, ts)
		members = append(members, Node{URL: ts.URL})
	}
	defer func() {
		for _, ts := range backends {
			ts.Close()
		}
	}()
	rt, err := NewRouter(Options{Nodes: members})
	if err != nil {
		b.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	for _, arm := range []struct {
		name string
		base string
	}{
		{"direct", node.URL},
		{"router", router.URL},
	} {
		if body, status := post(arm.base+"/v1/instances", regPayload); status != http.StatusOK {
			b.Fatalf("%s register: status %d, body %s", arm.name, status, body)
		}
		var reg service.InstanceResponse
		{
			body, _ := post(arm.base+"/v1/instances", regPayload)
			if err := json.Unmarshal(body, &reg); err != nil {
				b.Fatal(err)
			}
		}
		payload := marshal(service.EvaluateRequest{InstanceID: reg.ID, Model: "overlap"})
		// Warm every cache tier: timed iterations are pure hits.
		if body, status := post(arm.base+"/v1/evaluate", payload); status != http.StatusOK {
			b.Fatalf("%s warm-up: status %d, body %s", arm.name, status, body)
		}
		b.Run(arm.name, func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, status := post(arm.base+"/v1/evaluate", payload); status != http.StatusOK {
					b.Fatalf("iteration %d: status %d", i, status)
				}
			}
		})
	}
}
