package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/jobs"
	"repro/internal/service"
)

// ---- /v1/jobs ----
//
// Job routing rides the same determinism the job manager provides: an async
// job's ID is "<prefix>-<seq>" where the prefix is the SHA-256-derived hash
// of the submission body (service.JobKeyPrefix). The router shards a
// submission by that prefix, so every submission of a given body lands on
// one home node — which therefore mints exactly the IDs a single node
// would — and every poll, result fetch or cancel for the minted ID routes
// by the ID's prefix back to that node. Listing is the one fan-out: every
// alive node reports its jobs and the router merges them sorted by ID.

// handleJobs serves the collection route: POST submits, GET lists.
func (rt *Router) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		rt.handleJobSubmit(w, r)
	case http.MethodGet:
		rt.handleJobList(w, r)
	default:
		rt.met.requests.Add("jobsSubmit", 1)
		rt.fail(w, "jobsSubmit", http.StatusMethodNotAllowed, "/v1/jobs requires POST (submit) or GET (list)")
	}
}

// handleJobSubmit forwards a submission to the body-prefix home node. The
// body is parsed only to collect by-ID references for replay-on-miss (a
// cold home node must not 404 a sweep over registered instances);
// validation verdicts stay with the node.
func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	const name = "jobsSubmit"
	rt.met.requests.Add(name, 1)
	body, err := rt.readBody(w, r)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	var req service.JobSubmitRequest
	if err := unmarshalStrict(body, &req); err != nil {
		rt.failErr(w, name, err)
		return
	}
	var ids []string
	if req.Search != nil {
		if req.Search.PipelineID != "" {
			ids = append(ids, req.Search.PipelineID)
		}
		if req.Search.PlatformID != "" {
			ids = append(ids, req.Search.PlatformID)
		}
	}
	if req.Sweep != nil {
		ids = append(ids, req.Sweep.InstanceIDs...)
	}
	res, err := rt.forward(r.Context(), service.JobKeyPrefix(body), http.MethodPost, "/v1/jobs", body, ids)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	rt.passthrough(w, name, res)
}

// handleJobList fans the listing out to every alive node and merges the
// answers sorted by job ID — the same deterministic order a node's own
// listing uses. Filters are validated here with the node's phrasing (a
// fan-out has no single node to defer to) and forwarded verbatim.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	const name = "jobsList"
	rt.met.requests.Add(name, 1)
	q := r.URL.Query()
	switch kind := q.Get("kind"); kind {
	case "", "search", "sweep":
	default:
		rt.fail(w, name, http.StatusBadRequest, fmt.Sprintf("unknown job kind %q (want \"search\" or \"sweep\")", kind))
		return
	}
	if v := q.Get("state"); v != "" {
		if _, err := jobs.ParseState(v); err != nil {
			rt.fail(w, name, http.StatusBadRequest, err.Error())
			return
		}
	}
	path := "/v1/jobs"
	if raw := r.URL.RawQuery; raw != "" {
		path += "?" + raw
	}
	rt.mu.RLock()
	var alive []string
	for _, ns := range rt.nodes {
		if ns.alive {
			alive = append(alive, ns.name)
		}
	}
	rt.mu.RUnlock()
	if len(alive) == 0 {
		rt.fail(w, name, errNoNodes.status, errNoNodes.msg)
		return
	}
	sort.Strings(alive)
	type subResult struct {
		res proxyResult
		err error
	}
	results := make([]subResult, len(alive))
	var wg sync.WaitGroup
	for i, node := range alive {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			res, err := rt.attempt(r.Context(), node, http.MethodGet, path, nil)
			results[i] = subResult{res: res, err: err}
		}(i, node)
	}
	wg.Wait()
	merged := service.JobListResponse{Jobs: []service.Job{}}
	for i, sr := range results {
		if sr.err != nil {
			rt.recordFailure(rt.nodes[alive[i]])
			rt.fail(w, name, http.StatusBadGateway,
				fmt.Sprintf("listing jobs on node %s: %v", alive[i], sr.err))
			return
		}
		if sr.res.status != http.StatusOK {
			info := errorInfoOf(sr.res.body)
			rt.failCode(w, name, http.StatusBadGateway, service.DefaultErrorCode(http.StatusBadGateway),
				fmt.Sprintf("listing jobs on node %s: %s", alive[i], info.Message))
			return
		}
		var sub service.JobListResponse
		if err := unmarshalStrict(sr.res.body, &sub); err != nil {
			rt.fail(w, name, http.StatusBadGateway,
				fmt.Sprintf("node %s answered a malformed job listing", alive[i]))
			return
		}
		merged.Jobs = append(merged.Jobs, sub.Jobs...)
	}
	sort.Slice(merged.Jobs, func(i, k int) bool { return merged.Jobs[i].ID < merged.Jobs[k].ID })
	out, err := encodeBody(merged)
	if err != nil {
		rt.fail(w, name, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	writeRaw(w, http.StatusOK, out)
}

// handleJobByID routes the item routes — status poll, result fetch,
// cancel — by the job ID's prefix (everything before the last dash), which
// is exactly the key its submission was routed by, so polls land on the
// node that minted the ID.
func (rt *Router) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, hasSub := strings.Cut(rest, "/")
	if id == "" || (hasSub && sub != "result") || strings.Contains(sub, "/") {
		rt.met.requests.Add("jobsGet", 1)
		rt.fail(w, "jobsGet", http.StatusBadRequest,
			fmt.Sprintf("bad job path %q (want /v1/jobs/{id} or /v1/jobs/{id}/result)", r.URL.Path))
		return
	}
	name := "jobsGet"
	switch {
	case hasSub:
		name = "jobsResult"
	case r.Method == http.MethodDelete:
		name = "jobsCancel"
	}
	rt.met.requests.Add(name, 1)
	switch name {
	case "jobsResult":
		if r.Method != http.MethodGet {
			rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/jobs/{id}/result requires GET")
			return
		}
	case "jobsGet":
		if r.Method != http.MethodGet {
			rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/jobs/{id} requires GET (DELETE cancels)")
			return
		}
	}
	key := id
	if i := strings.LastIndexByte(id, '-'); i > 0 {
		key = id[:i]
	}
	if !hashPrefix(key) {
		// Sync-born jobs carry their kind name as prefix ("search-3",
		// "sweep-1"), minted independently by whichever node served the
		// synchronous request — the prefix names no home node, and hashing
		// it would route every such poll to one arbitrary node. Look the ID
		// up on every alive node instead.
		rt.jobFanoutByID(w, r, name)
		return
	}
	res, err := rt.forward(r.Context(), key, r.Method, r.URL.Path, nil, nil)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	rt.passthrough(w, name, res)
}

// hashPrefix reports whether a job-ID prefix is a body-hash shard key —
// service.JobKeyPrefix output, 16 lowercase hex characters. Only those
// prefixes identify the submission's home node.
func hashPrefix(p string) bool {
	if len(p) != 16 {
		return false
	}
	for i := 0; i < len(p); i++ {
		c := p[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// jobFanoutByID resolves a job item route whose ID prefix names no home
// node: ask every alive node in deterministic (sorted) order and relay the
// first conclusive answer. A 404 means "not mine" and the scan continues; a
// retriable status is kept as a fallback verdict in case a better answer
// never appears (the job's owner draining beats an unknown-ID 404 for
// truthfulness); transport errors burn health streaks exactly as forward's
// do.
func (rt *Router) jobFanoutByID(w http.ResponseWriter, r *http.Request, name string) {
	rt.mu.RLock()
	var alive []string
	for _, ns := range rt.nodes {
		if ns.alive {
			alive = append(alive, ns.name)
		}
	}
	rt.mu.RUnlock()
	if len(alive) == 0 {
		rt.fail(w, name, errNoNodes.status, errNoNodes.msg)
		return
	}
	sort.Strings(alive)
	var notFound, soft *proxyResult
	var lastErr error
	for _, node := range alive {
		res, err := rt.attempt(r.Context(), node, r.Method, r.URL.Path, nil)
		if err != nil {
			if r.Context().Err() != nil {
				rt.failErr(w, name, r.Context().Err())
				return
			}
			rt.recordFailure(rt.nodes[node])
			lastErr = err
			continue
		}
		switch {
		case res.status == http.StatusNotFound:
			if notFound == nil {
				notFound = &res
			}
		case retriable(res.status):
			soft = &res
		default:
			rt.passthrough(w, name, res)
			return
		}
	}
	switch {
	case soft != nil:
		rt.passthrough(w, name, *soft)
	case notFound != nil:
		rt.passthrough(w, name, *notFound)
	default:
		rt.fail(w, name, http.StatusBadGateway,
			fmt.Sprintf("no reachable node could answer (tried %d): %v", len(alive), lastErr))
	}
}
