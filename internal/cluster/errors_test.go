package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/service"
)

// TestRouterRequestValidation: every malformed request the router rejects
// itself (before any node round trip) answers the same status and phrasing
// a single serve node would, so clients cannot tell the front end from a
// node on the error surface either.
func TestRouterRequestValidation(t *testing.T) {
	_, _, base := startCluster(t, 2, service.Options{}, func(o *Options) {
		o.MaxBodyBytes = 512
	})

	post := func(path, body string) ([]byte, int) {
		t.Helper()
		return postRaw(t, base+path, []byte(body))
	}
	okInst := `{"comp":[["4","4"],["3"]],"comm":[[["2"],["2"]]]}`

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		want   string
	}{
		{"evaluate bad JSON", "/v1/evaluate", "{", http.StatusBadRequest, "bad request body"},
		{"evaluate trailing data", "/v1/evaluate", `{"model":"overlap"} trailing`, http.StatusBadRequest, "trailing data"},
		{"evaluate both forms", "/v1/evaluate",
			fmt.Sprintf(`{"model":"overlap","instance":%s,"instanceId":"%s"}`, okInst, strings.Repeat("0", 64)),
			http.StatusBadRequest, "mutually exclusive"},
		{"evaluate missing instance", "/v1/evaluate", `{"model":"overlap"}`, http.StatusBadRequest, `missing "instance"`},
		{"evaluate oversized body", "/v1/evaluate",
			`{"pad":"` + strings.Repeat("x", 1024) + `"}`, http.StatusRequestEntityTooLarge, "request body too large"},
		{"batch bad JSON", "/v1/batch", "[", http.StatusBadRequest, "bad request body"},
		{"batch empty tasks", "/v1/batch", `{"tasks":[]}`, http.StatusBadRequest, `empty "tasks"`},
		{"batch bad backend", "/v1/batch",
			fmt.Sprintf(`{"backend":"nope","tasks":[{"model":"overlap","instance":%s}]}`, okInst),
			http.StatusBadRequest, "unknown backend"},
		{"batch bad model indexed", "/v1/batch",
			fmt.Sprintf(`{"tasks":[{"model":"overlap","instance":%s},{"model":"nope","instance":%s}]}`, okInst, okInst),
			http.StatusBadRequest, "task 1:"},
		{"batch both forms indexed", "/v1/batch",
			fmt.Sprintf(`{"tasks":[{"model":"overlap","instance":%s,"instanceId":"%s"}]}`, okInst, strings.Repeat("0", 64)),
			http.StatusBadRequest, `task 0: "instance" and "instanceId" are mutually exclusive`},
		{"batch missing instance indexed", "/v1/batch",
			`{"tasks":[{"model":"overlap"}]}`, http.StatusBadRequest, `task 0: missing "instance"`},
		{"sweep bad JSON", "/v1/sweep", "{", http.StatusBadRequest, "bad request body"},
		{"sweep bad backend", "/v1/sweep", `{"backend":"nope"}`, http.StatusBadRequest, "unknown backend"},
		{"instances bad JSON", "/v1/instances", "{", http.StatusBadRequest, "bad request body"},
		{"instances missing instance", "/v1/instances", `{}`, http.StatusBadRequest, `missing "instance"`},
		{"instances two kinds", "/v1/instances",
			`{"pipeline":{"stages":[{"work":5}],"fileSizes":[]},"platform":{"speeds":[1],"bandwidths":[[0]]}}`,
			http.StatusBadRequest, `"instance", "pipeline" and "platform" are mutually exclusive`},
		{"jobs bad JSON", "/v1/jobs", "{", http.StatusBadRequest, "bad request body"},
		{"jobs trailing data", "/v1/jobs", `{"kind":"sweep","sweep":{}} x`, http.StatusBadRequest, "trailing data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body, status := post(c.path, c.body)
			// Match on the decoded error message: the raw body JSON-escapes
			// any quotes the phrasing contains.
			var e struct {
				Error service.ErrorInfo `json:"error"`
			}
			_ = json.Unmarshal(body, &e)
			if status != c.status || !strings.Contains(e.Error.Message, c.want) {
				t.Fatalf("%s: status %d body %s, want %d containing %q", c.path, status, body, c.status, c.want)
			}
			if e.Error.Code != service.DefaultErrorCode(c.status) {
				t.Fatalf("%s: code %q, want the status default %q", c.path, e.Error.Code, service.DefaultErrorCode(c.status))
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		for _, path := range []string{"/v1/evaluate", "/v1/batch", "/v1/sweep", "/v1/search", "/v1/instances"} {
			body, status := getRaw(t, base+path)
			if status != http.StatusMethodNotAllowed {
				t.Fatalf("GET %s: status %d body %s, want 405", path, status, body)
			}
		}
		resp, err := http.Post(base+"/v1/instances/"+strings.Repeat("0", 64), "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST by-ID lookup: status %d, want 405", resp.StatusCode)
		}
	})

	t.Run("bad instance path", func(t *testing.T) {
		body, status := getRaw(t, base+"/v1/instances/a/b")
		if status != http.StatusBadRequest || !strings.Contains(string(body), "bad instance path") {
			t.Fatalf("status %d body %s", status, body)
		}
	})

	t.Run("job routes", func(t *testing.T) {
		if body, status := getRaw(t, base+"/v1/jobs/a/b/c"); status != http.StatusBadRequest ||
			!strings.Contains(string(body), "bad job path") {
			t.Fatalf("bad job path: status %d body %s", status, body)
		}
		if body, status := getRaw(t, base+"/v1/jobs?kind=polka"); status != http.StatusBadRequest ||
			!strings.Contains(string(body), "unknown job kind") {
			t.Fatalf("bad kind filter: status %d body %s", status, body)
		}
		if body, status := getRaw(t, base+"/v1/jobs?state=paused"); status != http.StatusBadRequest ||
			!strings.Contains(string(body), "unknown state") {
			t.Fatalf("bad state filter: status %d body %s", status, body)
		}
		req, err := http.NewRequest(http.MethodPut, base+"/v1/jobs", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("PUT /v1/jobs: status %d, want 405", resp.StatusCode)
		}
		// Unknown job ID routes to a node and passes its 404 through with
		// the node's code — error-surface parity on the job routes too.
		body, status := getRaw(t, base+"/v1/jobs/feedface00000000-1")
		if status != http.StatusNotFound {
			t.Fatalf("unknown job via router: status %d body %s", status, body)
		}
		var e struct {
			Error service.ErrorInfo `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "unknown_job" {
			t.Fatalf("unknown job envelope %s (decode err %v)", body, err)
		}
	})
}

// TestRouterSearchProxiesOpaque: /v1/search has no shardable key, so the
// whole body routes by its own bytes — and the answer is a node's answer,
// verbatim.
func TestRouterSearchProxiesOpaque(t *testing.T) {
	nodes, _, base := startCluster(t, 3, service.Options{}, nil)
	pipe, err := pipeline.New([]int64{100, 200, 100}, []int64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	req := mustJSON(t, service.SearchRequest{
		Pipeline: pipe, Platform: platform.Uniform(3, 100, 100),
		Model: "overlap", Algo: "greedy", Seed: 3,
	})
	viaRouter, status := postRaw(t, base+"/v1/search", req)
	if status != http.StatusOK {
		t.Fatalf("search via router: status %d body %s", status, viaRouter)
	}
	direct, status := postRaw(t, nodes[0].url()+"/v1/search", req)
	if status != http.StatusOK {
		t.Fatalf("search direct: status %d body %s", status, direct)
	}
	if string(viaRouter) != string(direct) {
		t.Fatalf("routed search differs from direct:\n%s\nvs\n%s", viaRouter, direct)
	}
}

// TestRouterSweepOnlySubsetForwardsWhole: a sweep that already carries
// "only" (another router's scatter, or a hand-slicing client) must forward
// as-is rather than re-scatter, and answer exactly what a node answers.
func TestRouterSweepOnlySubsetForwardsWhole(t *testing.T) {
	nodes, _, base := startCluster(t, 2, service.Options{}, nil)
	req := `{"seed":5,"pairs":[[1,1],[2,1],[1,2]],"only":[1]}`
	viaRouter, status := postRaw(t, base+"/v1/sweep", []byte(req))
	if status != http.StatusOK {
		t.Fatalf("subset sweep via router: status %d body %s", status, viaRouter)
	}
	direct, status := postRaw(t, nodes[0].url()+"/v1/sweep", []byte(req))
	if status != http.StatusOK {
		t.Fatalf("subset sweep direct: status %d body %s", status, direct)
	}
	var a, b service.SweepResponse
	if err := json.Unmarshal(viaRouter, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(direct, &b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		a.Points[i].PolyNs, a.Points[i].TPNNs = 0, 0
		b.Points[i].PolyNs, b.Points[i].TPNNs = 0, 0
	}
	ra, rb := mustJSON(t, a), mustJSON(t, b)
	if string(ra) != string(rb) {
		t.Fatalf("routed subset sweep differs from direct:\n%s\nvs\n%s", ra, rb)
	}
}

// TestRouterAllNodesUnreachable: nodes that are in the ring but answer no
// connections yield a 502 ("no reachable node"), and once the prober ejects
// every node the verdict becomes the 503 whole-cluster-down answer.
func TestRouterAllNodesUnreachable(t *testing.T) {
	// Bind-then-close: the address is real but refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	rt, err := NewRouter(Options{
		Nodes:       []Node{{Name: "dead", URL: deadURL}},
		EjectAfter:  1,
		RejoinAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	srv := ts.URL

	body, status := postRaw(t, srv+"/v1/evaluate", []byte(`{"model":"overlap","instanceId":"`+strings.Repeat("0", 64)+`"}`))
	if status != http.StatusBadGateway || !strings.Contains(string(body), "no reachable node") {
		t.Fatalf("unreachable node: status %d body %s, want 502 no-reachable-node", status, body)
	}

	// The transport failures above already burned the eject threshold, so
	// the ring is now empty: every routed endpoint answers 503 immediately.
	for _, probe := range []struct{ path, body string }{
		{"/v1/evaluate", `{"model":"overlap","instanceId":"` + strings.Repeat("0", 64) + `"}`},
		{"/v1/batch", `{"tasks":[{"model":"overlap","instanceId":"` + strings.Repeat("0", 64) + `"}]}`},
		{"/v1/sweep", `{"seed":1,"pairs":[[1,1]]}`},
	} {
		body, status := postRaw(t, srv+probe.path, []byte(probe.body))
		if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "no cluster nodes available") {
			t.Fatalf("%s with empty ring: status %d body %s, want 503 no-nodes", probe.path, status, body)
		}
	}

	var health HealthzResponse
	hb, _ := getRaw(t, srv+"/healthz")
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "down" || len(health.RingNodes) != 0 {
		t.Fatalf("healthz after total ejection = %+v, want down with empty ring", health)
	}
}

// TestServeListensAndShutsDown drives the library-level Serve (the exact
// path cmd/router runs): it must log its bound address, answer requests,
// and return nil on a clean context cancel.
func TestServeListensAndShutsDown(t *testing.T) {
	node := startNode(t, service.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, "127.0.0.1:0", Options{
			Nodes:         []Node{{URL: node.url()}},
			ProbeInterval: 20 * time.Millisecond,
		}, logf)
	}()

	listenRe := regexp.MustCompile(`listening on ([^\s]+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("Serve never logged its address")
		}
		mu.Lock()
		for _, l := range logs {
			if m := listenRe.FindStringSubmatch(l); m != nil {
				addr = m[1]
			}
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}

	var health HealthzResponse
	hb, status := getRaw(t, "http://"+addr+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.RingNodes) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}

	// A bad option set and an unbindable address both fail fast.
	if err := Serve(context.Background(), "127.0.0.1:0", Options{}, nil); err == nil {
		t.Fatal("Serve with no nodes should fail")
	}
	if err := Serve(context.Background(), "256.0.0.1:bad", Options{
		Nodes: []Node{{URL: node.url()}},
	}, nil); err == nil {
		t.Fatal("Serve with an unbindable address should fail")
	}
}

// TestByteCacheEviction pins the CLOCK bound of the router's caches: the
// resident set never exceeds capacity, re-putting a key updates in place,
// and evictions are counted.
func TestByteCacheEviction(t *testing.T) {
	c := newByteCache(2)
	c.put("a", []byte("1"))
	c.put("a", []byte("1b")) // update, not a second entry
	c.put("b", []byte("2"))
	c.put("c", []byte("3")) // must evict one of a/b
	m := c.metrics()
	if m.Entries != 2 || m.Evictions != 1 {
		t.Fatalf("after overflow: %+v, want 2 entries and 1 eviction", m)
	}
	if got, ok := c.get("a"); ok && string(got) != "1b" {
		t.Fatalf("updated key answered stale bytes %q", got)
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("most recent put was evicted immediately")
	}
	hits, misses := 0, 0
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := c.get(k); ok {
			hits++
		} else {
			misses++
		}
	}
	m = c.metrics()
	if hits != 2 || misses != 1 || m.Entries != 2 {
		t.Fatalf("hits=%d misses=%d metrics=%+v, want 2 resident of 3 keys", hits, misses, m)
	}
}
