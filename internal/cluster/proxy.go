package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/cycles"
	"repro/internal/exper"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/store"
)

// httpErr is an error with a dedicated HTTP status (the router's analogue
// of the service's httpError).
type httpErr struct {
	status int
	msg    string
}

func (e *httpErr) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &httpErr{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errNoNodes is the whole-cluster-down verdict: every node is ejected, so
// no candidate list exists for any key.
var errNoNodes = &httpErr{status: http.StatusServiceUnavailable, msg: "no cluster nodes available"}

// fail writes a router-originated failure in the service's unified error
// envelope with the status's default code.
func (rt *Router) fail(w http.ResponseWriter, name string, status int, msg string) {
	rt.failCode(w, name, status, service.DefaultErrorCode(status), msg)
}

// failCode writes a failure with an explicit code — used when the router
// relays a node verdict whose code is more specific than the status default
// (an unknown_instance 404 inside a rewritten batch message, say), so the
// router-fronted envelope matches the node's code for code.
func (rt *Router) failCode(w http.ResponseWriter, name string, status int, code, msg string) {
	rt.met.errors.Add(name, 1)
	writeJSON(w, status, service.ErrorBody{Error: service.ErrorInfo{Code: code, Message: msg}})
}

// failErr maps an error to its status: httpErr carries its own, context
// errors become 503 (the client's clock ran out while we proxied),
// everything else is a 502 — the router reached no node that could answer.
func (rt *Router) failErr(w http.ResponseWriter, name string, err error) {
	var he *httpErr
	switch {
	case errors.As(err, &he):
		rt.fail(w, name, he.status, he.msg)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		rt.fail(w, name, http.StatusServiceUnavailable, "request deadline exceeded")
	default:
		rt.fail(w, name, http.StatusBadGateway, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := encodeBody(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, body)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// encodeBody encodes v exactly the way the service encodes responses
// (SetEscapeHTML(false), Encode's trailing newline) — the property that
// makes a router-merged batch byte-identical to a single node's answer.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// readBody drains a capped request body.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, &httpErr{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
		}
		return nil, badReq("reading request body: %v", err)
	}
	return body, nil
}

// unmarshalStrict parses JSON the way the service's decode does (trailing
// garbage rejected, same error phrasing) so the router's parse verdicts
// read like a node's.
func unmarshalStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(v); err != nil {
		return badReq("bad request body: %v", err)
	}
	if dec.More() {
		return badReq("bad request body: trailing data after JSON value")
	}
	return nil
}

// proxyResult is one upstream answer, fully drained.
type proxyResult struct {
	status int
	body   []byte
	node   string
}

// drain discards any unread response remainder so the connection returns
// to the keep-alive pool.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
}

// attempt sends one request to one node and drains the answer. A transport
// error is returned as-is (the caller decides whether it burns the node's
// health streak).
func (rt *Router) attempt(ctx context.Context, name, method, path string, body []byte) (proxyResult, error) {
	ns := rt.nodes[name]
	actx, cancel := context.WithTimeout(ctx, rt.opts.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, ns.base+path, rd)
	if err != nil {
		return proxyResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return proxyResult{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return proxyResult{}, err
	}
	ns.proxied.Add(1)
	return proxyResult{status: resp.StatusCode, body: b, node: name}, nil
}

// retriable reports whether a status is worth a failover hop: the node
// answered but could not serve (at capacity, draining, proxy chain). A 4xx
// is the request's verdict and is final on the first answering node.
func retriable(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forward routes one request by key: the home node first, then up to
// Retries ring successors on transport errors and retriable statuses.
// Transport errors feed the health streaks (so a killed node ejects at
// request speed); a 404 with known replayIDs triggers replay-on-miss
// before the 404 is accepted as final.
func (rt *Router) forward(ctx context.Context, key, method, path string, body []byte, replayIDs []string) (proxyResult, error) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		return proxyResult{}, errNoNodes
	}
	var lastAnswer *proxyResult
	var lastErr error
	for i, name := range cands {
		if i > 0 {
			rt.met.retries.Add(1)
		}
		res, err := rt.attempt(ctx, name, method, path, body)
		if err != nil {
			if ctx.Err() != nil {
				return proxyResult{}, ctx.Err()
			}
			rt.recordFailure(rt.nodes[name])
			lastErr = err
			continue
		}
		if res.status == http.StatusNotFound && len(replayIDs) > 0 {
			if replayed, ok := rt.tryReplay(ctx, name, method, path, body, replayIDs); ok {
				return replayed, nil
			}
		}
		if retriable(res.status) && i+1 < len(cands) {
			lastAnswer = &res
			continue
		}
		return res, nil
	}
	if lastAnswer != nil {
		return *lastAnswer, nil
	}
	return proxyResult{}, fmt.Errorf("no reachable node for request (tried %d): %v", len(cands), lastErr)
}

// tryReplay is the replay-on-miss path: a by-ID request 404'd on a node
// that should own it (a rejoined node with a cold store, or a successor
// covering an ejected node's keys). If the router's replay cache holds the
// registration body for every referenced ID, re-register them on that node
// and retry the original request once. Reports false when replay cannot
// help (an ID the router never saw registered — the 404 is then the
// truthful answer).
func (rt *Router) tryReplay(ctx context.Context, name, method, path string, body []byte, ids []string) (proxyResult, bool) {
	bodies := make([][]byte, len(ids))
	for i, id := range ids {
		b, ok := rt.replay.get(id)
		if !ok {
			return proxyResult{}, false
		}
		bodies[i] = b
	}
	for _, b := range bodies {
		res, err := rt.attempt(ctx, name, http.MethodPost, "/v1/instances", b)
		if err != nil || res.status != http.StatusOK {
			return proxyResult{}, false
		}
	}
	rt.met.replays.Add(1)
	res, err := rt.attempt(ctx, name, method, path, body)
	if err != nil || res.status == http.StatusNotFound {
		return proxyResult{}, false
	}
	return res, true
}

// passthrough relays an upstream answer verbatim, counting error statuses.
func (rt *Router) passthrough(w http.ResponseWriter, name string, res proxyResult) {
	if res.status >= 400 {
		rt.met.errors.Add(name, 1)
	}
	writeRaw(w, res.status, res.body)
}

// coalescedMarker flags responses that must never enter the response memo:
// "coalesced" describes one request's scheduling, not the task's answer —
// the same rule the service's own memo applies.
var coalescedMarker = []byte(`"coalesced":true`)

// ---- /v1/evaluate ----

// handleEvaluate routes a single evaluation to the instance's home node —
// by-ID requests route on the ID itself, inline ones on the content ID of
// the inline instance, so both forms of the same instance land on the same
// node and hit the same caches. Repeat bodies short-circuit in the
// router's response memo without any node round trip.
func (rt *Router) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	const name = "evaluate"
	rt.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/evaluate requires POST")
		return
	}
	body, err := rt.readBody(w, r)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	if rt.resp != nil {
		if cached, ok := rt.resp.get(string(body)); ok {
			writeRaw(w, http.StatusOK, cached)
			return
		}
	}
	var req service.EvaluateRequest
	if err := unmarshalStrict(body, &req); err != nil {
		rt.failErr(w, name, err)
		return
	}
	var key string
	var ids []string
	switch {
	case req.Instance != nil && req.InstanceID != "":
		rt.fail(w, name, http.StatusBadRequest, "\"instance\" and \"instanceId\" are mutually exclusive")
		return
	case req.InstanceID != "":
		key = req.InstanceID
		ids = []string{req.InstanceID}
	case req.Instance != nil:
		key = store.ContentID(req.Instance)
	default:
		rt.fail(w, name, http.StatusBadRequest, "missing \"instance\" (inline) or \"instanceId\" (registered via POST /v1/instances)")
		return
	}
	res, err := rt.forward(r.Context(), key, http.MethodPost, "/v1/evaluate", body, ids)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	if res.status == http.StatusOK && rt.resp != nil && !bytes.Contains(res.body, coalescedMarker) {
		rt.resp.put(string(body), res.body)
	}
	rt.passthrough(w, name, res)
}

// ---- /v1/instances ----

// handleInstancePost registers an instance on its home node and caches the
// registration body for replay-on-miss. Note the home node is derived from
// the same content ID the node itself answers, so the registration lands
// exactly where future by-ID requests will route.
func (rt *Router) handleInstancePost(w http.ResponseWriter, r *http.Request) {
	const name = "instancesPost"
	rt.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/instances requires POST (GET /v1/instances/{id} looks up)")
		return
	}
	body, err := rt.readBody(w, r)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	var req service.InstanceRequest
	if err := unmarshalStrict(body, &req); err != nil {
		rt.failErr(w, name, err)
		return
	}
	set := 0
	for _, present := range []bool{req.Instance != nil, req.Pipeline != nil, req.Platform != nil} {
		if present {
			set++
		}
	}
	if set == 0 {
		rt.fail(w, name, http.StatusBadRequest, "missing \"instance\" (or \"pipeline\"/\"platform\" to register a description)")
		return
	}
	if set > 1 {
		rt.fail(w, name, http.StatusBadRequest, "\"instance\", \"pipeline\" and \"platform\" are mutually exclusive")
		return
	}
	// The ring key is the same content ID the home node will answer, for any
	// of the three document kinds; deeper validation stays with the node.
	var id string
	switch {
	case req.Pipeline != nil:
		id = store.PipelineID(req.Pipeline)
	case req.Platform != nil:
		id = store.PlatformID(req.Platform)
	default:
		id = store.ContentID(req.Instance)
	}
	rt.replay.put(id, body)
	res, err := rt.forward(r.Context(), id, http.MethodPost, "/v1/instances", body, nil)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	rt.passthrough(w, name, res)
}

// handleInstanceGet resolves a by-ID lookup on the ID's home node, with
// replay-on-miss when the home moved (ejection) or restarted cold.
func (rt *Router) handleInstanceGet(w http.ResponseWriter, r *http.Request) {
	const name = "instancesGet"
	rt.met.requests.Add(name, 1)
	if r.Method != http.MethodGet {
		rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/instances/{id} requires GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/instances/")
	if id == "" || strings.Contains(id, "/") {
		rt.fail(w, name, http.StatusBadRequest, fmt.Sprintf("bad instance path %q (want /v1/instances/{id})", r.URL.Path))
		return
	}
	res, err := rt.forward(r.Context(), id, http.MethodGet, r.URL.Path, nil, []string{id})
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	rt.passthrough(w, name, res)
}

// ---- /v1/search ----

// handleSearch proxies a search whole: the request body itself is the ring
// key, so identical requests route stably (and hit the same node's caches)
// while distinct ones spread. The body is parsed only to collect the
// pipelineId/platformId references for replay-on-miss; validation verdicts
// stay with the node.
func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	const name = "search"
	rt.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		rt.fail(w, name, http.StatusMethodNotAllowed, fmt.Sprintf("%s requires POST", r.URL.Path))
		return
	}
	body, err := rt.readBody(w, r)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	var req service.SearchRequest
	if err := unmarshalStrict(body, &req); err != nil {
		rt.failErr(w, name, err)
		return
	}
	if req.Distributed != "" {
		// The cluster execution modes: instead of proxying the search whole,
		// the router runs the deterministic plan itself and scatters the
		// subtree roots across the ring (search.go).
		rt.distributedSearch(w, r, body, &req)
		return
	}
	var ids []string
	if req.PipelineID != "" {
		ids = append(ids, req.PipelineID)
	}
	if req.PlatformID != "" {
		ids = append(ids, req.PlatformID)
	}
	res, err := rt.forward(r.Context(), string(body), http.MethodPost, "/v1/search", body, ids)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	rt.passthrough(w, name, res)
}

// ---- /v1/batch ----

// batchGroup is one node's share of a scattered batch.
type batchGroup struct {
	idxs []int    // global task indices, ascending (built in submission order)
	ids  []string // by-ID references in the group (replay candidates)
}

// handleBatch scatters a batch by per-task home node and gathers the
// outcomes back in submission order. Tasks are pre-validated here in
// global order with the service's own error phrasing, so validation
// verdicts are identical to a single node's; per-task solver errors ride
// inside outcomes and merge positionally. The merged response is encoded
// by the service's encode path, making a multi-node batch byte-identical
// to the single-node answer.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	const name = "batch"
	rt.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/batch requires POST")
		return
	}
	body, err := rt.readBody(w, r)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	var req service.BatchRequest
	if err := unmarshalStrict(body, &req); err != nil {
		rt.failErr(w, name, err)
		return
	}
	if len(req.Tasks) == 0 {
		rt.fail(w, name, http.StatusBadRequest, "empty \"tasks\"")
		return
	}
	if req.Backend != "" {
		if _, err := cycles.ParseBackend(req.Backend); err != nil {
			rt.fail(w, name, http.StatusBadRequest, err.Error())
			return
		}
	}
	// Validate in global submission order, mirroring the node's parse loop:
	// the first bad task wins, exactly as on a single node.
	keys := make([]string, len(req.Tasks))
	byID := make([]string, len(req.Tasks))
	for i, bt := range req.Tasks {
		if _, err := model.Parse(bt.Model); err != nil {
			rt.fail(w, name, http.StatusBadRequest, fmt.Sprintf("task %d: %v", i, err))
			return
		}
		switch {
		case bt.Instance != nil && bt.InstanceID != "":
			rt.fail(w, name, http.StatusBadRequest, fmt.Sprintf("task %d: \"instance\" and \"instanceId\" are mutually exclusive", i))
			return
		case bt.InstanceID != "":
			keys[i], byID[i] = bt.InstanceID, bt.InstanceID
		case bt.Instance != nil:
			keys[i] = store.ContentID(bt.Instance)
		default:
			rt.fail(w, name, http.StatusBadRequest, fmt.Sprintf("task %d: missing \"instance\" or \"instanceId\"", i))
			return
		}
	}
	// Group by home node under one ring view, first-appearance order.
	groups := make(map[string]*batchGroup)
	var order []string
	rt.mu.RLock()
	for i, k := range keys {
		owner, ok := rt.ring.Get(k)
		if !ok {
			rt.mu.RUnlock()
			rt.fail(w, name, errNoNodes.status, errNoNodes.msg)
			return
		}
		g := groups[owner]
		if g == nil {
			g = &batchGroup{}
			groups[owner] = g
			order = append(order, owner)
		}
		g.idxs = append(g.idxs, i)
		if byID[i] != "" {
			g.ids = append(g.ids, byID[i])
		}
	}
	rt.mu.RUnlock()

	type subResult struct {
		res proxyResult
		err error
	}
	results := make([]subResult, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		wg.Add(1)
		go func(gi int, g *batchGroup) {
			defer wg.Done()
			subTasks := make([]service.BatchTask, len(g.idxs))
			for j, i := range g.idxs {
				subTasks[j] = req.Tasks[i]
			}
			subBody, err := json.Marshal(service.BatchRequest{Tasks: subTasks, Backend: req.Backend})
			if err != nil {
				results[gi] = subResult{err: err}
				return
			}
			res, err := rt.forward(r.Context(), keys[g.idxs[0]], http.MethodPost, "/v1/batch", subBody, g.ids)
			results[gi] = subResult{res: res, err: err}
		}(gi, groups[owner])
	}
	wg.Wait()

	// Gather. A failing group's verdict is rewritten to global task indices
	// and the failure at the smallest global index wins — the order a single
	// node, validating sequentially, would have reported.
	merged := service.BatchResponse{Outcomes: make([]service.BatchOutcome, len(req.Tasks))}
	backendAt := len(req.Tasks)
	failAt := len(req.Tasks) + 1
	var failStatus int
	var failCode string
	var failMsg string
	recordFail := func(at, status int, code, msg string) {
		if code == "" {
			code = service.DefaultErrorCode(status)
		}
		if at < failAt {
			failAt, failStatus, failCode, failMsg = at, status, code, msg
		}
	}
	for gi, owner := range order {
		g := groups[owner]
		sr := results[gi]
		if sr.err != nil {
			status, msg := http.StatusBadGateway, sr.err.Error()
			var he *httpErr
			if errors.As(sr.err, &he) {
				status, msg = he.status, he.msg
			}
			recordFail(g.idxs[0], status, "", msg)
			continue
		}
		if sr.res.status != http.StatusOK {
			info := errorInfoOf(sr.res.body)
			at, msg := rewriteTaskIndex(info.Message, g.idxs)
			recordFail(at, sr.res.status, info.Code, msg)
			continue
		}
		var sub service.BatchResponse
		if err := json.Unmarshal(sr.res.body, &sub); err != nil || len(sub.Outcomes) != len(g.idxs) {
			recordFail(g.idxs[0], http.StatusBadGateway, "",
				fmt.Sprintf("node %s answered a malformed batch response", sr.res.node))
			continue
		}
		// The merged backend label comes from the group holding the smallest
		// global index, so the choice is deterministic even if nodes were
		// (mis)configured with different defaults.
		if g.idxs[0] < backendAt {
			backendAt, merged.Backend = g.idxs[0], sub.Backend
		}
		for j, i := range g.idxs {
			merged.Outcomes[i] = sub.Outcomes[j]
		}
	}
	if failAt <= len(req.Tasks) {
		rt.failCode(w, name, failStatus, failCode, failMsg)
		return
	}
	out, err := encodeBody(merged)
	if err != nil {
		rt.fail(w, name, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	writeRaw(w, http.StatusOK, out)
}

// errorInfoOf extracts the error envelope of a node's failure body: the
// {"error":{"code","message"}} object, with fallbacks for a legacy string
// "error" field and for a non-JSON body (code left empty — the caller
// substitutes the status default).
func errorInfoOf(body []byte) service.ErrorInfo {
	var e struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && len(e.Error) > 0 {
		var info service.ErrorInfo
		if json.Unmarshal(e.Error, &info) == nil && info.Message != "" {
			return info
		}
		var legacy string
		if json.Unmarshal(e.Error, &legacy) == nil && legacy != "" {
			return service.ErrorInfo{Message: legacy}
		}
	}
	return service.ErrorInfo{Message: strings.TrimSpace(string(body))}
}

// rewriteTaskIndex maps a node's "task %d: ..." message from sub-batch
// (local) indices back to the client's global indices, returning the
// global index for failure ordering. Messages without the prefix pass
// through, anchored at the group's first index.
func rewriteTaskIndex(msg string, idxs []int) (int, string) {
	rest, ok := strings.CutPrefix(msg, "task ")
	if !ok {
		return idxs[0], msg
	}
	num, tail, ok := strings.Cut(rest, ":")
	if !ok {
		return idxs[0], msg
	}
	var local int
	if _, err := fmt.Sscanf(num, "%d", &local); err != nil || local < 0 || local >= len(idxs) {
		return idxs[0], msg
	}
	global := idxs[local]
	return global, fmt.Sprintf("task %d:%s", global, tail)
}

// ---- /v1/sweep ----

// handleSweep scatters one sweep across the cluster with the service's
// "only" protocol: every node receives the full (seed, pairs) request —
// so each draws the identical instance population from the one serial rng
// stream — plus the pair indices it is home to, and the gathered points
// merge back by global index into exactly the single-node sweep (modulo
// the wall-clock timing fields, which no distribution could preserve).
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	const name = "sweep"
	rt.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		rt.fail(w, name, http.StatusMethodNotAllowed, "/v1/sweep requires POST")
		return
	}
	body, err := rt.readBody(w, r)
	if err != nil {
		rt.failErr(w, name, err)
		return
	}
	var req service.SweepRequest
	if err := unmarshalStrict(body, &req); err != nil {
		rt.failErr(w, name, err)
		return
	}
	if req.Backend != "" {
		if _, err := cycles.ParseBackend(req.Backend); err != nil {
			rt.fail(w, name, http.StatusBadRequest, err.Error())
			return
		}
	}
	if len(req.Instances) > 0 || len(req.InstanceIDs) > 0 {
		// Explicit instance population: route the sweep whole by body, with
		// the by-ID references as replay candidates. (Scattering by instance
		// would be possible, but explicit populations are small and the
		// exclusivity rules stay a node verdict this way.)
		res, err := rt.forward(r.Context(), string(body), http.MethodPost, "/v1/sweep", body, req.InstanceIDs)
		if err != nil {
			rt.failErr(w, name, err)
			return
		}
		rt.passthrough(w, name, res)
		return
	}
	if req.Only != nil {
		// Already a subset request (another router's scatter, or a client
		// slicing by hand): route it whole by body, like /v1/search.
		res, err := rt.forward(r.Context(), string(body), http.MethodPost, "/v1/sweep", body, nil)
		if err != nil {
			rt.failErr(w, name, err)
			return
		}
		rt.passthrough(w, name, res)
		return
	}
	pairs := req.Pairs
	if len(pairs) == 0 {
		pairs = exper.DefaultSweepPairs()
	}
	// Group pair indices by home node. The per-pair ring key folds in seed
	// and replication vector so distinct sweeps spread independently; deeper
	// validation is left to the nodes, whose verdicts are already phrased
	// against global indices (each holds the full pairs list).
	groups := make(map[string][]int)
	var order []string
	rt.mu.RLock()
	for i := range pairs {
		owner, ok := rt.ring.Get(fmt.Sprintf("sweep\x00%d\x00%d\x00%v", req.Seed, i, pairs[i]))
		if !ok {
			rt.mu.RUnlock()
			rt.fail(w, name, errNoNodes.status, errNoNodes.msg)
			return
		}
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	rt.mu.RUnlock()

	type subResult struct {
		res proxyResult
		err error
	}
	results := make([]subResult, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		wg.Add(1)
		go func(gi int, owner string, only []int) {
			defer wg.Done()
			subBody, err := json.Marshal(service.SweepRequest{
				Seed: req.Seed, Pairs: pairs, Backend: req.Backend, Only: only,
			})
			if err != nil {
				results[gi] = subResult{err: err}
				return
			}
			// Failover candidates follow the group's first pair key; any node
			// computes the identical points, so affinity is a cache concern,
			// not a correctness one.
			key := fmt.Sprintf("sweep\x00%d\x00%d\x00%v", req.Seed, only[0], pairs[only[0]])
			res, err := rt.forward(r.Context(), key, http.MethodPost, "/v1/sweep", subBody, nil)
			results[gi] = subResult{res: res, err: err}
		}(gi, owner, groups[owner])
	}
	wg.Wait()

	merged := service.SweepResponse{Points: make([]service.SweepPointJSON, len(pairs))}
	backendAt := len(pairs)
	failAt := len(pairs) + 1
	var failStatus int
	var failCode string
	var failMsg string
	recordFail := func(at, status int, code, msg string) {
		if code == "" {
			code = service.DefaultErrorCode(status)
		}
		if at < failAt {
			failAt, failStatus, failCode, failMsg = at, status, code, msg
		}
	}
	for gi, owner := range order {
		idxs := groups[owner]
		sr := results[gi]
		if sr.err != nil {
			status, msg := http.StatusBadGateway, sr.err.Error()
			var he *httpErr
			if errors.As(sr.err, &he) {
				status, msg = he.status, he.msg
			}
			recordFail(idxs[0], status, "", msg)
			continue
		}
		if sr.res.status != http.StatusOK {
			info := errorInfoOf(sr.res.body)
			recordFail(idxs[0], sr.res.status, info.Code, info.Message)
			continue
		}
		var sub service.SweepResponse
		if err := json.Unmarshal(sr.res.body, &sub); err != nil || len(sub.Points) != len(idxs) {
			recordFail(idxs[0], http.StatusBadGateway, "",
				fmt.Sprintf("node %s answered a malformed sweep response", sr.res.node))
			continue
		}
		if idxs[0] < backendAt {
			backendAt, merged.Backend = idxs[0], sub.Backend
		}
		for j, i := range idxs {
			merged.Points[i] = sub.Points[j]
		}
	}
	if failAt <= len(pairs) {
		rt.failCode(w, name, failStatus, failCode, failMsg)
		return
	}
	out, err := encodeBody(merged)
	if err != nil {
		rt.fail(w, name, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	writeRaw(w, http.StatusOK, out)
}
