// Distributed branch-and-bound: the router runs the search's deterministic
// plan itself — greedy warm start from a node, frontier expansion in
// process (a pure function, no solver needed), merge in frontier order —
// and ships each subtree root to its ring home via POST
// /v1/internal/subtree. Deterministic mode is bit-identical to a solo
// search at any cluster size because nothing order-dependent happens here:
// the frontier is a function of (instance, warm period, target) and the
// merge ignores arrival order. Racing mode reuses bnb's racing flag — each
// root is dispatched with the best incumbent known at dispatch time — and
// keeps the proven verdict exact while giving up bit-identity of node
// counts and tie winners.
//
// Node failures degrade, never corrupt: a root whose home node dies is
// retried on the ring successors (the same failover every proxied request
// gets); if no node can run it, the root merges as unexplored and the
// response honestly reports proven=false, exactly as a solo search
// interrupted mid-tree would.

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/bnb"
	"repro/internal/cycles"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
	"repro/internal/service"
)

// distributedSearch coordinates one bnb search across the ring. body is the
// client's submission (its hash spreads the subtree keys so distinct
// searches land on distinct node subsets); req is its parsed form with
// req.Distributed already known non-empty.
func (rt *Router) distributedSearch(w http.ResponseWriter, r *http.Request, body []byte, req *service.SearchRequest) {
	const name = "search"
	// Validation mirrors the node's searchPlan phrasing so the router-
	// fronted verdicts read like a solo node's.
	switch req.Distributed {
	case "deterministic", "racing":
	default:
		rt.fail(w, name, http.StatusBadRequest,
			fmt.Sprintf("unknown distributed mode %q (want \"deterministic\" or \"racing\")", req.Distributed))
		return
	}
	algo := req.Algo
	if algo == "" {
		algo = "best"
	}
	if algo != "bnb" {
		rt.fail(w, name, http.StatusBadRequest,
			fmt.Sprintf("\"distributed\" applies only to algo \"bnb\" (got %q)", algo))
		return
	}
	if req.PipelineID != "" || req.PlatformID != "" {
		rt.fail(w, name, http.StatusBadRequest,
			"distributed search requires an inline \"pipeline\" and \"platform\" (by-ID documents resolve on single nodes; drop \"distributed\" to route the search whole)")
		return
	}
	if req.Pipeline == nil || req.Platform == nil {
		rt.fail(w, name, http.StatusBadRequest, "missing \"pipeline\" or \"platform\"")
		return
	}
	cm, err := model.Parse(req.Model)
	if err != nil {
		rt.fail(w, name, http.StatusBadRequest, err.Error())
		return
	}
	backendLabel := ""
	if req.Backend != "" {
		b, err := cycles.ParseBackend(req.Backend)
		if err != nil {
			rt.fail(w, name, http.StatusBadRequest, err.Error())
			return
		}
		backendLabel = b.String()
	}

	ctx := r.Context()
	if req.BudgetMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.BudgetMs)*time.Millisecond)
		defer cancel()
	}

	// Warm start: the same greedy seed a solo bnb computes, obtained by
	// forwarding a greedy variant of the request (greedy is deterministic,
	// so any node answers the identical mapping). A 4xx is the request's
	// own verdict and relays as-is; a 5xx mirrors the solo rule that a
	// greedy failure is not fatal — the search simply starts warm-less.
	opts := bnb.Options{Racing: req.Distributed == "racing"}
	warmReq := *req
	warmReq.Algo = "greedy"
	warmReq.Distributed = ""
	warmBody, err := encodeBody(&warmReq)
	if err != nil {
		rt.fail(w, name, http.StatusInternalServerError, fmt.Sprintf("encoding warm-start request: %v", err))
		return
	}
	warmRes, err := rt.forward(ctx, string(warmBody), http.MethodPost, "/v1/search", warmBody, nil)
	switch {
	case err != nil:
		rt.failErr(w, name, err)
		return
	case warmRes.status >= 400 && warmRes.status < 500:
		rt.passthrough(w, name, warmRes)
		return
	case warmRes.status == http.StatusOK:
		var warm service.SearchResponse
		if jerr := json.Unmarshal(warmRes.body, &warm); jerr == nil {
			if mp, merr := mapping.New(warm.Replicas, req.Platform.NumProcs()); merr == nil {
				if p, perr := rat.Parse(warm.Period); perr == nil {
					opts.Incumbent, opts.IncumbentPeriod = mp, p
					backendLabel = warm.Backend
				}
			}
		}
		if opts.Incumbent == nil {
			rt.fail(w, name, http.StatusBadGateway,
				fmt.Sprintf("node %s answered a malformed search response", warmRes.node))
			return
		}
	}

	exec := &remoteExecutor{
		rt:      rt,
		pipe:    req.Pipeline,
		plat:    req.Platform,
		model:   req.Model,
		backend: req.Backend,
		keyBase: service.JobKeyPrefix(body),
	}
	opts.Executor = exec
	res, err := bnb.Search(ctx, nil, req.Pipeline, req.Platform, cm, opts)
	if err != nil {
		// The same budget-vs-server-deadline attribution the node performs.
		ctxErr := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
		if req.BudgetMs > 0 && ctxErr && r.Context().Err() == nil {
			rt.fail(w, name, http.StatusBadRequest,
				fmt.Sprintf("search budget of %d ms expired before a feasible mapping was found", req.BudgetMs))
			return
		}
		status := http.StatusInternalServerError
		if ctxErr {
			status = http.StatusServiceUnavailable
		}
		rt.fail(w, name, status, err.Error())
		return
	}
	if backendLabel == "" {
		backendLabel = exec.backendLabel()
	}
	if backendLabel == "" {
		// No warm start, no default-backend request and no root round trip
		// answered — nothing to label the response with.
		rt.fail(w, name, http.StatusBadGateway, "no node reported a backend for the search")
		return
	}
	proven, nodes, pruned, screened := res.Proven, res.Stats.Nodes, res.Stats.Pruned, res.Stats.Screened
	resp := service.SearchResponse{
		Algo:        "bnb",
		Backend:     backendLabel,
		Model:       cm.String(),
		Replicas:    res.Mapping.Replicas,
		Period:      res.Period.String(),
		PeriodFloat: res.Period.Float64(),
		Throughput:  res.Throughput().String(),
		Proven:      &proven,
		Nodes:       &nodes,
		Pruned:      &pruned,
		Screened:    &screened,
	}
	out, err := encodeBody(resp)
	if err != nil {
		rt.fail(w, name, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	writeRaw(w, http.StatusOK, out)
}

// remoteExecutor ships frontier roots to their ring homes. RunRoot is
// called from bnb's worker goroutines; forward already retries the ring
// successors on a dead home, so a lost node costs latency, not the root. A
// returned error marks the root unexplored — bnb merges it as such and the
// search result drops its proven flag.
type remoteExecutor struct {
	rt      *Router
	pipe    *pipeline.Pipeline
	plat    *platform.Platform
	model   string
	backend string
	keyBase string

	mu    sync.Mutex
	label string // backend label from the first subtree answer
}

func (e *remoteExecutor) RunRoot(ctx context.Context, root bnb.Root, warm string) (bnb.SubResult, error) {
	body, err := encodeBody(service.SubtreeRequest{
		Pipeline:   e.pipe,
		Platform:   e.plat,
		Model:      e.model,
		Backend:    e.backend,
		Root:       root,
		WarmPeriod: warm,
	})
	if err != nil {
		return bnb.SubResult{}, err
	}
	key := fmt.Sprintf("subtree\x00%s\x00%d", e.keyBase, root.Index)
	res, err := e.rt.forward(ctx, key, http.MethodPost, "/v1/internal/subtree", body, nil)
	if err != nil {
		return bnb.SubResult{}, err
	}
	if res.status != http.StatusOK {
		info := errorInfoOf(res.body)
		return bnb.SubResult{}, fmt.Errorf("subtree %d on node %s: status %d: %s", root.Index, res.node, res.status, info.Message)
	}
	var sub service.SubtreeResponse
	if err := json.Unmarshal(res.body, &sub); err != nil {
		return bnb.SubResult{}, fmt.Errorf("node %s answered a malformed subtree response: %v", res.node, err)
	}
	e.mu.Lock()
	if e.label == "" {
		e.label = sub.Backend
	}
	e.mu.Unlock()
	return sub.Result, nil
}

func (e *remoteExecutor) backendLabel() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.label
}

var _ bnb.Executor = (*remoteExecutor)(nil)
