package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/service"
)

// distributableSearch is a fixture whose greedy warm start does NOT prove
// optimality outright: the bnb frontier survives (dozens of roots), so a
// distributed run genuinely scatters subtrees while still finishing in
// milliseconds. (Small uniform fixtures collapse to frontier 0 — greedy is
// already optimal — and would test nothing.)
func distributableSearch(t *testing.T) service.SearchRequest {
	t.Helper()
	work := make([]int64, 8)
	files := make([]int64, 7)
	for i := range work {
		work[i] = int64(100 + 37*i)
	}
	for i := range files {
		files[i] = int64(40 + 11*i)
	}
	pipe, err := pipeline.New(work, files)
	if err != nil {
		t.Fatal(err)
	}
	return service.SearchRequest{
		Pipeline: pipe,
		Platform: platform.Uniform(16, 100, 100),
		Model:    "overlap",
		Algo:     "bnb",
	}
}

// steadyRing slows the prober down so a CPU-starved test box (parallel
// -race packages) cannot spuriously eject a healthy node mid-search. Dead
// nodes are still handled — transport errors fail a root's dispatch over
// to ring successors at request speed, no ejection needed.
func steadyRing(o *Options) {
	o.ProbeInterval = time.Minute
	o.EjectAfter = 1000
}

// TestRouterDistributedSearchByteIdenticalToSolo is the coordinator's
// acceptance bar: a deterministic distributed search over 3 nodes must
// answer byte-for-byte what one standalone node answers for the plain solo
// request — same mapping, same period, same proven flag, same node counts.
func TestRouterDistributedSearchByteIdenticalToSolo(t *testing.T) {
	solo := startNode(t, service.Options{})
	_, _, routerURL := startCluster(t, 3, service.Options{}, steadyRing)

	req := distributableSearch(t)
	wantBody, wantStatus := postRaw(t, solo.url()+"/v1/search", mustJSON(t, req))
	if wantStatus != http.StatusOK {
		t.Fatalf("solo search: status %d body %s", wantStatus, wantBody)
	}
	var want service.SearchResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if want.Proven == nil || !*want.Proven {
		t.Fatalf("fixture not proven on solo node: %s", wantBody)
	}
	if want.Nodes == nil || *want.Nodes == 0 {
		t.Fatalf("fixture explored no tree (greedy already optimal?): %s", wantBody)
	}

	req.Distributed = "deterministic"
	gotBody, gotStatus := postRaw(t, routerURL+"/v1/search", mustJSON(t, req))
	if gotStatus != http.StatusOK {
		t.Fatalf("distributed search: status %d body %s", gotStatus, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("distributed search differs from solo:\nrouter: %s\nsolo:   %s", gotBody, wantBody)
	}

	// The subtrees actually scattered: more than one node served requests.
	m := scrapeRouter(t, routerURL)
	busy := 0
	for _, count := range m.Router.PerNode {
		if count > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("distributed search did not scatter: per-node proxied counts %v", m.Router.PerNode)
	}
}

// TestRouterDistributedRacingSameProvenOptimum: racing mode trades
// bit-identity of tie winners and node counts for wall clock, but the
// period it proves is the same optimum.
func TestRouterDistributedRacingSameProvenOptimum(t *testing.T) {
	solo := startNode(t, service.Options{})
	_, _, routerURL := startCluster(t, 3, service.Options{}, steadyRing)

	req := distributableSearch(t)
	wantBody, wantStatus := postRaw(t, solo.url()+"/v1/search", mustJSON(t, req))
	if wantStatus != http.StatusOK {
		t.Fatalf("solo search: status %d body %s", wantStatus, wantBody)
	}
	var want service.SearchResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}

	req.Distributed = "racing"
	gotBody, gotStatus := postRaw(t, routerURL+"/v1/search", mustJSON(t, req))
	if gotStatus != http.StatusOK {
		t.Fatalf("racing search: status %d body %s", gotStatus, gotBody)
	}
	var got service.SearchResponse
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	if got.Proven == nil || !*got.Proven {
		t.Fatalf("racing search not proven: %s", gotBody)
	}
	if got.Period != want.Period {
		t.Fatalf("racing period %s, want the solo optimum %s", got.Period, want.Period)
	}
	if got.Backend != want.Backend || got.Model != want.Model || got.Algo != "bnb" {
		t.Fatalf("racing labels differ: %s vs %s", gotBody, wantBody)
	}
}

// TestRouterDistributedSearchSurvivesDeadNode: with one of three nodes
// already dead (and the prober not necessarily converged), the roots homed
// on it fail over to ring successors — the deterministic answer is still
// byte-identical to solo, because rescheduling changes where a root runs,
// never what it returns.
func TestRouterDistributedSearchSurvivesDeadNode(t *testing.T) {
	solo := startNode(t, service.Options{})
	nodes, _, routerURL := startCluster(t, 3, service.Options{}, steadyRing)
	nodes[2].kill()

	req := distributableSearch(t)
	wantBody, wantStatus := postRaw(t, solo.url()+"/v1/search", mustJSON(t, req))
	if wantStatus != http.StatusOK {
		t.Fatalf("solo search: status %d body %s", wantStatus, wantBody)
	}
	req.Distributed = "deterministic"
	gotBody, gotStatus := postRaw(t, routerURL+"/v1/search", mustJSON(t, req))
	if gotStatus != http.StatusOK {
		t.Fatalf("distributed search with dead node: status %d body %s", gotStatus, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("distributed search with dead node differs from solo:\nrouter: %s\nsolo:   %s", gotBody, wantBody)
	}
}

// TestRouterDistributedSearchValidation pins the coordinator's request
// verdicts, phrased like a node's own.
func TestRouterDistributedSearchValidation(t *testing.T) {
	_, _, routerURL := startCluster(t, 1, service.Options{}, steadyRing)
	req := distributableSearch(t)

	bad := req
	bad.Distributed = "sideways"
	body, status := postRaw(t, routerURL+"/v1/search", mustJSON(t, bad))
	if status != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d body %s", status, body)
	}

	bad = req
	bad.Algo = "greedy"
	bad.Distributed = "deterministic"
	body, status = postRaw(t, routerURL+"/v1/search", mustJSON(t, bad))
	if status != http.StatusBadRequest {
		t.Fatalf("distributed greedy: status %d body %s", status, body)
	}

	bad = req
	bad.Pipeline = nil
	bad.PipelineID = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	bad.Distributed = "deterministic"
	body, status = postRaw(t, routerURL+"/v1/search", mustJSON(t, bad))
	if status != http.StatusBadRequest {
		t.Fatalf("by-ID distributed: status %d body %s", status, body)
	}

	bad = req
	bad.Model = "sideways"
	bad.Distributed = "racing"
	body, status = postRaw(t, routerURL+"/v1/search", mustJSON(t, bad))
	if status != http.StatusBadRequest {
		t.Fatalf("bad model: status %d body %s", status, body)
	}
}
