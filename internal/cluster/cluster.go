// Package cluster is the scale-out layer of the serving stack: a
// consistent-hash router that fronts N serve nodes (internal/service) and
// presents the same /v1/* surface as a single node.
//
// Sharding discipline:
//
//   - Home nodes. Every instance routes by its content ID (store.ContentID —
//     the SHA-256 of the canonical serialization), hashed onto a ring of
//     virtual nodes (internal/ring). A by-ID request and the inline form of
//     the same instance hash identically, so each instance has one home node
//     and that node's memo caches see every repeat — the per-process caches
//     compose into an effectively distributed cache with near-perfect
//     affinity.
//
//   - Deterministic scatter/gather. /v1/batch splits by per-task home node
//     and merges outcomes back in submission order; /v1/sweep sends every
//     node the full (seed, pairs) request plus the pair indices it is home
//     to (the node draws the whole rng population but solves only its
//     share). Merged responses are encoded by the same path the service
//     uses, so a cluster answer is byte-identical to a single node's on the
//     deterministic fields.
//
//   - Eject/rejoin. A prober hits every node's /healthz; EjectAfter
//     consecutive failures remove it from the ring (its keys flow to ring
//     successors — and only its keys, the consistent-hashing guarantee),
//     RejoinAfter consecutive successes restore it. Transport errors during
//     proxying count as probe failures, so a killed node is ejected at
//     request speed, not just at probe cadence.
//
//   - Replay on miss. The router keeps a bounded cache of registration
//     bodies (POST /v1/instances passing through it). When a by-ID request
//     lands on a node that does not hold the instance — a rejoined node
//     with a cold store, or a successor serving an ejected node's keys —
//     the router transparently re-registers from the cache and retries, so
//     failover never surfaces a spurious 404.
//
//   - Response memo. Repeat /v1/evaluate requests (matched on exact body
//     bytes) are served from a bounded router-side memo of response bytes —
//     no node round trip at all. Responses marked "coalesced" are never
//     memoized, mirroring the service's own response-memo rule.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
)

// Node names one serve process the router shards across.
type Node struct {
	// Name is the stable ring identity (defaults to URL). Ownership depends
	// on the name set, so keep names stable across router restarts.
	Name string
	// URL is the node's base URL, e.g. "http://10.0.0.7:8080".
	URL string
	// Weight scales the node's key share (<= 0 means 1).
	Weight int
}

// Options configures a Router. Only Nodes is required.
type Options struct {
	// Nodes is the initial membership (at least one).
	Nodes []Node
	// Vnodes is the ring's virtual-node count per weight unit
	// (0 = ring.DefaultVnodes).
	Vnodes int
	// ProbeInterval is the health-check cadence per node (0 = 500 ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = ProbeInterval).
	ProbeTimeout time.Duration
	// EjectAfter ejects a node from the ring after this many consecutive
	// failures — probe failures and proxy transport errors both count
	// (0 = 3).
	EjectAfter int
	// RejoinAfter restores an ejected node after this many consecutive
	// probe successes (0 = 2).
	RejoinAfter int
	// Retries is the per-request failover budget: after the home node, up to
	// this many ring successors are tried on transport errors and 502/503/504
	// answers (0 = 2; negative disables failover).
	Retries int
	// RequestTimeout bounds each proxied attempt (0 = 60 s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// ReplayEntries bounds the registration-body cache behind replay-on-miss
	// (0 = 4096).
	ReplayEntries int
	// RespMemoEntries bounds the router-side response memo for repeat
	// /v1/evaluate bodies (0 = 8192, negative disables).
	RespMemoEntries int
}

func (o *Options) defaults() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.RejoinAfter <= 0 {
		o.RejoinAfter = 2
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.ReplayEntries <= 0 {
		o.ReplayEntries = 4096
	}
}

// nodeState is one member's health book-keeping. The mutable fields are
// guarded by Router.mu — the same lock that guards the ring, so a node's
// aliveness and its ring membership can never disagree.
type nodeState struct {
	name   string
	base   string // URL without trailing slash
	weight int

	alive       bool
	consecFails int
	consecOKs   int

	proxied atomic.Int64 // responses obtained from this node (skew accounting)
}

// Router is the consistent-hash front end. Create with NewRouter, mount
// Handler, and call Start to run the health probers.
type Router struct {
	opts   Options
	mux    *http.ServeMux
	client *http.Client

	mu    sync.RWMutex
	ring  *ring.Ring
	nodes map[string]*nodeState

	met    *routerMetrics
	replay *byteCache // content ID -> registration body
	resp   *byteCache // evaluate request body -> response body; nil when disabled
}

// NewRouter validates the membership and builds the routing table. Every
// node starts alive; Start launches the probers that maintain that.
func NewRouter(opts Options) (*Router, error) {
	opts.defaults()
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	rt := &Router{
		opts:   opts,
		mux:    http.NewServeMux(),
		ring:   ring.New(opts.Vnodes),
		nodes:  make(map[string]*nodeState, len(opts.Nodes)),
		met:    newRouterMetrics(),
		replay: newByteCache(opts.ReplayEntries),
	}
	if opts.RespMemoEntries >= 0 {
		n := opts.RespMemoEntries
		if n == 0 {
			n = 8192
		}
		rt.resp = newByteCache(n)
	}
	for _, n := range opts.Nodes {
		name := n.Name
		if name == "" {
			name = n.URL
		}
		if n.URL == "" {
			return nil, fmt.Errorf("cluster: node %q has no URL", name)
		}
		weight := n.Weight
		if weight <= 0 {
			weight = 1
		}
		if _, dup := rt.nodes[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		if err := rt.ring.Add(name, weight); err != nil {
			return nil, err
		}
		rt.nodes[name] = &nodeState{
			name:   name,
			base:   trimSlash(n.URL),
			weight: weight,
			alive:  true,
		}
	}
	// One shared keep-alive transport: a router in front of a hit-dominated
	// workload forwards thousands of small requests per second per node, and
	// the default 2-idle-connections-per-host limit would re-dial TCP on
	// most of them (the same lesson cmd/loadgen's client learned).
	tr := http.DefaultTransport.(*http.Transport).Clone()
	perHost := 4 * runtime.GOMAXPROCS(0)
	if perHost < 16 {
		perHost = 16
	}
	tr.MaxIdleConnsPerHost = perHost
	if tr.MaxIdleConns < perHost*len(opts.Nodes) {
		tr.MaxIdleConns = perHost * len(opts.Nodes)
	}
	rt.client = &http.Client{Transport: tr}

	rt.mux.HandleFunc("/v1/evaluate", rt.handleEvaluate)
	rt.mux.HandleFunc("/v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("/v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("/v1/search", rt.handleSearch)
	rt.mux.HandleFunc("/v1/jobs", rt.handleJobs)
	rt.mux.HandleFunc("/v1/jobs/", rt.handleJobByID)
	rt.mux.HandleFunc("/v1/instances", rt.handleInstancePost)
	rt.mux.HandleFunc("/v1/instances/", rt.handleInstanceGet)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

func trimSlash(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Handler returns the root handler (all routes).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start launches one health prober per node; they stop when ctx is
// canceled. Safe to skip in tests that want a static ring.
func (rt *Router) Start(ctx context.Context) {
	for _, ns := range rt.nodes {
		go rt.probeLoop(ctx, ns)
	}
}

func (rt *Router) probeLoop(ctx context.Context, ns *nodeState) {
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		rt.recordProbe(ns, rt.probe(ctx, ns))
	}
}

// probe reports whether one /healthz round trip succeeded.
func (rt *Router) probe(ctx context.Context, ns *nodeState) bool {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ns.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	drain(resp)
	return resp.StatusCode == http.StatusOK
}

// recordProbe folds one health observation into the node's streaks and
// moves it out of or back into the ring at the configured thresholds.
func (rt *Router) recordProbe(ns *nodeState, ok bool) {
	if ok {
		rt.recordSuccess(ns)
	} else {
		rt.recordFailure(ns)
	}
}

// recordFailure counts one failed probe or proxy transport error. At
// EjectAfter consecutive failures the node leaves the ring: its keys — and
// only its keys — flow to their ring successors until it rejoins.
func (rt *Router) recordFailure(ns *nodeState) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ns.consecOKs = 0
	ns.consecFails++
	if ns.alive && ns.consecFails >= rt.opts.EjectAfter {
		ns.alive = false
		rt.ring.Remove(ns.name)
		rt.met.ejects.Add(1)
	}
}

// recordSuccess counts one successful probe; RejoinAfter of them in a row
// restore an ejected node to the ring (re-adding reproduces its original
// key ownership exactly — membership is the ring's only state).
func (rt *Router) recordSuccess(ns *nodeState) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ns.consecFails = 0
	ns.consecOKs++
	if !ns.alive && ns.consecOKs >= rt.opts.RejoinAfter {
		ns.alive = true
		// Add cannot fail: the name was valid at NewRouter and is absent
		// from the ring while ejected.
		_ = rt.ring.Add(ns.name, ns.weight)
		rt.met.rejoins.Add(1)
	}
}

// candidates returns the failover sequence for a key under the current
// ring: the home node first, then up to Retries distinct ring successors.
// Empty when every node is ejected.
func (rt *Router) candidates(key string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Successors(key, rt.opts.Retries+1)
}

// Serve binds addr, serves the router until ctx is canceled, then shuts
// down gracefully, mirroring service.Serve. logf, when non-nil, receives
// one "listening on <addr>" line (how cmd/router reports a :0 port).
func Serve(ctx context.Context, addr string, opts Options, logf func(format string, args ...any)) error {
	rt, err := NewRouter(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	rt.Start(probeCtx)
	if logf != nil {
		logf("router listening on %s (%d nodes, vnodes=%d, retries=%d)",
			ln.Addr(), len(rt.nodes), rt.ring.Vnodes(), rt.opts.Retries)
	}
	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       rt.opts.RequestTimeout,
		WriteTimeout:      rt.opts.RequestTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() != nil {
		return <-done
	}
	return nil
}
