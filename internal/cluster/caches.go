package cluster

import (
	"sync"
	"sync/atomic"
)

// byteCache is a CLOCK-bounded string -> bytes cache, the same residency
// discipline as the service's response memo and the engine memo cache. The
// router runs two of them: the replay cache (content ID -> registration
// body, behind replay-on-miss) and the response memo (evaluate request
// body -> response body). Entries are immutable byte slices, so reads share
// without copying.
type byteCache struct {
	capacity int

	mu        sync.RWMutex
	byKey     map[string]int32 // key -> slot
	entries   []*byteEntry     // fixed slots; the CLOCK ring
	hand      int32
	evictions int64 // guarded by mu

	hits   atomic.Int64
	misses atomic.Int64
}

type byteEntry struct {
	key string
	val []byte      // immutable once inserted
	ref atomic.Bool // CLOCK reference bit
}

func newByteCache(capacity int) *byteCache {
	return &byteCache{
		capacity: capacity,
		byKey:    make(map[string]int32, capacity),
		entries:  make([]*byteEntry, 0, capacity),
	}
}

// get returns the cached value for key. The returned slice is shared and
// must not be mutated.
func (c *byteCache) get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slot, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e := c.entries[slot]
	e.ref.Store(true)
	c.hits.Add(1)
	return e.val, true
}

// put stores val under key, copying it (callers pass request-scoped
// buffers). A concurrent first-fill wins so repeat reads are byte-stable.
func (c *byteCache) put(key string, val []byte) {
	owned := make([]byte, len(val))
	copy(owned, val)
	ent := &byteEntry{key: key, val: owned}
	ent.ref.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, ent)
		c.byKey[key] = int32(len(c.entries) - 1)
		return
	}
	// CLOCK sweep: clear reference bits until an unreferenced slot turns up;
	// two revolutions guarantee a victim (nothing pins these entries).
	for {
		victim := c.hand
		cand := c.entries[victim]
		c.hand = (c.hand + 1) % int32(len(c.entries))
		if cand.ref.CompareAndSwap(true, false) {
			continue
		}
		delete(c.byKey, cand.key)
		c.entries[victim] = ent
		c.byKey[key] = victim
		c.evictions++
		return
	}
}

// cacheMetrics is a consistent point-in-time snapshot (Entries and
// Evictions read under one lock acquisition, so their sum is monotone
// across scrapes — the same contract the service caches keep).
type cacheMetrics struct {
	Hits, Misses, Evictions, Entries int64
	Capacity                         int
}

func (c *byteCache) metrics() cacheMetrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return cacheMetrics{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions,
		Entries:   int64(len(c.entries)),
		Capacity:  c.capacity,
	}
}
