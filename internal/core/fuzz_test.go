package core_test

// Native fuzz target cross-checking the exact period backends: fuzz bytes
// decode into a small timed instance (every byte string decodes into a
// valid one, so no corpus entry is wasted on parse failures) and Karp,
// Howard, the production solver paths and — on the overlap model — the
// Theorem 1 polynomial algorithm must agree exactly. A seeded corpus lives
// in testdata/fuzz/FuzzPeriodBackends; CI runs a short -fuzz smoke on top
// of the regression replay that plain `go test` performs.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// fuzzReader doles out bytes, padding with zeros once the input runs dry —
// decoding never fails, it only gets less interesting.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// decodeFuzzInstance turns arbitrary bytes into a small valid instance:
// 2..4 stages, replication 1..3, operation times 1..16 (shape shared with
// the differential harness via buildInstance).
func decodeFuzzInstance(data []byte) *model.Instance {
	r := &fuzzReader{data: data}
	n := 2 + int(r.next())%3
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + int(r.next())%3
	}
	return buildInstance(reps, func() rat.Rat { return rat.FromInt(1 + int64(r.next())%16) })
}

func FuzzPeriodBackends(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("replicated-workflow-period"))
	f.Add([]byte{2, 3, 3, 3, 3, 15, 1, 15, 1, 15, 1, 15, 1, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst := decodeFuzzInstance(data)
		var karpWS, howardWS cycles.Workspace
		for _, cm := range model.Models() {
			net, err := tpn.Build(inst, cm)
			if err != nil {
				t.Fatalf("%v: build: %v", cm, err)
			}
			sys := net.System()
			karp, err := karpWS.MaxRatio(sys)
			if err != nil {
				t.Fatalf("%v: karp: %v", cm, err)
			}
			how, err := howardWS.MaxRatioHoward(sys)
			if err != nil {
				t.Fatalf("%v: howard: %v", cm, err)
			}
			if !how.Ratio.Equal(karp.Ratio) {
				t.Fatalf("%v: howard %v != karp %v (reps %v)", cm, how.Ratio, karp.Ratio, inst.ReplicationCounts())
			}
			for name, res := range map[string]cycles.Result{"karp": karp, "howard": how} {
				if wr, err := sys.CycleRatio(res.Cycle); err != nil || !wr.Equal(res.Ratio) {
					t.Fatalf("%v: %s witness ratio %v (err %v) != %v", cm, name, wr, err, res.Ratio)
				}
			}
			period := karp.Ratio.DivInt(inst.PathCount())
			for _, b := range []cycles.Backend{cycles.BackendKarp, cycles.BackendHoward} {
				s := core.NewSolver()
				s.Backend = b
				res, err := s.Period(inst, cm)
				if err != nil {
					t.Fatalf("%v: solver(%v): %v", cm, b, err)
				}
				if !res.Period.Equal(period) {
					t.Fatalf("%v: solver(%v) %v != %v", cm, b, res.Period, period)
				}
			}
			if cm == model.Overlap {
				poly, err := core.PeriodOverlapPoly(inst)
				if err != nil {
					t.Fatalf("poly: %v", err)
				}
				if !poly.Period.Equal(period) {
					t.Fatalf("poly %v != tpn %v", poly.Period, period)
				}
			}
		}
	})
}
