package core_test

// Native fuzz target cross-checking the exact period backends: fuzz bytes
// decode into a small timed instance (every byte string decodes into a
// valid one, so no corpus entry is wasted on parse failures) and Karp,
// Howard, the production solver paths and — on the overlap model — the
// Theorem 1 polynomial algorithm must agree exactly; the float-screening
// sweep's enclosure must contain the shared answer, with a scale-mode byte
// steering weights into float64 overflow and denormal territory. A seeded
// corpus lives in testdata/fuzz/FuzzPeriodBackends; CI runs a short -fuzz
// smoke on top of the regression replay that plain `go test` performs.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// fuzzReader doles out bytes, padding with zeros once the input runs dry —
// decoding never fails, it only gets less interesting.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// powRat10 returns 10^exp as an exact rational (exp >= 0).
func powRat10(exp int) rat.Rat {
	x := rat.One()
	ten := rat.FromInt(10)
	for i := 0; i < exp; i++ {
		x = x.Mul(ten)
	}
	return x
}

// decodeFuzzInstance turns arbitrary bytes into a small valid instance:
// 2..4 stages, replication 1..3, operation times 1..16 (shape shared with
// the differential harness via buildInstance). A scale-mode byte then
// multiplies every operation time by 1, 10^340 or 10^-315: the extreme
// scales are invisible to the exact engines (big rationals) but push the
// float-screening sweep into overflow and denormal territory, where it must
// poison or widen its enclosure — never exclude the exact period.
func decodeFuzzInstance(data []byte) *model.Instance {
	r := &fuzzReader{data: data}
	n := 2 + int(r.next())%3
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + int(r.next())%3
	}
	scale := rat.One()
	switch int(r.next()) % 3 {
	case 1:
		scale = powRat10(340) // sums overflow float64: the sweep must poison
	case 2:
		scale = rat.One().Div(powRat10(315)) // denormal range: eta term territory
	}
	return buildInstance(reps, func() rat.Rat { return rat.FromInt(1 + int64(r.next())%16).Mul(scale) })
}

func FuzzPeriodBackends(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("replicated-workflow-period"))
	f.Add([]byte{2, 3, 3, 3, 3, 15, 1, 15, 1, 15, 1, 15, 1, 15})
	// Extreme-scale seeds for the float-screening tier: overflow-scale
	// weights (scale mode 1) must poison the float sweep, denormal-scale
	// weights (mode 2) exercise the additive eta term of its error bound.
	f.Add([]byte{0, 0, 0, 1, 5, 12, 3, 7, 9})
	f.Add([]byte{1, 2, 0, 1, 2, 15, 4, 8, 2, 6, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst := decodeFuzzInstance(data)
		var karpWS, howardWS cycles.Workspace
		for _, cm := range model.Models() {
			net, err := tpn.Build(inst, cm)
			if err != nil {
				t.Fatalf("%v: build: %v", cm, err)
			}
			sys := net.System()
			karp, err := karpWS.MaxRatio(sys)
			if err != nil {
				t.Fatalf("%v: karp: %v", cm, err)
			}
			how, err := howardWS.MaxRatioHoward(sys)
			if err != nil {
				t.Fatalf("%v: howard: %v", cm, err)
			}
			if !how.Ratio.Equal(karp.Ratio) {
				t.Fatalf("%v: howard %v != karp %v (reps %v)", cm, how.Ratio, karp.Ratio, inst.ReplicationCounts())
			}
			for name, res := range map[string]cycles.Result{"karp": karp, "howard": how} {
				if wr, err := sys.CycleRatio(res.Cycle); err != nil || !wr.Equal(res.Ratio) {
					t.Fatalf("%v: %s witness ratio %v (err %v) != %v", cm, name, wr, err, res.Ratio)
				}
			}
			period := karp.Ratio.DivInt(inst.PathCount())
			for _, b := range []cycles.Backend{cycles.BackendKarp, cycles.BackendHoward, cycles.BackendFloatScreen} {
				s := core.NewSolver()
				s.Backend = b
				res, err := s.Period(inst, cm)
				if err != nil {
					t.Fatalf("%v: solver(%v): %v", cm, b, err)
				}
				if !res.Period.Equal(period) {
					t.Fatalf("%v: solver(%v) %v != %v", cm, b, res.Period, period)
				}
			}
			// Float-screening sweep: on any scale — unit, overflow, denormal
			// — the enclosure must contain the exact period (poisoned
			// enclosures contain vacuously, which is exactly the semantics
			// screening relies on).
			fr, err := core.NewSolver().PeriodApprox(inst, cm)
			if err != nil {
				t.Fatalf("%v: approx errored where exact engines succeeded: %v", cm, err)
			}
			if !fr.Contains(period) {
				t.Fatalf("%v: float enclosure [%g ± %g] excludes exact period %v (reps %v)",
					cm, fr.Ratio, fr.Err, period, inst.ReplicationCounts())
			}
			if cm == model.Overlap {
				poly, err := core.PeriodOverlapPoly(inst)
				if err != nil {
					t.Fatalf("poly: %v", err)
				}
				if !poly.Period.Equal(period) {
					t.Fatalf("poly %v != tpn %v", poly.Period, period)
				}
			}
		}
	})
}
