package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/rat"
)

// exampleBLike rebuilds Example B locally (avoiding an import cycle with
// examplesdata, which imports core in its tests).
func exampleBLike(t *testing.T) *model.Instance {
	t.Helper()
	ri := rat.FromInt
	inst, err := model.FromTimes(
		[][]rat.Rat{
			{ri(100), ri(100), ri(100)},
			{ri(100), ri(100), ri(100), ri(100)},
		},
		[][][]rat.Rat{{
			{ri(1000), ri(100), ri(100), ri(1000)},
			{ri(100), ri(100), ri(1000), ri(1000)},
			{ri(1000), ri(1000), ri(1000), ri(100)},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestAnalyzeExampleB(t *testing.T) {
	inst := exampleBLike(t)
	rep, err := Analyze(inst, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Period.Equal(rat.New(3500, 12)) {
		t.Fatalf("period = %v", rep.Period)
	}
	if rep.HasCriticalResource() {
		t.Fatal("Example B has no critical resource")
	}
	// Every resource's utilization is strictly below 1.
	for _, rr := range rep.Resources {
		if !rr.Utilization.Less(rat.One()) {
			t.Errorf("resource %s utilization %v >= 1", rr.Name, rr.Utilization)
		}
		if rr.Slack.Sign() <= 0 {
			t.Errorf("resource %s has non-positive slack %v", rr.Name, rr.Slack)
		}
		if rr.StreamPeriod.Sign() <= 0 {
			t.Errorf("resource %s stream period %v", rr.Name, rr.StreamPeriod)
		}
		// Stream periods cannot exceed the system period.
		if rep.Period.Less(rr.StreamPeriod) {
			t.Errorf("resource %s streams slower than the system period", rr.Name)
		}
	}
	// The single communication column (col 1) carries the critical cycle.
	if len(rep.CriticalCycleColumns) != 1 || rep.CriticalCycleColumns[0] != 1 {
		t.Errorf("critical columns = %v, want [1]", rep.CriticalCycleColumns)
	}
	// The critical cycle must involve P2 (the Mct resource) among others.
	found := false
	for _, p := range rep.CriticalCycleResources {
		if p == "P2" {
			found = true
		}
	}
	if !found {
		t.Errorf("critical cycle resources %v missing P2", rep.CriticalCycleResources)
	}
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"NO critical resource", "stream period", "P2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeCriticalColumnsOverlapSingle(t *testing.T) {
	// Property: under the overlap model the critical cycle stays within one
	// column (Subsection 4.1).
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 25)
		rep, err := Analyze(inst, model.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.CriticalCycleColumns) != 1 {
			t.Fatalf("trial %d: overlap critical cycle spans columns %v",
				trial, rep.CriticalCycleColumns)
		}
	}
}

func TestAnalyzeStreamDecoupling(t *testing.T) {
	// Two replicas of the last stage with very different speeds: the fast
	// replica's stream period must be strictly smaller than the system's
	// (structural decoupling of sibling output streams).
	ri := rat.FromInt
	inst, err := model.FromTimes(
		[][]rat.Rat{{ri(1)}, {ri(100), ri(2)}},
		[][][]rat.Rat{{{ri(1), ri(1)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(inst, model.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	// System period: slow replica computes 100 every 2 data sets => 50.
	if !rep.Period.Equal(ri(50)) {
		t.Fatalf("period = %v, want 50", rep.Period)
	}
	var slow, fast ResourceReport
	for _, rr := range rep.Resources {
		switch {
		case rr.Stage == 1 && rr.Replica == 0:
			slow = rr
		case rr.Stage == 1 && rr.Replica == 1:
			fast = rr
		}
	}
	if !slow.StreamPeriod.Equal(ri(50)) {
		t.Errorf("slow replica stream period = %v, want 50", slow.StreamPeriod)
	}
	if !fast.StreamPeriod.Less(slow.StreamPeriod) {
		t.Errorf("fast replica stream period %v not below slow %v",
			fast.StreamPeriod, slow.StreamPeriod)
	}
}

func TestAnalyzeStrictCrossColumn(t *testing.T) {
	// Example-A-like strict analysis: the critical cycle may span multiple
	// columns, and Analyze must report the net stats of the strict build.
	rng := rand.New(rand.NewSource(57))
	inst := randomInstance(rng, 3, 3, 1, 20)
	rep, err := Analyze(inst, model.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NetStats.Transitions == 0 || rep.NetStats.Tokens == 0 {
		t.Fatalf("net stats empty: %+v", rep.NetStats)
	}
	if len(rep.CriticalCycleResources) == 0 {
		t.Fatal("no critical cycle resources reported")
	}
}
