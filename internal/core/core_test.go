package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rat"
)

// randomInstance draws a random timed instance: n stages with replication in
// [1, maxRep], operation times uniform integers in [lo, hi].
func randomInstance(rng *rand.Rand, n, maxRep int, lo, hi int64) *model.Instance {
	m := make([]int, n)
	for i := range m {
		m[i] = 1 + rng.Intn(maxRep)
	}
	return randomInstanceWithReps(rng, m, lo, hi)
}

func randomInstanceWithReps(rng *rand.Rand, reps []int, lo, hi int64) *model.Instance {
	draw := func() rat.Rat { return rat.FromInt(lo + rng.Int63n(hi-lo+1)) }
	n := len(reps)
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}

func TestNoReplicationPeriodEqualsMct(t *testing.T) {
	// Section 2: without replication the period is the critical resource's
	// cycle-time, for both models.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(4), 1, 1, 50)
		for _, cm := range model.Models() {
			res, err := Period(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Period.Equal(res.Mct) {
				t.Fatalf("trial %d %v: period %v != Mct %v without replication",
					trial, cm, res.Period, res.Mct)
			}
			if !res.HasCriticalResource() {
				t.Fatalf("trial %d %v: no critical resource without replication", trial, cm)
			}
		}
	}
}

func TestPeriodAtLeastMct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 30)
		for _, cm := range model.Models() {
			res, err := Period(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			if res.Period.Less(res.Mct) {
				t.Fatalf("trial %d %v: period %v < Mct %v", trial, cm, res.Period, res.Mct)
			}
		}
	}
}

func TestOverlapPolyMatchesTPN(t *testing.T) {
	// Theorem 1's polynomial algorithm must agree exactly with the general
	// unfolded-TPN computation on the overlap model.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 4, 1, 40)
		poly, err := PeriodOverlapPoly(inst)
		if err != nil {
			t.Fatal(err)
		}
		full, err := PeriodTPN(inst, model.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		if !poly.Period.Equal(full.Period) {
			t.Fatalf("trial %d: poly period %v != TPN period %v (reps %v)",
				trial, poly.Period, full.Period, inst.ReplicationCounts())
		}
	}
}

func TestQuickOverlapPolyMatchesTPN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 2+rng.Intn(4), 3, 1, 25)
		poly, err := PeriodOverlapPoly(inst)
		if err != nil {
			return false
		}
		full, err := PeriodTPN(inst, model.Overlap)
		if err != nil {
			return false
		}
		return poly.Period.Equal(full.Period)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStrictAtLeastOverlap(t *testing.T) {
	// Serializing a processor's three activities can only slow it down:
	// P_strict >= P_overlap on every instance.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 30)
		ov, err := Period(inst, model.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Period(inst, model.Strict)
		if err != nil {
			t.Fatal(err)
		}
		if st.Period.Less(ov.Period) {
			t.Fatalf("trial %d: strict period %v < overlap period %v", trial, st.Period, ov.Period)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Period: rat.FromInt(4), Mct: rat.FromInt(4)}
	if !r.HasCriticalResource() || !r.Gap().IsZero() {
		t.Error("critical resource not detected")
	}
	if got := r.Throughput(); !got.Equal(rat.New(1, 4)) {
		t.Errorf("throughput = %v", got)
	}
	r = Result{Period: rat.FromInt(5), Mct: rat.FromInt(4)}
	if r.HasCriticalResource() {
		t.Error("phantom critical resource")
	}
	if got := r.Gap(); !got.Equal(rat.New(1, 4)) {
		t.Errorf("gap = %v", got)
	}
}

func TestCommPatternNumbersExampleC(t *testing.T) {
	// Example C of the paper: stages replicated on 5, 21, 27 and 11
	// processors. For the F1 column (21 senders, 27 receivers):
	// p = gcd(21,27) = 3, u = 7, v = 9, m = 10395,
	// c = m / lcm(21,27) = 10395/189 = 55 patterns per component.
	rng := rand.New(rand.NewSource(23))
	inst := randomInstanceWithReps(rng, []int{5, 21, 27, 11}, 1, 10)
	pats := CommPatterns(inst)
	if len(pats) != 3 {
		t.Fatalf("CommPatterns returned %d entries", len(pats))
	}
	p1 := pats[1]
	if p1.P != 3 || p1.U != 7 || p1.V != 9 || p1.LCM != 189 || p1.C != 55 {
		t.Fatalf("F1 pattern = %+v, want p=3 u=7 v=9 lcm=189 c=55", p1)
	}
	if inst.PathCount() != 10395 {
		t.Fatalf("PathCount = %d, want 10395", inst.PathCount())
	}
	// The polynomial algorithm must handle this instance even though the
	// unfolded TPN would have 10395 rows.
	if _, err := PeriodOverlapPoly(inst); err != nil {
		t.Fatal(err)
	}
}

func TestComponentDecompositionCoversAllPairs(t *testing.T) {
	// Every (sender, receiver) pair that actually occurs in the round-robin
	// (i.e. pairs congruent mod gcd) appears in exactly one component.
	rng := rand.New(rand.NewSource(29))
	inst := randomInstanceWithReps(rng, []int{6, 4}, 1, 10)
	pat := NewCommPattern(inst, 0)
	if pat.P != 2 || pat.U != 3 || pat.V != 2 {
		t.Fatalf("pattern = %+v", pat)
	}
	seen := map[[2]int]int{}
	for g := 0; g < pat.P; g++ {
		for a := 0; a < pat.U; a++ {
			for b := 0; b < pat.V; b++ {
				pair := [2]int{pat.SenderIndex(g, a), pat.ReceiverIndex(g, b)}
				seen[pair]++
			}
		}
	}
	// Pairs that occur: j mod 6 = a, j mod 4 = b solvable iff a ≡ b mod 2.
	m := inst.PathCount()
	for j := int64(0); j < m; j++ {
		pair := [2]int{int(j % 6), int(j % 4)}
		if seen[pair] != 1 {
			t.Fatalf("pair %v seen %d times", pair, seen[pair])
		}
	}
}
