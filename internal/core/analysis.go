package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// ResourceReport extends the cycle-time decomposition of one processor with
// steady-state information derived from the timed Petri net.
type ResourceReport struct {
	model.Resource
	// Utilization is Cexec / Period: the asymptotic fraction of time the
	// processor's busiest component (overlap) or the whole processor
	// (strict) is occupied. Strictly below 1 on every resource iff the
	// schedule has no critical resource.
	Utilization rat.Rat
	// Slack is Period - Cexec (idle time per data set on the resource).
	Slack rat.Rat
	// StreamPeriod is the per-data-set period of the replica's own
	// completion stream: its transitions' asymptotic firing interval divided
	// by m. Fast replicas in a decoupled part of the net can stream faster
	// than the system period.
	StreamPeriod rat.Rat
}

// Report is the full analysis of a mapping under one model.
type Report struct {
	Result
	Resources []ResourceReport
	// CriticalCycleResources names the processors whose operations lie on a
	// critical cycle of the unfolded net (the cycle that dictates the
	// period). For overlap mappings the critical cycle stays within one TPN
	// column (one stage's computation or one file's transmission); for
	// strict mappings it may weave through several (Figure 8).
	CriticalCycleResources []string
	// CriticalCycleColumns lists the distinct TPN columns the critical
	// cycle traverses (even = computation of stage col/2, odd = transfer of
	// file (col-1)/2).
	CriticalCycleColumns []int
	// NetStats summarizes the unfolded net.
	NetStats petri.Stats
}

// Analyze computes the full report. It always unfolds the TPN (subject to
// tpn.MaxRows), since the critical-cycle witness and per-stream rates come
// from the net; the period itself is cross-checked against the polynomial
// algorithm for the overlap model.
func Analyze(inst *model.Instance, cm model.CommModel) (*Report, error) {
	net, err := tpn.Build(inst, cm)
	if err != nil {
		return nil, err
	}
	res, err := periodFromNet(inst, cm, net)
	if err != nil {
		return nil, err
	}
	if cm == model.Overlap {
		poly, err := PeriodOverlapPoly(inst)
		if err != nil {
			return nil, err
		}
		if !poly.Period.Equal(res.Period) {
			return nil, fmt.Errorf("core: internal disagreement: poly %v vs tpn %v", poly.Period, res.Period)
		}
	}
	rep := &Report{Result: res, NetStats: net.Stats()}

	// Critical cycle witness -> resources and columns.
	sys := net.System()
	crit, err := sys.MaxRatio()
	if err != nil {
		return nil, err
	}
	procSet := map[string]bool{}
	colSet := map[int]bool{}
	for _, ei := range crit.Cycle {
		tr := net.Transitions[sys.G.Edges[ei].From]
		colSet[tr.Col] = true
		procSet[fmt.Sprintf("P%d", tr.Proc)] = true
		if tr.Dst >= 0 {
			procSet[fmt.Sprintf("P%d", tr.Dst)] = true
		}
	}
	for p := range procSet {
		rep.CriticalCycleResources = append(rep.CriticalCycleResources, p)
	}
	sort.Strings(rep.CriticalCycleResources)
	for c := range colSet {
		rep.CriticalCycleColumns = append(rep.CriticalCycleColumns, c)
	}
	sort.Ints(rep.CriticalCycleColumns)

	// Per-transition asymptotic rates -> per-replica stream periods.
	rates, err := sys.VertexRates()
	if err != nil {
		return nil, err
	}
	streamOf := map[int]rat.Rat{} // global proc id -> max rate over its transitions
	for ti, tr := range net.Transitions {
		if tr.Kind != petri.KindCompute {
			continue
		}
		cur := streamOf[tr.Proc]
		streamOf[tr.Proc] = rat.Max(cur, rates[ti])
	}
	m := inst.PathCount()
	for _, r := range inst.Resources() {
		rr := ResourceReport{Resource: r}
		rr.Utilization = r.Cexec(cm).Div(res.Period)
		rr.Slack = res.Period.Sub(r.Cexec(cm))
		rr.StreamPeriod = streamOf[r.Proc].DivInt(m)
		rep.Resources = append(rep.Resources, rr)
	}
	return rep, nil
}

// Write renders the report as a human-readable table.
func (r *Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "model %v: period %v (%.4f), throughput %.6f, Mct %v\n",
		r.Model, r.Period, r.Period.Float64(), r.Throughput().Float64(), r.Mct)
	if r.HasCriticalResource() {
		fmt.Fprintln(w, "critical resource exists (period = Mct)")
	} else {
		fmt.Fprintf(w, "NO critical resource: gap %.2f%% — every resource idles each period\n",
			r.Gap().Float64()*100)
	}
	fmt.Fprintf(w, "critical cycle: resources %v, TPN columns %v\n",
		r.CriticalCycleResources, r.CriticalCycleColumns)
	fmt.Fprintf(w, "unfolded net: %d transitions, %d places, %d tokens (%d rows)\n",
		r.NetStats.Transitions, r.NetStats.Places, r.NetStats.Tokens, r.NetStats.Rows)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "proc\tstage\tCexec\tutilization\tslack\tstream period")
	for _, rr := range r.Resources {
		fmt.Fprintf(tw, "%s\tS%d\t%.3f\t%.1f%%\t%.3f\t%.3f\n",
			rr.Name, rr.Stage, rr.Cexec(r.Model).Float64(),
			rr.Utilization.Float64()*100, rr.Slack.Float64(), rr.StreamPeriod.Float64())
	}
	return tw.Flush()
}
