package core_test

// Property tests of the float-screening tier at the period level: the
// enclosure returned by Solver.PeriodApprox must contain the exact period,
// and — the property every screened search relies on — a candidate whose
// exact period is better than (or tied with) a reference must NEVER satisfy
// the screening predicate AtLeast(reference). Near-tie instances, whose
// periods differ by less than 1e-12 relatively, are the adversarial case:
// a plain float comparison misranks them routinely, so they all must land
// inside the ambiguity band and fall back to exact evaluation.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rat"
)

// nearTiePair builds two instances whose exact periods differ by delta
// absolute on a base of roughly `scale` — a relative gap of delta/scale.
// Shape: 2 stages, no replication, one heavy first stage; under both models
// the heavy stage dominates the period, so the gap between the pair's
// periods is exactly delta/pathcount.
func nearTiePair(scale, delta int64) (a, b *model.Instance) {
	build := func(heavy int64) *model.Instance {
		return buildInstance([]int{1, 1}, func() func() rat.Rat {
			times := []rat.Rat{rat.FromInt(heavy), rat.FromInt(7), rat.FromInt(3)}
			k := 0
			return func() rat.Rat {
				t := times[k%len(times)]
				k++
				return t
			}
		}())
	}
	return build(scale), build(scale + delta)
}

// TestNearTieScreeningFallsBackToExact adversarially generates pairs whose
// exact periods differ by < 1e-12 relative (including exact ties) and
// asserts the two screening guarantees on both communication models:
//
//  1. no silent misranking — if the screen would discard A against B's
//     period (AtLeast true), then A's exact period really is >= B's;
//  2. the ambiguity band catches every near tie — a candidate whose exact
//     period is better than or equal to the reference always survives the
//     screen, so the exact fallback fires and decides the winner.
func TestNearTieScreeningFallsBackToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	solver := core.NewSolver()
	for trial := 0; trial < 200; trial++ {
		// Bases up to ~3e15 with deltas 0 or 1: relative gaps of 0 or
		// ~3e-16..1e-13, all far below 1e-12 — indistinguishable to a naive
		// float comparison, inside the rigorous bound's ambiguity band.
		scale := (1 + rng.Int63n(300)) * 1_000_000_000_0 * (1 + rng.Int63n(30))
		delta := rng.Int63n(2)
		instA, instB := nearTiePair(scale, delta)
		for _, cm := range model.Models() {
			pa, err := solver.Period(instA, cm)
			if err != nil {
				t.Fatalf("trial %d %v: exact A: %v", trial, cm, err)
			}
			pb, err := solver.Period(instB, cm)
			if err != nil {
				t.Fatalf("trial %d %v: exact B: %v", trial, cm, err)
			}
			fa, err := solver.PeriodApprox(instA, cm)
			if err != nil {
				t.Fatalf("trial %d %v: approx A: %v", trial, cm, err)
			}
			if !fa.Contains(pa.Period) {
				t.Fatalf("trial %d %v: enclosure [%g ± %g] misses exact %v",
					trial, cm, fa.Ratio, fa.Err, pa.Period)
			}
			// Guarantee 1: a positive screen is always exactly justified.
			if fa.AtLeast(pb.Period) && pa.Period.Less(pb.Period) {
				t.Fatalf("trial %d %v: silent misranking — screen discarded A (exact %v) against B (exact %v)",
					trial, cm, pa.Period, pb.Period)
			}
			// Guarantee 2: better-or-tied candidates always survive to the
			// exact fallback. With gaps this small that means every A here.
			if !pb.Period.Less(pa.Period) && fa.AtLeast(pb.Period) {
				t.Fatalf("trial %d %v: near tie escaped the ambiguity band (delta %d on scale %d)",
					trial, cm, delta, scale)
			}
		}
	}
}

// TestApproxAgreesWithExactOnRandomFamilies: PeriodApprox's error behaviour
// and containment on the same generator the differential harness uses, as a
// quick standalone property (the full backend matrix runs in
// TestPeriodBackendsDifferential).
func TestApproxAgreesWithExactOnRandomFamilies(t *testing.T) {
	solver := core.NewSolver()
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		inst := genInstance(rng, 4, 4)
		for _, cm := range model.Models() {
			exact, exactErr := solver.Period(inst, cm)
			fr, approxErr := solver.PeriodApprox(inst, cm)
			if (exactErr == nil) != (approxErr == nil) {
				t.Fatalf("seed %d %v: error parity broken: exact %v, approx %v", seed, cm, exactErr, approxErr)
			}
			if exactErr != nil {
				continue
			}
			if !fr.Contains(exact.Period) {
				t.Fatalf("seed %d %v: enclosure [%g ± %g] misses %v", seed, cm, fr.Ratio, fr.Err, exact.Period)
			}
		}
	}
}
