package core_test

// Differential backend testing: on randomly generated instance families the
// period must be identical — as an exact rational — no matter which engine
// computes it. This extends the generated-family pattern of
// internal/tpn/properties_test.go from "poly vs TPN" to the full backend
// matrix: Howard policy iteration, token contraction + Karp, the Theorem 1
// polynomial algorithm, the max-plus spectral radius, and the exact TPN
// unrolling all run on every instance, and every witness cycle must attain
// the ratio its engine reports.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/model"
	"repro/internal/mpa"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// buildInstance assembles a timed instance with the given replication
// vector, drawing every operation time from draw. It is the one generator
// behind both the differential harness (rng-backed draw) and the fuzz
// target (byte-stream-backed draw), so the instance shape lives in a single
// place.
func buildInstance(reps []int, draw func() rat.Rat) *model.Instance {
	n := len(reps)
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err) // unreachable: the shape is valid by construction
	}
	return inst
}

// genInstance draws a random timed instance: 2..maxStages stages,
// replication 1..maxRep, integer operation times.
func genInstance(rng *rand.Rand, maxStages, maxRep int) *model.Instance {
	n := 2 + rng.Intn(maxStages-1)
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + rng.Intn(maxRep)
	}
	return buildInstance(reps, func() rat.Rat { return rat.FromInt(1 + rng.Int63n(30)) })
}

// TestPeriodBackendsDifferential is the randomized differential harness:
// 220 generated instance families, both communication models, every engine.
func TestPeriodBackendsDifferential(t *testing.T) {
	const families = 220
	var karpWS, howardWS cycles.Workspace
	for seed := int64(0); seed < families; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := genInstance(rng, 4, 4)
		for _, cm := range model.Models() {
			net, err := tpn.Build(inst, cm)
			if err != nil {
				t.Fatalf("seed %d %v: build: %v", seed, cm, err)
			}
			m := inst.PathCount()
			sys := net.System()

			// Contraction + Karp, with witness certification.
			karp, err := karpWS.MaxRatio(sys)
			if err != nil {
				t.Fatalf("seed %d %v: karp: %v", seed, cm, err)
			}
			if wr, err := sys.CycleRatio(karp.Cycle); err != nil || !wr.Equal(karp.Ratio) {
				t.Fatalf("seed %d %v: karp witness ratio %v (err %v) != %v", seed, cm, wr, err, karp.Ratio)
			}

			// Howard policy iteration, with witness certification.
			how, err := howardWS.MaxRatioHoward(sys)
			if err != nil {
				t.Fatalf("seed %d %v: howard: %v", seed, cm, err)
			}
			if !how.Ratio.Equal(karp.Ratio) {
				t.Fatalf("seed %d %v: howard %v != karp %v", seed, cm, how.Ratio, karp.Ratio)
			}
			if wr, err := sys.CycleRatio(how.Cycle); err != nil || !wr.Equal(how.Ratio) {
				t.Fatalf("seed %d %v: howard witness ratio %v (err %v) != %v", seed, cm, wr, err, how.Ratio)
			}

			period := karp.Ratio.DivInt(m)

			// The production solver path under every explicit backend —
			// float-screen included: its exact results must be bit-identical
			// (screening is a caller protocol, never a different answer).
			for _, b := range []cycles.Backend{cycles.BackendAuto, cycles.BackendKarp, cycles.BackendHoward, cycles.BackendFloatScreen} {
				s := core.NewSolver()
				s.Backend = b
				res, err := s.Period(inst, cm)
				if err != nil {
					t.Fatalf("seed %d %v: solver(%v): %v", seed, cm, b, err)
				}
				if !res.Period.Equal(period) {
					t.Fatalf("seed %d %v: solver(%v) period %v != %v", seed, cm, b, res.Period, period)
				}
			}

			// The float-screening sweep: its rigorous enclosure must contain
			// the exact period on every family the exact engines agree on.
			{
				s := core.NewSolver()
				fr, err := s.PeriodApprox(inst, cm)
				if err != nil {
					t.Fatalf("seed %d %v: approx: %v", seed, cm, err)
				}
				if !fr.Contains(period) {
					t.Fatalf("seed %d %v: float enclosure [%g ± %g] misses exact period %v",
						seed, cm, fr.Ratio, fr.Err, period)
				}
				if !fr.Finite() {
					t.Fatalf("seed %d %v: poisoned enclosure on a well-scaled family", seed, cm)
				}
			}

			// Theorem 1 polynomial algorithm (overlap only).
			if cm == model.Overlap {
				poly, err := core.PeriodOverlapPoly(inst)
				if err != nil {
					t.Fatalf("seed %d: poly: %v", seed, err)
				}
				if !poly.Period.Equal(period) {
					t.Fatalf("seed %d: poly %v != tpn %v", seed, poly.Period, period)
				}
			}

			// Max-plus spectral radius, through both backends.
			for _, b := range []cycles.Backend{cycles.BackendKarp, cycles.BackendHoward} {
				eig, err := mpa.CycleTimeBackend(net, b)
				if err != nil {
					t.Fatalf("seed %d %v: mpa(%v): %v", seed, cm, b, err)
				}
				if !eig.Equal(karp.Ratio) {
					t.Fatalf("seed %d %v: mpa(%v) %v != %v", seed, cm, b, eig, karp.Ratio)
				}
			}

			// Exact unrolling of the net: the measured steady-state firing
			// interval equals the analytic ratio.
			measured, err := net.MeasuredPeriod(int(10*m)+20, int(2*m))
			if err != nil {
				t.Fatalf("seed %d %v: unroll: %v", seed, cm, err)
			}
			if !measured.Equal(karp.Ratio) {
				t.Fatalf("seed %d %v: unrolled %v != analytic %v", seed, cm, measured, karp.Ratio)
			}
		}
	}
}
