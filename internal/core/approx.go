package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/model"
)

// PeriodApprox computes a float64 enclosure of the instance's period under
// the given model: a cycles.FloatResult whose interval [Ratio−Err,
// Ratio+Err] provably contains the exact Period that Solver.Period returns
// for the same arguments. It mirrors Period's algorithm choice — the
// polynomial pattern-graph method for OVERLAP, the unfolded TPN for STRICT —
// and its error behaviour: it fails exactly when the exact path fails, so a
// screening caller never diverges from the exact run on the error path.
//
// The enclosure is the screening tier's contract, not a fast approximate
// Period: callers discard a candidate only when its enclosure proves it
// cannot beat an exact incumbent (FloatResult.AtLeast), and evaluate
// everything else exactly. A poisoned enclosure (Err=+Inf, produced by
// overflow-scale operation times) screens nothing and costs one wasted float
// sweep — degraded speed, never a degraded answer.
func (s *Solver) PeriodApprox(inst *model.Instance, m model.CommModel) (cycles.FloatResult, error) {
	if m == model.Overlap {
		return s.periodOverlapApprox(inst)
	}
	return s.periodTPNApprox(inst, m)
}

// periodTPNApprox is PeriodTPN with the float sweep in place of the exact
// backend: same builder, same unfolded net, same system — only the final
// critical-cycle arithmetic runs in float64 with error tracking.
func (s *Solver) periodTPNApprox(inst *model.Instance, m model.CommModel) (cycles.FloatResult, error) {
	s.builder.MaxRows = s.MaxRows
	net, err := s.builder.Build(inst, m)
	if err != nil {
		return cycles.FloatResult{}, err
	}
	crit, err := s.ws.ApproxMaxRatio(net.SystemInto(&s.sys))
	if err != nil {
		return cycles.FloatResult{}, fmt.Errorf("core: critical cycle: %w", err)
	}
	return crit.DivInt(inst.PathCount()), nil
}

// periodOverlapApprox is PeriodOverlapPoly in float64: the running maximum
// over computation columns and pattern-graph ratios becomes a MaxFloat merge
// of enclosures, each division carrying its bound along.
func (s *Solver) periodOverlapApprox(inst *model.Instance) (cycles.FloatResult, error) {
	n := inst.NumStages()
	period := cycles.FloatResult{} // exact zero, like rat.Zero()
	for i := 0; i < n; i++ {
		mi := int64(inst.Replication(i))
		for a := 0; a < inst.Replication(i); a++ {
			period = cycles.MaxFloat(period, cycles.FloatOf(inst.CompTime(i, a)).DivInt(mi))
		}
	}
	for i := 0; i < n-1; i++ {
		pat := NewCommPattern(inst, i)
		for g := 0; g < pat.P; g++ {
			res, err := s.ws.ApproxMaxRatio(pat.PatternGraphInto(g, &s.sys))
			if err != nil {
				return cycles.FloatResult{}, fmt.Errorf("core: file F%d component %d: %w", i, g, err)
			}
			period = cycles.MaxFloat(period, res.DivInt(pat.LCM))
		}
	}
	return period, nil
}
