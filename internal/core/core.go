// Package core implements the paper's primary contribution: computing the
// steady-state period (inverse throughput) of a replicated workflow mapping
// on a heterogeneous platform, for both communication models.
//
// Two routes are provided:
//
//   - PeriodTPN: the general method of Section 4 — build the full unfolded
//     timed Petri net (m rows) and compute its maximum cycle ratio; the
//     per-data-set period is that ratio divided by m (m data sets complete
//     per TPN period).
//
//   - PeriodOverlapPoly: the polynomial algorithm of Theorem 1 for the
//     OVERLAP ONE-PORT model. Critical cycles live inside single columns of
//     the TPN; computation columns contribute closed-form ratios and each
//     communication column decomposes into gcd(m_i, m_{i+1}) connected
//     components whose critical-cycle weight equals that of a single u×v
//     pattern graph G′ — polynomial even when m = lcm(m_i) is astronomically
//     large (Example C: m = 10395, but every G′ is 7×9).
package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/model"
	"repro/internal/petri"
	"repro/internal/rat"
)

// Method identifies which algorithm produced a Result.
type Method string

const (
	// MethodTPN is the general unfolded-TPN critical-cycle computation.
	MethodTPN Method = "tpn"
	// MethodPoly is the Theorem 1 polynomial algorithm (overlap only).
	MethodPoly Method = "poly"
)

// Result is the outcome of a period computation.
type Result struct {
	Model model.CommModel
	// Period is the steady-state interval between consecutive data-set
	// completions (per data set; the TPN-level period is Period * PathCount).
	Period rat.Rat
	// Mct is the maximum resource cycle-time, the lower bound of Section 2.
	Mct rat.Rat
	// PathCount is m = lcm(m_0..m_(n-1)).
	PathCount int64
	Method    Method
}

// Throughput returns 1/Period, the number of data sets per time unit.
func (r Result) Throughput() rat.Rat {
	return rat.One().Div(r.Period)
}

// HasCriticalResource reports whether some hardware resource is busy during
// the whole period (Period == Mct). When false, every resource idles at some
// point of the steady state — the surprising situation of Sections 4-5.
func (r Result) HasCriticalResource() bool {
	return r.Period.Equal(r.Mct)
}

// Gap returns (Period - Mct) / Mct, the relative distance between the period
// and its lower bound (0 when a critical resource exists).
func (r Result) Gap() rat.Rat {
	return r.Period.Sub(r.Mct).Div(r.Mct)
}

// Period computes the period of the instance under the given model,
// choosing the best algorithm: the polynomial algorithm for OVERLAP, the
// general TPN method for STRICT (for which polynomiality is open, Section 6).
// It is a thin wrapper over a pooled package-default Solver; hot loops
// should hold their own Solver instead.
func Period(inst *model.Instance, m model.CommModel) (Result, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.Period(inst, m)
}

// PeriodTPN computes the period by building the full unfolded TPN and
// extracting its critical cycle. Works for both models; cost grows with
// m = lcm(m_i) and the builder rejects instances beyond tpn.MaxRows (use a
// Solver with a custom MaxRows to raise the cap).
func PeriodTPN(inst *model.Instance, m model.CommModel) (Result, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.PeriodTPN(inst, m)
}

func periodFromNet(inst *model.Instance, m model.CommModel, net *petri.Net) (Result, error) {
	crit, err := net.MaxCycleRatio()
	if err != nil {
		return Result{}, fmt.Errorf("core: critical cycle: %w", err)
	}
	pc := inst.PathCount()
	return Result{
		Model:     m,
		Period:    crit.Ratio.DivInt(pc),
		Mct:       inst.Mct(m),
		PathCount: pc,
		Method:    MethodTPN,
	}, nil
}

// PeriodOverlapPoly computes the OVERLAP ONE-PORT period with the
// polynomial algorithm of Theorem 1:
//
//	P = max(  max_{i,a}  comp(i,a) / m_i ,
//	          max_i max_{component g}  maxCycleRatio(G'_{i,g}) / lcm(m_i, m_{i+1}) )
//
// The first term covers computation columns (each processor's round-robin
// circuit), the second communication columns via the pattern graphs.
func PeriodOverlapPoly(inst *model.Instance) (Result, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.PeriodOverlapPoly(inst)
}

// CommPattern carries the gcd/lcm decomposition of one communication column
// (the transmission of file F_i), following the proof of Theorem 1 and
// Example C of the paper.
type CommPattern struct {
	Inst *model.Instance
	File int // i: the file F_i, sent by S_i's replicas to S_(i+1)'s
	// P = gcd(m_i, m_{i+1}): number of connected components of the sub-TPN.
	P int
	// U = m_i/P senders and V = m_{i+1}/P receivers per component.
	U, V int
	// LCM = lcm(m_i, m_{i+1}).
	LCM int64
	// C = m / LCM: number of u×v patterns chained in each component of the
	// full unfolded sub-TPN.
	C int64
}

// NewCommPattern computes the decomposition for file i.
func NewCommPattern(inst *model.Instance, i int) CommPattern {
	mi := int64(inst.Replication(i))
	mj := int64(inst.Replication(i + 1))
	p := rat.GCDInt(mi, mj)
	l := rat.LCMInt(mi, mj)
	return CommPattern{
		Inst: inst,
		File: i,
		P:    int(p),
		U:    int(mi / p),
		V:    int(mj / p),
		LCM:  l,
		C:    inst.PathCount() / l,
	}
}

// SenderIndex returns the stage-i replica index of component-local sender α.
// Component g contains exactly the senders a ≡ g (mod P) — a sender can only
// ever talk to receivers congruent to it modulo gcd (Chinese remainders on
// the round-robin index j).
func (cp CommPattern) SenderIndex(g, alpha int) int { return g + alpha*cp.P }

// ReceiverIndex returns the stage-(i+1) replica index of component-local
// receiver β.
func (cp CommPattern) ReceiverIndex(g, beta int) int { return g + beta*cp.P }

// PatternGraph builds the u×v pattern graph G′ of component g as a
// cycle-ratio system, exactly as in the proof of Theorem 1: grid vertices
// x_{αβ} with token-free forward places α→α+1 (the receiver's round-robin)
// and β→β+1 (the sender's round-robin), plus single-token wrap places
// x_{(u-1)β}→x_{0β} and x_{α(v-1)}→x_{α0}.
//
// Grid coordinates are round-robin *positions*, not raw replica indices:
// successive receptions of a receiver advance the sender replica index by
// m_{i+1} (i.e. by v component-locally), so grid row α corresponds to the
// component sender v·α mod u, and grid column β to the component receiver
// u·β mod v (u and v are coprime, so both relabelings are bijections).
//
// The per-data-set period candidate of the component is
// maxCycleRatio(G′)/lcm(m_i, m_{i+1}): a closed cycle with x full β-sweeps
// and y full α-sweeps crosses x+y wrap tokens while the corresponding cycle
// of the full unfolded sub-TPN advances (x+y)·lcm rows, i.e. (x+y)·lcm/m of
// its single-token resource circuits, and the TPN-level ratio divides by m
// to give the per-data-set period.
func (cp CommPattern) PatternGraph(g int) *cycles.System {
	return cp.PatternGraphInto(g, cycles.NewSystem(cp.U*cp.V))
}

// PatternGraphInto builds the pattern graph of component g into s, reusing
// the system's storage (the Solver's polynomial path calls this once per
// component with one shared system).
func (cp CommPattern) PatternGraphInto(g int, s *cycles.System) *cycles.System {
	u, v := cp.U, cp.V
	s.Reset(u * v)
	id := func(alpha, beta int) int { return alpha*v + beta }
	for alpha := 0; alpha < u; alpha++ {
		a := (v * alpha) % u // component-local sender of grid row α
		for beta := 0; beta < v; beta++ {
			b := (u * beta) % v // component-local receiver of grid column β
			cost := cp.Inst.CommTime(cp.File, cp.SenderIndex(g, a), cp.ReceiverIndex(g, b))
			// Receiver's round-robin: next reception of receiver β.
			nextA, tokA := alpha+1, 0
			if nextA == u {
				nextA, tokA = 0, 1
			}
			s.AddEdge(id(alpha, beta), id(nextA, beta), cost, tokA)
			// Sender's round-robin: next transmission of sender α.
			nextB, tokB := beta+1, 0
			if nextB == v {
				nextB, tokB = 0, 1
			}
			s.AddEdge(id(alpha, beta), id(alpha, nextB), cost, tokB)
		}
	}
	return s
}

// ComponentPeriodCandidate returns the per-data-set period candidate of
// component g: maxCycleRatio(PatternGraph(g)) / lcm(m_i, m_{i+1}).
func (cp CommPattern) ComponentPeriodCandidate(g int) (rat.Rat, error) {
	res, err := cp.PatternGraph(g).MaxRatio()
	if err != nil {
		return rat.Rat{}, err
	}
	return res.Ratio.DivInt(cp.LCM), nil
}

// CommPatterns returns the decomposition of every communication column;
// handy for reproducing the Example C numbers of the proof of Theorem 1.
func CommPatterns(inst *model.Instance) []CommPattern {
	out := make([]CommPattern, 0, inst.NumStages()-1)
	for i := 0; i < inst.NumStages()-1; i++ {
		out = append(out, NewCommPattern(inst, i))
	}
	return out
}
