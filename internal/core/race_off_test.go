//go:build !race

package core

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under -race because instrumentation allocates.
const raceEnabled = false
