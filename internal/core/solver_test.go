package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/tpn"
)

// replicationFamilies are the structured replication-vector families the
// generated cross-check draws from, alongside fully random vectors: coprime
// pairs (the pattern graph is as large as a component gets), equal
// replication (components collapse to 1x1 patterns), nested divisors and
// three-stage mixes — each family stresses a different branch of the
// Theorem 1 decomposition.
var replicationFamilies = [][]int{
	{2, 3}, {3, 4}, {4, 5}, {5, 3},
	{2, 2}, {3, 3}, {4, 4},
	{2, 4}, {3, 6}, {2, 6},
	{2, 3, 2}, {2, 2, 3}, {3, 2, 4}, {1, 4, 2},
	{2, 3, 4}, {4, 3, 2},
}

// TestPolyMatchesTPNGeneratedFamilies extends the Example A/B/C cross-check
// to ~200 generated instances: on every one, the Theorem 1 polynomial
// algorithm and the unfolded-TPN critical cycle must agree exactly — one
// side computed by a single reused Solver, the other by the free-function
// path, so the test simultaneously pins solver-reuse correctness.
func TestPolyMatchesTPNGeneratedFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	solver := NewSolver()
	trials := 0
	check := func(inst *model.Instance) {
		t.Helper()
		trials++
		poly, err := solver.PeriodOverlapPoly(inst)
		if err != nil {
			t.Fatalf("trial %d (reps %v): poly: %v", trials, inst.ReplicationCounts(), err)
		}
		full, err := PeriodTPN(inst, model.Overlap)
		if err != nil {
			t.Fatalf("trial %d (reps %v): tpn: %v", trials, inst.ReplicationCounts(), err)
		}
		if !poly.Period.Equal(full.Period) {
			t.Fatalf("trial %d (reps %v): poly period %v != TPN period %v",
				trials, inst.ReplicationCounts(), poly.Period, full.Period)
		}
	}
	// 10 draws per structured family (160 instances)...
	for _, reps := range replicationFamilies {
		for k := 0; k < 10; k++ {
			check(randomInstanceWithReps(rng, reps, 1, 40))
		}
	}
	// ...plus 40 fully random instances.
	for k := 0; k < 40; k++ {
		check(randomInstance(rng, 2+rng.Intn(3), 4, 1, 40))
	}
	if trials < 200 {
		t.Fatalf("only %d trials, want >= 200", trials)
	}
}

// TestSolverMatchesFreeFunctions interleaves models and instances on one
// reused Solver and requires bit-identical results to the free functions:
// reuse must never leak state between evaluations.
func TestSolverMatchesFreeFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solver := NewSolver()
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(3), 3, 1, 30)
		for _, cm := range model.Models() {
			got, err := solver.Period(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Period(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d %v: solver %+v != free %+v", trial, cm, got, want)
			}
		}
	}
}

// TestSolverMaxRows exercises the configurable row cap: below the
// instance's path count the solver must refuse with ErrTooLarge carrying
// the configured cap, at or above it the computation must succeed.
func TestSolverMaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst := randomInstanceWithReps(rng, []int{2, 3}, 1, 20) // m = 6
	s := NewSolver()
	s.MaxRows = 5
	_, err := s.PeriodTPN(inst, model.Strict)
	var tooLarge tpn.ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("cap 5 on m=6: got err %v, want ErrTooLarge", err)
	}
	if tooLarge.Rows != 6 || tooLarge.Cap != 5 {
		t.Fatalf("ErrTooLarge = %+v, want Rows 6 Cap 5", tooLarge)
	}
	s.MaxRows = 6
	got, err := s.PeriodTPN(inst, model.Strict)
	if err != nil {
		t.Fatalf("cap 6 on m=6: %v", err)
	}
	want, err := PeriodTPN(inst, model.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Period.Equal(want.Period) {
		t.Fatalf("capped solver period %v != default %v", got.Period, want.Period)
	}
}

// TestSolverReuseCutsAllocations is the acceptance gate of the
// zero-allocation refactor: a reused Solver must allocate at least 10x less
// per strict-model evaluation than a fresh solver context per call. The
// fresh-context baseline already benefits from the label-free builder and
// arena workspace, so the gate is conservative — the pre-refactor
// free-function path was another ~8x above it (see EXPERIMENTS.md).
func TestSolverReuseCutsAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	rng := rand.New(rand.NewSource(2009))
	inst := randomInstanceWithReps(rng, []int{4, 6}, 5, 15) // m = 12
	fresh := testing.AllocsPerRun(50, func() {
		if _, err := NewSolver().PeriodTPN(inst, model.Strict); err != nil {
			t.Fatal(err)
		}
	})
	solver := NewSolver()
	if _, err := solver.PeriodTPN(inst, model.Strict); err != nil {
		t.Fatal(err) // warm up the scratch once
	}
	reused := testing.AllocsPerRun(50, func() {
		if _, err := solver.PeriodTPN(inst, model.Strict); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: fresh solver %.0f, reused solver %.0f", fresh, reused)
	if reused*10 > fresh {
		t.Fatalf("reused solver allocates %.0f/op vs fresh %.0f/op: less than 10x improvement", reused, fresh)
	}
}
