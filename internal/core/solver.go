package core

import (
	"fmt"
	"sync"

	"repro/internal/cycles"
	"repro/internal/model"
	"repro/internal/rat"
	"repro/internal/tpn"
)

// Solver is a stateful period-computation context: it owns every piece of
// scratch one evaluation thread needs — a tpn.Builder constructing unfolded
// nets into reused label-free storage, a cycles.System rebuilt in place, and
// a cycles.Workspace holding the contraction and Karp tables. The first
// evaluation pays the allocations; subsequent evaluations of similar size
// run with near-zero allocation churn, which is what makes the batch
// engine's fan-out of thousands of strict-model evaluations cheap.
//
// Results are bit-identical to the free functions (Period, PeriodTPN,
// PeriodOverlapPoly): the Solver changes where scratch lives, not what is
// computed.
//
// A Solver is NOT safe for concurrent use. Give each goroutine its own
// (the engine's worker pool does), or use the free functions, which draw
// from a pool of package-default solvers.
type Solver struct {
	// MaxRows caps the unfolded-TPN size for Period/PeriodTPN; 0 means the
	// package default (tpn.MaxRows = 20000). Raising it lets campaigns
	// evaluate instances with larger lcm(m_i) exactly — memory is reused
	// across evaluations, so the cost of a large net is paid once per
	// solver, not once per call.
	MaxRows int

	// Backend selects the exact maximum-cycle-ratio engine for every
	// critical-cycle computation this solver performs (the unfolded net and
	// the Theorem 1 pattern graphs alike). The zero value is
	// cycles.BackendAuto, which routes by token-edge share: Karp's
	// contracted dynamic program where token edges are sparse (every
	// unfolded TPN of this repository), Howard policy iteration where they
	// are plentiful and contraction would degenerate. All backends are
	// exact, so the Result never depends on the choice — only the running
	// time does.
	Backend cycles.Backend

	builder tpn.Builder
	ws      cycles.Workspace
	sys     cycles.System
}

// NewSolver returns a ready Solver with the default row cap. The zero value
// is also ready.
func NewSolver() *Solver { return &Solver{} }

// Period computes the period of the instance under the given model,
// choosing the best algorithm: the polynomial algorithm for OVERLAP, the
// general TPN method for STRICT (for which polynomiality is open, Section 6).
func (s *Solver) Period(inst *model.Instance, m model.CommModel) (Result, error) {
	if m == model.Overlap {
		return s.PeriodOverlapPoly(inst)
	}
	return s.PeriodTPN(inst, m)
}

// PeriodTPN computes the period by building the full unfolded TPN into the
// solver's reused storage and extracting its critical cycle. Works for both
// models; cost grows with m = lcm(m_i) and the builder rejects instances
// beyond the solver's row cap.
func (s *Solver) PeriodTPN(inst *model.Instance, m model.CommModel) (Result, error) {
	s.builder.MaxRows = s.MaxRows
	net, err := s.builder.Build(inst, m)
	if err != nil {
		return Result{}, err
	}
	crit, err := s.ws.MaxRatioBackend(net.SystemInto(&s.sys), s.Backend)
	if err != nil {
		return Result{}, fmt.Errorf("core: critical cycle: %w", err)
	}
	pc := inst.PathCount()
	return Result{
		Model:     m,
		Period:    crit.Ratio.DivInt(pc),
		Mct:       inst.Mct(m),
		PathCount: pc,
		Method:    MethodTPN,
	}, nil
}

// PeriodOverlapPoly computes the OVERLAP ONE-PORT period with the
// polynomial algorithm of Theorem 1, building every pattern graph into the
// solver's reused system storage. See the free PeriodOverlapPoly for the
// algorithm.
func (s *Solver) PeriodOverlapPoly(inst *model.Instance) (Result, error) {
	n := inst.NumStages()
	period := rat.Zero()
	// Computation columns.
	for i := 0; i < n; i++ {
		mi := int64(inst.Replication(i))
		for a := 0; a < inst.Replication(i); a++ {
			period = rat.Max(period, inst.CompTime(i, a).DivInt(mi))
		}
	}
	// Communication columns.
	for i := 0; i < n-1; i++ {
		pat := NewCommPattern(inst, i)
		for g := 0; g < pat.P; g++ {
			res, err := s.ws.MaxRatioBackend(pat.PatternGraphInto(g, &s.sys), s.Backend)
			if err != nil {
				return Result{}, fmt.Errorf("core: file F%d component %d: %w", i, g, err)
			}
			period = rat.Max(period, res.Ratio.DivInt(pat.LCM))
		}
	}
	return Result{
		Model:     model.Overlap,
		Period:    period,
		Mct:       inst.Mct(model.Overlap),
		PathCount: inst.PathCount(),
		Method:    MethodPoly,
	}, nil
}

// solverPool backs the package-level free functions: each call borrows a
// default-capped Solver, so even the free-function path amortizes scratch
// across calls while staying safe for concurrent callers.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}
