package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/store"
)

// registerInstance POSTs an instance to /v1/instances and returns the
// response.
func registerInstance(t *testing.T, baseURL string, inst *model.Instance) InstanceResponse {
	t.Helper()
	var resp InstanceResponse
	postJSON(t, baseURL+"/v1/instances", InstanceRequest{Instance: inst}, &resp)
	return resp
}

func TestInstanceRegistrationLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	rng := rand.New(rand.NewSource(41))
	inst := randomTimedInstance(t, rng, []int{2, 3})

	reg := registerInstance(t, ts.URL, inst)
	if len(reg.ID) != 64 || reg.ID != store.ContentID(inst) {
		t.Fatalf("ID %q is not the content address %q", reg.ID, store.ContentID(inst))
	}
	if !reg.Created || reg.CanonicalKey == "" || reg.Stages != inst.NumStages() || reg.PathCount != inst.PathCount() {
		t.Fatalf("registration response %+v", reg)
	}

	// Idempotent: the same content registers under the same ID, no new entry.
	again := registerInstance(t, ts.URL, inst)
	if again.ID != reg.ID || again.Created {
		t.Fatalf("re-registration: %+v, want same ID with created=false", again)
	}

	// GET echoes content whose address is the ID itself.
	var got InstanceResponse
	resp, err := http.Get(ts.URL + "/v1/instances/" + reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Instance == nil || store.ContentID(got.Instance) != reg.ID {
		t.Fatalf("GET returned content that does not hash back to its own ID")
	}

	// Registrations and by-ID lookups count under separate metric keys —
	// write volume and read volume are different capacity signals.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m struct {
		Requests map[string]int64 `json:"requests"`
		Errors   map[string]int64 `json:"errors"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if m.Requests["instancesPost"] != 2 || m.Requests["instancesGet"] != 1 {
		t.Fatalf("instances counters post=%d get=%d, want 2/1 (all: %v)",
			m.Requests["instancesPost"], m.Requests["instancesGet"], m.Requests)
	}
	if _, ok := m.Requests["instances"]; ok {
		t.Fatalf("legacy shared \"instances\" counter still present: %v", m.Requests)
	}
	if m.Errors["instancesPost"] != 0 || m.Errors["instancesGet"] != 0 {
		t.Fatalf("unexpected instances errors: %v", m.Errors)
	}
}

// TestUnknownInstanceID404 is the by-ID protocol's error contract: an
// unregistered (or evicted) ID answers 404 with a structured error on every
// endpoint that accepts one.
func TestUnknownInstanceID404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	const bogus = "0000000000000000000000000000000000000000000000000000000000000000"

	checkBody := func(t *testing.T, body []byte, status int) {
		t.Helper()
		if status != http.StatusNotFound {
			t.Fatalf("status %d, want 404 (body %s)", status, body)
		}
		var e struct {
			Error ErrorInfo `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error.Message, "unknown instance ID") {
			t.Fatalf("error body %s (decode err %v)", body, err)
		}
		if e.Error.Code != CodeUnknownInstance {
			t.Fatalf("error code %q, want %q (body %s)", e.Error.Code, CodeUnknownInstance, body)
		}
	}

	t.Run("evaluate", func(t *testing.T) {
		body, status := postJSONStatus(t, ts.URL+"/v1/evaluate", EvaluateRequest{InstanceID: bogus, Model: "overlap"})
		checkBody(t, body, status)
	})
	t.Run("batch", func(t *testing.T) {
		body, status := postJSONStatus(t, ts.URL+"/v1/batch", BatchRequest{Tasks: []BatchTask{{InstanceID: bogus, Model: "strict"}}})
		checkBody(t, body, status)
	})
	t.Run("get", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/instances/" + bogus)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error ErrorInfo `json:"error"`
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET status %d, want 404", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error.Message, "unknown instance ID") {
			t.Fatalf("GET error body %q (decode err %v)", e.Error.Message, err)
		}
	})
	t.Run("both forms rejected", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		inst := randomTimedInstance(t, rng, []int{2, 2})
		body, status := postJSONStatus(t, ts.URL+"/v1/evaluate", EvaluateRequest{Instance: inst, InstanceID: bogus, Model: "overlap"})
		if status != http.StatusBadRequest || !strings.Contains(string(body), "mutually exclusive") {
			t.Fatalf("status %d body %s, want 400 mutually exclusive", status, body)
		}
	})
}

// TestByIDResponsesByteIdenticalOnTable2Grid is the protocol-equivalence
// bar: for every Table 2 task, the /v1/evaluate body answered for a by-ID
// request must be byte-for-byte the body answered for the inline form — on
// the memoized path (same server, repeat ask) and on the fresh path (a
// separate server seeing each form first).
func TestByIDResponsesByteIdenticalOnTable2Grid(t *testing.T) {
	perRow := 2
	if testing.Short() {
		perRow = 1
	}
	tasks := table2Tasks(t, perRow)
	_, inlineFirst := newTestServer(t, Options{Workers: 2})
	_, byIDFirst := newTestServer(t, Options{Workers: 2})
	for i, task := range tasks {
		req := EvaluateRequest{Instance: task.Inst, Model: task.Model.String()}
		idReq := EvaluateRequest{InstanceID: store.ContentID(task.Inst), Model: task.Model.String()}

		// Server 1 solves the inline form first; the by-ID repeat is served
		// from the response memo.
		registerInstance(t, inlineFirst.URL, task.Inst)
		inlineBody, status := postJSONStatus(t, inlineFirst.URL+"/v1/evaluate", req)
		if status != http.StatusOK {
			t.Fatalf("task %d inline: status %d body %s", i, status, inlineBody)
		}
		byIDBody, status := postJSONStatus(t, inlineFirst.URL+"/v1/evaluate", idReq)
		if status != http.StatusOK {
			t.Fatalf("task %d by-ID: status %d body %s", i, status, byIDBody)
		}
		if string(inlineBody) != string(byIDBody) {
			t.Fatalf("task %d: by-ID body differs from inline body on the memo path\ninline: %s\nby-ID:  %s", i, inlineBody, byIDBody)
		}

		// Server 2 solves the by-ID form first (fresh encode), then the
		// inline form (memo hit); both must still match server 1's bytes.
		registerInstance(t, byIDFirst.URL, task.Inst)
		freshByID, status := postJSONStatus(t, byIDFirst.URL+"/v1/evaluate", idReq)
		if status != http.StatusOK {
			t.Fatalf("task %d fresh by-ID: status %d body %s", i, status, freshByID)
		}
		memoInline, status := postJSONStatus(t, byIDFirst.URL+"/v1/evaluate", req)
		if status != http.StatusOK {
			t.Fatalf("task %d memo inline: status %d body %s", i, status, memoInline)
		}
		if string(freshByID) != string(inlineBody) || string(memoInline) != string(inlineBody) {
			t.Fatalf("task %d: response bytes differ across request forms/servers", i)
		}
	}
}

// TestBatchByIDByteIdenticalToInline covers the batch form of the protocol
// equivalence: a tasks list referring to registered IDs answers exactly the
// bytes of the inline list.
func TestBatchByIDByteIdenticalToInline(t *testing.T) {
	tasks := table2Tasks(t, 1)
	if len(tasks) > 8 {
		tasks = tasks[:8]
	}
	_, ts := newTestServer(t, Options{Workers: 2})
	inline := BatchRequest{Tasks: make([]BatchTask, len(tasks))}
	byID := BatchRequest{Tasks: make([]BatchTask, len(tasks))}
	for i, task := range tasks {
		inline.Tasks[i] = BatchTask{Instance: task.Inst, Model: task.Model.String()}
		reg := registerInstance(t, ts.URL, task.Inst)
		byID.Tasks[i] = BatchTask{InstanceID: reg.ID, Model: task.Model.String()}
	}
	inlineBody, status := postJSONStatus(t, ts.URL+"/v1/batch", inline)
	if status != http.StatusOK {
		t.Fatalf("inline batch: status %d body %s", status, inlineBody)
	}
	byIDBody, status := postJSONStatus(t, ts.URL+"/v1/batch", byID)
	if status != http.StatusOK {
		t.Fatalf("by-ID batch: status %d body %s", status, byIDBody)
	}
	if string(inlineBody) != string(byIDBody) {
		t.Fatalf("batch bodies differ between forms\ninline: %s\nby-ID:  %s", inlineBody, byIDBody)
	}
}

// metricsSnapshot is the subset of /metrics these tests parse.
type metricsSnapshot struct {
	Cache map[string]struct {
		Hits, Misses, Evictions, Entries, Capacity int64
	} `json:"cache"`
	Store struct {
		Puts, Dedups, Resolves, Misses, Evictions, Entries, Pinned, Capacity int64
	} `json:"store"`
	RespMemo *struct {
		Hits, Misses, Evictions, Entries, Capacity int64
	} `json:"respMemo"`
}

func scrapeMetrics(t testing.TB, baseURL string) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return m
}

// TestStoreEvictionPinningDuringFlight drives the pinning contract through
// the serving stack: a store entry held on behalf of an in-flight request
// survives a registration storm that overruns the store many times over,
// and becomes evictable the moment the flight releases it.
func TestStoreEvictionPinningDuringFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, StoreEntries: 2})
	rng := rand.New(rand.NewSource(43))
	inst := randomTimedInstance(t, rng, []int{2, 3})
	reg := registerInstance(t, ts.URL, inst)

	// Pin exactly as solveEndpoint does for a by-ID request in flight.
	ent, ok := s.Store().Resolve(reg.ID)
	if !ok {
		t.Fatal("registered entry did not resolve")
	}

	// Registration storm: 5x the store capacity of distinct instances.
	for i := 0; i < 10; i++ {
		registerInstance(t, ts.URL, randomTimedInstance(t, rng, []int{2, 3}))
	}
	if m := scrapeMetrics(t, ts.URL); m.Store.Pinned != 1 || m.Store.Evictions == 0 {
		t.Fatalf("store metrics %+v: want 1 pinned entry amid evictions", m.Store)
	}
	// The pinned entry still serves.
	var got EvaluateResponse
	postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}, &got)
	if got.Period == "" {
		t.Fatalf("pinned entry did not evaluate: %+v", got)
	}

	// Released, the same pressure evicts it and by-ID asks turn 404.
	ent.Release()
	for i := 0; i < 10; i++ {
		registerInstance(t, ts.URL, randomTimedInstance(t, rng, []int{2, 3}))
	}
	if _, status := postJSONStatus(t, ts.URL+"/v1/evaluate", EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}); status != http.StatusNotFound {
		t.Fatalf("evicted ID evaluated with status %d, want 404", status)
	}
	if m := scrapeMetrics(t, ts.URL); m.Store.Pinned != 0 {
		t.Fatalf("store metrics %+v: leaked pin", m.Store)
	}
}

// TestRespMemoServesRepeatHits checks the response memo end to end: the
// second identical ask is a memo hit on /metrics, and a server with the
// memo disabled still answers identical bytes.
func TestRespMemoServesRepeatHits(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, noMemo := newTestServer(t, Options{Workers: 1, RespCacheEntries: -1})
	rng := rand.New(rand.NewSource(44))
	inst := randomTimedInstance(t, rng, []int{3, 2})
	req := EvaluateRequest{Instance: inst, Model: "strict"}

	first, status := postJSONStatus(t, ts.URL+"/v1/evaluate", req)
	if status != http.StatusOK {
		t.Fatalf("first: status %d body %s", status, first)
	}
	second, status := postJSONStatus(t, ts.URL+"/v1/evaluate", req)
	if status != http.StatusOK || string(first) != string(second) {
		t.Fatalf("repeat: status %d, bytes identical=%v", status, string(first) == string(second))
	}
	m := scrapeMetrics(t, ts.URL)
	if m.RespMemo == nil || m.RespMemo.Hits == 0 || m.RespMemo.Entries == 0 {
		t.Fatalf("respMemo metrics %+v: want a recorded hit", m.RespMemo)
	}

	// Memo disabled: /metrics reports null, bytes still identical.
	plain1, _ := postJSONStatus(t, noMemo.URL+"/v1/evaluate", req)
	plain2, _ := postJSONStatus(t, noMemo.URL+"/v1/evaluate", req)
	if string(plain1) != string(first) || string(plain2) != string(first) {
		t.Fatal("memo-disabled server answered different bytes")
	}
	if m := scrapeMetrics(t, noMemo.URL); m.RespMemo != nil {
		t.Fatalf("respMemo on disabled server = %+v, want null", m.RespMemo)
	}
}

// TestMetricsMonotoneUnderConcurrentLoad is the /metrics consistency
// regression test (run under -race in CI): while workers hammer a server
// sized to evict constantly — small memo cache, small store — a scraper
// asserts that the derived totals every dashboard rates on (cache
// hits+misses, cache entries+evictions, store entries+evictions, respMemo
// hits+misses) never go backwards between scrapes.
func TestMetricsMonotoneUnderConcurrentLoad(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, CacheEntries: 8, StoreEntries: 8, RespCacheEntries: 8})
	rng := rand.New(rand.NewSource(45))
	insts := make([]*model.Instance, 32)
	ids := make([]string, len(insts))
	for i := range insts {
		insts[i] = randomTimedInstance(t, rng, []int{2, 2})
		ids[i] = store.ContentID(insts[i])
	}

	quit := make(chan struct{})
	scraped := make(chan struct{})
	var scrapeErr atomic.Value
	go func() {
		defer close(scraped)
		scrape := func() (metricsSnapshot, error) {
			var m metricsSnapshot
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				return m, err
			}
			defer resp.Body.Close()
			return m, json.NewDecoder(resp.Body).Decode(&m)
		}
		var lastCacheLookups, lastCacheInserts, lastStoreInserts, lastMemoLookups int64
		for i := 0; ; i++ {
			select {
			case <-quit:
				return
			default:
			}
			m, err := scrape()
			if err != nil {
				scrapeErr.Store(fmt.Sprintf("scrape %d: %v", i, err))
				return
			}
			var cacheLookups, cacheInserts int64
			for _, c := range m.Cache {
				cacheLookups += c.Hits + c.Misses
				cacheInserts += c.Entries + c.Evictions
			}
			storeInserts := m.Store.Entries + m.Store.Evictions
			var memoLookups int64
			if m.RespMemo != nil {
				memoLookups = m.RespMemo.Hits + m.RespMemo.Misses
			}
			check := func(name string, last *int64, now int64) bool {
				if now < *last {
					scrapeErr.Store(fmt.Sprintf("scrape %d: %s went backwards (%d -> %d)", i, name, *last, now))
					return false
				}
				*last = now
				return true
			}
			if !check("cache lookups", &lastCacheLookups, cacheLookups) ||
				!check("cache inserts", &lastCacheInserts, cacheInserts) ||
				!check("store inserts", &lastStoreInserts, storeInserts) ||
				!check("respMemo lookups", &lastMemoLookups, memoLookups) {
				return
			}
		}
	}()

	// post is the goroutine-safe request helper: workers must not Fatal, so
	// failures flow back through t.Errorf only.
	post := func(path string, v any) (int, bool) {
		payload, err := json.Marshal(v)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return 0, false
		}
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(string(payload)))
		if err != nil {
			t.Errorf("POST %s: %v", path, err)
			return 0, false
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
		return resp.StatusCode, true
	}
	var wg sync.WaitGroup
	deadline := time.Now().Add(2 * time.Second)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				k := (self*31 + i) % len(insts)
				var status int
				var ok bool
				switch i % 3 {
				case 0:
					if status, ok = post("/v1/instances", InstanceRequest{Instance: insts[k]}); !ok || status != http.StatusOK {
						t.Errorf("register: status %d", status)
						return
					}
					// The fresh registration may already be evicted by a
					// sibling's churn; 404 is a legal race outcome.
					status, ok = post("/v1/evaluate", EvaluateRequest{InstanceID: ids[k], Model: "overlap"})
				case 1:
					status, ok = post("/v1/evaluate", EvaluateRequest{Instance: insts[k], Model: "overlap"})
				case 2:
					status, ok = post("/v1/evaluate", EvaluateRequest{InstanceID: ids[k], Model: "strict"})
				}
				if !ok {
					return
				}
				if status != http.StatusOK && status != http.StatusNotFound {
					t.Errorf("unexpected status %d", status)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(quit)
	<-scraped
	if msg := scrapeErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	m := scrapeMetrics(t, ts.URL)
	if m.Store.Evictions == 0 {
		t.Fatalf("store metrics %+v: the storm was meant to evict", m.Store)
	}
	if m.Store.Pinned != 0 {
		t.Fatalf("store metrics %+v: leaked pins after load", m.Store)
	}
	if got := s.met.inFlight.Value(); got != 0 {
		t.Fatalf("inFlight gauge %d after load, want 0", got)
	}
}
