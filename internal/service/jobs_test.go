package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/platform"
)

// ---- helpers ----

// postRaw posts pre-encoded bytes and returns the response body and status:
// the byte-identity tests need control over the exact request bytes (the job
// ID prefix hashes them) and the exact response bytes.
func postRaw(t *testing.T, url string, body []byte) ([]byte, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// do issues an arbitrary-method request with no body.
func do(t *testing.T, method, url string) ([]byte, int) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// pollJob polls GET /v1/jobs/{id} until the predicate accepts the decoded
// job or the deadline passes.
func pollJob(t *testing.T, base, id string, accept func(Job) bool) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		body, status := do(t, http.MethodGet, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d body %s", id, status, body)
		}
		var j Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("poll %s: %v (body %s)", id, err, body)
		}
		if accept(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll %s: deadline passed in state %q", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func terminal(j Job) bool {
	switch j.State {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// submitJob posts a submission body and decodes the 202 answer.
func submitJob(t *testing.T, base string, body []byte) Job {
	t.Helper()
	resp, status := postRaw(t, base+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, resp)
	}
	var j Job
	if err := json.Unmarshal(resp, &j); err != nil {
		t.Fatalf("submit: %v (body %s)", err, resp)
	}
	return j
}

// mustMarshal is json.Marshal or bust.
func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---- lifecycle ----

// TestJobSubmitPollResult drives the async happy path end to end and pins
// the core API contract: deterministic IDs derived from the body hash, 202
// on submit, live status polling, and a terminal result byte-identical to
// what the synchronous endpoint answers for the same payload.
func TestJobSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	search := SearchRequest{
		Pipeline: mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50}),
		Platform: mustPlatform(t),
		Model:    "overlap",
		Algo:     "greedy",
	}
	body := mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &search})

	j := submitJob(t, ts.URL, body)
	wantID := JobKeyPrefix(body) + "-1"
	if j.ID != wantID || j.Kind != "search" || j.State != "pending" {
		t.Fatalf("submit answered %+v, want id %s kind search state pending", j, wantID)
	}
	if j.Progress == nil || j.Progress.Nodes == nil {
		t.Fatalf("search job without tree progress gauges: %+v", j)
	}

	fin := pollJob(t, ts.URL, j.ID, terminal)
	if fin.State != "done" {
		t.Fatalf("job finished %q (error %+v), want done", fin.State, fin.Error)
	}

	result, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result: status %d body %s", status, result)
	}
	syncBody, syncStatus := postRaw(t, ts.URL+"/v1/search", mustMarshal(t, search))
	if syncStatus != http.StatusOK {
		t.Fatalf("sync search: status %d body %s", syncStatus, syncBody)
	}
	if !bytes.Equal(result, syncBody) {
		t.Fatalf("async result differs from sync answer:\nasync: %s\nsync:  %s", result, syncBody)
	}

	// Same submission bytes again: the per-prefix counter mints -2.
	if j2 := submitJob(t, ts.URL, body); j2.ID != JobKeyPrefix(body)+"-2" {
		t.Fatalf("second submission minted %q, want %s-2", j2.ID, JobKeyPrefix(body))
	}
}

// TestJobResultDoubleFetch: the retained bytes answer every fetch
// identically — fetching is a read, not a take.
func TestJobResultDoubleFetch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := mustMarshal(t, JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{Seed: 3, Pairs: [][]int{{2, 3}}}})
	j := submitJob(t, ts.URL, body)
	pollJob(t, ts.URL, j.ID, terminal)
	first, s1 := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result")
	second, s2 := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("result fetches: status %d, %d", s1, s2)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat fetch differs:\n1: %s\n2: %s", first, second)
	}
	var sweep SweepResponse
	if err := json.Unmarshal(first, &sweep); err != nil || len(sweep.Points) != 1 {
		t.Fatalf("result not a sweep answer: %s (err %v)", first, err)
	}
}

// TestJobCancelMidSearch cancels a branch-and-bound job mid-walk. The exact
// search is anytime, so the canceled job must still answer a well-formed
// search response carrying its best incumbent with proven=false — the
// acceptance contract of DELETE /v1/jobs/{id}.
func TestJobCancelMidSearch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	search := longBnbSearch(t)
	body := mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &search})
	j := submitJob(t, ts.URL, body)

	// Wait until the walk has visibly advanced (live progress is part of
	// the contract), then cancel.
	running := pollJob(t, ts.URL, j.ID, func(j Job) bool {
		return terminal(j) || (j.Progress != nil && j.Progress.Nodes != nil && *j.Progress.Nodes > 0)
	})
	if terminal(running) {
		t.Fatalf("search finished before it could be canceled: %+v", running)
	}
	cancelBody, status := do(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID)
	if status != http.StatusOK {
		t.Fatalf("cancel: status %d body %s", status, cancelBody)
	}
	fin := pollJob(t, ts.URL, j.ID, terminal)
	if fin.State != "canceled" {
		t.Fatalf("state after cancel %q, want canceled", fin.State)
	}

	result, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("canceled bnb result: status %d body %s", status, result)
	}
	var got SearchResponse
	if err := json.Unmarshal(result, &got); err != nil {
		t.Fatalf("canceled bnb result not a search response: %v (body %s)", err, result)
	}
	if got.Proven == nil || *got.Proven {
		t.Fatalf("canceled search must answer proven=false, got %+v", got.Proven)
	}
	if len(got.Replicas) != len(search.Pipeline.Stages) || got.Period == "" {
		t.Fatalf("canceled search result malformed: %s", result)
	}
	// Progress must have been reported and retained.
	if fin.Progress == nil || fin.Progress.Nodes == nil || *fin.Progress.Nodes == 0 {
		t.Fatalf("canceled job lost its progress: %+v", fin.Progress)
	}
}

// mustPlatformN is a wider uniform platform for the jobs that must run
// long enough to be observed and canceled mid-walk.
func mustPlatformN(n int) *platform.Platform {
	return platform.Uniform(n, 100, 100)
}

// longBnbSearch is a branch-and-bound search whose tree is far too large to
// exhaust within a test run (minutes uncanceled): 14 stages on 56 uniform
// processors. The tests that need a job to still be running — cancel
// mid-walk, capacity push-back, result-before-terminal — submit this and
// rely on cooperative cancellation to end it promptly.
func longBnbSearch(t *testing.T) SearchRequest {
	t.Helper()
	work := make([]int64, 14)
	files := make([]int64, 13)
	for i := range work {
		work[i] = int64(100 + 37*i)
	}
	for i := range files {
		files[i] = int64(40 + 11*i)
	}
	return SearchRequest{
		Pipeline: mustPipeline(t, work, files),
		Platform: mustPlatformN(56),
		Model:    "overlap",
		Algo:     "bnb",
	}
}

// TestJobRegistryBoundedUnderOversubmission hammers the registry with 10x
// its total capacity and asserts the bound holds: residency never exceeds
// active cap + terminal ring, and the CLOCK hand recycled the overflow.
func TestJobRegistryBoundedUnderOversubmission(t *testing.T) {
	const (
		active   = 4
		entries  = 8
		capTotal = active + entries
	)
	s, ts := newTestServer(t, Options{Workers: 2, JobEntries: entries, JobActive: active})
	sweep := &SweepRequest{Seed: 1, Pairs: [][]int{{2, 2}}}
	for i := 0; i < 10*capTotal; i++ {
		// Distinct bodies (the seed varies) so every submission mints a
		// fresh prefix — the worst case for the registry maps.
		sweep.Seed = int64(i + 1)
		body := mustMarshal(t, JobSubmitRequest{Kind: "sweep", Sweep: sweep})
		resp, status := postRaw(t, ts.URL+"/v1/jobs", body)
		if status == http.StatusServiceUnavailable {
			// The active cap pushed back; that is the bound working. Let
			// the backlog drain and retry once.
			time.Sleep(20 * time.Millisecond)
			resp, status = postRaw(t, ts.URL+"/v1/jobs", body)
		}
		if status != http.StatusAccepted {
			t.Fatalf("submission %d: status %d body %s", i, status, resp)
		}
		var j Job
		if err := json.Unmarshal(resp, &j); err != nil {
			t.Fatal(err)
		}
		pollJob(t, ts.URL, j.ID, terminal)
		if m := s.jobs.Metrics(); m.Active+m.Terminal > capTotal {
			t.Fatalf("submission %d: %d resident jobs, cap %d", i, m.Active+m.Terminal, capTotal)
		}
	}
	m := s.jobs.Metrics()
	if m.Terminal > entries || m.Evictions == 0 {
		t.Fatalf("after 10x oversubmission: terminal %d (cap %d), evictions %d", m.Terminal, entries, m.Evictions)
	}
	var list JobListResponse
	body, status := do(t, http.MethodGet, ts.URL+"/v1/jobs")
	if status != http.StatusOK {
		t.Fatalf("list: status %d body %s", status, body)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) > capTotal {
		t.Fatalf("list holds %d jobs, cap %d", len(list.Jobs), capTotal)
	}
}

// TestJobCapacityRefusal: past the active cap, submission answers 503 with
// the job_capacity code — back-pressure, not an error in the request.
func TestJobCapacityRefusal(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, JobActive: 1})
	long := longBnbSearch(t)
	j := submitJob(t, ts.URL, mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &long}))

	quick := mustMarshal(t, JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{Seed: 1, Pairs: [][]int{{2, 2}}}})
	body, status := postRaw(t, ts.URL+"/v1/jobs", quick)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submission past the cap: status %d body %s", status, body)
	}
	var e struct {
		Error ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeJobCapacity {
		t.Fatalf("capacity refusal body %s (decode err %v), want code %q", body, err, CodeJobCapacity)
	}
	if _, status := do(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID); status != http.StatusOK {
		t.Fatalf("cancel of the long job: status %d", status)
	}
	pollJob(t, ts.URL, j.ID, terminal)
}

// TestJobUnknownID404: every item route answers 404 with the unknown_job
// code for an ID that was never minted.
func TestJobUnknownID404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope-1"},
		{http.MethodGet, "/v1/jobs/nope-1/result"},
		{http.MethodDelete, "/v1/jobs/nope-1"},
	} {
		body, status := do(t, c.method, ts.URL+c.path)
		if status != http.StatusNotFound {
			t.Fatalf("%s %s: status %d body %s", c.method, c.path, status, body)
		}
		var e struct {
			Error ErrorInfo `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeUnknownJob {
			t.Fatalf("%s %s: body %s (decode err %v), want code %q", c.method, c.path, body, err, CodeUnknownJob)
		}
	}
}

// TestJobResultBeforeTerminal: polling the result of a job that has not
// finished is a 409 conflict with the job_not_finished code.
func TestJobResultBeforeTerminal(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	long := longBnbSearch(t)
	body := mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &long})
	j := submitJob(t, ts.URL, body)
	resp, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusConflict {
		t.Fatalf("early result fetch: status %d body %s", status, resp)
	}
	var e struct {
		Error ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(resp, &e); err != nil || e.Error.Code != CodeJobNotFinished {
		t.Fatalf("early result body %s (decode err %v), want code %q", resp, err, CodeJobNotFinished)
	}
	if _, status := do(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID); status != http.StatusOK {
		t.Fatalf("cleanup cancel: status %d", status)
	}
	pollJob(t, ts.URL, j.ID, terminal)
}

// TestJobSubmitValidation: malformed submissions are refused synchronously
// with the legacy message texts, and no job is minted for them.
func TestJobSubmitValidation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"missing kind", `{}`, `missing "kind" (want "search" or "sweep")`},
		{"unknown kind", `{"kind":"dance"}`, `unknown job kind "dance"`},
		{"kind/payload mismatch", `{"kind":"search","sweep":{}}`, `kind "search" takes a "search" payload, not "sweep"`},
		{"missing payload", `{"kind":"sweep"}`, `missing "sweep" payload for kind "sweep"`},
		{"invalid search", `{"kind":"search","search":{"model":"overlap"}}`, `missing "pipeline" or "platform"`},
		{"trailing garbage", `{"kind":"sweep","sweep":{}} x`, "bad request body"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body, status := postRaw(t, ts.URL+"/v1/jobs", []byte(c.body))
			if status != http.StatusBadRequest {
				t.Fatalf("status %d body %s, want 400", status, body)
			}
			var e struct {
				Error ErrorInfo `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error.Message, c.want) {
				t.Fatalf("error body %s (decode err %v), want message containing %q", body, err, c.want)
			}
		})
	}
	if m := s.jobs.Metrics(); m.Submitted != 0 {
		t.Fatalf("invalid submissions minted %d jobs, want 0", m.Submitted)
	}
	// Method and path shape errors on the job routes.
	if body, status := do(t, http.MethodPut, ts.URL+"/v1/jobs"); status != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs: status %d body %s", status, body)
	}
	if body, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/a/b/c"); status != http.StatusBadRequest {
		t.Fatalf("GET /v1/jobs/a/b/c: status %d body %s", status, body)
	}
	if body, status := do(t, http.MethodPut, ts.URL+"/v1/jobs/a-1"); status != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs/a-1: status %d body %s", status, body)
	}
	if body, status := postRaw(t, ts.URL+"/v1/jobs/a-1/result", nil); status != http.StatusMethodNotAllowed {
		t.Fatalf("POST result: status %d body %s", status, body)
	}
}

// TestJobListFilters exercises GET /v1/jobs filtering and ordering.
func TestJobListFilters(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	sweepBody := mustMarshal(t, JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{Seed: 9, Pairs: [][]int{{2, 2}}}})
	j := submitJob(t, ts.URL, sweepBody)
	pollJob(t, ts.URL, j.ID, terminal)

	var list JobListResponse
	body, status := do(t, http.MethodGet, ts.URL+"/v1/jobs?kind=sweep&state=done")
	if status != http.StatusOK {
		t.Fatalf("filtered list: status %d body %s", status, body)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("filtered list %+v, want exactly %s", list.Jobs, j.ID)
	}
	if body, status := do(t, http.MethodGet, ts.URL+"/v1/jobs?kind=polka"); status != http.StatusBadRequest {
		t.Fatalf("bad kind filter: status %d body %s", status, body)
	}
	if body, status := do(t, http.MethodGet, ts.URL+"/v1/jobs?state=paused"); status != http.StatusBadRequest {
		t.Fatalf("bad state filter: status %d body %s", status, body)
	}
}

// TestSyncRequestIsPollableJob: the synchronous endpoints execute through
// the job engine, so after a sync /v1/sweep the job it ran under is listed,
// terminal, and its retained result is the exact body the sync client got.
func TestSyncRequestIsPollableJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	syncBody, status := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{Seed: 5, Pairs: [][]int{{2, 3}}}))
	if status != http.StatusOK {
		t.Fatalf("sync sweep: status %d body %s", status, syncBody)
	}
	// Sync jobs are keyed by kind: the first sweep on this server is
	// sweep-1.
	fin := pollJob(t, ts.URL, "sweep-1", terminal)
	if fin.State != "done" {
		t.Fatalf("sync job state %q, want done", fin.State)
	}
	if fin.Progress == nil || fin.Progress.PointsDone == nil || *fin.Progress.PointsDone != 1 {
		t.Fatalf("sync job progress %+v, want pointsDone=1", fin.Progress)
	}
	result, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/sweep-1/result")
	if status != http.StatusOK {
		t.Fatalf("sync job result: status %d body %s", status, result)
	}
	if !bytes.Equal(result, syncBody) {
		t.Fatalf("retained sync result differs from the answered body:\njob:  %s\nsync: %s", result, syncBody)
	}
}

// ---- instanceId references ----

// TestSearchByDocIDByteIdentity registers the pipeline and platform as
// content-addressed documents and asserts a search referencing them by ID
// answers the exact bytes of the inline-document search.
func TestSearchByDocIDByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	pipe := mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50})
	plat := mustPlatform(t)

	var pipeReg, platReg InstanceResponse
	postJSON(t, ts.URL+"/v1/instances", InstanceRequest{Pipeline: pipe}, &pipeReg)
	postJSON(t, ts.URL+"/v1/instances", InstanceRequest{Platform: plat}, &platReg)
	if pipeReg.Kind != "pipeline" || platReg.Kind != "platform" {
		t.Fatalf("registrations answered kinds %q, %q", pipeReg.Kind, platReg.Kind)
	}
	if pipeReg.ID == platReg.ID {
		t.Fatal("pipeline and platform registered under one ID")
	}

	inline, s1 := postRaw(t, ts.URL+"/v1/search", mustMarshal(t, SearchRequest{
		Pipeline: pipe, Platform: plat, Model: "overlap", Algo: "bnb",
	}))
	byID, s2 := postRaw(t, ts.URL+"/v1/search", mustMarshal(t, SearchRequest{
		PipelineID: pipeReg.ID, PlatformID: platReg.ID, Model: "overlap", Algo: "bnb",
	}))
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("searches: status %d, %d (%s / %s)", s1, s2, inline, byID)
	}
	if !bytes.Equal(inline, byID) {
		t.Fatalf("by-ID search differs from inline:\ninline: %s\nbyID:   %s", inline, byID)
	}

	// The same equivalence must hold through the async path.
	job := submitJob(t, ts.URL, mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &SearchRequest{
		PipelineID: pipeReg.ID, PlatformID: platReg.ID, Model: "overlap", Algo: "bnb",
	}}))
	pollJob(t, ts.URL, job.ID, terminal)
	async, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID+"/result")
	if status != http.StatusOK || !bytes.Equal(async, inline) {
		t.Fatalf("async by-ID result: status %d\nasync:  %s\ninline: %s", status, async, inline)
	}

	// Mixed forms and wrong-kind references are refused.
	if body, status := postRaw(t, ts.URL+"/v1/search", mustMarshal(t, SearchRequest{
		Pipeline: pipe, PipelineID: pipeReg.ID, Platform: plat, Model: "overlap",
	})); status != http.StatusBadRequest || !strings.Contains(string(body), "mutually exclusive") {
		t.Fatalf("mixed pipeline forms: status %d body %s", status, body)
	}
	if body, status := postRaw(t, ts.URL+"/v1/search", mustMarshal(t, SearchRequest{
		PipelineID: platReg.ID, Platform: plat, Model: "overlap",
	})); status != http.StatusBadRequest || !strings.Contains(string(body), "names a registered platform, not a pipeline") {
		t.Fatalf("wrong-kind reference: status %d body %s", status, body)
	}
	if body, status := postRaw(t, ts.URL+"/v1/search", mustMarshal(t, SearchRequest{
		PipelineID: strings.Repeat("0", 64), Platform: plat, Model: "overlap",
	})); status != http.StatusNotFound || !strings.Contains(string(body), "unknown pipeline ID") {
		t.Fatalf("unknown pipeline ID: status %d body %s", status, body)
	}
}

// TestSweepByInstanceIDByteIdentity: a sweep over registered instance IDs
// answers the exact bytes of the same sweep with the instances inline.
func TestSweepByInstanceIDByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	rng := rand.New(rand.NewSource(11))
	insts := []*model.Instance{
		randomTimedInstance(t, rng, []int{2, 3}),
		randomTimedInstance(t, rng, []int{3, 2}),
	}
	ids := make([]string, len(insts))
	for i, inst := range insts {
		var reg InstanceResponse
		postJSON(t, ts.URL+"/v1/instances", InstanceRequest{Instance: inst}, &reg)
		ids[i] = reg.ID
	}
	inline, s1 := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{Instances: insts}))
	byID, s2 := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{InstanceIDs: ids}))
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("sweeps: status %d, %d (%s / %s)", s1, s2, inline, byID)
	}
	// Sweep points carry measured wall-clock timings (polyNs/tpnNs), so the
	// identity is over everything deterministic: same points, same reps,
	// same path counts, same periods, byte-identical modulo timing fields.
	got := normalizeSweep(t, inline)
	if byIDResp := normalizeSweep(t, byID); !bytes.Equal(mustMarshal(t, got), mustMarshal(t, byIDResp)) {
		t.Fatalf("by-ID sweep differs from inline beyond timings:\ninline: %s\nbyID:   %s", inline, byID)
	}
	if len(got.Points) != 2 {
		t.Fatalf("sweep answered %s, want 2 points", inline)
	}

	// Population rules: mixing forms, pairing with pairs, bad Only index,
	// unknown ID.
	if body, status := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{
		Instances: insts, InstanceIDs: ids,
	})); status != http.StatusBadRequest || !strings.Contains(string(body), "mutually exclusive") {
		t.Fatalf("mixed populations: status %d body %s", status, body)
	}
	if body, status := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{
		InstanceIDs: ids, Pairs: [][]int{{2, 2}},
	})); status != http.StatusBadRequest || !strings.Contains(string(body), "mutually exclusive") {
		t.Fatalf("pairs with explicit population: status %d body %s", status, body)
	}
	if body, status := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{
		InstanceIDs: ids, Only: []int{2},
	})); status != http.StatusBadRequest || !strings.Contains(string(body), "out of range") {
		t.Fatalf("only out of range: status %d body %s", status, body)
	}
	body, status := postRaw(t, ts.URL+"/v1/sweep", mustMarshal(t, SweepRequest{
		InstanceIDs: []string{strings.Repeat("0", 64)},
	}))
	if status != http.StatusNotFound {
		t.Fatalf("unknown instance ID: status %d body %s", status, body)
	}
	var e struct {
		Error ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeUnknownInstance ||
		!strings.Contains(e.Error.Message, "instanceIds[0]") {
		t.Fatalf("unknown instance body %s (decode err %v)", body, err)
	}

	// Only restricts an explicit population like it restricts pairs.
	var sub SweepResponse
	postJSON(t, ts.URL+"/v1/sweep", SweepRequest{InstanceIDs: ids, Only: []int{1}}, &sub)
	if len(sub.Points) != 1 || sub.Points[0].PathCount != got.Points[1].PathCount {
		t.Fatalf("only-restricted sweep %+v, want point 1 of %+v", sub.Points, got.Points)
	}
}

// normalizeSweep decodes a sweep response and zeroes its measured timing
// fields, leaving only the deterministic content.
func normalizeSweep(t *testing.T, body []byte) SweepResponse {
	t.Helper()
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("sweep response not JSON: %v (body %s)", err, body)
	}
	for i := range resp.Points {
		resp.Points[i].PolyNs, resp.Points[i].TPNNs = 0, 0
	}
	return resp
}

// TestJobStorm runs concurrent submitters, pollers and cancelers against
// one server — the -race exercise for the registry and handler paths.
func TestJobStorm(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, JobEntries: 16, JobActive: 8})
	const (
		submitters = 4
		perWorker  = 6
	)
	var wg sync.WaitGroup
	ids := make(chan string, submitters*perWorker)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body, err := json.Marshal(JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{
					Seed: int64(w*1000 + i), Pairs: [][]int{{2, 2}},
				}})
				if err != nil {
					t.Error(err)
					return
				}
				resp, e := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if e != nil {
					t.Error(e)
					return
				}
				var j Job
				code := resp.StatusCode
				e = json.NewDecoder(resp.Body).Decode(&j)
				resp.Body.Close()
				if code == http.StatusServiceUnavailable {
					continue // cap push-back under storm is legitimate
				}
				if code != http.StatusAccepted || e != nil {
					t.Errorf("storm submit: status %d err %v", code, e)
					return
				}
				ids <- j.ID
			}
		}(w)
	}
	var pollers sync.WaitGroup
	for p := 0; p < submitters; p++ {
		pollers.Add(1)
		go func(p int) {
			defer pollers.Done()
			for id := range ids {
				if p%2 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				}
				deadline := time.Now().Add(30 * time.Second)
				for {
					resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
					if err != nil {
						t.Error(err)
						return
					}
					var j Job
					err = json.NewDecoder(resp.Body).Decode(&j)
					resp.Body.Close()
					if resp.StatusCode == http.StatusNotFound {
						break // recycled by the terminal ring under pressure
					}
					if err == nil && terminal(Job{State: j.State}) {
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("storm poll %s: stuck in %q", id, j.State)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				if resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result"); err == nil {
					resp.Body.Close()
				}
			}
		}(p)
	}
	wg.Wait()
	close(ids)
	pollers.Wait()
	m := s.jobs.Metrics()
	if m.Active != 0 {
		t.Fatalf("storm left %d active jobs", m.Active)
	}
	if m.Active+m.Terminal > 16+8 {
		t.Fatalf("storm residency %d past the bound", m.Active+m.Terminal)
	}
	if m.Done+m.Failed+m.Canceled != m.Submitted {
		t.Fatalf("storm bookkeeping: %d submitted, %d finished", m.Submitted, m.Done+m.Failed+m.Canceled)
	}
}

// TestJobsMetricsBlock: /metrics carries the jobs block with live counts.
func TestJobsMetricsBlock(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body := mustMarshal(t, JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{Seed: 2, Pairs: [][]int{{2, 2}}}})
	j := submitJob(t, ts.URL, body)
	pollJob(t, ts.URL, j.ID, terminal)
	metricsBody, status := do(t, http.MethodGet, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	var m struct {
		Jobs struct {
			Submitted        int64 `json:"submitted"`
			Done             int64 `json:"done"`
			Terminal         int64 `json:"terminal"`
			ActiveCapacity   int64 `json:"activeCapacity"`
			TerminalCapacity int64 `json:"terminalCapacity"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(metricsBody, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, metricsBody)
	}
	if m.Jobs.Submitted != 1 || m.Jobs.Done != 1 || m.Jobs.Terminal != 1 {
		t.Fatalf("jobs metrics %+v after one finished job", m.Jobs)
	}
	if m.Jobs.ActiveCapacity == 0 || m.Jobs.TerminalCapacity == 0 {
		t.Fatalf("jobs capacities missing: %+v", m.Jobs)
	}
}
