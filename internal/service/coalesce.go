package service

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// flightGroup coalesces concurrent identical computations: the first caller
// of a key becomes the leader and computes; followers arriving while the
// leader is in flight wait for its result instead of recomputing. The
// engine's memo cache already deduplicates *completed* work — the flight
// group closes the remaining window where N concurrent requests for the
// same instance would all miss the still-empty cache and solve N times.
//
// A leader that fails with a context error (its request was canceled or
// timed out) must not poison its followers, whose own contexts may be
// perfectly alive: they retry, and one of them becomes the next leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  core.Result
	err  error
}

// do returns fn's result for key, computing it at most once across
// concurrent callers. shared reports that the result was produced by
// another caller's computation.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (core.Result, error)) (res core.Result, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall)
		}
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return core.Result{}, false, ctx.Err()
			}
			if c.err != nil && (errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				continue // the leader died of its own deadline; try again
			}
			return c.res, true, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		// Deregister and release followers even if fn panics (net/http
		// recovers handler panics, so the process would keep serving with
		// this key permanently wedged otherwise).
		func() {
			defer func() {
				g.mu.Lock()
				delete(g.m, key)
				g.mu.Unlock()
				close(c.done)
			}()
			c.err = errFlightPanicked
			c.res, c.err = fn()
		}()
		return c.res, false, c.err
	}
}

// errFlightPanicked is what followers observe when the leader's fn panicked
// before assigning a result; the panic itself propagates up the leader's
// stack (and out of do) untouched.
var errFlightPanicked = errors.New("service: computation panicked")
