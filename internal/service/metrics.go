package service

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cycles"
)

// metrics is the server's observability state, exposed on /metrics as one
// JSON object. The counters use expvar types for their atomic semantics and
// JSON rendering, but are deliberately NOT published to expvar's global
// registry: a process may host several Servers (tests do), and global
// publication panics on the second.
type metrics struct {
	start     time.Time
	requests  *expvar.Map // per-endpoint request counts
	errors    *expvar.Map // per-endpoint error counts
	inFlight  expvar.Int  // solve requests currently admitted
	coalesced expvar.Int  // /v1/evaluate answers shared from another caller's in-flight computation

	mu    sync.Mutex
	hists map[string]*latencyHist // "endpoint/backend" -> total handler time
	waits map[string]*latencyHist // endpoint -> in-flight queue wait
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: new(expvar.Map).Init(),
		errors:   new(expvar.Map).Init(),
		hists:    make(map[string]*latencyHist),
		waits:    make(map[string]*latencyHist),
	}
}

// observe records one answered request's total handler time (parse + queue
// wait + solve — the same measure whether the answer came from the response
// memo or a fresh solve) in the per-endpoint, per-backend histogram.
func (m *metrics) observe(endpoint, backend string, d time.Duration) {
	key := endpoint + "/" + backend
	m.mu.Lock()
	h, ok := m.hists[key]
	if !ok {
		h = newLatencyHist()
		m.hists[key] = h
	}
	m.mu.Unlock()
	h.record(d)
}

// observeWait records the time one request spent queued for an in-flight
// slot (including waits that end in a 503, which are exactly the ones worth
// seeing). Keyed by endpoint only: the wait happens before any backend is
// involved.
func (m *metrics) observeWait(endpoint string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.waits[endpoint]
	if !ok {
		h = newLatencyHist()
		m.waits[endpoint] = h
	}
	m.mu.Unlock()
	h.record(d)
}

// latencyHist is a fixed-bucket log-scale latency histogram (bounds in
// histBounds, last bucket unbounded). Lock-free recording; rendered as
// cumulative-free per-bucket counts plus count/sum so dashboards can derive
// rates and means.
type latencyHist struct {
	counts []atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// histBounds are the bucket upper bounds. Solves range from microseconds
// (memo hits) to many seconds (strict-model searches), so the bounds spread
// log-uniformly across that range.
var histBounds = []time.Duration{
	100 * time.Microsecond,
	400 * time.Microsecond,
	1600 * time.Microsecond,
	6400 * time.Microsecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	400 * time.Millisecond,
	1600 * time.Millisecond,
	6400 * time.Millisecond,
}

func newLatencyHist() *latencyHist {
	return &latencyHist{counts: make([]atomic.Int64, len(histBounds)+1)}
}

func (h *latencyHist) record(d time.Duration) {
	i := sort.Search(len(histBounds), func(i int) bool { return d <= histBounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	for {
		old := h.maxNs.Load()
		if d.Nanoseconds() <= old || h.maxNs.CompareAndSwap(old, d.Nanoseconds()) {
			return
		}
	}
}

// String renders the histogram as JSON (expvar.Var contract).
func (h *latencyHist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sumMs":%.3f,"maxMs":%.3f,"buckets":{`,
		h.count.Load(), float64(h.sumNs.Load())/1e6, float64(h.maxNs.Load())/1e6)
	for i := range h.counts {
		if i > 0 {
			b.WriteByte(',')
		}
		label := "+Inf"
		if i < len(histBounds) {
			label = fmt.Sprintf("<=%s", histBounds[i])
		}
		fmt.Fprintf(&b, "%q:%d", label, h.counts[i].Load())
	}
	b.WriteString("}}")
	return b.String()
}

// handleMetrics serves the full metrics object: request/error counters,
// in-flight gauge, the memo-cache counters of every backend engine (hits,
// misses, evictions, residency vs. capacity — the numbers that prove the
// bounded cache holds), and the per-endpoint/backend latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: ErrorInfo{
			Code: DefaultErrorCode(http.StatusMethodNotAllowed), Message: "metrics requires GET"}})
		return
	}
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "\"uptimeSeconds\": %.1f,\n", time.Since(s.met.start).Seconds())
	fmt.Fprintf(&b, "\"inFlight\": %s,\n", s.met.inFlight.String())
	fmt.Fprintf(&b, "\"coalesced\": %s,\n", s.met.coalesced.String())
	fmt.Fprintf(&b, "\"requests\": %s,\n", s.met.requests.String())
	fmt.Fprintf(&b, "\"errors\": %s,\n", s.met.errors.String())
	b.WriteString("\"cache\": {")
	for i, eng := range s.engines {
		cm := eng.CacheMetrics()
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q: {\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"capacity\":%d}",
			cycles.Backend(i).String(), cm.Hits, cm.Misses, cm.Evictions, cm.Entries, cm.Capacity)
	}
	b.WriteString("},\n")
	sm := s.store.Metrics()
	fmt.Fprintf(&b, "\"store\": {\"puts\":%d,\"dedups\":%d,\"resolves\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"pinned\":%d,\"capacity\":%d},\n",
		sm.Puts, sm.Dedups, sm.Resolves, sm.Misses, sm.Evictions, sm.Entries, sm.Pinned, sm.Capacity)
	jm := s.jobs.Metrics()
	fmt.Fprintf(&b, "\"jobs\": {\"submitted\":%d,\"done\":%d,\"failed\":%d,\"canceled\":%d,\"rejected\":%d,\"evictions\":%d,\"active\":%d,\"terminal\":%d,\"activeCapacity\":%d,\"terminalCapacity\":%d},\n",
		jm.Submitted, jm.Done, jm.Failed, jm.Canceled, jm.Rejected, jm.Evictions, jm.Active, jm.Terminal, jm.ActiveCapacity, jm.TerminalCapacity)
	b.WriteString("\"respMemo\": ")
	if s.resp != nil {
		rm := s.resp.metrics()
		fmt.Fprintf(&b, "{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"capacity\":%d}",
			rm.Hits, rm.Misses, rm.Evictions, rm.Entries, rm.Capacity)
	} else {
		b.WriteString("null")
	}
	s.met.mu.Lock()
	b.WriteString(",\n\"latency\": {")
	writeHists(&b, s.met.hists)
	b.WriteString("},\n\"queueWait\": {")
	writeHists(&b, s.met.waits)
	s.met.mu.Unlock()
	b.WriteString("}\n}\n")
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(b.String()))
}

// writeHists renders a histogram map as sorted JSON members; the caller
// holds the metrics mutex and writes the surrounding braces.
func writeHists(b *strings.Builder, hists map[string]*latencyHist) {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%q: %s", k, hists[k].String())
	}
}

// HealthzResponse is the /healthz body: liveness plus the load numbers a
// balancer or the cluster router's eject/rejoin prober reads. Typed (rather
// than an ad-hoc map) so the router decodes node health without guessing at
// key names.
type HealthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	InFlight      int64   `json:"inFlight"`
	Workers       int     `json:"workers"`
	MaxInFlight   int     `json:"maxInFlight"`
}

// handleHealthz reports liveness plus the load numbers a balancer wants.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: ErrorInfo{
			Code: DefaultErrorCode(http.StatusMethodNotAllowed), Message: "healthz requires GET"}})
		return
	}
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		InFlight:      s.met.inFlight.Value(),
		Workers:       s.opts.Workers,
		MaxInFlight:   s.opts.MaxInFlight,
	})
}
