// Package service is the resident front end of the reproduction: an
// HTTP/JSON server exposing the full solver surface — single evaluations,
// coalesced batches, mapping search under a wall-clock budget and the
// runtime sweep — on top of the batch-evaluation engine.
//
// The design carries the engine's guarantees across the wire:
//
//   - Determinism. Every response is computed by the same exact-arithmetic
//     paths the CLI commands use; /v1/batch answers are bit-identical to a
//     serial engine.EvaluateBatch over the same tasks, at any worker count.
//
//   - Bounded residency. The memo cache behind the server is the engine's
//     CLOCK-evicting bounded cache (engine.Options.CacheEntries), so a
//     long-lived process cannot grow without bound no matter how many
//     distinct instances it is asked about; /metrics exports the hit, miss
//     and eviction counters that prove it.
//
//   - Back-pressure. A server-wide in-flight budget (MaxInFlight) caps
//     concurrent solves; request bodies are fully parsed before a slot is
//     taken (a slow-sending client cannot occupy solve capacity), and
//     excess requests queue on their own context, so a client deadline is
//     honored while waiting. Concurrent identical /v1/evaluate requests
//     coalesce into one computation (singleflight on the engine's
//     canonical task key).
//
//   - Cancellation. Every handler derives its context from the request and
//     the server's RequestTimeout; /v1/search additionally accepts a
//     per-request wall-clock budget and returns the best mapping found
//     when the budget expires (an anytime search, never a wasted
//     deadline). Deadlines take effect while queued and between the tasks
//     of a batch/search; an individual period computation is a tight exact
//     numeric kernel and always runs to completion — bound its size with
//     MaxRows, not the clock.
//
//   - Content addressing. POST /v1/instances registers an instance under
//     its content ID (internal/store; SHA-256 of the canonical
//     serialization), and evaluate/batch bodies may carry "instanceId"
//     instead of the inline instance: requests shrink ~20x and the server
//     resolves the ID to precomputed task keys, doing zero per-request
//     serialization. A bounded response memo one tier above the engine
//     cache serves repeat evaluate hits as pre-encoded bytes — no solver,
//     no encoder, and no in-flight slot. By-ID, inline, memo-hit and
//     memo-miss responses are byte-identical (gated on the Table 2 grid).
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/bnb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/exper"
	"repro/internal/jobs"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/store"
)

// Options configures a Server. The zero value serves with a GOMAXPROCS
// worker pool, the default bounded memo cache, a 60 s request ceiling and
// an in-flight budget of twice the pool size.
type Options struct {
	// Workers is the engine worker-pool size (<= 0 means GOMAXPROCS). Each
	// selectable backend gets its own engine of this size, built eagerly at
	// NewServer (an idle engine is a few empty maps; its solver pools and
	// cache fill only with use).
	Workers int
	// CacheEntries bounds each engine's memo cache (0 = the engine default,
	// negative disables memoization). See engine.Options.CacheEntries.
	CacheEntries int
	// MaxRows caps the unfolded-TPN size of the pooled solvers (0 = package
	// default).
	MaxRows int
	// MaxInFlight is the worker budget: the number of solve requests
	// admitted concurrently across all endpoints. Further requests wait —
	// honoring their own context — for a slot. <= 0 means 2x the resolved
	// worker count.
	MaxInFlight int
	// RequestTimeout bounds every request's context (0 = 60 s). /v1/search
	// budgets shorter than this still apply.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// DefaultBackend serves requests whose "backend" field is empty
	// (cmd/serve's -backend flag; zero value is BackendAuto).
	DefaultBackend cycles.Backend
	// StoreEntries bounds the content-addressed instance store behind
	// POST /v1/instances (0 = store.DefaultCapacity). The store cannot be
	// disabled: it is pure capacity, holding nothing until a client
	// registers.
	StoreEntries int
	// RespCacheEntries bounds the response-bytes memo that serves repeat
	// /v1/evaluate hits as pre-encoded bytes (0 = the package default,
	// negative disables the memo — every response is encoded fresh).
	RespCacheEntries int
	// JobEntries bounds retained terminal jobs in the async-job registry
	// (0 = jobs.DefaultTerminalEntries). Terminal jobs past the bound are
	// recycled CLOCK-style, coldest first.
	JobEntries int
	// JobActive caps concurrently resident detached jobs (POST /v1/jobs);
	// past it submissions are refused with 503. 0 = jobs.DefaultMaxActive.
	// Synchronous requests are exempt — their lifetime is the request's.
	JobActive int
	// JobTimeout bounds a detached job's run (0 = 15 min). Synchronous
	// requests keep RequestTimeout; this ceiling exists because an async job
	// outlives its submitting request and would otherwise run forever.
	JobTimeout time.Duration
	// CheckpointDir, when non-empty, persists every detached job to disk
	// (internal/checkpoint): submissions, per-root bnb progress and terminal
	// results survive a process restart, and ResumeJobs replays them — a
	// resumed deterministic search re-executes only its unfinished subtree
	// roots and returns bytes identical to an uninterrupted run. Empty
	// disables checkpointing (the pre-checkpoint in-memory behavior).
	CheckpointDir string
	// CheckpointInterval batches per-root checkpoint writes: a running job's
	// record is rewritten at most once per interval (plus once at each
	// lifecycle boundary). <= 0 writes through on every finished root — the
	// most durable and most write-heavy setting.
	CheckpointInterval time.Duration
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2 * o.Workers
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 15 * time.Minute
	}
}

// backendCount sizes the per-backend engine table from the enum itself, so
// a backend added to internal/cycles cannot overflow it.
const backendCount = cycles.NumBackends

// Server is the HTTP front end. Create it with NewServer and mount
// Handler() (tests use httptest around it; Serve runs it with graceful
// shutdown).
type Server struct {
	opts    Options
	mux     *http.ServeMux
	engines [backendCount]*engine.Engine // built eagerly; index is cycles.Backend
	sem     chan struct{}                // in-flight solve budget
	met     *metrics
	flights flightGroup
	store   *store.Store        // content-addressed documents (POST /v1/instances)
	resp    *respCache          // pre-encoded /v1/evaluate bodies; nil when disabled
	jobs    *jobs.Manager       // the job registry every solve runs under
	ckpt    *checkpoint.Manager // durable job state; nil when CheckpointDir is empty
	ckptErr error               // deferred CheckpointDir failure; Serve refuses to start on it
}

// NewServer builds a server and its routes.
func NewServer(opts Options) *Server {
	opts.defaults()
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, opts.MaxInFlight),
		met:   newMetrics(),
		store: store.New(opts.StoreEntries),
	}
	jo := jobs.Options{
		TerminalEntries: opts.JobEntries,
		MaxActive:       opts.JobActive,
	}
	if opts.CheckpointDir != "" {
		ckpt, err := checkpoint.NewManager(opts.CheckpointDir, opts.CheckpointInterval)
		if err != nil {
			// NewServer cannot return an error without breaking every caller;
			// the failure is deferred to Serve, which refuses to start. A
			// directly-embedded server (tests) can check CheckpointErr.
			s.ckptErr = err
		} else {
			s.ckpt = ckpt
			jo.Persister = ckpt
		}
	}
	s.jobs = jobs.New(jo)
	if opts.RespCacheEntries >= 0 {
		s.resp = newRespCache(opts.RespCacheEntries)
	}
	for b := range s.engines {
		s.engines[b] = engine.New(engine.Options{
			Workers:      opts.Workers,
			CacheEntries: opts.CacheEntries,
			MaxRows:      opts.MaxRows,
			Backend:      cycles.Backend(b),
		})
	}
	s.mux.HandleFunc("/v1/evaluate", s.solveEndpoint("evaluate", s.handleEvaluate))
	s.mux.HandleFunc("/v1/batch", s.solveEndpoint("batch", s.handleBatch))
	s.mux.HandleFunc("/v1/search", s.solveEndpoint("search", s.handleSearch))
	s.mux.HandleFunc("/v1/sweep", s.solveEndpoint("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/internal/subtree", s.solveEndpoint("subtree", s.handleSubtree))
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/instances", s.handleInstancePost)
	s.mux.HandleFunc("/v1/instances/", s.handleInstanceGet)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler (all routes).
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the per-engine pool size actually in use.
func (s *Server) Workers() int { return s.opts.Workers }

// engine returns the engine serving the given backend.
func (s *Server) engine(b cycles.Backend) *engine.Engine { return s.engines[b] }

// Store exposes the content-addressed instance store (tests pin entries
// through it; cmd/serve reports its capacity).
func (s *Server) Store() *store.Store { return s.store }

// CheckpointErr reports a CheckpointDir that could not be opened. NewServer
// cannot fail, so the error is surfaced here (and by Serve, which refuses
// to start on it) instead of being silently swallowed — a server asked to
// be durable must not run undurable.
func (s *Server) CheckpointErr() error { return s.ckptErr }

// httpError is an error with a dedicated HTTP status and, optionally, a
// machine-readable error code more specific than the status default.
type httpError struct {
	status int
	code   string // "" = DefaultErrorCode(status)
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func codedError(status int, code, format string, args ...any) error {
	return &httpError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// solveFunc is the compute half of a solve request, produced by a handler
// after it has fully parsed and validated the body.
type solveFunc func(ctx context.Context) (any, error)

// reply is a handler's parse-phase verdict: either pre-encoded bytes ready
// to serve (raw — the response-memo hit path, which never takes an in-flight
// slot because there is no work left to bound) or a solveFunc to run under
// the in-flight budget.
type reply struct {
	solve solveFunc
	// raw, when non-nil, is a complete pre-encoded response body; backend
	// labels its latency-histogram bucket.
	raw     []byte
	backend string
	// cache, when set, is offered the encoded body after a successful solve
	// so the handler can memoize it (the slice is pooled scratch — the
	// callee must copy).
	cache func(resp any, body []byte)
	// cleanup always runs when the request finishes, error paths included —
	// by-ID handlers release their store pins here.
	cleanup func()
}

// solveEndpoint wraps a solve handler with everything every solve route
// shares: POST-only, body limit, request timeout, the in-flight budget,
// request/error counters and the latency histogram. The handler runs in
// two phases — parse (h, before any budget is taken, so a slow-sending
// client cannot occupy solve capacity with body reads) and solve (the
// returned solveFunc, under the in-flight semaphore). A handler that
// resolves the whole answer at parse time (the response memo) returns it as
// raw bytes and skips the budget entirely.
func (s *Server) solveEndpoint(name string, h func(r *http.Request) (reply, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Add(name, 1)
		if r.Method != http.MethodPost {
			s.fail(w, name, http.StatusMethodNotAllowed, fmt.Sprintf("%s requires POST", r.URL.Path))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		start := time.Now()
		rep, err := h(r)
		if rep.cleanup != nil {
			defer rep.cleanup()
		}
		if err != nil {
			s.failErr(w, name, err)
			return
		}
		if rep.raw != nil {
			s.met.observe(name, rep.backend, time.Since(start))
			writeRaw(w, http.StatusOK, rep.raw)
			return
		}
		// The worker budget: wait for a slot on the request's own clock. The
		// wait is recorded in its own histogram — queueing time used to be
		// invisible, folded into neither the solve nor the handler numbers,
		// so a saturated server looked fast right up until it 503'd.
		queued := time.Now()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.met.observeWait(name, time.Since(queued))
			s.fail(w, name, http.StatusServiceUnavailable, "server at capacity and request deadline expired while queued")
			return
		}
		s.met.observeWait(name, time.Since(queued))
		s.met.inFlight.Add(1)
		// The slot MUST come back on every path. Releasing it inline after
		// the solve leaked the slot (and pinned the gauge) whenever the solve
		// panicked: net/http recovers handler panics per connection, so the
		// process lived on with one less unit of capacity — MaxInFlight
		// panics away from a wedged server. The deferred release is the
		// panic backstop; the explicit release below returns the slot before
		// the response write, so a slow-reading client cannot hold solve
		// capacity through its own network drain.
		released := false
		release := func() {
			if released {
				return
			}
			released = true
			s.met.inFlight.Add(-1)
			<-s.sem
		}
		defer release()
		resp, err := runSolve(rep.solve, ctx)
		release()
		if err != nil {
			s.failErr(w, name, err)
			return
		}
		// Record total handler time (parse + queue wait + solve), the same
		// measure the memo-hit path above records. The histogram used to mix
		// two different quantities — solve-only here, total time on memo hits
		// — so the router's load reports compared incomparable numbers; the
		// queue-wait histogram above isolates the scheduling component.
		s.met.observe(name, backendLabelOf(resp), time.Since(start))
		sc := encPool.Get().(*encScratch)
		sc.buf.Reset()
		if err := sc.enc.Encode(resp); err != nil {
			encPool.Put(sc)
			s.fail(w, name, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
			return
		}
		if rep.cache != nil {
			rep.cache(resp, sc.buf.Bytes())
		}
		writeRaw(w, http.StatusOK, sc.buf.Bytes())
		encPool.Put(sc)
	}
}

// runSolve executes the solve phase, converting a panic into a plain error
// (mapped to HTTP 500 and counted in the error metrics by the caller). The
// numeric kernels are panic-free by contract, but a serving process must
// degrade one request at a time, not crash or leak capacity, when that
// contract breaks.
func runSolve(solve solveFunc, ctx context.Context) (resp any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("internal error: solve panicked: %v", p)
		}
	}()
	return solve(ctx)
}

// failErr maps an error to its HTTP status: httpError carries its own,
// context errors become 503, everything else 500.
func (s *Server) failErr(w http.ResponseWriter, name string, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		code := he.code
		if code == "" {
			code = DefaultErrorCode(he.status)
		}
		s.failCode(w, name, he.status, code, he.msg)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.fail(w, name, http.StatusServiceUnavailable, "request deadline exceeded")
	default:
		s.fail(w, name, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) fail(w http.ResponseWriter, name string, status int, msg string) {
	s.failCode(w, name, status, DefaultErrorCode(status), msg)
}

// failCode writes the unified error envelope — the one JSON error shape
// every /v1/* failure uses — and counts the error against the endpoint.
func (s *Server) failCode(w http.ResponseWriter, name string, status int, code, msg string) {
	s.met.errors.Add(name, 1)
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: msg}})
}

// encScratch is a pooled JSON encoder bound to its scratch buffer: every
// response body in the process is produced by this one encode path
// (SetEscapeHTML(false), Encode's trailing newline), which is what makes
// memoized bytes byte-identical to fresh ones.
type encScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	sc := &encScratch{}
	sc.enc = json.NewEncoder(&sc.buf)
	sc.enc.SetEscapeHTML(false)
	return sc
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	sc := encPool.Get().(*encScratch)
	sc.buf.Reset()
	if err := sc.enc.Encode(v); err != nil {
		// Nothing useful left to send; surface a bare 500.
		encPool.Put(sc)
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, sc.buf.Bytes())
	encPool.Put(sc)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body) // the status line is gone; nothing useful left on error
}

// backendLabeled lets responses report which backend served them so the
// latency histogram can be split per backend.
type backendLabeled interface{ backendLabel() string }

func backendLabelOf(resp any) string {
	if bl, ok := resp.(backendLabeled); ok {
		return bl.backendLabel()
	}
	return "auto"
}

// decode parses a JSON body, rejecting trailing garbage.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
		}
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON value")
	}
	return nil
}

// parseSelectors parses the shared "model"/"backend" request fields; an
// empty backend falls back to the server's DefaultBackend.
func (s *Server) parseSelectors(modelName, backendName string) (model.CommModel, cycles.Backend, error) {
	cm, err := model.Parse(modelName)
	if err != nil {
		return 0, 0, badRequest("%v", err)
	}
	if backendName == "" {
		return cm, s.opts.DefaultBackend, nil
	}
	b, err := cycles.ParseBackend(backendName)
	if err != nil {
		return 0, 0, badRequest("%v", err)
	}
	return cm, b, nil
}

// ---- /v1/evaluate ----

// EvaluateRequest asks for the period (and optionally the steady-state
// latency distribution) of one instance under one model and backend. The
// instance arrives either inline (Instance) or by reference (InstanceID — a
// content ID from POST /v1/instances), never both; the by-ID form cuts the
// request body from multi-KB JSON to a 64-byte ID and skips all instance
// parsing and canonical serialization server-side.
type EvaluateRequest struct {
	Instance   *model.Instance `json:"instance,omitempty"`
	InstanceID string          `json:"instanceId,omitempty"`
	Model      string          `json:"model"`
	Backend    string          `json:"backend,omitempty"`
	// LatencyPeriods > 0 additionally simulates that many macro-periods and
	// reports per-data-set latency statistics (>= 2 required by the
	// simulator; LatencyPeriods × PathCount is capped at
	// maxLatencyDataSets — the simulation is not interruptible, so its
	// size must be bounded up front).
	LatencyPeriods int `json:"latencyPeriods,omitempty"`
}

// maxLatencyDataSets caps the latency simulation horizon per request,
// counted in data sets (periods × PathCount — the quantity the simulator
// actually materializes). The operational simulator cannot be canceled
// mid-run; without a cap one small request could pin an in-flight slot for
// hours, immune to RequestTimeout. Steady-state statistics converge within
// a handful of macro-periods.
const maxLatencyDataSets = 1 << 17

// ResultJSON is the wire form of a core.Result: exact rationals as "n/d"
// strings plus a float convenience rendering.
type ResultJSON struct {
	Model       string  `json:"model"`
	Period      string  `json:"period"`
	PeriodFloat float64 `json:"periodFloat"`
	Mct         string  `json:"mct"`
	Throughput  string  `json:"throughput"`
	PathCount   int64   `json:"pathCount"`
	Method      string  `json:"method"`
	HasCritical bool    `json:"hasCriticalResource"`
}

func resultJSON(res core.Result) ResultJSON {
	return ResultJSON{
		Model:       res.Model.String(),
		Period:      res.Period.String(),
		PeriodFloat: res.Period.Float64(),
		Mct:         res.Mct.String(),
		Throughput:  res.Throughput().String(),
		PathCount:   res.PathCount,
		Method:      string(res.Method),
		HasCritical: res.HasCriticalResource(),
	}
}

// LatencyJSON summarizes a sim.LatencyStats.
type LatencyJSON struct {
	Min      string  `json:"min"`
	Max      string  `json:"max"`
	Mean     string  `json:"mean"`
	MeanF    float64 `json:"meanFloat"`
	DataSets int     `json:"dataSets"`
}

// EvaluateResponse is the /v1/evaluate answer.
type EvaluateResponse struct {
	ResultJSON
	Backend string `json:"backend"`
	// Coalesced reports that this answer was produced by another concurrent
	// request's computation (singleflight), not a fresh solve.
	Coalesced bool         `json:"coalesced,omitempty"`
	Latency   *LatencyJSON `json:"latency,omitempty"`
}

func (r EvaluateResponse) backendLabel() string { return r.Backend }

func (s *Server) handleEvaluate(r *http.Request) (rep reply, err error) {
	var req EvaluateRequest
	if err := decode(r, &req); err != nil {
		return rep, err
	}
	cm, b, err := s.parseSelectors(req.Model, req.Backend)
	if err != nil {
		return rep, err
	}
	// Resolve the instance and its canonical task key. The by-ID path reads
	// the key precomputed at registration (zero serialization); the inline
	// path serializes here, at parse time, so the response-memo lookup below
	// can run before any solve capacity is taken.
	var inst *model.Instance
	var h uint64
	var key string
	switch {
	case req.Instance != nil && req.InstanceID != "":
		return rep, badRequest("\"instance\" and \"instanceId\" are mutually exclusive")
	case req.InstanceID != "":
		ent, err := s.resolveInstance(req.InstanceID)
		if err != nil {
			return rep, err
		}
		// The pin is dropped by solveEndpoint's deferred cleanup once the
		// response is written, so store eviction cannot recycle the entry
		// mid-solve — error paths below included.
		rep.cleanup = ent.Release
		inst = ent.Instance()
		h, key = ent.TaskKey(cm)
	case req.Instance != nil:
		inst = req.Instance
		h, key = engine.CanonicalKey(engine.Task{Inst: inst, Model: cm})
	default:
		return rep, badRequest("missing \"instance\" (inline) or \"instanceId\" (registered via POST /v1/instances)")
	}
	if req.LatencyPeriods > 0 {
		if ds := int64(req.LatencyPeriods) * inst.PathCount(); ds > maxLatencyDataSets || ds < 0 {
			return rep, badRequest("latencyPeriods %d × %d paths = %d data sets exceeds the simulation limit of %d",
				req.LatencyPeriods, inst.PathCount(), ds, int64(maxLatencyDataSets))
		}
	}
	// Response memo: a repeat of (backend, options, canonical task) serves
	// the previously encoded bytes — no solver, simulator or encoder work,
	// and no in-flight slot.
	var respKey string
	if s.resp != nil {
		respKey = b.String() + "\x00" + strconv.Itoa(req.LatencyPeriods) + "\x00" + key
		if body, ok := s.resp.get(respKey); ok {
			rep.raw, rep.backend = body, b.String()
			return rep, nil
		}
		rep.cache = func(resp any, body []byte) {
			// Never memoize a coalesced answer: it carries the "coalesced"
			// marker, which describes this request's scheduling, not the
			// task's result.
			if er, ok := resp.(EvaluateResponse); ok && !er.Coalesced {
				s.resp.put(respKey, body)
			}
		}
	}
	latencyPeriods := req.LatencyPeriods
	rep.solve = func(ctx context.Context) (any, error) {
		task := engine.Task{Inst: inst, Model: cm}
		eng := s.engine(b)
		// Coalesce concurrent identical requests: one computation, every
		// caller gets its result. The flight key includes the backend
		// because each backend solves on its own engine (results are
		// identical; cost is not), and the hash+key pair is handed to the
		// engine so the multi-KB canonical serialization from the parse
		// phase is reused, not recomputed.
		res, shared, err := s.flights.do(ctx, b.String()+"\x00"+key, func() (core.Result, error) {
			return eng.EvaluateKeyed(h, key, task)
		})
		if err != nil {
			return nil, err
		}
		if shared {
			s.met.coalesced.Add(1)
		}
		resp := EvaluateResponse{ResultJSON: resultJSON(res), Backend: b.String(), Coalesced: shared}
		if latencyPeriods > 0 {
			stats, err := sim.Latency(inst, cm, latencyPeriods)
			if err != nil {
				return nil, badRequest("latency simulation: %v", err)
			}
			resp.Latency = &LatencyJSON{
				Min:      stats.Min.String(),
				Max:      stats.Max.String(),
				Mean:     stats.Mean.String(),
				MeanF:    stats.Mean.Float64(),
				DataSets: len(stats.PerDataSet),
			}
		}
		return resp, nil
	}
	return rep, nil
}

// ---- /v1/batch ----

// BatchTask is one entry of a /v1/batch request: an instance — inline or by
// content ID — under one model.
type BatchTask struct {
	Instance   *model.Instance `json:"instance,omitempty"`
	InstanceID string          `json:"instanceId,omitempty"`
	Model      string          `json:"model"`
}

// BatchRequest evaluates many tasks as one engine batch.
type BatchRequest struct {
	Tasks   []BatchTask `json:"tasks"`
	Backend string      `json:"backend,omitempty"`
}

// BatchOutcome mirrors engine.Outcome: a result or a per-task error.
type BatchOutcome struct {
	*ResultJSON
	Error string `json:"error,omitempty"`
}

// BatchResponse is the /v1/batch answer; Outcomes[i] corresponds to
// Tasks[i] and is bit-identical to a serial engine.EvaluateBatch.
type BatchResponse struct {
	Backend  string         `json:"backend"`
	Outcomes []BatchOutcome `json:"outcomes"`
}

func (r BatchResponse) backendLabel() string { return r.Backend }

func (s *Server) handleBatch(r *http.Request) (rep reply, err error) {
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		return rep, err
	}
	if len(req.Tasks) == 0 {
		return rep, badRequest("empty \"tasks\"")
	}
	_, b, err := s.parseSelectors("overlap", req.Backend) // model is per task
	if err != nil {
		return rep, err
	}
	// Every by-ID entry stays pinned until the whole batch is answered; the
	// single deferred cleanup also covers the partially-resolved prefix when
	// a later task turns out malformed.
	var pinned []*store.Entry
	rep.cleanup = func() {
		for _, e := range pinned {
			e.Release()
		}
	}
	tasks := make([]engine.Task, len(req.Tasks))
	for i, bt := range req.Tasks {
		cm, err := model.Parse(bt.Model)
		if err != nil {
			return rep, badRequest("task %d: %v", i, err)
		}
		inst := bt.Instance
		switch {
		case bt.Instance != nil && bt.InstanceID != "":
			return rep, badRequest("task %d: \"instance\" and \"instanceId\" are mutually exclusive", i)
		case bt.InstanceID != "":
			ent, err := s.resolveInstance(bt.InstanceID)
			if err != nil {
				return rep, codedError(http.StatusNotFound, CodeUnknownInstance, "task %d: %v", i, err)
			}
			pinned = append(pinned, ent)
			inst = ent.Instance()
		case bt.Instance == nil:
			return rep, badRequest("task %d: missing \"instance\" or \"instanceId\"", i)
		}
		tasks[i] = engine.Task{Inst: inst, Model: cm}
	}
	rep.solve = func(ctx context.Context) (any, error) {
		outs, err := s.engine(b).EvaluateBatch(ctx, tasks)
		if err != nil {
			return nil, err
		}
		resp := BatchResponse{Backend: b.String(), Outcomes: make([]BatchOutcome, len(outs))}
		for i, o := range outs {
			if o.Err != nil {
				resp.Outcomes[i] = BatchOutcome{Error: o.Err.Error()}
				continue
			}
			rj := resultJSON(o.Result)
			resp.Outcomes[i] = BatchOutcome{ResultJSON: &rj}
		}
		return resp, nil
	}
	return rep, nil
}

// ---- /v1/search ----

// SearchRequest runs a mapping search for a pipeline on a platform under a
// wall-clock budget.
type SearchRequest struct {
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	Platform *platform.Platform `json:"platform"`
	// PipelineID/PlatformID reference documents registered via
	// POST /v1/instances ({"pipeline": ...} / {"platform": ...}), each
	// mutually exclusive with its inline field — the same by-ID contract
	// evaluate and batch follow for instances.
	PipelineID string `json:"pipelineId,omitempty"`
	PlatformID string `json:"platformId,omitempty"`
	Model      string `json:"model"`
	// Algo selects the search: "best" (default; greedy + random restarts
	// + annealing), "greedy", "random", "anneal", "exhaustive" (one-to-one
	// mappings, small platforms only) or "bnb" — the exact branch-and-bound
	// over all replicated mappings, whose response carries a "proven" flag
	// (true = the period is the optimum, false = the budget expired and
	// this is the best incumbent).
	Algo    string `json:"algo,omitempty"`
	Backend string `json:"backend,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// BudgetMs bounds the search wall clock; expiry returns the best
	// mapping found so far (0 = the server's request timeout only).
	BudgetMs int64 `json:"budgetMs,omitempty"`
	// Restarts and Moves tune "random" (defaults 10 and 50); AnnealSteps
	// tunes "anneal" (default 1500).
	Restarts    int `json:"restarts,omitempty"`
	Moves       int `json:"moves,omitempty"`
	AnnealSteps int `json:"annealSteps,omitempty"`
	// Distributed selects the cluster execution mode for algo "bnb":
	// "deterministic" splits the frontier across the ring's alive nodes and
	// merges in frontier order — bit-identical to a solo search; "racing"
	// additionally flows the best incumbent into later dispatches, so one
	// node's discovery prunes the others — same proven optimum, possibly a
	// different tie-winning mapping and node counts. The field only changes
	// where subtrees execute when the request reaches a router; a solo node
	// accepts both values and runs the same exact search either way ("racing"
	// races its local workers).
	Distributed string `json:"distributed,omitempty"`
}

// SearchResponse is the best mapping found. The Proven/Nodes/Pruned block
// is present only for algo "bnb".
type SearchResponse struct {
	Algo        string  `json:"algo"`
	Backend     string  `json:"backend"`
	Model       string  `json:"model"`
	Replicas    [][]int `json:"replicas"`
	Period      string  `json:"period"`
	PeriodFloat float64 `json:"periodFloat"`
	Throughput  string  `json:"throughput"`
	// Proven (bnb only): true means Period is the exact optimum over every
	// replicated mapping; false means the budget expired first and this is
	// the best incumbent found.
	Proven *bool `json:"proven,omitempty"`
	// Nodes and Pruned (bnb only) count the search tree: stage assignments
	// constructed and branches cut by the bound. Pointers so the keys are
	// present on every bnb response — zero included — and absent otherwise.
	Nodes  *int64 `json:"nodes,omitempty"`
	Pruned *int64 `json:"pruned,omitempty"`
	// Screened (bnb only) counts leaves the float-screening tier ruled out
	// without an exact evaluation; always zero unless the request selected
	// the float-screen backend. Nodes, Pruned, the period and the proven
	// flag are bit-identical either way — Screened only shows how much
	// exact arithmetic the screen saved.
	Screened *int64 `json:"screened,omitempty"`
}

func (r SearchResponse) backendLabel() string { return r.Backend }

func (s *Server) handleSearch(r *http.Request) (reply, error) {
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		return reply{}, err
	}
	run, cleanup, err := s.searchPlan(&req)
	if err != nil {
		return reply{}, err
	}
	return s.inlineJob("search", r, run, cleanup)
}

// searchPlan validates a search request and compiles it into the runner the
// job engine executes — the one execution path behind both the synchronous
// /v1/search handler and the "search" job kind. On success the returned
// cleanup releases the store pins the plan took (the caller owes exactly
// one invocation once the run is over); on error the plan has already
// released everything.
func (s *Server) searchPlan(req *SearchRequest) (jobRunner, func(), error) {
	return s.searchPlanReplay(req, nil)
}

// searchPlanReplay is searchPlan with checkpointed subtree results injected:
// the resume path hands the finished roots of an interrupted bnb job here,
// and the search replays them from disk instead of re-executing — the
// tentpole guarantee that a resumed deterministic search is byte-identical
// to an uninterrupted one while only the unfinished roots cost anything.
func (s *Server) searchPlanReplay(req *SearchRequest, replay map[int]bnb.SubResult) (jobRunner, func(), error) {
	var pinned []*store.Entry
	cleanup := func() {
		for _, e := range pinned {
			e.Release()
		}
	}
	fail := func(err error) (jobRunner, func(), error) {
		cleanup()
		return nil, nil, err
	}
	if (req.Pipeline == nil && req.PipelineID == "") || (req.Platform == nil && req.PlatformID == "") {
		return fail(badRequest("missing \"pipeline\" or \"platform\""))
	}
	if req.Pipeline != nil && req.PipelineID != "" {
		return fail(badRequest("\"pipeline\" and \"pipelineId\" are mutually exclusive"))
	}
	if req.Platform != nil && req.PlatformID != "" {
		return fail(badRequest("\"platform\" and \"platformId\" are mutually exclusive"))
	}
	pipe, plat := req.Pipeline, req.Platform
	if req.PipelineID != "" {
		ent, err := s.resolveDoc(req.PipelineID, store.KindPipeline)
		if err != nil {
			return fail(err)
		}
		pinned = append(pinned, ent)
		pipe = ent.Pipeline()
	}
	if req.PlatformID != "" {
		ent, err := s.resolveDoc(req.PlatformID, store.KindPlatform)
		if err != nil {
			return fail(err)
		}
		pinned = append(pinned, ent)
		plat = ent.Platform()
	}
	cm, b, err := s.parseSelectors(req.Model, req.Backend)
	if err != nil {
		return fail(err)
	}
	restarts, moves, steps := req.Restarts, req.Moves, req.AnnealSteps
	if restarts <= 0 {
		restarts = 10
	}
	if moves <= 0 {
		moves = 50
	}
	if steps <= 0 {
		steps = 1500
	}
	algo := req.Algo
	if algo == "" {
		algo = "best"
	}
	switch algo {
	case "best", "greedy", "random", "anneal", "exhaustive", "bnb":
	default:
		return fail(badRequest("unknown algo %q (want best, greedy, random, anneal, exhaustive or bnb)", algo))
	}
	switch req.Distributed {
	case "", "deterministic", "racing":
	default:
		return fail(badRequest("unknown distributed mode %q (want \"deterministic\" or \"racing\")", req.Distributed))
	}
	if req.Distributed != "" && algo != "bnb" {
		return fail(badRequest("\"distributed\" applies only to algo \"bnb\" (got %q)", algo))
	}
	racing := req.Distributed == "racing"
	budgetMs := req.BudgetMs
	seed := req.Seed
	run := func(outer context.Context, j *jobs.Job) (any, error) {
		prog := j.Progress()
		ctx := outer
		if budgetMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(outer, time.Duration(budgetMs)*time.Millisecond)
			defer cancel()
		}
		eng := s.engine(b)
		rng := rand.New(rand.NewSource(seed))
		var res sched.Result
		var exact *sched.ExactResult
		var err error
		switch algo {
		case "best":
			res, err = sched.BestOfEngine(ctx, eng, pipe, plat, cm, rng)
		case "greedy":
			res, err = sched.GreedyEngine(ctx, eng, pipe, plat, cm)
		case "random":
			res, err = sched.RandomSearchEngine(ctx, eng, pipe, plat, cm, rng, restarts, moves)
		case "anneal":
			res, err = sched.AnnealEngine(ctx, eng, pipe, plat, cm, rng, sched.AnnealOptions{Steps: steps})
		case "exhaustive":
			res, err = sched.ExhaustiveOneToOneEngine(ctx, eng, pipe, plat, cm)
		case "bnb":
			// The walkers stream their counter deltas into the job's atomic
			// progress gauges; pollers of GET /v1/jobs/{id} watch the tree
			// walk advance. Observation never changes the result.
			bopts := bnb.Options{
				OnProgress: func(d bnb.Stats) {
					prog.Nodes.Add(d.Nodes)
					prog.Leaves.Add(d.Leaves)
					prog.Pruned.Add(d.Pruned)
					prog.Screened.Add(d.Screened)
				},
				Replay: replay,
				Racing: racing,
			}
			if s.ckpt != nil {
				// Per-root durability: each finished subtree lands in the
				// job's checkpoint record as it completes. RootDone is a no-op
				// for jobs the persister never registered (inline requests),
				// so the hook is safe on every path.
				jobID := j.ID()
				bopts.OnRootDone = func(frontier int, root bnb.Root, res bnb.SubResult) {
					s.ckpt.RootDone(jobID, frontier, root, res)
				}
			}
			var x sched.ExactResult
			x, err = sched.BranchAndBoundEngineOpts(ctx, eng, pipe, plat, cm, bopts)
			if err == nil {
				res, exact = x.Result, &x
			}
		}
		if err != nil {
			// A context error is blamed on the client's budget only when the
			// client set one and it is the *budget* context that expired —
			// the pre-budget context (server RequestTimeout, connection)
			// still being alive is what distinguishes them. Everything else
			// flows to solveEndpoint's status mapping (503 for deadlines,
			// 500 otherwise).
			if budgetMs > 0 && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) &&
				outer.Err() == nil {
				return nil, badRequest("search budget of %d ms expired before a feasible mapping was found", budgetMs)
			}
			return nil, err
		}
		resp := SearchResponse{
			Algo:        algo,
			Backend:     b.String(),
			Model:       cm.String(),
			Replicas:    res.Mapping.Replicas,
			Period:      res.Period.String(),
			PeriodFloat: res.Period.Float64(),
			Throughput:  res.Throughput().String(),
		}
		if exact != nil {
			proven, nodes, pruned := exact.Proven, exact.Stats.Nodes, exact.Stats.Pruned
			resp.Proven, resp.Nodes, resp.Pruned = &proven, &nodes, &pruned
			screened := exact.Stats.Screened
			resp.Screened = &screened
		}
		return resp, nil
	}
	return run, cleanup, nil
}

// ---- /v1/internal/subtree ----

// SubtreeRequest is the body of POST /v1/internal/subtree: one frontier
// root of a distributed branch-and-bound search, shipped by the cluster
// coordinator to whichever node the ring assigns it. The instance always
// travels inline — a worker node must be able to run its roots with no
// shared store — and the root carries its exact bound as a rational string,
// so the exploration is bit-identical to the same root running inside a
// solo search.
type SubtreeRequest struct {
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	Platform *platform.Platform `json:"platform"`
	Model    string             `json:"model"`
	Backend  string             `json:"backend,omitempty"`
	// ChunkSize mirrors bnb.Options.ChunkSize (0 = the bnb default); the
	// coordinator forwards the value the original request implied so counts
	// stay deterministic.
	ChunkSize int `json:"chunkSize,omitempty"`
	// Root is the subtree to explore, exactly as bnb.Frontier planned it.
	Root bnb.Root `json:"root"`
	// WarmPeriod is the pruning reference the root starts from ("" = none):
	// the coordinator's warm start in deterministic mode, the best incumbent
	// so far in racing mode.
	WarmPeriod string `json:"warmPeriod,omitempty"`
}

// SubtreeResponse is the explored root's outcome in wire form.
type SubtreeResponse struct {
	Backend string        `json:"backend"`
	Result  bnb.SubResult `json:"result"`
}

func (r SubtreeResponse) backendLabel() string { return r.Backend }

func (s *Server) handleSubtree(r *http.Request) (rep reply, err error) {
	var req SubtreeRequest
	if err := decode(r, &req); err != nil {
		return rep, err
	}
	if req.Pipeline == nil || req.Platform == nil {
		return rep, badRequest("missing \"pipeline\" or \"platform\"")
	}
	cm, b, err := s.parseSelectors(req.Model, req.Backend)
	if err != nil {
		return rep, err
	}
	exec, err := bnb.NewLocalExecutor(s.engine(b), req.Pipeline, req.Platform, cm, bnb.Options{ChunkSize: req.ChunkSize})
	if err != nil {
		return rep, badRequest("%v", err)
	}
	root, warm := req.Root, req.WarmPeriod
	rep.solve = func(ctx context.Context) (any, error) {
		res, err := exec.RunRoot(ctx, root, warm)
		if err != nil {
			// RunRoot errors are malformed descriptors (bad bound or warm
			// string) — a caller problem, not a solver one.
			return nil, badRequest("%v", err)
		}
		return SubtreeResponse{Backend: b.String(), Result: res}, nil
	}
	return rep, nil
}

// ---- /v1/sweep ----

// SweepRequest runs the runtime-vs-duplication sweep. The point population
// is either generated — (Seed, Pairs) drawn from one serial rng stream, the
// default — or explicit: Instances inline or InstanceIDs referencing
// registered content (POST /v1/instances), one point per instance in order.
// The three population sources are mutually exclusive.
type SweepRequest struct {
	Seed    int64   `json:"seed,omitempty"`
	Pairs   [][]int `json:"pairs,omitempty"` // empty = exper.DefaultSweepPairs
	Backend string  `json:"backend,omitempty"`
	// Instances is an explicit inline population; each point's replication
	// vector is the instance's own.
	Instances []*model.Instance `json:"instances,omitempty"`
	// InstanceIDs is an explicit by-ID population (content IDs from
	// POST /v1/instances).
	InstanceIDs []string `json:"instanceIds,omitempty"`
	// Only restricts evaluation to the pair indices listed (nil = all),
	// answering one point per index in the order given. The instance
	// population is still drawn from the full (seed, pairs) rng stream, so
	// the point at index k is bit-identical to the k-th point of an
	// unrestricted sweep — this is how the cluster router scatters one sweep
	// across nodes: each node receives the full request plus the indices it
	// is home to, and the gathered points merge into exactly the single-node
	// answer.
	Only []int `json:"only,omitempty"`
}

// SweepPointJSON is one sweep point on the wire.
type SweepPointJSON struct {
	Reps       []int   `json:"reps"`
	PathCount  int64   `json:"pathCount"`
	PolyNs     int64   `json:"polyNs"`
	TPNNs      int64   `json:"tpnNs"`
	TPNSkipped bool    `json:"tpnSkipped"`
	Period     string  `json:"period"`
	PeriodF    float64 `json:"periodFloat"`
}

// maxSweepCells bounds the operation-table size a sweep vector may demand
// (the largest default pair implies ~2,000 cells; the cap leaves three
// orders of magnitude of headroom while keeping a hostile vector from
// allocating gigabytes).
const maxSweepCells = 1 << 21

// SweepResponse is the /v1/sweep answer.
type SweepResponse struct {
	Backend string           `json:"backend"`
	Points  []SweepPointJSON `json:"points"`
}

func (r SweepResponse) backendLabel() string { return r.Backend }

func (s *Server) handleSweep(r *http.Request) (reply, error) {
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		return reply{}, err
	}
	run, cleanup, err := s.sweepPlan(&req)
	if err != nil {
		return reply{}, err
	}
	return s.inlineJob("sweep", r, run, cleanup)
}

// sweepPlan validates a sweep request and compiles it into the runner the
// job engine executes — shared by the synchronous /v1/sweep handler and the
// "sweep" job kind, like searchPlan. On error every pin the plan took has
// been released; on success the caller owes one cleanup invocation.
func (s *Server) sweepPlan(req *SweepRequest) (jobRunner, func(), error) {
	var pinned []*store.Entry
	cleanup := func() {
		for _, e := range pinned {
			e.Release()
		}
	}
	fail := func(err error) (jobRunner, func(), error) {
		cleanup()
		return nil, nil, err
	}
	_, b, err := s.parseSelectors("overlap", req.Backend)
	if err != nil {
		return fail(err)
	}
	if len(req.Instances) > 0 && len(req.InstanceIDs) > 0 {
		return fail(badRequest("\"instances\" and \"instanceIds\" are mutually exclusive"))
	}
	if explicit := len(req.Instances) > 0 || len(req.InstanceIDs) > 0; explicit {
		if len(req.Pairs) > 0 {
			return fail(badRequest("\"pairs\" and an explicit instance population (\"instances\"/\"instanceIds\") are mutually exclusive"))
		}
		insts := req.Instances
		if len(req.InstanceIDs) > 0 {
			insts = make([]*model.Instance, len(req.InstanceIDs))
			for i, id := range req.InstanceIDs {
				ent, err := s.resolveInstance(id)
				if err != nil {
					return fail(codedError(http.StatusNotFound, CodeUnknownInstance, "instanceIds[%d]: %v", i, err))
				}
				pinned = append(pinned, ent)
				insts[i] = ent.Instance()
			}
		}
		for _, k := range req.Only {
			if k < 0 || k >= len(insts) {
				return fail(badRequest("only index %d out of range [0, %d)", k, len(insts)))
			}
		}
		only := req.Only
		total := len(only)
		if only == nil {
			total = len(insts)
		}
		run := func(ctx context.Context, j *jobs.Job) (any, error) {
			prog := j.Progress()
			prog.PointsTotal.Store(int64(total))
			pts, err := exper.RuntimeSweepInstances(ctx, s.engine(b), insts, only,
				func() { prog.PointsDone.Add(1) })
			if err != nil {
				return nil, err
			}
			return sweepResponse(b, pts), nil
		}
		return run, cleanup, nil
	}
	pairs := req.Pairs
	if len(pairs) == 0 {
		pairs = exper.DefaultSweepPairs()
	}
	for i, reps := range pairs {
		if len(reps) == 0 {
			return fail(badRequest("pairs[%d] is empty", i))
		}
		// The sweep materializes the instance server-side (comp vectors
		// plus one reps[j] x reps[j+1] matrix per file), so a few small
		// integers in the request could demand gigabytes; bound the cells
		// the vector implies before building anything.
		// Bound every factor before any multiplication: two factors <= 2^21
		// keep each product <= 2^42 and the checked running sum well inside
		// int64, so the guard cannot be bypassed by overflow (a
		// wrapped-negative sum would sail past the cells check and let a
		// 60-byte request demand gigabytes).
		for _, m := range reps {
			if m < 1 {
				return fail(badRequest("pairs[%d] holds non-positive replication %d", i, m))
			}
			if int64(m) > maxSweepCells {
				return fail(badRequest("pairs[%d] implies more than %d operation cells", i, int64(maxSweepCells)))
			}
		}
		cells := int64(0)
		for j, m := range reps {
			cells += int64(m)
			if j+1 < len(reps) {
				cells += int64(m) * int64(reps[j+1])
			}
			if cells > maxSweepCells {
				return fail(badRequest("pairs[%d] implies more than %d operation cells", i, int64(maxSweepCells)))
			}
		}
	}
	for _, k := range req.Only {
		if k < 0 || k >= len(pairs) {
			return fail(badRequest("only index %d out of range [0, %d)", k, len(pairs)))
		}
	}
	only := req.Only
	total := len(only)
	if only == nil {
		total = len(pairs)
	}
	seed := req.Seed
	run := func(ctx context.Context, j *jobs.Job) (any, error) {
		prog := j.Progress()
		prog.PointsTotal.Store(int64(total))
		pts, err := exper.RuntimeSweepEngineSubsetProgress(ctx, s.engine(b), seed, pairs, only,
			func() { prog.PointsDone.Add(1) })
		if err != nil {
			return nil, err
		}
		return sweepResponse(b, pts), nil
	}
	return run, cleanup, nil
}

// sweepResponse renders sweep points in wire form; shared by both
// population sources so their encodings cannot drift.
func sweepResponse(b cycles.Backend, pts []exper.SweepPoint) SweepResponse {
	resp := SweepResponse{Backend: b.String(), Points: make([]SweepPointJSON, len(pts))}
	for i, p := range pts {
		resp.Points[i] = SweepPointJSON{
			Reps:       p.Reps,
			PathCount:  p.PathCount,
			PolyNs:     p.PolyTime.Nanoseconds(),
			TPNNs:      p.TPNTime.Nanoseconds(),
			TPNSkipped: p.TPNSkipped,
			Period:     p.Period.String(),
			PeriodF:    p.Period.Float64(),
		}
	}
	return resp
}

// ---- serving ----

// Serve binds addr, serves s until ctx is canceled, then shuts down
// gracefully (in-flight requests get drainTimeout to finish). logf, when
// non-nil, receives one "listening on <addr>" line — the way cmd/serve
// reports the bound address for :0 listeners.
func Serve(ctx context.Context, addr string, opts Options, logf func(format string, args ...any)) error {
	s := NewServer(opts)
	if err := s.CheckpointErr(); err != nil {
		return err
	}
	// Resume checkpointed jobs before the listener opens: a poller that
	// reconnects the instant the port is back must already find its job.
	if resumed, rehydrated := s.ResumeJobs(); logf != nil && resumed+rehydrated > 0 {
		logf("checkpoint: resumed %d interrupted job(s), rehydrated %d terminal record(s) from %s",
			resumed, rehydrated, opts.CheckpointDir)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if logf != nil {
		logf("listening on %s (workers=%d, inflight budget=%d)", ln.Addr(), s.opts.Workers, s.opts.MaxInFlight)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// The handler's RequestTimeout context cannot interrupt network
		// reads, so a client trickling its body would otherwise hold a
		// goroutine (and its buffers) forever; the server-level deadlines
		// bound the whole exchange instead.
		ReadTimeout:  s.opts.RequestTimeout,
		WriteTimeout: s.opts.RequestTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() != nil {
		return <-done // surface a failed drain; nil on clean shutdown
	}
	return nil
}

// drainTimeout bounds graceful shutdown: requests still running this long
// after the stop signal are abandoned.
const drainTimeout = 15 * time.Second
