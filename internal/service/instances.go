package service

import (
	"net/http"
	"strings"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/store"
)

// ---- /v1/instances ----

// InstanceRequest registers a document with the content-addressed store:
// exactly one of Instance, Pipeline and Platform. (The route name predates
// the two description kinds; all three share the registry and the ID
// space, so search requests can reference a pipeline and a platform by ID
// the same way evaluate references an instance.)
type InstanceRequest struct {
	Instance *model.Instance    `json:"instance,omitempty"`
	Pipeline *pipeline.Pipeline `json:"pipeline,omitempty"`
	Platform *platform.Platform `json:"platform,omitempty"`
}

// InstanceResponse answers a registration (POST) or lookup (GET). The ID is
// the hex SHA-256 of the canonical content serialization: the same timed
// structure registers under the same ID from any client, on any node, across
// restarts — which is exactly what a consistent-hash router shards on.
type InstanceResponse struct {
	ID string `json:"id"`
	// Created reports whether this registration inserted a new entry (false:
	// the content was already resident and the ID refers to it).
	Created bool `json:"created"`
	// CanonicalKey is the model-independent canonical serialization the ID
	// addresses (replication structure plus exact operation times) — returned
	// on registration so a client can verify what it registered; omitted on
	// GET, where Instance carries the content itself. Instance kind only.
	CanonicalKey string `json:"canonicalKey,omitempty"`
	// Kind names the registered document kind for pipeline and platform
	// documents; omitted for instances (the original, default kind — its
	// responses predate Kind and keep their exact shape).
	Kind string `json:"kind,omitempty"`
	// Stages and PathCount summarize instance structure (Stages also counts
	// a pipeline's stages); Procs summarizes a platform.
	Stages    int   `json:"stages,omitempty"`
	PathCount int64 `json:"pathCount,omitempty"`
	Procs     int   `json:"procs,omitempty"`
	// Instance/Pipeline/Platform echo the stored content on GET lookups.
	Instance *model.Instance    `json:"instance,omitempty"`
	Pipeline *pipeline.Pipeline `json:"pipeline,omitempty"`
	Platform *platform.Platform `json:"platform,omitempty"`
}

// handleInstancePost registers an instance: POST /v1/instances with
// {"instance": {...}} answers the stable content ID. Registering the same
// content twice is an idempotent dedup, not an error.
//
// POST and GET count under separate metrics keys ("instancesPost" /
// "instancesGet"): registration volume and by-ID lookup volume are different
// signals — the router's load accounting reads them separately, and one
// shared "instances" counter made a replay storm indistinguishable from a
// lookup-heavy workload.
func (s *Server) handleInstancePost(w http.ResponseWriter, r *http.Request) {
	const name = "instancesPost"
	s.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		s.fail(w, name, http.StatusMethodNotAllowed, "/v1/instances requires POST (GET /v1/instances/{id} looks up)")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req InstanceRequest
	if err := decode(r, &req); err != nil {
		s.failErr(w, name, err)
		return
	}
	set := 0
	for _, present := range []bool{req.Instance != nil, req.Pipeline != nil, req.Platform != nil} {
		if present {
			set++
		}
	}
	if set == 0 {
		s.failErr(w, name, badRequest("missing \"instance\" (or \"pipeline\"/\"platform\" to register a description)"))
		return
	}
	if set > 1 {
		s.failErr(w, name, badRequest("\"instance\", \"pipeline\" and \"platform\" are mutually exclusive"))
		return
	}
	var (
		ent     *store.Entry
		created bool
		err     error
	)
	switch {
	case req.Pipeline != nil:
		if verr := req.Pipeline.Validate(); verr != nil {
			s.failErr(w, name, badRequest("%v", verr))
			return
		}
		ent, created, err = s.store.PutPipeline(req.Pipeline)
	case req.Platform != nil:
		if verr := req.Platform.Validate(); verr != nil {
			s.failErr(w, name, badRequest("%v", verr))
			return
		}
		ent, created, err = s.store.PutPlatform(req.Platform)
	default:
		ent, created, err = s.store.Put(req.Instance)
	}
	if err != nil {
		// ErrFull: every resident entry is pinned by an in-flight request —
		// a transient overload, so tell the client to retry, like a full
		// solve queue.
		s.fail(w, name, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp := InstanceResponse{ID: ent.ID(), Created: created}
	switch ent.Kind() {
	case store.KindPipeline:
		resp.Kind = string(store.KindPipeline)
		resp.Stages = len(ent.Pipeline().Stages)
	case store.KindPlatform:
		resp.Kind = string(store.KindPlatform)
		resp.Procs = ent.Platform().NumProcs()
	default:
		inst := ent.Instance()
		_, content := ent.TaskKey(model.Overlap)
		// The overlap task key is model prefix + content; strip the prefix to
		// hand back the model-free canonical serialization the ID hashes.
		resp.CanonicalKey = strings.TrimPrefix(content, overlapKeyPrefix)
		resp.Stages = inst.NumStages()
		resp.PathCount = inst.PathCount()
	}
	writeJSON(w, http.StatusOK, resp)
}

// overlapKeyPrefix is the model prefix engine.CanonicalKey prepends to the
// content serialization for the overlap model (model.Overlap == 0).
const overlapKeyPrefix = "0"

// handleInstanceGet looks a registration up: GET /v1/instances/{id} echoes
// the stored instance, 404 when the ID is unknown (never registered, or
// evicted by store pressure — re-register to restore it).
func (s *Server) handleInstanceGet(w http.ResponseWriter, r *http.Request) {
	const name = "instancesGet"
	s.met.requests.Add(name, 1)
	if r.Method != http.MethodGet {
		s.fail(w, name, http.StatusMethodNotAllowed, "/v1/instances/{id} requires GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/instances/")
	if id == "" || strings.Contains(id, "/") {
		s.failErr(w, name, badRequest("bad instance path %q (want /v1/instances/{id})", r.URL.Path))
		return
	}
	ent, ok := s.store.Resolve(id)
	if !ok {
		s.failErr(w, name, codedError(http.StatusNotFound, CodeUnknownInstance,
			"unknown instance ID %q (expired or never registered; POST /v1/instances to register)", id))
		return
	}
	defer ent.Release()
	resp := InstanceResponse{ID: ent.ID(), Created: false}
	switch ent.Kind() {
	case store.KindPipeline:
		resp.Kind = string(store.KindPipeline)
		resp.Stages = len(ent.Pipeline().Stages)
		resp.Pipeline = ent.Pipeline()
	case store.KindPlatform:
		resp.Kind = string(store.KindPlatform)
		resp.Procs = ent.Platform().NumProcs()
		resp.Platform = ent.Platform()
	default:
		inst := ent.Instance()
		resp.Stages = inst.NumStages()
		resp.PathCount = inst.PathCount()
		resp.Instance = inst
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveInstance resolves a by-ID reference for a solve request: the entry
// comes back pinned (the caller owes one Release once the request finishes)
// so store eviction cannot recycle it mid-solve.
func (s *Server) resolveInstance(id string) (*store.Entry, error) {
	return s.resolveDoc(id, store.KindInstance)
}

// resolveDoc resolves a by-ID reference of the expected document kind,
// pinned like resolveInstance. A registered ID of the wrong kind is a 400
// naming both kinds — truthfully distinct from an unknown ID's 404.
func (s *Server) resolveDoc(id string, kind store.Kind) (*store.Entry, error) {
	ent, ok := s.store.Resolve(id)
	if !ok {
		return nil, codedError(http.StatusNotFound, CodeUnknownInstance,
			"unknown %s ID %q (expired or never registered; POST /v1/instances to register)", kind, id)
	}
	if ent.Kind() != kind {
		ent.Release()
		return nil, badRequest("ID %q names a registered %s, not a %s", id, ent.Kind(), kind)
	}
	return ent, nil
}
