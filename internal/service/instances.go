package service

import (
	"net/http"
	"strings"

	"repro/internal/model"
	"repro/internal/store"
)

// ---- /v1/instances ----

// InstanceRequest registers an instance with the content-addressed store.
type InstanceRequest struct {
	Instance *model.Instance `json:"instance"`
}

// InstanceResponse answers a registration (POST) or lookup (GET). The ID is
// the hex SHA-256 of the canonical content serialization: the same timed
// structure registers under the same ID from any client, on any node, across
// restarts — which is exactly what a consistent-hash router shards on.
type InstanceResponse struct {
	ID string `json:"id"`
	// Created reports whether this registration inserted a new entry (false:
	// the content was already resident and the ID refers to it).
	Created bool `json:"created"`
	// CanonicalKey is the model-independent canonical serialization the ID
	// addresses (replication structure plus exact operation times) — returned
	// on registration so a client can verify what it registered; omitted on
	// GET, where Instance carries the content itself.
	CanonicalKey string `json:"canonicalKey,omitempty"`
	// Stages and PathCount summarize the registered structure.
	Stages    int   `json:"stages"`
	PathCount int64 `json:"pathCount"`
	// Instance echoes the stored content on GET lookups.
	Instance *model.Instance `json:"instance,omitempty"`
}

// handleInstancePost registers an instance: POST /v1/instances with
// {"instance": {...}} answers the stable content ID. Registering the same
// content twice is an idempotent dedup, not an error.
//
// POST and GET count under separate metrics keys ("instancesPost" /
// "instancesGet"): registration volume and by-ID lookup volume are different
// signals — the router's load accounting reads them separately, and one
// shared "instances" counter made a replay storm indistinguishable from a
// lookup-heavy workload.
func (s *Server) handleInstancePost(w http.ResponseWriter, r *http.Request) {
	const name = "instancesPost"
	s.met.requests.Add(name, 1)
	if r.Method != http.MethodPost {
		s.fail(w, name, http.StatusMethodNotAllowed, "/v1/instances requires POST (GET /v1/instances/{id} looks up)")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req InstanceRequest
	if err := decode(r, &req); err != nil {
		s.failErr(w, name, err)
		return
	}
	if req.Instance == nil {
		s.failErr(w, name, badRequest("missing \"instance\""))
		return
	}
	ent, created, err := s.store.Put(req.Instance)
	if err != nil {
		// ErrFull: every resident entry is pinned by an in-flight request —
		// a transient overload, so tell the client to retry, like a full
		// solve queue.
		s.fail(w, name, http.StatusServiceUnavailable, err.Error())
		return
	}
	inst := ent.Instance()
	_, content := ent.TaskKey(model.Overlap)
	writeJSON(w, http.StatusOK, InstanceResponse{
		ID:      ent.ID(),
		Created: created,
		// The overlap task key is model prefix + content; strip the prefix to
		// hand back the model-free canonical serialization the ID hashes.
		CanonicalKey: strings.TrimPrefix(content, overlapKeyPrefix),
		Stages:       inst.NumStages(),
		PathCount:    inst.PathCount(),
	})
}

// overlapKeyPrefix is the model prefix engine.CanonicalKey prepends to the
// content serialization for the overlap model (model.Overlap == 0).
const overlapKeyPrefix = "0"

// handleInstanceGet looks a registration up: GET /v1/instances/{id} echoes
// the stored instance, 404 when the ID is unknown (never registered, or
// evicted by store pressure — re-register to restore it).
func (s *Server) handleInstanceGet(w http.ResponseWriter, r *http.Request) {
	const name = "instancesGet"
	s.met.requests.Add(name, 1)
	if r.Method != http.MethodGet {
		s.fail(w, name, http.StatusMethodNotAllowed, "/v1/instances/{id} requires GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/instances/")
	if id == "" || strings.Contains(id, "/") {
		s.failErr(w, name, badRequest("bad instance path %q (want /v1/instances/{id})", r.URL.Path))
		return
	}
	ent, ok := s.store.Resolve(id)
	if !ok {
		s.failErr(w, name, notFound("unknown instance ID %q (expired or never registered; POST /v1/instances to register)", id))
		return
	}
	defer ent.Release()
	inst := ent.Instance()
	writeJSON(w, http.StatusOK, InstanceResponse{
		ID:        ent.ID(),
		Created:   false,
		Stages:    inst.NumStages(),
		PathCount: inst.PathCount(),
		Instance:  inst,
	})
}

// resolveInstance resolves a by-ID reference for a solve request: the entry
// comes back pinned (the caller owes one Release once the request finishes)
// so store eviction cannot recycle it mid-solve.
func (s *Server) resolveInstance(id string) (*store.Entry, error) {
	ent, ok := s.store.Resolve(id)
	if !ok {
		return nil, notFound("unknown instance ID %q (expired or never registered; POST /v1/instances to register)", id)
	}
	return ent, nil
}
