package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/bnb"
	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/model"
	"repro/internal/sched"
)

// resumableSearch is a bnb search small enough to finish in test time but
// big enough that the greedy warm start does not prune the whole tree: the
// frontier survives with dozens of roots, so an interrupted checkpoint has
// work both to replay and to re-execute.
func resumableSearch(t *testing.T) SearchRequest {
	t.Helper()
	work := make([]int64, 8)
	files := make([]int64, 7)
	for i := range work {
		work[i] = int64(100 + 37*i)
	}
	for i := range files {
		files[i] = int64(40 + 11*i)
	}
	return SearchRequest{
		Pipeline: mustPipeline(t, work, files),
		Platform: mustPlatformN(16),
		Model:    "overlap",
		Algo:     "bnb",
	}
}

// waitRecord polls the checkpoint store for a record satisfying accept.
// Needed because the persister's terminal write lands after the job's
// in-memory state flips (a crash in that window costs one replay, by
// design), so an HTTP poller can observe "done" before the disk does.
func waitRecord(t *testing.T, m *checkpoint.Manager, id string, accept func(checkpoint.Record) bool) checkpoint.Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var rec checkpoint.Record
		err := m.Store().Load(id, &rec)
		if err == nil && accept(rec) {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("record %q never reached the expected state: %+v (err %v)", id, rec, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointResumeByteIdentical is the kill-mid-job acceptance test: a
// bnb job interrupted after finishing part of its frontier is resumed on a
// fresh server (the "restarted process"), re-executes only from its stored
// body plus the finished-root replay, and answers bytes identical to the
// same job run uninterrupted on a server that never crashed.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	search := resumableSearch(t)
	body := mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &search})
	jobID := JobKeyPrefix(body) + "-1"

	// Uninterrupted reference run on a checkpoint-free server.
	_, ref := newTestServer(t, Options{Workers: 2})
	j := submitJob(t, ref.URL, body)
	if j.ID != jobID {
		t.Fatalf("reference job ID %q, want %q", j.ID, jobID)
	}
	pollJob(t, ref.URL, jobID, terminal)
	want, status := do(t, http.MethodGet, ref.URL+"/v1/jobs/"+jobID+"/result")
	if status != http.StatusOK {
		t.Fatalf("reference result: status %d body %s", status, want)
	}

	// Capture the per-root results of the same deterministic search — the
	// exact plan the server executes for this body.
	var mu sync.Mutex
	captured := map[int]bnb.SubResult{}
	frontier := 0
	eng := engine.New(engine.Options{Workers: 2})
	if _, err := sched.BranchAndBoundEngineOpts(t.Context(), eng, search.Pipeline, search.Platform, model.Overlap,
		bnb.Options{OnRootDone: func(f int, root bnb.Root, res bnb.SubResult) {
			mu.Lock()
			captured[root.Index] = res
			frontier = f
			mu.Unlock()
		}}); err != nil {
		t.Fatal(err)
	}
	if frontier < 4 || len(captured) != frontier {
		t.Fatalf("captured %d of %d roots; the fixture needs a real frontier", len(captured), frontier)
	}

	// The "crash": a checkpoint record holding roughly half the finished
	// roots, exactly as the persister would have left it mid-run.
	done := map[int]bnb.SubResult{}
	for idx, res := range captured {
		if idx%2 == 0 {
			done[idx] = res
		}
	}
	sum := sha256.Sum256(body)
	rec := checkpoint.Record{
		JobID:     jobID,
		Kind:      "search",
		Body:      body,
		BodyHash:  hex.EncodeToString(sum[:]),
		State:     string(jobs.StateRunning),
		Frontier:  frontier,
		DoneRoots: checkpoint.Bitmap(done, frontier),
		Roots:     done,
	}
	dir := t.TempDir()
	seed, err := checkpoint.NewManager(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Store().Save(rec.JobID, rec); err != nil {
		t.Fatal(err)
	}

	// The restarted process.
	s, ts := newTestServer(t, Options{Workers: 2, CheckpointDir: dir})
	if err := s.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	resumed, rehydrated := s.ResumeJobs()
	if resumed != 1 || rehydrated != 0 {
		t.Fatalf("ResumeJobs = (%d, %d), want (1, 0)", resumed, rehydrated)
	}
	fin := pollJob(t, ts.URL, jobID, terminal)
	if fin.State != "done" {
		t.Fatalf("resumed job finished %q (error %+v), want done", fin.State, fin.Error)
	}
	got, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/result")
	if status != http.StatusOK {
		t.Fatalf("resumed result: status %d body %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed: %s\nsolo:    %s", got, want)
	}

	// The terminal record replaced the working set on disk: state done, the
	// result bytes retained, the root set gone.
	after := waitRecord(t, s.ckpt, jobID, func(r checkpoint.Record) bool { return r.State == "done" })
	if !bytes.Equal(after.Result, want) || len(after.Roots) != 0 {
		t.Fatalf("terminal record after resume = %+v", after)
	}
}

// TestCheckpointLifecycleOverHTTP drives a detached job on a checkpointed
// server and asserts the durable record tracks the job through submission
// and completion — and that a second server started on the same directory
// rehydrates the terminal answer for pollers.
func TestCheckpointLifecycleOverHTTP(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 2, CheckpointDir: dir})
	search := resumableSearch(t)
	body := mustMarshal(t, JobSubmitRequest{Kind: "search", Search: &search})
	j := submitJob(t, ts.URL, body)
	pollJob(t, ts.URL, j.ID, terminal)
	want, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result: status %d body %s", status, want)
	}
	rec := waitRecord(t, s.ckpt, j.ID, func(r checkpoint.Record) bool { return r.State == "done" })
	if !bytes.Equal(rec.Result, want) || rec.BodyHash == "" {
		t.Fatalf("terminal record = %+v", rec)
	}
	if rec.Stats == nil || rec.Stats.Nodes == 0 {
		t.Fatalf("terminal record froze no stats: %+v", rec.Stats)
	}
	wantStatus, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID)
	if status != http.StatusOK {
		t.Fatalf("status: %d body %s", status, wantStatus)
	}

	// "Restart": a fresh server over the same directory answers the result
	// under the original ID without re-running anything.
	s2, ts2 := newTestServer(t, Options{Workers: 2, CheckpointDir: dir})
	resumed, rehydrated := s2.ResumeJobs()
	if resumed != 0 || rehydrated != 1 {
		t.Fatalf("ResumeJobs = (%d, %d), want (0, 1)", resumed, rehydrated)
	}
	replay, status := do(t, http.MethodGet, ts2.URL+"/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK || !bytes.Equal(replay, want) {
		t.Fatalf("rehydrated result: status %d\nreplayed: %s\noriginal: %s", status, replay, want)
	}
	fin := pollJob(t, ts2.URL, j.ID, terminal)
	if fin.State != "done" {
		t.Fatalf("rehydrated job state %q, want done", fin.State)
	}
	// The status document — terminal progress counters included — survives
	// the restart byte-for-byte, not just the result.
	replayStatus, status := do(t, http.MethodGet, ts2.URL+"/v1/jobs/"+j.ID)
	if status != http.StatusOK || !bytes.Equal(replayStatus, wantStatus) {
		t.Fatalf("rehydrated status differs:\nreplayed: %s\noriginal: %s", replayStatus, wantStatus)
	}
	// A failed record replays its failure verbatim.
	if _, err := s2.jobs.Rehydrate("feedfeedfeedfeed-1", "search", jobs.StateFailed, nil,
		&jobs.Failure{Status: 422, Code: "invalid_request", Message: "no"}); err != nil {
		t.Fatal(err)
	}
	errBody, status := do(t, http.MethodGet, ts2.URL+"/v1/jobs/feedfeedfeedfeed-1/result")
	if status != 422 {
		t.Fatalf("rehydrated failure: status %d body %s", status, errBody)
	}
}

// TestSubtreeEndpointMatchesLocalExecutor: a root shipped over the wire to
// /v1/internal/subtree answers the exact SubResult the in-process executor
// produces — the property that makes distributed deterministic search
// bit-identical to solo.
func TestSubtreeEndpointMatchesLocalExecutor(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	search := resumableSearch(t)
	roots, _, err := bnb.Frontier(t.Context(), search.Pipeline, search.Platform, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 2 {
		t.Fatalf("frontier of %d roots is no fixture", len(roots))
	}
	exec, err := bnb.NewLocalExecutor(engine.New(engine.Options{Workers: 2}),
		search.Pipeline, search.Platform, model.Overlap, bnb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range roots[:2] {
		want, err := exec.RunRoot(t.Context(), root, "")
		if err != nil {
			t.Fatal(err)
		}
		var resp SubtreeResponse
		postJSON(t, ts.URL+"/v1/internal/subtree", SubtreeRequest{
			Pipeline: search.Pipeline,
			Platform: search.Platform,
			Model:    "overlap",
			Root:     root,
		}, &resp)
		if !bytes.Equal(mustMarshal(t, resp.Result), mustMarshal(t, want)) {
			t.Fatalf("root %d over the wire:\ngot:  %+v\nwant: %+v", root.Index, resp.Result, want)
		}
	}
	// Malformed descriptors are the caller's fault: 400, not 500.
	bad := roots[0]
	bad.LB = "not-a-rational"
	body, status := postJSONStatus(t, ts.URL+"/v1/internal/subtree", SubtreeRequest{
		Pipeline: search.Pipeline, Platform: search.Platform, Model: "overlap", Root: bad,
	})
	if status != http.StatusBadRequest {
		t.Fatalf("malformed root: status %d body %s", status, body)
	}
	if body, status := postJSONStatus(t, ts.URL+"/v1/internal/subtree", SubtreeRequest{Model: "overlap"}); status != http.StatusBadRequest {
		t.Fatalf("missing instance: status %d body %s", status, body)
	}
}

// TestDistributedFieldSolo: a solo node accepts both distributed modes for
// algo bnb — racing returns the same proven optimum as deterministic — and
// refuses the field on heuristic algos.
func TestDistributedFieldSolo(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	search := resumableSearch(t)

	var det, race SearchResponse
	search.Distributed = "deterministic"
	postJSON(t, ts.URL+"/v1/search", search, &det)
	search.Distributed = "racing"
	postJSON(t, ts.URL+"/v1/search", search, &race)
	if det.Proven == nil || !*det.Proven || race.Proven == nil || !*race.Proven {
		t.Fatalf("distributed searches not proven: det %+v race %+v", det.Proven, race.Proven)
	}
	if det.Period != race.Period {
		t.Fatalf("racing period %s differs from deterministic %s", race.Period, det.Period)
	}

	search.Distributed = "sideways"
	if body, status := postJSONStatus(t, ts.URL+"/v1/search", search); status != http.StatusBadRequest {
		t.Fatalf("unknown distributed mode: status %d body %s", status, body)
	}
	search.Distributed = "deterministic"
	search.Algo = "greedy"
	if body, status := postJSONStatus(t, ts.URL+"/v1/search", search); status != http.StatusBadRequest {
		t.Fatalf("distributed greedy: status %d body %s", status, body)
	}
}

// TestCheckpointDirUnusable: a server asked to be durable on a directory it
// cannot create reports the failure instead of running undurable.
func TestCheckpointDirUnusable(t *testing.T) {
	s := NewServer(Options{Workers: 1, CheckpointDir: "/dev/null/not-a-dir"})
	if s.CheckpointErr() == nil {
		t.Fatal("unusable checkpoint dir accepted silently")
	}
	if resumed, rehydrated := s.ResumeJobs(); resumed != 0 || rehydrated != 0 {
		t.Fatalf("ResumeJobs on a broken dir = (%d, %d)", resumed, rehydrated)
	}
}

// TestResumeSweepRerunsFully: an interrupted sweep resumes by re-running
// from its stored body (its response carries wall-clock timings, so there
// is no splice) and still terminates with a well-formed answer.
func TestResumeSweepRerunsFully(t *testing.T) {
	body := mustMarshal(t, JobSubmitRequest{Kind: "sweep", Sweep: &SweepRequest{Seed: 4, Pairs: [][]int{{2, 2}, {2, 3}}}})
	jobID := JobKeyPrefix(body) + "-1"
	sum := sha256.Sum256(body)
	rec := checkpoint.Record{
		JobID:    jobID,
		Kind:     "sweep",
		Body:     body,
		BodyHash: hex.EncodeToString(sum[:]),
		State:    string(jobs.StateRunning),
	}
	dir := t.TempDir()
	seed, err := checkpoint.NewManager(dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Store().Save(rec.JobID, rec); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Workers: 2, CheckpointDir: dir})
	if resumed, _ := s.ResumeJobs(); resumed != 1 {
		t.Fatalf("sweep resume count %d, want 1", resumed)
	}
	fin := pollJob(t, ts.URL, jobID, terminal)
	if fin.State != "done" {
		t.Fatalf("resumed sweep finished %q (error %+v)", fin.State, fin.Error)
	}
	result, status := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/result")
	if status != http.StatusOK {
		t.Fatalf("resumed sweep result: status %d body %s", status, result)
	}
	var sweep SweepResponse
	if err := json.Unmarshal(result, &sweep); err != nil || len(sweep.Points) != 2 {
		t.Fatalf("resumed sweep answered %s (err %v), want 2 points", result, err)
	}
	// Wait for the terminal write before the TempDir cleanup runs — it lands
	// after the in-memory state flips.
	waitRecord(t, s.ckpt, jobID, func(r checkpoint.Record) bool { return r.State == "done" })
}
