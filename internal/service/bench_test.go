package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchResponseWriter is a minimal ResponseWriter so the benchmark measures
// the serving stack, not httptest's recorder bookkeeping.
type benchResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *benchResponseWriter) Header() http.Header         { return w.h }
func (w *benchResponseWriter) WriteHeader(code int)        { w.status = code }
func (w *benchResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// BenchmarkServeHitPath measures the full in-process request path of a
// hit-dominated /v1/evaluate workload — the steady state a loadgen run
// converges to — in its two request forms:
//
//   - by-id: the body carries a 64-byte content ID; the canonical task key
//     is a precomputed field load and the response comes straight from the
//     response-bytes memo.
//   - inline: the body carries the full instance JSON, re-parsed and
//     re-serialized to its canonical key on every request before the same
//     memo lookup.
//
// The by-id/inline ns-per-op ratio is the measured value of the
// content-addressed protocol (gated in scripts/benchjson.awk, along with
// the by-id allocation count).
func BenchmarkServeHitPath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := randomTimedInstance(b, rng, []int{8, 8})
	s := NewServer(Options{Workers: 1})
	handler := s.Handler()

	run := func(path string, payload []byte) (status int, body int) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
		w := &benchResponseWriter{h: make(http.Header)}
		handler.ServeHTTP(w, req)
		return w.status, w.n
	}

	regPayload, err := json.Marshal(InstanceRequest{Instance: inst})
	if err != nil {
		b.Fatal(err)
	}
	if status, _ := run("/v1/instances", regPayload); status != http.StatusOK {
		b.Fatalf("register: status %d", status)
	}
	var reg InstanceResponse
	{
		req := httptest.NewRequest(http.MethodPost, "/v1/instances", bytes.NewReader(regPayload))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
			b.Fatal(err)
		}
	}

	forms := []struct {
		name    string
		request EvaluateRequest
	}{
		{"by-id", EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}},
		{"inline", EvaluateRequest{Instance: inst, Model: "overlap"}},
	}
	for _, form := range forms {
		payload, err := json.Marshal(form.request)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the solve and the response memo: every timed iteration is a
		// pure hit.
		if status, _ := run("/v1/evaluate", payload); status != http.StatusOK {
			b.Fatalf("%s warm-up: status %d", form.name, status)
		}
		b.Run(form.name, func(b *testing.B) {
			req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", bytes.NewReader(nil))
			rd := bytes.NewReader(payload)
			body := io.NopCloser(rd)
			w := &benchResponseWriter{h: make(http.Header)}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd.Reset(payload)
				req.Body = body
				w.status, w.n = 0, 0
				handler.ServeHTTP(w, req)
				if w.status != http.StatusOK {
					b.Fatalf("iteration %d: status %d", i, w.status)
				}
			}
		})
	}
}
