package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// benchResponseWriter is a minimal ResponseWriter so the benchmark measures
// the serving stack, not httptest's recorder bookkeeping.
type benchResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *benchResponseWriter) Header() http.Header         { return w.h }
func (w *benchResponseWriter) WriteHeader(code int)        { w.status = code }
func (w *benchResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// BenchmarkServeHitPath measures the full in-process request path of a
// hit-dominated /v1/evaluate workload — the steady state a loadgen run
// converges to — in its two request forms:
//
//   - by-id: the body carries a 64-byte content ID; the canonical task key
//     is a precomputed field load and the response comes straight from the
//     response-bytes memo.
//   - inline: the body carries the full instance JSON, re-parsed and
//     re-serialized to its canonical key on every request before the same
//     memo lookup.
//
// The by-id/inline ns-per-op ratio is the measured value of the
// content-addressed protocol (gated in scripts/benchjson.awk, along with
// the by-id allocation count).
func BenchmarkServeHitPath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := randomTimedInstance(b, rng, []int{8, 8})
	s := NewServer(Options{Workers: 1})
	handler := s.Handler()

	run := func(path string, payload []byte) (status int, body int) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
		w := &benchResponseWriter{h: make(http.Header)}
		handler.ServeHTTP(w, req)
		return w.status, w.n
	}

	regPayload, err := json.Marshal(InstanceRequest{Instance: inst})
	if err != nil {
		b.Fatal(err)
	}
	if status, _ := run("/v1/instances", regPayload); status != http.StatusOK {
		b.Fatalf("register: status %d", status)
	}
	var reg InstanceResponse
	{
		req := httptest.NewRequest(http.MethodPost, "/v1/instances", bytes.NewReader(regPayload))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
			b.Fatal(err)
		}
	}

	forms := []struct {
		name    string
		request EvaluateRequest
	}{
		{"by-id", EvaluateRequest{InstanceID: reg.ID, Model: "overlap"}},
		{"inline", EvaluateRequest{Instance: inst, Model: "overlap"}},
	}
	for _, form := range forms {
		payload, err := json.Marshal(form.request)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the solve and the response memo: every timed iteration is a
		// pure hit.
		if status, _ := run("/v1/evaluate", payload); status != http.StatusOK {
			b.Fatalf("%s warm-up: status %d", form.name, status)
		}
		b.Run(form.name, func(b *testing.B) {
			req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", bytes.NewReader(nil))
			rd := bytes.NewReader(payload)
			body := io.NopCloser(rd)
			w := &benchResponseWriter{h: make(http.Header)}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd.Reset(payload)
				req.Body = body
				w.status, w.n = 0, 0
				handler.ServeHTTP(w, req)
				if w.status != http.StatusOK {
					b.Fatalf("iteration %d: status %d", i, w.status)
				}
			}
		})
	}
}

// BenchmarkJobSubmitPollOverhead measures what the async surface costs on
// top of the solve itself, in-process through the full handler stack:
//
//   - poll: one status poll plus one result fetch of an already-terminal
//     job — the steady-state overhead every async client pays per poll
//     cycle, with no solver in the path. Deterministic, so its allocs/op
//     are gated in scripts/benchjson.awk (JOBALLOC_GATE).
//   - cycle: the full submit → poll-until-done → fetch-result round trip
//     of a tiny greedy search. Reported for the sync-vs-async comparison
//     in EXPERIMENTS.md but ungated: the number of polls a cycle needs is
//     scheduling-dependent.
func BenchmarkJobSubmitPollOverhead(b *testing.B) {
	pipe := mustBenchPipeline(b)
	s := NewServer(Options{Workers: 1, JobEntries: 64})
	handler := s.Handler()

	searchReq := &SearchRequest{
		Pipeline: pipe, Platform: benchPlatform(), Model: "overlap", Algo: "greedy",
	}
	syncPayload, err := json.Marshal(searchReq)
	if err != nil {
		b.Fatal(err)
	}
	submitPayload, err := json.Marshal(JobSubmitRequest{Kind: "search", Search: searchReq})
	if err != nil {
		b.Fatal(err)
	}

	do := func(method, path string, payload []byte) (int, []byte) {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}
	await := func(id string) {
		for {
			status, body := do(http.MethodGet, "/v1/jobs/"+id, nil)
			if status != http.StatusOK {
				b.Fatalf("poll %s: status %d body %s", id, status, body)
			}
			var j Job
			if err := json.Unmarshal(body, &j); err != nil {
				b.Fatal(err)
			}
			switch j.State {
			case "done":
				return
			case "failed", "canceled":
				b.Fatalf("job %s reached %q", id, j.State)
			}
			// Yield between polls: in-process hot polling would otherwise
			// compete with the solver goroutine for the benchmark's Ps and
			// measure scheduler contention instead of surface overhead.
			runtime.Gosched()
		}
	}

	// One terminal job for the poll benchmark.
	status, body := do(http.MethodPost, "/v1/jobs", submitPayload)
	if status != http.StatusAccepted {
		b.Fatalf("seed submit: status %d body %s", status, body)
	}
	var seed Job
	if err := json.Unmarshal(body, &seed); err != nil {
		b.Fatal(err)
	}
	await(seed.ID)

	b.Run("poll", func(b *testing.B) {
		statusPath := "/v1/jobs/" + seed.ID
		resultPath := statusPath + "/result"
		req := httptest.NewRequest(http.MethodGet, statusPath, nil)
		w := &benchResponseWriter{h: make(http.Header)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.URL.Path = statusPath
			w.status, w.n = 0, 0
			handler.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("status poll: %d", w.status)
			}
			req.URL.Path = resultPath
			w.status, w.n = 0, 0
			handler.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("result fetch: %d", w.status)
			}
		}
	})

	b.Run("cycle", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			status, body := do(http.MethodPost, "/v1/jobs", submitPayload)
			if status != http.StatusAccepted {
				b.Fatalf("iteration %d: submit status %d body %s", i, status, body)
			}
			var j Job
			if err := json.Unmarshal(body, &j); err != nil {
				b.Fatal(err)
			}
			await(j.ID)
			if rs, rb := do(http.MethodGet, "/v1/jobs/"+j.ID+"/result", nil); rs != http.StatusOK {
				b.Fatalf("iteration %d: result status %d body %s", i, rs, rb)
			}
		}
	})

	b.Run("sync", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if status, _ := do(http.MethodPost, "/v1/search", syncPayload); status != http.StatusOK {
				b.Fatalf("iteration %d: status %d", i, status)
			}
		}
	})
}

func mustBenchPipeline(b *testing.B) *pipeline.Pipeline {
	b.Helper()
	p, err := pipeline.New([]int64{100, 200, 100}, []int64{50, 50})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchPlatform() *platform.Platform { return platform.Uniform(4, 100, 100) }
