package service

import (
	"context"

	"net/http"
	"repro/internal/bnb"
	"repro/internal/checkpoint"
	"repro/internal/jobs"
)

// ResumeJobs replays the checkpoint directory into the job registry — the
// restart half of the durability story. Terminal records re-enter the
// registry as finished jobs, so pollers keep getting the answers they were
// promised across a restart. Running records are re-submitted under their
// exact original IDs and re-executed from their stored bodies; a bnb
// search's finished subtree roots are injected as a replay map, so only the
// unfinished roots cost anything and the deterministic result is
// byte-identical to an uninterrupted run (sweeps re-run in full — their
// responses carry wall-clock timings, so there is nothing exact to splice).
// Records that cannot be resumed (malformed body, registry collision,
// active-job cap) are rehydrated as failed jobs when possible and skipped
// otherwise; a bad record never prevents the rest from resuming.
//
// Returns the number of running jobs resumed and terminal records
// rehydrated. It is a no-op without CheckpointDir, and is meant to run once
// at startup, before the listener opens.
func (s *Server) ResumeJobs() (resumed, rehydrated int) {
	if s.ckpt == nil {
		return 0, 0
	}
	for _, rec := range s.ckpt.Resumable() {
		switch rec.State {
		case string(jobs.StateDone), string(jobs.StateCanceled), string(jobs.StateFailed):
			// States replay verbatim: a canceled bnb search keeps both its
			// canceled state and the anytime result that rode along; a failed
			// job keeps its recorded failure.
			var failure *jobs.Failure
			if rec.Failure != nil {
				failure = &jobs.Failure{Status: rec.Failure.Status, Code: rec.Failure.Code, Message: rec.Failure.Message}
			} else if rec.State == string(jobs.StateFailed) {
				failure = &jobs.Failure{
					Status:  http.StatusInternalServerError,
					Code:    DefaultErrorCode(http.StatusInternalServerError),
					Message: "job failed before the restart; the failure record was lost",
				}
			}
			if j, err := s.jobs.Rehydrate(rec.JobID, rec.Kind, jobs.State(rec.State), rec.Result, failure); err == nil {
				if st := rec.Stats; st != nil {
					// Restore the terminal progress counters, so a poll after
					// the restart reports the same numbers as one before it.
					p := j.Progress()
					p.Nodes.Store(st.Nodes)
					p.Leaves.Store(st.Leaves)
					p.Pruned.Store(st.Pruned)
					p.Screened.Store(st.Screened)
					p.PointsDone.Store(st.PointsDone)
					p.PointsTotal.Store(st.PointsTotal)
				}
				rehydrated++
			}
		case string(jobs.StatePending), string(jobs.StateRunning):
			if s.resumeRunning(rec) {
				resumed++
			}
		}
	}
	return resumed, rehydrated
}

// resumeRunning re-plans one interrupted job from its stored body and
// restarts it under its original ID.
func (s *Server) resumeRunning(rec checkpoint.Record) bool {
	run, cleanup, err := s.resumePlan(rec)
	if err != nil {
		// The body validated once (it was planned at submission), so a plan
		// failure here means the record is damaged or the world changed (e.g.
		// a by-ID reference whose instance store emptied with the restart).
		// Surface it to pollers as a failed job instead of silently dropping
		// the ID they hold.
		s.jobs.Rehydrate(rec.JobID, rec.Kind, jobs.StateFailed, nil, failureOf(err))
		return false
	}
	j, err := s.jobs.Resume(rec.JobID, rec.Kind, rec.Body, context.Background(), s.opts.JobTimeout)
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return false
	}
	// Re-register the record with the persister AFTER Resume: jobs.Resume
	// notifies Submitted, which writes a fresh (rootless) record; adopting
	// the loaded one restores the finished roots to the in-memory working
	// set so the next flush carries them again. A crash inside this window
	// only costs the replay — the job re-runs from scratch, still correct.
	s.ckpt.Adopt(rec)
	go s.runDetached(j, run, cleanup)
	return true
}

// resumePlan compiles a checkpointed body back into a runner, injecting the
// finished bnb roots as replay.
func (s *Server) resumePlan(rec checkpoint.Record) (jobRunner, func(), error) {
	var sub JobSubmitRequest
	if err := decodeBytes(rec.Body, &sub); err != nil {
		return nil, nil, err
	}
	switch {
	case rec.Kind == "search" && sub.Search != nil:
		var replay map[int]bnb.SubResult
		if len(rec.Roots) > 0 {
			replay = rec.Roots
		}
		return s.searchPlanReplay(sub.Search, replay)
	case rec.Kind == "sweep" && sub.Sweep != nil:
		return s.sweepPlan(sub.Sweep)
	default:
		return nil, nil, badRequest("checkpointed job %q has kind %q but no matching payload", rec.JobID, rec.Kind)
	}
}
