package service

import (
	"net/http"
	"strconv"
)

// ErrorInfo is the unified error payload every /v1/* failure carries:
// a stable machine-readable code plus the human-readable message that used
// to be the whole body. Clients branch on Code; Message keeps the legacy
// text (error-message parity across router and node is asserted against
// it).
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody is the wire envelope: {"error": {"code": ..., "message": ...}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// Error codes more specific than their HTTP status. Everything else uses
// DefaultErrorCode.
const (
	// CodeUnknownInstance: a by-ID reference named no registered document.
	CodeUnknownInstance = "unknown_instance"
	// CodeUnknownJob: no job with the requested ID is registered.
	CodeUnknownJob = "unknown_job"
	// CodeJobNotFinished: the job result was requested before the job
	// reached a terminal state.
	CodeJobNotFinished = "job_not_finished"
	// CodeJobCanceled: the job was canceled before it produced a result.
	CodeJobCanceled = "job_canceled"
	// CodeJobCapacity: the detached-job registry is at its active cap.
	CodeJobCapacity = "job_capacity"
)

// DefaultErrorCode maps an HTTP status to the generic code used when no
// more specific one applies. Exported so the cluster router emits
// code-identical envelopes for the failures it originates.
func DefaultErrorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusBadGateway:
		return "bad_gateway"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "http_" + strconv.Itoa(status)
	}
}
