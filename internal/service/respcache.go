package service

import (
	"sync"
	"sync/atomic"
)

// defaultRespEntries bounds the response memo when Options leave it zero.
// Bodies are a few hundred bytes each, so the default costs a couple of MiB
// while covering far more distinct (instance, model, backend, options)
// combinations than a steady-state workload rotates through.
const defaultRespEntries = 8192

// respCache memoizes fully-encoded /v1/evaluate response bodies keyed by
// (backend, canonical task key, request options). A hit serves pre-encoded
// bytes with zero solver, simulator or encoder work — and without taking an
// in-flight slot, since nothing left to bound. Residency is CLOCK-bounded
// like the engine memo cache; entries are immutable byte slices so reads
// need no copy.
//
// Only self-computed responses are stored: a coalesced answer (shared from
// another caller's flight) is already served from that flight's memory and
// carries the "coalesced" marker, which must not be replayed to future
// callers.
//
// Metrics follow the same consistency contract as the engine cache: the
// mutating counters live under the cache mutex and metrics() snapshots them
// in one acquisition, so Entries+Evictions (cumulative inserts) is monotone
// across scrapes.
type respCache struct {
	capacity int

	mu        sync.RWMutex
	byKey     map[string]int32 // key -> slot
	entries   []*respEntry     // fixed slots; the CLOCK ring
	hand      int32
	evictions int64 // guarded by mu

	hits   atomic.Int64
	misses atomic.Int64
}

type respEntry struct {
	key  string
	body []byte      // immutable once inserted
	ref  atomic.Bool // CLOCK reference bit
}

func newRespCache(capacity int) *respCache {
	if capacity <= 0 {
		capacity = defaultRespEntries
	}
	return &respCache{
		capacity: capacity,
		byKey:    make(map[string]int32, capacity),
		entries:  make([]*respEntry, 0, capacity),
	}
}

// get returns the memoized body for key. The returned slice is shared and
// must not be mutated.
func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slot, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e := c.entries[slot]
	e.ref.Store(true)
	c.hits.Add(1)
	return e.body, true
}

// put memoizes body under key, copying it (the caller's buffer is pooled).
// A concurrent first-fill wins; losing fills are dropped, keeping one body
// per key so repeat hits are byte-stable.
func (c *respCache) put(key string, body []byte) {
	owned := make([]byte, len(body))
	copy(owned, body)
	ent := &respEntry{key: key, body: owned}
	ent.ref.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, ent)
		c.byKey[key] = int32(len(c.entries) - 1)
		return
	}
	// CLOCK sweep: clear reference bits until an unreferenced slot turns up.
	// Two revolutions guarantee a victim (no pins here — bodies are served
	// inside the read lock, never held across requests).
	for {
		victim := c.hand
		cand := c.entries[victim]
		c.hand = (c.hand + 1) % int32(len(c.entries))
		if cand.ref.CompareAndSwap(true, false) {
			continue
		}
		delete(c.byKey, cand.key)
		c.entries[victim] = ent
		c.byKey[key] = victim
		c.evictions++
		return
	}
}

// respMetrics is a consistent point-in-time snapshot of the memo.
type respMetrics struct {
	Hits, Misses, Evictions, Entries int64
	Capacity                         int
}

// metrics snapshots the counters; Entries and Evictions are read in one
// lock acquisition so Entries+Evictions never decreases between scrapes.
func (c *respCache) metrics() respMetrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return respMetrics{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions,
		Entries:   int64(len(c.entries)),
		Capacity:  c.capacity,
	}
}
