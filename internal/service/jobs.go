package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
)

// ---- /v1/jobs ----
//
// The async half of the API redesign: every long-running request is a job.
// POST /v1/jobs submits one (kind "search" or "sweep", the same request
// schemas the synchronous endpoints take) and returns immediately with a
// job ID; GET /v1/jobs/{id} polls status and live progress;
// GET /v1/jobs/{id}/result fetches the terminal result (the exact bytes
// the synchronous endpoint would have written); DELETE /v1/jobs/{id}
// cancels cooperatively — a cancelled bnb search still surfaces its best
// incumbent, because the search is anytime; GET /v1/jobs lists.
//
// The synchronous /v1/search and /v1/sweep execute through this same
// engine (submit-and-wait over an inline job), so there is exactly one
// execution path and the sync responses stay byte-identical.

// jobRunner is a validated, ready-to-execute solve: what a plan function
// (searchPlan, sweepPlan) compiles a request into. It runs under the job
// whose lifecycle brackets it (never nil) — runners read their progress
// gauges from it, and the checkpoint hook reads its identity.
type jobRunner func(ctx context.Context, j *jobs.Job) (any, error)

// JobKeyPrefix derives the job-ID prefix of an async submission from the
// raw POST /v1/jobs body: the first 16 hex digits of its SHA-256. Job IDs
// are "<prefix>-<seq>" with a per-prefix counter, so for a given per-body
// submission history the minted IDs do not depend on how other bodies
// interleave — the property that lets the cluster router shard job traffic
// by prefix and observe the same IDs a single node would mint. Exported
// for the router, which must compute the same prefix to pick the home
// node.
func JobKeyPrefix(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// JobSubmitRequest is the POST /v1/jobs body: a kind plus the matching
// synchronous request payload.
type JobSubmitRequest struct {
	// Kind selects the work: "search" or "sweep".
	Kind string `json:"kind"`
	// Search is the /v1/search payload for kind "search".
	Search *SearchRequest `json:"search,omitempty"`
	// Sweep is the /v1/sweep payload for kind "sweep".
	Sweep *SweepRequest `json:"sweep,omitempty"`
}

// JobProgress is the live progress block of a job status answer. Which
// gauges are present depends on the kind: search jobs carry the bnb tree
// counters (all zero for heuristic algos, which finish in one step), sweep
// jobs carry point counts.
type JobProgress struct {
	Nodes       *int64 `json:"nodes,omitempty"`
	Leaves      *int64 `json:"leaves,omitempty"`
	Pruned      *int64 `json:"pruned,omitempty"`
	Screened    *int64 `json:"screened,omitempty"`
	PointsDone  *int64 `json:"pointsDone,omitempty"`
	PointsTotal *int64 `json:"pointsTotal,omitempty"`
}

// Job is the wire form of a job: submit answers it with HTTP 202, status
// polls and cancels answer it with 200. No wall-clock fields — the bytes
// for a given lifecycle state are deterministic, which is what lets the
// router-fronted and single-node answers be compared byte for byte.
type Job struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Progress is present while the counters mean anything: always for
	// search/sweep jobs (zeroes included, so pollers need no key probing).
	Progress *JobProgress `json:"progress,omitempty"`
	// Error carries the failure of a failed job (also replayed with the
	// recorded status by the result endpoint).
	Error *ErrorInfo `json:"error,omitempty"`
}

// JobListResponse is the GET /v1/jobs answer, sorted by job ID.
type JobListResponse struct {
	Jobs []Job `json:"jobs"`
}

// jobJSON renders a job's current state in wire form.
func jobJSON(j *jobs.Job) Job {
	out := Job{ID: j.ID(), Kind: j.Kind(), State: string(j.State())}
	p := j.Progress()
	jp := &JobProgress{}
	switch j.Kind() {
	case "search":
		nodes, leaves := p.Nodes.Load(), p.Leaves.Load()
		pruned, screened := p.Pruned.Load(), p.Screened.Load()
		jp.Nodes, jp.Leaves, jp.Pruned, jp.Screened = &nodes, &leaves, &pruned, &screened
	case "sweep":
		done, tot := p.PointsDone.Load(), p.PointsTotal.Load()
		jp.PointsDone, jp.PointsTotal = &done, &tot
	}
	out.Progress = jp
	if f := j.Failure(); f != nil {
		out.Error = &ErrorInfo{Code: f.Code, Message: f.Message}
	}
	return out
}

// failureOf converts a runner error into the failure record the job
// retains, mirroring failErr's status mapping so a replayed result answer
// matches what the synchronous endpoint would have sent.
func failureOf(err error) *jobs.Failure {
	var he *httpError
	switch {
	case errors.As(err, &he):
		code := he.code
		if code == "" {
			code = DefaultErrorCode(he.status)
		}
		return &jobs.Failure{Status: he.status, Code: code, Message: he.msg}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return &jobs.Failure{
			Status:  http.StatusServiceUnavailable,
			Code:    DefaultErrorCode(http.StatusServiceUnavailable),
			Message: "request deadline exceeded",
		}
	default:
		return &jobs.Failure{
			Status:  http.StatusInternalServerError,
			Code:    DefaultErrorCode(http.StatusInternalServerError),
			Message: err.Error(),
		}
	}
}

// inlineJob wraps a planned runner as a submit-and-wait job: the
// synchronous endpoints' solve path. The job is registered before the
// in-flight queue so its lifetime covers queueing; the reply's cache hook
// deposits the encoded response bytes on the job, making the sync answer
// poll-able afterwards and byte-identical to what the client received.
func (s *Server) inlineJob(kind string, r *http.Request, run jobRunner, cleanup func()) (reply, error) {
	// The prefix is the kind name: sync jobs are per-node bookkeeping (the
	// router does not route them), so a content-derived prefix would buy
	// nothing and cost a hash per request.
	j, err := s.jobs.Submit(kind, kind, nil, r.Context(), 0, false)
	if err != nil {
		// Inline submissions are exempt from the active cap; Submit cannot
		// refuse them. Guarded anyway: a failure here must release pins.
		if cleanup != nil {
			cleanup()
		}
		return reply{}, err
	}
	rep := reply{
		solve: func(ctx context.Context) (any, error) {
			return s.runInline(ctx, j, run)
		},
		cache: func(resp any, body []byte) {
			s.jobs.Deposit(j, body)
		},
		cleanup: func() {
			if cleanup != nil {
				cleanup()
			}
			// Backstop for requests that never reached the solve (queue-wait
			// 503): Finish is a no-op on anything already terminal.
			s.jobs.Finish(j, nil, &jobs.Failure{
				Status:  http.StatusServiceUnavailable,
				Code:    DefaultErrorCode(http.StatusServiceUnavailable),
				Message: "request abandoned before the solve ran",
			})
		},
	}
	return rep, nil
}

// runInline executes a runner under its inline job, bracketing it with the
// job lifecycle. The run context is the job's (canceled by DELETE and by
// the client connection) bounded by the request deadline.
func (s *Server) runInline(ctx context.Context, j *jobs.Job, run jobRunner) (resp any, err error) {
	jctx := j.Context()
	if d, ok := ctx.Deadline(); ok {
		var cancel context.CancelFunc
		jctx, cancel = context.WithDeadline(jctx, d)
		defer cancel()
	}
	s.jobs.Start(j)
	defer func() {
		if p := recover(); p != nil {
			// Record the failure, then let runSolve's recover produce the
			// same 500 a pre-jobs server answered.
			s.jobs.Finish(j, nil, &jobs.Failure{
				Status:  http.StatusInternalServerError,
				Code:    DefaultErrorCode(http.StatusInternalServerError),
				Message: fmt.Sprintf("internal error: solve panicked: %v", p),
			})
			panic(p)
		}
	}()
	resp, err = run(jctx, j)
	if err != nil {
		s.jobs.Finish(j, nil, failureOf(err))
		return nil, err
	}
	// The encoded body is deposited by the reply's cache hook once the
	// shared encoder has produced it.
	s.jobs.Finish(j, nil, nil)
	return resp, nil
}

// runDetached executes a runner under a detached job on its own goroutine:
// the async path. It respects the same in-flight budget as synchronous
// solves (waiting on the job's context, so cancel and the job timeout
// apply while queued) and retains the encoded result on the job.
func (s *Server) runDetached(j *jobs.Job, run jobRunner, cleanup func()) {
	const name = "jobs"
	defer func() {
		if cleanup != nil {
			cleanup()
		}
		if p := recover(); p != nil {
			s.met.errors.Add(name, 1)
			s.jobs.Finish(j, nil, &jobs.Failure{
				Status:  http.StatusInternalServerError,
				Code:    DefaultErrorCode(http.StatusInternalServerError),
				Message: fmt.Sprintf("internal error: solve panicked: %v", p),
			})
		}
	}()
	start := time.Now()
	queued := start
	select {
	case s.sem <- struct{}{}:
	case <-j.Context().Done():
		s.met.observeWait(name, time.Since(queued))
		s.met.errors.Add(name, 1)
		s.jobs.Finish(j, nil, failureOf(j.Context().Err()))
		return
	}
	s.met.observeWait(name, time.Since(queued))
	s.met.inFlight.Add(1)
	released := false
	release := func() {
		if released {
			return
		}
		released = true
		s.met.inFlight.Add(-1)
		<-s.sem
	}
	defer release()
	s.jobs.Start(j)
	resp, err := run(j.Context(), j)
	release()
	if err != nil {
		s.met.errors.Add(name, 1)
		s.jobs.Finish(j, nil, failureOf(err))
		return
	}
	sc := encPool.Get().(*encScratch)
	sc.buf.Reset()
	if encErr := sc.enc.Encode(resp); encErr != nil {
		encPool.Put(sc)
		s.met.errors.Add(name, 1)
		s.jobs.Finish(j, nil, &jobs.Failure{
			Status:  http.StatusInternalServerError,
			Code:    DefaultErrorCode(http.StatusInternalServerError),
			Message: fmt.Sprintf("encoding response: %v", encErr),
		})
		return
	}
	body := append([]byte(nil), sc.buf.Bytes()...)
	encPool.Put(sc)
	s.met.observe(name, backendLabelOf(resp), time.Since(start))
	s.jobs.Finish(j, body, nil)
}

// handleJobs serves the collection route: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		s.met.requests.Add("jobsSubmit", 1)
		s.fail(w, "jobsSubmit", http.StatusMethodNotAllowed, "/v1/jobs requires POST (submit) or GET (list)")
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	const name = "jobsSubmit"
	s.met.requests.Add(name, 1)
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	// The raw bytes are read once: they seed the deterministic job-ID
	// prefix, then decode from memory.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.failErr(w, name, &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()})
			return
		}
		s.failErr(w, name, badRequest("bad request body: %v", err))
		return
	}
	var req JobSubmitRequest
	if err := decodeBytes(body, &req); err != nil {
		s.failErr(w, name, err)
		return
	}
	var run jobRunner
	var cleanup func()
	switch req.Kind {
	case "search":
		if req.Sweep != nil {
			s.failErr(w, name, badRequest("kind \"search\" takes a \"search\" payload, not \"sweep\""))
			return
		}
		if req.Search == nil {
			s.failErr(w, name, badRequest("missing \"search\" payload for kind \"search\""))
			return
		}
		run, cleanup, err = s.searchPlan(req.Search)
	case "sweep":
		if req.Search != nil {
			s.failErr(w, name, badRequest("kind \"sweep\" takes a \"sweep\" payload, not \"search\""))
			return
		}
		if req.Sweep == nil {
			s.failErr(w, name, badRequest("missing \"sweep\" payload for kind \"sweep\""))
			return
		}
		run, cleanup, err = s.sweepPlan(req.Sweep)
	case "":
		s.failErr(w, name, badRequest("missing \"kind\" (want \"search\" or \"sweep\")"))
		return
	default:
		s.failErr(w, name, badRequest("unknown job kind %q (want \"search\" or \"sweep\")", req.Kind))
		return
	}
	if err != nil {
		// Invalid submissions are refused synchronously — no job is minted
		// for a request that could never run.
		s.failErr(w, name, err)
		return
	}
	// Detached: the job outlives this request (parent context is the
	// process, lifetime bounded by JobTimeout) and counts against the
	// active cap — capacity refusal is back-pressure, like a full queue.
	j, err := s.jobs.Submit(req.Kind, JobKeyPrefix(body), body, context.Background(), s.opts.JobTimeout, true)
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		s.failErr(w, name, codedError(http.StatusServiceUnavailable, CodeJobCapacity, "%v", err))
		return
	}
	go s.runDetached(j, run, cleanup)
	writeJSON(w, http.StatusAccepted, jobJSON(j))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	const name = "jobsList"
	s.met.requests.Add(name, 1)
	q := r.URL.Query()
	kind := q.Get("kind")
	switch kind {
	case "", "search", "sweep":
	default:
		s.failErr(w, name, badRequest("unknown job kind %q (want \"search\" or \"sweep\")", kind))
		return
	}
	var state jobs.State
	if v := q.Get("state"); v != "" {
		st, err := jobs.ParseState(v)
		if err != nil {
			s.failErr(w, name, badRequest("%v", err))
			return
		}
		state = st
	}
	list := s.jobs.List(kind, state)
	resp := JobListResponse{Jobs: make([]Job, len(list))}
	for i, j := range list {
		resp.Jobs[i] = jobJSON(j)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobByID serves the item routes: GET /v1/jobs/{id} (status),
// GET /v1/jobs/{id}/result, DELETE /v1/jobs/{id} (cancel).
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, hasSub := strings.Cut(rest, "/")
	switch {
	case id == "" || (hasSub && sub != "result") || strings.Contains(sub, "/"):
		name := "jobsGet"
		s.met.requests.Add(name, 1)
		s.failErr(w, name, badRequest("bad job path %q (want /v1/jobs/{id} or /v1/jobs/{id}/result)", r.URL.Path))
	case hasSub:
		s.handleJobResult(w, r, id)
	case r.Method == http.MethodDelete:
		s.handleJobCancel(w, r, id)
	default:
		s.handleJobGet(w, r, id)
	}
}

func unknownJob(id string) error {
	return codedError(http.StatusNotFound, CodeUnknownJob,
		"unknown job ID %q (never submitted, or its terminal record was recycled)", id)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request, id string) {
	const name = "jobsGet"
	s.met.requests.Add(name, 1)
	if r.Method != http.MethodGet {
		s.fail(w, name, http.StatusMethodNotAllowed, "/v1/jobs/{id} requires GET (DELETE cancels)")
		return
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		s.failErr(w, name, unknownJob(id))
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(j))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, id string) {
	const name = "jobsResult"
	s.met.requests.Add(name, 1)
	if r.Method != http.MethodGet {
		s.fail(w, name, http.StatusMethodNotAllowed, "/v1/jobs/{id}/result requires GET")
		return
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		s.failErr(w, name, unknownJob(id))
		return
	}
	if !j.State().Terminal() {
		s.failErr(w, name, codedError(http.StatusConflict, CodeJobNotFinished,
			"job %q has not finished (state %q); poll GET /v1/jobs/%s", id, j.State(), id))
		return
	}
	// Terminal states are immutable, so the checks below cannot race the
	// transition: a done/canceled job's result bytes and a failed job's
	// failure are fixed once Terminal() reports true.
	if body, ok := j.Result(); ok {
		// The retained bytes came out of the shared encoder, so a repeat
		// fetch — and the synchronous answer, for inline jobs — is
		// byte-identical.
		writeRaw(w, http.StatusOK, body)
		return
	}
	if f := j.Failure(); f != nil {
		s.failCode(w, name, f.Status, f.Code, f.Message)
		return
	}
	// Canceled before any result existed (e.g. a sweep, which has no
	// anytime answer).
	s.failErr(w, name, codedError(http.StatusConflict, CodeJobCanceled,
		"job %q was canceled before it produced a result", id))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request, id string) {
	const name = "jobsCancel"
	s.met.requests.Add(name, 1)
	j, ok := s.jobs.Cancel(id)
	if !ok {
		s.failErr(w, name, unknownJob(id))
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(j))
}

// decodeBytes is decode for an already-read body: same strictness, same
// error phrasing.
func decodeBytes(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON value")
	}
	return nil
}
